file(REMOVE_RECURSE
  "CMakeFiles/rdd_tensor.dir/matrix.cc.o"
  "CMakeFiles/rdd_tensor.dir/matrix.cc.o.d"
  "CMakeFiles/rdd_tensor.dir/ops.cc.o"
  "CMakeFiles/rdd_tensor.dir/ops.cc.o.d"
  "CMakeFiles/rdd_tensor.dir/sparse.cc.o"
  "CMakeFiles/rdd_tensor.dir/sparse.cc.o.d"
  "librdd_tensor.a"
  "librdd_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdd_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
