file(REMOVE_RECURSE
  "librdd_tensor.a"
)
