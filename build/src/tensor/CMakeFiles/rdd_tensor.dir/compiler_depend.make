# Empty compiler generated dependencies file for rdd_tensor.
# This may be replaced when dependencies are built.
