# Empty dependencies file for rdd_train.
# This may be replaced when dependencies are built.
