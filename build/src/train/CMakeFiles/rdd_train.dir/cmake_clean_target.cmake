file(REMOVE_RECURSE
  "librdd_train.a"
)
