file(REMOVE_RECURSE
  "CMakeFiles/rdd_train.dir/experiment.cc.o"
  "CMakeFiles/rdd_train.dir/experiment.cc.o.d"
  "CMakeFiles/rdd_train.dir/trainer.cc.o"
  "CMakeFiles/rdd_train.dir/trainer.cc.o.d"
  "librdd_train.a"
  "librdd_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdd_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
