
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/components.cc" "src/graph/CMakeFiles/rdd_graph.dir/components.cc.o" "gcc" "src/graph/CMakeFiles/rdd_graph.dir/components.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/rdd_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/rdd_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/rdd_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/rdd_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/metrics.cc" "src/graph/CMakeFiles/rdd_graph.dir/metrics.cc.o" "gcc" "src/graph/CMakeFiles/rdd_graph.dir/metrics.cc.o.d"
  "/root/repo/src/graph/normalize.cc" "src/graph/CMakeFiles/rdd_graph.dir/normalize.cc.o" "gcc" "src/graph/CMakeFiles/rdd_graph.dir/normalize.cc.o.d"
  "/root/repo/src/graph/pagerank.cc" "src/graph/CMakeFiles/rdd_graph.dir/pagerank.cc.o" "gcc" "src/graph/CMakeFiles/rdd_graph.dir/pagerank.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/rdd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
