# Empty dependencies file for rdd_graph.
# This may be replaced when dependencies are built.
