file(REMOVE_RECURSE
  "librdd_graph.a"
)
