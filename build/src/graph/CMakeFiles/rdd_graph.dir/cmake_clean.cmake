file(REMOVE_RECURSE
  "CMakeFiles/rdd_graph.dir/components.cc.o"
  "CMakeFiles/rdd_graph.dir/components.cc.o.d"
  "CMakeFiles/rdd_graph.dir/generators.cc.o"
  "CMakeFiles/rdd_graph.dir/generators.cc.o.d"
  "CMakeFiles/rdd_graph.dir/graph.cc.o"
  "CMakeFiles/rdd_graph.dir/graph.cc.o.d"
  "CMakeFiles/rdd_graph.dir/metrics.cc.o"
  "CMakeFiles/rdd_graph.dir/metrics.cc.o.d"
  "CMakeFiles/rdd_graph.dir/normalize.cc.o"
  "CMakeFiles/rdd_graph.dir/normalize.cc.o.d"
  "CMakeFiles/rdd_graph.dir/pagerank.cc.o"
  "CMakeFiles/rdd_graph.dir/pagerank.cc.o.d"
  "librdd_graph.a"
  "librdd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
