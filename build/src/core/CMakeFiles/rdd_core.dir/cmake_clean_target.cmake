file(REMOVE_RECURSE
  "librdd_core.a"
)
