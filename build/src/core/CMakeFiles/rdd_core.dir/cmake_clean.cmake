file(REMOVE_RECURSE
  "CMakeFiles/rdd_core.dir/rdd_trainer.cc.o"
  "CMakeFiles/rdd_core.dir/rdd_trainer.cc.o.d"
  "CMakeFiles/rdd_core.dir/reliability.cc.o"
  "CMakeFiles/rdd_core.dir/reliability.cc.o.d"
  "CMakeFiles/rdd_core.dir/schedule.cc.o"
  "CMakeFiles/rdd_core.dir/schedule.cc.o.d"
  "CMakeFiles/rdd_core.dir/teacher.cc.o"
  "CMakeFiles/rdd_core.dir/teacher.cc.o.d"
  "librdd_core.a"
  "librdd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
