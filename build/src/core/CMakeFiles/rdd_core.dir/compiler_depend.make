# Empty compiler generated dependencies file for rdd_core.
# This may be replaced when dependencies are built.
