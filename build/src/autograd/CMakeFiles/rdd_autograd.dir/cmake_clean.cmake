file(REMOVE_RECURSE
  "CMakeFiles/rdd_autograd.dir/graph_ops.cc.o"
  "CMakeFiles/rdd_autograd.dir/graph_ops.cc.o.d"
  "CMakeFiles/rdd_autograd.dir/ops.cc.o"
  "CMakeFiles/rdd_autograd.dir/ops.cc.o.d"
  "CMakeFiles/rdd_autograd.dir/variable.cc.o"
  "CMakeFiles/rdd_autograd.dir/variable.cc.o.d"
  "librdd_autograd.a"
  "librdd_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdd_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
