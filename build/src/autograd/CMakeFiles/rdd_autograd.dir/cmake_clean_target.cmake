file(REMOVE_RECURSE
  "librdd_autograd.a"
)
