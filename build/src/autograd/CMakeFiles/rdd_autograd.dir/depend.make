# Empty dependencies file for rdd_autograd.
# This may be replaced when dependencies are built.
