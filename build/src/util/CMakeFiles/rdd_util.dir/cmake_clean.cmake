file(REMOVE_RECURSE
  "CMakeFiles/rdd_util.dir/logging.cc.o"
  "CMakeFiles/rdd_util.dir/logging.cc.o.d"
  "CMakeFiles/rdd_util.dir/random.cc.o"
  "CMakeFiles/rdd_util.dir/random.cc.o.d"
  "CMakeFiles/rdd_util.dir/status.cc.o"
  "CMakeFiles/rdd_util.dir/status.cc.o.d"
  "CMakeFiles/rdd_util.dir/string_util.cc.o"
  "CMakeFiles/rdd_util.dir/string_util.cc.o.d"
  "CMakeFiles/rdd_util.dir/table_writer.cc.o"
  "CMakeFiles/rdd_util.dir/table_writer.cc.o.d"
  "librdd_util.a"
  "librdd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
