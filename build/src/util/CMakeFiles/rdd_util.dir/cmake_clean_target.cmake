file(REMOVE_RECURSE
  "librdd_util.a"
)
