# Empty dependencies file for rdd_util.
# This may be replaced when dependencies are built.
