# Empty dependencies file for rdd_nn.
# This may be replaced when dependencies are built.
