file(REMOVE_RECURSE
  "CMakeFiles/rdd_nn.dir/graph_conv.cc.o"
  "CMakeFiles/rdd_nn.dir/graph_conv.cc.o.d"
  "CMakeFiles/rdd_nn.dir/init.cc.o"
  "CMakeFiles/rdd_nn.dir/init.cc.o.d"
  "CMakeFiles/rdd_nn.dir/linear.cc.o"
  "CMakeFiles/rdd_nn.dir/linear.cc.o.d"
  "CMakeFiles/rdd_nn.dir/metrics.cc.o"
  "CMakeFiles/rdd_nn.dir/metrics.cc.o.d"
  "CMakeFiles/rdd_nn.dir/module.cc.o"
  "CMakeFiles/rdd_nn.dir/module.cc.o.d"
  "CMakeFiles/rdd_nn.dir/optimizer.cc.o"
  "CMakeFiles/rdd_nn.dir/optimizer.cc.o.d"
  "librdd_nn.a"
  "librdd_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdd_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
