file(REMOVE_RECURSE
  "librdd_nn.a"
)
