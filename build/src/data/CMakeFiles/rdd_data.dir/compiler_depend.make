# Empty compiler generated dependencies file for rdd_data.
# This may be replaced when dependencies are built.
