file(REMOVE_RECURSE
  "CMakeFiles/rdd_data.dir/citation_gen.cc.o"
  "CMakeFiles/rdd_data.dir/citation_gen.cc.o.d"
  "CMakeFiles/rdd_data.dir/dataset.cc.o"
  "CMakeFiles/rdd_data.dir/dataset.cc.o.d"
  "CMakeFiles/rdd_data.dir/serialize.cc.o"
  "CMakeFiles/rdd_data.dir/serialize.cc.o.d"
  "librdd_data.a"
  "librdd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
