file(REMOVE_RECURSE
  "librdd_data.a"
)
