
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/citation_gen.cc" "src/data/CMakeFiles/rdd_data.dir/citation_gen.cc.o" "gcc" "src/data/CMakeFiles/rdd_data.dir/citation_gen.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/rdd_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/rdd_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/serialize.cc" "src/data/CMakeFiles/rdd_data.dir/serialize.cc.o" "gcc" "src/data/CMakeFiles/rdd_data.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/rdd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rdd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
