file(REMOVE_RECURSE
  "librdd_ensemble.a"
)
