# Empty compiler generated dependencies file for rdd_ensemble.
# This may be replaced when dependencies are built.
