
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ensemble/bagging.cc" "src/ensemble/CMakeFiles/rdd_ensemble.dir/bagging.cc.o" "gcc" "src/ensemble/CMakeFiles/rdd_ensemble.dir/bagging.cc.o.d"
  "/root/repo/src/ensemble/bans.cc" "src/ensemble/CMakeFiles/rdd_ensemble.dir/bans.cc.o" "gcc" "src/ensemble/CMakeFiles/rdd_ensemble.dir/bans.cc.o.d"
  "/root/repo/src/ensemble/co_training.cc" "src/ensemble/CMakeFiles/rdd_ensemble.dir/co_training.cc.o" "gcc" "src/ensemble/CMakeFiles/rdd_ensemble.dir/co_training.cc.o.d"
  "/root/repo/src/ensemble/ensemble.cc" "src/ensemble/CMakeFiles/rdd_ensemble.dir/ensemble.cc.o" "gcc" "src/ensemble/CMakeFiles/rdd_ensemble.dir/ensemble.cc.o.d"
  "/root/repo/src/ensemble/mean_teacher.cc" "src/ensemble/CMakeFiles/rdd_ensemble.dir/mean_teacher.cc.o" "gcc" "src/ensemble/CMakeFiles/rdd_ensemble.dir/mean_teacher.cc.o.d"
  "/root/repo/src/ensemble/self_training.cc" "src/ensemble/CMakeFiles/rdd_ensemble.dir/self_training.cc.o" "gcc" "src/ensemble/CMakeFiles/rdd_ensemble.dir/self_training.cc.o.d"
  "/root/repo/src/ensemble/snapshot.cc" "src/ensemble/CMakeFiles/rdd_ensemble.dir/snapshot.cc.o" "gcc" "src/ensemble/CMakeFiles/rdd_ensemble.dir/snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/train/CMakeFiles/rdd_train.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/rdd_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rdd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rdd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/rdd_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rdd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rdd_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
