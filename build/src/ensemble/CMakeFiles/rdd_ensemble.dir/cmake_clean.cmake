file(REMOVE_RECURSE
  "CMakeFiles/rdd_ensemble.dir/bagging.cc.o"
  "CMakeFiles/rdd_ensemble.dir/bagging.cc.o.d"
  "CMakeFiles/rdd_ensemble.dir/bans.cc.o"
  "CMakeFiles/rdd_ensemble.dir/bans.cc.o.d"
  "CMakeFiles/rdd_ensemble.dir/co_training.cc.o"
  "CMakeFiles/rdd_ensemble.dir/co_training.cc.o.d"
  "CMakeFiles/rdd_ensemble.dir/ensemble.cc.o"
  "CMakeFiles/rdd_ensemble.dir/ensemble.cc.o.d"
  "CMakeFiles/rdd_ensemble.dir/mean_teacher.cc.o"
  "CMakeFiles/rdd_ensemble.dir/mean_teacher.cc.o.d"
  "CMakeFiles/rdd_ensemble.dir/self_training.cc.o"
  "CMakeFiles/rdd_ensemble.dir/self_training.cc.o.d"
  "CMakeFiles/rdd_ensemble.dir/snapshot.cc.o"
  "CMakeFiles/rdd_ensemble.dir/snapshot.cc.o.d"
  "librdd_ensemble.a"
  "librdd_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdd_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
