file(REMOVE_RECURSE
  "CMakeFiles/rdd_models.dir/appnp.cc.o"
  "CMakeFiles/rdd_models.dir/appnp.cc.o.d"
  "CMakeFiles/rdd_models.dir/dense_gcn.cc.o"
  "CMakeFiles/rdd_models.dir/dense_gcn.cc.o.d"
  "CMakeFiles/rdd_models.dir/gat.cc.o"
  "CMakeFiles/rdd_models.dir/gat.cc.o.d"
  "CMakeFiles/rdd_models.dir/gcn.cc.o"
  "CMakeFiles/rdd_models.dir/gcn.cc.o.d"
  "CMakeFiles/rdd_models.dir/graph_model.cc.o"
  "CMakeFiles/rdd_models.dir/graph_model.cc.o.d"
  "CMakeFiles/rdd_models.dir/graphsage.cc.o"
  "CMakeFiles/rdd_models.dir/graphsage.cc.o.d"
  "CMakeFiles/rdd_models.dir/jk_net.cc.o"
  "CMakeFiles/rdd_models.dir/jk_net.cc.o.d"
  "CMakeFiles/rdd_models.dir/label_propagation.cc.o"
  "CMakeFiles/rdd_models.dir/label_propagation.cc.o.d"
  "CMakeFiles/rdd_models.dir/mlp.cc.o"
  "CMakeFiles/rdd_models.dir/mlp.cc.o.d"
  "CMakeFiles/rdd_models.dir/model_factory.cc.o"
  "CMakeFiles/rdd_models.dir/model_factory.cc.o.d"
  "CMakeFiles/rdd_models.dir/res_gcn.cc.o"
  "CMakeFiles/rdd_models.dir/res_gcn.cc.o.d"
  "librdd_models.a"
  "librdd_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdd_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
