
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/appnp.cc" "src/models/CMakeFiles/rdd_models.dir/appnp.cc.o" "gcc" "src/models/CMakeFiles/rdd_models.dir/appnp.cc.o.d"
  "/root/repo/src/models/dense_gcn.cc" "src/models/CMakeFiles/rdd_models.dir/dense_gcn.cc.o" "gcc" "src/models/CMakeFiles/rdd_models.dir/dense_gcn.cc.o.d"
  "/root/repo/src/models/gat.cc" "src/models/CMakeFiles/rdd_models.dir/gat.cc.o" "gcc" "src/models/CMakeFiles/rdd_models.dir/gat.cc.o.d"
  "/root/repo/src/models/gcn.cc" "src/models/CMakeFiles/rdd_models.dir/gcn.cc.o" "gcc" "src/models/CMakeFiles/rdd_models.dir/gcn.cc.o.d"
  "/root/repo/src/models/graph_model.cc" "src/models/CMakeFiles/rdd_models.dir/graph_model.cc.o" "gcc" "src/models/CMakeFiles/rdd_models.dir/graph_model.cc.o.d"
  "/root/repo/src/models/graphsage.cc" "src/models/CMakeFiles/rdd_models.dir/graphsage.cc.o" "gcc" "src/models/CMakeFiles/rdd_models.dir/graphsage.cc.o.d"
  "/root/repo/src/models/jk_net.cc" "src/models/CMakeFiles/rdd_models.dir/jk_net.cc.o" "gcc" "src/models/CMakeFiles/rdd_models.dir/jk_net.cc.o.d"
  "/root/repo/src/models/label_propagation.cc" "src/models/CMakeFiles/rdd_models.dir/label_propagation.cc.o" "gcc" "src/models/CMakeFiles/rdd_models.dir/label_propagation.cc.o.d"
  "/root/repo/src/models/mlp.cc" "src/models/CMakeFiles/rdd_models.dir/mlp.cc.o" "gcc" "src/models/CMakeFiles/rdd_models.dir/mlp.cc.o.d"
  "/root/repo/src/models/model_factory.cc" "src/models/CMakeFiles/rdd_models.dir/model_factory.cc.o" "gcc" "src/models/CMakeFiles/rdd_models.dir/model_factory.cc.o.d"
  "/root/repo/src/models/res_gcn.cc" "src/models/CMakeFiles/rdd_models.dir/res_gcn.cc.o" "gcc" "src/models/CMakeFiles/rdd_models.dir/res_gcn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/rdd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rdd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rdd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/rdd_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rdd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
