file(REMOVE_RECURSE
  "librdd_models.a"
)
