# Empty dependencies file for rdd_models.
# This may be replaced when dependencies are built.
