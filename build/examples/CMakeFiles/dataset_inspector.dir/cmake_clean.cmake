file(REMOVE_RECURSE
  "CMakeFiles/dataset_inspector.dir/dataset_inspector.cpp.o"
  "CMakeFiles/dataset_inspector.dir/dataset_inspector.cpp.o.d"
  "dataset_inspector"
  "dataset_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
