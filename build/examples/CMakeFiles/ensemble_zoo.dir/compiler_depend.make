# Empty compiler generated dependencies file for ensemble_zoo.
# This may be replaced when dependencies are built.
