file(REMOVE_RECURSE
  "CMakeFiles/ensemble_zoo.dir/ensemble_zoo.cpp.o"
  "CMakeFiles/ensemble_zoo.dir/ensemble_zoo.cpp.o.d"
  "ensemble_zoo"
  "ensemble_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
