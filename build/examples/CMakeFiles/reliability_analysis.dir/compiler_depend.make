# Empty compiler generated dependencies file for reliability_analysis.
# This may be replaced when dependencies are built.
