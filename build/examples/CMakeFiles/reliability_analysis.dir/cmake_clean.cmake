file(REMOVE_RECURSE
  "CMakeFiles/reliability_analysis.dir/reliability_analysis.cpp.o"
  "CMakeFiles/reliability_analysis.dir/reliability_analysis.cpp.o.d"
  "reliability_analysis"
  "reliability_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
