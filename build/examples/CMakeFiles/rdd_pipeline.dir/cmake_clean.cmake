file(REMOVE_RECURSE
  "CMakeFiles/rdd_pipeline.dir/rdd_pipeline.cpp.o"
  "CMakeFiles/rdd_pipeline.dir/rdd_pipeline.cpp.o.d"
  "rdd_pipeline"
  "rdd_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdd_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
