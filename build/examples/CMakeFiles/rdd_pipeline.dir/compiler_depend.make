# Empty compiler generated dependencies file for rdd_pipeline.
# This may be replaced when dependencies are built.
