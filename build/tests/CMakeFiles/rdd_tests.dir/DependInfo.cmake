
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/autograd_test.cc" "tests/CMakeFiles/rdd_tests.dir/autograd_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/autograd_test.cc.o.d"
  "/root/repo/tests/citation_gen_test.cc" "tests/CMakeFiles/rdd_tests.dir/citation_gen_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/citation_gen_test.cc.o.d"
  "/root/repo/tests/components_test.cc" "tests/CMakeFiles/rdd_tests.dir/components_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/components_test.cc.o.d"
  "/root/repo/tests/dataset_test.cc" "tests/CMakeFiles/rdd_tests.dir/dataset_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/dataset_test.cc.o.d"
  "/root/repo/tests/ensemble_test.cc" "tests/CMakeFiles/rdd_tests.dir/ensemble_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/ensemble_test.cc.o.d"
  "/root/repo/tests/gat_test.cc" "tests/CMakeFiles/rdd_tests.dir/gat_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/gat_test.cc.o.d"
  "/root/repo/tests/generators_test.cc" "tests/CMakeFiles/rdd_tests.dir/generators_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/generators_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/rdd_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/graphsage_test.cc" "tests/CMakeFiles/rdd_tests.dir/graphsage_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/graphsage_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/rdd_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/matrix_test.cc" "tests/CMakeFiles/rdd_tests.dir/matrix_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/matrix_test.cc.o.d"
  "/root/repo/tests/models_test.cc" "tests/CMakeFiles/rdd_tests.dir/models_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/models_test.cc.o.d"
  "/root/repo/tests/nn_test.cc" "tests/CMakeFiles/rdd_tests.dir/nn_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/nn_test.cc.o.d"
  "/root/repo/tests/normalize_test.cc" "tests/CMakeFiles/rdd_tests.dir/normalize_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/normalize_test.cc.o.d"
  "/root/repo/tests/ops_test.cc" "tests/CMakeFiles/rdd_tests.dir/ops_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/ops_test.cc.o.d"
  "/root/repo/tests/pagerank_test.cc" "tests/CMakeFiles/rdd_tests.dir/pagerank_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/pagerank_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/rdd_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/random_test.cc" "tests/CMakeFiles/rdd_tests.dir/random_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/random_test.cc.o.d"
  "/root/repo/tests/rdd_trainer_test.cc" "tests/CMakeFiles/rdd_tests.dir/rdd_trainer_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/rdd_trainer_test.cc.o.d"
  "/root/repo/tests/reliability_test.cc" "tests/CMakeFiles/rdd_tests.dir/reliability_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/reliability_test.cc.o.d"
  "/root/repo/tests/robustness_test.cc" "tests/CMakeFiles/rdd_tests.dir/robustness_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/robustness_test.cc.o.d"
  "/root/repo/tests/schedule_test.cc" "tests/CMakeFiles/rdd_tests.dir/schedule_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/schedule_test.cc.o.d"
  "/root/repo/tests/serialize_test.cc" "tests/CMakeFiles/rdd_tests.dir/serialize_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/serialize_test.cc.o.d"
  "/root/repo/tests/sparse_test.cc" "tests/CMakeFiles/rdd_tests.dir/sparse_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/sparse_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/rdd_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/teacher_test.cc" "tests/CMakeFiles/rdd_tests.dir/teacher_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/teacher_test.cc.o.d"
  "/root/repo/tests/trainer_test.cc" "tests/CMakeFiles/rdd_tests.dir/trainer_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/trainer_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/rdd_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/rdd_tests.dir/util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rdd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ensemble/CMakeFiles/rdd_ensemble.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/rdd_train.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/rdd_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rdd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rdd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rdd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/rdd_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rdd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
