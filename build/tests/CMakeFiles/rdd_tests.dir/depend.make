# Empty dependencies file for rdd_tests.
# This may be replaced when dependencies are built.
