file(REMOVE_RECURSE
  "CMakeFiles/table5_deep.dir/table5_deep.cc.o"
  "CMakeFiles/table5_deep.dir/table5_deep.cc.o.d"
  "table5_deep"
  "table5_deep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_deep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
