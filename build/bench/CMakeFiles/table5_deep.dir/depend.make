# Empty dependencies file for table5_deep.
# This may be replaced when dependencies are built.
