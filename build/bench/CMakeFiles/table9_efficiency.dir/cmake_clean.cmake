file(REMOVE_RECURSE
  "CMakeFiles/table9_efficiency.dir/table9_efficiency.cc.o"
  "CMakeFiles/table9_efficiency.dir/table9_efficiency.cc.o.d"
  "table9_efficiency"
  "table9_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
