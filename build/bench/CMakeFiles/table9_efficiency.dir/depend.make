# Empty dependencies file for table9_efficiency.
# This may be replaced when dependencies are built.
