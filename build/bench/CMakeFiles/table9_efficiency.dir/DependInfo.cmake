
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table9_efficiency.cc" "bench/CMakeFiles/table9_efficiency.dir/table9_efficiency.cc.o" "gcc" "bench/CMakeFiles/table9_efficiency.dir/table9_efficiency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rdd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ensemble/CMakeFiles/rdd_ensemble.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/rdd_train.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/rdd_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rdd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rdd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rdd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/rdd_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rdd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
