# Empty dependencies file for table7_hyperparams.
# This may be replaced when dependencies are built.
