file(REMOVE_RECURSE
  "CMakeFiles/table7_hyperparams.dir/table7_hyperparams.cc.o"
  "CMakeFiles/table7_hyperparams.dir/table7_hyperparams.cc.o.d"
  "table7_hyperparams"
  "table7_hyperparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
