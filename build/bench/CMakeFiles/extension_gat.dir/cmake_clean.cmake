file(REMOVE_RECURSE
  "CMakeFiles/extension_gat.dir/extension_gat.cc.o"
  "CMakeFiles/extension_gat.dir/extension_gat.cc.o.d"
  "extension_gat"
  "extension_gat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_gat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
