# Empty dependencies file for extension_gat.
# This may be replaced when dependencies are built.
