# Empty compiler generated dependencies file for table4_single.
# This may be replaced when dependencies are built.
