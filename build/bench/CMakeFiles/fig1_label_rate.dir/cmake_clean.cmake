file(REMOVE_RECURSE
  "CMakeFiles/fig1_label_rate.dir/fig1_label_rate.cc.o"
  "CMakeFiles/fig1_label_rate.dir/fig1_label_rate.cc.o.d"
  "fig1_label_rate"
  "fig1_label_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_label_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
