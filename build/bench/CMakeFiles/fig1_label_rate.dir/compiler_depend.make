# Empty compiler generated dependencies file for fig1_label_rate.
# This may be replaced when dependencies are built.
