# Empty dependencies file for table8_ablation.
# This may be replaced when dependencies are built.
