# Empty dependencies file for table3_ensemble.
# This may be replaced when dependencies are built.
