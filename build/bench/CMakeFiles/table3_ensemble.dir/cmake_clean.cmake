file(REMOVE_RECURSE
  "CMakeFiles/table3_ensemble.dir/table3_ensemble.cc.o"
  "CMakeFiles/table3_ensemble.dir/table3_ensemble.cc.o.d"
  "table3_ensemble"
  "table3_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
