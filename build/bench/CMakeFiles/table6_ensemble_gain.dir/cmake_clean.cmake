file(REMOVE_RECURSE
  "CMakeFiles/table6_ensemble_gain.dir/table6_ensemble_gain.cc.o"
  "CMakeFiles/table6_ensemble_gain.dir/table6_ensemble_gain.cc.o.d"
  "table6_ensemble_gain"
  "table6_ensemble_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_ensemble_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
