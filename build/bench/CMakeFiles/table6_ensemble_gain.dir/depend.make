# Empty dependencies file for table6_ensemble_gain.
# This may be replaced when dependencies are built.
