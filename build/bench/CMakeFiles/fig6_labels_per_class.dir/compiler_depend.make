# Empty compiler generated dependencies file for fig6_labels_per_class.
# This may be replaced when dependencies are built.
