file(REMOVE_RECURSE
  "CMakeFiles/fig6_labels_per_class.dir/fig6_labels_per_class.cc.o"
  "CMakeFiles/fig6_labels_per_class.dir/fig6_labels_per_class.cc.o.d"
  "fig6_labels_per_class"
  "fig6_labels_per_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_labels_per_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
