#ifndef RDD_NN_INIT_H_
#define RDD_NN_INIT_H_

#include <cstdint>

#include "tensor/matrix.h"
#include "util/random.h"

namespace rdd {

/// Glorot/Xavier uniform initialization: entries ~ U(-a, a) with
/// a = sqrt(6 / (fan_in + fan_out)). This is the initializer the reference
/// GCN implementation uses for its weight matrices.
Matrix GlorotUniform(int64_t fan_in, int64_t fan_out, Rng* rng);

/// Uniform initialization in [lo, hi).
Matrix UniformInit(int64_t rows, int64_t cols, float lo, float hi, Rng* rng);

/// Zero initialization (used for biases).
Matrix ZeroInit(int64_t rows, int64_t cols);

}  // namespace rdd

#endif  // RDD_NN_INIT_H_
