#include "nn/graph_conv.h"

#include "autograd/fusion.h"
#include "nn/init.h"
#include "util/logging.h"

namespace rdd {

GraphConvolution::GraphConvolution(const SparseMatrix* adj, int64_t in_dim,
                                   int64_t out_dim, Rng* rng, bool use_bias)
    : adj_(adj) {
  RDD_CHECK(adj != nullptr);
  RDD_CHECK_EQ(adj->rows(), adj->cols());
  weight_ = RegisterParameter(GlorotUniform(in_dim, out_dim, rng));
  if (use_bias) bias_ = RegisterParameter(ZeroInit(1, out_dim));
}

Variable GraphConvolution::Forward(const Variable& h) const {
  return Forward(adj_, h);
}

Variable GraphConvolution::ForwardSparse(const SparseMatrix* x) const {
  return ForwardSparse(adj_, x);
}

Variable GraphConvolution::Forward(const SparseMatrix* adj,
                                   const Variable& h) const {
  RDD_CHECK(adj != nullptr);
  Variable out = ag::SpmmConst(adj, ag::Matmul(h, weight_));
  if (bias_.defined()) out = ag::AddBias(out, bias_);
  return out;
}

Variable GraphConvolution::ForwardSparse(const SparseMatrix* adj,
                                         const SparseMatrix* x) const {
  RDD_CHECK(adj != nullptr);
  Variable out = ag::SpmmConst(adj, ag::SpmmConst(x, weight_));
  if (bias_.defined()) out = ag::AddBias(out, bias_);
  return out;
}

Variable GraphConvolution::ForwardRelu(const Variable& h) const {
  return ForwardRelu(adj_, h);
}

Variable GraphConvolution::ForwardSparseRelu(const SparseMatrix* x) const {
  return ForwardSparseRelu(adj_, x);
}

Variable GraphConvolution::ForwardRelu(const SparseMatrix* adj,
                                       const Variable& h) const {
  RDD_CHECK(adj != nullptr);
  return ag::FusedSpmmBiasRelu(adj, ag::Matmul(h, weight_), bias_);
}

Variable GraphConvolution::ForwardSparseRelu(const SparseMatrix* adj,
                                             const SparseMatrix* x) const {
  RDD_CHECK(adj != nullptr);
  return ag::FusedSpmmBiasRelu(adj, ag::SpmmConst(x, weight_), bias_);
}

}  // namespace rdd
