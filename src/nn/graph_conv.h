#ifndef RDD_NN_GRAPH_CONV_H_
#define RDD_NN_GRAPH_CONV_H_

#include <cstdint>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "nn/module.h"
#include "tensor/sparse.h"
#include "util/random.h"

namespace rdd {

/// One graph-convolution layer of Kipf & Welling (Eq. 1 of the paper):
/// H' = Ahat (H W) + b, where Ahat is the (constant) normalized adjacency.
/// The activation is applied by the caller so the last layer can stay
/// linear. The weight multiply happens before propagation, which is the
/// cheaper association when the hidden width is smaller than the input.
class GraphConvolution : public Module {
 public:
  /// `adj` is the normalized adjacency; it must outlive this layer and any
  /// backward pass through it (models own it via shared_ptr).
  GraphConvolution(const SparseMatrix* adj, int64_t in_dim, int64_t out_dim,
                   Rng* rng, bool use_bias = true);

  /// Dense forward: h is (n x in_dim).
  Variable Forward(const Variable& h) const;

  /// Sparse forward for the input layer: x is a constant (n x in_dim)
  /// sparse feature matrix.
  Variable ForwardSparse(const SparseMatrix* x) const;

  /// View-aware forwards: same layer weights, propagation over a caller
  /// supplied adjacency (a GraphView's normalized slice). The adjacency must
  /// outlive the backward pass. The stored-adjacency overloads above
  /// delegate here, so full-batch behavior is unchanged.
  Variable Forward(const SparseMatrix* adj, const Variable& h) const;
  Variable ForwardSparse(const SparseMatrix* adj, const SparseMatrix* x) const;

  /// relu(Forward(...)) through the fusion pass (autograd/fusion.h): the
  /// propagation + bias + ReLU tail collapses into one fused tape node when
  /// RDD_FUSE is on (the inner H W product stays its own node), and into
  /// the literal unfused sequence otherwise — bit-identical either way.
  /// For hidden layers only; the last layer stays linear via Forward.
  Variable ForwardRelu(const Variable& h) const;
  Variable ForwardSparseRelu(const SparseMatrix* x) const;
  Variable ForwardRelu(const SparseMatrix* adj, const Variable& h) const;
  Variable ForwardSparseRelu(const SparseMatrix* adj,
                             const SparseMatrix* x) const;

  int64_t in_dim() const { return weight_.rows(); }
  int64_t out_dim() const { return weight_.cols(); }

 private:
  const SparseMatrix* adj_;
  Variable weight_;
  Variable bias_;
};

}  // namespace rdd

#endif  // RDD_NN_GRAPH_CONV_H_
