#ifndef RDD_NN_MODULE_H_
#define RDD_NN_MODULE_H_

#include <vector>

#include "autograd/variable.h"

namespace rdd {

/// Base class for trainable components. A Module owns trainable parameters
/// (leaf Variables with requires_grad = true) and exposes them for the
/// optimizer. Composite modules collect the parameters of their children.
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module (children included).
  const std::vector<Variable>& Parameters() const { return params_; }

  /// Total number of scalar parameters.
  int64_t NumParameters() const;

 protected:
  Module() = default;

  /// Wraps `init` as a trainable leaf and registers it.
  Variable RegisterParameter(Matrix init);

  /// Registers every parameter of a child module.
  void RegisterChild(const Module& child);

 private:
  std::vector<Variable> params_;
};

}  // namespace rdd

#endif  // RDD_NN_MODULE_H_
