#include "nn/module.h"

namespace rdd {

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const Variable& p : params_) total += p.value().size();
  return total;
}

Variable Module::RegisterParameter(Matrix init) {
  Variable param(std::move(init), /*requires_grad=*/true);
  params_.push_back(param);
  return param;
}

void Module::RegisterChild(const Module& child) {
  for (const Variable& p : child.Parameters()) params_.push_back(p);
}

}  // namespace rdd
