#include "nn/optimizer.h"

#include <cmath>

#include "observe/metrics.h"
#include "parallel/parallel_for.h"
#include "simd/kernel_stats.h"
#include "simd/simd.h"
#include "util/logging.h"

namespace rdd {

Optimizer::Optimizer(std::vector<Variable> params)
    : params_(std::move(params)) {
  for (const Variable& p : params_) {
    RDD_CHECK(p.defined());
    RDD_CHECK(p.requires_grad());
  }
}

void Optimizer::ZeroGrad() {
  for (Variable& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Variable> params, float lr, float weight_decay)
    : Optimizer(std::move(params)), lr_(lr), weight_decay_(weight_decay) {
  RDD_CHECK_GT(lr, 0.0f);
  RDD_CHECK_GE(weight_decay, 0.0f);
}

void Sgd::Step() {
  const auto& kt = simd::K();
  if (observe::MetricsEnabled()) {
    int64_t elements = 0;
    for (const Variable& p : params_) elements += p.value().size();
    simd::RecordOptimizerStep(static_cast<int64_t>(params_.size()), elements);
  }
  for (Variable& p : params_) {
    Matrix* w = p.mutable_value();
    const Matrix& g = p.grad();
    float* wd = w->Data();
    const float* gd = g.Data();
    // Elementwise, so the chunking never changes any element's arithmetic.
    parallel::ParallelFor(0, w->size(), parallel::GrainForCost(4),
                          [&](int64_t i0, int64_t i1) {
                            kt.sgd_step(wd + i0, gd + i0, i1 - i0, lr_,
                                        weight_decay_);
                          });
  }
}

Adam::Adam(std::vector<Variable> params, float lr, float weight_decay,
           float beta1, float beta2, float epsilon)
    : Optimizer(std::move(params)),
      lr_(lr),
      weight_decay_(weight_decay),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  RDD_CHECK_GT(lr, 0.0f);
  RDD_CHECK_GE(weight_decay, 0.0f);
  RDD_CHECK_GT(beta1, 0.0f);
  RDD_CHECK_LT(beta1, 1.0f);
  RDD_CHECK_GT(beta2, 0.0f);
  RDD_CHECK_LT(beta2, 1.0f);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Variable& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::Step() {
  ++step_count_;
  // Bias corrections in double, cast once: float pow loses ~1e-4 relative
  // precision on 1 - beta2^t for beta2 = 0.999 at small t, exactly the
  // regime where the correction matters.
  const float bias1 = static_cast<float>(
      1.0 - std::pow(static_cast<double>(beta1_),
                     static_cast<double>(step_count_)));
  const float bias2 = static_cast<float>(
      1.0 - std::pow(static_cast<double>(beta2_),
                     static_cast<double>(step_count_)));
  const auto& kt = simd::K();
  if (observe::MetricsEnabled()) {
    int64_t elements = 0;
    for (const Variable& p : params_) elements += p.value().size();
    simd::RecordOptimizerStep(static_cast<int64_t>(params_.size()), elements);
  }
  for (size_t k = 0; k < params_.size(); ++k) {
    Matrix* w = params_[k].mutable_value();
    const Matrix& g = params_[k].grad();
    float* wd = w->Data();
    const float* gd = g.Data();
    float* md = m_[k].Data();
    float* vd = v_[k].Data();
    // Elementwise, so the chunking never changes any element's arithmetic.
    parallel::ParallelFor(0, w->size(), parallel::GrainForCost(8),
                          [&](int64_t i0, int64_t i1) {
                            kt.adam_step(wd + i0, md + i0, vd + i0, gd + i0,
                                         i1 - i0, lr_, weight_decay_, beta1_,
                                         beta2_, bias1, bias2, epsilon_);
                          });
  }
}

}  // namespace rdd
