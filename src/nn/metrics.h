#ifndef RDD_NN_METRICS_H_
#define RDD_NN_METRICS_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace rdd {

/// Fraction of `indices` whose argmax row of `scores` (logits or
/// probabilities) equals the node's label. Empty index sets yield 0.
double Accuracy(const Matrix& scores, const std::vector<int64_t>& labels,
                const std::vector<int64_t>& indices);

/// Same as Accuracy but over precomputed hard predictions.
double AccuracyFromPredictions(const std::vector<int64_t>& predictions,
                               const std::vector<int64_t>& labels,
                               const std::vector<int64_t>& indices);

/// k x k confusion matrix over `indices`: entry (true, predicted) counts.
Matrix ConfusionMatrix(const Matrix& scores,
                       const std::vector<int64_t>& labels,
                       const std::vector<int64_t>& indices,
                       int64_t num_classes);

/// Macro-averaged F1 score over `indices` (unweighted mean of per-class F1,
/// classes absent from the index set skipped).
double MacroF1(const Matrix& scores, const std::vector<int64_t>& labels,
               const std::vector<int64_t>& indices, int64_t num_classes);

}  // namespace rdd

#endif  // RDD_NN_METRICS_H_
