#ifndef RDD_NN_LINEAR_H_
#define RDD_NN_LINEAR_H_

#include <cstdint>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "nn/module.h"
#include "tensor/sparse.h"
#include "util/random.h"

namespace rdd {

/// Fully-connected layer y = x W + b with Glorot-initialized weights and a
/// zero-initialized bias. Accepts either a dense Variable input or a
/// constant sparse input (for the first layer over bag-of-words features).
class Linear : public Module {
 public:
  /// Creates a layer mapping `in_dim` features to `out_dim` outputs.
  Linear(int64_t in_dim, int64_t out_dim, Rng* rng, bool use_bias = true);

  /// Dense forward: x is (n x in_dim).
  Variable Forward(const Variable& x) const;

  /// Sparse forward: x is a constant (n x in_dim) sparse matrix that must
  /// outlive the backward pass.
  Variable ForwardSparse(const SparseMatrix* x) const;

  /// relu(Forward(x)) through the fusion pass (autograd/fusion.h): one
  /// fused tape node when RDD_FUSE is on, the literal Matmul + AddBias +
  /// Relu sequence otherwise — bit-identical either way.
  Variable ForwardRelu(const Variable& x) const;

  /// relu(ForwardSparse(x)) through the fusion pass.
  Variable ForwardSparseRelu(const SparseMatrix* x) const;

  int64_t in_dim() const { return weight_.rows(); }
  int64_t out_dim() const { return weight_.cols(); }

  const Variable& weight() const { return weight_; }

  /// The 1 x out_dim bias row; undefined (`!defined()`) when the layer was
  /// built with use_bias = false. Exposed for tape-free inference paths.
  const Variable& bias() const { return bias_; }

 private:
  Variable weight_;
  Variable bias_;  ///< Undefined when use_bias is false.
};

}  // namespace rdd

#endif  // RDD_NN_LINEAR_H_
