#include "nn/metrics.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace rdd {

double Accuracy(const Matrix& scores, const std::vector<int64_t>& labels,
                const std::vector<int64_t>& indices) {
  return AccuracyFromPredictions(ArgmaxRows(scores), labels, indices);
}

double AccuracyFromPredictions(const std::vector<int64_t>& predictions,
                               const std::vector<int64_t>& labels,
                               const std::vector<int64_t>& indices) {
  RDD_CHECK_EQ(predictions.size(), labels.size());
  if (indices.empty()) return 0.0;
  int64_t correct = 0;
  for (int64_t i : indices) {
    RDD_CHECK_GE(i, 0);
    RDD_CHECK_LT(i, static_cast<int64_t>(labels.size()));
    if (predictions[static_cast<size_t>(i)] == labels[static_cast<size_t>(i)]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(indices.size());
}

Matrix ConfusionMatrix(const Matrix& scores,
                       const std::vector<int64_t>& labels,
                       const std::vector<int64_t>& indices,
                       int64_t num_classes) {
  RDD_CHECK_GT(num_classes, 0);
  const std::vector<int64_t> preds = ArgmaxRows(scores);
  Matrix confusion(num_classes, num_classes);
  for (int64_t i : indices) {
    const int64_t truth = labels[static_cast<size_t>(i)];
    const int64_t pred = preds[static_cast<size_t>(i)];
    RDD_CHECK_GE(truth, 0);
    RDD_CHECK_LT(truth, num_classes);
    RDD_CHECK_GE(pred, 0);
    RDD_CHECK_LT(pred, num_classes);
    confusion.At(truth, pred) += 1.0f;
  }
  return confusion;
}

double MacroF1(const Matrix& scores, const std::vector<int64_t>& labels,
               const std::vector<int64_t>& indices, int64_t num_classes) {
  const Matrix confusion = ConfusionMatrix(scores, labels, indices, num_classes);
  double f1_sum = 0.0;
  int64_t present_classes = 0;
  for (int64_t c = 0; c < num_classes; ++c) {
    double tp = confusion.At(c, c);
    double fp = 0.0;
    double fn = 0.0;
    for (int64_t other = 0; other < num_classes; ++other) {
      if (other == c) continue;
      fp += confusion.At(other, c);
      fn += confusion.At(c, other);
    }
    if (tp + fn == 0.0) continue;  // Class absent from the index set.
    ++present_classes;
    if (tp == 0.0) continue;       // Precision and recall both zero.
    const double precision = tp / (tp + fp);
    const double recall = tp / (tp + fn);
    f1_sum += 2.0 * precision * recall / (precision + recall);
  }
  if (present_classes == 0) return 0.0;
  return f1_sum / static_cast<double>(present_classes);
}

}  // namespace rdd
