#include "nn/linear.h"

#include "autograd/fusion.h"
#include "nn/init.h"

namespace rdd {

Linear::Linear(int64_t in_dim, int64_t out_dim, Rng* rng, bool use_bias) {
  weight_ = RegisterParameter(GlorotUniform(in_dim, out_dim, rng));
  if (use_bias) bias_ = RegisterParameter(ZeroInit(1, out_dim));
}

Variable Linear::Forward(const Variable& x) const {
  Variable out = ag::Matmul(x, weight_);
  if (bias_.defined()) out = ag::AddBias(out, bias_);
  return out;
}

Variable Linear::ForwardSparse(const SparseMatrix* x) const {
  Variable out = ag::SpmmConst(x, weight_);
  if (bias_.defined()) out = ag::AddBias(out, bias_);
  return out;
}

Variable Linear::ForwardRelu(const Variable& x) const {
  return ag::FusedLinearRelu(x, weight_, bias_);
}

Variable Linear::ForwardSparseRelu(const SparseMatrix* x) const {
  return ag::FusedSpmmBiasRelu(x, weight_, bias_);
}

}  // namespace rdd
