#include "nn/init.h"

#include <cmath>

#include "util/logging.h"

namespace rdd {

Matrix GlorotUniform(int64_t fan_in, int64_t fan_out, Rng* rng) {
  RDD_CHECK(rng != nullptr);
  RDD_CHECK_GT(fan_in + fan_out, 0);
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return UniformInit(fan_in, fan_out, -a, a, rng);
}

Matrix UniformInit(int64_t rows, int64_t cols, float lo, float hi, Rng* rng) {
  RDD_CHECK(rng != nullptr);
  Matrix m(rows, cols);
  float* data = m.Data();
  for (int64_t i = 0; i < m.size(); ++i) {
    data[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return m;
}

Matrix ZeroInit(int64_t rows, int64_t cols) { return Matrix(rows, cols); }

}  // namespace rdd
