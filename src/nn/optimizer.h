#ifndef RDD_NN_OPTIMIZER_H_
#define RDD_NN_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "tensor/matrix.h"

namespace rdd {

/// Interface shared by all gradient-descent optimizers. Usage per step:
/// build the loss, call loss.Backward() (which freshly populates parameter
/// gradients), then call Step().
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients currently stored on the
  /// parameters this optimizer was constructed with.
  virtual void Step() = 0;

  /// Current learning rate.
  virtual float lr() const = 0;

  /// Overrides the learning rate; used by cyclic schedules such as the
  /// Snapshot Ensemble's per-cycle cosine annealing.
  virtual void set_lr(float lr) = 0;

  /// Clears gradients on all managed parameters.
  void ZeroGrad();

 protected:
  explicit Optimizer(std::vector<Variable> params);

  std::vector<Variable> params_;
};

/// Plain stochastic gradient descent with optional L2 weight decay:
/// w <- w - lr * (g + weight_decay * w).
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Variable> params, float lr, float weight_decay = 0.0f);

  void Step() override;
  float lr() const override { return lr_; }
  void set_lr(float lr) override { lr_ = lr; }

 private:
  float lr_;
  float weight_decay_;
};

/// Adam (Kingma & Ba) with L2 regularization folded into the gradient, the
/// convention used by the paper's PyTorch setup (lr = 0.01, l2 = 5e-4 on
/// the citation networks).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Variable> params, float lr, float weight_decay = 0.0f,
       float beta1 = 0.9f, float beta2 = 0.999f, float epsilon = 1e-8f);

  void Step() override;
  float lr() const override { return lr_; }
  void set_lr(float lr) override { lr_ = lr; }

  int64_t step_count() const { return step_count_; }

 private:
  float lr_;
  float weight_decay_;
  float beta1_;
  float beta2_;
  float epsilon_;
  int64_t step_count_ = 0;
  std::vector<Matrix> m_;  ///< First-moment estimates, one per parameter.
  std::vector<Matrix> v_;  ///< Second-moment estimates.
};

}  // namespace rdd

#endif  // RDD_NN_OPTIMIZER_H_
