#include "tensor/matrix.h"

#include <cmath>
#include <cstring>

#include "parallel/parallel_for.h"
#include "simd/simd.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace rdd {

namespace {

/// Shared shape of every in-place elementwise kernel below: parallel over
/// disjoint index blocks handed to a vectorized kernel as (begin, length).
/// Elementwise results do not depend on the chunking, so they stay
/// bit-identical at any thread count and on any SIMD backend.
template <typename Fn>
void ChunkedParallel(size_t size, const Fn& fn) {
  parallel::ParallelFor(0, static_cast<int64_t>(size),
                        parallel::GrainForCost(1),
                        [&](int64_t i0, int64_t i1) { fn(i0, i1 - i0); });
}

}  // namespace

Matrix::Matrix(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols)) {
  RDD_CHECK_GE(rows, 0);
  RDD_CHECK_GE(cols, 0);
  // Pool buffers arrive uninitialized (recycled); the zero fill is what
  // keeps pooled and unpooled runs bit-identical.
  if (data_.size() > 0) {
    std::memset(data_.data(), 0, data_.size() * sizeof(float));
  }
}

Matrix::Matrix(int64_t rows, int64_t cols, const std::vector<float>& values)
    : rows_(rows), cols_(cols), data_(values.size()) {
  RDD_CHECK_GE(rows, 0);
  RDD_CHECK_GE(cols, 0);
  RDD_CHECK_EQ(static_cast<int64_t>(values.size()), rows * cols);
  if (!values.empty()) {
    std::memcpy(data_.data(), values.data(), values.size() * sizeof(float));
  }
}

Matrix::Matrix(const Matrix& other)
    : rows_(other.rows_), cols_(other.cols_), data_(other.data_.size()) {
  if (data_.size() > 0) {
    std::memcpy(data_.data(), other.data_.data(),
                data_.size() * sizeof(float));
  }
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this == &other) return *this;
  // Reuse this matrix's buffer when the capacity already matches; same-shape
  // assignment (parameter restores, teacher caches) is the common case.
  if (data_.size() != other.data_.size()) {
    data_ = memory::PooledBuffer(other.data_.size());
  }
  rows_ = other.rows_;
  cols_ = other.cols_;
  if (data_.size() > 0) {
    std::memcpy(data_.data(), other.data_.data(),
                data_.size() * sizeof(float));
  }
  return *this;
}

Matrix::Matrix(Matrix&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)) {
  other.rows_ = 0;
  other.cols_ = 0;
}

Matrix& Matrix::operator=(Matrix&& other) noexcept {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = std::move(other.data_);
  other.rows_ = 0;
  other.cols_ = 0;
  return *this;
}

Matrix Matrix::Identity(int64_t n) {
  Matrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m.At(i, i) = 1.0f;
  return m;
}

Matrix Matrix::Constant(int64_t rows, int64_t cols, float value) {
  Matrix m(rows, cols);
  m.Fill(value);
  return m;
}

float& Matrix::At(int64_t r, int64_t c) {
  RDD_CHECK_GE(r, 0);
  RDD_CHECK_LT(r, rows_);
  RDD_CHECK_GE(c, 0);
  RDD_CHECK_LT(c, cols_);
  return data_.data()[static_cast<size_t>(r * cols_ + c)];
}

float Matrix::At(int64_t r, int64_t c) const {
  RDD_CHECK_GE(r, 0);
  RDD_CHECK_LT(r, rows_);
  RDD_CHECK_GE(c, 0);
  RDD_CHECK_LT(c, cols_);
  return data_.data()[static_cast<size_t>(r * cols_ + c)];
}

float* Matrix::RowData(int64_t r) {
  RDD_CHECK_GE(r, 0);
  RDD_CHECK_LT(r, rows_);
  return data_.data() + r * cols_;
}

const float* Matrix::RowData(int64_t r) const {
  RDD_CHECK_GE(r, 0);
  RDD_CHECK_LT(r, rows_);
  return data_.data() + r * cols_;
}

void Matrix::Fill(float value) {
  float* data = data_.data();
  const size_t n = data_.size();
  for (size_t i = 0; i < n; ++i) data[i] = value;
}

void Matrix::Add(const Matrix& other) {
  RDD_CHECK_EQ(rows_, other.rows_);
  RDD_CHECK_EQ(cols_, other.cols_);
  float* a = data_.data();
  const float* b = other.data_.data();
  const auto& kt = simd::K();
  ChunkedParallel(data_.size(),
                  [&](int64_t i0, int64_t len) { kt.add(b + i0, a + i0, len); });
}

void Matrix::Sub(const Matrix& other) {
  RDD_CHECK_EQ(rows_, other.rows_);
  RDD_CHECK_EQ(cols_, other.cols_);
  float* a = data_.data();
  const float* b = other.data_.data();
  const auto& kt = simd::K();
  ChunkedParallel(data_.size(),
                  [&](int64_t i0, int64_t len) { kt.sub(b + i0, a + i0, len); });
}

void Matrix::Mul(const Matrix& other) {
  RDD_CHECK_EQ(rows_, other.rows_);
  RDD_CHECK_EQ(cols_, other.cols_);
  float* a = data_.data();
  const float* b = other.data_.data();
  const auto& kt = simd::K();
  ChunkedParallel(data_.size(),
                  [&](int64_t i0, int64_t len) { kt.mul(b + i0, a + i0, len); });
}

void Matrix::Scale(float factor) {
  float* a = data_.data();
  const auto& kt = simd::K();
  ChunkedParallel(data_.size(),
                  [&](int64_t i0, int64_t len) { kt.scale(factor, a + i0, len); });
}

void Matrix::Axpy(float factor, const Matrix& other) {
  RDD_CHECK_EQ(rows_, other.rows_);
  RDD_CHECK_EQ(cols_, other.cols_);
  float* a = data_.data();
  const float* b = other.data_.data();
  const auto& kt = simd::K();
  ChunkedParallel(data_.size(), [&](int64_t i0, int64_t len) {
    kt.axpy(factor, b + i0, a + i0, len);
  });
}

Matrix Matrix::Row(int64_t r) const {
  Matrix out(1, cols_);
  const float* src = RowData(r);
  for (int64_t c = 0; c < cols_; ++c) out.At(0, c) = src[c];
  return out;
}

void Matrix::SetRow(int64_t r, const Matrix& row) {
  RDD_CHECK_EQ(row.rows(), 1);
  RDD_CHECK_EQ(row.cols(), cols_);
  float* dst = RowData(r);
  for (int64_t c = 0; c < cols_; ++c) dst[c] = row.At(0, c);
}

double Matrix::SquaredNorm() const {
  // Canonical 8-lane-grouped double reduction (see simd/simd.h); the
  // float->double widening makes each squared term exact.
  return simd::K().sumsq_f64(data_.data(), static_cast<int64_t>(data_.size()));
}

double Matrix::Sum() const {
  return simd::K().sum_f64(data_.data(), static_cast<int64_t>(data_.size()));
}

bool Matrix::Equals(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  const float* a = data_.data();
  const float* b = other.data_.data();
  const size_t n = data_.size();
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

bool Matrix::ApproxEquals(const Matrix& other, float tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  const float* a = data_.data();
  const float* b = other.data_.data();
  const size_t n = data_.size();
  for (size_t i = 0; i < n; ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::ToString() const {
  std::string out = "[";
  for (int64_t r = 0; r < rows_; ++r) {
    if (r > 0) out += ", ";
    out += "[";
    for (int64_t c = 0; c < cols_; ++c) {
      if (c > 0) out += ", ";
      out += StrFormat("%g", At(r, c));
    }
    out += "]";
  }
  out += "]";
  return out;
}

}  // namespace rdd
