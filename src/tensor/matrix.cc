#include "tensor/matrix.h"

#include <cmath>

#include "parallel/parallel_for.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace rdd {

namespace {

/// Shared shape of every in-place elementwise kernel below: parallel over
/// disjoint index blocks, so results are bit-identical at any thread count.
template <typename Fn>
void ElementwiseParallel(size_t size, const Fn& fn) {
  parallel::ParallelFor(0, static_cast<int64_t>(size),
                        parallel::GrainForCost(1),
                        [&](int64_t i0, int64_t i1) {
                          for (int64_t i = i0; i < i1; ++i) {
                            fn(static_cast<size_t>(i));
                          }
                        });
}

}  // namespace

Matrix::Matrix(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols), 0.0f) {
  RDD_CHECK_GE(rows, 0);
  RDD_CHECK_GE(cols, 0);
}

Matrix::Matrix(int64_t rows, int64_t cols, std::vector<float> values)
    : rows_(rows), cols_(cols), data_(std::move(values)) {
  RDD_CHECK_GE(rows, 0);
  RDD_CHECK_GE(cols, 0);
  RDD_CHECK_EQ(static_cast<int64_t>(data_.size()), rows * cols);
}

Matrix Matrix::Identity(int64_t n) {
  Matrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m.At(i, i) = 1.0f;
  return m;
}

Matrix Matrix::Constant(int64_t rows, int64_t cols, float value) {
  Matrix m(rows, cols);
  m.Fill(value);
  return m;
}

float& Matrix::At(int64_t r, int64_t c) {
  RDD_CHECK_GE(r, 0);
  RDD_CHECK_LT(r, rows_);
  RDD_CHECK_GE(c, 0);
  RDD_CHECK_LT(c, cols_);
  return data_[static_cast<size_t>(r * cols_ + c)];
}

float Matrix::At(int64_t r, int64_t c) const {
  RDD_CHECK_GE(r, 0);
  RDD_CHECK_LT(r, rows_);
  RDD_CHECK_GE(c, 0);
  RDD_CHECK_LT(c, cols_);
  return data_[static_cast<size_t>(r * cols_ + c)];
}

float* Matrix::RowData(int64_t r) {
  RDD_CHECK_GE(r, 0);
  RDD_CHECK_LT(r, rows_);
  return data_.data() + r * cols_;
}

const float* Matrix::RowData(int64_t r) const {
  RDD_CHECK_GE(r, 0);
  RDD_CHECK_LT(r, rows_);
  return data_.data() + r * cols_;
}

void Matrix::Fill(float value) {
  for (float& x : data_) x = value;
}

void Matrix::Add(const Matrix& other) {
  RDD_CHECK_EQ(rows_, other.rows_);
  RDD_CHECK_EQ(cols_, other.cols_);
  ElementwiseParallel(data_.size(),
                      [&](size_t i) { data_[i] += other.data_[i]; });
}

void Matrix::Sub(const Matrix& other) {
  RDD_CHECK_EQ(rows_, other.rows_);
  RDD_CHECK_EQ(cols_, other.cols_);
  ElementwiseParallel(data_.size(),
                      [&](size_t i) { data_[i] -= other.data_[i]; });
}

void Matrix::Mul(const Matrix& other) {
  RDD_CHECK_EQ(rows_, other.rows_);
  RDD_CHECK_EQ(cols_, other.cols_);
  ElementwiseParallel(data_.size(),
                      [&](size_t i) { data_[i] *= other.data_[i]; });
}

void Matrix::Scale(float factor) {
  ElementwiseParallel(data_.size(), [&](size_t i) { data_[i] *= factor; });
}

void Matrix::Axpy(float factor, const Matrix& other) {
  RDD_CHECK_EQ(rows_, other.rows_);
  RDD_CHECK_EQ(cols_, other.cols_);
  ElementwiseParallel(data_.size(),
                      [&](size_t i) { data_[i] += factor * other.data_[i]; });
}

Matrix Matrix::Row(int64_t r) const {
  Matrix out(1, cols_);
  const float* src = RowData(r);
  for (int64_t c = 0; c < cols_; ++c) out.At(0, c) = src[c];
  return out;
}

void Matrix::SetRow(int64_t r, const Matrix& row) {
  RDD_CHECK_EQ(row.rows(), 1);
  RDD_CHECK_EQ(row.cols(), cols_);
  float* dst = RowData(r);
  for (int64_t c = 0; c < cols_; ++c) dst[c] = row.At(0, c);
}

double Matrix::SquaredNorm() const {
  double acc = 0.0;
  for (float x : data_) acc += static_cast<double>(x) * x;
  return acc;
}

double Matrix::Sum() const {
  double acc = 0.0;
  for (float x : data_) acc += x;
  return acc;
}

bool Matrix::Equals(const Matrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         data_ == other.data_;
}

bool Matrix::ApproxEquals(const Matrix& other, float tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::ToString() const {
  std::string out = "[";
  for (int64_t r = 0; r < rows_; ++r) {
    if (r > 0) out += ", ";
    out += "[";
    for (int64_t c = 0; c < cols_; ++c) {
      if (c > 0) out += ", ";
      out += StrFormat("%g", At(r, c));
    }
    out += "]";
  }
  out += "]";
  return out;
}

}  // namespace rdd
