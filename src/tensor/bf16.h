#ifndef RDD_TENSOR_BF16_H_
#define RDD_TENSOR_BF16_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace rdd {

/// Dense row-major matrix stored as bf16 (upper 16 bits of fp32, see
/// simd/bf16.h). A storage format, not a compute format: kernels widen each
/// element exactly back to fp32 before any arithmetic, so a Bf16Matrix-fed
/// GEMM keeps the determinism contract of simd/simd.h — the only rounding
/// happens once, at Pack time (round-to-nearest-even, max relative error
/// 2^-8). Used by the serving tier (RDD_BF16=1) to halve weight-matrix
/// memory traffic; results are tolerance-equal to fp32, never bit-equal.
class Bf16Matrix {
 public:
  /// Empty 0 x 0 matrix.
  Bf16Matrix() = default;

  /// Rounds every entry of `m` to bf16 via the active backend's bf16_pack.
  static Bf16Matrix Pack(const Matrix& m);

  /// Exact fp32 widening of the stored values (the round trip
  /// Pack(m).Unpack() loses only the Pack rounding).
  Matrix Unpack() const;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  const uint16_t* RowData(int64_t r) const {
    return data_.data() + r * cols_;
  }
  const uint16_t* Data() const { return data_.data(); }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<uint16_t> data_;
};

/// a (m x k, fp32) times b (k x n, bf16 storage): the serving-tier GEMM.
/// Same parallel-over-output-rows driver shape as Matmul, with the B panel
/// read through the exact-widening bf16 load; accumulation is fp32 with the
/// same strict per-element FMA order, so the result is bit-identical across
/// backends and thread counts (though not to the fp32-weight GEMM).
Matrix MatmulBf16(const Matrix& a, const Bf16Matrix& b);

/// MatmulBf16 with the fused bias + ReLU epilogue applied per output row
/// (bias_row is 1 x b.cols(), kept in fp32 — biases are tiny and packing
/// them buys nothing).
Matrix MatmulBf16BiasRelu(const Matrix& a, const Bf16Matrix& b,
                          const Matrix& bias_row);

}  // namespace rdd

#endif  // RDD_TENSOR_BF16_H_
