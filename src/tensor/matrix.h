#ifndef RDD_TENSOR_MATRIX_H_
#define RDD_TENSOR_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "memory/buffer_pool.h"

namespace rdd {

/// Dense row-major single-precision matrix. This is the value type all
/// neural-network computation in the library runs on; vectors are represented
/// as 1 x n or n x 1 matrices. Copyable and movable.
///
/// Storage comes from the process-wide memory::BufferPool: construction
/// borrows a buffer, destruction returns it, so steady-state training epochs
/// recycle the same allocations instead of churning the heap (see
/// DESIGN.md "Memory ownership model"). Pooling changes only where the bytes
/// live — every numeric result is bit-identical with RDD_POOL_DISABLE=1.
class Matrix {
 public:
  /// Creates an empty 0 x 0 matrix.
  Matrix() = default;

  /// Creates a rows x cols matrix initialized to zero.
  Matrix(int64_t rows, int64_t cols);

  /// Creates a rows x cols matrix from row-major values. `values` must have
  /// exactly rows * cols entries.
  Matrix(int64_t rows, int64_t cols, const std::vector<float>& values);

  Matrix(const Matrix& other);
  Matrix& operator=(const Matrix& other);
  Matrix(Matrix&& other) noexcept;
  Matrix& operator=(Matrix&& other) noexcept;

  /// Identity matrix of size n x n.
  static Matrix Identity(int64_t n);

  /// Matrix with every entry equal to `value`.
  static Matrix Constant(int64_t rows, int64_t cols, float value);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// Element access. Bounds are checked with RDD_CHECK in debug-style code
  /// paths; hot kernels use RowData pointers instead.
  float& At(int64_t r, int64_t c);
  float At(int64_t r, int64_t c) const;

  /// Raw pointer to the start of row r.
  float* RowData(int64_t r);
  const float* RowData(int64_t r) const;

  /// Raw pointer to the full row-major buffer (nullptr when empty).
  float* Data() { return data_.data(); }
  const float* Data() const { return data_.data(); }

  /// Sets every entry to `value`.
  void Fill(float value);

  /// Sets every entry to zero.
  void SetZero() { Fill(0.0f); }

  /// In-place elementwise operations. Shapes must match exactly.
  void Add(const Matrix& other);
  void Sub(const Matrix& other);
  void Mul(const Matrix& other);  ///< Hadamard product.
  void Scale(float factor);
  /// this += factor * other.
  void Axpy(float factor, const Matrix& other);

  /// Returns a copy of row r as a 1 x cols matrix.
  Matrix Row(int64_t r) const;

  /// Copies `row` (1 x cols) into row r of this matrix.
  void SetRow(int64_t r, const Matrix& row);

  /// Frobenius norm squared.
  double SquaredNorm() const;

  /// Sum of all entries.
  double Sum() const;

  /// True iff shapes and all entries are exactly equal.
  bool Equals(const Matrix& other) const;

  /// True iff shapes match and entries agree within `tol` absolutely.
  bool ApproxEquals(const Matrix& other, float tol) const;

  /// Debug rendering, e.g. "[[1, 2], [3, 4]]". For small matrices only.
  std::string ToString() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  memory::PooledBuffer data_;
};

}  // namespace rdd

#endif  // RDD_TENSOR_MATRIX_H_
