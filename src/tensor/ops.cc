#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "parallel/parallel_for.h"
#include "util/logging.h"

namespace rdd {

// The dense GEMM paths deliberately do NOT skip zero entries of `a`: a
// zero-times-NaN/Inf product must stay NaN per IEEE 754 so upstream
// divergence is visible, and on dense activations the branch costs more
// than the multiply it saves.
//
// All three GEMM variants use a 4-wide register-blocked micro-kernel (four
// reduction indices per pass over the output row). The unroll pattern is a
// fixed function of the shape — never of the thread count or chunk layout —
// so results stay bit-identical between RDD_NUM_THREADS=1 and N; they differ
// from a naive triple loop only in float-summation grouping.

Matrix Matmul(const Matrix& a, const Matrix& b) {
  RDD_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  // Parallel over output rows: each chunk writes a disjoint row range.
  // out is freshly allocated, so out_row cannot alias a or b.
  parallel::ParallelFor(
      0, m, parallel::GrainForCost(k * n), [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* a_row = a.RowData(i);
          float* __restrict__ out_row = out.RowData(i);
          int64_t p = 0;
          for (; p + 4 <= k; p += 4) {
            const float a0 = a_row[p];
            const float a1 = a_row[p + 1];
            const float a2 = a_row[p + 2];
            const float a3 = a_row[p + 3];
            const float* b0 = b.RowData(p);
            const float* b1 = b.RowData(p + 1);
            const float* b2 = b.RowData(p + 2);
            const float* b3 = b.RowData(p + 3);
            for (int64_t j = 0; j < n; ++j) {
              out_row[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
            }
          }
          for (; p < k; ++p) {
            const float av = a_row[p];
            const float* b_row = b.RowData(p);
            for (int64_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
          }
        }
      });
  return out;
}

Matrix MatmulTransposeA(const Matrix& a, const Matrix& b) {
  RDD_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.cols(), b.cols());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  // out(p, :) += a(i, p) * b(i, :). With the reduction index i in the OUTER
  // loop every i writes all k output rows, so row-parallelism over i would
  // race. Instead parallelize over output rows p (a column-block split of
  // `a`): each chunk owns a disjoint slice of `out`, and the i-blocked
  // accumulation per element is fixed per shape, keeping results
  // bit-identical at any thread count. Reads of a(i, p) become strided,
  // which is the price of race-freedom without per-thread scratch buffers.
  parallel::ParallelFor(
      0, k, parallel::GrainForCost(m * n), [&](int64_t p0, int64_t p1) {
        for (int64_t p = p0; p < p1; ++p) {
          float* __restrict__ out_row = out.RowData(p);
          int64_t i = 0;
          for (; i + 4 <= m; i += 4) {
            const float a0 = a.RowData(i)[p];
            const float a1 = a.RowData(i + 1)[p];
            const float a2 = a.RowData(i + 2)[p];
            const float a3 = a.RowData(i + 3)[p];
            const float* b0 = b.RowData(i);
            const float* b1 = b.RowData(i + 1);
            const float* b2 = b.RowData(i + 2);
            const float* b3 = b.RowData(i + 3);
            for (int64_t j = 0; j < n; ++j) {
              out_row[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
            }
          }
          for (; i < m; ++i) {
            const float av = a.RowData(i)[p];
            const float* b_row = b.RowData(i);
            for (int64_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
          }
        }
      });
  return out;
}

Matrix MatmulTransposeB(const Matrix& a, const Matrix& b) {
  RDD_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows(), b.rows());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  parallel::ParallelFor(
      0, m, parallel::GrainForCost(k * n), [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* a_row = a.RowData(i);
          float* __restrict__ out_row = out.RowData(i);
          for (int64_t j = 0; j < n; ++j) {
            const float* b_row = b.RowData(j);
            // Four independent accumulators break the add-latency chain.
            float acc0 = 0.0f;
            float acc1 = 0.0f;
            float acc2 = 0.0f;
            float acc3 = 0.0f;
            int64_t p = 0;
            for (; p + 4 <= k; p += 4) {
              acc0 += a_row[p] * b_row[p];
              acc1 += a_row[p + 1] * b_row[p + 1];
              acc2 += a_row[p + 2] * b_row[p + 2];
              acc3 += a_row[p + 3] * b_row[p + 3];
            }
            float acc = (acc0 + acc1) + (acc2 + acc3);
            for (; p < k; ++p) acc += a_row[p] * b_row[p];
            out_row[j] = acc;
          }
        }
      });
  return out;
}

Matrix Transpose(const Matrix& m) {
  Matrix out(m.cols(), m.rows());
  const int64_t rows = m.rows();
  const int64_t cols = m.cols();
  // Parallel over output rows (= input columns); writes are contiguous per
  // chunk, reads are strided.
  parallel::ParallelFor(
      0, cols, parallel::GrainForCost(rows), [&](int64_t c0, int64_t c1) {
        for (int64_t c = c0; c < c1; ++c) {
          float* out_row = out.RowData(c);
          for (int64_t r = 0; r < rows; ++r) out_row[r] = m.RowData(r)[c];
        }
      });
  return out;
}

Matrix Relu(const Matrix& m) {
  Matrix out = m;
  float* data = out.Data();
  parallel::ParallelFor(0, out.size(), parallel::GrainForCost(1),
                        [&](int64_t i0, int64_t i1) {
                          for (int64_t i = i0; i < i1; ++i) {
                            data[i] = std::max(0.0f, data[i]);
                          }
                        });
  return out;
}

Matrix ReluBackward(const Matrix& grad, const Matrix& input) {
  RDD_CHECK_EQ(grad.rows(), input.rows());
  RDD_CHECK_EQ(grad.cols(), input.cols());
  Matrix out = grad;
  float* g = out.Data();
  const float* x = input.Data();
  parallel::ParallelFor(0, out.size(), parallel::GrainForCost(1),
                        [&](int64_t i0, int64_t i1) {
                          for (int64_t i = i0; i < i1; ++i) {
                            if (x[i] <= 0.0f) g[i] = 0.0f;
                          }
                        });
  return out;
}

Matrix SoftmaxRows(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  const int64_t cols = logits.cols();
  parallel::ParallelFor(
      0, logits.rows(), parallel::GrainForCost(4 * cols),
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* in = logits.RowData(r);
          float* o = out.RowData(r);
          float max_v = in[0];
          for (int64_t c = 1; c < cols; ++c) max_v = std::max(max_v, in[c]);
          double sum = 0.0;
          for (int64_t c = 0; c < cols; ++c) {
            o[c] = std::exp(in[c] - max_v);
            sum += o[c];
          }
          const float inv = static_cast<float>(1.0 / sum);
          for (int64_t c = 0; c < cols; ++c) o[c] *= inv;
        }
      });
  return out;
}

Matrix LogSoftmaxRows(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  const int64_t cols = logits.cols();
  parallel::ParallelFor(
      0, logits.rows(), parallel::GrainForCost(4 * cols),
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* in = logits.RowData(r);
          float* o = out.RowData(r);
          float max_v = in[0];
          for (int64_t c = 1; c < cols; ++c) max_v = std::max(max_v, in[c]);
          double sum = 0.0;
          for (int64_t c = 0; c < cols; ++c) {
            sum += std::exp(static_cast<double>(in[c]) - max_v);
          }
          const float log_sum = static_cast<float>(std::log(sum)) + max_v;
          for (int64_t c = 0; c < cols; ++c) o[c] = in[c] - log_sum;
        }
      });
  return out;
}

std::vector<double> RowEntropy(const Matrix& probs) {
  std::vector<double> entropy(static_cast<size_t>(probs.rows()), 0.0);
  const int64_t cols = probs.cols();
  parallel::ParallelFor(
      0, probs.rows(), parallel::GrainForCost(4 * cols),
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* p = probs.RowData(r);
          double h = 0.0;
          for (int64_t c = 0; c < cols; ++c) {
            if (p[c] > 0.0f) h -= static_cast<double>(p[c]) * std::log(p[c]);
          }
          entropy[static_cast<size_t>(r)] = h;
        }
      });
  return entropy;
}

std::vector<int64_t> ArgmaxRows(const Matrix& m) {
  RDD_CHECK_GT(m.cols(), 0);
  std::vector<int64_t> idx(static_cast<size_t>(m.rows()), 0);
  const int64_t cols = m.cols();
  parallel::ParallelFor(
      0, m.rows(), parallel::GrainForCost(cols), [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* row = m.RowData(r);
          int64_t best = 0;
          for (int64_t c = 1; c < cols; ++c) {
            if (row[c] > row[best]) best = c;
          }
          idx[static_cast<size_t>(r)] = best;
        }
      });
  return idx;
}

Matrix ColumnSums(const Matrix& m) {
  Matrix out(1, m.cols());
  float* o = out.RowData(0);
  for (int64_t r = 0; r < m.rows(); ++r) {
    const float* row = m.RowData(r);
    for (int64_t c = 0; c < m.cols(); ++c) o[c] += row[c];
  }
  return out;
}

Matrix AddRowBroadcast(const Matrix& m, const Matrix& bias_row) {
  RDD_CHECK_EQ(bias_row.rows(), 1);
  RDD_CHECK_EQ(bias_row.cols(), m.cols());
  Matrix out = m;
  const float* bias = bias_row.RowData(0);
  for (int64_t r = 0; r < out.rows(); ++r) {
    float* row = out.RowData(r);
    for (int64_t c = 0; c < out.cols(); ++c) row[c] += bias[c];
  }
  return out;
}

Matrix GatherRows(const Matrix& m, const std::vector<int64_t>& indices) {
  Matrix out(static_cast<int64_t>(indices.size()), m.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    RDD_CHECK_GE(r, 0);
    RDD_CHECK_LT(r, m.rows());
    const float* src = m.RowData(r);
    float* dst = out.RowData(static_cast<int64_t>(i));
    for (int64_t c = 0; c < m.cols(); ++c) dst[c] = src[c];
  }
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.Add(b);
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.Sub(b);
  return out;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  RDD_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    float* dst = out.RowData(r);
    const float* a_row = a.RowData(r);
    for (int64_t c = 0; c < a.cols(); ++c) dst[c] = a_row[c];
    const float* b_row = b.RowData(r);
    for (int64_t c = 0; c < b.cols(); ++c) dst[a.cols() + c] = b_row[c];
  }
  return out;
}

}  // namespace rdd
