#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace rdd {

Matrix Matmul(const Matrix& a, const Matrix& b) {
  RDD_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a.RowData(i);
    float* out_row = out.RowData(i);
    for (int64_t p = 0; p < k; ++p) {
      const float av = a_row[p];
      if (av == 0.0f) continue;
      const float* b_row = b.RowData(p);
      for (int64_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
  return out;
}

Matrix MatmulTransposeA(const Matrix& a, const Matrix& b) {
  RDD_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.cols(), b.cols());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a.RowData(i);
    const float* b_row = b.RowData(i);
    for (int64_t p = 0; p < k; ++p) {
      const float av = a_row[p];
      if (av == 0.0f) continue;
      float* out_row = out.RowData(p);
      for (int64_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
  return out;
}

Matrix MatmulTransposeB(const Matrix& a, const Matrix& b) {
  RDD_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows(), b.rows());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a.RowData(i);
    float* out_row = out.RowData(i);
    for (int64_t j = 0; j < n; ++j) {
      const float* b_row = b.RowData(j);
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      out_row[j] = acc;
    }
  }
  return out;
}

Matrix Transpose(const Matrix& m) {
  Matrix out(m.cols(), m.rows());
  for (int64_t r = 0; r < m.rows(); ++r) {
    const float* row = m.RowData(r);
    for (int64_t c = 0; c < m.cols(); ++c) out.At(c, r) = row[c];
  }
  return out;
}

Matrix Relu(const Matrix& m) {
  Matrix out = m;
  float* data = out.Data();
  for (int64_t i = 0; i < out.size(); ++i) data[i] = std::max(0.0f, data[i]);
  return out;
}

Matrix ReluBackward(const Matrix& grad, const Matrix& input) {
  RDD_CHECK_EQ(grad.rows(), input.rows());
  RDD_CHECK_EQ(grad.cols(), input.cols());
  Matrix out = grad;
  float* g = out.Data();
  const float* x = input.Data();
  for (int64_t i = 0; i < out.size(); ++i) {
    if (x[i] <= 0.0f) g[i] = 0.0f;
  }
  return out;
}

Matrix SoftmaxRows(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  for (int64_t r = 0; r < logits.rows(); ++r) {
    const float* in = logits.RowData(r);
    float* o = out.RowData(r);
    float max_v = in[0];
    for (int64_t c = 1; c < logits.cols(); ++c) max_v = std::max(max_v, in[c]);
    double sum = 0.0;
    for (int64_t c = 0; c < logits.cols(); ++c) {
      o[c] = std::exp(in[c] - max_v);
      sum += o[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int64_t c = 0; c < logits.cols(); ++c) o[c] *= inv;
  }
  return out;
}

Matrix LogSoftmaxRows(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  for (int64_t r = 0; r < logits.rows(); ++r) {
    const float* in = logits.RowData(r);
    float* o = out.RowData(r);
    float max_v = in[0];
    for (int64_t c = 1; c < logits.cols(); ++c) max_v = std::max(max_v, in[c]);
    double sum = 0.0;
    for (int64_t c = 0; c < logits.cols(); ++c) {
      sum += std::exp(static_cast<double>(in[c]) - max_v);
    }
    const float log_sum = static_cast<float>(std::log(sum)) + max_v;
    for (int64_t c = 0; c < logits.cols(); ++c) o[c] = in[c] - log_sum;
  }
  return out;
}

std::vector<double> RowEntropy(const Matrix& probs) {
  std::vector<double> entropy(static_cast<size_t>(probs.rows()), 0.0);
  for (int64_t r = 0; r < probs.rows(); ++r) {
    const float* p = probs.RowData(r);
    double h = 0.0;
    for (int64_t c = 0; c < probs.cols(); ++c) {
      if (p[c] > 0.0f) h -= static_cast<double>(p[c]) * std::log(p[c]);
    }
    entropy[static_cast<size_t>(r)] = h;
  }
  return entropy;
}

std::vector<int64_t> ArgmaxRows(const Matrix& m) {
  RDD_CHECK_GT(m.cols(), 0);
  std::vector<int64_t> idx(static_cast<size_t>(m.rows()), 0);
  for (int64_t r = 0; r < m.rows(); ++r) {
    const float* row = m.RowData(r);
    int64_t best = 0;
    for (int64_t c = 1; c < m.cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    idx[static_cast<size_t>(r)] = best;
  }
  return idx;
}

Matrix ColumnSums(const Matrix& m) {
  Matrix out(1, m.cols());
  float* o = out.RowData(0);
  for (int64_t r = 0; r < m.rows(); ++r) {
    const float* row = m.RowData(r);
    for (int64_t c = 0; c < m.cols(); ++c) o[c] += row[c];
  }
  return out;
}

Matrix AddRowBroadcast(const Matrix& m, const Matrix& bias_row) {
  RDD_CHECK_EQ(bias_row.rows(), 1);
  RDD_CHECK_EQ(bias_row.cols(), m.cols());
  Matrix out = m;
  const float* bias = bias_row.RowData(0);
  for (int64_t r = 0; r < out.rows(); ++r) {
    float* row = out.RowData(r);
    for (int64_t c = 0; c < out.cols(); ++c) row[c] += bias[c];
  }
  return out;
}

Matrix GatherRows(const Matrix& m, const std::vector<int64_t>& indices) {
  Matrix out(static_cast<int64_t>(indices.size()), m.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    RDD_CHECK_GE(r, 0);
    RDD_CHECK_LT(r, m.rows());
    const float* src = m.RowData(r);
    float* dst = out.RowData(static_cast<int64_t>(i));
    for (int64_t c = 0; c < m.cols(); ++c) dst[c] = src[c];
  }
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.Add(b);
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.Sub(b);
  return out;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  RDD_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    float* dst = out.RowData(r);
    const float* a_row = a.RowData(r);
    for (int64_t c = 0; c < a.cols(); ++c) dst[c] = a_row[c];
    const float* b_row = b.RowData(r);
    for (int64_t c = 0; c < b.cols(); ++c) dst[a.cols() + c] = b_row[c];
  }
  return out;
}

}  // namespace rdd
