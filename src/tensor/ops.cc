#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "memory/buffer_pool.h"
#include "parallel/parallel_for.h"
#include "simd/kernel_stats.h"
#include "simd/simd.h"
#include "util/logging.h"

namespace rdd {

// The dense GEMM paths deliberately do NOT skip zero entries of `a`: a
// zero-times-NaN/Inf product must stay NaN per IEEE 754 so upstream
// divergence is visible, and on dense activations the branch costs more
// than the multiply it saves.
//
// All inner loops dispatch through simd::K(). Each output element sees one
// strictly ordered FMA chain over the reduction index — a fixed function of
// the shape, never of the thread count, SIMD backend, or packing decision —
// so results stay bit-identical across RDD_NUM_THREADS and RDD_SIMD settings
// (the contract in simd/simd.h).

namespace {

// Cache blocking for the broadcast-A GEMM driver below: the packed B panel
// is walked in kGemmKc-row blocks of kGemmNr-column tiles, sized so one
// k-block of one tile (32 KiB) plus the A sliver stays L1-resident.
constexpr int64_t kGemmKc = 256;
constexpr int64_t kGemmNr = 32;

// Repacks b (red x n, row-major) into contiguous kb x nb tiles: tile (k0,
// j0) starts at k0 * n + kb * j0, covering reduction rows [k0, k0 + kb) and
// columns [j0, j0 + nb). Total size is exactly red * n, so the pool buffer
// shape recurs across epochs and stays a steady-state hit. Packing changes
// only WHERE bytes live, never the per-element accumulation order.
void PackB(const float* b, int64_t red, int64_t n, float* packed) {
  const int64_t num_k_blocks = (red + kGemmKc - 1) / kGemmKc;
  parallel::ParallelFor(
      0, num_k_blocks, /*grain=*/1, [&](int64_t blk0, int64_t blk1) {
        for (int64_t blk = blk0; blk < blk1; ++blk) {
          const int64_t k0 = blk * kGemmKc;
          const int64_t kb = std::min(kGemmKc, red - k0);
          for (int64_t j0 = 0; j0 < n; j0 += kGemmNr) {
            const int64_t nb = std::min(kGemmNr, n - j0);
            float* dst = packed + k0 * n + kb * j0;
            for (int64_t p = 0; p < kb; ++p) {
              const float* src = b + (k0 + p) * n + j0;
              for (int64_t c = 0; c < nb; ++c) dst[p * nb + c] = src[c];
            }
          }
        }
      });
}

// Shared driver for Matmul and MatmulTransposeA, which differ only in how
// the per-output-row coefficient vector strides through `a`:
//   out(i, :) += sum_p coeff(i, p) * b(p, :),
//   coeff(i, p) = a_base[i * a_row_step + p * a_col_step].
// Parallel over output rows (each chunk owns a disjoint row range of the
// freshly allocated out). Large B operands are repacked once into a
// pool-backed 64-byte-aligned tile panel so the k-loop streams L1-resident
// tiles instead of striding whole rows of B.
// When `epilogue_bias` is non-null the driver applies the fused
// bias + ReLU epilogue to each output row after that row's accumulation
// completes — per-element arithmetic identical to a separate
// AddRowBroadcast + Relu pass (simd.h bias_relu), just without the two
// extra memory round trips.
Matrix GemmBroadcastA(const float* a_base, int64_t a_row_step,
                      int64_t a_col_step, int64_t out_rows, int64_t red,
                      const Matrix& b, const float* epilogue_bias = nullptr) {
  Matrix out(out_rows, b.cols());
  const int64_t n = b.cols();
  // With an epilogue a zero-length reduction still owes relu(bias) per row
  // (the unfused composition adds the bias to the zero product).
  if (out_rows == 0 || n == 0 || (red == 0 && epilogue_bias == nullptr)) {
    return out;
  }
  if (epilogue_bias != nullptr) {
    simd::RecordFusedGemmBiasRelu(out_rows, red, n);
  } else {
    simd::RecordGemm(out_rows, red, n);
  }
  const auto& kt = simd::K();
  const float* bdata = b.Data();
  // Pack only when tiling changes the layout (otherwise B already is the
  // single tile) and B is large enough that the one-off copy amortizes.
  const bool pack = (n > kGemmNr || red > kGemmKc) && red * n >= (1 << 14);
  memory::PooledBuffer packed(pack ? static_cast<size_t>(red * n) : 0);
  if (pack) PackB(bdata, red, n, packed.data());
  parallel::ParallelFor(
      0, out_rows, parallel::GrainForCost(red * n),
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* coeff = a_base + i * a_row_step;
          float* out_row = out.RowData(i);
          if (!pack) {
            kt.gemm_row(coeff, a_col_step, bdata, n, red, n, out_row);
          } else {
            for (int64_t k0 = 0; k0 < red; k0 += kGemmKc) {
              const int64_t kb = std::min(kGemmKc, red - k0);
              for (int64_t j0 = 0; j0 < n; j0 += kGemmNr) {
                const int64_t nb = std::min(kGemmNr, n - j0);
                kt.gemm_row(coeff + k0 * a_col_step, a_col_step,
                            packed.data() + k0 * n + kb * j0, nb, kb, nb,
                            out_row + j0);
              }
            }
          }
          if (epilogue_bias != nullptr) kt.bias_relu(epilogue_bias, out_row, n);
        }
      });
  return out;
}

}  // namespace

Matrix Matmul(const Matrix& a, const Matrix& b) {
  RDD_CHECK_EQ(a.cols(), b.rows());
  // coeff(i, p) = a(i, p): contiguous rows of a.
  return GemmBroadcastA(a.Data(), a.cols(), 1, a.rows(), a.cols(), b);
}

Matrix MatmulBiasRelu(const Matrix& a, const Matrix& b,
                      const Matrix& bias_row) {
  RDD_CHECK_EQ(a.cols(), b.rows());
  RDD_CHECK_EQ(bias_row.rows(), 1);
  RDD_CHECK_EQ(bias_row.cols(), b.cols());
  return GemmBroadcastA(a.Data(), a.cols(), 1, a.rows(), a.cols(), b,
                        bias_row.RowData(0));
}

Matrix MatmulTransposeA(const Matrix& a, const Matrix& b) {
  RDD_CHECK_EQ(a.rows(), b.rows());
  // out(p, :) += a(i, p) * b(i, :). With the reduction index i in the OUTER
  // loop every i writes all k output rows, so row-parallelism over i would
  // race; instead output row p reads COLUMN p of a (stride a.cols()), and
  // the driver parallelizes over those disjoint output rows.
  return GemmBroadcastA(a.Data(), 1, a.cols(), a.cols(), a.rows(), b);
}

Matrix MatmulTransposeB(const Matrix& a, const Matrix& b) {
  RDD_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows(), b.rows());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  if (m == 0 || n == 0) return out;
  simd::RecordGemm(m, k, n);
  const auto& kt = simd::K();
  parallel::ParallelFor(
      0, m, parallel::GrainForCost(k * n), [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          // One canonical 8-lane dot product per output element.
          kt.gemm_row_nt(a.RowData(i), b.Data(), k, k, n, out.RowData(i));
        }
      });
  return out;
}

Matrix Transpose(const Matrix& m) {
  Matrix out(m.cols(), m.rows());
  const int64_t rows = m.rows();
  const int64_t cols = m.cols();
  // Parallel over output rows (= input columns); writes are contiguous per
  // chunk, reads are strided.
  parallel::ParallelFor(
      0, cols, parallel::GrainForCost(rows), [&](int64_t c0, int64_t c1) {
        for (int64_t c = c0; c < c1; ++c) {
          float* out_row = out.RowData(c);
          for (int64_t r = 0; r < rows; ++r) out_row[r] = m.RowData(r)[c];
        }
      });
  return out;
}

Matrix Relu(const Matrix& m) {
  Matrix out = m;
  float* data = out.Data();
  const auto& kt = simd::K();
  parallel::ParallelFor(0, out.size(), parallel::GrainForCost(1),
                        [&](int64_t i0, int64_t i1) {
                          kt.relu(data + i0, data + i0, i1 - i0);
                        });
  return out;
}

Matrix ReluBackward(const Matrix& grad, const Matrix& input) {
  RDD_CHECK_EQ(grad.rows(), input.rows());
  RDD_CHECK_EQ(grad.cols(), input.cols());
  Matrix out = grad;
  float* g = out.Data();
  const float* x = input.Data();
  const auto& kt = simd::K();
  parallel::ParallelFor(0, out.size(), parallel::GrainForCost(1),
                        [&](int64_t i0, int64_t i1) {
                          kt.relu_bwd(x + i0, g + i0, i1 - i0);
                        });
  return out;
}

Matrix SoftmaxRows(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  const int64_t cols = logits.cols();
  const auto& kt = simd::K();
  // Max and sum use the canonical lane-grouped reductions; subtracting the
  // true row max keeps every exponent <= 0, so large-logit rows cannot
  // overflow to inf/NaN.
  parallel::ParallelFor(
      0, logits.rows(), parallel::GrainForCost(4 * cols),
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* in = logits.RowData(r);
          float* o = out.RowData(r);
          const float max_v = kt.row_max(in, cols);
          for (int64_t c = 0; c < cols; ++c) o[c] = std::exp(in[c] - max_v);
          const double sum = kt.sum_f64(o, cols);
          const float inv = static_cast<float>(1.0 / sum);
          kt.scale(inv, o, cols);
        }
      });
  return out;
}

Matrix LogSoftmaxRows(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  const int64_t cols = logits.cols();
  const auto& kt = simd::K();
  parallel::ParallelFor(
      0, logits.rows(), parallel::GrainForCost(4 * cols),
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* in = logits.RowData(r);
          float* o = out.RowData(r);
          const float max_v = kt.row_max(in, cols);
          // The exp-of-double sum stays a serial scan: the doubles never
          // materialize in memory and the std::exp calls dominate anyway.
          double sum = 0.0;
          for (int64_t c = 0; c < cols; ++c) {
            sum += std::exp(static_cast<double>(in[c]) - max_v);
          }
          const float log_sum = static_cast<float>(std::log(sum)) + max_v;
          for (int64_t c = 0; c < cols; ++c) o[c] = in[c] - log_sum;
        }
      });
  return out;
}

std::vector<double> RowEntropy(const Matrix& probs) {
  std::vector<double> entropy(static_cast<size_t>(probs.rows()), 0.0);
  const int64_t cols = probs.cols();
  parallel::ParallelFor(
      0, probs.rows(), parallel::GrainForCost(4 * cols),
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* p = probs.RowData(r);
          double h = 0.0;
          for (int64_t c = 0; c < cols; ++c) {
            if (p[c] > 0.0f) h -= static_cast<double>(p[c]) * std::log(p[c]);
          }
          entropy[static_cast<size_t>(r)] = h;
        }
      });
  return entropy;
}

std::vector<int64_t> ArgmaxRows(const Matrix& m) {
  RDD_CHECK_GT(m.cols(), 0);
  std::vector<int64_t> idx(static_cast<size_t>(m.rows()), 0);
  const int64_t cols = m.cols();
  parallel::ParallelFor(
      0, m.rows(), parallel::GrainForCost(cols), [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* row = m.RowData(r);
          int64_t best = 0;
          for (int64_t c = 1; c < cols; ++c) {
            if (row[c] > row[best]) best = c;
          }
          idx[static_cast<size_t>(r)] = best;
        }
      });
  return idx;
}

Matrix ColumnSums(const Matrix& m) {
  Matrix out(1, m.cols());
  float* o = out.RowData(0);
  const auto& kt = simd::K();
  // Serial over rows: each column accumulates in ascending row order.
  for (int64_t r = 0; r < m.rows(); ++r) kt.add(m.RowData(r), o, m.cols());
  return out;
}

Matrix AddRowBroadcast(const Matrix& m, const Matrix& bias_row) {
  RDD_CHECK_EQ(bias_row.rows(), 1);
  RDD_CHECK_EQ(bias_row.cols(), m.cols());
  Matrix out = m;
  const float* bias = bias_row.RowData(0);
  const auto& kt = simd::K();
  for (int64_t r = 0; r < out.rows(); ++r) {
    kt.add(bias, out.RowData(r), out.cols());
  }
  return out;
}

Matrix GatherRows(const Matrix& m, const std::vector<int64_t>& indices) {
  Matrix out(static_cast<int64_t>(indices.size()), m.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    RDD_CHECK_GE(r, 0);
    RDD_CHECK_LT(r, m.rows());
    const float* src = m.RowData(r);
    float* dst = out.RowData(static_cast<int64_t>(i));
    for (int64_t c = 0; c < m.cols(); ++c) dst[c] = src[c];
  }
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.Add(b);
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.Sub(b);
  return out;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  RDD_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    float* dst = out.RowData(r);
    const float* a_row = a.RowData(r);
    for (int64_t c = 0; c < a.cols(); ++c) dst[c] = a_row[c];
    const float* b_row = b.RowData(r);
    for (int64_t c = 0; c < b.cols(); ++c) dst[a.cols() + c] = b_row[c];
  }
  return out;
}

}  // namespace rdd
