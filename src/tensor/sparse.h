#ifndef RDD_TENSOR_SPARSE_H_
#define RDD_TENSOR_SPARSE_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace rdd {

/// One nonzero entry in COO form; used to assemble sparse matrices.
struct SparseEntry {
  int64_t row = 0;
  int64_t col = 0;
  float value = 0.0f;
};

/// Compressed-sparse-row single-precision matrix. Immutable after
/// construction; used for the normalized adjacency matrix and for sparse
/// bag-of-words feature matrices.
class SparseMatrix {
 public:
  /// Creates an empty 0 x 0 matrix.
  SparseMatrix() = default;

  /// Builds a CSR matrix from COO entries. Entries may arrive in any order;
  /// duplicates (same row and col) are summed. Indices must lie inside
  /// [0, rows) x [0, cols).
  static SparseMatrix FromCoo(int64_t rows, int64_t cols,
                              std::vector<SparseEntry> entries);

  /// Builds a sparse matrix holding the nonzero entries of `dense`.
  static SparseMatrix FromDense(const Matrix& dense);

  /// Builds a matrix directly from CSR arrays: `row_ptr` of length rows + 1
  /// starting at 0, non-decreasing, ending at col_idx.size(); column indices
  /// strictly increasing within each row and inside [0, cols). Violations
  /// abort. Bit-identical to the FromCoo result for the same entries; exists
  /// so row-wise splices (the streaming feature merge) can skip the global
  /// COO sort.
  static SparseMatrix FromCsr(int64_t rows, int64_t cols,
                              std::vector<int64_t> row_ptr,
                              std::vector<int64_t> col_idx,
                              std::vector<float> values);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  /// CSR row-pointer array of length rows() + 1.
  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  /// Column index array of length nnz(), sorted within each row.
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  /// Value array of length nnz().
  const std::vector<float>& values() const { return values_; }

  /// Number of nonzeros in row r.
  int64_t RowNnz(int64_t r) const;

  /// Value at (r, c); zero when the entry is absent. O(log nnz(row)).
  float At(int64_t r, int64_t c) const;

  /// Dense copy of this matrix. For tests and small matrices only.
  Matrix ToDense() const;

  /// Transposed copy.
  SparseMatrix Transpose() const;

  /// Returns this * dense, a (rows x dense.cols) dense matrix. Requires
  /// cols() == dense.rows(). This is the SpMM kernel both the adjacency
  /// propagation and the sparse first layer use.
  Matrix Multiply(const Matrix& dense) const;

  /// Accumulates alpha * (this * dense) into *out (same shape rules as
  /// Multiply). Used to avoid temporaries in hot loops. *out must not alias
  /// `dense`; the kernel assumes the two buffers are distinct.
  void MultiplyAdd(const Matrix& dense, float alpha, Matrix* out) const;

  /// Fused relu(this * dense + bias): bit-identical to
  /// Relu(AddRowBroadcast(Multiply(dense), bias_row)) — the bias + ReLU
  /// epilogue runs on each output row right after its spmm_row accumulation
  /// (simd.h bias_relu). Requires bias_row to be 1 x dense.cols().
  Matrix MultiplyBiasRelu(const Matrix& dense, const Matrix& bias_row) const;

  /// Returns transpose(this) * dense without materializing the transpose,
  /// a (cols x dense.cols) dense matrix. Requires rows() == dense.rows().
  /// This is the gradient kernel for SpMM. Parallelized over row blocks via
  /// pool-backed partial outputs reduced in fixed block order; results are
  /// bit-identical at any thread count.
  Matrix TransposeMultiply(const Matrix& dense) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;
  std::vector<int64_t> col_idx_;
  std::vector<float> values_;
};

}  // namespace rdd

#endif  // RDD_TENSOR_SPARSE_H_
