#include "tensor/sparse.h"

#include <algorithm>

#include "parallel/parallel_for.h"
#include "simd/kernel_stats.h"
#include "simd/simd.h"
#include "util/logging.h"

namespace rdd {

SparseMatrix SparseMatrix::FromCoo(int64_t rows, int64_t cols,
                                   std::vector<SparseEntry> entries) {
  RDD_CHECK_GE(rows, 0);
  RDD_CHECK_GE(cols, 0);
  for (const SparseEntry& e : entries) {
    RDD_CHECK_GE(e.row, 0);
    RDD_CHECK_LT(e.row, rows);
    RDD_CHECK_GE(e.col, 0);
    RDD_CHECK_LT(e.col, cols);
  }
  std::sort(entries.begin(), entries.end(),
            [](const SparseEntry& a, const SparseEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<size_t>(rows) + 1, 0);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());

  for (size_t i = 0; i < entries.size();) {
    const int64_t r = entries[i].row;
    const int64_t c = entries[i].col;
    float sum = 0.0f;
    while (i < entries.size() && entries[i].row == r && entries[i].col == c) {
      sum += entries[i].value;
      ++i;
    }
    m.col_idx_.push_back(c);
    m.values_.push_back(sum);
    m.row_ptr_[static_cast<size_t>(r) + 1] =
        static_cast<int64_t>(m.values_.size());
  }
  // Rows with no entries inherit the running prefix.
  for (size_t r = 1; r < m.row_ptr_.size(); ++r) {
    m.row_ptr_[r] = std::max(m.row_ptr_[r], m.row_ptr_[r - 1]);
  }
  return m;
}

SparseMatrix SparseMatrix::FromCsr(int64_t rows, int64_t cols,
                                   std::vector<int64_t> row_ptr,
                                   std::vector<int64_t> col_idx,
                                   std::vector<float> values) {
  RDD_CHECK_GE(rows, 0);
  RDD_CHECK_GE(cols, 0);
  RDD_CHECK_EQ(row_ptr.size(), static_cast<size_t>(rows) + 1);
  RDD_CHECK_EQ(col_idx.size(), values.size());
  RDD_CHECK_EQ(row_ptr.front(), 0);
  RDD_CHECK_EQ(row_ptr.back(), static_cast<int64_t>(col_idx.size()));
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t begin = row_ptr[static_cast<size_t>(r)];
    const int64_t end = row_ptr[static_cast<size_t>(r) + 1];
    RDD_CHECK_LE(begin, end);
    for (int64_t i = begin; i < end; ++i) {
      RDD_CHECK_GE(col_idx[static_cast<size_t>(i)], 0);
      RDD_CHECK_LT(col_idx[static_cast<size_t>(i)], cols);
      if (i > begin) {
        RDD_CHECK_LT(col_idx[static_cast<size_t>(i) - 1],
                     col_idx[static_cast<size_t>(i)]);
      }
    }
  }
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

SparseMatrix SparseMatrix::FromDense(const Matrix& dense) {
  std::vector<SparseEntry> entries;
  for (int64_t r = 0; r < dense.rows(); ++r) {
    const float* row = dense.RowData(r);
    for (int64_t c = 0; c < dense.cols(); ++c) {
      if (row[c] != 0.0f) entries.push_back({r, c, row[c]});
    }
  }
  return FromCoo(dense.rows(), dense.cols(), std::move(entries));
}

int64_t SparseMatrix::RowNnz(int64_t r) const {
  RDD_CHECK_GE(r, 0);
  RDD_CHECK_LT(r, rows_);
  return row_ptr_[static_cast<size_t>(r) + 1] - row_ptr_[static_cast<size_t>(r)];
}

float SparseMatrix::At(int64_t r, int64_t c) const {
  RDD_CHECK_GE(r, 0);
  RDD_CHECK_LT(r, rows_);
  RDD_CHECK_GE(c, 0);
  RDD_CHECK_LT(c, cols_);
  const auto begin = col_idx_.begin() + row_ptr_[static_cast<size_t>(r)];
  const auto end = col_idx_.begin() + row_ptr_[static_cast<size_t>(r) + 1];
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0f;
  return values_[static_cast<size_t>(it - col_idx_.begin())];
}

Matrix SparseMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out.At(r, col_idx_[k]) = values_[k];
    }
  }
  return out;
}

SparseMatrix SparseMatrix::Transpose() const {
  std::vector<SparseEntry> entries;
  entries.reserve(values_.size());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      entries.push_back({col_idx_[k], r, values_[k]});
    }
  }
  return FromCoo(cols_, rows_, std::move(entries));
}

Matrix SparseMatrix::Multiply(const Matrix& dense) const {
  Matrix out(rows_, dense.cols());
  MultiplyAdd(dense, 1.0f, &out);
  return out;
}

void SparseMatrix::MultiplyAdd(const Matrix& dense, float alpha,
                               Matrix* out) const {
  RDD_CHECK_EQ(cols_, dense.rows());
  RDD_CHECK_EQ(out->rows(), rows_);
  RDD_CHECK_EQ(out->cols(), dense.cols());
  const int64_t n = dense.cols();
  // Parallel over CSR rows: each chunk owns a disjoint range of output rows,
  // and the per-row strict ascending-nnz FMA order is a fixed function of
  // the row's entries, so results are bit-identical at any thread count and
  // SIMD backend. Grain assumes the average row nnz; badly skewed rows only
  // cost load balance, never correctness.
  const int64_t avg_nnz =
      rows_ == 0 ? 1 : std::max<int64_t>(1, nnz() / rows_);
  simd::RecordSpmm(nnz(), n);
  const auto& kt = simd::K();
  const float* dense_data = dense.Data();
  parallel::ParallelFor(
      0, rows_, parallel::GrainForCost(avg_nnz * n),
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const int64_t begin = row_ptr_[r];
          kt.spmm_row(values_.data() + begin, col_idx_.data() + begin,
                      row_ptr_[r + 1] - begin, alpha, dense_data, n,
                      out->RowData(r), n);
        }
      });
}

Matrix SparseMatrix::MultiplyBiasRelu(const Matrix& dense,
                                      const Matrix& bias_row) const {
  RDD_CHECK_EQ(cols_, dense.rows());
  RDD_CHECK_EQ(bias_row.rows(), 1);
  RDD_CHECK_EQ(bias_row.cols(), dense.cols());
  Matrix out(rows_, dense.cols());
  const int64_t n = dense.cols();
  if (rows_ == 0 || n == 0) return out;
  const int64_t avg_nnz =
      rows_ == 0 ? 1 : std::max<int64_t>(1, nnz() / rows_);
  simd::RecordFusedSpmmBiasRelu(nnz(), rows_, n);
  const auto& kt = simd::K();
  const float* dense_data = dense.Data();
  const float* bias = bias_row.RowData(0);
  // Same row-parallel structure as MultiplyAdd; each row finishes its
  // strict-order accumulation, then the fused epilogue folds the bias and
  // ReLU in before the row leaves cache.
  parallel::ParallelFor(
      0, rows_, parallel::GrainForCost(avg_nnz * n),
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const int64_t begin = row_ptr_[r];
          float* out_row = out.RowData(r);
          kt.spmm_row(values_.data() + begin, col_idx_.data() + begin,
                      row_ptr_[r + 1] - begin, 1.0f, dense_data, n, out_row,
                      n);
          kt.bias_relu(bias, out_row, n);
        }
      });
  return out;
}

Matrix SparseMatrix::TransposeMultiply(const Matrix& dense) const {
  RDD_CHECK_EQ(rows_, dense.rows());
  Matrix out(cols_, dense.cols());
  const int64_t n = dense.cols();
  simd::RecordSpmm(nnz(), n);
  // This kernel scatters into out.RowData(col_idx_[k]), so plain CSR-row
  // chunking would race on shared output rows. Instead the input rows are
  // split into `num_chunks` contiguous blocks; each block accumulates into
  // its own pool-backed partial output (chunk 0 writes `out` directly), and
  // the partials are then reduced into `out` in fixed chunk order. The chunk
  // count is a pure function of the SHAPE — never of the thread count — so
  // the float-summation grouping, and therefore every bit of the result, is
  // identical at any RDD_NUM_THREADS. The partial buffers come from the
  // BufferPool and recycle across backward passes, so the steady-state cost
  // is a zero-fill, not an allocation.
  constexpr int64_t kMinChunkCost = 1 << 15;  // ~32k scalar ops per chunk.
  constexpr int64_t kMaxChunks = 16;          // Caps partial-buffer scratch.
  // Every chunk beyond the first costs a zero-fill and a reduce of a whole
  // cols_ x n partial (~2 ops per element); only split while each chunk's
  // scatter work dominates that overhead, or the parallel path loses to the
  // serial one on sparse inputs with many output rows.
  constexpr int64_t kPartialOverheadFactor = 4;
  const int64_t num_chunks = std::max<int64_t>(
      1, std::min({kMaxChunks, rows_, nnz() * n / kMinChunkCost,
                   nnz() / (kPartialOverheadFactor * std::max<int64_t>(
                                                         1, cols_))}));

  const auto& kt = simd::K();
  auto scatter_rows = [&](int64_t r0, int64_t r1, Matrix* target) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* in_row = dense.RowData(r);
      for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        kt.axpy(values_[k], in_row, target->RowData(col_idx_[k]), n);
      }
    }
  };

  if (num_chunks == 1) {
    scatter_rows(0, rows_, &out);
    return out;
  }

  // Partials are acquired on the calling thread; worker chunks only write.
  std::vector<Matrix> partials;
  partials.reserve(static_cast<size_t>(num_chunks - 1));
  for (int64_t j = 1; j < num_chunks; ++j) partials.emplace_back(cols_, n);

  const auto chunk_begin = [&](int64_t j) { return rows_ * j / num_chunks; };
  parallel::ParallelFor(0, num_chunks, /*grain=*/1,
                        [&](int64_t j0, int64_t j1) {
                          for (int64_t j = j0; j < j1; ++j) {
                            Matrix* target =
                                j == 0 ? &out
                                       : &partials[static_cast<size_t>(j - 1)];
                            scatter_rows(chunk_begin(j), chunk_begin(j + 1),
                                         target);
                          }
                        });

  // Reduce partials into `out`, chunk order 0, 1, 2, ... per element; rows
  // are disjoint across threads, so this is deterministic and race-free.
  parallel::ParallelFor(
      0, cols_, parallel::GrainForCost((num_chunks - 1) * n),
      [&](int64_t c0, int64_t c1) {
        for (int64_t r = c0; r < c1; ++r) {
          float* out_row = out.RowData(r);
          for (const Matrix& partial : partials) {
            kt.add(partial.RowData(r), out_row, n);
          }
        }
      });
  return out;
}

}  // namespace rdd
