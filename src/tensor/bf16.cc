#include "tensor/bf16.h"

#include "parallel/parallel_for.h"
#include "simd/kernel_stats.h"
#include "simd/simd.h"
#include "util/logging.h"

namespace rdd {

Bf16Matrix Bf16Matrix::Pack(const Matrix& m) {
  Bf16Matrix out;
  out.rows_ = m.rows();
  out.cols_ = m.cols();
  out.data_.resize(static_cast<size_t>(m.size()));
  if (m.size() > 0) simd::K().bf16_pack(m.Data(), out.data_.data(), m.size());
  return out;
}

Matrix Bf16Matrix::Unpack() const {
  Matrix out(rows_, cols_);
  if (size() > 0) simd::K().bf16_unpack(data_.data(), out.Data(), size());
  return out;
}

// The bf16 GEMM skips the PackB tile repacking of the fp32 driver: the B
// operand is already half the bytes, so serving-sized panels (hidden x
// classes, a few KiB) fit in L1 as-is, and repacking would mean a second
// uint16 panel format for no measured gain at those shapes.
namespace {

Matrix MatmulBf16Impl(const Matrix& a, const Bf16Matrix& b,
                      const float* epilogue_bias) {
  RDD_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t red = a.cols();
  const int64_t n = b.cols();
  Matrix out(m, n);
  // As in GemmBroadcastA: with an epilogue a zero-length reduction still
  // owes relu(bias) per row.
  if (m == 0 || n == 0 || (red == 0 && epilogue_bias == nullptr)) return out;
  simd::RecordBf16Gemm(m, red, n);
  const auto& kt = simd::K();
  const uint16_t* bdata = b.Data();
  parallel::ParallelFor(
      0, m, parallel::GrainForCost(red * n), [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          float* out_row = out.RowData(i);
          kt.gemm_row_bf16(a.RowData(i), 1, bdata, n, red, n, out_row);
          if (epilogue_bias != nullptr) kt.bias_relu(epilogue_bias, out_row, n);
        }
      });
  return out;
}

}  // namespace

Matrix MatmulBf16(const Matrix& a, const Bf16Matrix& b) {
  return MatmulBf16Impl(a, b, nullptr);
}

Matrix MatmulBf16BiasRelu(const Matrix& a, const Bf16Matrix& b,
                          const Matrix& bias_row) {
  RDD_CHECK_EQ(bias_row.rows(), 1);
  RDD_CHECK_EQ(bias_row.cols(), b.cols());
  return MatmulBf16Impl(a, b, bias_row.RowData(0));
}

}  // namespace rdd
