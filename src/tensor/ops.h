#ifndef RDD_TENSOR_OPS_H_
#define RDD_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace rdd {

/// Returns a * b. Requires a.cols() == b.rows(). Cache-friendly ikj loop.
Matrix Matmul(const Matrix& a, const Matrix& b);

/// Fused relu(a * b + bias): bit-identical to
/// Relu(AddRowBroadcast(Matmul(a, b), bias_row)) on every backend — the
/// bias + ReLU epilogue runs on each output row right after its
/// accumulation, replicating the unfused per-element arithmetic exactly
/// (simd.h bias_relu). Requires bias_row to be 1 x b.cols().
Matrix MatmulBiasRelu(const Matrix& a, const Matrix& b,
                      const Matrix& bias_row);

/// Returns transpose(a) * b without materializing the transpose.
/// Requires a.rows() == b.rows().
Matrix MatmulTransposeA(const Matrix& a, const Matrix& b);

/// Returns a * transpose(b) without materializing the transpose.
/// Requires a.cols() == b.cols().
Matrix MatmulTransposeB(const Matrix& a, const Matrix& b);

/// Returns the transpose of m.
Matrix Transpose(const Matrix& m);

/// Returns max(0, x) elementwise.
Matrix Relu(const Matrix& m);

/// Returns a copy of `grad` with entries zeroed wherever `input` <= 0
/// (the ReLU backward rule).
Matrix ReluBackward(const Matrix& grad, const Matrix& input);

/// Row-wise numerically-stable softmax.
Matrix SoftmaxRows(const Matrix& logits);

/// Row-wise numerically-stable log-softmax.
Matrix LogSoftmaxRows(const Matrix& logits);

/// Shannon entropy of each row of a row-stochastic matrix, in nats:
/// H(p) = -sum_j p_j log p_j, with 0 log 0 = 0. Returns one value per row.
std::vector<double> RowEntropy(const Matrix& probs);

/// Index of the maximum entry in each row (first one on ties).
std::vector<int64_t> ArgmaxRows(const Matrix& m);

/// Column sums as a 1 x cols matrix.
Matrix ColumnSums(const Matrix& m);

/// Broadcast-adds a 1 x cols bias row to every row of m.
Matrix AddRowBroadcast(const Matrix& m, const Matrix& bias_row);

/// Returns the rows of `m` selected by `indices`, in order.
Matrix GatherRows(const Matrix& m, const std::vector<int64_t>& indices);

/// Returns a + b (shapes must match).
Matrix Add(const Matrix& a, const Matrix& b);

/// Returns a - b (shapes must match).
Matrix Sub(const Matrix& a, const Matrix& b);

/// Returns the horizontal concatenation [a | b]. Row counts must match.
Matrix ConcatCols(const Matrix& a, const Matrix& b);

}  // namespace rdd

#endif  // RDD_TENSOR_OPS_H_
