#include "models/gcn.h"

#include "autograd/ops.h"
#include "util/logging.h"

namespace rdd {

Gcn::Gcn(GraphContext context, int64_t num_layers, int64_t hidden_dim,
         float dropout, uint64_t seed)
    : GraphModel(std::move(context), seed), dropout_(dropout) {
  RDD_CHECK_GE(num_layers, 1);
  RDD_CHECK_GT(hidden_dim, 0);
  for (int64_t l = 0; l < num_layers; ++l) {
    const int64_t in = l == 0 ? context_.feature_dim : hidden_dim;
    const int64_t out =
        l == num_layers - 1 ? context_.num_classes : hidden_dim;
    layers_.push_back(std::make_unique<GraphConvolution>(
        context_.adj_norm.get(), in, out, &rng_));
    RegisterChild(*layers_.back());
  }
}

ModelOutput Gcn::Forward(const GraphView& view, bool training) {
  const SparseMatrix* adj = view.adj_norm.get();
  // Every hidden layer's output goes through ReLU (before dropout), so the
  // activation rides the layer forward as a fusible tail; the last layer
  // stays linear.
  const size_t last = layers_.size() - 1;
  Variable h = last == 0
                   ? layers_[0]->ForwardSparse(adj, view.features.get())
                   : layers_[0]->ForwardSparseRelu(adj, view.features.get());
  for (size_t l = 1; l < layers_.size(); ++l) {
    h = ag::Dropout(h, dropout_, training, &rng_);
    h = l == last ? layers_[l]->Forward(adj, h)
                  : layers_[l]->ForwardRelu(adj, h);
  }
  return ModelOutput{h, h};
}

}  // namespace rdd
