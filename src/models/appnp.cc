#include "models/appnp.h"

#include "autograd/ops.h"
#include "util/logging.h"

namespace rdd {

Appnp::Appnp(GraphContext context, int64_t hidden_dim, float dropout,
             int64_t num_power_steps, float teleport_alpha, uint64_t seed)
    : GraphModel(std::move(context), seed),
      dropout_(dropout),
      num_power_steps_(num_power_steps),
      teleport_alpha_(teleport_alpha) {
  RDD_CHECK_GT(hidden_dim, 0);
  RDD_CHECK_GE(num_power_steps, 1);
  RDD_CHECK_GT(teleport_alpha, 0.0f);
  RDD_CHECK_LT(teleport_alpha, 1.0f);
  input_layer_ = std::make_unique<Linear>(context_.feature_dim, hidden_dim,
                                          &rng_);
  output_layer_ = std::make_unique<Linear>(hidden_dim, context_.num_classes,
                                           &rng_);
  RegisterChild(*input_layer_);
  RegisterChild(*output_layer_);
}

ModelOutput Appnp::Forward(const GraphView& view, bool training) {
  // Prediction: a feature-only MLP.
  Variable h = input_layer_->ForwardSparseRelu(view.features.get());
  h = ag::Dropout(h, dropout_, training, &rng_);
  Variable local = output_layer_->Forward(h);
  // Propagation: approximate personalized PageRank power iteration.
  Variable z = local;
  for (int64_t step = 0; step < num_power_steps_; ++step) {
    z = ag::Add(
        ag::Scale(ag::SpmmConst(view.adj_norm.get(), z),
                  1.0f - teleport_alpha_),
        ag::Scale(local, teleport_alpha_));
  }
  return ModelOutput{z, z};
}

}  // namespace rdd
