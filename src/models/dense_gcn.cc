#include "models/dense_gcn.h"

#include "autograd/ops.h"
#include "util/logging.h"

namespace rdd {

DenseGcn::DenseGcn(GraphContext context, int64_t num_layers,
                   int64_t hidden_dim, float dropout, uint64_t seed)
    : GraphModel(std::move(context), seed), dropout_(dropout) {
  RDD_CHECK_GE(num_layers, 2);
  RDD_CHECK_GT(hidden_dim, 0);
  // Layer l > 0 consumes the concatenation of the l previous hidden
  // outputs, so its input width grows linearly.
  for (int64_t l = 0; l < num_layers; ++l) {
    const int64_t in = l == 0 ? context_.feature_dim : l * hidden_dim;
    const int64_t out =
        l == num_layers - 1 ? context_.num_classes : hidden_dim;
    layers_.push_back(std::make_unique<GraphConvolution>(
        context_.adj_norm.get(), in, out, &rng_));
    RegisterChild(*layers_.back());
  }
}

ModelOutput DenseGcn::Forward(const GraphView& view, bool training) {
  const SparseMatrix* adj = view.adj_norm.get();
  Variable h = layers_[0]->ForwardSparseRelu(adj, view.features.get());
  h = ag::Dropout(h, dropout_, training, &rng_);
  Variable stacked = h;  // Concatenation of all hidden outputs so far.
  for (size_t l = 1; l + 1 < layers_.size(); ++l) {
    Variable next = layers_[l]->ForwardRelu(adj, stacked);
    next = ag::Dropout(next, dropout_, training, &rng_);
    stacked = ag::ConcatCols(stacked, next);
  }
  Variable logits = layers_.back()->Forward(adj, stacked);
  return ModelOutput{logits, logits};
}

}  // namespace rdd
