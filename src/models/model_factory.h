#ifndef RDD_MODELS_MODEL_FACTORY_H_
#define RDD_MODELS_MODEL_FACTORY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "models/graph_model.h"

namespace rdd {

/// Architectures the factory can build.
enum class ModelKind {
  kGcn,
  kResGcn,
  kDenseGcn,
  kJkNet,
  kAppnp,
  kMlp,
  kGat,
  kGraphSage,
  kMlpStudent,
};

/// Human-readable name for an architecture ("GCN", "ResGCN", ...).
const char* ModelKindToString(ModelKind kind);

/// Architecture-level configuration shared across the model zoo. Defaults
/// correspond to the paper's base model: a 2-layer GCN with 16 hidden units
/// and dropout 0.5.
struct ModelConfig {
  ModelKind kind = ModelKind::kGcn;
  int64_t num_layers = 2;
  int64_t hidden_dim = 16;
  float dropout = 0.5f;
  /// APPNP-only knobs.
  int64_t appnp_power_steps = 10;
  float appnp_teleport = 0.1f;
  /// GAT-only knob: number of attention heads in the first layer.
  int64_t gat_heads = 4;
};

/// Constructs a model of the requested architecture over `context`, with
/// all stochastic initialization drawn from `seed`.
std::unique_ptr<GraphModel> BuildModel(const GraphContext& context,
                                       const ModelConfig& config,
                                       uint64_t seed);

}  // namespace rdd

#endif  // RDD_MODELS_MODEL_FACTORY_H_
