#ifndef RDD_MODELS_APPNP_H_
#define RDD_MODELS_APPNP_H_

#include <cstdint>
#include <memory>

#include "models/graph_model.h"
#include "nn/linear.h"

namespace rdd {

/// APPNP (predict-then-propagate with approximate personalized PageRank),
/// one of the non-ensemble competitors in Table 4: a 2-layer MLP produces
/// per-node predictions H, which are then smoothed by K power-iteration
/// steps Z <- (1 - alpha) Ahat Z + alpha H. The propagation has no
/// parameters, so depth-K smoothing avoids over-smoothing of features.
class Appnp : public GraphModel {
 public:
  Appnp(GraphContext context, int64_t hidden_dim, float dropout,
        int64_t num_power_steps, float teleport_alpha, uint64_t seed);

  using GraphModel::Forward;
  ModelOutput Forward(const GraphView& view, bool training) override;

 private:
  std::unique_ptr<Linear> input_layer_;
  std::unique_ptr<Linear> output_layer_;
  float dropout_;
  int64_t num_power_steps_;
  float teleport_alpha_;
};

}  // namespace rdd

#endif  // RDD_MODELS_APPNP_H_
