#include "models/mlp_student.h"

#include "autograd/ops.h"
#include "parallel/parallel_for.h"
#include "simd/simd.h"
#include "tensor/bf16.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/runtime_flags.h"

namespace rdd {

MlpStudent::MlpStudent(GraphContext context, int64_t num_layers,
                       int64_t hidden_dim, float dropout, uint64_t seed)
    : GraphModel(std::move(context), seed),
      hidden_dim_(hidden_dim),
      dropout_(dropout) {
  RDD_CHECK_GE(num_layers, 1);
  RDD_CHECK_GT(hidden_dim, 0);
  int64_t in_dim = context_.feature_dim;
  for (int64_t l = 0; l < num_layers; ++l) {
    const int64_t out_dim =
        l + 1 == num_layers ? context_.num_classes : hidden_dim;
    layers_.push_back(std::make_unique<Linear>(in_dim, out_dim, &rng_));
    RegisterChild(*layers_.back());
    in_dim = out_dim;
  }
}

ModelOutput MlpStudent::Forward(const GraphView& view, bool training) {
  // Hidden-layer outputs go through ReLU (before dropout), so the
  // activation rides each layer forward as a fusible tail; the last layer
  // stays linear.
  const size_t last = layers_.size() - 1;
  Variable h = last == 0
                   ? layers_[0]->ForwardSparse(view.features.get())
                   : layers_[0]->ForwardSparseRelu(view.features.get());
  for (size_t l = 1; l < layers_.size(); ++l) {
    h = ag::Dropout(h, dropout_, training, &rng_);
    h = l == last ? layers_[l]->Forward(h) : layers_[l]->ForwardRelu(h);
  }
  return ModelOutput{h, h};
}

void MlpStudent::EnableBf16Serving() {
  bf16_weights_.clear();
  bf16_weights_.reserve(layers_.size());
  for (const std::unique_ptr<Linear>& layer : layers_) {
    bf16_weights_.push_back(Bf16Matrix::Pack(layer->weight().value()));
  }
}

Matrix MlpStudent::PredictLogitsRows(const std::vector<int64_t>& nodes) const {
  const SparseMatrix& x = *context_.features;
  const int64_t batch = static_cast<int64_t>(nodes.size());
  const Linear& first = *layers_[0];
  const Matrix& w0 = first.weight().value();
  const int64_t width = w0.cols();
  const size_t last = layers_.size() - 1;
  const bool bf16 = bf16_serving();
  const bool fuse = flags::FuseEnabled();
  const auto& kt = simd::K();

  // First layer: gather each queried node's sparse feature row and expand
  // it against W0 directly — the only layer whose input is feature_dim
  // wide, and the reason serving never materializes a dense feature matrix.
  Matrix h(batch, width);
  const std::vector<int64_t>& row_ptr = x.row_ptr();
  const std::vector<int64_t>& col_idx = x.col_idx();
  const std::vector<float>& values = x.values();
  const int64_t avg_nnz = x.rows() > 0 ? x.nnz() / x.rows() : 0;
  const int64_t grain = parallel::GrainForCost((avg_nnz + 1) * width);
  parallel::ParallelFor(0, batch, grain, [&](int64_t begin, int64_t end) {
    for (int64_t b = begin; b < end; ++b) {
      const int64_t r = nodes[static_cast<size_t>(b)];
      RDD_CHECK_GE(r, 0);
      RDD_CHECK_LT(r, x.rows());
      float* out = h.RowData(b);
      const int64_t k_begin = row_ptr[static_cast<size_t>(r)];
      const int64_t k_end = row_ptr[static_cast<size_t>(r) + 1];
      if (bf16) {
        const Bf16Matrix& bw0 = bf16_weights_[0];
        for (int64_t k = k_begin; k < k_end; ++k) {
          kt.axpy_bf16(values[static_cast<size_t>(k)],
                       bw0.RowData(col_idx[static_cast<size_t>(k)]), out,
                       width);
        }
      } else {
        for (int64_t k = k_begin; k < k_end; ++k) {
          const float v = values[static_cast<size_t>(k)];
          const float* w_row = w0.RowData(col_idx[static_cast<size_t>(k)]);
          for (int64_t c = 0; c < width; ++c) out[c] += v * w_row[c];
        }
      }
    }
  });

  // First-layer epilogue. With fusion on and a hidden layer above, the
  // ReLU rides the bias pass; otherwise `pending_relu` defers it to the
  // seed position at the top of the next layer's iteration (per-element
  // identical either way — bias_relu IS add-then-relu).
  bool pending_relu = false;
  if (fuse && last > 0 && first.bias().defined()) {
    const float* bias = first.bias().value().RowData(0);
    for (int64_t b = 0; b < batch; ++b) kt.bias_relu(bias, h.RowData(b), width);
  } else {
    if (first.bias().defined()) h = AddRowBroadcast(h, first.bias().value());
    pending_relu = last > 0;
  }

  // Remaining layers are small dense GEMMs over the batch; hidden layers
  // take the fused bias + ReLU epilogue, the last layer stays linear. With
  // RDD_BF16 serving enabled the weight operand streams from the packed
  // bf16 copy instead.
  for (size_t l = 1; l < layers_.size(); ++l) {
    if (pending_relu) {
      h = Relu(h);
      pending_relu = false;
    }
    const Linear& layer = *layers_[l];
    const bool relu_out = l < last;
    if (fuse && relu_out && layer.bias().defined()) {
      h = bf16 ? MatmulBf16BiasRelu(h, bf16_weights_[l], layer.bias().value())
               : MatmulBiasRelu(h, layer.weight().value(),
                                layer.bias().value());
    } else {
      h = bf16 ? MatmulBf16(h, bf16_weights_[l])
               : Matmul(h, layer.weight().value());
      if (layer.bias().defined()) h = AddRowBroadcast(h, layer.bias().value());
      pending_relu = relu_out;
    }
  }
  return h;
}

Matrix MlpStudent::PredictProbsRows(const std::vector<int64_t>& nodes) const {
  return SoftmaxRows(PredictLogitsRows(nodes));
}

}  // namespace rdd
