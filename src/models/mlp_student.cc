#include "models/mlp_student.h"

#include "autograd/ops.h"
#include "parallel/parallel_for.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace rdd {

MlpStudent::MlpStudent(GraphContext context, int64_t num_layers,
                       int64_t hidden_dim, float dropout, uint64_t seed)
    : GraphModel(std::move(context), seed),
      hidden_dim_(hidden_dim),
      dropout_(dropout) {
  RDD_CHECK_GE(num_layers, 1);
  RDD_CHECK_GT(hidden_dim, 0);
  int64_t in_dim = context_.feature_dim;
  for (int64_t l = 0; l < num_layers; ++l) {
    const int64_t out_dim =
        l + 1 == num_layers ? context_.num_classes : hidden_dim;
    layers_.push_back(std::make_unique<Linear>(in_dim, out_dim, &rng_));
    RegisterChild(*layers_.back());
    in_dim = out_dim;
  }
}

ModelOutput MlpStudent::Forward(const GraphView& view, bool training) {
  Variable h = layers_[0]->ForwardSparse(view.features.get());
  for (size_t l = 1; l < layers_.size(); ++l) {
    h = ag::Relu(h);
    h = ag::Dropout(h, dropout_, training, &rng_);
    h = layers_[l]->Forward(h);
  }
  return ModelOutput{h, h};
}

Matrix MlpStudent::PredictLogitsRows(const std::vector<int64_t>& nodes) const {
  const SparseMatrix& x = *context_.features;
  const int64_t batch = static_cast<int64_t>(nodes.size());
  const Linear& first = *layers_[0];
  const Matrix& w0 = first.weight().value();
  const int64_t width = w0.cols();

  // First layer: gather each queried node's sparse feature row and expand
  // it against W0 directly — the only layer whose input is feature_dim
  // wide, and the reason serving never materializes a dense feature matrix.
  Matrix h(batch, width);
  const std::vector<int64_t>& row_ptr = x.row_ptr();
  const std::vector<int64_t>& col_idx = x.col_idx();
  const std::vector<float>& values = x.values();
  const int64_t avg_nnz = x.rows() > 0 ? x.nnz() / x.rows() : 0;
  const int64_t grain = parallel::GrainForCost((avg_nnz + 1) * width);
  parallel::ParallelFor(0, batch, grain, [&](int64_t begin, int64_t end) {
    for (int64_t b = begin; b < end; ++b) {
      const int64_t r = nodes[static_cast<size_t>(b)];
      RDD_CHECK_GE(r, 0);
      RDD_CHECK_LT(r, x.rows());
      float* out = h.RowData(b);
      for (int64_t k = row_ptr[static_cast<size_t>(r)];
           k < row_ptr[static_cast<size_t>(r) + 1]; ++k) {
        const float v = values[static_cast<size_t>(k)];
        const float* w_row = w0.RowData(col_idx[static_cast<size_t>(k)]);
        for (int64_t c = 0; c < width; ++c) out[c] += v * w_row[c];
      }
    }
  });
  if (first.bias().defined()) h = AddRowBroadcast(h, first.bias().value());

  // Remaining layers are small dense GEMMs over the batch.
  for (size_t l = 1; l < layers_.size(); ++l) {
    h = Relu(h);
    const Linear& layer = *layers_[l];
    h = Matmul(h, layer.weight().value());
    if (layer.bias().defined()) h = AddRowBroadcast(h, layer.bias().value());
  }
  return h;
}

Matrix MlpStudent::PredictProbsRows(const std::vector<int64_t>& nodes) const {
  return SoftmaxRows(PredictLogitsRows(nodes));
}

}  // namespace rdd
