#include "models/model_io.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "models/mlp_student.h"
#include "util/runtime_flags.h"
#include "util/string_util.h"

namespace rdd {

namespace {

constexpr ModelKind kAllKinds[] = {
    ModelKind::kGcn,  ModelKind::kResGcn,    ModelKind::kDenseGcn,
    ModelKind::kJkNet, ModelKind::kAppnp,     ModelKind::kMlp,
    ModelKind::kGat,  ModelKind::kGraphSage, ModelKind::kMlpStudent,
};

Status MissingField(const std::string& key) {
  return Status::InvalidArgument(
      StrFormat("model record is missing field \"%s\"", key.c_str()));
}

Status GetIntField(const ModelRecord& record, const std::string& key,
                   int64_t* out) {
  if (!record.GetInt(key, out)) return MissingField(key);
  return Status::Ok();
}

}  // namespace

bool ParseModelKind(const std::string& name, ModelKind* kind) {
  for (ModelKind candidate : kAllKinds) {
    if (name == ModelKindToString(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

ModelRecord RecordFromModel(const GraphModel& model, const ModelConfig& config,
                            double weight) {
  ModelRecord record;
  record.arch = ModelKindToString(config.kind);
  record.weight = weight;
  record.SetInt("num_layers", config.num_layers);
  record.SetInt("hidden_dim", config.hidden_dim);
  record.SetDouble("dropout", config.dropout);
  record.SetInt("appnp_power_steps", config.appnp_power_steps);
  record.SetDouble("appnp_teleport", config.appnp_teleport);
  record.SetInt("gat_heads", config.gat_heads);
  // Graph dimensions, recorded so a load against the wrong dataset fails
  // with a clear error instead of a shape mismatch deep in a forward pass.
  record.SetInt("feature_dim", model.context().feature_dim);
  record.SetInt("num_classes", model.context().num_classes);
  const std::vector<Variable>& params = model.Parameters();
  record.tensors.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    record.tensors.push_back(NamedTensor{
        StrFormat("param.%zu", i), params[i].value()});
  }
  return record;
}

StatusOr<std::unique_ptr<GraphModel>> ModelFromRecord(
    const ModelRecord& record, const GraphContext& context) {
  ModelConfig config;
  if (!ParseModelKind(record.arch, &config.kind)) {
    return Status::InvalidArgument(StrFormat(
        "model record names unknown architecture \"%s\"",
        record.arch.c_str()));
  }
  RDD_RETURN_IF_ERROR(GetIntField(record, "num_layers", &config.num_layers));
  RDD_RETURN_IF_ERROR(GetIntField(record, "hidden_dim", &config.hidden_dim));
  double dropout = 0.0;
  if (!record.GetDouble("dropout", &dropout)) return MissingField("dropout");
  config.dropout = static_cast<float>(dropout);
  RDD_RETURN_IF_ERROR(
      GetIntField(record, "appnp_power_steps", &config.appnp_power_steps));
  double teleport = 0.0;
  if (!record.GetDouble("appnp_teleport", &teleport)) {
    return MissingField("appnp_teleport");
  }
  config.appnp_teleport = static_cast<float>(teleport);
  RDD_RETURN_IF_ERROR(GetIntField(record, "gat_heads", &config.gat_heads));
  if (config.num_layers < 1 || config.num_layers > 64 ||
      config.hidden_dim < 1 || config.hidden_dim > (1 << 16) ||
      config.gat_heads < 1 || config.gat_heads > 256 ||
      config.appnp_power_steps < 1 || config.appnp_power_steps > 1024) {
    return Status::InvalidArgument(StrFormat(
        "model record \"%s\" has out-of-range hyperparameters",
        record.arch.c_str()));
  }
  int64_t feature_dim = 0;
  int64_t num_classes = 0;
  RDD_RETURN_IF_ERROR(GetIntField(record, "feature_dim", &feature_dim));
  RDD_RETURN_IF_ERROR(GetIntField(record, "num_classes", &num_classes));
  if (feature_dim != context.feature_dim ||
      num_classes != context.num_classes) {
    return Status::InvalidArgument(StrFormat(
        "model record was trained on a %lld-feature / %lld-class graph but "
        "the loaded dataset has %lld features / %lld classes",
        static_cast<long long>(feature_dim),
        static_cast<long long>(num_classes),
        static_cast<long long>(context.feature_dim),
        static_cast<long long>(context.num_classes)));
  }

  // Seed is irrelevant: every freshly initialized value is overwritten.
  std::unique_ptr<GraphModel> model = BuildModel(context, config, /*seed=*/0);
  const std::vector<Variable>& params = model->Parameters();
  if (params.size() != record.tensors.size()) {
    return Status::InvalidArgument(StrFormat(
        "model record \"%s\" has %zu tensors but the architecture has %zu "
        "parameters",
        record.arch.c_str(), record.tensors.size(), params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    const Matrix& stored = record.tensors[i].value;
    // Variable is a shared handle, so a by-value copy of the const
    // reference aliases the same parameter storage.
    Variable param = params[i];
    const Matrix& current = param.value();
    if (stored.rows() != current.rows() || stored.cols() != current.cols()) {
      return Status::InvalidArgument(StrFormat(
          "tensor \"%s\" is %lld x %lld but parameter %zu of \"%s\" is "
          "%lld x %lld",
          record.tensors[i].name.c_str(),
          static_cast<long long>(stored.rows()),
          static_cast<long long>(stored.cols()), i, record.arch.c_str(),
          static_cast<long long>(current.rows()),
          static_cast<long long>(current.cols())));
    }
    *param.mutable_value() = stored;
  }
  // Checkpoint load is the "weights are final" moment, so the bf16 serving
  // tier (RDD_BF16=1) snapshots here: students loaded for serving answer
  // from packed bf16 weights, while training-time students — built
  // directly, not through a record — are never affected.
  if (flags::Bf16Enabled()) {
    if (auto* student = dynamic_cast<MlpStudent*>(model.get())) {
      student->EnableBf16Serving();
    }
  }
  return model;
}

}  // namespace rdd
