#include "models/gat.h"

#include "autograd/graph_ops.h"
#include "autograd/ops.h"
#include "util/logging.h"

namespace rdd {

Gat::Gat(GraphContext context, int64_t hidden_dim, int64_t num_heads,
         float dropout, uint64_t seed)
    : GraphModel(std::move(context), seed), dropout_(dropout) {
  RDD_CHECK_GT(hidden_dim, 0);
  RDD_CHECK_GT(num_heads, 0);
  for (int64_t head = 0; head < num_heads; ++head) {
    input_heads_.push_back(MakeHead(context_.feature_dim, hidden_dim));
  }
  output_head_ = MakeHead(num_heads * hidden_dim, context_.num_classes);
}

Gat::Head Gat::MakeHead(int64_t in_dim, int64_t out_dim) {
  Head head;
  head.projection =
      std::make_unique<Linear>(in_dim, out_dim, &rng_, /*use_bias=*/false);
  head.attn_self =
      std::make_unique<Linear>(out_dim, 1, &rng_, /*use_bias=*/false);
  head.attn_neighbor =
      std::make_unique<Linear>(out_dim, 1, &rng_, /*use_bias=*/false);
  RegisterChild(*head.projection);
  RegisterChild(*head.attn_self);
  RegisterChild(*head.attn_neighbor);
  return head;
}

Variable Gat::RunHead(const GraphView& view, const Head& head,
                      const Variable* dense_input, bool sparse_input) const {
  Variable projected =
      sparse_input ? head.projection->ForwardSparse(view.features.get())
                   : head.projection->Forward(*dense_input);
  Variable score_self = head.attn_self->Forward(projected);
  Variable score_neighbor = head.attn_neighbor->Forward(projected);
  // The normalized adjacency's sparsity pattern is N(i) u {i}, exactly the
  // attention neighborhood GAT uses.
  return ag::NeighborAttention(view.adj_norm.get(), projected,
                               score_self, score_neighbor);
}

ModelOutput Gat::Forward(const GraphView& view, bool training) {
  // First layer: multi-head attention over the sparse features, heads
  // concatenated, ELU-style nonlinearity approximated with ReLU (consistent
  // with the rest of the zoo).
  Variable hidden;
  for (const Head& head : input_heads_) {
    Variable out = RunHead(view, head, nullptr, /*sparse_input=*/true);
    hidden = hidden.defined() ? ag::ConcatCols(hidden, out) : out;
  }
  hidden = ag::Relu(hidden);
  hidden = ag::Dropout(hidden, dropout_, training, &rng_);
  // Output layer: a single attention head to class scores.
  Variable logits =
      RunHead(view, output_head_, &hidden, /*sparse_input=*/false);
  return ModelOutput{logits, logits};
}

}  // namespace rdd
