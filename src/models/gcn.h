#ifndef RDD_MODELS_GCN_H_
#define RDD_MODELS_GCN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "models/graph_model.h"
#include "nn/graph_conv.h"

namespace rdd {

/// The plain multi-layer GCN of Kipf & Welling (Sec. 2.2 of the paper):
///   H^(l) = ReLU(Ahat H^(l-1) W^(l)),  Z = softmax(H^(L)).
/// Dropout is applied to every hidden activation during training. The
/// embedding returned by Forward is H^(L) (pre-softmax), which is also what
/// RDD distills.
class Gcn : public GraphModel {
 public:
  /// Builds an `num_layers`-layer GCN with constant hidden width. The paper
  /// uses num_layers = 2 and hidden_dim = 16 on the citation networks.
  Gcn(GraphContext context, int64_t num_layers, int64_t hidden_dim,
      float dropout, uint64_t seed);

  using GraphModel::Forward;
  ModelOutput Forward(const GraphView& view, bool training) override;

  int64_t num_layers() const {
    return static_cast<int64_t>(layers_.size());
  }

 private:
  std::vector<std::unique_ptr<GraphConvolution>> layers_;
  float dropout_;
};

}  // namespace rdd

#endif  // RDD_MODELS_GCN_H_
