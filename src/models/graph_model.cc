#include "models/graph_model.h"

#include "graph/normalize.h"
#include "tensor/ops.h"

namespace rdd {

GraphContext GraphContext::FromDataset(const Dataset& dataset) {
  GraphContext context;
  context.features = std::make_shared<const SparseMatrix>(dataset.features);
  context.adj_norm = std::make_shared<const SparseMatrix>(
      GcnNormalizedAdjacency(dataset.graph));
  context.adj_row = std::make_shared<const SparseMatrix>(
      RowNormalizedAdjacency(dataset.graph));
  context.num_nodes = dataset.NumNodes();
  context.feature_dim = dataset.FeatureDim();
  context.num_classes = dataset.num_classes;
  return context;
}

Matrix GraphModel::PredictProbs() {
  return SoftmaxRows(Forward(/*training=*/false).logits.value());
}

std::vector<int64_t> GraphModel::PredictLabels() {
  return ArgmaxRows(Forward(/*training=*/false).logits.value());
}

}  // namespace rdd
