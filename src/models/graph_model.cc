#include "models/graph_model.h"

#include "graph/normalize.h"
#include "tensor/ops.h"

namespace rdd {

GraphContext GraphContext::FromDataset(const Dataset& dataset) {
  GraphContext context;
  context.features = std::make_shared<const SparseMatrix>(dataset.features);
  context.adj_norm = std::make_shared<const SparseMatrix>(
      GcnNormalizedAdjacency(dataset.graph));
  context.adj_row = std::make_shared<const SparseMatrix>(
      RowNormalizedAdjacency(dataset.graph));
  context.num_nodes = dataset.NumNodes();
  context.feature_dim = dataset.FeatureDim();
  context.num_classes = dataset.num_classes;
  return context;
}

GraphView GraphContext::FullView() const {
  GraphView view;
  view.features = features;
  view.adj_norm = adj_norm;
  view.adj_row = adj_row;
  view.num_nodes = num_nodes;
  view.num_targets = num_nodes;
  view.feature_dim = feature_dim;
  view.num_classes = num_classes;
  return view;
}

Matrix GraphModel::PredictProbs() {
  return SoftmaxRows(Forward(/*training=*/false).logits.value());
}

std::vector<int64_t> GraphModel::PredictLabels() {
  return ArgmaxRows(Forward(/*training=*/false).logits.value());
}

std::vector<int64_t> GraphModel::PredictLabels(const GraphView& view) {
  return ArgmaxRows(Forward(view, /*training=*/false).logits.value());
}

}  // namespace rdd
