#ifndef RDD_MODELS_GRAPH_MODEL_H_
#define RDD_MODELS_GRAPH_MODEL_H_

#include <cstdint>
#include <memory>

#include "autograd/variable.h"
#include "data/dataset.h"
#include "graph/graph_view.h"
#include "nn/module.h"
#include "tensor/matrix.h"
#include "tensor/sparse.h"
#include "util/random.h"

namespace rdd {

/// Immutable per-dataset state shared by every model trained on it: the
/// sparse feature matrix and the precomputed propagation matrices. Copies
/// are cheap (shared ownership), so ensembles of many base models reuse one
/// set of matrices. The context is a view factory: FullView() exposes the
/// whole graph as the identity GraphView, and sub-views over the same
/// matrices come from graph/sampler and graph/partition.
struct GraphContext {
  std::shared_ptr<const SparseMatrix> features;
  /// Symmetric GCN normalization D^-1/2 (A+I) D^-1/2.
  std::shared_ptr<const SparseMatrix> adj_norm;
  /// Row-stochastic D^-1 (A+I), for APPNP and label propagation.
  std::shared_ptr<const SparseMatrix> adj_row;
  int64_t num_nodes = 0;
  int64_t feature_dim = 0;
  int64_t num_classes = 0;

  /// Builds the context (normalizations included) from a dataset.
  static GraphContext FromDataset(const Dataset& dataset);

  /// The identity view over the full graph. Shares (does not copy) the
  /// context's matrices, so forwarding through it is bit-identical to the
  /// pre-view full-batch path.
  GraphView FullView() const;
};

/// The output of one forward pass over a graph view.
struct ModelOutput {
  /// Pre-softmax class scores, view.num_nodes x num_classes.
  Variable logits;
  /// The last graph-convolution layer's output — the node embedding f_t(x)
  /// that RDD's L2 and Lreg losses act on (Fig. 4 of the paper). For plain
  /// GCN this aliases `logits`.
  Variable embedding;
};

/// Interface of every trainable node-classification model in the zoo. A
/// model is bound to one GraphContext at construction. The primitive
/// operation is a forward pass over a GraphView — the full graph for the
/// classic transductive setting, or an induced sub-view (mini-batch, shard)
/// whose rows the caller maps back through view.GlobalId(). Parameters are
/// view-independent, so one model trains on sampled views and serves on the
/// full view.
class GraphModel : public Module {
 public:
  /// Runs a forward pass over `view`. When `training` is true, dropout is
  /// active and draws from the model's internal generator (so repeated
  /// calls differ).
  virtual ModelOutput Forward(const GraphView& view, bool training) = 0;

  /// Full-graph forward — the pre-refactor API; every existing call site
  /// compiles through this unchanged. Non-virtual so derived classes only
  /// implement the view overload (they re-export this one with
  /// `using GraphModel::Forward;`).
  ModelOutput Forward(bool training) { return Forward(full_view_, training); }

  /// Convenience: evaluation-mode softmax probabilities for all nodes.
  Matrix PredictProbs();

  /// Convenience: evaluation-mode argmax predictions for all nodes.
  std::vector<int64_t> PredictLabels();

  /// Evaluation-mode argmax predictions for a view's rows (view-local
  /// order).
  std::vector<int64_t> PredictLabels(const GraphView& view);

  /// The graph context the model is bound to.
  const GraphContext& context() const { return context_; }

  /// The identity view Forward(bool) runs over.
  const GraphView& full_view() const { return full_view_; }

 protected:
  GraphModel(GraphContext context, uint64_t seed)
      : context_(std::move(context)),
        full_view_(context_.FullView()),
        rng_(seed) {}

  GraphContext context_;
  GraphView full_view_;
  Rng rng_;  ///< Drives dropout masks.
};

}  // namespace rdd

#endif  // RDD_MODELS_GRAPH_MODEL_H_
