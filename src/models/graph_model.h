#ifndef RDD_MODELS_GRAPH_MODEL_H_
#define RDD_MODELS_GRAPH_MODEL_H_

#include <cstdint>
#include <memory>

#include "autograd/variable.h"
#include "data/dataset.h"
#include "nn/module.h"
#include "tensor/matrix.h"
#include "tensor/sparse.h"
#include "util/random.h"

namespace rdd {

/// Immutable per-dataset state shared by every model trained on it: the
/// sparse feature matrix and the precomputed propagation matrices. Copies
/// are cheap (shared ownership), so ensembles of many base models reuse one
/// set of matrices.
struct GraphContext {
  std::shared_ptr<const SparseMatrix> features;
  /// Symmetric GCN normalization D^-1/2 (A+I) D^-1/2.
  std::shared_ptr<const SparseMatrix> adj_norm;
  /// Row-stochastic D^-1 (A+I), for APPNP and label propagation.
  std::shared_ptr<const SparseMatrix> adj_row;
  int64_t num_nodes = 0;
  int64_t feature_dim = 0;
  int64_t num_classes = 0;

  /// Builds the context (normalizations included) from a dataset.
  static GraphContext FromDataset(const Dataset& dataset);
};

/// The output of one forward pass over the whole graph.
struct ModelOutput {
  /// Pre-softmax class scores, num_nodes x num_classes.
  Variable logits;
  /// The last graph-convolution layer's output — the node embedding f_t(x)
  /// that RDD's L2 and Lreg losses act on (Fig. 4 of the paper). For plain
  /// GCN this aliases `logits`.
  Variable embedding;
};

/// Interface of every trainable node-classification model in the zoo. A
/// model is bound to one GraphContext at construction; Forward always runs
/// over the full graph (transductive setting).
class GraphModel : public Module {
 public:
  /// Runs a forward pass. When `training` is true, dropout is active and
  /// draws from the model's internal generator (so repeated calls differ).
  virtual ModelOutput Forward(bool training) = 0;

  /// Convenience: evaluation-mode softmax probabilities for all nodes.
  Matrix PredictProbs();

  /// Convenience: evaluation-mode argmax predictions for all nodes.
  std::vector<int64_t> PredictLabels();

  /// The graph context the model is bound to.
  const GraphContext& context() const { return context_; }

 protected:
  GraphModel(GraphContext context, uint64_t seed)
      : context_(std::move(context)), rng_(seed) {}

  GraphContext context_;
  Rng rng_;  ///< Drives dropout masks.
};

}  // namespace rdd

#endif  // RDD_MODELS_GRAPH_MODEL_H_
