#include "models/mlp.h"

#include "autograd/ops.h"
#include "util/logging.h"

namespace rdd {

Mlp::Mlp(GraphContext context, int64_t hidden_dim, float dropout,
         uint64_t seed)
    : GraphModel(std::move(context), seed), dropout_(dropout) {
  RDD_CHECK_GT(hidden_dim, 0);
  input_layer_ = std::make_unique<Linear>(context_.feature_dim, hidden_dim,
                                          &rng_);
  output_layer_ = std::make_unique<Linear>(hidden_dim, context_.num_classes,
                                           &rng_);
  RegisterChild(*input_layer_);
  RegisterChild(*output_layer_);
}

ModelOutput Mlp::Forward(const GraphView& view, bool training) {
  Variable h = input_layer_->ForwardSparseRelu(view.features.get());
  h = ag::Dropout(h, dropout_, training, &rng_);
  Variable logits = output_layer_->Forward(h);
  return ModelOutput{logits, logits};
}

}  // namespace rdd
