#include "models/label_propagation.h"

#include <cmath>

#include "graph/normalize.h"
#include "util/logging.h"

namespace rdd {

namespace {

// Shared diffusion core: labels/train flags are already in row order of
// `propagation`. Clamping is per-row idempotent, so mask-order clamping is
// bit-identical to the historical split-list order.
Matrix PropagateCore(const SparseMatrix& propagation,
                     const std::vector<int64_t>& labels,
                     const std::vector<bool>& train_mask, int64_t k,
                     const LabelPropagationOptions& options) {
  RDD_CHECK_GE(options.alpha, 0.0);
  RDD_CHECK_LT(options.alpha, 1.0);
  const int64_t n = propagation.rows();
  RDD_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  RDD_CHECK_EQ(static_cast<int64_t>(train_mask.size()), n);

  // Seed: one-hot rows for labeled nodes, uniform elsewhere.
  Matrix seed(n, k);
  const float uniform = 1.0f / static_cast<float>(k);
  for (int64_t i = 0; i < n; ++i) {
    if (train_mask[static_cast<size_t>(i)]) {
      seed.At(i, labels[static_cast<size_t>(i)]) = 1.0f;
    } else {
      for (int64_t c = 0; c < k; ++c) seed.At(i, c) = uniform;
    }
  }

  Matrix current = seed;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    Matrix next = propagation.Multiply(current);
    if (options.alpha > 0.0) {
      next.Scale(static_cast<float>(1.0 - options.alpha));
      next.Axpy(static_cast<float>(options.alpha), seed);
    }
    // Clamp labeled rows back to their known labels.
    for (int64_t i = 0; i < n; ++i) {
      if (!train_mask[static_cast<size_t>(i)]) continue;
      for (int64_t c = 0; c < k; ++c) next.At(i, c) = 0.0f;
      next.At(i, labels[static_cast<size_t>(i)]) = 1.0f;
    }
    // Row-renormalize to keep distributions stochastic.
    for (int64_t i = 0; i < n; ++i) {
      float* row = next.RowData(i);
      double sum = 0.0;
      for (int64_t c = 0; c < k; ++c) sum += row[c];
      if (sum > 0.0) {
        const float inv = static_cast<float>(1.0 / sum);
        for (int64_t c = 0; c < k; ++c) row[c] *= inv;
      } else {
        for (int64_t c = 0; c < k; ++c) row[c] = 1.0f / static_cast<float>(k);
      }
    }
    double delta = 0.0;
    const float* a = next.Data();
    const float* b = current.Data();
    for (int64_t i = 0; i < next.size(); ++i) {
      delta += std::fabs(static_cast<double>(a[i]) - b[i]);
    }
    current = std::move(next);
    if (delta < options.tolerance) break;
  }
  return current;
}

}  // namespace

Matrix PropagateLabels(const Dataset& dataset,
                       const LabelPropagationOptions& options) {
  const SparseMatrix propagation = RowNormalizedAdjacency(dataset.graph);
  return PropagateCore(propagation, dataset.labels, dataset.TrainMask(),
                       dataset.num_classes, options);
}

Matrix PropagateLabelsOnView(const GraphView& view,
                             const std::vector<int64_t>& labels,
                             const std::vector<bool>& train_mask,
                             const LabelPropagationOptions& options) {
  RDD_CHECK(view.adj_row != nullptr);
  return PropagateCore(*view.adj_row, view.GatherInt64(labels),
                       view.GatherMask(train_mask), view.num_classes,
                       options);
}

}  // namespace rdd
