#ifndef RDD_MODELS_MLP_STUDENT_H_
#define RDD_MODELS_MLP_STUDENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "models/graph_model.h"
#include "nn/linear.h"
#include "tensor/bf16.h"
#include "tensor/sparse.h"

namespace rdd {

/// The serving-side student of GNN-to-MLP reliable distillation (ROADMAP
/// item 2, after "Quantifying the Knowledge in GNNs for Reliable
/// Distillation into MLPs"): a graph-blind MLP over node features, trained
/// by src/core/distill against the RDD ensemble's soft labels. Unlike the
/// 2-layer test-control Mlp, the student has a configurable depth/width
/// (distillation needs capacity headroom over the teacher) and a tape-free
/// batched inference path that touches only the queried feature rows — no
/// SpMM, no full-graph pass — which is what makes microsecond-latency
/// serving possible.
class MlpStudent : public GraphModel {
 public:
  /// Builds a `num_layers`-deep MLP (feature_dim -> hidden_dim x
  /// (num_layers - 1) -> num_classes). num_layers >= 1; with one layer the
  /// model is a linear classifier.
  MlpStudent(GraphContext context, int64_t num_layers, int64_t hidden_dim,
             float dropout, uint64_t seed);

  /// Training/evaluation forward over the view's feature rows (the
  /// transductive path the distillation trainer drives; graph-blind, so the
  /// view's adjacency is ignored).
  using GraphModel::Forward;
  ModelOutput Forward(const GraphView& view, bool training) override;

  /// Serving path: evaluation-mode logits for exactly the listed nodes,
  /// computed from their sparse feature rows with no autograd tape and no
  /// full-graph work. Cost is O(batch * (nnz_per_row + hidden) * hidden).
  /// Deterministic and batch-invariant: a node's row is bit-identical
  /// whatever batch it is computed in.
  Matrix PredictLogitsRows(const std::vector<int64_t>& nodes) const;

  /// Softmax of PredictLogitsRows.
  Matrix PredictProbsRows(const std::vector<int64_t>& nodes) const;

  /// Snapshots every layer's weight matrix into bf16 storage (biases stay
  /// fp32) and switches PredictLogitsRows to the bf16 fast path: half the
  /// weight bytes per query, fp32 accumulation, results tolerance-equal to
  /// the fp32 path (see DESIGN.md "Kernel fusion and the bf16 serving
  /// tier"). Serving-only: training forwards keep reading the fp32
  /// parameters, so call this after the weights are final — model_io does,
  /// at checkpoint load, when RDD_BF16=1.
  void EnableBf16Serving();
  bool bf16_serving() const { return !bf16_weights_.empty(); }

  int64_t num_layers() const { return static_cast<int64_t>(layers_.size()); }
  int64_t hidden_dim() const { return hidden_dim_; }
  float dropout() const { return dropout_; }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  /// Non-empty iff EnableBf16Serving ran: one packed weight per layer.
  std::vector<Bf16Matrix> bf16_weights_;
  int64_t hidden_dim_;
  float dropout_;
};

}  // namespace rdd

#endif  // RDD_MODELS_MLP_STUDENT_H_
