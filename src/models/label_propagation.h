#ifndef RDD_MODELS_LABEL_PROPAGATION_H_
#define RDD_MODELS_LABEL_PROPAGATION_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "graph/graph_view.h"
#include "tensor/matrix.h"

namespace rdd {

/// Options for label propagation.
struct LabelPropagationOptions {
  int max_iterations = 100;  ///< Power-iteration cap.
  double tolerance = 1e-6;   ///< L1 change threshold for convergence.
  /// Retention weight: each sweep does Y <- (1-alpha) * P Y then clamps the
  /// labeled rows back to their one-hot labels (Zhu et al. harmonic style
  /// when alpha = 0).
  double alpha = 0.0;
};

/// Classic graph-based label propagation (Zhu, Ghahramani & Lafferty), the
/// LP baseline row of Table 4. Iterates class-mass diffusion over the
/// row-normalized adjacency with labeled nodes clamped, and returns
/// row-stochastic per-node class distributions. No features are used.
Matrix PropagateLabels(const Dataset& dataset,
                       const LabelPropagationOptions& options = {});

/// Label propagation restricted to a graph view: diffusion runs over the
/// view's row-normalized induced adjacency, with the view-local rows whose
/// global node is in the training set clamped. `labels` and `train_mask`
/// are global (full-graph) node-indexed vectors; the result has one
/// row-stochastic distribution per view row. On the identity view this is
/// exactly PropagateLabels.
Matrix PropagateLabelsOnView(const GraphView& view,
                             const std::vector<int64_t>& labels,
                             const std::vector<bool>& train_mask,
                             const LabelPropagationOptions& options = {});

}  // namespace rdd

#endif  // RDD_MODELS_LABEL_PROPAGATION_H_
