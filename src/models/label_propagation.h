#ifndef RDD_MODELS_LABEL_PROPAGATION_H_
#define RDD_MODELS_LABEL_PROPAGATION_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "tensor/matrix.h"

namespace rdd {

/// Options for label propagation.
struct LabelPropagationOptions {
  int max_iterations = 100;  ///< Power-iteration cap.
  double tolerance = 1e-6;   ///< L1 change threshold for convergence.
  /// Retention weight: each sweep does Y <- (1-alpha) * P Y then clamps the
  /// labeled rows back to their one-hot labels (Zhu et al. harmonic style
  /// when alpha = 0).
  double alpha = 0.0;
};

/// Classic graph-based label propagation (Zhu, Ghahramani & Lafferty), the
/// LP baseline row of Table 4. Iterates class-mass diffusion over the
/// row-normalized adjacency with labeled nodes clamped, and returns
/// row-stochastic per-node class distributions. No features are used.
Matrix PropagateLabels(const Dataset& dataset,
                       const LabelPropagationOptions& options = {});

}  // namespace rdd

#endif  // RDD_MODELS_LABEL_PROPAGATION_H_
