#ifndef RDD_MODELS_DENSE_GCN_H_
#define RDD_MODELS_DENSE_GCN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "models/graph_model.h"
#include "nn/graph_conv.h"

namespace rdd {

/// GCN with dense (DenseNet-style) connections, the second deep-GCN
/// baseline of Table 5: hidden layer l receives the concatenation of every
/// previous hidden output, so early-layer features survive to the
/// classifier even when later layers over-smooth.
class DenseGcn : public GraphModel {
 public:
  DenseGcn(GraphContext context, int64_t num_layers, int64_t hidden_dim,
           float dropout, uint64_t seed);

  using GraphModel::Forward;
  ModelOutput Forward(const GraphView& view, bool training) override;

 private:
  std::vector<std::unique_ptr<GraphConvolution>> layers_;
  float dropout_;
};

}  // namespace rdd

#endif  // RDD_MODELS_DENSE_GCN_H_
