#include "models/res_gcn.h"

#include "autograd/ops.h"
#include "util/logging.h"

namespace rdd {

ResGcn::ResGcn(GraphContext context, int64_t num_layers, int64_t hidden_dim,
               float dropout, uint64_t seed)
    : GraphModel(std::move(context), seed), dropout_(dropout) {
  RDD_CHECK_GE(num_layers, 2);
  RDD_CHECK_GT(hidden_dim, 0);
  for (int64_t l = 0; l < num_layers; ++l) {
    const int64_t in = l == 0 ? context_.feature_dim : hidden_dim;
    const int64_t out =
        l == num_layers - 1 ? context_.num_classes : hidden_dim;
    layers_.push_back(std::make_unique<GraphConvolution>(
        context_.adj_norm.get(), in, out, &rng_));
    RegisterChild(*layers_.back());
  }
}

ModelOutput ResGcn::Forward(const GraphView& view, bool training) {
  const SparseMatrix* adj = view.adj_norm.get();
  // Input layer: project into the hidden width (no residual possible since
  // dimensions change).
  Variable h = layers_[0]->ForwardSparseRelu(adj, view.features.get());
  h = ag::Dropout(h, dropout_, training, &rng_);
  // Hidden layers: residual connections.
  for (size_t l = 1; l + 1 < layers_.size(); ++l) {
    Variable next = layers_[l]->ForwardRelu(adj, h);
    next = ag::Dropout(next, dropout_, training, &rng_);
    h = ag::Add(next, h);
  }
  Variable logits = layers_.back()->Forward(adj, h);
  return ModelOutput{logits, logits};
}

}  // namespace rdd
