#include "models/jk_net.h"

#include "autograd/ops.h"
#include "util/logging.h"

namespace rdd {

JkNet::JkNet(GraphContext context, int64_t num_layers, int64_t hidden_dim,
             float dropout, uint64_t seed)
    : GraphModel(std::move(context), seed), dropout_(dropout) {
  RDD_CHECK_GE(num_layers, 1);
  RDD_CHECK_GT(hidden_dim, 0);
  for (int64_t l = 0; l < num_layers; ++l) {
    const int64_t in = l == 0 ? context_.feature_dim : hidden_dim;
    layers_.push_back(std::make_unique<GraphConvolution>(
        context_.adj_norm.get(), in, hidden_dim, &rng_));
    RegisterChild(*layers_.back());
  }
  classifier_ = std::make_unique<Linear>(num_layers * hidden_dim,
                                         context_.num_classes, &rng_);
  RegisterChild(*classifier_);
}

ModelOutput JkNet::Forward(const GraphView& view, bool training) {
  const SparseMatrix* adj = view.adj_norm.get();
  Variable h = layers_[0]->ForwardSparseRelu(adj, view.features.get());
  h = ag::Dropout(h, dropout_, training, &rng_);
  Variable jumped = h;  // Concatenation of every layer's output.
  for (size_t l = 1; l < layers_.size(); ++l) {
    h = layers_[l]->ForwardRelu(adj, h);
    h = ag::Dropout(h, dropout_, training, &rng_);
    jumped = ag::ConcatCols(jumped, h);
  }
  Variable logits = classifier_->Forward(jumped);
  return ModelOutput{logits, logits};
}

}  // namespace rdd
