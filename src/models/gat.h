#ifndef RDD_MODELS_GAT_H_
#define RDD_MODELS_GAT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "models/graph_model.h"
#include "nn/linear.h"

namespace rdd {

/// Graph Attention Network (Velickovic et al.), the stronger base model the
/// paper's Sec. 5.3 names as a drop-in upgrade for RDD ("our method is not
/// limited to the base model we use ... the margin can be further improved
/// if we use a more powerful base model like GAT"). Two attention layers:
/// the first with `num_heads` concatenated heads, the second a single head
/// producing class scores. Attention coefficients use the GAT convention
/// LeakyReLU(a1.h_i + a2.h_j) softmax-normalized over N(i) u {i}.
class Gat : public GraphModel {
 public:
  Gat(GraphContext context, int64_t hidden_dim, int64_t num_heads,
      float dropout, uint64_t seed);

  using GraphModel::Forward;
  ModelOutput Forward(const GraphView& view, bool training) override;

 private:
  /// One attention head: a projection plus the two attention score vectors.
  struct Head {
    std::unique_ptr<Linear> projection;  ///< No bias; bias breaks attention.
    std::unique_ptr<Linear> attn_self;   ///< a1: (dim x 1).
    std::unique_ptr<Linear> attn_neighbor;  ///< a2: (dim x 1).
  };

  Head MakeHead(int64_t in_dim, int64_t out_dim);
  Variable RunHead(const GraphView& view, const Head& head,
                   const Variable* dense_input, bool sparse_input) const;

  std::vector<Head> input_heads_;
  Head output_head_;
  float dropout_;
};

}  // namespace rdd

#endif  // RDD_MODELS_GAT_H_
