#ifndef RDD_MODELS_JK_NET_H_
#define RDD_MODELS_JK_NET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "models/graph_model.h"
#include "nn/graph_conv.h"
#include "nn/linear.h"

namespace rdd {

/// Jumping Knowledge network (Xu et al.), the third deep-GCN baseline of
/// Table 5, with the concatenation aggregator the paper reports works best
/// on citation networks: run L graph-convolution layers, concatenate every
/// layer's hidden output, and classify the concatenation with a final
/// linear layer.
class JkNet : public GraphModel {
 public:
  JkNet(GraphContext context, int64_t num_layers, int64_t hidden_dim,
        float dropout, uint64_t seed);

  using GraphModel::Forward;
  ModelOutput Forward(const GraphView& view, bool training) override;

 private:
  std::vector<std::unique_ptr<GraphConvolution>> layers_;
  std::unique_ptr<Linear> classifier_;
  float dropout_;
};

}  // namespace rdd

#endif  // RDD_MODELS_JK_NET_H_
