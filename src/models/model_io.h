#ifndef RDD_MODELS_MODEL_IO_H_
#define RDD_MODELS_MODEL_IO_H_

#include <memory>
#include <string>

#include "data/checkpoint.h"
#include "models/graph_model.h"
#include "models/model_factory.h"
#include "util/status.h"

namespace rdd {

/// Inverse of ModelKindToString. Returns false when `name` names no known
/// architecture.
bool ParseModelKind(const std::string& name, ModelKind* kind);

/// Snapshots a trained model into a checkpoint record: the architecture
/// name, every ModelConfig hyperparameter needed to rebuild it, the graph
/// dimensions it was trained against (for load-time validation), and each
/// trainable parameter as a named tensor ("param.0", "param.1", ... in
/// Parameters() order). `weight` is the caller's ensemble weight for this
/// member (1.0 for standalone models).
ModelRecord RecordFromModel(const GraphModel& model, const ModelConfig& config,
                            double weight);

/// Rebuilds a model from a record over `context`: validates the recorded
/// graph dimensions against the context, constructs the architecture via
/// BuildModel, and overwrites its parameters with the recorded tensors.
/// Any mismatch (unknown arch, missing hyperparameter, wrong tensor count
/// or shape) is an InvalidArgument — never a crash.
StatusOr<std::unique_ptr<GraphModel>> ModelFromRecord(
    const ModelRecord& record, const GraphContext& context);

}  // namespace rdd

#endif  // RDD_MODELS_MODEL_IO_H_
