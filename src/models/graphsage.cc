#include "models/graphsage.h"

#include "autograd/ops.h"
#include "util/logging.h"

namespace rdd {

GraphSage::GraphSage(GraphContext context, int64_t num_layers,
                     int64_t hidden_dim, float dropout, uint64_t seed)
    : GraphModel(std::move(context), seed), dropout_(dropout) {
  RDD_CHECK_GE(num_layers, 1);
  RDD_CHECK_GT(hidden_dim, 0);
  for (int64_t l = 0; l < num_layers; ++l) {
    const int64_t in = l == 0 ? context_.feature_dim : hidden_dim;
    const int64_t out =
        l == num_layers - 1 ? context_.num_classes : hidden_dim;
    SageLayer layer;
    layer.self_weight = std::make_unique<Linear>(in, out, &rng_);
    layer.neighbor_weight =
        std::make_unique<Linear>(in, out, &rng_, /*use_bias=*/false);
    RegisterChild(*layer.self_weight);
    RegisterChild(*layer.neighbor_weight);
    layers_.push_back(std::move(layer));
  }
}

ModelOutput GraphSage::Forward(const GraphView& view, bool training) {
  const SparseMatrix* features = view.features.get();
  const SparseMatrix* propagation = view.adj_row.get();

  // First layer over the sparse features: X W_self + (P X) W_neigh is
  // evaluated as SpMM chains to avoid densifying X.
  Variable h = ag::Add(
      layers_[0].self_weight->ForwardSparse(features),
      ag::SpmmConst(propagation,
                    layers_[0].neighbor_weight->ForwardSparse(features)));
  for (size_t l = 1; l < layers_.size(); ++l) {
    h = ag::Relu(h);
    h = ag::Dropout(h, dropout_, training, &rng_);
    h = ag::Add(layers_[l].self_weight->Forward(h),
                ag::SpmmConst(propagation,
                              layers_[l].neighbor_weight->Forward(h)));
  }
  return ModelOutput{h, h};
}

}  // namespace rdd
