#include "models/model_factory.h"

#include "models/appnp.h"
#include "models/dense_gcn.h"
#include "models/gat.h"
#include "models/gcn.h"
#include "models/graphsage.h"
#include "models/jk_net.h"
#include "models/mlp.h"
#include "models/mlp_student.h"
#include "models/res_gcn.h"
#include "util/logging.h"

namespace rdd {

const char* ModelKindToString(ModelKind kind) {
  switch (kind) {
    case ModelKind::kGcn:
      return "GCN";
    case ModelKind::kResGcn:
      return "ResGCN";
    case ModelKind::kDenseGcn:
      return "DenseGCN";
    case ModelKind::kJkNet:
      return "JK-Net";
    case ModelKind::kAppnp:
      return "APPNP";
    case ModelKind::kMlp:
      return "MLP";
    case ModelKind::kGat:
      return "GAT";
    case ModelKind::kGraphSage:
      return "GraphSAGE";
    case ModelKind::kMlpStudent:
      return "MLP-Student";
  }
  return "Unknown";
}

std::unique_ptr<GraphModel> BuildModel(const GraphContext& context,
                                       const ModelConfig& config,
                                       uint64_t seed) {
  switch (config.kind) {
    case ModelKind::kGcn:
      return std::make_unique<Gcn>(context, config.num_layers,
                                   config.hidden_dim, config.dropout, seed);
    case ModelKind::kResGcn:
      return std::make_unique<ResGcn>(context, config.num_layers,
                                      config.hidden_dim, config.dropout,
                                      seed);
    case ModelKind::kDenseGcn:
      return std::make_unique<DenseGcn>(context, config.num_layers,
                                        config.hidden_dim, config.dropout,
                                        seed);
    case ModelKind::kJkNet:
      return std::make_unique<JkNet>(context, config.num_layers,
                                     config.hidden_dim, config.dropout, seed);
    case ModelKind::kAppnp:
      return std::make_unique<Appnp>(context, config.hidden_dim,
                                     config.dropout, config.appnp_power_steps,
                                     config.appnp_teleport, seed);
    case ModelKind::kMlp:
      return std::make_unique<Mlp>(context, config.hidden_dim, config.dropout,
                                   seed);
    case ModelKind::kGat:
      return std::make_unique<Gat>(context, config.hidden_dim,
                                   config.gat_heads, config.dropout, seed);
    case ModelKind::kGraphSage:
      return std::make_unique<GraphSage>(context, config.num_layers,
                                         config.hidden_dim, config.dropout,
                                         seed);
    case ModelKind::kMlpStudent:
      return std::make_unique<MlpStudent>(context, config.num_layers,
                                          config.hidden_dim, config.dropout,
                                          seed);
  }
  RDD_CHECK(false) << "unknown model kind";
  return nullptr;
}

}  // namespace rdd
