#ifndef RDD_MODELS_RES_GCN_H_
#define RDD_MODELS_RES_GCN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "models/graph_model.h"
#include "nn/graph_conv.h"

namespace rdd {

/// GCN with residual connections (the deep-GCN baseline of Table 5):
/// hidden layer l computes H^(l) = ReLU(Ahat H^(l-1) W^(l)) + H^(l-1),
/// carrying information past the over-smoothing bottleneck. The first layer
/// projects features to the hidden width; the last layer is a plain linear
/// graph convolution to the class scores.
class ResGcn : public GraphModel {
 public:
  ResGcn(GraphContext context, int64_t num_layers, int64_t hidden_dim,
         float dropout, uint64_t seed);

  using GraphModel::Forward;
  ModelOutput Forward(const GraphView& view, bool training) override;

 private:
  std::vector<std::unique_ptr<GraphConvolution>> layers_;
  float dropout_;
};

}  // namespace rdd

#endif  // RDD_MODELS_RES_GCN_H_
