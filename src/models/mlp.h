#ifndef RDD_MODELS_MLP_H_
#define RDD_MODELS_MLP_H_

#include <cstdint>
#include <memory>

#include "models/graph_model.h"
#include "nn/linear.h"

namespace rdd {

/// A graph-blind 2-layer perceptron over node features. Not a paper
/// baseline by itself, but the control model the tests use to verify that
/// graph propagation actually helps on the synthetic datasets (a GCN must
/// beat the MLP for the generator to be a faithful citation-network stand-
/// in).
class Mlp : public GraphModel {
 public:
  Mlp(GraphContext context, int64_t hidden_dim, float dropout, uint64_t seed);

  using GraphModel::Forward;
  ModelOutput Forward(const GraphView& view, bool training) override;

 private:
  std::unique_ptr<Linear> input_layer_;
  std::unique_ptr<Linear> output_layer_;
  float dropout_;
};

}  // namespace rdd

#endif  // RDD_MODELS_MLP_H_
