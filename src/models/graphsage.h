#ifndef RDD_MODELS_GRAPHSAGE_H_
#define RDD_MODELS_GRAPHSAGE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "models/graph_model.h"
#include "nn/linear.h"

namespace rdd {

/// GraphSAGE with the mean aggregator (Hamilton et al.), the spatial-GCN
/// family the paper's related work (Sec. 6) contrasts with spectral GCNs.
/// Each layer combines a node's own representation with the mean of its
/// neighborhood:
///   H^(l) = ReLU(H^(l-1) W_self + (P H^(l-1)) W_neigh),
/// where P is the row-normalized adjacency. In this transductive setting
/// the full neighborhood is used (no sampling); the layer structure is what
/// distinguishes it from the spectral GCN.
class GraphSage : public GraphModel {
 public:
  GraphSage(GraphContext context, int64_t num_layers, int64_t hidden_dim,
            float dropout, uint64_t seed);

  using GraphModel::Forward;
  ModelOutput Forward(const GraphView& view, bool training) override;

 private:
  struct SageLayer {
    std::unique_ptr<Linear> self_weight;
    std::unique_ptr<Linear> neighbor_weight;
  };

  std::vector<SageLayer> layers_;
  float dropout_;
};

}  // namespace rdd

#endif  // RDD_MODELS_GRAPHSAGE_H_
