#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace rdd {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  // xoshiro256** step.
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  RDD_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t n) {
  RDD_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t r;
  do {
    r = NextU64();
  } while (r >= limit);
  return static_cast<int64_t>(r % un);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  RDD_CHECK_GE(stddev, 0.0);
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) {
  RDD_CHECK_GE(p, 0.0);
  RDD_CHECK_LE(p, 1.0);
  return Uniform() < p;
}

int64_t Rng::Categorical(const std::vector<double>& weights) {
  RDD_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    RDD_CHECK_GE(w, 0.0);
    total += w;
  }
  RDD_CHECK_GT(total, 0.0);
  double target = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  RDD_CHECK_GE(k, 0);
  RDD_CHECK_LE(k, n);
  std::vector<int64_t> pool(n);
  for (int64_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: only the first k positions need to be drawn.
  for (int64_t i = 0; i < k; ++i) {
    int64_t j = i + UniformInt(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::Fork() { return Rng(NextU64()); }

Rng Rng::Split(uint64_t tag) const {
  // Absorb the four state words and the tag into a splitmix64 chain. Each
  // absorption advances the chain by the golden-ratio increment and mixes,
  // so (state, tag) pairs that differ in any word land in unrelated seeds.
  // The parent is left untouched: Split is const and consumes no stream.
  uint64_t acc = 0xa0761d6478bd642fULL;
  for (uint64_t word : state_) {
    acc ^= word;
    (void)SplitMix64(&acc);
  }
  acc ^= tag;
  return Rng(SplitMix64(&acc));
}

}  // namespace rdd
