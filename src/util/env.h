#ifndef RDD_UTIL_ENV_H_
#define RDD_UTIL_ENV_H_

#include <vector>

namespace rdd::env {

/// One documented environment knob. `default_value` and `module` mirror the
/// "Default" and "Module" columns of the README's authoritative env-var
/// table; tests/env_docs_test.cc greps both against each other AND against
/// the `"RDD_*"` string literals in the sources, so a knob cannot be added,
/// renamed, or re-defaulted without the table following.
struct KnobInfo {
  const char* name;           ///< Exact variable name, e.g. "RDD_SIMD".
  const char* default_value;  ///< Rendered default, e.g. "1" or "unset".
  const char* module;         ///< Owning module, e.g. "parallel".
};

/// The full registry of environment knobs the library reads, in README
/// table order. Hand-maintained next to the parsers on purpose: the entry
/// and the BoolEnv/IntEnv/DoubleEnv call it documents live one `grep` apart.
const std::vector<KnobInfo>& RegisteredKnobs();

/// Shared parsing for the library's boolean environment switches
/// (RDD_METRICS, RDD_TASK_PARALLEL, RDD_POOL_DISABLE, ...). Accepted
/// spellings, case-insensitive: "1"/"true"/"on"/"yes" -> true,
/// "0"/"false"/"off"/"no" -> false. Unset or empty returns `fallback`
/// silently; any other value warns (naming the variable) and returns
/// `fallback`, so a typo like RDD_METRICS=ture cannot silently flip a
/// switch.
bool BoolEnv(const char* name, bool fallback);

/// Parsing core of BoolEnv, exposed for tests. `*recognized` (optional)
/// reports whether `value` was a recognized spelling; unset/empty counts as
/// recognized (the documented "use the default" state).
bool ParseBool(const char* value, bool fallback, bool* recognized = nullptr);

/// Shared parsing for integer environment knobs. Unset, empty, or
/// non-numeric values return `fallback` (non-numeric warns); numeric values
/// are clamped into [min_value, max_value] with a warning when out of
/// range. Parsing is 64-bit first, so a value like 4294967297 clamps
/// instead of silently truncating on LP64.
int IntEnv(const char* name, int fallback, int min_value, int max_value);

/// Parsing core of IntEnv, exposed for tests. `name` is used only in
/// warning messages and may be null (suppresses the variable name).
int ParseInt(const char* value, int fallback, int min_value, int max_value,
             const char* name = nullptr);

/// Shared parsing for floating-point environment knobs (condensation
/// ratios and similar). Same contract as IntEnv: unset/empty/non-numeric
/// values return `fallback` (non-numeric warns), finite values clamp into
/// [min_value, max_value] with a warning when out of range; NaN counts as
/// non-numeric.
double DoubleEnv(const char* name, double fallback, double min_value,
                 double max_value);

/// Parsing core of DoubleEnv, exposed for tests.
double ParseDouble(const char* value, double fallback, double min_value,
                   double max_value, const char* name = nullptr);

}  // namespace rdd::env

#endif  // RDD_UTIL_ENV_H_
