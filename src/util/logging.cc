#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rdd {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), Basename(file), line,
               msg.c_str());
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      g_min_level.load(std::memory_order_relaxed)) {
    Emit(level_, file_, line_, stream_.str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line)
    : file_(file), line_(line) {}

FatalLogMessage::~FatalLogMessage() {
  Emit(LogLevel::kError, file_, line_, stream_.str());
  std::abort();
}

}  // namespace internal_logging

}  // namespace rdd
