#ifndef RDD_UTIL_RANDOM_H_
#define RDD_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace rdd {

/// Deterministic, seedable pseudo-random generator used by every stochastic
/// component in the library (weight init, dropout, graph/feature generation,
/// data splits). Wraps a splitmix64-seeded xoshiro256** core so results are
/// reproducible bit-for-bit across runs on a given platform, independent of
/// the standard library's distribution implementations.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(uint64_t seed);

  /// Next raw 64 random bits.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  /// Standard normal sample (Box-Muller).
  double Gaussian();

  /// Normal sample with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Weights must be non-negative with a positive sum.
  int64_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (int64_t i = static_cast<int64_t>(items->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in random order. Requires
  /// 0 <= k <= n.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Derives an independent child generator; used to fan a master seed out to
  /// per-model / per-trial generators without correlated streams.
  Rng Fork();

  /// Derives an independent child stream keyed by `tag` WITHOUT advancing
  /// this generator: the same (parent state, tag) pair always yields the
  /// same child, and distinct tags yield decorrelated streams. This is the
  /// stream-split API the mini-batch machinery builds on — per-batch and
  /// per-shard draws become pure functions of (run seed, epoch, node), so
  /// sampled training is bit-identical at any thread count without hoisting
  /// seed arrays up front. Splits chain: `rng.Split(epoch).Split(node)`.
  Rng Split(uint64_t tag) const;

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace rdd

#endif  // RDD_UTIL_RANDOM_H_
