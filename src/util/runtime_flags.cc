#include "util/runtime_flags.h"

#include <atomic>

#include "util/env.h"

namespace rdd::flags {

namespace {

std::atomic<bool>& FuseFlag() {
  static std::atomic<bool> enabled{env::BoolEnv("RDD_FUSE", true)};
  return enabled;
}

std::atomic<bool>& Bf16Flag() {
  static std::atomic<bool> enabled{env::BoolEnv("RDD_BF16", false)};
  return enabled;
}

}  // namespace

bool FuseEnabled() { return FuseFlag().load(std::memory_order_relaxed); }

bool Bf16Enabled() { return Bf16Flag().load(std::memory_order_relaxed); }

void SetFuseEnabled(bool enabled) {
  FuseFlag().store(enabled, std::memory_order_relaxed);
}

void SetBf16Enabled(bool enabled) {
  Bf16Flag().store(enabled, std::memory_order_relaxed);
}

FuseGuard::FuseGuard(bool enabled) : previous_(FuseEnabled()) {
  SetFuseEnabled(enabled);
}
FuseGuard::~FuseGuard() { SetFuseEnabled(previous_); }

Bf16Guard::Bf16Guard(bool enabled) : previous_(Bf16Enabled()) {
  SetBf16Enabled(enabled);
}
Bf16Guard::~Bf16Guard() { SetBf16Enabled(previous_); }

}  // namespace rdd::flags
