#ifndef RDD_UTIL_TABLE_WRITER_H_
#define RDD_UTIL_TABLE_WRITER_H_

#include <string>
#include <vector>

namespace rdd {

/// Builds aligned, monospace result tables for the benchmark harnesses so
/// that each bench binary can print rows in the same layout the paper uses.
///
///   TableWriter table({"Models", "Cora", "Citeseer"});
///   table.AddRow({"GCN", "81.8", "70.8"});
///   std::cout << table.Render();
class TableWriter {
 public:
  /// Creates a table with the given column headers.
  explicit TableWriter(std::vector<std::string> headers);

  /// Appends a data row; must have exactly as many cells as there are
  /// headers.
  void AddRow(std::vector<std::string> cells);

  /// Appends a horizontal separator row.
  void AddSeparator();

  /// Number of data rows added so far (separators excluded).
  size_t num_rows() const;

  /// Renders the table with aligned columns, a header rule, and a border.
  std::string Render() const;

  /// Renders as comma-separated values (header + data rows, no separators).
  std::string RenderCsv() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace rdd

#endif  // RDD_UTIL_TABLE_WRITER_H_
