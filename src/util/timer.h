#ifndef RDD_UTIL_TIMER_H_
#define RDD_UTIL_TIMER_H_

#include <chrono>

namespace rdd {

/// Simple monotonic wall-clock timer for measuring training phases.
class WallTimer {
 public:
  /// Starts (or restarts) the timer.
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rdd

#endif  // RDD_UTIL_TIMER_H_
