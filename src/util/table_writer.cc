#include "util/table_writer.h"

#include <algorithm>

#include "util/logging.h"

namespace rdd {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  RDD_CHECK(!headers_.empty());
}

void TableWriter::AddRow(std::vector<std::string> cells) {
  RDD_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(Row{/*separator=*/false, std::move(cells)});
}

void TableWriter::AddSeparator() {
  rows_.push_back(Row{/*separator=*/true, {}});
}

size_t TableWriter::num_rows() const {
  size_t n = 0;
  for (const Row& row : rows_) {
    if (!row.separator) ++n;
  }
  return n;
}

std::string TableWriter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto render_rule = [&widths]() {
    std::string line = "+";
    for (size_t w : widths) {
      line.append(w + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  };
  auto render_cells = [&widths](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      line += " " + cells[c];
      line.append(widths[c] - cells[c].size() + 1, ' ');
      line += "|";
    }
    line += "\n";
    return line;
  };

  std::string out = render_rule();
  out += render_cells(headers_);
  out += render_rule();
  for (const Row& row : rows_) {
    out += row.separator ? render_rule() : render_cells(row.cells);
  }
  out += render_rule();
  return out;
}

std::string TableWriter::RenderCsv() const {
  auto render_line = [](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) line += ",";
      line += cells[c];
    }
    line += "\n";
    return line;
  };
  std::string out = render_line(headers_);
  for (const Row& row : rows_) {
    if (!row.separator) out += render_line(row.cells);
  }
  return out;
}

}  // namespace rdd
