#ifndef RDD_UTIL_STATUS_H_
#define RDD_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace rdd {

/// Error categories used across the library. Recoverable failures (bad user
/// input, I/O problems, configuration mistakes) are reported through Status
/// rather than exceptions; programmer errors abort via RDD_CHECK.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kIoError = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result, modeled after the RocksDB/Abseil
/// Status idiom. Ok statuses carry no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers for each error category.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  /// Error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>" for diagnostics.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Callers must check
/// ok() before dereferencing; dereferencing an errored StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (success).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accessors for the contained value. Must only be called when ok().
  const T& value() const& {
    AbortIfError();
    return value_;
  }
  T& value() & {
    AbortIfError();
    return value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  Status status_;
  T value_{};
};

/// Internal helper used by StatusOr::AbortIfError; defined in status.cc so
/// the abort path is out of line.
[[noreturn]] void AbortOnBadStatusAccess(const Status& status);

template <typename T>
void StatusOr<T>::AbortIfError() const {
  if (!status_.ok()) AbortOnBadStatusAccess(status_);
}

/// Propagates an error status from an expression to the caller.
#define RDD_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::rdd::Status _rdd_status = (expr);          \
    if (!_rdd_status.ok()) return _rdd_status;   \
  } while (false)

}  // namespace rdd

#endif  // RDD_UTIL_STATUS_H_
