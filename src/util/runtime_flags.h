#ifndef RDD_UTIL_RUNTIME_FLAGS_H_
#define RDD_UTIL_RUNTIME_FLAGS_H_

namespace rdd::flags {

/// Process-wide feature switches resolved from the environment exactly once,
/// the same pattern as the pre-resolved SIMD dispatch (simd/dispatch.cc) and
/// RDD_METRICS (observe/metrics.cc): the first consultation parses the env
/// var via env::BoolEnv into an atomic, and every later read — including the
/// per-graph-construction checks in the autograd fusion pass — is one
/// relaxed load. Hot paths never branch on getenv.

/// RDD_FUSE (default on): emit fused operator chains (GEMM/SpMM->bias->ReLU,
/// softmax->masked-CE) at Variable graph construction. Off reproduces the
/// unfused op sequence bit for bit; on is bit-identical too (the fused
/// kernels replicate the unfused arithmetic exactly) — the knob exists so
/// the equivalence stays testable, not because results differ.
bool FuseEnabled();

/// RDD_BF16 (default off): serve MLP-student checkpoints from bf16-packed
/// weights (fp32 accumulation). Opt-in because bf16 results are tolerance-
/// equal, not bit-equal, to the fp32 tier (see DESIGN.md §12).
bool Bf16Enabled();

/// Runtime overrides for tests and benchmarks comparing both settings in
/// one process. They only affect graphs/predictors built *after* the call.
void SetFuseEnabled(bool enabled);
void SetBf16Enabled(bool enabled);

/// RAII guards restoring the previous setting on scope exit.
class FuseGuard {
 public:
  explicit FuseGuard(bool enabled);
  ~FuseGuard();
  FuseGuard(const FuseGuard&) = delete;
  FuseGuard& operator=(const FuseGuard&) = delete;

 private:
  bool previous_;
};

class Bf16Guard {
 public:
  explicit Bf16Guard(bool enabled);
  ~Bf16Guard();
  Bf16Guard(const Bf16Guard&) = delete;
  Bf16Guard& operator=(const Bf16Guard&) = delete;

 private:
  bool previous_;
};

}  // namespace rdd::flags

#endif  // RDD_UTIL_RUNTIME_FLAGS_H_
