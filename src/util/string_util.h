#ifndef RDD_UTIL_STRING_UTIL_H_
#define RDD_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace rdd {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

/// Splits `text` on the single-character separator, keeping empty fields.
std::vector<std::string> StrSplit(const std::string& text, char sep);

/// Formats a double with `digits` places after the decimal point.
std::string FormatDouble(double value, int digits);

}  // namespace rdd

#endif  // RDD_UTIL_STRING_UTIL_H_
