#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace rdd {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

void AbortOnBadStatusAccess(const Status& status) {
  std::fprintf(stderr, "StatusOr accessed with error: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace rdd
