#include "util/proc_stats.h"

#include <cstdio>
#include <cstring>
#include <cstdlib>

namespace rdd::util {

namespace {

/// Reads one "Key: <kib> kB" field from /proc/self/status; -1 on any miss.
double StatusFieldKib(const char* key) {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1.0;
  const size_t key_len = std::strlen(key);
  char line[256];
  double kib = -1.0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      kib = std::strtod(line + key_len, nullptr);
      break;
    }
  }
  std::fclose(f);
  return kib;
#else
  (void)key;
  return -1.0;
#endif
}

}  // namespace

double PeakRssMib() {
  const double kib = StatusFieldKib("VmHWM:");
  return kib < 0.0 ? -1.0 : kib / 1024.0;
}

double CurrentRssMib() {
  const double kib = StatusFieldKib("VmRSS:");
  return kib < 0.0 ? -1.0 : kib / 1024.0;
}

}  // namespace rdd::util
