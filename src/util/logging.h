#ifndef RDD_UTIL_LOGGING_H_
#define RDD_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace rdd {

/// Log severities, in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that will be emitted (default: kInfo).
void SetLogLevel(LogLevel level);
/// Returns the current minimum severity.
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log message collector; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process after emitting; used by RDD_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Stream-style logging: RDD_LOG(INFO) << "epoch " << e;
#define RDD_LOG(severity)                                              \
  ::rdd::internal_logging::LogMessage(::rdd::LogLevel::k##severity,    \
                                      __FILE__, __LINE__)              \
      .stream()

/// Invariant check for programmer errors; aborts with a message on failure.
/// Enabled in all build types (cheap relative to the numeric kernels).
#define RDD_CHECK(condition)                                       \
  if (!(condition))                                                \
  ::rdd::internal_logging::FatalLogMessage(__FILE__, __LINE__)     \
          .stream()                                                \
      << "Check failed: " #condition " "

/// Convenience comparison checks that print both operands on failure.
#define RDD_CHECK_OP(op, a, b)                                        \
  if (!((a)op(b)))                                                    \
  ::rdd::internal_logging::FatalLogMessage(__FILE__, __LINE__)        \
          .stream()                                                   \
      << "Check failed: " #a " " #op " " #b " (" << (a) << " vs "     \
      << (b) << ") "

#define RDD_CHECK_EQ(a, b) RDD_CHECK_OP(==, a, b)
#define RDD_CHECK_NE(a, b) RDD_CHECK_OP(!=, a, b)
#define RDD_CHECK_LT(a, b) RDD_CHECK_OP(<, a, b)
#define RDD_CHECK_LE(a, b) RDD_CHECK_OP(<=, a, b)
#define RDD_CHECK_GT(a, b) RDD_CHECK_OP(>, a, b)
#define RDD_CHECK_GE(a, b) RDD_CHECK_OP(>=, a, b)

}  // namespace rdd

#endif  // RDD_UTIL_LOGGING_H_
