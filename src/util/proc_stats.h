#ifndef RDD_UTIL_PROC_STATS_H_
#define RDD_UTIL_PROC_STATS_H_

namespace rdd::util {

/// Process peak resident set size in MiB (the VmHWM high-water mark from
/// /proc/self/status). Returns -1 on platforms without procfs or when the
/// file cannot be read. The value is MONOTONIC over the process lifetime:
/// a reading after phase N bounds every phase up to and including N, which
/// is why the benches run phases cheapest-first.
double PeakRssMib();

/// Current resident set size in MiB (VmRSS), or -1 where unavailable.
double CurrentRssMib();

}  // namespace rdd::util

#endif  // RDD_UTIL_PROC_STATS_H_
