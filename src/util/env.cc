#include "util/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/logging.h"

namespace rdd::env {

namespace {

std::string AsciiLower(const char* value) {
  std::string lowered(value);
  for (char& c : lowered) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return lowered;
}

}  // namespace

const std::vector<KnobInfo>& RegisteredKnobs() {
  // Keep in README table order; env_docs_test pins the two against each
  // other. "unset" marks knobs whose absence (not a value) is the default;
  // "auto" marks runtime-detected defaults.
  static const std::vector<KnobInfo> knobs = {
      {"RDD_NUM_THREADS", "auto", "parallel"},
      {"RDD_TASK_PARALLEL", "1", "parallel"},
      {"RDD_SIMD", "auto", "simd"},
      {"RDD_REQUIRE_SIMD", "unset", "simd"},
      {"RDD_FUSE", "1", "simd"},
      {"RDD_BF16", "0", "serve"},
      {"RDD_POOL_DISABLE", "0", "memory"},
      {"RDD_METRICS", "0", "observe"},
      {"RDD_TRACE", "unset", "observe"},
      {"RDD_BENCH_FULL", "0", "bench"},
      {"RDD_MB_BATCH", "256", "train"},
      {"RDD_MB_FANOUT", "10,10", "train"},
      {"RDD_MB_SHARDS", "0", "train"},
      {"RDD_MB_SAMPLED_EVAL", "0", "train"},
      {"RDD_CONDENSE", "off", "condense"},
      {"RDD_CONDENSE_RATIO", "0.05", "condense"},
      {"RDD_CONDENSE_PROP_STEPS", "2", "condense"},
      {"RDD_CONDENSE_EIGEN_K", "32", "condense"},
      {"RDD_CONDENSE_EVAL_EVERY", "10", "condense"},
      {"RDD_CONDENSE_WARMUP", "20", "condense"},
      {"RDD_STREAM_HOPS", "2", "stream"},
      {"RDD_STREAM_EPOCHS", "10", "stream"},
      {"RDD_STREAM_BOOST", "2.0", "stream"},
  };
  return knobs;
}

bool ParseBool(const char* value, bool fallback, bool* recognized) {
  if (recognized != nullptr) *recognized = true;
  if (value == nullptr || *value == '\0') return fallback;
  const std::string v = AsciiLower(value);
  if (v == "1" || v == "true" || v == "on" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "off" || v == "no") return false;
  if (recognized != nullptr) *recognized = false;
  return fallback;
}

bool BoolEnv(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  bool recognized = true;
  const bool parsed = ParseBool(value, fallback, &recognized);
  if (!recognized) {
    RDD_LOG(Warning) << name << "=" << value
                     << " is not a boolean (1|0|true|false|on|off|yes|no); "
                     << "using default " << (fallback ? "1" : "0");
  }
  return parsed;
}

int ParseInt(const char* value, int fallback, int min_value, int max_value,
             const char* name) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') {
    if (name != nullptr) {
      RDD_LOG(Warning) << name << "=" << value
                       << " is not an integer; using default " << fallback;
    }
    return fallback;
  }
  // ERANGE means the value overflowed long long; treat it like any other
  // out-of-range number and clamp toward the side it overflowed to.
  long long effective = parsed;
  if (errno == ERANGE) {
    effective = parsed > 0 ? static_cast<long long>(max_value) + 1
                           : static_cast<long long>(min_value) - 1;
  }
  if (effective < min_value || effective > max_value) {
    const int clamped = effective < min_value ? min_value : max_value;
    if (name != nullptr) {
      RDD_LOG(Warning) << name << "=" << value << " is outside ["
                       << min_value << ", " << max_value << "]; clamping to "
                       << clamped;
    }
    return clamped;
  }
  return static_cast<int>(effective);
}

int IntEnv(const char* name, int fallback, int min_value, int max_value) {
  return ParseInt(std::getenv(name), fallback, min_value, max_value, name);
}

double ParseDouble(const char* value, double fallback, double min_value,
                   double max_value, const char* name) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || parsed != parsed) {
    if (name != nullptr) {
      RDD_LOG(Warning) << name << "=" << value
                       << " is not a number; using default " << fallback;
    }
    return fallback;
  }
  // ERANGE covers both overflow (+-HUGE_VAL, clamped below) and underflow
  // (a denormal-or-zero result, which the clamp handles the same way).
  if (parsed < min_value || parsed > max_value) {
    const double clamped = parsed < min_value ? min_value : max_value;
    if (name != nullptr) {
      RDD_LOG(Warning) << name << "=" << value << " is outside ["
                       << min_value << ", " << max_value << "]; clamping to "
                       << clamped;
    }
    return clamped;
  }
  return parsed;
}

double DoubleEnv(const char* name, double fallback, double min_value,
                 double max_value) {
  return ParseDouble(std::getenv(name), fallback, min_value, max_value, name);
}

}  // namespace rdd::env
