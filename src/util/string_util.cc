#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace rdd {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> StrSplit(const std::string& text, char sep) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      fields.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(current);
  return fields;
}

std::string FormatDouble(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

}  // namespace rdd
