#include "memory/workspace.h"

#include <atomic>

namespace rdd::memory {

namespace {
std::atomic<int> g_depth{0};
}  // namespace

Workspace::Workspace() { g_depth.fetch_add(1, std::memory_order_relaxed); }

Workspace::~Workspace() {
  if (g_depth.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Outermost scope gone: drop the run's cached high-water mark.
    BufferPool::Global().Trim();
  }
}

int Workspace::depth() { return g_depth.load(std::memory_order_relaxed); }

}  // namespace rdd::memory
