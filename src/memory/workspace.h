#ifndef RDD_MEMORY_WORKSPACE_H_
#define RDD_MEMORY_WORKSPACE_H_

#include "memory/buffer_pool.h"

namespace rdd::memory {

/// RAII scope that marks one training run as the owner of the global
/// BufferPool's cached memory. While any Workspace is alive, buffers
/// released by tensors are retained for reuse across epochs (and across the
/// T students of an RDD run, which nest their per-student Workspaces inside
/// the run-level one). When the outermost Workspace is destroyed the pool is
/// trimmed, so one-shot callers do not keep a training run's high-water mark
/// cached forever.
///
/// Workspaces are nestable and cheap; they carry no buffers themselves.
/// Trainer owns one per TrainWithLoss call, TrainRdd and the ensemble
/// baselines own one per run.
class Workspace {
 public:
  Workspace();
  ~Workspace();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Nesting depth of live Workspaces (0 = none active).
  static int depth();

  /// Stats of the underlying global pool, for accounting tests and benches.
  static PoolStats Stats() { return BufferPool::Global().stats(); }
};

}  // namespace rdd::memory

#endif  // RDD_MEMORY_WORKSPACE_H_
