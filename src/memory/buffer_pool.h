#ifndef RDD_MEMORY_BUFFER_POOL_H_
#define RDD_MEMORY_BUFFER_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace rdd::memory {

/// Every pool buffer starts on a kBufferAlignment-byte boundary (one cache
/// line, and the natural alignment for 512-bit vector loads). The SIMD
/// kernels use unaligned loads so alignment is a performance guarantee, not
/// a correctness precondition — but packed GEMM panels and pooled tensors
/// should never straddle a cache line at element 0.
inline constexpr std::size_t kBufferAlignment = 64;

/// Counters describing pool behavior since the last ResetStats(). A "miss"
/// is an Acquire that had to touch the heap (either the size bucket was
/// empty or the pool is disabled); steady-state training epochs are expected
/// to run at zero misses.
///
/// The same figures are published to the process metrics registry
/// (observe/metrics.h) as pull-style gauges — "pool.hits", "pool.misses",
/// "pool.releases", "pool.live_floats", "pool.peak_live_floats",
/// "pool.free_floats" — evaluated from this struct at snapshot time, so a
/// MetricsSnapshot and stats() can never disagree.
struct PoolStats {
  uint64_t hits = 0;      ///< Acquires satisfied from a freelist bucket.
  uint64_t misses = 0;    ///< Acquires that allocated from the heap.
  uint64_t releases = 0;  ///< Buffers returned (cached or freed).
  uint64_t trims = 0;     ///< Trim() calls that freed cached buffers.

  uint64_t free_buffers = 0;    ///< Buffers currently cached in freelists.
  uint64_t free_floats = 0;     ///< Total capacity of cached buffers.
  uint64_t live_floats = 0;     ///< Capacity currently lent out.
  uint64_t peak_live_floats = 0;  ///< High-water mark of live_floats.
};

/// Process-wide size-bucketed freelist of float buffers. Buckets are exact
/// request sizes: training workloads allocate the same fixed set of tensor
/// shapes every epoch, so exact bucketing gives zero waste and a 100% hit
/// rate once the first epoch has populated the pool.
///
/// Sharded for concurrent trainers: the freelists are split across
/// kNumShards independent mutex-protected shards and every thread is pinned
/// to one shard (round-robin at first touch), so ensemble members training
/// in parallel arenas recycle their tensors through disjoint locks instead
/// of contending on one. A buffer released on a different thread than it
/// was acquired on simply migrates shards — caching is a hint, never an
/// ownership constraint. Live/peak accounting is kept globally exact via
/// atomics (a compare-exchange high-water mark); hit/miss/release counters
/// are per-shard and summed on stats().
///
/// Disabled (every Acquire hits the heap, every Release frees) when the
/// RDD_POOL_DISABLE=1 environment variable is set at first use, or via
/// set_enabled(false) at runtime. Enabled/disabled mode changes only where
/// bytes live, never any numeric result.
class BufferPool {
 public:
  /// Number of independent freelist shards. A small power of two well above
  /// the ensemble sizes the benches run (4-8 concurrent members).
  static constexpr int kNumShards = 8;

  /// The process-wide pool. Created on first use and intentionally leaked so
  /// buffers released during static destruction still have a home.
  static BufferPool& Global();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns an uninitialized buffer of exactly `n` floats (nullptr when
  /// n == 0). The caller owns it until Release.
  float* Acquire(size_t n);

  /// Returns a buffer previously obtained from Acquire(n). Cached for reuse
  /// when the pool is enabled, freed otherwise. No-op for nullptr.
  void Release(float* ptr, size_t n);

  /// Frees every cached buffer in every shard. Outstanding (live) buffers
  /// are unaffected.
  void Trim();

  PoolStats stats() const;
  void ResetStats();

  bool enabled() const;
  /// Runtime override of RDD_POOL_DISABLE; used by tests and benchmarks to
  /// compare pooled vs unpooled runs inside one process. Buffers already
  /// cached stay valid across a toggle.
  void set_enabled(bool enabled);

 private:
  /// One independent freelist with its own lock and throughput counters.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<size_t, std::vector<float*>> free_lists;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t releases = 0;
    uint64_t free_buffers = 0;
    uint64_t free_floats = 0;
  };

  BufferPool();
  ~BufferPool() = default;

  /// The calling thread's shard (assigned round-robin at first touch).
  Shard& LocalShard();

  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> live_floats_{0};
  std::atomic<uint64_t> peak_live_floats_{0};
  std::atomic<uint64_t> trims_{0};
  std::atomic<int> next_shard_{0};
  Shard shards_[kNumShards];
};

/// Move-only RAII handle for one pool buffer; the storage backing Matrix.
/// Empty (size 0) handles hold no memory.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  /// Acquires `n` floats from the global pool. Contents are uninitialized.
  explicit PooledBuffer(size_t n);
  ~PooledBuffer();

  PooledBuffer(PooledBuffer&& other) noexcept;
  PooledBuffer& operator=(PooledBuffer&& other) noexcept;

  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }
  size_t size() const { return size_; }

  /// Returns the buffer to the pool now and becomes empty.
  void reset();

 private:
  float* ptr_ = nullptr;
  size_t size_ = 0;
};

}  // namespace rdd::memory

#endif  // RDD_MEMORY_BUFFER_POOL_H_
