#ifndef RDD_MEMORY_BUFFER_POOL_H_
#define RDD_MEMORY_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace rdd::memory {

/// Counters describing pool behavior since the last ResetStats(). A "miss"
/// is an Acquire that had to touch the heap (either the size bucket was
/// empty or the pool is disabled); steady-state training epochs are expected
/// to run at zero misses.
struct PoolStats {
  uint64_t hits = 0;      ///< Acquires satisfied from a freelist bucket.
  uint64_t misses = 0;    ///< Acquires that allocated from the heap.
  uint64_t releases = 0;  ///< Buffers returned (cached or freed).
  uint64_t trims = 0;     ///< Trim() calls that freed cached buffers.

  uint64_t free_buffers = 0;    ///< Buffers currently cached in freelists.
  uint64_t free_floats = 0;     ///< Total capacity of cached buffers.
  uint64_t live_floats = 0;     ///< Capacity currently lent out.
  uint64_t peak_live_floats = 0;  ///< High-water mark of live_floats.
};

/// Process-wide size-bucketed freelist of float buffers. Buckets are exact
/// request sizes: training workloads allocate the same fixed set of tensor
/// shapes every epoch, so exact bucketing gives zero waste and a 100% hit
/// rate once the first epoch has populated the pool.
///
/// Thread-compatible by a single mutex: Acquire/Release are safe from any
/// thread (the parallel SpMM-gradient kernel returns its partial buffers
/// from pool memory), but the lock is only ever taken per-tensor, never
/// per-element — kernels themselves do not allocate.
///
/// Disabled (every Acquire hits the heap, every Release frees) when the
/// RDD_POOL_DISABLE=1 environment variable is set at first use, or via
/// set_enabled(false) at runtime. Enabled/disabled mode changes only where
/// bytes live, never any numeric result.
class BufferPool {
 public:
  /// The process-wide pool. Created on first use and intentionally leaked so
  /// buffers released during static destruction still have a home.
  static BufferPool& Global();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns an uninitialized buffer of exactly `n` floats (nullptr when
  /// n == 0). The caller owns it until Release.
  float* Acquire(size_t n);

  /// Returns a buffer previously obtained from Acquire(n). Cached for reuse
  /// when the pool is enabled, freed otherwise. No-op for nullptr.
  void Release(float* ptr, size_t n);

  /// Frees every cached buffer. Outstanding (live) buffers are unaffected.
  void Trim();

  PoolStats stats() const;
  void ResetStats();

  bool enabled() const;
  /// Runtime override of RDD_POOL_DISABLE; used by tests and benchmarks to
  /// compare pooled vs unpooled runs inside one process. Buffers already
  /// cached stay valid across a toggle.
  void set_enabled(bool enabled);

 private:
  BufferPool();
  ~BufferPool() = default;

  mutable std::mutex mu_;
  bool enabled_ = true;
  std::unordered_map<size_t, std::vector<float*>> free_lists_;
  PoolStats stats_;
};

/// Move-only RAII handle for one pool buffer; the storage backing Matrix.
/// Empty (size 0) handles hold no memory.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  /// Acquires `n` floats from the global pool. Contents are uninitialized.
  explicit PooledBuffer(size_t n);
  ~PooledBuffer();

  PooledBuffer(PooledBuffer&& other) noexcept;
  PooledBuffer& operator=(PooledBuffer&& other) noexcept;

  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }
  size_t size() const { return size_; }

  /// Returns the buffer to the pool now and becomes empty.
  void reset();

 private:
  float* ptr_ = nullptr;
  size_t size_ = 0;
};

}  // namespace rdd::memory

#endif  // RDD_MEMORY_BUFFER_POOL_H_
