#include "memory/buffer_pool.h"

#include <cstdlib>

namespace rdd::memory {

namespace {

bool PoolDisabledByEnv() {
  const char* value = std::getenv("RDD_POOL_DISABLE");
  return value != nullptr && value[0] == '1' && value[1] == '\0';
}

}  // namespace

BufferPool::BufferPool() : enabled_(!PoolDisabledByEnv()) {}

BufferPool& BufferPool::Global() {
  // Leaked on purpose: Matrix objects with static storage duration release
  // their buffers during static destruction, which must outlive the pool.
  static BufferPool* pool = new BufferPool();
  return *pool;
}

float* BufferPool::Acquire(size_t n) {
  if (n == 0) return nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.live_floats += n;
    if (stats_.live_floats > stats_.peak_live_floats) {
      stats_.peak_live_floats = stats_.live_floats;
    }
    if (enabled_) {
      auto it = free_lists_.find(n);
      if (it != free_lists_.end() && !it->second.empty()) {
        float* ptr = it->second.back();
        it->second.pop_back();
        ++stats_.hits;
        stats_.free_buffers -= 1;
        stats_.free_floats -= n;
        return ptr;
      }
    }
    ++stats_.misses;
  }
  // Heap allocation outside the lock: a miss is already the slow path.
  return new float[n];
}

void BufferPool::Release(float* ptr, size_t n) {
  if (ptr == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.releases;
    stats_.live_floats -= n;
    if (enabled_) {
      free_lists_[n].push_back(ptr);
      stats_.free_buffers += 1;
      stats_.free_floats += n;
      return;
    }
  }
  delete[] ptr;
}

void BufferPool::Trim() {
  std::unordered_map<size_t, std::vector<float*>> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    doomed.swap(free_lists_);
    if (stats_.free_buffers > 0) ++stats_.trims;
    stats_.free_buffers = 0;
    stats_.free_floats = 0;
  }
  for (auto& [size, buffers] : doomed) {
    (void)size;
    for (float* ptr : buffers) delete[] ptr;
  }
}

PoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BufferPool::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t free_buffers = stats_.free_buffers;
  const uint64_t free_floats = stats_.free_floats;
  const uint64_t live_floats = stats_.live_floats;
  stats_ = PoolStats{};
  stats_.free_buffers = free_buffers;
  stats_.free_floats = free_floats;
  stats_.live_floats = live_floats;
  stats_.peak_live_floats = live_floats;
}

bool BufferPool::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void BufferPool::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = enabled;
}

PooledBuffer::PooledBuffer(size_t n)
    : ptr_(BufferPool::Global().Acquire(n)), size_(n) {}

PooledBuffer::~PooledBuffer() {
  if (ptr_ != nullptr) BufferPool::Global().Release(ptr_, size_);
}

PooledBuffer::PooledBuffer(PooledBuffer&& other) noexcept
    : ptr_(other.ptr_), size_(other.size_) {
  other.ptr_ = nullptr;
  other.size_ = 0;
}

PooledBuffer& PooledBuffer::operator=(PooledBuffer&& other) noexcept {
  if (this != &other) {
    reset();
    ptr_ = other.ptr_;
    size_ = other.size_;
    other.ptr_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void PooledBuffer::reset() {
  if (ptr_ != nullptr) {
    BufferPool::Global().Release(ptr_, size_);
    ptr_ = nullptr;
    size_ = 0;
  }
}

}  // namespace rdd::memory
