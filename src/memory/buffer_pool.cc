#include "memory/buffer_pool.h"

#include <cstdlib>
#include <new>

#include "observe/metrics.h"
#include "util/env.h"

namespace rdd::memory {

namespace {

bool PoolDisabledByEnv() { return env::BoolEnv("RDD_POOL_DISABLE", false); }

// All pool memory goes through the aligned operator new/delete pair so every
// buffer honors kBufferAlignment (see buffer_pool.h).
float* AllocateAligned(size_t n) {
  return static_cast<float*>(::operator new(
      n * sizeof(float), std::align_val_t{kBufferAlignment}));
}

void FreeAligned(float* ptr) {
  ::operator delete(ptr, std::align_val_t{kBufferAlignment});
}

}  // namespace

BufferPool::BufferPool() : enabled_(!PoolDisabledByEnv()) {}

BufferPool& BufferPool::Global() {
  // Leaked on purpose: Matrix objects with static storage duration release
  // their buffers during static destruction, which must outlive the pool.
  static BufferPool* pool = [] {
    auto* p = new BufferPool();
    // The pool keeps its own (shard-local, lock-protected) accounting for
    // exactness; the metrics registry pulls it at snapshot time instead of
    // double-counting on the hot path. Callbacks capture the leaked
    // singleton, so they stay valid for the life of the process.
    observe::MetricsRegistry& r = observe::MetricsRegistry::Global();
    r.RegisterCallbackGauge("pool.hits", [p] {
      return static_cast<int64_t>(p->stats().hits);
    });
    r.RegisterCallbackGauge("pool.misses", [p] {
      return static_cast<int64_t>(p->stats().misses);
    });
    r.RegisterCallbackGauge("pool.releases", [p] {
      return static_cast<int64_t>(p->stats().releases);
    });
    r.RegisterCallbackGauge("pool.live_floats", [p] {
      return static_cast<int64_t>(p->stats().live_floats);
    });
    r.RegisterCallbackGauge("pool.peak_live_floats", [p] {
      return static_cast<int64_t>(p->stats().peak_live_floats);
    });
    r.RegisterCallbackGauge("pool.free_floats", [p] {
      return static_cast<int64_t>(p->stats().free_floats);
    });
    return p;
  }();
  return *pool;
}

BufferPool::Shard& BufferPool::LocalShard() {
  // Round-robin assignment spreads concurrent trainers across shards even
  // when thread ids would hash unevenly; the index is sticky per thread so
  // a trainer's steady-state acquire/release loop always sees the buffers
  // it released (single-threaded programs use exactly one shard, keeping
  // the exact-reuse guarantees the pool tests pin down).
  thread_local int t_shard = next_shard_.fetch_add(1, std::memory_order_relaxed) %
                             kNumShards;
  return shards_[t_shard];
}

float* BufferPool::Acquire(size_t n) {
  if (n == 0) return nullptr;
  // Globally exact live/peak accounting, shard-independent: the peak is a
  // compare-exchange high-water mark, so concurrent acquires never lose an
  // update.
  const uint64_t live =
      live_floats_.fetch_add(n, std::memory_order_relaxed) + n;
  uint64_t peak = peak_live_floats_.load(std::memory_order_relaxed);
  while (live > peak && !peak_live_floats_.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }

  Shard& shard = LocalShard();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (enabled_.load(std::memory_order_relaxed)) {
      auto it = shard.free_lists.find(n);
      if (it != shard.free_lists.end() && !it->second.empty()) {
        float* ptr = it->second.back();
        it->second.pop_back();
        ++shard.hits;
        shard.free_buffers -= 1;
        shard.free_floats -= n;
        return ptr;
      }
    }
    ++shard.misses;
  }
  // Heap allocation outside the lock: a miss is already the slow path.
  return AllocateAligned(n);
}

void BufferPool::Release(float* ptr, size_t n) {
  if (ptr == nullptr) return;
  live_floats_.fetch_sub(n, std::memory_order_relaxed);
  Shard& shard = LocalShard();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.releases;
    if (enabled_.load(std::memory_order_relaxed)) {
      shard.free_lists[n].push_back(ptr);
      shard.free_buffers += 1;
      shard.free_floats += n;
      return;
    }
  }
  FreeAligned(ptr);
}

void BufferPool::Trim() {
  uint64_t freed = 0;
  for (Shard& shard : shards_) {
    std::unordered_map<size_t, std::vector<float*>> doomed;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      doomed.swap(shard.free_lists);
      freed += shard.free_buffers;
      shard.free_buffers = 0;
      shard.free_floats = 0;
    }
    for (auto& [size, buffers] : doomed) {
      (void)size;
      for (float* ptr : buffers) FreeAligned(ptr);
    }
  }
  if (freed > 0) trims_.fetch_add(1, std::memory_order_relaxed);
}

PoolStats BufferPool::stats() const {
  PoolStats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.releases += shard.releases;
    stats.free_buffers += shard.free_buffers;
    stats.free_floats += shard.free_floats;
  }
  stats.trims = trims_.load(std::memory_order_relaxed);
  stats.live_floats = live_floats_.load(std::memory_order_relaxed);
  stats.peak_live_floats = peak_live_floats_.load(std::memory_order_relaxed);
  return stats;
}

void BufferPool::ResetStats() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.hits = 0;
    shard.misses = 0;
    shard.releases = 0;
    // free_buffers / free_floats describe current freelist contents, not
    // history; they survive a stats reset.
  }
  trims_.store(0, std::memory_order_relaxed);
  peak_live_floats_.store(live_floats_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
}

bool BufferPool::enabled() const {
  return enabled_.load(std::memory_order_relaxed);
}

void BufferPool::set_enabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

PooledBuffer::PooledBuffer(size_t n)
    : ptr_(BufferPool::Global().Acquire(n)), size_(n) {}

PooledBuffer::~PooledBuffer() {
  if (ptr_ != nullptr) BufferPool::Global().Release(ptr_, size_);
}

PooledBuffer::PooledBuffer(PooledBuffer&& other) noexcept
    : ptr_(other.ptr_), size_(other.size_) {
  other.ptr_ = nullptr;
  other.size_ = 0;
}

PooledBuffer& PooledBuffer::operator=(PooledBuffer&& other) noexcept {
  if (this != &other) {
    reset();
    ptr_ = other.ptr_;
    size_ = other.size_;
    other.ptr_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void PooledBuffer::reset() {
  if (ptr_ != nullptr) {
    BufferPool::Global().Release(ptr_, size_);
    ptr_ = nullptr;
    size_ = 0;
  }
}

}  // namespace rdd::memory
