#include "train/trainer.h"

#include "autograd/ops.h"
#include "memory/workspace.h"
#include "nn/metrics.h"
#include "nn/optimizer.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace rdd {

TrainReport TrainWithLoss(GraphModel* model, const Dataset& dataset,
                          const TrainConfig& config, const LossFn& loss_fn) {
  return TrainWithLoss(model, dataset, config, loss_fn, EvalHooks{});
}

TrainReport TrainWithLoss(GraphModel* model, const Dataset& dataset,
                          const TrainConfig& config, const LossFn& loss_fn,
                          const EvalHooks& hooks) {
  RDD_CHECK(model != nullptr);
  RDD_CHECK_GT(config.max_epochs, 0);
  RDD_CHECK_GT(config.patience, 0);
  RDD_CHECK_GE(hooks.eval_every, 1);
  WallTimer timer;
  // The epoch loop runs inside one Workspace so every tape, gradient, and
  // scratch buffer released in epoch e is recycled in epoch e+1. Nested
  // callers (TrainRdd, the ensemble baselines) hold an outer Workspace, so
  // the buffers also carry across students of one run.
  memory::Workspace workspace;
  Adam optimizer(model->Parameters(), config.lr, config.weight_decay);

  TrainReport report;
  report.val_history.reserve(static_cast<size_t>(config.max_epochs));
  std::vector<Matrix> best_params;
  int epochs_since_best = 0;
  // One span per epoch ("train/epoch", arg = epoch index) with the forward/
  // loss/backward/step and validation sub-phases nested inside — the
  // per-epoch cost accounting of the paper's Table 9. Spans only observe;
  // with tracing off each is one relaxed flag load (see observe/trace.h).
  static observe::Counter& epoch_counter =
      observe::MetricsRegistry::Global().counter("train.epochs");
  double last_val = 0.0;
  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    observe::TraceSpan epoch_span("train/epoch", epoch);
    epoch_counter.Add(1);
    ModelOutput output = model->Forward(/*training=*/true);
    Variable loss = loss_fn(output, epoch);
    {
      observe::TraceSpan span("train/backward_step");
      loss.Backward();
      optimizer.Step();
    }

    // With eval_every > 1 validation is amortized: skipped epochs carry the
    // last measurement forward and leave the patience counter untouched.
    const bool evaluate = epoch % hooks.eval_every == 0 ||
                          epoch + 1 == config.max_epochs;
    if (evaluate) {
      observe::TraceSpan span("train/validate");
      last_val = hooks.validate
                     ? hooks.validate(model)
                     : EvaluateAccuracy(model, dataset, dataset.split.val);
    }
    const double val_acc = last_val;
    report.val_history.push_back(val_acc);
    report.epochs_run = epoch + 1;
    if (config.verbose) {
      RDD_LOG(Info) << "epoch " << epoch << " loss "
                    << loss.value().At(0, 0) << " val_acc " << val_acc;
    }
    if (!evaluate) continue;
    if (val_acc > report.best_val_accuracy) {
      report.best_val_accuracy = val_acc;
      epochs_since_best = 0;
      if (config.restore_best) {
        const std::vector<Variable> params = model->Parameters();
        if (best_params.empty()) {
          best_params = SnapshotParameters(params);
        } else {
          // Refresh in place: Matrix copy-assignment reuses the snapshot's
          // pooled buffers, so improvements after the first allocate nothing.
          for (size_t i = 0; i < best_params.size(); ++i) {
            best_params[i] = params[i].value();
          }
        }
      }
    } else if (++epochs_since_best >= config.patience) {
      break;
    }
  }
  if (config.restore_best && !best_params.empty()) {
    // The snapshot is dead after this, so move the weights into place
    // instead of deep-copying them.
    std::vector<Variable> params = model->Parameters();
    RestoreParameters(std::move(best_params), &params);
  }
  report.test_accuracy =
      hooks.test ? hooks.test(model)
                 : EvaluateAccuracy(model, dataset, dataset.split.test);
  report.train_seconds = timer.ElapsedSeconds();
  return report;
}

TrainReport TrainSupervised(GraphModel* model, const Dataset& dataset,
                            const TrainConfig& config) {
  return TrainWithLoss(
      model, dataset, config,
      [&dataset](const ModelOutput& output, int /*epoch*/) {
        return ag::SoftmaxCrossEntropy(output.logits, dataset.labels,
                                       dataset.split.train,
                                       ag::Reduction::kMean);
      });
}

double EvaluateAccuracy(GraphModel* model, const Dataset& dataset,
                        const std::vector<int64_t>& indices) {
  const ModelOutput output = model->Forward(/*training=*/false);
  return Accuracy(output.logits.value(), dataset.labels, indices);
}

std::vector<Matrix> SnapshotParameters(const std::vector<Variable>& params) {
  std::vector<Matrix> snapshot;
  snapshot.reserve(params.size());
  for (const Variable& p : params) snapshot.push_back(p.value());
  return snapshot;
}

void RestoreParameters(const std::vector<Matrix>& snapshot,
                       std::vector<Variable>* params) {
  RDD_CHECK(params != nullptr);
  RDD_CHECK_EQ(snapshot.size(), params->size());
  for (size_t i = 0; i < snapshot.size(); ++i) {
    Matrix* value = (*params)[i].mutable_value();
    RDD_CHECK_EQ(value->rows(), snapshot[i].rows());
    RDD_CHECK_EQ(value->cols(), snapshot[i].cols());
    *value = snapshot[i];
  }
}

void RestoreParameters(std::vector<Matrix>&& snapshot,
                       std::vector<Variable>* params) {
  RDD_CHECK(params != nullptr);
  RDD_CHECK_EQ(snapshot.size(), params->size());
  for (size_t i = 0; i < snapshot.size(); ++i) {
    Matrix* value = (*params)[i].mutable_value();
    RDD_CHECK_EQ(value->rows(), snapshot[i].rows());
    RDD_CHECK_EQ(value->cols(), snapshot[i].cols());
    *value = std::move(snapshot[i]);
  }
  snapshot.clear();
}

}  // namespace rdd
