#include "train/minibatch.h"

#include <cstdlib>
#include <string>

#include "autograd/ops.h"
#include "memory/workspace.h"
#include "nn/metrics.h"
#include "nn/optimizer.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/timer.h"

namespace rdd {

namespace {

std::vector<int64_t> ParseFanouts(const char* value,
                                  std::vector<int64_t> fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  std::vector<int64_t> fanouts;
  std::string token;
  for (const char* p = value;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) {
        char* end = nullptr;
        const long parsed = std::strtol(token.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
          RDD_LOG(Warning) << "RDD_MB_FANOUT: unparsable entry '" << token
                           << "', using default fan-outs";
          return fallback;
        }
        fanouts.push_back(static_cast<int64_t>(parsed));
        token.clear();
      }
      if (*p == '\0') break;
    } else {
      token.push_back(*p);
    }
  }
  return fanouts.empty() ? fallback : fanouts;
}

/// View-local labeled target rows of `view` plus the gathered label vector:
/// everything the masked cross-entropy needs, computed once per batch.
struct ViewSupervision {
  std::vector<int64_t> labels;   ///< View-local, one per view row.
  std::vector<int64_t> indices;  ///< Labeled target rows (view-local ids).
};

ViewSupervision GatherSupervision(const GraphView& view,
                                  const Dataset& dataset,
                                  const std::vector<bool>& train_mask) {
  ViewSupervision sup;
  sup.labels = view.GatherInt64(dataset.labels);
  sup.indices.reserve(static_cast<size_t>(view.num_targets));
  for (int64_t i = 0; i < view.num_targets; ++i) {
    if (train_mask[static_cast<size_t>(view.GlobalId(i))]) {
      sup.indices.push_back(i);
    }
  }
  return sup;
}

}  // namespace

MiniBatchConfig MiniBatchConfig::FromEnv() {
  MiniBatchConfig config;
  config.batch_size = env::IntEnv("RDD_MB_BATCH",
                                  static_cast<int>(config.batch_size), 1,
                                  1 << 24);
  config.fanouts =
      ParseFanouts(std::getenv("RDD_MB_FANOUT"), config.fanouts);
  config.num_shards = env::IntEnv(
      "RDD_MB_SHARDS", static_cast<int>(config.num_shards), 0, 1 << 20);
  config.sampled_eval =
      env::BoolEnv("RDD_MB_SAMPLED_EVAL", config.sampled_eval);
  return config;
}

TrainReport TrainMiniBatchWithLoss(GraphModel* model, const Dataset& dataset,
                                   const TrainConfig& config,
                                   const MiniBatchConfig& mb_config,
                                   const BatchLossFn& loss_fn) {
  RDD_CHECK(model != nullptr);
  RDD_CHECK_GT(config.max_epochs, 0);
  RDD_CHECK_GT(config.patience, 0);
  RDD_CHECK(!mb_config.fanouts.empty());
  WallTimer timer;
  // The run-level Workspace keeps optimizer state and parameter snapshots
  // pooled; each batch below opens a nested Workspace so tape/gradient
  // buffers recycle batch-to-batch and the pool's high-water mark tracks the
  // largest VIEW, not the full graph.
  memory::Workspace run_workspace;
  Adam optimizer(model->Parameters(), config.lr, config.weight_decay);

  const NeighborSampler sampler(
      &dataset.graph, &dataset.features, dataset.num_classes,
      SamplerConfig{mb_config.fanouts, mb_config.sampler_seed});
  std::vector<int64_t> all_nodes;
  if (mb_config.batch_over_all_nodes) {
    all_nodes.resize(static_cast<size_t>(dataset.NumNodes()));
    for (int64_t i = 0; i < dataset.NumNodes(); ++i) {
      all_nodes[static_cast<size_t>(i)] = i;
    }
  }

  // Shard mode builds its fixed epoch sequence once; sampled mode re-plans
  // every epoch from the epoch-split stream.
  std::vector<GraphView> shards;
  if (mb_config.num_shards > 0) {
    PartitionConfig pconfig;
    pconfig.num_parts = mb_config.num_shards;
    pconfig.seed = mb_config.sampler_seed;
    const GraphPartition partition =
        PartitionByPropagatedFeatures(dataset.graph, dataset.features, pconfig);
    shards = MakeShardViews(dataset.graph, dataset.features,
                            dataset.num_classes, partition);
  }

  TrainReport report;
  report.val_history.reserve(static_cast<size_t>(config.max_epochs));
  std::vector<Matrix> best_params;
  int epochs_since_best = 0;
  static observe::Counter& epoch_counter =
      observe::MetricsRegistry::Global().counter("train.minibatch.epochs");
  static observe::Counter& batch_counter =
      observe::MetricsRegistry::Global().counter("train.minibatch.batches");
  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    observe::TraceSpan epoch_span("train/mb_epoch", epoch);
    epoch_counter.Add(1);
    double loss_value = 0.0;
    if (!shards.empty()) {
      for (const GraphView& view : shards) {
        observe::TraceSpan span("train/mb_batch");
        batch_counter.Add(1);
        memory::Workspace batch_workspace;
        ModelOutput output = model->Forward(view, /*training=*/true);
        Variable loss = loss_fn(view, output, epoch);
        loss_value = loss.value().At(0, 0);
        loss.Backward();
        optimizer.Step();
      }
    } else {
      const std::vector<std::vector<int64_t>> batches = sampler.PlanBatches(
          mb_config.batch_over_all_nodes ? all_nodes : dataset.split.train,
          mb_config.batch_size, epoch);
      for (const std::vector<int64_t>& batch : batches) {
        observe::TraceSpan span("train/mb_batch");
        batch_counter.Add(1);
        memory::Workspace batch_workspace;
        const GraphView view = sampler.SampleView(batch, epoch);
        ModelOutput output = model->Forward(view, /*training=*/true);
        Variable loss = loss_fn(view, output, epoch);
        loss_value = loss.value().At(0, 0);
        loss.Backward();
        optimizer.Step();
      }
    }

    double val_acc;
    {
      observe::TraceSpan span("train/mb_validate");
      val_acc = mb_config.sampled_eval
                    ? EvaluateAccuracySampled(model, dataset,
                                              dataset.split.val, mb_config)
                    : EvaluateAccuracy(model, dataset, dataset.split.val);
    }
    report.val_history.push_back(val_acc);
    report.epochs_run = epoch + 1;
    if (config.verbose) {
      RDD_LOG(Info) << "mb epoch " << epoch << " last_loss " << loss_value
                    << " val_acc " << val_acc;
    }
    if (val_acc > report.best_val_accuracy) {
      report.best_val_accuracy = val_acc;
      epochs_since_best = 0;
      if (config.restore_best) {
        const std::vector<Variable> params = model->Parameters();
        if (best_params.empty()) {
          best_params = SnapshotParameters(params);
        } else {
          for (size_t i = 0; i < best_params.size(); ++i) {
            best_params[i] = params[i].value();
          }
        }
      }
    } else if (++epochs_since_best >= config.patience) {
      break;
    }
  }
  if (config.restore_best && !best_params.empty()) {
    std::vector<Variable> params = model->Parameters();
    RestoreParameters(std::move(best_params), &params);
  }
  report.test_accuracy =
      mb_config.sampled_eval
          ? EvaluateAccuracySampled(model, dataset, dataset.split.test,
                                    mb_config)
          : EvaluateAccuracy(model, dataset, dataset.split.test);
  report.train_seconds = timer.ElapsedSeconds();
  return report;
}

TrainReport TrainMiniBatchSupervised(GraphModel* model, const Dataset& dataset,
                                     const TrainConfig& config,
                                     const MiniBatchConfig& mb_config) {
  const std::vector<bool> train_mask = dataset.TrainMask();
  return TrainMiniBatchWithLoss(
      model, dataset, config, mb_config,
      [&dataset, &train_mask](const GraphView& view, const ModelOutput& output,
                              int /*epoch*/) {
        const ViewSupervision sup =
            GatherSupervision(view, dataset, train_mask);
        return ag::SoftmaxCrossEntropy(output.logits, sup.labels, sup.indices,
                                       ag::Reduction::kMean);
      });
}

double EvaluateAccuracySampled(GraphModel* model, const Dataset& dataset,
                               const std::vector<int64_t>& indices,
                               const MiniBatchConfig& mb_config) {
  if (indices.empty()) return 0.0;
  RDD_CHECK(model != nullptr);
  RDD_CHECK_GT(mb_config.eval_batch_size, 0);
  const NeighborSampler sampler(
      &dataset.graph, &dataset.features, dataset.num_classes,
      SamplerConfig{mb_config.fanouts, mb_config.sampler_seed});
  const int64_t hops = static_cast<int64_t>(mb_config.fanouts.size());
  const int64_t n = static_cast<int64_t>(indices.size());
  int64_t correct = 0;
  for (int64_t begin = 0; begin < n; begin += mb_config.eval_batch_size) {
    const int64_t end = std::min(n, begin + mb_config.eval_batch_size);
    const std::vector<int64_t> targets(indices.begin() + begin,
                                       indices.begin() + end);
    memory::Workspace batch_workspace;
    const GraphView view = sampler.InferenceView(targets, hops);
    const std::vector<int64_t> predicted = model->PredictLabels(view);
    for (int64_t i = 0; i < view.num_targets; ++i) {
      if (predicted[static_cast<size_t>(i)] ==
          dataset.labels[static_cast<size_t>(view.GlobalId(i))]) {
        ++correct;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace rdd
