#ifndef RDD_TRAIN_TRAINER_H_
#define RDD_TRAIN_TRAINER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "autograd/variable.h"
#include "data/dataset.h"
#include "models/graph_model.h"

namespace rdd {

/// Optimization settings shared by every trainer in the library. Defaults
/// follow the paper's setup (Sec. 5.1): Adam, lr 0.01, weight decay 5e-4,
/// early stopping when validation accuracy fails to improve for 20 epochs.
struct TrainConfig {
  int max_epochs = 300;
  int patience = 20;
  float lr = 0.01f;
  float weight_decay = 5e-4f;
  bool restore_best = true;  ///< Reload best-validation weights at the end.
  bool verbose = false;      ///< Log per-epoch progress.
};

/// Outcome of one model's training run.
struct TrainReport {
  double best_val_accuracy = 0.0;
  double test_accuracy = 0.0;
  int epochs_run = 0;
  double train_seconds = 0.0;
  std::vector<double> val_history;  ///< Validation accuracy per epoch.
};

/// Builds the loss for one epoch. Receives the training-mode forward output
/// and the epoch index; returns a 1x1 scalar Variable. This hook is how the
/// RDD trainer injects its reliability-driven loss into the shared
/// early-stopping loop.
using LossFn = std::function<Variable(const ModelOutput&, int epoch)>;

/// Caller-supplied evaluation overrides for TrainWithLoss. The condensed
/// training driver uses these to train on a condensed graph while early
/// stopping (and reporting) against the FULL graph's val/test splits; the
/// defaults reproduce the classic behavior exactly.
struct EvalHooks {
  /// Validation metric driving early stopping and best-weight selection.
  /// Defaults to accuracy over `dataset.split.val`.
  std::function<double(GraphModel*)> validate;
  /// Final test metric written to TrainReport::test_accuracy. Defaults to
  /// accuracy over `dataset.split.test`.
  std::function<double(GraphModel*)> test;
  /// Run `validate` only on epochs where epoch % eval_every == 0 (plus the
  /// final epoch). Skipped epochs carry the last measured value forward in
  /// val_history and do not advance the patience counter, so `patience`
  /// counts EVALUATIONS when eval_every > 1. Used when one validation
  /// forward costs more than a training epoch (condensed training).
  int eval_every = 1;
};

/// Trains `model` with Adam + early stopping on validation accuracy using a
/// caller-supplied loss. Restores the best-validation parameters before
/// returning when config.restore_best is set.
///
/// Contract: for a fixed (model seed, dataset, config, loss_fn) the epoch
/// sequence — losses, parameter updates, val_history, stopping epoch — is
/// deterministic and bit-identical across thread counts and kernel
/// backends. Observability: each epoch increments the "train.epochs"
/// counter and, when tracing, emits a "train/epoch" span (arg = epoch
/// index) nesting "train/backward_step" and "train/validate" — the
/// per-epoch cost breakdown behind the paper's Table 9 timing analysis.
TrainReport TrainWithLoss(GraphModel* model, const Dataset& dataset,
                          const TrainConfig& config, const LossFn& loss_fn);

/// As above with evaluation overrides. Passing a default-constructed
/// EvalHooks is bit-identical to the four-argument overload.
TrainReport TrainWithLoss(GraphModel* model, const Dataset& dataset,
                          const TrainConfig& config, const LossFn& loss_fn,
                          const EvalHooks& hooks);

/// Standard supervised training: masked softmax cross-entropy over the
/// labeled nodes (Eq. 3 of the paper).
TrainReport TrainSupervised(GraphModel* model, const Dataset& dataset,
                            const TrainConfig& config);

/// Evaluation-mode accuracy of `model` over the given node set.
double EvaluateAccuracy(GraphModel* model, const Dataset& dataset,
                        const std::vector<int64_t>& indices);

/// Copies the current parameter values of `params`.
std::vector<Matrix> SnapshotParameters(const std::vector<Variable>& params);

/// Writes `snapshot` back into `params` (shapes must match).
void RestoreParameters(const std::vector<Matrix>& snapshot,
                       std::vector<Variable>* params);

/// As above but consumes the snapshot, moving each weight matrix into place
/// — the restore-best path uses this since the snapshot is dead afterwards.
void RestoreParameters(std::vector<Matrix>&& snapshot,
                       std::vector<Variable>* params);

}  // namespace rdd

#endif  // RDD_TRAIN_TRAINER_H_
