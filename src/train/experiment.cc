#include "train/experiment.h"

#include <algorithm>
#include <cmath>

#include "parallel/task_group.h"
#include "util/logging.h"

namespace rdd {

TrialStats Summarize(const std::vector<double>& values) {
  TrialStats stats;
  stats.count = static_cast<int64_t>(values.size());
  if (values.empty()) return stats;
  double sum = 0.0;
  stats.min = values[0];
  stats.max = values[0];
  for (double v : values) {
    sum += v;
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
  }
  stats.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - stats.mean) * (v - stats.mean);
  stats.stddev = values.size() > 1
                     ? std::sqrt(sq / static_cast<double>(values.size() - 1))
                     : 0.0;
  return stats;
}

TrialStats RunTrials(int num_trials,
                     const std::function<double(int)>& trial) {
  RDD_CHECK_GT(num_trials, 0);
  std::vector<double> values;
  values.reserve(static_cast<size_t>(num_trials));
  for (int i = 0; i < num_trials; ++i) values.push_back(trial(i));
  return Summarize(values);
}

TrialStats RunTrialsParallel(int num_trials,
                             const std::function<double(int)>& trial) {
  RDD_CHECK_GT(num_trials, 0);
  // Each trial writes its own slot; Summarize then reads the slots in trial
  // order, so aggregation order matches the sequential version exactly.
  std::vector<double> values(static_cast<size_t>(num_trials), 0.0);
  parallel::ParallelTasks(num_trials, [&](int64_t i) {
    values[static_cast<size_t>(i)] = trial(static_cast<int>(i));
  });
  return Summarize(values);
}

}  // namespace rdd
