#ifndef RDD_TRAIN_EXPERIMENT_H_
#define RDD_TRAIN_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace rdd {

/// Mean / standard deviation / extrema of a set of trial results. The
/// paper reports the mean test accuracy over 10 runs (Tables 3-5); the
/// bench harnesses use this type for the same aggregation.
struct TrialStats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  int64_t count = 0;
};

/// Aggregates raw trial values.
TrialStats Summarize(const std::vector<double>& values);

/// Runs `trial` `num_trials` times with trial indices 0..n-1 (each trial
/// derives its own seed from the index) and summarizes the returned metric.
TrialStats RunTrials(int num_trials,
                     const std::function<double(int trial_index)>& trial);

/// Like RunTrials, but independent trials run concurrently in a task arena
/// (parallel/task_group.h) when thread budget allows. The trial callback is
/// invoked from multiple threads, so it must derive all randomness from its
/// trial index and touch no unsynchronized shared state. Results are
/// summarized in trial-index order, so the returned stats are bit-identical
/// to RunTrials for any such callback at any thread count. Observability
/// instruments (src/observe) are safe to touch from trial callbacks —
/// counters and spans are designed for exactly this concurrency.
TrialStats RunTrialsParallel(
    int num_trials, const std::function<double(int trial_index)>& trial);

}  // namespace rdd

#endif  // RDD_TRAIN_EXPERIMENT_H_
