#ifndef RDD_TRAIN_MINIBATCH_H_
#define RDD_TRAIN_MINIBATCH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "data/dataset.h"
#include "graph/graph_view.h"
#include "graph/partition.h"
#include "graph/sampler.h"
#include "models/graph_model.h"
#include "train/trainer.h"

namespace rdd {

/// How mini-batch training slices the graph.
struct MiniBatchConfig {
  /// Target nodes per sampled batch.
  int64_t batch_size = 256;
  /// Per-hop neighbor fan-outs (see SamplerConfig); length = receptive
  /// depth. Ignored in shard mode.
  std::vector<int64_t> fanouts = {10, 10};
  /// > 0 switches from per-batch neighbor sampling to shard-by-shard
  /// training over a propagated-feature partition with this many parts.
  int64_t num_shards = 0;
  /// Evaluate through fixed inference views instead of one full-graph
  /// forward. Required at web scale, where a full forward would defeat the
  /// bounded-memory point of mini-batching; off by default so small-graph
  /// runs early-stop on exactly the classic full-batch metric.
  bool sampled_eval = false;
  int64_t eval_batch_size = 1024;
  /// Base seed of the sampling/partition stream tree (split, never shared,
  /// with the model's own rng).
  uint64_t sampler_seed = 0x5eedULL;
  /// Draw batch targets from every node instead of just the labeled
  /// training set. Losses that act on unlabeled nodes (RDD's distillation
  /// and edge terms) need their targets to actually appear as batch target
  /// rows; plain supervised training leaves this off so an epoch is one
  /// sweep over the labeled nodes.
  bool batch_over_all_nodes = false;

  /// Applies RDD_MB_BATCH / RDD_MB_FANOUT (comma list, e.g. "10,10") /
  /// RDD_MB_SHARDS / RDD_MB_SAMPLED_EVAL on top of the defaults.
  static MiniBatchConfig FromEnv();
};

/// Builds the loss for one batch: receives the batch view, the
/// training-mode forward output over that view, and the epoch index.
/// Row indices in the output are VIEW-LOCAL; map back with view.GlobalId().
using BatchLossFn = std::function<Variable(
    const GraphView& view, const ModelOutput& output, int epoch)>;

/// Mini-batch analogue of TrainWithLoss: per epoch, the training targets
/// are deterministically re-batched (or the shard sequence replayed), and
/// each batch runs forward/loss/backward/step over its own induced view
/// inside one Workspace, so peak memory is bounded by the largest batch
/// view, never the full graph's activations. Early stopping, best-weight
/// restore, and reporting follow TrainWithLoss.
///
/// Contract: for fixed (model seed, dataset, configs, loss_fn) the whole
/// run — batch composition, sampled frontiers, losses, parameter updates —
/// is bit-identical at any thread count, SIMD backend, and pool mode.
TrainReport TrainMiniBatchWithLoss(GraphModel* model, const Dataset& dataset,
                                   const TrainConfig& config,
                                   const MiniBatchConfig& mb_config,
                                   const BatchLossFn& loss_fn);

/// Supervised mini-batch training: per-batch masked softmax cross-entropy
/// over each view's labeled target rows.
TrainReport TrainMiniBatchSupervised(GraphModel* model, const Dataset& dataset,
                                     const TrainConfig& config,
                                     const MiniBatchConfig& mb_config);

/// Accuracy over `indices` computed through fixed full-neighborhood
/// inference views of depth mb_config.fanouts.size(), eval_batch_size
/// targets at a time — never materializes a full-graph activation.
double EvaluateAccuracySampled(GraphModel* model, const Dataset& dataset,
                               const std::vector<int64_t>& indices,
                               const MiniBatchConfig& mb_config);

}  // namespace rdd

#endif  // RDD_TRAIN_MINIBATCH_H_
