#include "observe/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

namespace rdd::observe {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

/// One completed span. `name` must outlive the trace (string literals at
/// every call site).
struct Event {
  const char* name;
  int64_t arg;
  uint64_t start_ns;
  uint64_t dur_ns;
};

/// Per-thread span buffer. The owning thread appends under `mu` (always
/// uncontended except during a flush); StopTracing reads every buffer under
/// the same lock, which is what makes concurrent TaskGroup workers'
/// spans safe to collect (TSan-verified in tests/observe_test.cc).
struct ThreadLog {
  std::mutex mu;
  std::vector<Event> events;
  uint64_t tid = 0;
};

struct TraceState {
  std::mutex mu;
  std::string path;
  bool active = false;
  uint64_t start_ns = 0;
  /// All thread logs ever registered; leaked with the state so a worker
  /// thread's buffer stays valid however late it records.
  std::vector<ThreadLog*> logs;
  uint64_t next_tid = 1;
};

TraceState& State() {
  static TraceState* state = new TraceState();
  return *state;
}

uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ThreadLog& LocalLog() {
  thread_local ThreadLog* t_log = [] {
    auto* log = new ThreadLog();  // Leaked with the state's registry.
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    log->tid = state.next_tid++;
    state.logs.push_back(log);
    return log;
  }();
  return *t_log;
}

void FlushAtExit() { StopTracing(); }

/// Resolves RDD_TRACE=<path> once at program start, before main() can open
/// any span, and arranges the end-of-process flush.
struct EnvTraceInit {
  EnvTraceInit() {
    const char* path = std::getenv("RDD_TRACE");
    if (path != nullptr && *path != '\0') {
      if (StartTracing(path)) std::atexit(FlushAtExit);
    }
  }
};
EnvTraceInit g_env_trace_init;

}  // namespace

namespace internal {

uint64_t TraceNowNanos() { return SteadyNowNanos(); }

void RecordSpan(const char* name, int64_t arg, uint64_t start_ns,
                uint64_t end_ns) {
  ThreadLog& log = LocalLog();
  std::lock_guard<std::mutex> lock(log.mu);
  // Re-check under the buffer lock: a span that closes after StopTracing
  // began collecting must not append to a buffer being (or already) read.
  if (!g_trace_enabled.load(std::memory_order_relaxed)) return;
  log.events.push_back({name, arg, start_ns, end_ns - start_ns});
}

}  // namespace internal

bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

bool StartTracing(const std::string& path) {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.active) return false;
  for (ThreadLog* log : state.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    log->events.clear();
  }
  state.path = path;
  state.start_ns = SteadyNowNanos();
  state.active = true;
  internal::g_trace_enabled.store(true, std::memory_order_relaxed);
  return true;
}

bool StopTracing() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.active) return false;
  internal::g_trace_enabled.store(false, std::memory_order_relaxed);
  state.active = false;

  std::FILE* f = std::fopen(state.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write trace to %s\n",
                 state.path.c_str());
    return false;
  }
  std::fputs("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [", f);
  bool first = true;
  for (ThreadLog* log : state.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    for (const Event& e : log->events) {
      // Chrome trace "complete" (ph:X) events; ts/dur in fractional
      // microseconds relative to the trace start. Same-thread nesting is
      // inferred by the viewer from ts/dur containment.
      std::fprintf(
          f, "%s\n{\"name\": \"%s\", \"cat\": \"rdd\", \"ph\": \"X\", "
          "\"pid\": 1, \"tid\": %llu, \"ts\": %.3f, \"dur\": %.3f, "
          "\"args\": {\"i\": %lld}}",
          first ? "" : ",", e.name,
          static_cast<unsigned long long>(log->tid),
          static_cast<double>(e.start_ns - state.start_ns) / 1e3,
          static_cast<double>(e.dur_ns) / 1e3,
          static_cast<long long>(e.arg));
      first = false;
    }
    log->events.clear();
  }
  std::fputs("\n]}\n", f);
  std::fclose(f);
  return true;
}

}  // namespace rdd::observe
