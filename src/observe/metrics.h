#ifndef RDD_OBSERVE_METRICS_H_
#define RDD_OBSERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rdd::observe {

/// True when metrics collection is on: RDD_METRICS=1 in the environment at
/// first use, or SetMetricsEnabled(true) at runtime. When off, every
/// Counter/Gauge/Histogram mutation is a relaxed flag load plus an untaken
/// branch — near-zero cost — and collection produces no events at all.
/// Observability never changes any numeric result either way: instruments
/// only *read* the computation, so enabled and disabled runs are
/// bit-identical (pinned by tests/observe_test.cc on a full TrainRdd run).
bool MetricsEnabled();

/// Runtime override of RDD_METRICS; used by tests and benchmarks to compare
/// instrumented vs uninstrumented runs inside one process.
void SetMetricsEnabled(bool enabled);

/// Monotonic event counter. Mutation is one relaxed fetch_add on the fast
/// path; reads are racy-by-design snapshots (exact once writers quiesce).
class Counter {
 public:
  /// Adds `delta` when metrics are enabled; no-op otherwise.
  void Add(uint64_t delta = 1) {
    if (MetricsEnabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value with an optional running maximum.
class Gauge {
 public:
  /// Records `v` (and folds it into the running maximum) when enabled.
  void Set(int64_t v) {
    if (!MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
    UpdateMax(v);
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max_value() const { return max_.load(std::memory_order_relaxed); }
  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void UpdateMax(int64_t v) {
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Histogram over uint64 samples (durations in ns, sizes, depths) with
/// FIXED log-spaced buckets: bucket i counts samples in [2^i, 2^(i+1))
/// (sample 0 lands in bucket 0). The bucket array is a fixed member — no
/// heap allocation ever — and Record() is a handful of relaxed atomic adds,
/// so the histogram is safe from any thread with no locking.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  /// Records one sample when metrics are enabled; no-op otherwise.
  void Record(uint64_t sample) {
    if (!MetricsEnabled()) return;
    buckets_[BucketIndex(sample)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
  }

  /// floor(log2(sample)) clamped to [0, kNumBuckets); 0 maps to bucket 0.
  static int BucketIndex(uint64_t sample) {
    if (sample == 0) return 0;
    return 63 - __builtin_clzll(sample);
  }

  /// Inclusive lower bound of bucket i (2^i; bucket 0 also holds sample 0).
  static uint64_t BucketLowerBound(int i) { return uint64_t{1} << i; }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// One instrument's value at snapshot time.
struct MetricValue {
  std::string name;
  int64_t value = 0;
  int64_t max_value = 0;  ///< Gauges only; 0 for counters/callbacks.
};

/// One histogram's state at snapshot time. Only non-empty buckets are
/// materialized.
struct HistogramValue {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  /// (inclusive lower bound, sample count) per non-empty bucket, ascending.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
};

/// Point-in-time export of every registered instrument, the struct the
/// bench binaries serialize onto their --json reports. Values are relaxed
/// reads: exact when writers have quiesced, approximate mid-flight.
struct MetricsSnapshot {
  std::vector<MetricValue> counters;
  std::vector<MetricValue> gauges;     ///< Includes callback gauges.
  std::vector<HistogramValue> histograms;
};

/// Process-wide instrument registry. Registration (first use of a name)
/// takes a mutex and may allocate; after that the returned reference is a
/// plain object whose mutations are lock-free and allocation-free — the
/// steady-state contract the training hot paths rely on. Instruments live
/// forever (the registry is leaked like the other process singletons), so
/// holding `static Counter& c = ...Global().counter("x")` at a call site is
/// always safe.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the instrument registered under `name`, creating it on first
  /// use. Names must be static-shaped strings without quotes/backslashes
  /// (they are emitted into JSON verbatim).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Registers a pull-style gauge evaluated at snapshot time — how
  /// subsystems with their own internal accounting (BufferPool, ThreadPool
  /// queue depth) surface state without double-counting. `fn` must be
  /// callable from any thread for the life of the process. Re-registering a
  /// name replaces the callback.
  void RegisterCallbackGauge(const std::string& name,
                             std::function<int64_t()> fn);

  /// Reads every instrument. Safe to call while writers are active.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every counter/gauge/histogram (callback gauges are unaffected —
  /// they mirror live subsystem state). For tests and benchmark reruns.
  void ResetAll();

 private:
  MetricsRegistry() = default;
  ~MetricsRegistry() = default;

  struct Impl;
  Impl& impl() const;
};

/// Serializes a snapshot as one JSON object:
///   {"counters": {...}, "gauges": {...}, "histograms": {...}}
/// Gauges with a nonzero running max emit "<name>.max" alongside the value.
std::string SnapshotToJson(const MetricsSnapshot& snapshot);

}  // namespace rdd::observe

#endif  // RDD_OBSERVE_METRICS_H_
