#include "observe/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "util/env.h"

namespace rdd::observe {

namespace {

bool MetricsEnabledByEnv() { return env::BoolEnv("RDD_METRICS", false); }

std::atomic<bool>& MetricsFlag() {
  static std::atomic<bool> enabled{MetricsEnabledByEnv()};
  return enabled;
}

std::string FormatInt(int64_t v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(v));
  return buffer;
}

std::string FormatUint(uint64_t v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%llu",
                static_cast<unsigned long long>(v));
  return buffer;
}

}  // namespace

bool MetricsEnabled() {
  return MetricsFlag().load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  MetricsFlag().store(enabled, std::memory_order_relaxed);
}

/// Instruments live in deques so registration never moves an existing
/// object: the references handed to call sites stay valid forever. The
/// name maps carry insertion indices so snapshots list instruments in
/// registration order (stable across runs, since registration order is
/// code-path order).
struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> histogram_names;
  std::unordered_map<std::string, size_t> counter_index;
  std::unordered_map<std::string, size_t> gauge_index;
  std::unordered_map<std::string, size_t> histogram_index;
  std::vector<std::pair<std::string, std::function<int64_t()>>> callbacks;
};

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked like BufferPool/ThreadPool: instruments registered from static
  // initializers and released-at-exit subsystems must stay valid for the
  // whole process lifetime.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto [it, inserted] = i.counter_index.emplace(name, i.counters.size());
  if (inserted) {
    i.counters.emplace_back();
    i.counter_names.push_back(name);
  }
  return i.counters[it->second];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto [it, inserted] = i.gauge_index.emplace(name, i.gauges.size());
  if (inserted) {
    i.gauges.emplace_back();
    i.gauge_names.push_back(name);
  }
  return i.gauges[it->second];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto [it, inserted] = i.histogram_index.emplace(name, i.histograms.size());
  if (inserted) {
    i.histograms.emplace_back();
    i.histogram_names.push_back(name);
  }
  return i.histograms[it->second];
}

void MetricsRegistry::RegisterCallbackGauge(const std::string& name,
                                            std::function<int64_t()> fn) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  for (auto& [existing, callback] : i.callbacks) {
    if (existing == name) {
      callback = std::move(fn);
      return;
    }
  }
  i.callbacks.emplace_back(name, std::move(fn));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  Impl& i = impl();
  MetricsSnapshot snapshot;
  // Callbacks are copied out and evaluated OUTSIDE the registry lock: a
  // callback reads its subsystem's own state (e.g. the thread pool queue
  // under the pool mutex) and must never do so while holding ours.
  std::vector<std::pair<std::string, std::function<int64_t()>>> callbacks;
  {
    std::lock_guard<std::mutex> lock(i.mu);
    for (size_t c = 0; c < i.counters.size(); ++c) {
      snapshot.counters.push_back(
          {i.counter_names[c], static_cast<int64_t>(i.counters[c].value()),
           0});
    }
    for (size_t g = 0; g < i.gauges.size(); ++g) {
      snapshot.gauges.push_back({i.gauge_names[g], i.gauges[g].value(),
                                 i.gauges[g].max_value()});
    }
    for (size_t h = 0; h < i.histograms.size(); ++h) {
      const Histogram& hist = i.histograms[h];
      HistogramValue value;
      value.name = i.histogram_names[h];
      value.count = hist.count();
      value.sum = hist.sum();
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        const uint64_t n = hist.bucket_count(b);
        if (n > 0) value.buckets.emplace_back(Histogram::BucketLowerBound(b), n);
      }
      snapshot.histograms.push_back(std::move(value));
    }
    callbacks = i.callbacks;
  }
  for (const auto& [name, fn] : callbacks) {
    snapshot.gauges.push_back({name, fn(), 0});
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  for (Counter& c : i.counters) c.Reset();
  for (Gauge& g : i.gauges) g.Reset();
  for (Histogram& h : i.histograms) h.Reset();
}

std::string SnapshotToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n";
  out += "    \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n      \"" + snapshot.counters[i].name +
           "\": " + FormatInt(snapshot.counters[i].value);
  }
  out += snapshot.counters.empty() ? "},\n" : "\n    },\n";
  out += "    \"gauges\": {";
  bool first = true;
  for (const MetricValue& g : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\n      \"" + g.name + "\": " + FormatInt(g.value);
    if (g.max_value != 0) {
      out += ",\n      \"" + g.name + ".max\": " + FormatInt(g.max_value);
    }
  }
  out += first ? "},\n" : "\n    },\n";
  out += "    \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramValue& h = snapshot.histograms[i];
    if (i > 0) out += ",";
    out += "\n      \"" + h.name + "\": {\"count\": " + FormatUint(h.count) +
           ", \"sum\": " + FormatUint(h.sum) + ", \"buckets\": [";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += "[" + FormatUint(h.buckets[b].first) + ", " +
             FormatUint(h.buckets[b].second) + "]";
    }
    out += "]}";
  }
  out += snapshot.histograms.empty() ? "}\n" : "\n    }\n";
  out += "  }";
  return out;
}

}  // namespace rdd::observe
