#ifndef RDD_OBSERVE_TRACE_H_
#define RDD_OBSERVE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace rdd::observe {

/// True while a trace is being collected: RDD_TRACE=<path> in the
/// environment at first use (the trace is written to <path> at process
/// exit), or between StartTracing()/StopTracing() calls at runtime. Like
/// metrics (metrics.h), tracing only *observes* the computation — enabled
/// and disabled runs are bit-identical — and a disabled TraceSpan costs one
/// relaxed flag load.
bool TraceEnabled();

/// Begins collecting spans, to be written to `path` as a chrome://tracing /
/// Perfetto-compatible JSON timeline. Returns false (leaving tracing off)
/// when a trace is already active. Buffers from a previous trace are
/// discarded.
bool StartTracing(const std::string& path);

/// Stops collecting, writes the JSON timeline, and returns true on a
/// successful write. No-op returning false when tracing is not active.
/// Spans still open on other threads when StopTracing is called are dropped
/// (only completed spans are emitted), so callers should quiesce workers —
/// i.e. return from every TaskGroup::Wait / ParallelFor — first; the
/// process-exit flush runs after main() where that is always true.
bool StopTracing();

/// Internal plumbing for TraceSpan; see the class below for the API.
namespace internal {
extern std::atomic<bool> g_trace_enabled;
uint64_t TraceNowNanos();
void RecordSpan(const char* name, int64_t arg, uint64_t start_ns,
                uint64_t end_ns);
}  // namespace internal

/// RAII scoped span: names the region between construction and destruction
/// on the calling thread. Spans nest naturally — a span opened inside
/// another's scope (same thread) renders nested in the timeline, and spans
/// on concurrent TaskGroup/ParallelFor workers land on their own thread
/// tracks. `name` must be a string literal (or otherwise outlive the
/// trace); `arg` is an optional small integer (epoch index, student index)
/// shown in the viewer's args panel as "i".
///
/// Cost model: disabled (the common case) is one relaxed load and an
/// untaken branch — no clock read, no stores. Enabled is two steady_clock
/// reads plus one buffered event append on a per-thread buffer.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, int64_t arg = 0)
      : name_(name), arg_(arg) {
    if (internal::g_trace_enabled.load(std::memory_order_relaxed)) {
      start_ns_ = internal::TraceNowNanos();
      active_ = true;
    }
  }

  ~TraceSpan() {
    if (active_) {
      internal::RecordSpan(name_, arg_, start_ns_, internal::TraceNowNanos());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  int64_t arg_;
  uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace rdd::observe

#endif  // RDD_OBSERVE_TRACE_H_
