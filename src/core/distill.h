#ifndef RDD_CORE_DISTILL_H_
#define RDD_CORE_DISTILL_H_

#include <cstdint>
#include <memory>

#include "core/reliability.h"
#include "core/teacher.h"
#include "data/dataset.h"
#include "models/graph_model.h"
#include "models/mlp_student.h"
#include "train/trainer.h"

namespace rdd {

/// Configuration of reliable GNN-to-MLP distillation (ROADMAP item 2). The
/// trained RDD teacher's soft labels supervise a graph-blind MlpStudent;
/// each soft target is weighted by the knowledge-reliability score
/// w_i = 1 - H(p_i) / log K, so confidently-taught nodes dominate and
/// near-uniform teacher rows contribute almost nothing.
struct DistillConfig {
  /// Student architecture. A graph-blind student needs capacity headroom
  /// over the 16-unit GCN teacher to absorb what message passing gave the
  /// teacher for free, hence the much wider default (the "GLNN-wide"
  /// observation).
  int64_t num_layers = 2;
  int64_t hidden_dim = 128;
  float dropout = 0.2f;
  /// Weight of the soft-label mimic term relative to the supervised
  /// cross-entropy on labeled nodes. Mimicking the teacher on every
  /// unlabeled node is the dominant signal, so it outweighs the handful of
  /// labeled nodes by default.
  float lambda = 5.0f;
  /// When false, every distillation target gets weight 1 (plain GLNN-style
  /// distillation) — the ablation baseline.
  bool use_reliability_weights = true;
  /// Per-epoch Algorithm 1 selection of which nodes are distilled. Unlike
  /// the ensemble trainer's default (p = 40, agreement required), the
  /// distillation default covers every node: the continuous reliability
  /// weight w_i already suppresses unreliable teacher rows, and a hard cut
  /// on top of it would both starve the student of coverage and drop the
  /// disagreeing nodes it most needs correcting on.
  NodeReliabilityConfig reliability{.p_percent = 100.0,
                                    .require_agreement = false};
  /// MLP students tolerate far less weight decay than the GCN default and
  /// benefit from a longer early-stopping fuse.
  TrainConfig train{.max_epochs = 500, .patience = 50, .weight_decay = 1e-5f};
};

/// Outcome of one distillation run.
struct DistillResult {
  /// The trained student. shared_ptr keeps DistillResult copyable.
  std::shared_ptr<MlpStudent> student;
  TrainReport report;
  double student_test_accuracy = 0.0;
  double teacher_test_accuracy = 0.0;
  /// Fraction of test nodes where student and teacher argmax agree — the
  /// fidelity metric distillation papers report alongside accuracy.
  double test_agreement = 0.0;
};

/// Distills `teacher` (a trained RDD ensemble) into an MlpStudent over
/// `context`. Loss per epoch: CE(labels) on the training split plus
/// config.lambda times the reliability-weighted soft cross-entropy against
/// the teacher's probabilities on the epoch's Algorithm-1 distill set
/// (falling back to every node when that set is empty). Deterministic for a
/// fixed (dataset, context, teacher, config, seed).
DistillResult DistillToMlp(const Dataset& dataset, const GraphContext& context,
                           const Teacher& teacher, const DistillConfig& config,
                           uint64_t seed);

}  // namespace rdd

#endif  // RDD_CORE_DISTILL_H_
