#include "core/condensed_trainer.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "autograd/ops.h"
#include "core/schedule.h"
#include "graph/pagerank.h"
#include "memory/workspace.h"
#include "nn/metrics.h"
#include "observe/trace.h"
#include "parallel/task_group.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace rdd {

namespace {

std::vector<bool> AllReliable(int64_t n) {
  return std::vector<bool>(static_cast<size_t>(n), true);
}

std::vector<int64_t> AllNodes(int64_t n) {
  std::vector<int64_t> nodes(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) nodes[static_cast<size_t>(i)] = i;
  return nodes;
}

std::vector<std::pair<int64_t, int64_t>> AllEdges(const Graph& graph) {
  std::vector<std::pair<int64_t, int64_t>> edges;
  edges.reserve(static_cast<size_t>(graph.num_edges()));
  for (const Edge& e : graph.edges()) edges.emplace_back(e.u, e.v);
  return edges;
}

}  // namespace

CondensedRddResult TrainRddCondensed(
    const Dataset& dataset, const GraphContext& context,
    const RddConfig& config, const condense::CondenseConfig& condense_config,
    uint64_t seed) {
  CondensedRddResult out;
  if (condense_config.method == condense::Method::kOff) {
    // The RDD_CONDENSE=0 contract: no condensation anywhere near the run.
    out.rdd = TrainRdd(dataset, context, config, seed);
    return out;
  }
  RDD_CHECK_GT(config.num_base_models, 0);
  WallTimer timer;
  memory::Workspace workspace;

  WallTimer condense_timer;
  const condense::CondensedGraph condensed =
      condense::CondenseGraph(dataset, condense_config);
  const Dataset& small = condensed.dataset;
  const GraphContext small_context = GraphContext::FromDataset(small);
  out.condensed = true;
  out.condensed_nodes = small.NumNodes();
  out.condensed_edges = small.graph.num_edges();
  out.achieved_ratio = condensed.achieved_ratio;
  out.condense_seconds = condense_timer.ElapsedSeconds();

  Rng seeder(seed);
  std::vector<uint64_t> student_seeds(
      static_cast<size_t>(config.num_base_models));
  for (uint64_t& s : student_seeds) s = seeder.NextU64();
  RddResult& result = out.rdd;

  // Full-graph machinery for evaluation and ensemble weighting: the
  // identity view every student forwards over when it leaves the condensed
  // graph, and the PageRank behind Eq. 12.
  const GraphView full_view = context.FullView();
  const std::vector<double> pagerank = PageRank(dataset.graph);

  // Condensed-graph machinery for training: Algorithms 1-3 run over the
  // synthetic nodes and edges exactly as TrainRdd runs them over the full
  // graph, with the loss normalizers following the condensed sizes.
  const std::vector<bool> train_mask = small.TrainMask();
  const std::vector<int64_t> all_nodes = AllNodes(small.NumNodes());
  const bool use_l2 = config.gamma_initial != 0.0f;
  const bool use_lreg = config.beta != 0.0f;
  const float k = static_cast<float>(context.num_classes);
  const float train_size =
      static_cast<float>(std::max<size_t>(small.split.train.size(), 1));
  const float l2_normalizer = train_size * k;
  const float lreg_normalizer =
      static_cast<float>(std::max<int64_t>(1, small.graph.num_edges())) * k;

  // Early stopping watches the FULL graph's validation split; the final
  // report column is the full test split. One full-graph forward per
  // eval_every condensed epochs is the entire full-size cost of a student.
  // Patience counts EVALUATIONS (see EvalHooks), so it is rescaled to keep
  // the stagnation window in EPOCHS equal to the caller's config — without
  // this, eval_every = 5 would quietly 5x the window and burn the epochs the
  // condensation just saved.
  TrainConfig train_config = config.train;
  train_config.patience = std::max(
      1, config.train.patience / std::max(1, condense_config.eval_every));
  EvalHooks hooks;
  hooks.eval_every = condense_config.eval_every;
  hooks.validate = [&](GraphModel* model) {
    const ModelOutput output = model->Forward(full_view, /*training=*/false);
    return Accuracy(output.logits.value(), dataset.labels, dataset.split.val);
  };
  hooks.test = [&](GraphModel* model) {
    const ModelOutput output = model->Forward(full_view, /*training=*/false);
    return Accuracy(output.logits.value(), dataset.labels,
                    dataset.split.test);
  };

  // The condensed-row teacher drives reliability and distillation while a
  // student trains; the full-row teacher is the deliverable ensemble.
  Teacher teacher_small;

  Matrix last_student_probs;
  for (int t = 0; t < config.num_base_models; ++t) {
    observe::TraceSpan student_span("rdd/student_condensed", t);
    auto student = BuildModel(small_context, config.base_model,
                              student_seeds[static_cast<size_t>(t)]);
    StudentDiagnostics diag;

    if (t == 0) {
      auto supervised = [&](const ModelOutput& output, int /*epoch*/) {
        return ag::SoftmaxCrossEntropy(output.logits, small.labels,
                                       small.split.train,
                                       ag::Reduction::kMean);
      };
      result.reports.push_back(TrainWithLoss(student.get(), small,
                                             train_config, supervised, hooks));
    } else {
      Matrix teacher_probs;
      Matrix teacher_embeddings;
      {
        observe::TraceSpan span("rdd/teacher_views");
        parallel::TaskGroup group;
        group.Run([&] { teacher_probs = teacher_small.PredictProbs(); });
        group.Run(
            [&] { teacher_embeddings = teacher_small.PredictEmbeddings(); });
        group.Wait();
      }
      GraphModel* student_ptr = student.get();
      const int anneal_horizon = config.anneal_horizon_epochs > 0
                                     ? config.anneal_horizon_epochs
                                     : config.train.max_epochs;

      auto loss_fn = [&, student_ptr](const ModelOutput& output, int epoch) {
        const Matrix student_probs = SoftmaxRows(
            student_ptr->Forward(/*training=*/false).logits.value());
        std::vector<bool> reliable;
        std::vector<int64_t> distill_nodes;
        if (config.use_node_reliability) {
          observe::TraceSpan span("rdd/node_reliability", epoch);
          NodeReliability rel = ComputeNodeReliability(
              teacher_probs, student_probs, small.labels, train_mask,
              config.reliability);
          reliable = std::move(rel.reliable);
          distill_nodes = std::move(rel.distill_nodes);
        } else {
          reliable = AllReliable(small.NumNodes());
          distill_nodes = all_nodes;
        }

        std::vector<Variable> terms;
        std::vector<float> coeffs;
        terms.push_back(ag::SoftmaxCrossEntropy(output.logits, small.labels,
                                                small.split.train,
                                                ag::Reduction::kMean));
        coeffs.push_back(1.0f);
        if (use_l2 && !distill_nodes.empty()) {
          const float gamma =
              config.anneal_gamma
                  ? CosineAnnealedGamma(config.gamma_initial,
                                        std::min(epoch, anneal_horizon - 1),
                                        anneal_horizon)
                  : config.gamma_initial;
          if (gamma > 0.0f) {
            observe::TraceSpan span("rdd/node_distill_loss");
            if (config.distill_loss == DistillLoss::kEmbeddingMse) {
              terms.push_back(ag::RowSquaredError(output.embedding,
                                                  teacher_embeddings,
                                                  distill_nodes,
                                                  ag::Reduction::kSum));
              coeffs.push_back(gamma / l2_normalizer);
            } else {
              constexpr float kDistillScale = 16.0f;
              terms.push_back(ag::SoftCrossEntropy(output.logits,
                                                   teacher_probs,
                                                   distill_nodes,
                                                   ag::Reduction::kSum));
              coeffs.push_back(gamma * kDistillScale / train_size);
            }
          }
        }
        if (use_lreg) {
          observe::TraceSpan span("rdd/edge_reg_loss");
          const std::vector<int64_t> student_preds = ArgmaxRows(student_probs);
          std::vector<std::pair<int64_t, int64_t>> edges;
          {
            observe::TraceSpan edges_span("rdd/edge_reliability", epoch);
            edges = config.use_edge_reliability
                        ? ComputeReliableEdges(small.graph, reliable,
                                               student_preds)
                        : AllEdges(small.graph);
          }
          diag.reliable_edges = static_cast<int64_t>(edges.size());
          if (!edges.empty()) {
            if (config.edge_reg_target == EdgeRegTarget::kEmbedding) {
              terms.push_back(ag::EdgeLaplacian(output.embedding, edges,
                                                ag::Reduction::kSum));
            } else {
              terms.push_back(ag::EdgeLaplacian(ag::Softmax(output.logits),
                                                edges, ag::Reduction::kSum));
            }
            coeffs.push_back(config.beta / lreg_normalizer);
          }
        }
        diag.reliable_nodes = static_cast<int64_t>(
            std::count(reliable.begin(), reliable.end(), true));
        diag.distill_nodes = static_cast<int64_t>(distill_nodes.size());
        return ag::WeightedSum(terms, coeffs);
      };
      result.reports.push_back(TrainWithLoss(student.get(), small,
                                             train_config, loss_fn, hooks));
    }

    // Ensemble update: the frozen student forwards once over the condensed
    // graph (feeding the next student's reliability/distillation teacher)
    // and once over the full graph (feeding the deliverable ensemble and
    // its Eq. 12 weight).
    observe::TraceSpan ensemble_span("rdd/ensemble_update", t);
    const ModelOutput full_output =
        student->Forward(full_view, /*training=*/false);
    Matrix probs = SoftmaxRows(full_output.logits.value());
    const double alpha = config.use_entropy_pagerank_weights
                             ? ComputeEnsembleWeight(probs, pagerank)
                             : 1.0;
    // Both teachers share the same Eq. 12 weight so the condensed-row
    // mixture the next student distills from matches the deliverable one.
    const ModelOutput small_output = student->Forward(/*training=*/false);
    teacher_small.AddMember(SoftmaxRows(small_output.logits.value()),
                            small_output.embedding.value(), alpha);
    result.alphas.push_back(alpha);
    last_student_probs = probs;
    result.teacher.AddMember(std::move(probs),
                             full_output.embedding.value(), alpha);
    result.diagnostics.push_back(diag);
    result.students.push_back(std::move(student));
    result.ensemble_accuracy_after_member.push_back(
        result.teacher.Accuracy(dataset.labels, dataset.split.test));
  }

  result.ensemble_test_accuracy =
      result.teacher.Accuracy(dataset.labels, dataset.split.test);
  result.single_test_accuracy =
      Accuracy(last_student_probs, dataset.labels, dataset.split.test);
  result.average_member_test_accuracy =
      result.teacher.AverageMemberAccuracy(dataset.labels,
                                           dataset.split.test);
  result.total_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace rdd
