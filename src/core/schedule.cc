#include "core/schedule.h"

#include <cmath>

#include "util/logging.h"

namespace rdd {

float CosineAnnealedGamma(float gamma_initial, int epoch, int total_epochs) {
  RDD_CHECK_GE(epoch, 0);
  RDD_CHECK_GT(total_epochs, 0);
  RDD_CHECK_LT(epoch, total_epochs);
  const double phase = static_cast<double>(epoch) * M_PI /
                       static_cast<double>(total_epochs);
  return gamma_initial * static_cast<float>(1.0 - std::cos(phase));
}

}  // namespace rdd
