#include "core/rdd_trainer.h"

#include <algorithm>

#include "autograd/ops.h"
#include "core/schedule.h"
#include "graph/pagerank.h"
#include "memory/workspace.h"
#include "nn/metrics.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "parallel/task_group.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace rdd {

double ComputeEnsembleWeight(const Matrix& probs,
                             const std::vector<double>& pagerank) {
  RDD_CHECK_EQ(static_cast<int64_t>(pagerank.size()), probs.rows());
  const std::vector<double> entropy = RowEntropy(probs);
  double denominator = 0.0;
  for (size_t i = 0; i < entropy.size(); ++i) {
    denominator += entropy[i] * pagerank[i];
  }
  // Floor the denominator: a member that is (over)confident everywhere
  // would otherwise get unbounded weight.
  constexpr double kEpsilon = 1e-8;
  return 1.0 / std::max(denominator, kEpsilon);
}

namespace {

/// Builds the trivially-true reliability mask used when node reliability is
/// ablated ("WNR"): every node counts as reliable.
std::vector<bool> AllReliable(int64_t n) {
  return std::vector<bool>(static_cast<size_t>(n), true);
}

std::vector<int64_t> AllNodes(int64_t n) {
  std::vector<int64_t> nodes(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) nodes[static_cast<size_t>(i)] = i;
  return nodes;
}

std::vector<std::pair<int64_t, int64_t>> AllEdges(const Graph& graph) {
  std::vector<std::pair<int64_t, int64_t>> edges;
  edges.reserve(static_cast<size_t>(graph.num_edges()));
  for (const Edge& e : graph.edges()) edges.emplace_back(e.u, e.v);
  return edges;
}

/// Rows of `m` in view-local order (shares nothing; a plain copy slice).
Matrix GatherMatrixRows(const Matrix& m, const GraphView& view) {
  if (view.full()) return m;
  Matrix out(view.num_nodes, m.cols());
  for (int64_t i = 0; i < view.num_nodes; ++i) {
    const float* src = m.RowData(view.GlobalId(i));
    float* dst = out.RowData(i);
    for (int64_t c = 0; c < m.cols(); ++c) dst[c] = src[c];
  }
  return out;
}

}  // namespace

RddResult TrainRdd(const Dataset& dataset, const GraphContext& context,
                   const RddConfig& config, uint64_t seed) {
  RDD_CHECK_GT(config.num_base_models, 0);
  WallTimer timer;
  // Run-level workspace: all T students train inside one pool scope, so the
  // tape/gradient buffers student t releases are reused by student t+1
  // instead of being trimmed between per-student Workspaces.
  memory::Workspace workspace;
  Rng seeder(seed);
  // Student seeds are drawn up front in chain order. The student chain is
  // inherently sequential (student t distills from the ensemble of students
  // 0..t-1), but hoisting keeps each student's initialization a pure
  // function of (run seed, t) regardless of scheduling.
  std::vector<uint64_t> student_seeds(
      static_cast<size_t>(config.num_base_models));
  for (uint64_t& s : student_seeds) s = seeder.NextU64();
  RddResult result;

  const std::vector<double> pagerank = PageRank(dataset.graph);
  const std::vector<bool> train_mask = dataset.TrainMask();
  const std::vector<int64_t> all_nodes = AllNodes(dataset.NumNodes());
  const bool use_l2 = config.gamma_initial != 0.0f;
  const bool use_lreg = config.beta != 0.0f;
  // Normalization constants that make the paper's gamma/beta grids portable
  // across datasets: the L2 sum is scaled so each distilled node carries the
  // same gradient weight as a labeled node in the (mean-reduced) L1 term,
  // and the Lreg sum is scaled by the total edge volume.
  const float k = static_cast<float>(context.num_classes);
  const float l2_normalizer =
      static_cast<float>(dataset.split.train.size()) * k;
  const float lreg_normalizer =
      static_cast<float>(std::max<int64_t>(1, dataset.graph.num_edges())) * k;

  Matrix last_student_probs;
  for (int t = 0; t < config.num_base_models; ++t) {
    // Spans name the phases of Algorithms 1-3 so a trace of one run shows,
    // nested under each "rdd/student": the teacher view construction, every
    // "train/epoch" with its reliability classification (Algorithm 1/2)
    // and loss terms, and the closing ensemble update. Tracing observes
    // only — enabled and disabled runs are bit-identical (observe_test).
    observe::TraceSpan student_span("rdd/student", t);
    auto student = BuildModel(context, config.base_model,
                              student_seeds[static_cast<size_t>(t)]);
    StudentDiagnostics diag;

    if (t == 0) {
      // Line 2 of Algorithm 3: the first student is a plain GCN trained
      // with the supervised loss only.
      result.reports.push_back(
          TrainSupervised(student.get(), dataset, config.train));
    } else {
      // The teacher H_{t-1} is frozen while student t trains. Its two
      // weighted averages (probs and embeddings) are independent, so they
      // build as concurrent tasks; each is written to its own slot and the
      // matrices themselves are computed by the same fixed-order reduction
      // either way, so the results are bit-identical to sequential.
      Matrix teacher_probs;
      Matrix teacher_embeddings;
      {
        observe::TraceSpan span("rdd/teacher_views");
        parallel::TaskGroup group;
        group.Run([&] {
          observe::TraceSpan probs_span("teacher/predict_probs");
          teacher_probs = result.teacher.PredictProbs();
        });
        group.Run([&] {
          observe::TraceSpan emb_span("teacher/predict_embeddings");
          teacher_embeddings = result.teacher.PredictEmbeddings();
        });
        group.Wait();
      }
      GraphModel* student_ptr = student.get();
      const int anneal_horizon = config.anneal_horizon_epochs > 0
                                     ? config.anneal_horizon_epochs
                                     : config.train.max_epochs;

      auto loss_fn = [&, student_ptr](const ModelOutput& output, int epoch) {
        // Line 7: refresh Vr / Er every epoch from the CURRENT student's
        // (evaluation-mode) predictions.
        const Matrix student_probs = SoftmaxRows(
            student_ptr->Forward(/*training=*/false).logits.value());
        std::vector<bool> reliable;
        std::vector<int64_t> distill_nodes;
        if (config.use_node_reliability) {
          observe::TraceSpan span("rdd/node_reliability", epoch);
          NodeReliability rel = ComputeNodeReliability(
              teacher_probs, student_probs, dataset.labels, train_mask,
              config.reliability);
          reliable = std::move(rel.reliable);
          distill_nodes = std::move(rel.distill_nodes);
        } else {
          // WNR ablation: mimic the teacher everywhere, like classic KD.
          reliable = AllReliable(dataset.NumNodes());
          distill_nodes = all_nodes;
        }

        std::vector<Variable> terms;
        std::vector<float> coeffs;
        // L1 (Eq. 6): supervised loss over the labeled nodes.
        terms.push_back(ag::SoftmaxCrossEntropy(output.logits, dataset.labels,
                                                dataset.split.train,
                                                ag::Reduction::kMean));
        coeffs.push_back(1.0f);
        // gamma * L2 (Eq. 7): mimic the teacher's embeddings on Vb.
        if (use_l2 && !distill_nodes.empty()) {
          const float gamma =
              config.anneal_gamma
                  ? CosineAnnealedGamma(config.gamma_initial,
                                        std::min(epoch, anneal_horizon - 1),
                                        anneal_horizon)
                  : config.gamma_initial;
          if (gamma > 0.0f) {
            observe::TraceSpan span("rdd/node_distill_loss");
            if (config.distill_loss == DistillLoss::kEmbeddingMse) {
              terms.push_back(ag::RowSquaredError(output.embedding,
                                                  teacher_embeddings,
                                                  distill_nodes,
                                                  ag::Reduction::kSum));
              coeffs.push_back(gamma / l2_normalizer);
            } else {
              // kDistillScale calibrates the soft-CE transfer so the
              // paper's gamma grid {0, 0.5, 1, 1.5} brackets the optimum
              // near gamma = 1 (see bench/table7_hyperparams).
              constexpr float kDistillScale = 16.0f;
              terms.push_back(ag::SoftCrossEntropy(output.logits,
                                                   teacher_probs,
                                                   distill_nodes,
                                                   ag::Reduction::kSum));
              coeffs.push_back(gamma * kDistillScale /
                               static_cast<float>(dataset.split.train.size()));
            }
          }
        }
        // beta * Lreg (Eq. 9): Laplacian smoothing over reliable edges.
        if (use_lreg) {
          observe::TraceSpan span("rdd/edge_reg_loss");
          const std::vector<int64_t> student_preds = ArgmaxRows(student_probs);
          std::vector<std::pair<int64_t, int64_t>> edges;
          {
            observe::TraceSpan edges_span("rdd/edge_reliability", epoch);
            edges = config.use_edge_reliability
                        ? ComputeReliableEdges(dataset.graph, reliable,
                                               student_preds)
                        : AllEdges(dataset.graph);
          }
          diag.reliable_edges = static_cast<int64_t>(edges.size());
          if (!edges.empty()) {
            if (config.edge_reg_target == EdgeRegTarget::kEmbedding) {
              terms.push_back(ag::EdgeLaplacian(output.embedding, edges,
                                                ag::Reduction::kSum));
            } else {
              terms.push_back(ag::EdgeLaplacian(ag::Softmax(output.logits),
                                                edges, ag::Reduction::kSum));
            }
            coeffs.push_back(config.beta / lreg_normalizer);
          }
        }
        diag.reliable_nodes = static_cast<int64_t>(
            std::count(reliable.begin(), reliable.end(), true));
        diag.distill_nodes = static_cast<int64_t>(distill_nodes.size());
        return ag::WeightedSum(terms, coeffs);
      };
      result.reports.push_back(
          TrainWithLoss(student.get(), dataset, config.train, loss_fn));
    }

    // Lines 19-21: cache the trained student and add it to the ensemble.
    observe::TraceSpan ensemble_span("rdd/ensemble_update", t);
    const ModelOutput final_output = student->Forward(/*training=*/false);
    Matrix probs = SoftmaxRows(final_output.logits.value());
    const double alpha = config.use_entropy_pagerank_weights
                             ? ComputeEnsembleWeight(probs, pagerank)
                             : 1.0;
    result.alphas.push_back(alpha);
    last_student_probs = probs;
    result.teacher.AddMember(std::move(probs),
                             final_output.embedding.value(), alpha);
    result.diagnostics.push_back(diag);
    result.students.push_back(std::move(student));
    result.ensemble_accuracy_after_member.push_back(
        result.teacher.Accuracy(dataset.labels, dataset.split.test));
  }

  result.ensemble_test_accuracy =
      result.teacher.Accuracy(dataset.labels, dataset.split.test);
  result.single_test_accuracy = Accuracy(
      last_student_probs, dataset.labels, dataset.split.test);
  result.average_member_test_accuracy =
      result.teacher.AverageMemberAccuracy(dataset.labels,
                                           dataset.split.test);
  result.total_seconds = timer.ElapsedSeconds();
  return result;
}

RddResult TrainRddMiniBatch(const Dataset& dataset,
                            const GraphContext& context,
                            const RddConfig& config,
                            const MiniBatchConfig& mb_config, uint64_t seed) {
  RDD_CHECK_GT(config.num_base_models, 0);
  WallTimer timer;
  memory::Workspace workspace;
  Rng seeder(seed);
  std::vector<uint64_t> student_seeds(
      static_cast<size_t>(config.num_base_models));
  for (uint64_t& s : student_seeds) s = seeder.NextU64();
  RddResult result;

  const std::vector<double> pagerank = PageRank(dataset.graph);
  const std::vector<bool> train_mask = dataset.TrainMask();
  const bool use_l2 = config.gamma_initial != 0.0f;
  const bool use_lreg = config.beta != 0.0f;
  const float k = static_cast<float>(context.num_classes);

  // Distillation and the edge regularizer act mostly on UNLABELED nodes, so
  // RDD batches sweep every node; the target count feeds the per-batch loss
  // rescaling below.
  MiniBatchConfig mb = mb_config;
  mb.batch_over_all_nodes = true;
  const float total_targets = static_cast<float>(dataset.NumNodes());

  Matrix last_student_probs;
  for (int t = 0; t < config.num_base_models; ++t) {
    observe::TraceSpan student_span("rdd/student_mb", t);
    auto student = BuildModel(context, config.base_model,
                              student_seeds[static_cast<size_t>(t)]);
    StudentDiagnostics diag;

    if (t == 0) {
      // First student: plain supervised mini-batch training (sweeping only
      // the labeled nodes — there is nothing to distill yet).
      result.reports.push_back(TrainMiniBatchSupervised(
          student.get(), dataset, config.train, mb_config));
    } else {
      Matrix teacher_probs;
      Matrix teacher_embeddings;
      {
        observe::TraceSpan span("rdd/teacher_views");
        parallel::TaskGroup group;
        group.Run([&] { teacher_probs = result.teacher.PredictProbs(); });
        group.Run(
            [&] { teacher_embeddings = result.teacher.PredictEmbeddings(); });
        group.Wait();
      }
      GraphModel* student_ptr = student.get();
      const int anneal_horizon = config.anneal_horizon_epochs > 0
                                     ? config.anneal_horizon_epochs
                                     : config.train.max_epochs;

      auto loss_fn = [&, student_ptr](const GraphView& view,
                                      const ModelOutput& output, int epoch) {
        // Per-batch Algorithm 1: classify the view's rows from the CURRENT
        // student's eval-mode predictions over this same view; the
        // p-percent entropy thresholds are per-view quantiles.
        const Matrix student_probs = SoftmaxRows(
            student_ptr->Forward(view, /*training=*/false).logits.value());
        const Matrix teacher_probs_v = GatherMatrixRows(teacher_probs, view);
        const std::vector<int64_t> labels_v = view.GatherInt64(dataset.labels);
        const std::vector<bool> train_mask_v = view.GatherMask(train_mask);

        std::vector<bool> reliable;
        std::vector<int64_t> distill_nodes;
        if (config.use_node_reliability) {
          observe::TraceSpan span("rdd/node_reliability", epoch);
          NodeReliability rel = ComputeNodeReliability(
              teacher_probs_v, student_probs, labels_v, train_mask_v,
              config.reliability);
          reliable = std::move(rel.reliable);
          distill_nodes = std::move(rel.distill_nodes);
        } else {
          reliable = AllReliable(view.num_nodes);
          distill_nodes = AllNodes(view.num_nodes);
        }
        // Only target rows distill: frontier rows recur in other batches
        // (as targets), so dropping them here keeps one epoch's L2 sweep at
        // exactly one visit per node.
        {
          std::vector<int64_t> targets_only;
          targets_only.reserve(distill_nodes.size());
          for (int64_t i : distill_nodes) {
            if (i < view.num_targets) targets_only.push_back(i);
          }
          distill_nodes = std::move(targets_only);
        }

        std::vector<int64_t> labeled_targets;
        for (int64_t i = 0; i < view.num_targets; ++i) {
          if (train_mask_v[static_cast<size_t>(i)]) labeled_targets.push_back(i);
        }

        // Sum-reduced terms cover ~batch/total of their full-batch index
        // sets while L1's mean is batch-size invariant, so sums are scaled
        // back up by total/batch to keep the per-step L1 : L2 : Lreg
        // balance at its full-batch value.
        const float upscale =
            total_targets / static_cast<float>(view.num_targets);

        std::vector<Variable> terms;
        std::vector<float> coeffs;
        terms.push_back(ag::SoftmaxCrossEntropy(output.logits, labels_v,
                                                labeled_targets,
                                                ag::Reduction::kMean));
        coeffs.push_back(1.0f);
        if (use_l2 && !distill_nodes.empty()) {
          const float gamma =
              config.anneal_gamma
                  ? CosineAnnealedGamma(config.gamma_initial,
                                        std::min(epoch, anneal_horizon - 1),
                                        anneal_horizon)
                  : config.gamma_initial;
          if (gamma > 0.0f) {
            observe::TraceSpan span("rdd/node_distill_loss");
            if (config.distill_loss == DistillLoss::kEmbeddingMse) {
              terms.push_back(ag::RowSquaredError(
                  output.embedding, GatherMatrixRows(teacher_embeddings, view),
                  distill_nodes, ag::Reduction::kSum));
              coeffs.push_back(
                  gamma * upscale /
                  (static_cast<float>(dataset.split.train.size()) * k));
            } else {
              constexpr float kDistillScale = 16.0f;
              terms.push_back(ag::SoftCrossEntropy(output.logits,
                                                   teacher_probs_v,
                                                   distill_nodes,
                                                   ag::Reduction::kSum));
              coeffs.push_back(gamma * kDistillScale * upscale /
                               static_cast<float>(dataset.split.train.size()));
            }
          }
        }
        if (use_lreg) {
          observe::TraceSpan span("rdd/edge_reg_loss");
          const std::vector<int64_t> student_preds = ArgmaxRows(student_probs);
          const std::vector<std::pair<int64_t, int64_t>> view_edges =
              ViewEdges(view);
          std::vector<std::pair<int64_t, int64_t>> edges;
          {
            observe::TraceSpan edges_span("rdd/edge_reliability", epoch);
            edges = config.use_edge_reliability
                        ? ComputeReliableEdges(view_edges, reliable,
                                               student_preds)
                        : view_edges;
          }
          diag.reliable_edges = static_cast<int64_t>(edges.size());
          if (!edges.empty()) {
            // Normalizing by the VIEW's own edge volume keeps the term's
            // scale equal to full-batch (|Er_b| / E_b tracks |Er| / E).
            const float lreg_normalizer =
                static_cast<float>(
                    std::max<size_t>(view_edges.size(), size_t{1})) *
                k;
            if (config.edge_reg_target == EdgeRegTarget::kEmbedding) {
              terms.push_back(ag::EdgeLaplacian(output.embedding, edges,
                                                ag::Reduction::kSum));
            } else {
              terms.push_back(ag::EdgeLaplacian(ag::Softmax(output.logits),
                                                edges, ag::Reduction::kSum));
            }
            coeffs.push_back(config.beta / lreg_normalizer);
          }
        }
        diag.reliable_nodes = static_cast<int64_t>(
            std::count(reliable.begin(), reliable.end(), true));
        diag.distill_nodes = static_cast<int64_t>(distill_nodes.size());
        return ag::WeightedSum(terms, coeffs);
      };
      result.reports.push_back(TrainMiniBatchWithLoss(
          student.get(), dataset, config.train, mb, loss_fn));
    }

    // Ensemble update is unchanged from TrainRdd: one full-graph forward
    // caches the frozen student's probs/embeddings.
    observe::TraceSpan ensemble_span("rdd/ensemble_update", t);
    const ModelOutput final_output = student->Forward(/*training=*/false);
    Matrix probs = SoftmaxRows(final_output.logits.value());
    const double alpha = config.use_entropy_pagerank_weights
                             ? ComputeEnsembleWeight(probs, pagerank)
                             : 1.0;
    result.alphas.push_back(alpha);
    last_student_probs = probs;
    result.teacher.AddMember(std::move(probs),
                             final_output.embedding.value(), alpha);
    result.diagnostics.push_back(diag);
    result.students.push_back(std::move(student));
    result.ensemble_accuracy_after_member.push_back(
        result.teacher.Accuracy(dataset.labels, dataset.split.test));
  }

  result.ensemble_test_accuracy =
      result.teacher.Accuracy(dataset.labels, dataset.split.test);
  result.single_test_accuracy =
      Accuracy(last_student_probs, dataset.labels, dataset.split.test);
  result.average_member_test_accuracy =
      result.teacher.AverageMemberAccuracy(dataset.labels,
                                           dataset.split.test);
  result.total_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace rdd
