#ifndef RDD_CORE_TEACHER_H_
#define RDD_CORE_TEACHER_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace rdd {

/// The RDD teacher: an ensemble of the previously trained student models
/// (Sec. 4.1). Unlike the generic SoftmaxEnsemble, the teacher also
/// averages the students' last-layer node embeddings, because RDD's L2 loss
/// distills embeddings F_{t-1}(x), not softmax outputs. Member outputs are
/// cached at insertion (students are frozen once trained).
class Teacher {
 public:
  Teacher() = default;

  /// Adds a trained student's cached outputs with raw weight alpha_t > 0.
  void AddMember(Matrix probs, Matrix embeddings, double alpha);

  int64_t size() const { return static_cast<int64_t>(weights_.size()); }
  const std::vector<double>& weights() const { return weights_; }

  /// Weight-normalized average softmax prediction H_t(x) (Eq. 13).
  /// Members are summed in insertion order per element (a fixed reduction
  /// at any thread count), so teacher views are deterministic; the
  /// averaging pass is traced as "teacher/weighted_average".
  Matrix PredictProbs() const;

  /// Weight-normalized average embedding F_t(x), the target of the L2 loss
  /// (Eq. 7). Same determinism and tracing contract as PredictProbs().
  Matrix PredictEmbeddings() const;

  /// Accuracy of the combined prediction over `indices`.
  double Accuracy(const std::vector<int64_t>& labels,
                  const std::vector<int64_t>& indices) const;

  /// Mean accuracy of the individual members over `indices`.
  double AverageMemberAccuracy(const std::vector<int64_t>& labels,
                               const std::vector<int64_t>& indices) const;

  /// Cached member predictions, in insertion order.
  const Matrix& member_probs(int64_t t) const;

 private:
  Matrix WeightedAverage(const std::vector<Matrix>& parts) const;

  std::vector<Matrix> member_probs_;
  std::vector<Matrix> member_embeddings_;
  std::vector<double> weights_;
};

}  // namespace rdd

#endif  // RDD_CORE_TEACHER_H_
