#ifndef RDD_CORE_RDD_CONFIG_H_
#define RDD_CORE_RDD_CONFIG_H_

#include "core/reliability.h"
#include "models/model_factory.h"
#include "train/trainer.h"

namespace rdd {

/// Which quantity the L2 distillation term matches against the teacher.
enum class DistillLoss {
  /// Eq. 7 of the paper: squared error between last-layer embeddings.
  kEmbeddingMse,
  /// Soft cross-entropy between the student's softmax and the teacher's
  /// averaged softmax (the transfer loss KD methods such as BANs use).
  /// Exposed for the ablation benches.
  kSoftCrossEntropy,
};

/// What quantity the reliable-edge regularizer Lreg smooths along edges.
enum class EdgeRegTarget {
  kEmbedding,   ///< Eq. 9: last-layer embeddings.
  kPrediction,  ///< Softmax outputs (bounded, self-limiting).
};

/// Full configuration of the RDD self-boosting trainer (Algorithm 3).
/// Defaults reproduce the paper's best Cora setting: T = 5 base models,
/// p = 40, beta = 10, gamma_initial = 1 with cosine annealing, and a
/// 2-layer GCN base model.
struct RddConfig {
  /// T: number of student models trained (and ensembled).
  int num_base_models = 5;

  /// Node-reliability settings (the paper's p lives here).
  NodeReliabilityConfig reliability;

  /// beta: strength of the reliable-edge regularization Lreg.
  float beta = 10.0f;

  /// gamma_initial: knowledge-transfer weight for the L2 loss. 0 disables
  /// the L2 term entirely (the paper's "No L2" ablation).
  float gamma_initial = 1.0f;

  /// Apply the cosine annealing schedule of Eq. 14 (otherwise gamma is
  /// constant at gamma_initial).
  bool anneal_gamma = true;

  /// Horizon E of Eq. 14, in epochs. The paper anneals over the full
  /// budget, but with early stopping (patience 20) students converge long
  /// before a 300-epoch horizon lets gamma ramp up, starving the
  /// distillation term (bench/ablation_design measures this). A horizon of
  /// ~100 reaches gamma_initial around the typical convergence point,
  /// preserving Eq. 14's stated intent. Epochs past the horizon clamp at
  /// 2 * gamma_initial. 0 means "use train.max_epochs" (the literal
  /// reading).
  int anneal_horizon_epochs = 100;

  /// What the distillation term compares. The default is KD-style soft
  /// cross-entropy: for a 2-layer GCN the paper's "embedding" IS the logit
  /// row, and matching its softmax transfers the same information while
  /// staying scale-robust under our from-scratch optimizer (raw-logit MSE,
  /// Eq. 7 literally, is exposed as kEmbeddingMse and measured in the
  /// ablation bench).
  DistillLoss distill_loss = DistillLoss::kSoftCrossEntropy;

  /// What the reliable-edge regularizer smooths. kPrediction (default)
  /// smooths softmax outputs, which is self-limiting — confident agreeing
  /// endpoints contribute nothing — so the paper's beta grid stays in a
  /// stable regime. kEmbedding is Eq. 9 literally.
  EdgeRegTarget edge_reg_target = EdgeRegTarget::kPrediction;

  /// Ablation switches (Table 8). With node reliability off ("WNR"), the
  /// student mimics the teacher on every node, and edge reliability
  /// degrades to the prediction-agreement test alone. With edge
  /// reliability off ("WER"), Lreg becomes plain graph Laplacian
  /// regularization over all edges. Both off is "WKR".
  bool use_node_reliability = true;
  bool use_edge_reliability = true;

  /// Ensemble weighting (Eq. 12). Off ("WEW") falls back to the uniform
  /// weighting Bagging uses.
  bool use_entropy_pagerank_weights = true;

  /// Base model architecture (the paper uses a 2-layer, 16-hidden GCN).
  ModelConfig base_model;

  /// Optimization settings shared by all students.
  TrainConfig train;
};

}  // namespace rdd

#endif  // RDD_CORE_RDD_CONFIG_H_
