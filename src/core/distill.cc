#include "core/distill.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "autograd/ops.h"
#include "memory/workspace.h"
#include "nn/metrics.h"
#include "observe/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace rdd {

namespace {

/// Knowledge-reliability weights w_i = 1 - H(p_i) / log K, clamped to
/// [0, 1]. A uniform teacher row carries no knowledge (w = 0); a one-hot
/// row carries full weight.
std::vector<float> ReliabilityWeights(const Matrix& teacher_probs) {
  const std::vector<double> entropy = RowEntropy(teacher_probs);
  const double log_k =
      std::log(static_cast<double>(std::max<int64_t>(teacher_probs.cols(), 2)));
  std::vector<float> weights(entropy.size());
  for (size_t i = 0; i < entropy.size(); ++i) {
    weights[i] = static_cast<float>(
        std::clamp(1.0 - entropy[i] / log_k, 0.0, 1.0));
  }
  return weights;
}

}  // namespace

DistillResult DistillToMlp(const Dataset& dataset, const GraphContext& context,
                           const Teacher& teacher, const DistillConfig& config,
                           uint64_t seed) {
  RDD_CHECK_GT(teacher.size(), 0);
  memory::Workspace workspace;
  observe::TraceSpan distill_span("distill/train");

  // The teacher is frozen: its soft labels and reliability weights are
  // computed once, outside the epoch loop.
  const Matrix teacher_probs = teacher.PredictProbs();
  std::vector<float> weights =
      config.use_reliability_weights
          ? ReliabilityWeights(teacher_probs)
          : std::vector<float>(static_cast<size_t>(teacher_probs.rows()),
                               1.0f);

  const std::vector<bool> train_mask = dataset.TrainMask();
  std::vector<int64_t> all_nodes(static_cast<size_t>(dataset.NumNodes()));
  std::iota(all_nodes.begin(), all_nodes.end(), 0);

  DistillResult result;
  result.student = std::make_shared<MlpStudent>(
      context, config.num_layers, config.hidden_dim, config.dropout, seed);

  const LossFn loss_fn = [&](const ModelOutput& output, int epoch) {
    (void)epoch;
    // Algorithm 1 against the current student: which reliable knowledge
    // should this epoch distill?
    const Matrix student_probs = SoftmaxRows(output.logits.value());
    const NodeReliability rel =
        ComputeNodeReliability(teacher_probs, student_probs, dataset.labels,
                               train_mask, config.reliability);
    const std::vector<int64_t>& distill_nodes =
        rel.distill_nodes.empty() ? all_nodes : rel.distill_nodes;

    std::vector<Variable> terms;
    std::vector<float> coeffs;
    terms.push_back(ag::SoftmaxCrossEntropy(output.logits, dataset.labels,
                                            dataset.split.train,
                                            ag::Reduction::kMean));
    coeffs.push_back(1.0f);
    if (config.lambda != 0.0f) {
      terms.push_back(ag::WeightedSoftCrossEntropy(
          output.logits, teacher_probs, distill_nodes, weights,
          ag::Reduction::kMean));
      coeffs.push_back(config.lambda);
    }
    return ag::WeightedSum(terms, coeffs);
  };
  result.report =
      TrainWithLoss(result.student.get(), dataset, config.train, loss_fn);

  const Matrix student_probs = result.student->PredictProbs();
  const std::vector<int64_t> student_preds = ArgmaxRows(student_probs);
  const std::vector<int64_t> teacher_preds = ArgmaxRows(teacher_probs);
  result.student_test_accuracy =
      Accuracy(student_probs, dataset.labels, dataset.split.test);
  result.teacher_test_accuracy =
      teacher.Accuracy(dataset.labels, dataset.split.test);
  int64_t agree = 0;
  for (int64_t i : dataset.split.test) {
    agree += student_preds[static_cast<size_t>(i)] ==
             teacher_preds[static_cast<size_t>(i)];
  }
  result.test_agreement =
      dataset.split.test.empty()
          ? 0.0
          : static_cast<double>(agree) /
                static_cast<double>(dataset.split.test.size());
  return result;
}

}  // namespace rdd
