#ifndef RDD_CORE_RELIABILITY_H_
#define RDD_CORE_RELIABILITY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "tensor/matrix.h"

namespace rdd {

/// Which prediction decides the labeled-node reliability rule. The paper's
/// prose (Sec. 3.1) uses the teacher's prediction; Algorithm 1 line 4 is
/// written with the student's. Both readings are exposed; the prose reading
/// is the default (see DESIGN.md "Faithfulness notes").
enum class LabeledReliabilityRule {
  kTeacherCorrect,
  kStudentCorrect,
};

/// How the distillation target set Vb is selected. The paper is internally
/// inconsistent here: Algorithm 1 (lines 8-9) first drops nodes where
/// student and teacher disagree and then keeps the ones the student is
/// UNSURE about, while Figure 3 and Figure 5 state the student learns the
/// reliable knowledge it "wrongly predicts compared to the teacher" — i.e.
/// exactly the disagreeing nodes. Both readings are implemented; the
/// corrective reading is the default because it is the one that actually
/// lets the teacher fix student mistakes (see DESIGN.md and the ablation
/// bench).
enum class DistillTargetRule {
  /// Algorithm 1 literally: Vb = Vr (post-agreement) with student entropy
  /// in the top p percent.
  kUncertainOnly,
  /// Figures 3/5: Vb = entropy-reliable nodes where the student disagrees
  /// with the teacher, plus agreeing nodes the student is unsure about.
  kDisagreeOrUncertain,
  /// Sec. 4.2.1 prose ("the student model tries to mimic the embedding of
  /// each reliable node"): Vb = every entropy-reliable node. This reading
  /// transfers the most knowledge and is the calibrated default.
  kAllReliable,
};

/// Configuration of the node-reliability computation (Algorithm 1).
struct NodeReliabilityConfig {
  /// The paper's p: an unlabeled node is entropy-reliable when the teacher's
  /// prediction entropy falls in the lowest p percent; a reliable node joins
  /// Vb when the student's entropy falls in the highest p percent.
  double p_percent = 40.0;
  LabeledReliabilityRule labeled_rule =
      LabeledReliabilityRule::kTeacherCorrect;
  /// When true (default), the RELIABLE set Vr additionally requires teacher
  /// and student to predict the same label (Algorithm 1 line 8). Vr is what
  /// edge reliability consumes.
  bool require_agreement = true;
  DistillTargetRule distill_rule = DistillTargetRule::kAllReliable;
};

/// Output of Algorithm 1: the reliable node set Vr and the distillation
/// target set Vb (nodes the teacher learned reliably but the student is
/// unsure about), plus the raw entropies for diagnostics.
struct NodeReliability {
  std::vector<bool> reliable;          ///< Membership mask of Vr.
  std::vector<int64_t> reliable_nodes; ///< Vr as an index list.
  std::vector<int64_t> distill_nodes;  ///< Vb as an index list.
  std::vector<double> teacher_entropy;
  std::vector<double> student_entropy;
};

/// Implements Algorithm 1 of the paper. `teacher_probs` / `student_probs`
/// are row-stochastic prediction matrices over all nodes; `labels` holds
/// ground-truth labels (only the rows flagged in `train_mask` are consulted,
/// matching the semi-supervised setting).
NodeReliability ComputeNodeReliability(const Matrix& teacher_probs,
                                       const Matrix& student_probs,
                                       const std::vector<int64_t>& labels,
                                       const std::vector<bool>& train_mask,
                                       const NodeReliabilityConfig& config);

/// Implements Algorithm 2 of the paper: an edge (i, j) is reliable iff both
/// endpoints are in Vr and the student predicts the same class for both
/// (w_ij = A_ij * B_ij * C_ij, Eq. 5). Returns the reliable edge list Er.
std::vector<std::pair<int64_t, int64_t>> ComputeReliableEdges(
    const Graph& graph, const std::vector<bool>& reliable,
    const std::vector<int64_t>& student_predictions);

/// Edge-list form of Algorithm 2, for graph views: filters an explicit
/// (u, v) edge list (e.g. ViewEdges of a mini-batch view, with view-local
/// ids) by the same both-endpoints-reliable + same-predicted-class rule.
std::vector<std::pair<int64_t, int64_t>> ComputeReliableEdges(
    const std::vector<std::pair<int64_t, int64_t>>& edges,
    const std::vector<bool>& reliable,
    const std::vector<int64_t>& student_predictions);

/// Returns the value below which `percent` percent of `values` fall (the
/// inclusive lower-tail threshold used by the p% rules above). `percent`
/// must be in [0, 100]; empty inputs abort.
double LowerPercentileThreshold(std::vector<double> values, double percent);

}  // namespace rdd

#endif  // RDD_CORE_RELIABILITY_H_
