#include "core/teacher.h"

#include "nn/metrics.h"
#include "observe/trace.h"
#include "parallel/parallel_for.h"
#include "util/logging.h"

namespace rdd {

void Teacher::AddMember(Matrix probs, Matrix embeddings, double alpha) {
  RDD_CHECK_GT(alpha, 0.0);
  RDD_CHECK_EQ(probs.rows(), embeddings.rows());
  if (!member_probs_.empty()) {
    RDD_CHECK_EQ(probs.rows(), member_probs_.front().rows());
    RDD_CHECK_EQ(probs.cols(), member_probs_.front().cols());
    RDD_CHECK_EQ(embeddings.cols(), member_embeddings_.front().cols());
  }
  member_probs_.push_back(std::move(probs));
  member_embeddings_.push_back(std::move(embeddings));
  weights_.push_back(alpha);
}

Matrix Teacher::WeightedAverage(const std::vector<Matrix>& parts) const {
  RDD_CHECK(!parts.empty());
  observe::TraceSpan span("teacher/weighted_average",
                          static_cast<int64_t>(parts.size()));
  double total = 0.0;
  for (double w : weights_) total += w;
  RDD_CHECK_GT(total, 0.0);
  const int64_t rows = parts.front().rows();
  const int64_t cols = parts.front().cols();
  Matrix combined(rows, cols);
  // One row-parallel pass instead of T full-matrix Axpy sweeps: each chunk
  // accumulates all members into its own rows, touching `combined` once per
  // member per row while it is cache-hot. Members are summed in insertion
  // order t = 0, 1, ... per element — the same per-element order as the
  // sequential Axpy loop — so the result is bit-identical at any thread
  // count (chunks write disjoint rows).
  const int64_t members = static_cast<int64_t>(parts.size());
  parallel::ParallelFor(
      0, rows, parallel::GrainForCost(2 * members * cols),
      [&](int64_t r0, int64_t r1) {
        for (int64_t t = 0; t < members; ++t) {
          const float w =
              static_cast<float>(weights_[static_cast<size_t>(t)] / total);
          const Matrix& part = parts[static_cast<size_t>(t)];
          for (int64_t r = r0; r < r1; ++r) {
            float* out = combined.RowData(r);
            const float* in = part.RowData(r);
            for (int64_t c = 0; c < cols; ++c) out[c] += w * in[c];
          }
        }
      });
  return combined;
}

Matrix Teacher::PredictProbs() const { return WeightedAverage(member_probs_); }

Matrix Teacher::PredictEmbeddings() const {
  return WeightedAverage(member_embeddings_);
}

double Teacher::Accuracy(const std::vector<int64_t>& labels,
                         const std::vector<int64_t>& indices) const {
  return rdd::Accuracy(PredictProbs(), labels, indices);
}

double Teacher::AverageMemberAccuracy(
    const std::vector<int64_t>& labels,
    const std::vector<int64_t>& indices) const {
  RDD_CHECK_GT(size(), 0);
  double sum = 0.0;
  for (const Matrix& probs : member_probs_) {
    sum += rdd::Accuracy(probs, labels, indices);
  }
  return sum / static_cast<double>(size());
}

const Matrix& Teacher::member_probs(int64_t t) const {
  RDD_CHECK_GE(t, 0);
  RDD_CHECK_LT(t, size());
  return member_probs_[static_cast<size_t>(t)];
}

}  // namespace rdd
