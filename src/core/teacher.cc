#include "core/teacher.h"

#include "nn/metrics.h"
#include "util/logging.h"

namespace rdd {

void Teacher::AddMember(Matrix probs, Matrix embeddings, double alpha) {
  RDD_CHECK_GT(alpha, 0.0);
  RDD_CHECK_EQ(probs.rows(), embeddings.rows());
  if (!member_probs_.empty()) {
    RDD_CHECK_EQ(probs.rows(), member_probs_.front().rows());
    RDD_CHECK_EQ(probs.cols(), member_probs_.front().cols());
    RDD_CHECK_EQ(embeddings.cols(), member_embeddings_.front().cols());
  }
  member_probs_.push_back(std::move(probs));
  member_embeddings_.push_back(std::move(embeddings));
  weights_.push_back(alpha);
}

Matrix Teacher::WeightedAverage(const std::vector<Matrix>& parts) const {
  RDD_CHECK(!parts.empty());
  double total = 0.0;
  for (double w : weights_) total += w;
  RDD_CHECK_GT(total, 0.0);
  Matrix combined(parts.front().rows(), parts.front().cols());
  for (size_t t = 0; t < parts.size(); ++t) {
    combined.Axpy(static_cast<float>(weights_[t] / total), parts[t]);
  }
  return combined;
}

Matrix Teacher::PredictProbs() const { return WeightedAverage(member_probs_); }

Matrix Teacher::PredictEmbeddings() const {
  return WeightedAverage(member_embeddings_);
}

double Teacher::Accuracy(const std::vector<int64_t>& labels,
                         const std::vector<int64_t>& indices) const {
  return rdd::Accuracy(PredictProbs(), labels, indices);
}

double Teacher::AverageMemberAccuracy(
    const std::vector<int64_t>& labels,
    const std::vector<int64_t>& indices) const {
  RDD_CHECK_GT(size(), 0);
  double sum = 0.0;
  for (const Matrix& probs : member_probs_) {
    sum += rdd::Accuracy(probs, labels, indices);
  }
  return sum / static_cast<double>(size());
}

const Matrix& Teacher::member_probs(int64_t t) const {
  RDD_CHECK_GE(t, 0);
  RDD_CHECK_LT(t, size());
  return member_probs_[static_cast<size_t>(t)];
}

}  // namespace rdd
