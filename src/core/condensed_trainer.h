#ifndef RDD_CORE_CONDENSED_TRAINER_H_
#define RDD_CORE_CONDENSED_TRAINER_H_

#include <cstdint>

#include "core/rdd_trainer.h"
#include "graph/condense/condense.h"

namespace rdd {

/// Outcome of a condensed RDD run. `rdd` carries FULL-graph quality numbers:
/// the teacher's cached member outputs, every accuracy, and the ensemble
/// weights are all computed over the original graph, so the result is
/// directly comparable to TrainRdd's.
struct CondensedRddResult {
  RddResult rdd;
  /// False when the condense method was kOff: `rdd` is then a plain
  /// TrainRdd run, bit-identical to calling TrainRdd directly.
  bool condensed = false;
  int64_t condensed_nodes = 0;
  int64_t condensed_edges = 0;
  double achieved_ratio = 0.0;
  /// Wall-clock of the condensation itself (inside total_seconds).
  double condense_seconds = 0.0;
};

/// Condensation as a training accelerator: runs Algorithm 3's student chain
/// ON THE CONDENSED GRAPH — supervised loss, Algorithm 1/2 reliability, L2
/// distillation, and edge regularization all act on the synthetic nodes and
/// edges — while EVALUATING on the full graph. Model parameters are
/// view-independent, so a student bound to the condensed context forwards
/// over the full graph's identity view for early stopping (every
/// condense_config.eval_every epochs, through train::EvalHooks), for its
/// ensemble weight (entropy x PageRank on the full graph, Eq. 12), and for
/// the cached teacher outputs — the teacher the caller receives predicts
/// full-graph rows, exactly like TrainRdd's.
///
/// Two teachers run internally: the condensed-row teacher feeds Algorithm 1
/// and the L2 targets during training (so reliability thresholds and
/// distillation match the graph being trained on), and the full-row teacher
/// accumulates the deliverable ensemble.
///
/// With condense_config.method == kOff this delegates to TrainRdd verbatim
/// (the RDD_CONDENSE=0 byte-identity contract CI checks).
///
/// Determinism: a pure function of (dataset, context, config,
/// condense_config, seed) — bit-identical at any RDD_NUM_THREADS and
/// RDD_SIMD backend, like TrainRdd.
CondensedRddResult TrainRddCondensed(const Dataset& dataset,
                                     const GraphContext& context,
                                     const RddConfig& config,
                                     const condense::CondenseConfig&
                                         condense_config,
                                     uint64_t seed);

}  // namespace rdd

#endif  // RDD_CORE_CONDENSED_TRAINER_H_
