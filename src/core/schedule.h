#ifndef RDD_CORE_SCHEDULE_H_
#define RDD_CORE_SCHEDULE_H_

namespace rdd {

/// Cosine-annealed knowledge-transfer weight (Eq. 14 of the paper):
///   gamma(e) = gamma_initial * (1 - cos(e * pi / E)).
/// The weight starts at 0 (the student's own predictions are still poor, so
/// L2/Lreg should contribute little) and rises to 2 * gamma_initial by the
/// final epoch. `epoch` is 0-based and must be < total_epochs.
float CosineAnnealedGamma(float gamma_initial, int epoch, int total_epochs);

}  // namespace rdd

#endif  // RDD_CORE_SCHEDULE_H_
