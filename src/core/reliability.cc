#include "core/reliability.h"

#include <algorithm>
#include <cmath>

#include "parallel/parallel_for.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace rdd {

double LowerPercentileThreshold(std::vector<double> values, double percent) {
  RDD_CHECK(!values.empty());
  RDD_CHECK_GE(percent, 0.0);
  RDD_CHECK_LE(percent, 100.0);
  const int64_t n = static_cast<int64_t>(values.size());
  // Index of the last element inside the lowest `percent` fraction.
  int64_t k = static_cast<int64_t>(
                  std::ceil(percent / 100.0 * static_cast<double>(n))) -
              1;
  k = std::clamp<int64_t>(k, 0, n - 1);
  std::nth_element(values.begin(), values.begin() + k, values.end());
  return values[static_cast<size_t>(k)];
}

NodeReliability ComputeNodeReliability(const Matrix& teacher_probs,
                                       const Matrix& student_probs,
                                       const std::vector<int64_t>& labels,
                                       const std::vector<bool>& train_mask,
                                       const NodeReliabilityConfig& config) {
  const int64_t n = teacher_probs.rows();
  RDD_CHECK_EQ(student_probs.rows(), n);
  RDD_CHECK_EQ(teacher_probs.cols(), student_probs.cols());
  RDD_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  RDD_CHECK_EQ(static_cast<int64_t>(train_mask.size()), n);
  RDD_CHECK_GT(config.p_percent, 0.0);
  RDD_CHECK_LE(config.p_percent, 100.0);

  NodeReliability result;
  result.teacher_entropy = RowEntropy(teacher_probs);
  result.student_entropy = RowEntropy(student_probs);
  const std::vector<int64_t> teacher_preds = ArgmaxRows(teacher_probs);
  const std::vector<int64_t> student_preds = ArgmaxRows(student_probs);

  // Lines 1-2 & 7: an unlabeled node is entropy-reliable when the teacher's
  // entropy is among the lowest p percent.
  const double teacher_threshold =
      LowerPercentileThreshold(result.teacher_entropy, config.p_percent);
  // Lines 5-6 & 9: a node joins Vb when the student's entropy is among the
  // HIGHEST p percent, i.e. above the (100 - p) lower percentile.
  const double student_threshold = LowerPercentileThreshold(
      result.student_entropy, 100.0 - config.p_percent);

  // Per-node classification runs data-parallel into byte flags (vector<bool>
  // packs bits, so concurrent chunk writes would race on shared words), and
  // a serial pass then appends the node lists in ascending order — the same
  // order the sequential loop produced, so the output is bit-identical at
  // any thread count.
  std::vector<unsigned char> reliable_flags(static_cast<size_t>(n), 0);
  std::vector<unsigned char> distill_flags(static_cast<size_t>(n), 0);
  parallel::ParallelFor(0, n, parallel::GrainForCost(8), [&](int64_t i0,
                                                             int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const size_t si = static_cast<size_t>(i);
      // Entropy-reliability, before the agreement filter.
      bool reliable_pre;
      if (train_mask[si]) {
        // Line 4 / Sec. 3.1: labeled nodes are reliable when (the configured
        // model's) prediction matches the known label.
        const int64_t pred =
            config.labeled_rule == LabeledReliabilityRule::kTeacherCorrect
                ? teacher_preds[si]
                : student_preds[si];
        reliable_pre = pred == labels[si];
      } else {
        reliable_pre = result.teacher_entropy[si] <= teacher_threshold;
      }
      const bool agree = teacher_preds[si] == student_preds[si];
      // Line 8: Vr drops nodes on which student and teacher disagree.
      const bool reliable =
          reliable_pre && (!config.require_agreement || agree);
      reliable_flags[si] = reliable ? 1 : 0;

      // Vb selection (see DistillTargetRule).
      const bool uncertain = result.student_entropy[si] >= student_threshold;
      switch (config.distill_rule) {
        case DistillTargetRule::kUncertainOnly:
          // Algorithm 1 line 9: drawn from the post-agreement Vr.
          distill_flags[si] = (reliable && uncertain) ? 1 : 0;
          break;
        case DistillTargetRule::kDisagreeOrUncertain:
          // Figures 3/5: teacher-reliable knowledge the student gets wrong
          // (disagrees) or is unsure about.
          distill_flags[si] = (reliable_pre && (!agree || uncertain)) ? 1 : 0;
          break;
        case DistillTargetRule::kAllReliable:
          distill_flags[si] = reliable_pre ? 1 : 0;
          break;
      }
    }
  });

  result.reliable.assign(static_cast<size_t>(n), false);
  for (int64_t i = 0; i < n; ++i) {
    const size_t si = static_cast<size_t>(i);
    if (reliable_flags[si] != 0) {
      result.reliable[si] = true;
      result.reliable_nodes.push_back(i);
    }
    if (distill_flags[si] != 0) result.distill_nodes.push_back(i);
  }
  return result;
}

std::vector<std::pair<int64_t, int64_t>> ComputeReliableEdges(
    const Graph& graph, const std::vector<bool>& reliable,
    const std::vector<int64_t>& student_predictions) {
  RDD_CHECK_EQ(static_cast<int64_t>(reliable.size()), graph.num_nodes());
  RDD_CHECK_EQ(static_cast<int64_t>(student_predictions.size()),
               graph.num_nodes());
  // Same pattern as the node pass above: data-parallel flagging, then a
  // serial append in edge order so the result is independent of threading.
  const std::vector<Edge>& edges = graph.edges();
  const int64_t m = static_cast<int64_t>(edges.size());
  std::vector<unsigned char> keep(static_cast<size_t>(m), 0);
  parallel::ParallelFor(0, m, parallel::GrainForCost(4), [&](int64_t e0,
                                                             int64_t e1) {
    for (int64_t k = e0; k < e1; ++k) {
      const Edge& e = edges[static_cast<size_t>(k)];
      const size_t u = static_cast<size_t>(e.u);
      const size_t v = static_cast<size_t>(e.v);
      // w_ij = A_ij * B_ij * C_ij (Eq. 5): linked, both reliable, same class.
      keep[static_cast<size_t>(k)] =
          (reliable[u] && reliable[v] &&
           student_predictions[u] == student_predictions[v])
              ? 1
              : 0;
    }
  });
  std::vector<std::pair<int64_t, int64_t>> reliable_edges;
  for (int64_t k = 0; k < m; ++k) {
    if (keep[static_cast<size_t>(k)] != 0) {
      reliable_edges.emplace_back(edges[static_cast<size_t>(k)].u,
                                  edges[static_cast<size_t>(k)].v);
    }
  }
  return reliable_edges;
}

std::vector<std::pair<int64_t, int64_t>> ComputeReliableEdges(
    const std::vector<std::pair<int64_t, int64_t>>& edges,
    const std::vector<bool>& reliable,
    const std::vector<int64_t>& student_predictions) {
  std::vector<std::pair<int64_t, int64_t>> reliable_edges;
  for (const auto& [u, v] : edges) {
    const size_t su = static_cast<size_t>(u);
    const size_t sv = static_cast<size_t>(v);
    RDD_CHECK_LT(su, reliable.size());
    RDD_CHECK_LT(sv, reliable.size());
    if (reliable[su] && reliable[sv] &&
        student_predictions[su] == student_predictions[sv]) {
      reliable_edges.emplace_back(u, v);
    }
  }
  return reliable_edges;
}

}  // namespace rdd
