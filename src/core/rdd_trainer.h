#ifndef RDD_CORE_RDD_TRAINER_H_
#define RDD_CORE_RDD_TRAINER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/rdd_config.h"
#include "core/teacher.h"
#include "data/dataset.h"
#include "models/graph_model.h"
#include "train/minibatch.h"
#include "train/trainer.h"

namespace rdd {

/// Per-student diagnostics captured at the student's final training epoch.
struct StudentDiagnostics {
  int64_t reliable_nodes = 0;   ///< |Vr|
  int64_t distill_nodes = 0;    ///< |Vb|
  int64_t reliable_edges = 0;   ///< |Er|
};

/// Outcome of a full RDD run.
struct RddResult {
  /// The final teacher H_T: the weighted ensemble of all T students. Its
  /// accuracy is the paper's "RDD(Ensemble)".
  Teacher teacher;
  /// Per-student training reports, in training order. The LAST student is
  /// the paper's "RDD(Single)" model.
  std::vector<TrainReport> reports;
  /// The trained student models themselves, in training order (same order
  /// as `reports`/`alphas`). Kept alive for checkpointing and distillation;
  /// shared_ptr keeps RddResult copyable.
  std::vector<std::shared_ptr<GraphModel>> students;
  /// Raw ensemble weights alpha_t (Eq. 12).
  std::vector<double> alphas;
  std::vector<StudentDiagnostics> diagnostics;

  double ensemble_test_accuracy = 0.0;
  double single_test_accuracy = 0.0;  ///< Last student's test accuracy.
  double average_member_test_accuracy = 0.0;
  double total_seconds = 0.0;
  /// Test accuracy of the ensemble after each member was added (element t
  /// is the accuracy of the first t+1 members) — the efficiency analysis of
  /// Table 9 reads how many members a method needs to reach a target.
  std::vector<double> ensemble_accuracy_after_member;
};

/// Runs Algorithm 3: trains `config.num_base_models` students, each under
/// the reliability-filtered supervision of the ensemble of its
/// predecessors, and returns the final teacher plus per-student metrics.
///
/// Contract: the result is a pure function of (dataset, context, config,
/// seed) — bit-identical at any RDD_NUM_THREADS, RDD_SIMD backend, pool
/// mode, and with metrics/tracing on or off (tests/memory_test.cc,
/// simd_test.cc, observe_test.cc each pin one axis on a full run).
///
/// Observability: with RDD_TRACE set, the run emits one "rdd/student" span
/// per Algorithm 3 iteration, nesting "rdd/teacher_views", per-epoch
/// reliability classification and loss-term spans, and the closing
/// "rdd/ensemble_update" — see DESIGN.md §9 for the span → algorithm map.
RddResult TrainRdd(const Dataset& dataset, const GraphContext& context,
                   const RddConfig& config, uint64_t seed);

/// Mini-batch Algorithm 3: the same student chain, but every student trains
/// over sampled (or sharded) GraphViews, and the reliability machinery runs
/// PER BATCH — node reliability (Algorithm 1) classifies the view's rows
/// with p-percent thresholds over the view, edge reliability (Algorithm 2)
/// filters the view's induced edge list, and the distillation set is
/// restricted to the batch's target rows so one epoch distills each node
/// once. Batches cover ALL nodes (not just labeled ones), since L2/Lreg act
/// mostly on unlabeled nodes. Loss terms are rescaled per batch so the
/// per-step L1 : L2 : Lreg balance matches full-batch training, keeping the
/// paper's beta/gamma grids meaningful.
///
/// Teacher views (the frozen ensemble's averaged probs/embeddings) and the
/// end-of-student ensemble update still run one full-graph forward per
/// student — O(num_nodes * num_classes) memory, the scale anchor being the
/// per-BATCH training activations this path eliminates.
///
/// Determinism contract matches TrainRdd, with the sampler's split streams
/// making batch composition a pure function of (mb_config.sampler_seed,
/// epoch) at any thread count.
RddResult TrainRddMiniBatch(const Dataset& dataset,
                            const GraphContext& context,
                            const RddConfig& config,
                            const MiniBatchConfig& mb_config, uint64_t seed);

/// Computes the ensemble weight alpha_t = 1 / sum_i I_t(x_i) Pr(x_i)
/// (Eq. 12) from a member's prediction entropy and the graph's PageRank.
/// The denominator is floored at a small epsilon so a perfectly confident
/// member cannot produce an unbounded weight.
double ComputeEnsembleWeight(const Matrix& probs,
                             const std::vector<double>& pagerank);

}  // namespace rdd

#endif  // RDD_CORE_RDD_TRAINER_H_
