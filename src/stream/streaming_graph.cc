#include "stream/streaming_graph.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "graph/normalize.h"
#include "observe/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace rdd::stream {

StreamingGraph::StreamingGraph(Dataset base)
    : dataset_(std::move(base)),
      last_timestamp_(std::numeric_limits<int64_t>::min()) {
  RebuildContext();
}

void StreamingGraph::RebuildContext() {
  context_ = GraphContext::FromDataset(dataset_);
}

Status StreamingGraph::Apply(const GraphDelta& delta) {
  observe::TraceSpan span("stream/apply_delta");
  if (delta.timestamp < last_timestamp_) {
    return Status::InvalidArgument(StrFormat(
        "delta timestamp %lld precedes the stream's last timestamp %lld",
        static_cast<long long>(delta.timestamp),
        static_cast<long long>(last_timestamp_)));
  }
  Status valid = ValidateDelta(delta, dataset_.NumNodes(),
                               dataset_.FeatureDim(), dataset_.num_classes);
  if (!valid.ok()) return valid;

  const int64_t old_nodes = dataset_.NumNodes();
  const int64_t new_nodes =
      old_nodes + static_cast<int64_t>(delta.added_nodes.size());

  if (!delta.added_nodes.empty() || !delta.added_edges.empty()) {
    // Canonicalize the incoming edges, then one-pass merge them into the
    // already-canonical edge list (set union; duplicates of existing edges
    // collapse). O(E + d log d) for d delta edges — no global re-sort.
    std::vector<Edge> incoming;
    incoming.reserve(delta.added_edges.size());
    for (const Edge& e : delta.added_edges) {
      incoming.push_back(e.u < e.v ? e : Edge{e.v, e.u});
    }
    std::sort(incoming.begin(), incoming.end(),
              [](const Edge& a, const Edge& b) {
                return a.u != b.u ? a.u < b.u : a.v < b.v;
              });
    incoming.erase(std::unique(incoming.begin(), incoming.end()),
                   incoming.end());

    const std::vector<Edge>& existing = dataset_.graph.edges();
    std::vector<Edge> merged;
    merged.reserve(existing.size() + incoming.size());
    auto less = [](const Edge& a, const Edge& b) {
      return a.u != b.u ? a.u < b.u : a.v < b.v;
    };
    std::set_union(existing.begin(), existing.end(), incoming.begin(),
                   incoming.end(), std::back_inserter(merged), less);
    dataset_.graph = Graph::FromCanonicalEdges(new_nodes, std::move(merged));
  }

  if (!delta.added_nodes.empty() || !delta.feature_updates.empty()) {
    // Row-wise CSR splice: unchanged rows copy their spans, updated rows
    // substitute their replacement, arriving rows append. O(nnz).
    std::vector<const std::vector<std::pair<int64_t, float>>*> replacement(
        static_cast<size_t>(old_nodes), nullptr);
    for (const FeatureUpdate& update : delta.feature_updates) {
      replacement[static_cast<size_t>(update.node)] = &update.features;
    }
    const SparseMatrix& old_features = dataset_.features;
    std::vector<int64_t> row_ptr(static_cast<size_t>(new_nodes) + 1, 0);
    std::vector<int64_t> col_idx;
    std::vector<float> values;
    col_idx.reserve(static_cast<size_t>(old_features.nnz()));
    values.reserve(static_cast<size_t>(old_features.nnz()));
    for (int64_t r = 0; r < old_nodes; ++r) {
      if (replacement[static_cast<size_t>(r)] != nullptr) {
        for (const auto& [col, value] : *replacement[static_cast<size_t>(r)]) {
          if (value == 0.0f) continue;  // CSR stores nonzeros only.
          col_idx.push_back(col);
          values.push_back(value);
        }
      } else {
        const int64_t begin = old_features.row_ptr()[static_cast<size_t>(r)];
        const int64_t end =
            old_features.row_ptr()[static_cast<size_t>(r) + 1];
        for (int64_t k = begin; k < end; ++k) {
          col_idx.push_back(old_features.col_idx()[static_cast<size_t>(k)]);
          values.push_back(old_features.values()[static_cast<size_t>(k)]);
        }
      }
      row_ptr[static_cast<size_t>(r) + 1] =
          static_cast<int64_t>(col_idx.size());
    }
    for (size_t a = 0; a < delta.added_nodes.size(); ++a) {
      for (const auto& [col, value] : delta.added_nodes[a].features) {
        if (value == 0.0f) continue;
        col_idx.push_back(col);
        values.push_back(value);
      }
      row_ptr[static_cast<size_t>(old_nodes) + a + 1] =
          static_cast<int64_t>(col_idx.size());
    }
    dataset_.features =
        SparseMatrix::FromCsr(new_nodes, old_features.cols(),
                              std::move(row_ptr), std::move(col_idx),
                              std::move(values));
    for (const NodeArrival& arrival : delta.added_nodes) {
      dataset_.labels.push_back(arrival.label);
    }
  }

  RebuildContext();
  ++version_;
  last_timestamp_ = delta.timestamp;
  return Status::Ok();
}

std::vector<int64_t> StreamingGraph::AffectedNodes(
    const GraphDelta& delta, int hops, int64_t num_nodes_before) const {
  RDD_CHECK_GE(hops, 0);
  std::vector<int64_t> frontier = TouchedNodes(delta, num_nodes_before);
  std::vector<bool> seen(static_cast<size_t>(dataset_.NumNodes()), false);
  std::vector<int64_t> ball;
  for (int64_t v : frontier) {
    RDD_CHECK_LT(v, dataset_.NumNodes());
    seen[static_cast<size_t>(v)] = true;
    ball.push_back(v);
  }
  for (int hop = 0; hop < hops; ++hop) {
    std::vector<int64_t> next;
    for (int64_t v : frontier) {
      for (int64_t nbr : dataset_.graph.Neighbors(v)) {
        if (!seen[static_cast<size_t>(nbr)]) {
          seen[static_cast<size_t>(nbr)] = true;
          next.push_back(nbr);
        }
      }
    }
    ball.insert(ball.end(), next.begin(), next.end());
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  std::sort(ball.begin(), ball.end());
  return ball;
}

}  // namespace rdd::stream
