#ifndef RDD_STREAM_INCREMENTAL_RDD_H_
#define RDD_STREAM_INCREMENTAL_RDD_H_

#include <cstdint>
#include <vector>

#include "core/rdd_config.h"
#include "core/rdd_trainer.h"
#include "stream/graph_delta.h"
#include "stream/streaming_graph.h"

namespace rdd::stream {

/// Settings for one incremental retrain after a delta.
struct IncrementalConfig {
  /// k: the retrain region is the k-hop neighborhood of the nodes the delta
  /// touched. Rows inside hop k-1 are TARGET rows; the hop-k shell is the
  /// frontier that anchors the region to the unchanged graph.
  int hops = 2;
  /// Fine-tune budget per student — a small fraction of a from-scratch run:
  /// every student starts from its previously converged weights, so a few
  /// epochs over the delta region recover (bench/stream_train: match) the
  /// full-retrain accuracy.
  int max_epochs = 10;
  /// Early stopping patience, counted in EVALUATIONS (see eval_every).
  int patience = 8;
  /// Full-graph validation runs every eval_every epochs (one full forward
  /// costs far more than a region epoch, so it is amortized exactly like
  /// the condensed trainer's EvalHooks::eval_every).
  int eval_every = 5;
  /// Distillation weight multiplier for frontier rows. Frontier rows sit on
  /// the boundary to the unchanged graph; upweighting their mimic loss pins
  /// the updated region to the teacher's (previous ensemble's) behavior
  /// there, so a local delta cannot drag down far-away predictions.
  float frontier_boost = 2.0f;
};

/// Reads RDD_STREAM_HOPS, RDD_STREAM_EPOCHS, and RDD_STREAM_BOOST over the
/// defaults above (see the README env table).
IncrementalConfig IncrementalConfigFromEnv();

/// Outcome of one incremental retrain.
struct IncrementalResult {
  /// Same shape as a from-scratch TrainRdd result: updated students,
  /// rebuilt teacher, per-student reports, accuracies on the CURRENT graph.
  RddResult result;
  /// True when the delta was empty: `result` is the previous result,
  /// returned unchanged (byte-for-byte — no RNG draw, no forward pass).
  bool noop = false;
  int64_t affected_nodes = 0;  ///< |k-hop ball| (targets + frontier).
  int64_t target_nodes = 0;    ///< Rows actually fine-tuned (inner ball).
  double total_seconds = 0.0;
};

/// Warm-start retrain of a previously trained RDD ensemble after `delta`
/// was applied to `stream` (Apply first, then call this). Instead of
/// re-running Algorithm 3 from scratch, every student is rebuilt over the
/// new graph with its OLD weights restored (parameters are
/// view-independent, so they transfer verbatim) and fine-tuned only over
/// the induced view of the delta's k-hop neighborhood, with Algorithms 1-2
/// (node/edge reliability) running per epoch on that view. The teacher for
/// student t is the full T-member ensemble with members < t already
/// updated — student 0 distills from the previous ensemble outright, which
/// is what anchors the warm start. Ensemble weights (Eq. 12) are recomputed
/// from PageRank of the NEW graph.
///
/// `previous` must come from the same RddConfig (arch mismatch aborts via
/// RestoreParameters' shape checks). `num_nodes_before` is the node count
/// before Apply (arrival ids depend on it).
///
/// Contract: a pure function of its arguments — bit-identical at any
/// RDD_NUM_THREADS, RDD_SIMD backend, pool mode, and metrics/tracing
/// on/off, like TrainRdd. An empty delta returns `previous` unchanged.
IncrementalResult IncrementalRddOnDelta(const StreamingGraph& stream,
                                        const GraphDelta& delta,
                                        int64_t num_nodes_before,
                                        const RddResult& previous,
                                        const RddConfig& config,
                                        const IncrementalConfig& inc,
                                        uint64_t seed);

}  // namespace rdd::stream

#endif  // RDD_STREAM_INCREMENTAL_RDD_H_
