#ifndef RDD_STREAM_GRAPH_DELTA_H_
#define RDD_STREAM_GRAPH_DELTA_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "graph/graph.h"
#include "util/status.h"

namespace rdd::stream {

/// One node arriving in a delta. Node ids are assigned consecutively from
/// the graph's current node count, in the order arrivals appear in the
/// delta; the sparse feature row must be sorted by column with no
/// duplicates. The label is ground truth carried for evaluation — arriving
/// nodes join the UNLABELED pool (their labels are never trained on unless
/// a later split revision adds them; this module never does).
struct NodeArrival {
  /// Sparse feature row: (column, value) pairs, strictly increasing columns.
  std::vector<std::pair<int64_t, float>> features;
  int64_t label = 0;
};

/// Full replacement of one existing node's feature row.
struct FeatureUpdate {
  int64_t node = 0;
  /// Replacement row, same format as NodeArrival::features.
  std::vector<std::pair<int64_t, float>> features;
};

/// One timestamped batch of graph growth: nodes that appear, undirected
/// edges that appear (may reference nodes arriving in this same delta), and
/// feature rows that change. A delta is plain data — validation happens at
/// apply time against the stream's current shape (ValidateDelta /
/// StreamingGraph::Apply). Deltas are value types: copyable, no ownership
/// of anything beyond their vectors, safe to send across threads.
struct GraphDelta {
  /// Arrival time. StreamingGraph::Apply requires timestamps to be
  /// non-decreasing across the deltas it is fed.
  int64_t timestamp = 0;
  std::vector<NodeArrival> added_nodes;
  /// Endpoints in [0, current_nodes + added_nodes.size()); duplicates of
  /// existing edges are merged away, self-loops rejected.
  std::vector<Edge> added_edges;
  std::vector<FeatureUpdate> feature_updates;

  bool empty() const {
    return added_nodes.empty() && added_edges.empty() &&
           feature_updates.empty();
  }
};

/// Checks `delta` against a graph of `num_nodes` nodes with `feature_dim`
/// feature columns and `num_classes` classes: edge endpoints in range and
/// not self-loops, feature columns sorted/strictly-increasing/in-range,
/// update targets existing nodes (each at most once), labels in range.
/// Pure; does not modify anything.
Status ValidateDelta(const GraphDelta& delta, int64_t num_nodes,
                     int64_t feature_dim, int64_t num_classes);

/// The sorted set of PRESENT-graph node ids a delta touches directly:
/// endpoints of added edges, feature-update targets, and the arriving nodes
/// themselves (as post-apply ids). Input to the k-hop expansion
/// StreamingGraph::AffectedNodes performs.
std::vector<int64_t> TouchedNodes(const GraphDelta& delta,
                                  int64_t num_nodes_before);

/// A replayable stream: the base snapshot plus the delta sequence that
/// grows it back to the full dataset. Produced by SplitIntoStream.
struct ReplayStream {
  Dataset base;
  std::vector<GraphDelta> deltas;
};

/// Options for SplitIntoStream.
struct StreamSplitOptions {
  /// Fraction of the full graph's edges held out of the base snapshot and
  /// replayed through deltas (edges incident to held-out nodes are always
  /// replayed, on top of this fraction of the remaining edges).
  double edge_holdout = 0.05;
  /// Fraction of the full graph's UNSPLIT nodes (not train/val/test) held
  /// out and replayed as node arrivals. 0 gives an edge-only stream.
  double node_holdout = 0.0;
  /// Number of deltas the held-out material is spread over (>= 1); each
  /// delta gets timestamp = its index.
  int num_deltas = 1;
};

/// Splits a finished dataset into a smaller base snapshot plus a delta
/// stream that replays the held-out nodes/edges, for benchmarking and
/// testing incremental retraining against the from-scratch answer. Held-out
/// nodes are relabeled to the HIGHEST ids; only unsplit nodes are ever held
/// out, so the split's train/val/test sets survive as the same nodes (under
/// remapped ids) and accuracy on the base and on the fully-replayed graph
/// are measured on the same split. Deterministic: a pure function of
/// (full, options, seed).
/// Replaying every delta in order reproduces the full dataset's graph,
/// features, and labels up to the node relabeling.
ReplayStream SplitIntoStream(const Dataset& full,
                             const StreamSplitOptions& options, uint64_t seed);

}  // namespace rdd::stream

#endif  // RDD_STREAM_GRAPH_DELTA_H_
