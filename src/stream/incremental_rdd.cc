#include "stream/incremental_rdd.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "autograd/ops.h"
#include "core/reliability.h"
#include "core/teacher.h"
#include "graph/graph_view.h"
#include "graph/pagerank.h"
#include "memory/workspace.h"
#include "models/model_factory.h"
#include "nn/metrics.h"
#include "nn/optimizer.h"
#include "observe/trace.h"
#include "tensor/ops.h"
#include "train/trainer.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace rdd::stream {

IncrementalConfig IncrementalConfigFromEnv() {
  IncrementalConfig config;
  config.hops = env::IntEnv("RDD_STREAM_HOPS", config.hops, 0, 16);
  config.max_epochs =
      env::IntEnv("RDD_STREAM_EPOCHS", config.max_epochs, 1, 10000);
  config.frontier_boost = static_cast<float>(env::DoubleEnv(
      "RDD_STREAM_BOOST", static_cast<double>(config.frontier_boost), 0.0,
      1000.0));
  return config;
}

namespace {

/// Rows of `m` in view-local order (copy slice; matches the rdd_trainer
/// helper of the same name).
Matrix GatherMatrixRows(const Matrix& m, const GraphView& view) {
  if (view.full()) return m;
  Matrix out(view.num_nodes, m.cols());
  for (int64_t i = 0; i < view.num_nodes; ++i) {
    const float* src = m.RowData(view.GlobalId(i));
    float* dst = out.RowData(i);
    for (int64_t c = 0; c < m.cols(); ++c) dst[c] = src[c];
  }
  return out;
}

std::vector<bool> AllReliable(int64_t n) {
  return std::vector<bool>(static_cast<size_t>(n), true);
}

std::vector<int64_t> AllNodes(int64_t n) {
  std::vector<int64_t> nodes(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) nodes[static_cast<size_t>(i)] = i;
  return nodes;
}

/// Clones a trained student onto the NEW graph: builds a fresh model over
/// `context` (dropout stream seeded by `seed`) and copies the old weights
/// in. Parameters are view- and graph-size-independent, so they transfer
/// verbatim; an architecture mismatch aborts in RestoreParameters.
std::unique_ptr<GraphModel> WarmClone(const GraphContext& context,
                                      const ModelConfig& arch,
                                      GraphModel* previous, uint64_t seed) {
  auto model = BuildModel(context, arch, seed);
  std::vector<Variable> params = model->Parameters();
  RestoreParameters(SnapshotParameters(previous->Parameters()), &params);
  return model;
}

/// The fine-tune inner loop: TrainWithLoss's epoch structure (Adam, early
/// stopping with amortized evaluation, best-weight restore), but the
/// training forward runs over the REGION view while validation and the
/// final test metric run over the full graph — the same train-small /
/// validate-full split the condensed trainer uses via EvalHooks.
TrainReport FineTuneOnView(
    GraphModel* model, const Dataset& dataset, const GraphView& view,
    const TrainConfig& train, const IncrementalConfig& inc,
    const std::function<Variable(const ModelOutput&, int)>& loss_fn) {
  WallTimer timer;
  memory::Workspace workspace;
  Adam optimizer(model->Parameters(), train.lr, train.weight_decay);

  TrainReport report;
  report.val_history.reserve(static_cast<size_t>(inc.max_epochs));
  std::vector<Matrix> best_params;
  int evals_since_best = 0;
  double last_val = 0.0;
  for (int epoch = 0; epoch < inc.max_epochs; ++epoch) {
    observe::TraceSpan epoch_span("stream/finetune_epoch", epoch);
    ModelOutput output = model->Forward(view, /*training=*/true);
    Variable loss = loss_fn(output, epoch);
    {
      observe::TraceSpan span("train/backward_step");
      loss.Backward();
      optimizer.Step();
    }
    const bool evaluate =
        epoch % inc.eval_every == 0 || epoch + 1 == inc.max_epochs;
    if (evaluate) {
      observe::TraceSpan span("train/validate");
      last_val = EvaluateAccuracy(model, dataset, dataset.split.val);
    }
    report.val_history.push_back(last_val);
    report.epochs_run = epoch + 1;
    if (!evaluate) continue;
    if (last_val > report.best_val_accuracy) {
      report.best_val_accuracy = last_val;
      evals_since_best = 0;
      if (train.restore_best) {
        const std::vector<Variable> params = model->Parameters();
        if (best_params.empty()) {
          best_params = SnapshotParameters(params);
        } else {
          for (size_t i = 0; i < best_params.size(); ++i) {
            best_params[i] = params[i].value();
          }
        }
      }
    } else if (++evals_since_best >= inc.patience) {
      break;
    }
  }
  if (train.restore_best && !best_params.empty()) {
    std::vector<Variable> params = model->Parameters();
    RestoreParameters(std::move(best_params), &params);
  }
  report.test_accuracy =
      EvaluateAccuracy(model, dataset, dataset.split.test);
  report.train_seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace

IncrementalResult IncrementalRddOnDelta(const StreamingGraph& stream,
                                        const GraphDelta& delta,
                                        int64_t num_nodes_before,
                                        const RddResult& previous,
                                        const RddConfig& config,
                                        const IncrementalConfig& inc,
                                        uint64_t seed) {
  const int num_students = static_cast<int>(previous.students.size());
  RDD_CHECK_GT(num_students, 0);
  WallTimer timer;
  IncrementalResult out;
  if (delta.empty()) {
    // Byte-for-byte no-op: no RNG draw, no forward pass, no copy-on-write
    // churn — the previous result is handed back as-is.
    out.result = previous;
    out.noop = true;
    out.total_seconds = timer.ElapsedSeconds();
    return out;
  }

  observe::TraceSpan span("stream/incremental_rdd");
  const Dataset& dataset = stream.dataset();
  const GraphContext& context = stream.context();

  // The retrain region: target rows are the (k-1)-hop ball around the
  // delta, the hop-k shell rides along as upweighted frontier anchors.
  const std::vector<int64_t> inner =
      stream.AffectedNodes(delta, std::max(inc.hops - 1, 0),
                           num_nodes_before);
  const std::vector<int64_t> ball =
      stream.AffectedNodes(delta, inc.hops, num_nodes_before);
  std::vector<int64_t> shell;
  std::set_difference(ball.begin(), ball.end(), inner.begin(), inner.end(),
                      std::back_inserter(shell));
  std::vector<int64_t> region = inner;
  region.insert(region.end(), shell.begin(), shell.end());
  const int64_t num_targets = static_cast<int64_t>(inner.size());
  out.affected_nodes = static_cast<int64_t>(ball.size());
  out.target_nodes = num_targets;
  RDD_CHECK_GT(num_targets, 0);

  memory::Workspace workspace;
  Rng seeder(seed);
  std::vector<uint64_t> student_seeds(static_cast<size_t>(num_students));
  for (uint64_t& s : student_seeds) s = seeder.NextU64();

  const GraphView view =
      MakeInducedView(dataset.graph, *context.features, context.num_classes,
                      std::move(region), num_targets);
  const std::vector<int64_t> labels_v = view.GatherInt64(dataset.labels);
  const std::vector<bool> train_mask_v = view.GatherMask(dataset.TrainMask());
  std::vector<int64_t> labeled_targets;
  for (int64_t i = 0; i < view.num_targets; ++i) {
    if (train_mask_v[static_cast<size_t>(i)]) labeled_targets.push_back(i);
  }
  const std::vector<std::pair<int64_t, int64_t>> view_edges = ViewEdges(view);
  // Distillation weights by view row: frontier rows carry inc.frontier_boost
  // so the region's boundary is pinned to the teacher hardest.
  std::vector<float> distill_weights(static_cast<size_t>(view.num_nodes),
                                     1.0f);
  for (int64_t i = view.num_targets; i < view.num_nodes; ++i) {
    distill_weights[static_cast<size_t>(i)] = inc.frontier_boost;
  }

  const std::vector<double> pagerank = PageRank(dataset.graph);
  const bool use_l2 = config.gamma_initial != 0.0f;
  const bool use_lreg = config.beta != 0.0f;
  const float k = static_cast<float>(context.num_classes);
  // Same per-batch rescaling as TrainRddMiniBatch: sum-reduced terms over
  // the region are scaled back up by total/region so the per-step
  // L1 : L2 : Lreg balance matches the full-batch values the beta/gamma
  // grids were tuned on.
  const float upscale = static_cast<float>(dataset.NumNodes()) /
                        static_cast<float>(view.num_targets);
  const float lreg_normalizer =
      static_cast<float>(std::max<size_t>(view_edges.size(), size_t{1})) * k;

  // Warm-cloned members, all on the new graph, plus their cached outputs.
  // The teacher for student t is the FULL num_students-member ensemble with
  // members < t already replaced by their updated versions (member weights
  // frozen at the previous alphas while the chain runs) — so student 0
  // distills from the previous ensemble outright, which is what anchors the
  // warm start, and later students see progressively fresher teachers.
  std::vector<std::unique_ptr<GraphModel>> students;
  std::vector<Matrix> member_probs(static_cast<size_t>(num_students));
  std::vector<Matrix> member_embeddings(static_cast<size_t>(num_students));
  for (int t = 0; t < num_students; ++t) {
    students.push_back(WarmClone(context, config.base_model,
                                 previous.students[static_cast<size_t>(t)].get(),
                                 student_seeds[static_cast<size_t>(t)]));
    const ModelOutput warm =
        students[static_cast<size_t>(t)]->Forward(/*training=*/false);
    member_probs[static_cast<size_t>(t)] =
        SoftmaxRows(warm.logits.value());
    member_embeddings[static_cast<size_t>(t)] = warm.embedding.value();
  }
  const std::vector<double>& prev_alphas = previous.alphas;
  RDD_CHECK_EQ(prev_alphas.size(), static_cast<size_t>(num_students));

  RddResult& result = out.result;
  for (int t = 0; t < num_students; ++t) {
    observe::TraceSpan student_span("stream/student", t);
    GraphModel* student = students[static_cast<size_t>(t)].get();
    StudentDiagnostics diag;

    Matrix teacher_probs;
    Matrix teacher_embeddings;
    {
      observe::TraceSpan teacher_span("rdd/teacher_views");
      Teacher ensemble;
      for (int i = 0; i < num_students; ++i) {
        ensemble.AddMember(member_probs[static_cast<size_t>(i)],
                           member_embeddings[static_cast<size_t>(i)],
                           prev_alphas[static_cast<size_t>(i)]);
      }
      teacher_probs = ensemble.PredictProbs();
      teacher_embeddings = ensemble.PredictEmbeddings();
    }
    const Matrix teacher_probs_v = GatherMatrixRows(teacher_probs, view);
    const Matrix teacher_embeddings_v =
        GatherMatrixRows(teacher_embeddings, view);

    auto loss_fn = [&, student](const ModelOutput& output, int epoch) {
      // Algorithm 1 over the region, refreshed each epoch from the current
      // student's eval-mode predictions; p-percent thresholds are quantiles
      // over the view's rows.
      const Matrix student_probs = SoftmaxRows(
          student->Forward(view, /*training=*/false).logits.value());
      std::vector<bool> reliable;
      std::vector<int64_t> distill_nodes;
      if (config.use_node_reliability) {
        observe::TraceSpan rel_span("rdd/node_reliability", epoch);
        NodeReliability rel =
            ComputeNodeReliability(teacher_probs_v, student_probs, labels_v,
                                   train_mask_v, config.reliability);
        reliable = std::move(rel.reliable);
        distill_nodes = std::move(rel.distill_nodes);
      } else {
        reliable = AllReliable(view.num_nodes);
        distill_nodes = AllNodes(view.num_nodes);
      }
      // Unlike the mini-batch trainer, frontier rows are KEPT in the
      // distillation set: they are exactly the rows whose behavior must not
      // move, and distill_weights upweights them.

      std::vector<Variable> terms;
      std::vector<float> coeffs;
      terms.push_back(ag::SoftmaxCrossEntropy(output.logits, labels_v,
                                              labeled_targets,
                                              ag::Reduction::kMean));
      coeffs.push_back(1.0f);
      // gamma is NOT annealed here: Eq. 14's ramp exists to keep an
      // immature teacher from dominating early training, and a warm start
      // begins with a converged teacher.
      if (use_l2 && !distill_nodes.empty() && config.gamma_initial > 0.0f) {
        observe::TraceSpan l2_span("rdd/node_distill_loss");
        if (config.distill_loss == DistillLoss::kEmbeddingMse) {
          // The MSE reading has no weighted variant; the frontier anchor
          // comes from membership alone.
          terms.push_back(ag::RowSquaredError(output.embedding,
                                              teacher_embeddings_v,
                                              distill_nodes,
                                              ag::Reduction::kSum));
          coeffs.push_back(
              config.gamma_initial * upscale /
              (static_cast<float>(dataset.split.train.size()) * k));
        } else {
          constexpr float kDistillScale = 16.0f;
          terms.push_back(ag::WeightedSoftCrossEntropy(
              output.logits, teacher_probs_v, distill_nodes, distill_weights,
              ag::Reduction::kSum));
          coeffs.push_back(config.gamma_initial * kDistillScale * upscale /
                           static_cast<float>(dataset.split.train.size()));
        }
      }
      if (use_lreg) {
        observe::TraceSpan lreg_span("rdd/edge_reg_loss");
        const std::vector<int64_t> student_preds = ArgmaxRows(student_probs);
        std::vector<std::pair<int64_t, int64_t>> edges;
        {
          observe::TraceSpan edges_span("rdd/edge_reliability", epoch);
          edges = config.use_edge_reliability
                      ? ComputeReliableEdges(view_edges, reliable,
                                             student_preds)
                      : view_edges;
        }
        diag.reliable_edges = static_cast<int64_t>(edges.size());
        if (!edges.empty()) {
          if (config.edge_reg_target == EdgeRegTarget::kEmbedding) {
            terms.push_back(ag::EdgeLaplacian(output.embedding, edges,
                                              ag::Reduction::kSum));
          } else {
            terms.push_back(ag::EdgeLaplacian(ag::Softmax(output.logits),
                                              edges, ag::Reduction::kSum));
          }
          coeffs.push_back(config.beta / lreg_normalizer);
        }
      }
      diag.reliable_nodes = static_cast<int64_t>(
          std::count(reliable.begin(), reliable.end(), true));
      diag.distill_nodes = static_cast<int64_t>(distill_nodes.size());
      return ag::WeightedSum(terms, coeffs);
    };
    result.reports.push_back(
        FineTuneOnView(student, dataset, view, config.train, inc, loss_fn));

    // Publish the updated member so students > t distill from it.
    observe::TraceSpan ensemble_span("rdd/ensemble_update", t);
    const ModelOutput final_output = student->Forward(/*training=*/false);
    member_probs[static_cast<size_t>(t)] =
        SoftmaxRows(final_output.logits.value());
    member_embeddings[static_cast<size_t>(t)] = final_output.embedding.value();
    result.diagnostics.push_back(diag);
  }

  // Rebuild the served ensemble from the updated members, with Eq. 12
  // weights recomputed on the NEW graph's PageRank.
  result.single_test_accuracy =
      Accuracy(member_probs.back(), dataset.labels, dataset.split.test);
  for (int t = 0; t < num_students; ++t) {
    Matrix& probs = member_probs[static_cast<size_t>(t)];
    const double alpha = config.use_entropy_pagerank_weights
                             ? ComputeEnsembleWeight(probs, pagerank)
                             : 1.0;
    result.alphas.push_back(alpha);
    result.teacher.AddMember(
        std::move(probs),
        std::move(member_embeddings[static_cast<size_t>(t)]), alpha);
    result.students.push_back(std::move(students[static_cast<size_t>(t)]));
    result.ensemble_accuracy_after_member.push_back(
        result.teacher.Accuracy(dataset.labels, dataset.split.test));
  }
  result.ensemble_test_accuracy =
      result.teacher.Accuracy(dataset.labels, dataset.split.test);
  result.average_member_test_accuracy =
      result.teacher.AverageMemberAccuracy(dataset.labels,
                                           dataset.split.test);
  result.total_seconds = timer.ElapsedSeconds();
  out.total_seconds = result.total_seconds;
  return out;
}

}  // namespace rdd::stream
