#ifndef RDD_STREAM_STREAMING_GRAPH_H_
#define RDD_STREAM_STREAMING_GRAPH_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "models/graph_model.h"
#include "stream/graph_delta.h"
#include "util/status.h"

namespace rdd::stream {

/// A dataset + GraphContext pair that grows in place as timestamped deltas
/// arrive.
///
/// Contract (the same one GraphView pins for induced sub-views): after any
/// sequence of Apply calls, `context()` is BIT-IDENTICAL to
/// `GraphContext::FromDataset(dataset())` built from scratch — same CSR
/// arrays, same normalized adjacency values, at any thread count and SIMD
/// backend (tests/stream_test.cc pins this, and the final state is also
/// invariant to how one edge set is batched across deltas). Apply merges
/// the delta into the canonical edge list in O(E) (no global re-sort, see
/// Graph::FromCanonicalEdges), splices feature rows in O(nnz), and
/// recomputes the two degree-dependent propagation matrices.
///
/// Ownership: the context's matrices are fresh shared_ptrs after every
/// Apply; models built over an older context keep their (immutable) old
/// matrices alive — a model is never invalidated mid-forward by a delta.
///
/// Thread-safety: NOT thread-safe. One writer must own the stream;
/// publishing an updated model to concurrent readers is the serving
/// daemon's job (serve/daemon.h hot-swap), not this class's.
class StreamingGraph {
 public:
  /// Starts the stream from a base snapshot.
  explicit StreamingGraph(Dataset base);

  const Dataset& dataset() const { return dataset_; }
  const GraphContext& context() const { return context_; }

  /// Number of deltas applied so far.
  int64_t version() const { return version_; }
  /// Timestamp of the last applied delta (minimum int64 before the first).
  int64_t last_timestamp() const { return last_timestamp_; }

  /// Applies one delta in place. InvalidArgument (with the stream
  /// unchanged) when the delta fails ValidateDelta against the current
  /// shape or its timestamp precedes last_timestamp(). An empty delta is a
  /// no-op apart from advancing version() and last_timestamp().
  Status Apply(const GraphDelta& delta);

  /// The sorted k-hop neighborhood (on the CURRENT, post-Apply graph) of
  /// the nodes `delta` touched: the region IncrementalRdd re-trains over.
  /// `hops` = 0 returns just the touched nodes. Pure.
  std::vector<int64_t> AffectedNodes(const GraphDelta& delta, int hops,
                                     int64_t num_nodes_before) const;

 private:
  void RebuildContext();

  Dataset dataset_;
  GraphContext context_;
  int64_t version_ = 0;
  int64_t last_timestamp_;
};

}  // namespace rdd::stream

#endif  // RDD_STREAM_STREAMING_GRAPH_H_
