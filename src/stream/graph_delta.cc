#include "stream/graph_delta.h"

#include <algorithm>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace rdd::stream {

namespace {

Status ValidateFeatureRow(
    const std::vector<std::pair<int64_t, float>>& features,
    int64_t feature_dim, const char* what) {
  for (size_t i = 0; i < features.size(); ++i) {
    const int64_t col = features[i].first;
    if (col < 0 || col >= feature_dim) {
      return Status::InvalidArgument(
          StrFormat("%s: feature column %lld outside [0, %lld)", what,
                    static_cast<long long>(col),
                    static_cast<long long>(feature_dim)));
    }
    if (i > 0 && features[i - 1].first >= col) {
      return Status::InvalidArgument(StrFormat(
          "%s: feature columns must be strictly increasing", what));
    }
  }
  return Status::Ok();
}

}  // namespace

Status ValidateDelta(const GraphDelta& delta, int64_t num_nodes,
                     int64_t feature_dim, int64_t num_classes) {
  const int64_t new_total =
      num_nodes + static_cast<int64_t>(delta.added_nodes.size());
  for (const NodeArrival& arrival : delta.added_nodes) {
    Status s = ValidateFeatureRow(arrival.features, feature_dim, "arrival");
    if (!s.ok()) return s;
    if (arrival.label < 0 || arrival.label >= num_classes) {
      return Status::InvalidArgument(
          StrFormat("arrival label %lld outside [0, %lld)",
                    static_cast<long long>(arrival.label),
                    static_cast<long long>(num_classes)));
    }
  }
  for (const Edge& e : delta.added_edges) {
    if (e.u < 0 || e.u >= new_total || e.v < 0 || e.v >= new_total) {
      return Status::InvalidArgument(
          StrFormat("edge (%lld, %lld) outside [0, %lld)",
                    static_cast<long long>(e.u),
                    static_cast<long long>(e.v),
                    static_cast<long long>(new_total)));
    }
    if (e.u == e.v) {
      return Status::InvalidArgument(StrFormat(
          "self-loop on node %lld", static_cast<long long>(e.u)));
    }
  }
  std::vector<int64_t> updated;
  updated.reserve(delta.feature_updates.size());
  for (const FeatureUpdate& update : delta.feature_updates) {
    if (update.node < 0 || update.node >= num_nodes) {
      return Status::InvalidArgument(StrFormat(
          "feature update targets node %lld outside the existing [0, %lld)",
          static_cast<long long>(update.node),
          static_cast<long long>(num_nodes)));
    }
    Status s = ValidateFeatureRow(update.features, feature_dim, "update");
    if (!s.ok()) return s;
    updated.push_back(update.node);
  }
  std::sort(updated.begin(), updated.end());
  if (std::adjacent_find(updated.begin(), updated.end()) != updated.end()) {
    return Status::InvalidArgument(
        "a delta may update each node's features at most once");
  }
  return Status::Ok();
}

std::vector<int64_t> TouchedNodes(const GraphDelta& delta,
                                  int64_t num_nodes_before) {
  std::vector<int64_t> touched;
  touched.reserve(delta.added_nodes.size() + 2 * delta.added_edges.size() +
                  delta.feature_updates.size());
  for (size_t i = 0; i < delta.added_nodes.size(); ++i) {
    touched.push_back(num_nodes_before + static_cast<int64_t>(i));
  }
  for (const Edge& e : delta.added_edges) {
    touched.push_back(e.u);
    touched.push_back(e.v);
  }
  for (const FeatureUpdate& update : delta.feature_updates) {
    touched.push_back(update.node);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return touched;
}

ReplayStream SplitIntoStream(const Dataset& full,
                             const StreamSplitOptions& options,
                             uint64_t seed) {
  RDD_CHECK_GE(options.num_deltas, 1);
  RDD_CHECK_GE(options.edge_holdout, 0.0);
  RDD_CHECK_LE(options.edge_holdout, 1.0);
  RDD_CHECK_GE(options.node_holdout, 0.0);
  RDD_CHECK_LE(options.node_holdout, 1.0);
  const int64_t n = full.NumNodes();
  Rng rng(seed);

  // Split members are pinned to the base snapshot; only unsplit nodes may
  // be held out, so base and fully-replayed accuracy use the same split.
  std::vector<bool> in_split(static_cast<size_t>(n), false);
  for (int64_t v : full.split.train) in_split[static_cast<size_t>(v)] = true;
  for (int64_t v : full.split.val) in_split[static_cast<size_t>(v)] = true;
  for (int64_t v : full.split.test) in_split[static_cast<size_t>(v)] = true;
  std::vector<int64_t> unsplit;
  for (int64_t v = 0; v < n; ++v) {
    if (!in_split[static_cast<size_t>(v)]) unsplit.push_back(v);
  }

  const int64_t num_holdout_nodes = static_cast<int64_t>(
      options.node_holdout * static_cast<double>(unsplit.size()));
  std::vector<bool> held_node(static_cast<size_t>(n), false);
  {
    const std::vector<int64_t> picks = rng.SampleWithoutReplacement(
        static_cast<int64_t>(unsplit.size()), num_holdout_nodes);
    for (int64_t p : picks) {
      held_node[static_cast<size_t>(unsplit[static_cast<size_t>(p)])] = true;
    }
  }

  // Relabel: kept nodes keep relative order in [0, kept); held-out nodes
  // take the highest ids in ascending original order (= arrival order).
  std::vector<int64_t> old_to_new(static_cast<size_t>(n), -1);
  std::vector<int64_t> new_to_old;
  new_to_old.reserve(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    if (!held_node[static_cast<size_t>(v)]) {
      old_to_new[static_cast<size_t>(v)] =
          static_cast<int64_t>(new_to_old.size());
      new_to_old.push_back(v);
    }
  }
  const int64_t kept = static_cast<int64_t>(new_to_old.size());
  for (int64_t v = 0; v < n; ++v) {
    if (held_node[static_cast<size_t>(v)]) {
      old_to_new[static_cast<size_t>(v)] =
          static_cast<int64_t>(new_to_old.size());
      new_to_old.push_back(v);
    }
  }

  // Arrival schedule: held-out node (new id kept + i) arrives in delta
  // floor(i * num_deltas / holdout_count); kept nodes are in the base
  // (delta -1). Every delta gets a near-equal share.
  auto arrival_delta = [&](int64_t new_id) -> int {
    if (new_id < kept) return -1;
    if (num_holdout_nodes == 0) return -1;
    return static_cast<int>((new_id - kept) *
                            static_cast<int64_t>(options.num_deltas) /
                            num_holdout_nodes);
  };

  // Remap + recanonicalize edges, then route each to the base or a delta.
  std::vector<Edge> base_edges;
  std::vector<Edge> kept_kept_candidates;  // Both endpoints in the base.
  std::vector<std::vector<Edge>> delta_edges(
      static_cast<size_t>(options.num_deltas));
  for (const Edge& old_edge : full.graph.edges()) {
    Edge e{old_to_new[static_cast<size_t>(old_edge.u)],
           old_to_new[static_cast<size_t>(old_edge.v)]};
    if (e.u > e.v) std::swap(e.u, e.v);
    const int du = arrival_delta(e.u);
    const int dv = arrival_delta(e.v);
    if (du < 0 && dv < 0) {
      kept_kept_candidates.push_back(e);
    } else {
      delta_edges[static_cast<size_t>(std::max({du, dv, 0}))].push_back(e);
    }
  }
  // Hold out a fraction of the kept-kept edges, spread evenly (shuffled)
  // over the deltas; the rest form the base edge list.
  {
    const int64_t num_held_edges = static_cast<int64_t>(
        options.edge_holdout *
        static_cast<double>(kept_kept_candidates.size()));
    std::vector<int64_t> picks = rng.SampleWithoutReplacement(
        static_cast<int64_t>(kept_kept_candidates.size()), num_held_edges);
    std::vector<bool> held_edge(kept_kept_candidates.size(), false);
    for (size_t i = 0; i < picks.size(); ++i) {
      held_edge[static_cast<size_t>(picks[static_cast<size_t>(i)])] = true;
      delta_edges[i % static_cast<size_t>(options.num_deltas)].push_back(
          kept_kept_candidates[static_cast<size_t>(
              picks[static_cast<size_t>(i)])]);
    }
    for (size_t i = 0; i < kept_kept_candidates.size(); ++i) {
      if (!held_edge[i]) base_edges.push_back(kept_kept_candidates[i]);
    }
  }

  // Base dataset: rows/labels/splits remapped, base edges only.
  ReplayStream out;
  out.base.name = full.name + "-base";
  out.base.num_classes = full.num_classes;
  out.base.labels.resize(static_cast<size_t>(kept));
  for (int64_t i = 0; i < kept; ++i) {
    out.base.labels[static_cast<size_t>(i)] =
        full.labels[static_cast<size_t>(new_to_old[static_cast<size_t>(i)])];
  }
  auto remap_ids = [&](const std::vector<int64_t>& ids) {
    std::vector<int64_t> mapped;
    mapped.reserve(ids.size());
    for (int64_t v : ids) mapped.push_back(old_to_new[static_cast<size_t>(v)]);
    return mapped;
  };
  out.base.split.train = remap_ids(full.split.train);
  out.base.split.val = remap_ids(full.split.val);
  out.base.split.test = remap_ids(full.split.test);
  {
    std::vector<int64_t> row_ptr(static_cast<size_t>(kept) + 1, 0);
    std::vector<int64_t> col_idx;
    std::vector<float> values;
    for (int64_t i = 0; i < kept; ++i) {
      const int64_t old_row = new_to_old[static_cast<size_t>(i)];
      const int64_t begin =
          full.features.row_ptr()[static_cast<size_t>(old_row)];
      const int64_t end =
          full.features.row_ptr()[static_cast<size_t>(old_row) + 1];
      for (int64_t k = begin; k < end; ++k) {
        col_idx.push_back(full.features.col_idx()[static_cast<size_t>(k)]);
        values.push_back(full.features.values()[static_cast<size_t>(k)]);
      }
      row_ptr[static_cast<size_t>(i) + 1] =
          static_cast<int64_t>(col_idx.size());
    }
    out.base.features =
        SparseMatrix::FromCsr(kept, full.features.cols(), std::move(row_ptr),
                              std::move(col_idx), std::move(values));
  }
  std::sort(base_edges.begin(), base_edges.end(),
            [](const Edge& a, const Edge& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  out.base.graph = Graph::FromCanonicalEdges(kept, std::move(base_edges));

  // Deltas: arrivals in id order plus the routed edge batches.
  out.deltas.resize(static_cast<size_t>(options.num_deltas));
  for (int d = 0; d < options.num_deltas; ++d) {
    GraphDelta& delta = out.deltas[static_cast<size_t>(d)];
    delta.timestamp = d;
    delta.added_edges = std::move(delta_edges[static_cast<size_t>(d)]);
  }
  for (int64_t new_id = kept; new_id < n; ++new_id) {
    const int64_t old_row = new_to_old[static_cast<size_t>(new_id)];
    NodeArrival arrival;
    arrival.label = full.labels[static_cast<size_t>(old_row)];
    const int64_t begin =
        full.features.row_ptr()[static_cast<size_t>(old_row)];
    const int64_t end =
        full.features.row_ptr()[static_cast<size_t>(old_row) + 1];
    for (int64_t k = begin; k < end; ++k) {
      arrival.features.emplace_back(
          full.features.col_idx()[static_cast<size_t>(k)],
          full.features.values()[static_cast<size_t>(k)]);
    }
    out.deltas[static_cast<size_t>(arrival_delta(new_id))]
        .added_nodes.push_back(std::move(arrival));
  }
  return out;
}

}  // namespace rdd::stream
