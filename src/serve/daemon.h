#ifndef RDD_SERVE_DAEMON_H_
#define RDD_SERVE_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "models/graph_model.h"
#include "serve/predictor.h"
#include "util/status.h"

namespace rdd {

/// Wire protocol of the serving daemon (shared by Daemon and DaemonClient).
///
/// Every frame, in both directions, is `u32 payload_len` (little-endian,
/// bounded by kMaxFrameBytes) followed by `payload_len` payload bytes. The
/// first payload byte is the opcode (requests) or status code (responses);
/// integers inside payloads are little-endian u32/i64/u64.
///
///   kPredict  req:  u32 count, count x i64 node ids
///             resp: kOk + u32 count, count x i64 predicted labels
///   kSwap     req:  u32 ckpt_len + bytes, u32 dataset_len + bytes
///             (dataset_len 0 = keep the current graph). resp: kOk once the
///             swap is ENQUEUED — it is applied asynchronously — or kBusy
///             when the bounded update queue is full (backpressure: retry
///             later; nothing was enqueued).
///   kStats    resp: kOk + u64 generation, u64 queries, u64 swap_failures,
///             u32 pending updates, i64 num_nodes of the serving graph
///   kShutdown resp: kOk, then the daemon stops accepting and drains.
enum class DaemonOp : uint8_t {
  kPredict = 1,
  kSwap = 2,
  kStats = 3,
  kShutdown = 4,
};

enum class DaemonStatus : uint8_t {
  kOk = 0,
  kInvalid = 1,   ///< Malformed frame or bad request (message follows).
  kBusy = 2,      ///< Update queue full; the swap was NOT enqueued.
  kError = 3,     ///< Server-side failure (message follows).
};

/// Frames larger than this are rejected as malformed (guards allocation).
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Stats() snapshot, also the payload of the kStats response.
struct DaemonStats {
  uint64_t generation = 0;      ///< Swaps applied, +1 for the initial load.
  uint64_t queries_served = 0;  ///< Total nodes predicted since start.
  uint64_t swap_failures = 0;   ///< Enqueued swaps that failed to load.
  uint32_t pending_updates = 0;
  int64_t num_nodes = 0;        ///< Node count of the CURRENT serving graph.
};

struct DaemonOptions {
  /// Filesystem path of the Unix domain socket. Created (replacing any
  /// stale file) on Start, unlinked on Stop.
  std::string socket_path;
  /// Checkpoint served until the first swap.
  std::string checkpoint_path;
  /// Serialized Dataset the initial graph context is built from.
  std::string dataset_path;
  /// Predictor batch size (Predictor::Options).
  int64_t batch_size = 256;
  /// Bound of the update queue; kSwap returns kBusy beyond it.
  int update_queue_capacity = 4;
};

/// A long-running node-classification server: answers Predict queries over
/// a Unix socket while a background update thread hot-swaps in refreshed
/// checkpoints (e.g. after an incremental retrain).
///
/// Hot-swap contract: each loaded model lives in an immutable generation
/// (context + Predictor + generation number). Swaps build the NEXT
/// generation entirely off the serving path — checkpoint load, graph
/// rebuild, model construction — and publish it with one pointer assignment
/// under a mutex held for O(1); queries never observe a half-loaded
/// generation and are never blocked by a load. The previous generation is
/// retained (double buffer) until its last in-flight query completes, so
/// answers are always internally consistent: a query runs wholly against
/// generation g or wholly against g+1, never a mix. On-disk consistency is
/// the checkpoint writer's job (SaveCheckpoint is atomic), so killing the
/// daemon mid-swap can never leave a torn file — tests/daemon_test.cc
/// proves both properties.
///
/// Thread-safety: all public methods are safe to call from any thread.
/// Queries from concurrent connections are serialized per generation
/// (GraphModel::Forward mutates model scratch state); the serving lock is
/// per-generation, so a swap never contends with it.
///
/// Determinism: predictions are the Predictor's (bit-identical to a fresh
/// Predictor over the same checkpoint at any thread count / backend);
/// the daemon adds routing, not arithmetic.
class Daemon {
 public:
  /// Binds the socket, loads the initial (dataset, checkpoint) pair as
  /// generation 1, and spawns the accept and update threads. On error
  /// (bad checkpoint, bind failure) nothing is left running.
  static StatusOr<std::unique_ptr<Daemon>> Start(const DaemonOptions& options);

  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Stops accepting, drains connection threads, unlinks the socket.
  /// Idempotent; also called by the destructor and by a kShutdown request.
  void Stop();

  /// Blocks until Stop() is called (by any thread or a kShutdown request).
  void Wait();

  /// Enqueues a hot swap to `checkpoint_path` (with `dataset_path` empty,
  /// the current graph is kept). FailedPrecondition when the queue is full
  /// — the wire kBusy; the caller should retry after a drain. The swap
  /// itself is asynchronous; failures are counted in Stats().
  Status EnqueueSwap(const std::string& checkpoint_path,
                     const std::string& dataset_path);

  /// In-process query path (the wire kPredict calls this too).
  StatusOr<std::vector<int64_t>> PredictLabels(
      const std::vector<int64_t>& nodes);

  DaemonStats Stats() const;
  const std::string& socket_path() const { return options_.socket_path; }

 private:
  /// One immutable serving generation. `mu` serializes forwards on this
  /// generation's models; it is never held while loading the next one.
  struct Generation {
    std::mutex mu;
    GraphContext context;
    Predictor predictor;
    uint64_t number = 0;
    int64_t num_nodes = 0;
  };

  struct SwapRequest {
    std::string checkpoint_path;
    std::string dataset_path;
  };

  Daemon() = default;

  static StatusOr<std::shared_ptr<Generation>> LoadGeneration(
      const std::string& checkpoint_path, const std::string& dataset_path,
      int64_t batch_size, uint64_t number);

  std::shared_ptr<Generation> Current() const;
  void AcceptLoop();
  void UpdateLoop();
  void ServeConnection(int fd);
  /// Dispatches one request payload; returns the response payload.
  std::vector<uint8_t> HandleRequest(const std::vector<uint8_t>& payload);

  DaemonOptions options_;
  int listen_fd_ = -1;

  mutable std::mutex current_mu_;        ///< Guards the two pointers below.
  std::shared_ptr<Generation> current_;
  std::shared_ptr<Generation> previous_;  ///< Double buffer: kept alive.

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<SwapRequest> queue_;

  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> swap_failures_{0};

  std::thread accept_thread_;
  std::thread update_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;

  std::mutex stopped_mu_;
  std::condition_variable stopped_cv_;
  bool stopped_ = false;
};

/// Minimal blocking client for the daemon's wire protocol. One socket, one
/// outstanding request at a time; not thread-safe (use one per thread).
class DaemonClient {
 public:
  static StatusOr<DaemonClient> Connect(const std::string& socket_path);

  DaemonClient() = default;
  ~DaemonClient();
  DaemonClient(DaemonClient&& other) noexcept;
  DaemonClient& operator=(DaemonClient&& other) noexcept;
  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  StatusOr<std::vector<int64_t>> PredictLabels(
      const std::vector<int64_t>& nodes);
  /// FailedPrecondition mirrors the wire kBusy (queue full, retry later).
  Status RequestSwap(const std::string& checkpoint_path,
                     const std::string& dataset_path);
  StatusOr<DaemonStats> Stats();
  Status Shutdown();

 private:
  explicit DaemonClient(int fd) : fd_(fd) {}

  StatusOr<std::vector<uint8_t>> RoundTrip(
      const std::vector<uint8_t>& payload);

  int fd_ = -1;
};

}  // namespace rdd

#endif  // RDD_SERVE_DAEMON_H_
