#ifndef RDD_SERVE_PREDICTOR_H_
#define RDD_SERVE_PREDICTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/rdd_trainer.h"
#include "data/checkpoint.h"
#include "models/graph_model.h"
#include "models/mlp_student.h"
#include "models/model_factory.h"
#include "util/status.h"

namespace rdd {

/// Snapshots a finished RDD run as a checkpoint: one record per ensemble
/// member, each carrying its alpha weight, built from `base_model` (the
/// architecture config the run trained with).
Checkpoint CheckpointFromRdd(const RddResult& result,
                             const ModelConfig& base_model,
                             const std::string& tag);

/// Snapshots a distilled MlpStudent as a single-record checkpoint.
Checkpoint CheckpointFromDistilled(const MlpStudent& student,
                                   const std::string& tag);

/// Batched node-classification server over a loaded checkpoint. A Predictor
/// owns the rebuilt models and answers queries in fixed-size batches; every
/// batch is traced ("serve/batch" under "serve/predict") and counted
/// (serve.queries, serve.batches, serve.batch_ns) via src/observe.
///
/// Two serving paths, chosen by what the checkpoint holds:
///  - MLP-Student records answer from the queried nodes' feature rows only
///    (MlpStudent::PredictProbsRows) — no full-graph work per query.
///  - Any other architecture runs a full-graph forward per member per batch
///    (the honest transductive-GNN serving cost) and gathers the queried
///    rows. Multi-member checkpoints are weight-averaged like the Teacher.
///
/// Both paths are batch-invariant: a node's prediction row is bit-identical
/// whatever batch — or batch size — it is served in.
class Predictor {
 public:
  struct Options {
    int64_t batch_size = 256;  ///< Queries per batch; must be >= 1.
  };

  /// An empty predictor that serves nothing; exists for StatusOr. Use
  /// FromCheckpoint.
  Predictor() = default;

  /// Loads `path` and rebuilds every model in it over `context`. Fails with
  /// InvalidArgument when the checkpoint is corrupt, names an unknown
  /// architecture, or was trained on a graph whose dimensions disagree with
  /// `context`.
  static StatusOr<Predictor> FromCheckpoint(const std::string& path,
                                            const GraphContext& context,
                                            const Options& options);
  static StatusOr<Predictor> FromCheckpoint(const std::string& path,
                                            const GraphContext& context);

  /// Weight-averaged class probabilities for `nodes` (one row per query, in
  /// query order). InvalidArgument on any out-of-range node id. Non-const
  /// because GraphModel::Forward is non-const; evaluation-mode forwards are
  /// still deterministic.
  StatusOr<Matrix> PredictProbs(const std::vector<int64_t>& nodes);

  /// Argmax labels for `nodes`.
  StatusOr<std::vector<int64_t>> PredictLabels(
      const std::vector<int64_t>& nodes);

  const std::string& tag() const { return tag_; }
  int64_t num_models() const { return static_cast<int64_t>(models_.size()); }
  /// True when every loaded record is an MLP-Student (row-wise fast path).
  bool pure_mlp() const { return pure_mlp_; }
  /// True when every loaded record is an MLP-Student serving from packed
  /// bf16 weights (RDD_BF16=1 at load time).
  bool bf16_serving() const;
  int64_t batch_size() const { return options_.batch_size; }

 private:
  std::string tag_;
  Options options_;
  int64_t num_nodes_ = 0;
  std::vector<std::shared_ptr<GraphModel>> models_;
  std::vector<double> weights_;
  /// Parallel to models_: the member as an MlpStudent, or nullptr.
  std::vector<const MlpStudent*> mlps_;
  bool pure_mlp_ = false;
};

}  // namespace rdd

#endif  // RDD_SERVE_PREDICTOR_H_
