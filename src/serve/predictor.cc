#include "serve/predictor.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "models/model_io.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace rdd {

Checkpoint CheckpointFromRdd(const RddResult& result,
                             const ModelConfig& base_model,
                             const std::string& tag) {
  RDD_CHECK_EQ(result.students.size(), result.alphas.size());
  Checkpoint checkpoint;
  checkpoint.tag = tag;
  checkpoint.models.reserve(result.students.size());
  for (size_t t = 0; t < result.students.size(); ++t) {
    checkpoint.models.push_back(RecordFromModel(
        *result.students[t], base_model, result.alphas[t]));
  }
  return checkpoint;
}

Checkpoint CheckpointFromDistilled(const MlpStudent& student,
                                   const std::string& tag) {
  ModelConfig config;
  config.kind = ModelKind::kMlpStudent;
  config.num_layers = student.num_layers();
  config.hidden_dim = student.hidden_dim();
  config.dropout = student.dropout();
  Checkpoint checkpoint;
  checkpoint.tag = tag;
  checkpoint.models.push_back(RecordFromModel(student, config, 1.0));
  return checkpoint;
}

StatusOr<Predictor> Predictor::FromCheckpoint(const std::string& path,
                                              const GraphContext& context) {
  return FromCheckpoint(path, context, Options());
}

StatusOr<Predictor> Predictor::FromCheckpoint(const std::string& path,
                                              const GraphContext& context,
                                              const Options& options) {
  if (options.batch_size < 1) {
    return Status::InvalidArgument(
        StrFormat("batch_size must be >= 1, got %lld",
                  static_cast<long long>(options.batch_size)));
  }
  StatusOr<Checkpoint> loaded = LoadCheckpoint(path);
  if (!loaded.ok()) return loaded.status();
  const Checkpoint& checkpoint = *loaded;
  if (checkpoint.models.empty()) {
    return Status::InvalidArgument(
        StrFormat("checkpoint %s holds no models", path.c_str()));
  }

  Predictor predictor;
  predictor.tag_ = checkpoint.tag;
  predictor.options_ = options;
  predictor.num_nodes_ = context.num_nodes;
  predictor.pure_mlp_ = true;
  for (const ModelRecord& record : checkpoint.models) {
    StatusOr<std::unique_ptr<GraphModel>> model =
        ModelFromRecord(record, context);
    if (!model.ok()) return model.status();
    if (record.weight <= 0.0) {
      return Status::InvalidArgument(StrFormat(
          "checkpoint %s: model \"%s\" has non-positive weight", path.c_str(),
          record.arch.c_str()));
    }
    std::shared_ptr<GraphModel> shared = std::move(model.value());
    const MlpStudent* mlp = dynamic_cast<const MlpStudent*>(shared.get());
    if (mlp == nullptr) predictor.pure_mlp_ = false;
    predictor.mlps_.push_back(mlp);
    predictor.models_.push_back(std::move(shared));
    predictor.weights_.push_back(record.weight);
  }
  return predictor;
}

bool Predictor::bf16_serving() const {
  if (!pure_mlp_ || mlps_.empty()) return false;
  for (const MlpStudent* mlp : mlps_) {
    if (!mlp->bf16_serving()) return false;
  }
  return true;
}

StatusOr<Matrix> Predictor::PredictProbs(const std::vector<int64_t>& nodes) {
  if (models_.empty()) {
    return Status::FailedPrecondition("predictor holds no models");
  }
  for (int64_t node : nodes) {
    if (node < 0 || node >= num_nodes_) {
      return Status::InvalidArgument(
          StrFormat("query node %lld is outside [0, %lld)",
                    static_cast<long long>(node),
                    static_cast<long long>(num_nodes_)));
    }
  }
  observe::TraceSpan predict_span("serve/predict",
                                  static_cast<int64_t>(nodes.size()));
  auto& registry = observe::MetricsRegistry::Global();
  static observe::Counter& query_counter = registry.counter("serve.queries");
  static observe::Counter& batch_counter = registry.counter("serve.batches");
  static observe::Histogram& batch_ns = registry.histogram("serve.batch_ns");
  query_counter.Add(nodes.size());

  double weight_sum = 0.0;
  for (double w : weights_) weight_sum += w;

  const int64_t total = static_cast<int64_t>(nodes.size());
  Matrix out;
  for (int64_t begin = 0; begin < total; begin += options_.batch_size) {
    const int64_t end = std::min(total, begin + options_.batch_size);
    observe::TraceSpan batch_span("serve/batch", end - begin);
    WallTimer batch_timer;
    batch_counter.Add(1);
    const std::vector<int64_t> batch(nodes.begin() + begin,
                                     nodes.begin() + end);

    // Weighted member average, summed in insertion order (deterministic at
    // any thread count, like Teacher::PredictProbs).
    Matrix batch_probs;
    for (size_t m = 0; m < models_.size(); ++m) {
      Matrix member;  // (end - begin) x num_classes
      if (mlps_[m] != nullptr) {
        member = mlps_[m]->PredictProbsRows(batch);
      } else {
        // Honest transductive serving: the member recomputes its
        // full-graph forward for the batch, then the queried rows are
        // gathered. This is the latency the MLP path removes.
        const Matrix full =
            SoftmaxRows(models_[m]->Forward(/*training=*/false).logits.value());
        member = Matrix(static_cast<int64_t>(batch.size()), full.cols());
        for (size_t b = 0; b < batch.size(); ++b) {
          const float* src = full.RowData(batch[b]);
          float* dst = member.RowData(static_cast<int64_t>(b));
          for (int64_t c = 0; c < full.cols(); ++c) dst[c] = src[c];
        }
      }
      const float scale = static_cast<float>(weights_[m] / weight_sum);
      if (m == 0) {
        batch_probs = std::move(member);
        float* data = batch_probs.Data();
        for (int64_t i = 0; i < batch_probs.size(); ++i) data[i] *= scale;
      } else {
        RDD_CHECK_EQ(member.cols(), batch_probs.cols());
        float* acc = batch_probs.Data();
        const float* add = member.Data();
        for (int64_t i = 0; i < batch_probs.size(); ++i) {
          acc[i] += scale * add[i];
        }
      }
    }

    if (begin == 0 && end == total) {
      out = std::move(batch_probs);
    } else {
      if (out.empty()) out = Matrix(total, batch_probs.cols());
      for (int64_t b = begin; b < end; ++b) {
        const float* src = batch_probs.RowData(b - begin);
        float* dst = out.RowData(b);
        for (int64_t c = 0; c < out.cols(); ++c) dst[c] = src[c];
      }
    }
    batch_ns.Record(
        static_cast<uint64_t>(batch_timer.ElapsedSeconds() * 1e9));
  }
  return out;
}

StatusOr<std::vector<int64_t>> Predictor::PredictLabels(
    const std::vector<int64_t>& nodes) {
  StatusOr<Matrix> probs = PredictProbs(nodes);
  if (!probs.ok()) return probs.status();
  return ArgmaxRows(*probs);
}

}  // namespace rdd
