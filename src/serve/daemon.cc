#include "serve/daemon.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "data/serialize.h"
#include "observe/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace rdd {

namespace {

/// recv() until `n` bytes arrive. Returns 1 on success, 0 on clean EOF
/// before the first byte, -1 on error, mid-object EOF, or (when `stopping`
/// is non-null) a requested stop. Sockets carry a receive timeout, so the
/// EAGAIN tick is where the stop flag is observed.
int ReadFull(int fd, uint8_t* buf, size_t n,
             const std::atomic<bool>* stopping) {
  size_t got = 0;
  while (got < n) {
    if (stopping != nullptr && stopping->load(std::memory_order_relaxed)) {
      return -1;
    }
    const ssize_t r = recv(fd, buf + got, n - got, 0);
    if (r == 0) return got == 0 ? 0 : -1;
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return -1;
    }
    got += static_cast<size_t>(r);
  }
  return 1;
}

bool WriteFull(int fd, const uint8_t* buf, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t r = send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(r);
  }
  return true;
}

void SetRecvTimeout(int fd, int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutI64(std::vector<uint8_t>* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

/// Bounds-checked little-endian reader over one payload.
class PayloadReader {
 public:
  PayloadReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ReadU32(uint32_t* v) {
    if (size_ - pos_ < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (size_ - pos_ < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool ReadI64(int64_t* v) {
    uint64_t u;
    if (!ReadU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool ReadString(std::string* s) {
    uint32_t len;
    if (!ReadU32(&len)) return false;
    if (size_ - pos_ < len) return false;
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

std::vector<uint8_t> StatusResponse(DaemonStatus status,
                                    const std::string& message) {
  std::vector<uint8_t> out;
  out.push_back(static_cast<uint8_t>(status));
  PutU32(&out, static_cast<uint32_t>(message.size()));
  out.insert(out.end(), message.begin(), message.end());
  return out;
}

bool SendFrame(int fd, const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> header;
  PutU32(&header, static_cast<uint32_t>(payload.size()));
  return WriteFull(fd, header.data(), header.size()) &&
         WriteFull(fd, payload.data(), payload.size());
}

/// Reads one frame. Returns 1 with the payload in *out, 0 on clean EOF,
/// -1 on malformed/oversized frames or transport errors.
int ReadFrame(int fd, std::vector<uint8_t>* out,
              const std::atomic<bool>* stopping) {
  uint8_t header[4];
  const int r = ReadFull(fd, header, sizeof(header), stopping);
  if (r <= 0) return r;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(header[i]) << (8 * i);
  }
  if (len == 0 || len > kMaxFrameBytes) return -1;
  out->resize(len);
  return ReadFull(fd, out->data(), len, stopping) == 1 ? 1 : -1;
}

}  // namespace

StatusOr<std::shared_ptr<Daemon::Generation>> Daemon::LoadGeneration(
    const std::string& checkpoint_path, const std::string& dataset_path,
    int64_t batch_size, uint64_t number) {
  auto generation = std::make_shared<Generation>();
  StatusOr<Dataset> dataset = LoadDataset(dataset_path);
  if (!dataset.ok()) return dataset.status();
  generation->context = GraphContext::FromDataset(*dataset);
  Predictor::Options predictor_options;
  predictor_options.batch_size = batch_size;
  StatusOr<Predictor> predictor = Predictor::FromCheckpoint(
      checkpoint_path, generation->context, predictor_options);
  if (!predictor.ok()) return predictor.status();
  generation->predictor = std::move(*predictor);
  generation->number = number;
  generation->num_nodes = generation->context.num_nodes;
  return generation;
}

StatusOr<std::unique_ptr<Daemon>> Daemon::Start(const DaemonOptions& options) {
  if (options.socket_path.empty()) {
    return Status::InvalidArgument("socket_path must be set");
  }
  sockaddr_un addr{};
  if (options.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        StrFormat("socket path too long (%zu bytes, max %zu)",
                  options.socket_path.size(), sizeof(addr.sun_path) - 1));
  }
  if (options.update_queue_capacity < 1) {
    return Status::InvalidArgument("update_queue_capacity must be >= 1");
  }

  std::unique_ptr<Daemon> daemon(new Daemon());
  daemon->options_ = options;
  StatusOr<std::shared_ptr<Generation>> initial =
      LoadGeneration(options.checkpoint_path, options.dataset_path,
                     options.batch_size, /*number=*/1);
  if (!initial.ok()) return initial.status();
  daemon->current_ = std::move(*initial);

  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(StrFormat("socket(): %s", std::strerror(errno)));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options.socket_path.c_str(),
              options.socket_path.size() + 1);
  ::unlink(options.socket_path.c_str());
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = Status::IoError(
        StrFormat("bind(%s): %s", options.socket_path.c_str(),
                  std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (listen(fd, 16) < 0) {
    const Status status =
        Status::IoError(StrFormat("listen(): %s", std::strerror(errno)));
    ::close(fd);
    ::unlink(options.socket_path.c_str());
    return status;
  }
  daemon->listen_fd_ = fd;
  Daemon* raw = daemon.get();
  daemon->accept_thread_ = std::thread([raw] { raw->AcceptLoop(); });
  daemon->update_thread_ = std::thread([raw] { raw->UpdateLoop(); });
  return daemon;
}

Daemon::~Daemon() { Stop(); }

void Daemon::Stop() {
  const bool was_stopping = stopping_.exchange(true);
  if (!was_stopping) {
    queue_cv_.notify_all();
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  }
  // Join exactly once; later callers (destructor after an explicit Stop,
  // concurrent stops) wait for the first to finish.
  std::lock_guard<std::mutex> stop_lock(stopped_mu_);
  if (stopped_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  if (update_thread_.joinable()) update_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (std::thread& t : conn_threads_) {
      if (t.joinable()) t.join();
    }
    conn_threads_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  stopped_ = true;
  stopped_cv_.notify_all();
}

void Daemon::Wait() {
  std::unique_lock<std::mutex> lock(stopped_mu_);
  stopped_cv_.wait(lock, [this] {
    return stopping_.load(std::memory_order_relaxed);
  });
}

std::shared_ptr<Daemon::Generation> Daemon::Current() const {
  std::lock_guard<std::mutex> lock(current_mu_);
  return current_;
}

Status Daemon::EnqueueSwap(const std::string& checkpoint_path,
                           const std::string& dataset_path) {
  if (stopping_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("daemon is stopping");
  }
  std::lock_guard<std::mutex> lock(queue_mu_);
  if (queue_.size() >=
      static_cast<size_t>(options_.update_queue_capacity)) {
    return Status::FailedPrecondition("update queue full");
  }
  queue_.push_back(SwapRequest{checkpoint_path, dataset_path});
  queue_cv_.notify_one();
  return Status::Ok();
}

StatusOr<std::vector<int64_t>> Daemon::PredictLabels(
    const std::vector<int64_t>& nodes) {
  // Pin one generation for the whole query: the shared_ptr keeps it alive
  // across a concurrent swap, and its per-generation lock serializes
  // forwards without ever contending with the swap publish.
  const std::shared_ptr<Generation> generation = Current();
  std::lock_guard<std::mutex> lock(generation->mu);
  StatusOr<std::vector<int64_t>> labels =
      generation->predictor.PredictLabels(nodes);
  if (labels.ok()) {
    queries_served_.fetch_add(nodes.size(), std::memory_order_relaxed);
  }
  return labels;
}

DaemonStats Daemon::Stats() const {
  DaemonStats stats;
  const std::shared_ptr<Generation> generation = Current();
  stats.generation = generation->number;
  stats.num_nodes = generation->num_nodes;
  stats.queries_served = queries_served_.load(std::memory_order_relaxed);
  stats.swap_failures = swap_failures_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stats.pending_updates = static_cast<uint32_t>(queue_.size());
  }
  return stats;
}

void Daemon::UpdateLoop() {
  while (true) {
    SwapRequest request;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) || !queue_.empty();
      });
      if (queue_.empty()) return;  // Stopping with nothing left to drain.
      request = std::move(queue_.front());
      queue_.pop_front();
    }
    observe::TraceSpan span("serve/hot_swap");
    // Build the ENTIRE next generation off the serving path. Only the final
    // pointer assignment takes current_mu_, and that lock is held for O(1).
    StatusOr<std::shared_ptr<Generation>> next =
        request.dataset_path.empty()
            ? [&]() -> StatusOr<std::shared_ptr<Generation>> {
                auto generation = std::make_shared<Generation>();
                generation->context = Current()->context;
                Predictor::Options predictor_options;
                predictor_options.batch_size = options_.batch_size;
                StatusOr<Predictor> predictor = Predictor::FromCheckpoint(
                    request.checkpoint_path, generation->context,
                    predictor_options);
                if (!predictor.ok()) return predictor.status();
                generation->predictor = std::move(*predictor);
                generation->num_nodes = generation->context.num_nodes;
                return generation;
              }()
            : LoadGeneration(request.checkpoint_path, request.dataset_path,
                             options_.batch_size, /*number=*/0);
    if (!next.ok()) {
      swap_failures_.fetch_add(1, std::memory_order_relaxed);
      RDD_LOG(Warning) << "hot swap to " << request.checkpoint_path
                       << " failed: " << next.status().ToString();
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(current_mu_);
      (*next)->number = current_->number + 1;
      previous_ = std::move(current_);  // Double buffer: kept alive.
      current_ = std::move(*next);
    }
  }
}

void Daemon::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      continue;
    }
    SetRecvTimeout(fd, 200);
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void Daemon::ServeConnection(int fd) {
  std::vector<uint8_t> payload;
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int r = ReadFrame(fd, &payload, &stopping_);
    if (r <= 0) break;
    const std::vector<uint8_t> response = HandleRequest(payload);
    if (!SendFrame(fd, response)) break;
    if (!payload.empty() &&
        payload[0] == static_cast<uint8_t>(DaemonOp::kShutdown)) {
      // Response is out; now initiate the stop (joining happens in Stop(),
      // never on this thread).
      stopping_.store(true);
      queue_cv_.notify_all();
      if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
      stopped_cv_.notify_all();
      break;
    }
  }
  ::close(fd);
}

std::vector<uint8_t> Daemon::HandleRequest(
    const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload.data() + 1, payload.size() - 1);
  switch (static_cast<DaemonOp>(payload[0])) {
    case DaemonOp::kPredict: {
      uint32_t count = 0;
      if (!reader.ReadU32(&count)) {
        return StatusResponse(DaemonStatus::kInvalid, "short predict frame");
      }
      std::vector<int64_t> nodes;
      nodes.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        int64_t node;
        if (!reader.ReadI64(&node)) {
          return StatusResponse(DaemonStatus::kInvalid,
                                "short predict frame");
        }
        nodes.push_back(node);
      }
      if (!reader.AtEnd()) {
        return StatusResponse(DaemonStatus::kInvalid,
                              "trailing bytes in predict frame");
      }
      StatusOr<std::vector<int64_t>> labels = PredictLabels(nodes);
      if (!labels.ok()) {
        return StatusResponse(DaemonStatus::kInvalid,
                              labels.status().ToString());
      }
      std::vector<uint8_t> out;
      out.push_back(static_cast<uint8_t>(DaemonStatus::kOk));
      PutU32(&out, count);
      for (int64_t label : *labels) PutI64(&out, label);
      return out;
    }
    case DaemonOp::kSwap: {
      std::string checkpoint_path;
      std::string dataset_path;
      if (!reader.ReadString(&checkpoint_path) ||
          !reader.ReadString(&dataset_path) || !reader.AtEnd()) {
        return StatusResponse(DaemonStatus::kInvalid, "malformed swap frame");
      }
      const Status status = EnqueueSwap(checkpoint_path, dataset_path);
      if (status.ok()) return StatusResponse(DaemonStatus::kOk, "");
      if (status.code() == StatusCode::kFailedPrecondition) {
        return StatusResponse(DaemonStatus::kBusy, status.message());
      }
      return StatusResponse(DaemonStatus::kError, status.ToString());
    }
    case DaemonOp::kStats: {
      const DaemonStats stats = Stats();
      std::vector<uint8_t> out;
      out.push_back(static_cast<uint8_t>(DaemonStatus::kOk));
      PutU64(&out, stats.generation);
      PutU64(&out, stats.queries_served);
      PutU64(&out, stats.swap_failures);
      PutU32(&out, stats.pending_updates);
      PutI64(&out, stats.num_nodes);
      return out;
    }
    case DaemonOp::kShutdown:
      return StatusResponse(DaemonStatus::kOk, "");
  }
  return StatusResponse(DaemonStatus::kInvalid, "unknown opcode");
}

StatusOr<DaemonClient> DaemonClient::Connect(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long");
  }
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(StrFormat("socket(): %s", std::strerror(errno)));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = Status::IoError(StrFormat(
        "connect(%s): %s", socket_path.c_str(), std::strerror(errno)));
    ::close(fd);
    return status;
  }
  SetRecvTimeout(fd, 30000);
  return DaemonClient(fd);
}

DaemonClient::~DaemonClient() {
  if (fd_ >= 0) ::close(fd_);
}

DaemonClient::DaemonClient(DaemonClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

DaemonClient& DaemonClient::operator=(DaemonClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<std::vector<uint8_t>> DaemonClient::RoundTrip(
    const std::vector<uint8_t>& payload) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  if (!SendFrame(fd_, payload)) {
    return Status::IoError("send failed (daemon gone?)");
  }
  std::vector<uint8_t> response;
  if (ReadFrame(fd_, &response, nullptr) != 1 || response.empty()) {
    return Status::IoError("short or missing response");
  }
  return response;
}

StatusOr<std::vector<int64_t>> DaemonClient::PredictLabels(
    const std::vector<int64_t>& nodes) {
  std::vector<uint8_t> request;
  request.push_back(static_cast<uint8_t>(DaemonOp::kPredict));
  PutU32(&request, static_cast<uint32_t>(nodes.size()));
  for (int64_t node : nodes) PutI64(&request, node);
  StatusOr<std::vector<uint8_t>> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  PayloadReader reader(response->data() + 1, response->size() - 1);
  if ((*response)[0] != static_cast<uint8_t>(DaemonStatus::kOk)) {
    std::string message;
    reader.ReadString(&message);
    return Status::InvalidArgument(message);
  }
  uint32_t count = 0;
  if (!reader.ReadU32(&count) ||
      count != static_cast<uint32_t>(nodes.size())) {
    return Status::Internal("malformed predict response");
  }
  std::vector<int64_t> labels;
  labels.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    int64_t label;
    if (!reader.ReadI64(&label)) {
      return Status::Internal("short predict response");
    }
    labels.push_back(label);
  }
  return labels;
}

Status DaemonClient::RequestSwap(const std::string& checkpoint_path,
                                 const std::string& dataset_path) {
  std::vector<uint8_t> request;
  request.push_back(static_cast<uint8_t>(DaemonOp::kSwap));
  PutU32(&request, static_cast<uint32_t>(checkpoint_path.size()));
  request.insert(request.end(), checkpoint_path.begin(),
                 checkpoint_path.end());
  PutU32(&request, static_cast<uint32_t>(dataset_path.size()));
  request.insert(request.end(), dataset_path.begin(), dataset_path.end());
  StatusOr<std::vector<uint8_t>> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  const auto status = static_cast<DaemonStatus>((*response)[0]);
  if (status == DaemonStatus::kOk) return Status::Ok();
  PayloadReader reader(response->data() + 1, response->size() - 1);
  std::string message;
  reader.ReadString(&message);
  if (status == DaemonStatus::kBusy) {
    return Status::FailedPrecondition(
        message.empty() ? "update queue full" : message);
  }
  return Status::Internal(message);
}

StatusOr<DaemonStats> DaemonClient::Stats() {
  std::vector<uint8_t> request;
  request.push_back(static_cast<uint8_t>(DaemonOp::kStats));
  StatusOr<std::vector<uint8_t>> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  if ((*response)[0] != static_cast<uint8_t>(DaemonStatus::kOk)) {
    return Status::Internal("stats request failed");
  }
  PayloadReader reader(response->data() + 1, response->size() - 1);
  DaemonStats stats;
  if (!reader.ReadU64(&stats.generation) ||
      !reader.ReadU64(&stats.queries_served) ||
      !reader.ReadU64(&stats.swap_failures) ||
      !reader.ReadU32(&stats.pending_updates) ||
      !reader.ReadI64(&stats.num_nodes)) {
    return Status::Internal("malformed stats response");
  }
  return stats;
}

Status DaemonClient::Shutdown() {
  std::vector<uint8_t> request;
  request.push_back(static_cast<uint8_t>(DaemonOp::kShutdown));
  StatusOr<std::vector<uint8_t>> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  if ((*response)[0] != static_cast<uint8_t>(DaemonStatus::kOk)) {
    return Status::Internal("shutdown refused");
  }
  return Status::Ok();
}

}  // namespace rdd
