#include "data/binary_io.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "util/string_util.h"

namespace rdd::io {

namespace {

uint64_t ByteSwap64(uint64_t v) {
  return __builtin_bswap64(v);
}

}  // namespace

uint8_t HostEndianMarker() {
  const uint32_t probe = 1;
  uint8_t first_byte;
  std::memcpy(&first_byte, &probe, 1);
  return first_byte == 1 ? kLittleEndianMarker : kBigEndianMarker;
}

void Writer::WriteBytes(const void* data, size_t size) {
  if (!ok_ || size == 0) return;
  ok_ = std::fwrite(data, 1, size, file_) == size;
}

void Writer::WriteString(const std::string& s) {
  WritePod<uint64_t>(s.size());
  WriteBytes(s.data(), s.size());
}

void Writer::WriteMatrix(const Matrix& m) {
  WritePod<int64_t>(m.rows());
  WritePod<int64_t>(m.cols());
  WriteBytes(m.Data(), static_cast<size_t>(m.size()) * sizeof(float));
}

void Writer::WriteHeader(uint64_t magic, uint32_t version) {
  WritePod(magic);
  WritePod(HostEndianMarker());
  WritePod(version);
}

void Reader::ReadBytes(void* data, size_t size) {
  if (!ok_) return;
  if (size > remaining_) {
    ok_ = false;
    return;
  }
  ok_ = std::fread(data, 1, size, file_) == size;
  if (ok_) remaining_ -= size;
}

std::string Reader::ReadString() {
  const uint64_t size = ReadPod<uint64_t>();
  if (!ok_ || size > remaining_) {
    ok_ = false;
    return {};
  }
  std::string s(size, '\0');
  if (size > 0) ReadBytes(s.data(), size);
  return s;
}

Matrix Reader::ReadMatrix() {
  const int64_t rows = ReadPod<int64_t>();
  const int64_t cols = ReadPod<int64_t>();
  if (!ok_ || rows < 0 || cols < 0) {
    ok_ = false;
    return Matrix();
  }
  const uint64_t count = static_cast<uint64_t>(rows) *
                         static_cast<uint64_t>(cols);
  // Reject overflowed products and sizes the file cannot possibly hold
  // before allocating anything.
  if ((rows != 0 && count / static_cast<uint64_t>(rows) !=
                        static_cast<uint64_t>(cols)) ||
      count > remaining_ / sizeof(float)) {
    ok_ = false;
    return Matrix();
  }
  Matrix m(rows, cols);
  if (count > 0) ReadBytes(m.Data(), count * sizeof(float));
  if (!ok_) return Matrix();
  return m;
}

Status Reader::CheckHeader(uint64_t magic, uint32_t version, const char* what,
                           const std::string& path) {
  const uint64_t file_magic = ReadPod<uint64_t>();
  if (!ok_ || (file_magic != magic && file_magic != ByteSwap64(magic))) {
    return Status::InvalidArgument(
        StrFormat("%s is not an RDD %s file", path.c_str(), what));
  }
  const uint8_t endian = ReadPod<uint8_t>();
  if (!ok_ ||
      file_magic != magic ||  // Magic only matched after a byte swap.
      endian != HostEndianMarker()) {
    return Status::InvalidArgument(StrFormat(
        "%s was written on a machine with different endianness; "
        "re-export it on a matching host", path.c_str()));
  }
  const uint32_t file_version = ReadPod<uint32_t>();
  if (!ok_ || file_version != version) {
    return Status::InvalidArgument(
        StrFormat("%s has unsupported %s version %u (this build reads %u)",
                  path.c_str(), what, file_version, version));
  }
  return Status::Ok();
}

Status SaveAtomic(const std::string& path,
                  const std::function<Status(Writer*)>& write_fn) {
  // Stage next to the target (rename must not cross filesystems); the pid
  // suffix keeps concurrent savers from clobbering each other's staging.
  const std::string tmp_path =
      StrFormat("%s.tmp.%d", path.c_str(), static_cast<int>(getpid()));
  {
    FilePtr file(std::fopen(tmp_path.c_str(), "wb"));
    if (file == nullptr) {
      return Status::IoError(
          StrFormat("cannot open %s for writing", tmp_path.c_str()));
    }
    Writer writer(file.get());
    Status status = write_fn(&writer);
    if (status.ok() && !writer.ok()) {
      status = Status::IoError(
          StrFormat("write failed for %s", tmp_path.c_str()));
    }
    // Force buffered bytes to the OS and check BOTH the flush and the
    // close: either can be the first to report a full disk.
    if (status.ok() && std::fflush(file.get()) != 0) {
      status = Status::IoError(
          StrFormat("flush failed for %s", tmp_path.c_str()));
    }
    std::FILE* raw = file.release();
    if (std::fclose(raw) != 0 && status.ok()) {
      status = Status::IoError(
          StrFormat("close failed for %s", tmp_path.c_str()));
    }
    if (!status.ok()) {
      std::remove(tmp_path.c_str());
      return status;
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError(StrFormat("cannot rename %s to %s",
                                     tmp_path.c_str(), path.c_str()));
  }
  return Status::Ok();
}

Status OpenForRead(const std::string& path, FilePtr* file,
                   uint64_t* file_size) {
  file->reset(std::fopen(path.c_str(), "rb"));
  if (*file == nullptr) {
    return Status::IoError(
        StrFormat("cannot open %s for reading", path.c_str()));
  }
  if (std::fseek(file->get(), 0, SEEK_END) != 0) {
    return Status::IoError(StrFormat("cannot seek in %s", path.c_str()));
  }
  const long size = std::ftell(file->get());
  if (size < 0 || std::fseek(file->get(), 0, SEEK_SET) != 0) {
    return Status::IoError(
        StrFormat("cannot measure size of %s", path.c_str()));
  }
  *file_size = static_cast<uint64_t>(size);
  return Status::Ok();
}

}  // namespace rdd::io
