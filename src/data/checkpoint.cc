#include "data/checkpoint.h"

#include <cstdint>

#include "data/binary_io.h"
#include "util/string_util.h"

namespace rdd {

namespace {

constexpr uint64_t kMagic = 0x5244445f434b5031ULL;  // "RDD_CKP1"
constexpr uint32_t kVersion = 1;

/// Upper bound on every count field in the format. Far above anything the
/// library produces, but small enough that a corrupt count fails fast
/// instead of looping over billions of (bounded, but slow) reads.
constexpr uint64_t kMaxListLength = 1 << 20;

void WriteRecord(io::Writer* w, const ModelRecord& record) {
  w->WriteString(record.arch);
  w->WritePod<double>(record.weight);
  w->WritePod<uint64_t>(record.ints.size());
  for (const auto& [key, value] : record.ints) {
    w->WriteString(key);
    w->WritePod<int64_t>(value);
  }
  w->WritePod<uint64_t>(record.doubles.size());
  for (const auto& [key, value] : record.doubles) {
    w->WriteString(key);
    w->WritePod<double>(value);
  }
  w->WritePod<uint64_t>(record.tensors.size());
  for (const NamedTensor& tensor : record.tensors) {
    w->WriteString(tensor.name);
    w->WriteMatrix(tensor.value);
  }
}

bool ReadCount(io::Reader* r, uint64_t* count) {
  *count = r->ReadPod<uint64_t>();
  return r->ok() && *count <= kMaxListLength;
}

bool ReadRecord(io::Reader* r, ModelRecord* record) {
  record->arch = r->ReadString();
  record->weight = r->ReadPod<double>();
  uint64_t count = 0;
  if (!ReadCount(r, &count)) return false;
  record->ints.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string key = r->ReadString();
    const int64_t value = r->ReadPod<int64_t>();
    if (!r->ok()) return false;
    record->ints.emplace_back(std::move(key), value);
  }
  if (!ReadCount(r, &count)) return false;
  record->doubles.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string key = r->ReadString();
    const double value = r->ReadPod<double>();
    if (!r->ok()) return false;
    record->doubles.emplace_back(std::move(key), value);
  }
  if (!ReadCount(r, &count)) return false;
  record->tensors.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    NamedTensor tensor;
    tensor.name = r->ReadString();
    tensor.value = r->ReadMatrix();
    if (!r->ok()) return false;
    record->tensors.push_back(std::move(tensor));
  }
  return r->ok();
}

}  // namespace

void ModelRecord::SetInt(const std::string& key, int64_t value) {
  ints.emplace_back(key, value);
}

void ModelRecord::SetDouble(const std::string& key, double value) {
  doubles.emplace_back(key, value);
}

bool ModelRecord::GetInt(const std::string& key, int64_t* out) const {
  for (const auto& [k, v] : ints) {
    if (k == key) {
      *out = v;
      return true;
    }
  }
  return false;
}

bool ModelRecord::GetDouble(const std::string& key, double* out) const {
  for (const auto& [k, v] : doubles) {
    if (k == key) {
      *out = v;
      return true;
    }
  }
  return false;
}

Status SaveCheckpoint(const Checkpoint& checkpoint, const std::string& path) {
  return io::SaveAtomic(path, [&checkpoint](io::Writer* w) {
    w->WriteHeader(kMagic, kVersion);
    w->WriteString(checkpoint.tag);
    w->WritePod<uint64_t>(checkpoint.models.size());
    for (const ModelRecord& record : checkpoint.models) {
      WriteRecord(w, record);
    }
    return Status::Ok();
  });
}

StatusOr<Checkpoint> LoadCheckpoint(const std::string& path) {
  io::FilePtr file;
  uint64_t file_size = 0;
  RDD_RETURN_IF_ERROR(io::OpenForRead(path, &file, &file_size));
  io::Reader r(file.get(), file_size);
  RDD_RETURN_IF_ERROR(r.CheckHeader(kMagic, kVersion, "checkpoint", path));
  Checkpoint checkpoint;
  checkpoint.tag = r.ReadString();
  uint64_t num_models = 0;
  if (!ReadCount(&r, &num_models)) {
    return Status::InvalidArgument(
        StrFormat("%s has a corrupt model count", path.c_str()));
  }
  checkpoint.models.resize(num_models);
  for (uint64_t i = 0; i < num_models; ++i) {
    if (!ReadRecord(&r, &checkpoint.models[i])) {
      return Status::InvalidArgument(StrFormat(
          "%s has a corrupt or truncated model record %llu", path.c_str(),
          static_cast<unsigned long long>(i)));
    }
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("%s has %llu trailing bytes after the last model record",
                  path.c_str(),
                  static_cast<unsigned long long>(r.remaining())));
  }
  return checkpoint;
}

}  // namespace rdd
