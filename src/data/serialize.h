#ifndef RDD_DATA_SERIALIZE_H_
#define RDD_DATA_SERIALIZE_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace rdd {

/// Writes `dataset` to `path` in the library's binary format (magic +
/// endianness + version header, then graph, features, labels, split).
/// The write is atomic: bytes are staged into a temp file and renamed onto
/// `path` only after a verified flush, so a crash or full disk never leaves
/// a truncated file at the final path. Returns IoError on filesystem
/// failure.
Status SaveDataset(const Dataset& dataset, const std::string& path);

/// Reads a dataset previously written by SaveDataset. Returns IoError for
/// unreadable files and InvalidArgument for corrupt, truncated,
/// foreign-endian, or incompatible content (length fields are bounded by
/// the file size, so hostile values cannot trigger huge allocations).
/// The loaded dataset is re-validated before being returned.
StatusOr<Dataset> LoadDataset(const std::string& path);

}  // namespace rdd

#endif  // RDD_DATA_SERIALIZE_H_
