#ifndef RDD_DATA_SERIALIZE_H_
#define RDD_DATA_SERIALIZE_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace rdd {

/// Writes `dataset` to `path` in the library's binary format (magic +
/// version header, then graph, features, labels, split). Returns IoError on
/// filesystem failure.
Status SaveDataset(const Dataset& dataset, const std::string& path);

/// Reads a dataset previously written by SaveDataset. Returns IoError for
/// unreadable files and InvalidArgument for corrupt or incompatible content.
/// The loaded dataset is re-validated before being returned.
StatusOr<Dataset> LoadDataset(const std::string& path);

}  // namespace rdd

#endif  // RDD_DATA_SERIALIZE_H_
