#ifndef RDD_DATA_DATASET_H_
#define RDD_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "tensor/sparse.h"
#include "util/random.h"

namespace rdd {

/// A Planetoid-style node split: disjoint sets of node ids used as labeled
/// training nodes, validation nodes (hyper-parameter tuning / early
/// stopping), and held-out test nodes. Every remaining node is unlabeled
/// but still participates in propagation.
struct Split {
  std::vector<int64_t> train;
  std::vector<int64_t> val;
  std::vector<int64_t> test;
};

/// A semi-supervised node-classification dataset: graph topology, sparse
/// node features, integer labels, and a train/val/test split. All benches
/// and trainers in the library consume this type.
struct Dataset {
  std::string name;
  Graph graph;
  SparseMatrix features;        ///< num_nodes x feature_dim, CSR.
  std::vector<int64_t> labels;  ///< One label per node, in [0, num_classes).
  int64_t num_classes = 0;
  Split split;

  int64_t NumNodes() const { return graph.num_nodes(); }
  int64_t FeatureDim() const { return features.cols(); }

  /// Fraction of nodes whose label is visible during training.
  double LabelRate() const;

  /// Node ids not in the training set (the unlabeled pool Vu of the paper;
  /// includes val and test nodes, whose labels are never used for training).
  std::vector<int64_t> UnlabeledNodes() const;

  /// Membership mask over nodes for the training set.
  std::vector<bool> TrainMask() const;
};

/// Builds a Planetoid-style split: `per_class` training nodes sampled from
/// each class, then `val_size` validation and `test_size` test nodes sampled
/// from the remainder. Requires the dataset to be large enough; aborts
/// otherwise (generator configs are sized to satisfy this).
Split MakePlanetoidSplit(const std::vector<int64_t>& labels,
                         int64_t num_classes, int64_t per_class,
                         int64_t val_size, int64_t test_size, Rng* rng);

/// Generalization of MakePlanetoidSplit with a per-class labeled count
/// (`per_class_counts[c]` training nodes sampled from class c). Used for
/// the paper's NELL protocol of 10% labeled nodes per class.
Split MakeStratifiedSplit(const std::vector<int64_t>& labels,
                          const std::vector<int64_t>& per_class_counts,
                          int64_t val_size, int64_t test_size, Rng* rng);

/// Validates internal consistency (sizes, label ranges, split disjointness).
/// Returns a descriptive error for malformed datasets; used by tests and by
/// the deserializer.
bool ValidateDataset(const Dataset& dataset, std::string* error);

}  // namespace rdd

#endif  // RDD_DATA_DATASET_H_
