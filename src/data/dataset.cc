#include "data/dataset.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace rdd {

double Dataset::LabelRate() const {
  if (NumNodes() == 0) return 0.0;
  return static_cast<double>(split.train.size()) /
         static_cast<double>(NumNodes());
}

std::vector<int64_t> Dataset::UnlabeledNodes() const {
  const std::vector<bool> mask = TrainMask();
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(NumNodes()) - split.train.size());
  for (int64_t i = 0; i < NumNodes(); ++i) {
    if (!mask[static_cast<size_t>(i)]) out.push_back(i);
  }
  return out;
}

std::vector<bool> Dataset::TrainMask() const {
  std::vector<bool> mask(static_cast<size_t>(NumNodes()), false);
  for (int64_t i : split.train) mask[static_cast<size_t>(i)] = true;
  return mask;
}

Split MakePlanetoidSplit(const std::vector<int64_t>& labels,
                         int64_t num_classes, int64_t per_class,
                         int64_t val_size, int64_t test_size, Rng* rng) {
  RDD_CHECK_GT(num_classes, 0);
  RDD_CHECK_GE(per_class, 0);
  return MakeStratifiedSplit(
      labels, std::vector<int64_t>(static_cast<size_t>(num_classes), per_class),
      val_size, test_size, rng);
}

Split MakeStratifiedSplit(const std::vector<int64_t>& labels,
                          const std::vector<int64_t>& per_class_counts,
                          int64_t val_size, int64_t test_size, Rng* rng) {
  RDD_CHECK(rng != nullptr);
  const int64_t num_classes = static_cast<int64_t>(per_class_counts.size());
  RDD_CHECK_GT(num_classes, 0);
  const int64_t n = static_cast<int64_t>(labels.size());

  std::vector<std::vector<int64_t>> by_class(static_cast<size_t>(num_classes));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = labels[static_cast<size_t>(i)];
    RDD_CHECK_GE(y, 0);
    RDD_CHECK_LT(y, num_classes);
    by_class[static_cast<size_t>(y)].push_back(i);
  }

  Split split;
  std::vector<bool> taken(static_cast<size_t>(n), false);
  for (int64_t c = 0; c < num_classes; ++c) {
    const int64_t per_class = per_class_counts[static_cast<size_t>(c)];
    RDD_CHECK_GE(per_class, 0);
    auto& members = by_class[static_cast<size_t>(c)];
    RDD_CHECK_GE(static_cast<int64_t>(members.size()), per_class)
        << "class " << c << " has too few nodes for the requested split";
    rng->Shuffle(&members);
    for (int64_t k = 0; k < per_class; ++k) {
      split.train.push_back(members[static_cast<size_t>(k)]);
      taken[static_cast<size_t>(members[static_cast<size_t>(k)])] = true;
    }
  }
  std::sort(split.train.begin(), split.train.end());

  std::vector<int64_t> rest;
  rest.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    if (!taken[static_cast<size_t>(i)]) rest.push_back(i);
  }
  RDD_CHECK_GE(static_cast<int64_t>(rest.size()), val_size + test_size)
      << "not enough nodes left for validation + test";
  rng->Shuffle(&rest);
  split.val.assign(rest.begin(), rest.begin() + val_size);
  split.test.assign(rest.begin() + val_size, rest.begin() + val_size + test_size);
  std::sort(split.val.begin(), split.val.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

bool ValidateDataset(const Dataset& dataset, std::string* error) {
  auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  const int64_t n = dataset.NumNodes();
  if (dataset.features.rows() != n) {
    return fail(StrFormat("feature rows (%lld) != num nodes (%lld)",
                          static_cast<long long>(dataset.features.rows()),
                          static_cast<long long>(n)));
  }
  if (static_cast<int64_t>(dataset.labels.size()) != n) {
    return fail("labels size != num nodes");
  }
  if (dataset.num_classes <= 0) return fail("num_classes must be positive");
  for (int64_t y : dataset.labels) {
    if (y < 0 || y >= dataset.num_classes) {
      return fail("label out of range");
    }
  }
  std::unordered_set<int64_t> seen;
  for (const std::vector<int64_t>* part :
       {&dataset.split.train, &dataset.split.val, &dataset.split.test}) {
    for (int64_t i : *part) {
      if (i < 0 || i >= n) return fail("split index out of range");
      if (!seen.insert(i).second) return fail("split sets overlap");
    }
  }
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace rdd
