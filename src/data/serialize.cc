#include "data/serialize.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "util/string_util.h"

namespace rdd {

namespace {

constexpr uint64_t kMagic = 0x5244445f44415431ULL;  // "RDD_DAT1"
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

class Writer {
 public:
  explicit Writer(std::FILE* file) : file_(file) {}

  bool ok() const { return ok_; }

  void WriteBytes(const void* data, size_t size) {
    if (!ok_) return;
    ok_ = std::fwrite(data, 1, size, file_) == size;
  }

  template <typename T>
  void WritePod(T value) {
    WriteBytes(&value, sizeof(T));
  }

  void WriteString(const std::string& s) {
    WritePod<uint64_t>(s.size());
    WriteBytes(s.data(), s.size());
  }

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    WritePod<uint64_t>(v.size());
    WriteBytes(v.data(), v.size() * sizeof(T));
  }

 private:
  std::FILE* file_;
  bool ok_ = true;
};

class Reader {
 public:
  explicit Reader(std::FILE* file) : file_(file) {}

  bool ok() const { return ok_; }

  void ReadBytes(void* data, size_t size) {
    if (!ok_) return;
    ok_ = std::fread(data, 1, size, file_) == size;
  }

  template <typename T>
  T ReadPod() {
    T value{};
    ReadBytes(&value, sizeof(T));
    return value;
  }

  std::string ReadString() {
    const uint64_t size = ReadPod<uint64_t>();
    if (!ok_ || size > (1ULL << 32)) {
      ok_ = false;
      return {};
    }
    std::string s(size, '\0');
    ReadBytes(s.data(), size);
    return s;
  }

  template <typename T>
  std::vector<T> ReadVector() {
    const uint64_t size = ReadPod<uint64_t>();
    if (!ok_ || size > (1ULL << 34) / sizeof(T)) {
      ok_ = false;
      return {};
    }
    std::vector<T> v(size);
    ReadBytes(v.data(), size * sizeof(T));
    return v;
  }

 private:
  std::FILE* file_;
  bool ok_ = true;
};

void WriteSparse(Writer* w, const SparseMatrix& m) {
  w->WritePod<int64_t>(m.rows());
  w->WritePod<int64_t>(m.cols());
  w->WriteVector(m.row_ptr());
  w->WriteVector(m.col_idx());
  w->WriteVector(m.values());
}

SparseMatrix ReadSparse(Reader* r) {
  const int64_t rows = r->ReadPod<int64_t>();
  const int64_t cols = r->ReadPod<int64_t>();
  const std::vector<int64_t> row_ptr = r->ReadVector<int64_t>();
  const std::vector<int64_t> col_idx = r->ReadVector<int64_t>();
  const std::vector<float> values = r->ReadVector<float>();
  if (!r->ok() || rows < 0 || cols < 0 ||
      row_ptr.size() != static_cast<size_t>(rows) + 1 ||
      col_idx.size() != values.size()) {
    return SparseMatrix();
  }
  // Rebuild through the COO path to re-validate indices.
  std::vector<SparseEntry> entries;
  entries.reserve(values.size());
  for (int64_t row = 0; row < rows; ++row) {
    for (int64_t k = row_ptr[static_cast<size_t>(row)];
         k < row_ptr[static_cast<size_t>(row) + 1]; ++k) {
      if (k < 0 || static_cast<size_t>(k) >= col_idx.size() ||
          col_idx[static_cast<size_t>(k)] < 0 ||
          col_idx[static_cast<size_t>(k)] >= cols) {
        return SparseMatrix();
      }
      entries.push_back({row, col_idx[static_cast<size_t>(k)],
                         values[static_cast<size_t>(k)]});
    }
  }
  return SparseMatrix::FromCoo(rows, cols, std::move(entries));
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::IoError(StrFormat("cannot open %s for writing",
                                     path.c_str()));
  }
  Writer w(file.get());
  w.WritePod(kMagic);
  w.WritePod(kVersion);
  w.WriteString(dataset.name);
  w.WritePod<int64_t>(dataset.graph.num_nodes());
  std::vector<int64_t> flat_edges;
  flat_edges.reserve(static_cast<size_t>(dataset.graph.num_edges()) * 2);
  for (const Edge& e : dataset.graph.edges()) {
    flat_edges.push_back(e.u);
    flat_edges.push_back(e.v);
  }
  w.WriteVector(flat_edges);
  WriteSparse(&w, dataset.features);
  w.WriteVector(dataset.labels);
  w.WritePod<int64_t>(dataset.num_classes);
  w.WriteVector(dataset.split.train);
  w.WriteVector(dataset.split.val);
  w.WriteVector(dataset.split.test);
  if (!w.ok()) {
    return Status::IoError(StrFormat("write failed for %s", path.c_str()));
  }
  return Status::Ok();
}

StatusOr<Dataset> LoadDataset(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::IoError(StrFormat("cannot open %s for reading",
                                     path.c_str()));
  }
  Reader r(file.get());
  if (r.ReadPod<uint64_t>() != kMagic) {
    return Status::InvalidArgument(
        StrFormat("%s is not an RDD dataset file", path.c_str()));
  }
  if (r.ReadPod<uint32_t>() != kVersion) {
    return Status::InvalidArgument(
        StrFormat("%s has an unsupported version", path.c_str()));
  }
  Dataset dataset;
  dataset.name = r.ReadString();
  const int64_t num_nodes = r.ReadPod<int64_t>();
  const std::vector<int64_t> flat_edges = r.ReadVector<int64_t>();
  if (!r.ok() || num_nodes < 0 || flat_edges.size() % 2 != 0) {
    return Status::InvalidArgument("corrupt graph section");
  }
  for (int64_t id : flat_edges) {
    if (id < 0 || id >= num_nodes) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
  }
  std::vector<Edge> edges;
  edges.reserve(flat_edges.size() / 2);
  for (size_t i = 0; i < flat_edges.size(); i += 2) {
    edges.push_back({flat_edges[i], flat_edges[i + 1]});
  }
  dataset.graph = Graph(num_nodes, edges);
  dataset.features = ReadSparse(&r);
  dataset.labels = r.ReadVector<int64_t>();
  dataset.num_classes = r.ReadPod<int64_t>();
  dataset.split.train = r.ReadVector<int64_t>();
  dataset.split.val = r.ReadVector<int64_t>();
  dataset.split.test = r.ReadVector<int64_t>();
  if (!r.ok()) {
    return Status::InvalidArgument("corrupt dataset payload");
  }
  std::string error;
  if (!ValidateDataset(dataset, &error)) {
    return Status::InvalidArgument("invalid dataset: " + error);
  }
  return dataset;
}

}  // namespace rdd
