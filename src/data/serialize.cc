#include "data/serialize.h"

#include <cstdint>
#include <cstdio>
#include <vector>

#include "data/binary_io.h"
#include "util/string_util.h"

namespace rdd {

namespace {

constexpr uint64_t kMagic = 0x5244445f44415431ULL;  // "RDD_DAT1"
// Version 2 added the endianness marker between magic and version and moved
// saves onto the atomic temp-file + rename path.
constexpr uint32_t kVersion = 2;

void WriteSparse(io::Writer* w, const SparseMatrix& m) {
  w->WritePod<int64_t>(m.rows());
  w->WritePod<int64_t>(m.cols());
  w->WriteVector(m.row_ptr());
  w->WriteVector(m.col_idx());
  w->WriteVector(m.values());
}

SparseMatrix ReadSparse(io::Reader* r) {
  const int64_t rows = r->ReadPod<int64_t>();
  const int64_t cols = r->ReadPod<int64_t>();
  const std::vector<int64_t> row_ptr = r->ReadVector<int64_t>();
  const std::vector<int64_t> col_idx = r->ReadVector<int64_t>();
  const std::vector<float> values = r->ReadVector<float>();
  if (!r->ok() || rows < 0 || cols < 0 ||
      row_ptr.size() != static_cast<size_t>(rows) + 1 ||
      col_idx.size() != values.size()) {
    return SparseMatrix();
  }
  // Rebuild through the COO path to re-validate indices.
  std::vector<SparseEntry> entries;
  entries.reserve(values.size());
  for (int64_t row = 0; row < rows; ++row) {
    for (int64_t k = row_ptr[static_cast<size_t>(row)];
         k < row_ptr[static_cast<size_t>(row) + 1]; ++k) {
      if (k < 0 || static_cast<size_t>(k) >= col_idx.size() ||
          col_idx[static_cast<size_t>(k)] < 0 ||
          col_idx[static_cast<size_t>(k)] >= cols) {
        return SparseMatrix();
      }
      entries.push_back({row, col_idx[static_cast<size_t>(k)],
                         values[static_cast<size_t>(k)]});
    }
  }
  return SparseMatrix::FromCoo(rows, cols, std::move(entries));
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  return io::SaveAtomic(path, [&dataset](io::Writer* w) {
    w->WriteHeader(kMagic, kVersion);
    w->WriteString(dataset.name);
    w->WritePod<int64_t>(dataset.graph.num_nodes());
    std::vector<int64_t> flat_edges;
    flat_edges.reserve(static_cast<size_t>(dataset.graph.num_edges()) * 2);
    for (const Edge& e : dataset.graph.edges()) {
      flat_edges.push_back(e.u);
      flat_edges.push_back(e.v);
    }
    w->WriteVector(flat_edges);
    WriteSparse(w, dataset.features);
    w->WriteVector(dataset.labels);
    w->WritePod<int64_t>(dataset.num_classes);
    w->WriteVector(dataset.split.train);
    w->WriteVector(dataset.split.val);
    w->WriteVector(dataset.split.test);
    return Status::Ok();
  });
}

StatusOr<Dataset> LoadDataset(const std::string& path) {
  io::FilePtr file;
  uint64_t file_size = 0;
  RDD_RETURN_IF_ERROR(io::OpenForRead(path, &file, &file_size));
  io::Reader r(file.get(), file_size);
  RDD_RETURN_IF_ERROR(r.CheckHeader(kMagic, kVersion, "dataset", path));
  Dataset dataset;
  dataset.name = r.ReadString();
  const int64_t num_nodes = r.ReadPod<int64_t>();
  const std::vector<int64_t> flat_edges = r.ReadVector<int64_t>();
  if (!r.ok() || num_nodes < 0 || flat_edges.size() % 2 != 0) {
    return Status::InvalidArgument("corrupt graph section");
  }
  for (int64_t id : flat_edges) {
    if (id < 0 || id >= num_nodes) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
  }
  std::vector<Edge> edges;
  edges.reserve(flat_edges.size() / 2);
  for (size_t i = 0; i < flat_edges.size(); i += 2) {
    edges.push_back({flat_edges[i], flat_edges[i + 1]});
  }
  dataset.graph = Graph(num_nodes, edges);
  dataset.features = ReadSparse(&r);
  dataset.labels = r.ReadVector<int64_t>();
  dataset.num_classes = r.ReadPod<int64_t>();
  dataset.split.train = r.ReadVector<int64_t>();
  dataset.split.val = r.ReadVector<int64_t>();
  dataset.split.test = r.ReadVector<int64_t>();
  if (!r.ok()) {
    return Status::InvalidArgument("corrupt dataset payload");
  }
  std::string error;
  if (!ValidateDataset(dataset, &error)) {
    return Status::InvalidArgument("invalid dataset: " + error);
  }
  return dataset;
}

}  // namespace rdd
