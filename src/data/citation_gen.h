#ifndef RDD_DATA_CITATION_GEN_H_
#define RDD_DATA_CITATION_GEN_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace rdd {

/// Configuration of the synthetic citation-network generator. The generator
/// stands in for the paper's Cora / Citeseer / Pubmed / NELL datasets (see
/// DESIGN.md Sec. 1.2 for why the substitution preserves the behaviours RDD
/// exploits). The topology is a degree-heterogeneous labeled SBM; features
/// are class-conditional sparse bags of words.
struct CitationGenConfig {
  std::string name = "synthetic";
  int64_t num_nodes = 0;
  int64_t num_features = 0;  ///< Vocabulary size (ignored if one_hot_features).
  int64_t num_edges = 0;     ///< Target undirected edge count.
  int64_t num_classes = 0;

  /// Topology shape (see LabeledSbmParams).
  double homophily = 0.86;
  double degree_skew = 0.75;

  /// Class imbalance: class sizes are proportional to (rank+1)^-imbalance.
  /// 0 gives balanced classes.
  double class_imbalance = 0.25;

  /// Features: each node draws ~`words_per_doc` distinct words; with
  /// probability `topic_purity` a word comes from its class's topic block,
  /// otherwise from the global vocabulary (noise).
  int64_t words_per_doc = 18;
  double topic_purity = 0.55;

  /// If true, features are a unique one-hot id per node (the paper's NELL
  /// setting), making classification rely on structure alone.
  bool one_hot_features = false;

  /// Split sizes (Planetoid protocol).
  int64_t labeled_per_class = 20;
  /// If > 0, overrides labeled_per_class with ceil(fraction * class size)
  /// per class (the paper's NELL setting of 10% per class).
  double labeled_fraction = 0.0;
  int64_t val_size = 500;
  int64_t test_size = 1000;
};

/// Generates a dataset from `config` with the given seed. Deterministic for
/// a fixed (config, seed) pair.
Dataset GenerateCitationNetwork(const CitationGenConfig& config,
                                uint64_t seed);

/// Preset matching the paper's Cora statistics (Table 2): 2708 nodes,
/// 1433 features, 5429 edges, 7 classes, 20 labels/class, 500 val, 1000 test.
CitationGenConfig CoraLikeConfig();

/// Preset matching Citeseer: 3327 nodes, 3703 features, 4732 edges,
/// 6 classes.
CitationGenConfig CiteseerLikeConfig();

/// Preset matching Pubmed: 19717 nodes, 500 features, 44338 edges,
/// 3 classes.
CitationGenConfig PubmedLikeConfig();

/// Preset matching NELL: 65755 nodes, one-hot features, 266144 edges,
/// 210 classes, 10% labels per class. `scale` in (0, 1] shrinks every count
/// proportionally (class count included) so the preset fits a single-core
/// CPU budget; scale = 1 reproduces the full Table 2 row.
CitationGenConfig NellLikeConfig(double scale = 0.12);

/// Web-scale preset for the mini-batch/partition path: `num_nodes` nodes
/// (1M-10M intended), ~8x as many edges, a compact vocabulary, and sparse
/// documents so feature nnz stays O(num_nodes). Splits are sized in
/// absolute node counts (not Planetoid's fixed 500/1000) so evaluation
/// stays meaningful at any scale. Generation is O(E) memory; every count is
/// 64-bit so 10M-node configs cannot overflow 32-bit intermediates.
CitationGenConfig WebScaleConfig(int64_t num_nodes);

}  // namespace rdd

#endif  // RDD_DATA_CITATION_GEN_H_
