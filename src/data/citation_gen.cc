#include "data/citation_gen.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "graph/generators.h"
#include "util/logging.h"

namespace rdd {

namespace {

/// Assigns class sizes proportional to (rank+1)^-imbalance, summing to n,
/// every class nonempty.
std::vector<int64_t> ClassSizes(int64_t n, int64_t num_classes,
                                double imbalance) {
  std::vector<double> weights(static_cast<size_t>(num_classes));
  double total = 0.0;
  for (int64_t c = 0; c < num_classes; ++c) {
    weights[static_cast<size_t>(c)] =
        std::pow(static_cast<double>(c + 1), -imbalance);
    total += weights[static_cast<size_t>(c)];
  }
  std::vector<int64_t> sizes(static_cast<size_t>(num_classes));
  int64_t assigned = 0;
  for (int64_t c = 0; c < num_classes; ++c) {
    sizes[static_cast<size_t>(c)] = std::max<int64_t>(
        1, static_cast<int64_t>(std::floor(
               static_cast<double>(n) * weights[static_cast<size_t>(c)] /
               total)));
    assigned += sizes[static_cast<size_t>(c)];
  }
  // Distribute the rounding remainder (or trim excess) round-robin.
  int64_t c = 0;
  while (assigned < n) {
    ++sizes[static_cast<size_t>(c % num_classes)];
    ++assigned;
    ++c;
  }
  while (assigned > n) {
    size_t idx = static_cast<size_t>(c % num_classes);
    if (sizes[idx] > 1) {
      --sizes[idx];
      --assigned;
    }
    ++c;
  }
  return sizes;
}

/// Draws sparse bag-of-words features: each node samples a number of
/// distinct words around `config.words_per_doc`; each word comes from the
/// node's class topic block with probability `topic_purity`, otherwise from
/// the full vocabulary.
SparseMatrix SampleBagOfWords(const CitationGenConfig& config,
                              const std::vector<int64_t>& labels, Rng* rng) {
  const int64_t vocab = config.num_features;
  // Partition the vocabulary: one topic block per class, the remainder is
  // shared noise vocabulary (also reachable through the global draws).
  const int64_t block = std::max<int64_t>(1, vocab / (config.num_classes + 1));
  std::vector<SparseEntry> entries;
  entries.reserve(static_cast<size_t>(config.num_nodes) *
                  static_cast<size_t>(config.words_per_doc));
  std::unordered_set<int64_t> words;
  for (int64_t i = 0; i < config.num_nodes; ++i) {
    const int64_t y = labels[static_cast<size_t>(i)];
    const int64_t block_start = (y * block) % std::max<int64_t>(1, vocab);
    // Word count jitters in [w/2, 3w/2] like real document lengths.
    const int64_t count = std::max<int64_t>(
        1, config.words_per_doc / 2 +
               rng->UniformInt(std::max<int64_t>(1, config.words_per_doc)));
    words.clear();
    int64_t attempts = 0;
    while (static_cast<int64_t>(words.size()) < count &&
           attempts < count * 20) {
      ++attempts;
      int64_t w;
      if (rng->Bernoulli(config.topic_purity)) {
        w = block_start + rng->UniformInt(block);
      } else {
        w = rng->UniformInt(vocab);
      }
      words.insert(w);
    }
    for (int64_t w : words) entries.push_back({i, w, 1.0f});
  }
  return SparseMatrix::FromCoo(config.num_nodes, vocab, std::move(entries));
}

/// Unique one-hot feature per node (the paper's NELL feature extension).
SparseMatrix OneHotFeatures(int64_t num_nodes) {
  std::vector<SparseEntry> entries;
  entries.reserve(static_cast<size_t>(num_nodes));
  for (int64_t i = 0; i < num_nodes; ++i) entries.push_back({i, i, 1.0f});
  return SparseMatrix::FromCoo(num_nodes, num_nodes, std::move(entries));
}

}  // namespace

Dataset GenerateCitationNetwork(const CitationGenConfig& config,
                                uint64_t seed) {
  RDD_CHECK_GT(config.num_nodes, 0);
  RDD_CHECK_GT(config.num_classes, 0);
  RDD_CHECK(config.one_hot_features || config.num_features > 0);
  Rng rng(seed);

  // Labels: contiguous blocks by class, then shuffled to random node ids.
  const std::vector<int64_t> sizes =
      ClassSizes(config.num_nodes, config.num_classes, config.class_imbalance);
  std::vector<int64_t> labels;
  labels.reserve(static_cast<size_t>(config.num_nodes));
  for (int64_t c = 0; c < config.num_classes; ++c) {
    labels.insert(labels.end(), static_cast<size_t>(sizes[static_cast<size_t>(c)]),
                  c);
  }
  rng.Shuffle(&labels);

  Dataset dataset;
  dataset.name = config.name;
  dataset.labels = labels;
  dataset.num_classes = config.num_classes;

  LabeledSbmParams sbm;
  sbm.target_edges = config.num_edges;
  sbm.homophily = config.homophily;
  sbm.degree_skew = config.degree_skew;
  dataset.graph = MakeLabeledSbmGraph(labels, sbm, &rng);

  dataset.features = config.one_hot_features
                         ? OneHotFeatures(config.num_nodes)
                         : SampleBagOfWords(config, labels, &rng);

  std::vector<int64_t> per_class(static_cast<size_t>(config.num_classes));
  for (int64_t c = 0; c < config.num_classes; ++c) {
    if (config.labeled_fraction > 0.0) {
      per_class[static_cast<size_t>(c)] = std::max<int64_t>(
          1, static_cast<int64_t>(std::ceil(
                 config.labeled_fraction *
                 static_cast<double>(sizes[static_cast<size_t>(c)]))));
    } else {
      per_class[static_cast<size_t>(c)] = config.labeled_per_class;
    }
  }
  dataset.split = MakeStratifiedSplit(labels, per_class, config.val_size,
                                      config.test_size, &rng);

  std::string error;
  RDD_CHECK(ValidateDataset(dataset, &error)) << error;
  return dataset;
}

CitationGenConfig CoraLikeConfig() {
  CitationGenConfig config;
  config.name = "cora-like";
  config.num_nodes = 2708;
  config.num_features = 1433;
  config.num_edges = 5429;
  config.num_classes = 7;
  // Calibrated so a 2-layer GCN lands near the paper's 81.8% on Cora while
  // a feature-only MLP stays far behind (see tests/citation_gen_test.cc).
  config.homophily = 0.72;
  config.words_per_doc = 18;
  config.topic_purity = 0.29;
  config.labeled_per_class = 20;
  return config;
}

CitationGenConfig CiteseerLikeConfig() {
  CitationGenConfig config;
  config.name = "citeseer-like";
  config.num_nodes = 3327;
  config.num_features = 3703;
  config.num_edges = 4732;
  config.num_classes = 6;
  // Citeseer is sparser and noisier than Cora; GCN accuracy there is ~11
  // points lower in the paper. Lower homophily/purity reproduce that gap.
  config.homophily = 0.68;
  config.words_per_doc = 22;
  config.topic_purity = 0.35;
  config.labeled_per_class = 20;
  return config;
}

CitationGenConfig PubmedLikeConfig() {
  CitationGenConfig config;
  config.name = "pubmed-like";
  config.num_nodes = 19717;
  config.num_features = 500;
  config.num_edges = 44338;
  config.num_classes = 3;
  config.homophily = 0.70;
  config.words_per_doc = 14;
  config.topic_purity = 0.30;
  config.labeled_per_class = 20;
  return config;
}

CitationGenConfig NellLikeConfig(double scale) {
  RDD_CHECK_GT(scale, 0.0);
  RDD_CHECK_LE(scale, 1.0);
  CitationGenConfig config;
  config.name = "nell-like";
  config.num_nodes = std::max<int64_t>(
      200, static_cast<int64_t>(std::llround(65755.0 * scale)));
  config.num_edges = std::max<int64_t>(
      400, static_cast<int64_t>(std::llround(266144.0 * scale)));
  config.num_classes = std::max<int64_t>(
      5, static_cast<int64_t>(std::llround(210.0 * scale)));
  config.one_hot_features = true;
  config.num_features = config.num_nodes;
  config.homophily = 0.84;
  config.degree_skew = 0.9;
  config.labeled_fraction = 0.10;  // The paper's 10% per class.
  config.labeled_per_class = 0;
  config.val_size = 500;
  config.test_size = 1000;
  return config;
}

CitationGenConfig WebScaleConfig(int64_t num_nodes) {
  RDD_CHECK_GE(num_nodes, 1000);
  CitationGenConfig config;
  config.name = "web-scale-" + std::to_string(num_nodes);
  config.num_nodes = num_nodes;
  // Mean degree ~16 (8 undirected edges per node), in the range of web-scale
  // benchmarks like ogbn-products; int64 throughout, so 10M nodes -> 80M
  // edges stays far from any 32-bit boundary.
  config.num_edges = num_nodes * 8;
  config.num_classes = 16;
  // Compact vocabulary + short documents keep feature nnz at ~8 * num_nodes:
  // feature memory scales with E, not with num_nodes * num_features.
  config.num_features = 128;
  config.words_per_doc = 8;
  config.topic_purity = 0.35;
  config.homophily = 0.74;
  config.degree_skew = 0.85;
  // Absolute split sizes that grow with the graph: 0.2% labeled (spread over
  // the classes via labeled_fraction), 0.5% validation, 1% test.
  config.labeled_fraction = 0.002;
  config.labeled_per_class = 0;
  config.val_size = std::max<int64_t>(500, num_nodes / 200);
  config.test_size = std::max<int64_t>(1000, num_nodes / 100);
  return config;
}

}  // namespace rdd
