#ifndef RDD_DATA_CHECKPOINT_H_
#define RDD_DATA_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "tensor/matrix.h"
#include "util/status.h"

namespace rdd {

/// One named dense tensor inside a model record (a parameter matrix).
struct NamedTensor {
  std::string name;
  Matrix value;
};

/// The serialized form of one trained model: an architecture tag, scalar
/// metadata (dimensions and hyper-parameters as ordered key/value lists),
/// an ensemble weight, and the parameter tensors in registration order.
/// This layer is deliberately model-agnostic — the data library knows how
/// to move records to and from disk byte-identically; the mapping between
/// records and live GraphModel objects lives in src/models/model_io.
struct ModelRecord {
  std::string arch;    ///< ModelKindToString name, e.g. "GCN".
  double weight = 1.0; ///< Ensemble weight alpha (1.0 for single models).
  std::vector<std::pair<std::string, int64_t>> ints;
  std::vector<std::pair<std::string, double>> doubles;
  std::vector<NamedTensor> tensors;

  /// Appends a metadata entry (ordered, so round-trips are byte-identical).
  void SetInt(const std::string& key, int64_t value);
  void SetDouble(const std::string& key, double value);

  /// Looks up a metadata entry; returns false when the key is absent.
  bool GetInt(const std::string& key, int64_t* out) const;
  bool GetDouble(const std::string& key, double* out) const;
};

/// A versioned model checkpoint: a tag (conventionally the dataset name)
/// plus one record per model. A distilled MLP is a 1-record checkpoint; an
/// RDD ensemble stores T records with their alpha weights.
struct Checkpoint {
  std::string tag;
  std::vector<ModelRecord> models;
};

/// Writes `checkpoint` to `path`. Atomic (temp file + verified flush +
/// rename) like SaveDataset; save -> load -> save round-trips are
/// byte-identical. Returns IoError on filesystem failure.
Status SaveCheckpoint(const Checkpoint& checkpoint, const std::string& path);

/// Reads a checkpoint previously written by SaveCheckpoint. Returns IoError
/// for unreadable files and InvalidArgument for corrupt, truncated,
/// foreign-endian, or version-mismatched content. Length fields are bounded
/// by the file size, so hostile values cannot trigger huge allocations.
StatusOr<Checkpoint> LoadCheckpoint(const std::string& path);

}  // namespace rdd

#endif  // RDD_DATA_CHECKPOINT_H_
