#ifndef RDD_DATA_BINARY_IO_H_
#define RDD_DATA_BINARY_IO_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "tensor/matrix.h"
#include "util/status.h"

namespace rdd::io {

/// Shared substrate of the library's binary file formats (datasets,
/// checkpoints). Every format is: 8-byte magic, 1 endianness byte, 4-byte
/// version, then format-specific PODs/strings/arrays written host-endian.
/// Readers are hardened against hostile or truncated input: every length
/// field is validated against the bytes actually remaining in the file
/// before anything is allocated, so a corrupt file produces a clean error
/// instead of a crash or a multi-gigabyte allocation. Writers never touch
/// the target path directly — SaveAtomic stages into a sibling temp file
/// and renames only after a verified flush, so a crash or full disk cannot
/// leave a truncated file at the final path.

/// Endianness marker written after the magic. Only the host's own marker is
/// accepted on load; foreign-endian files are rejected with a clear error
/// rather than silently misparsed.
inline constexpr uint8_t kLittleEndianMarker = 1;
inline constexpr uint8_t kBigEndianMarker = 2;

/// The marker matching this machine's byte order.
uint8_t HostEndianMarker();

/// Buffered forward-only writer over an open FILE*. Errors latch: after the
/// first failed write, every subsequent call is a no-op and ok() is false.
class Writer {
 public:
  explicit Writer(std::FILE* file) : file_(file) {}

  bool ok() const { return ok_; }

  void WriteBytes(const void* data, size_t size);

  template <typename T>
  void WritePod(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteBytes(&value, sizeof(T));
  }

  /// Length-prefixed (uint64) string.
  void WriteString(const std::string& s);

  /// Length-prefixed (uint64 element count) POD array.
  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WritePod<uint64_t>(v.size());
    WriteBytes(v.data(), v.size() * sizeof(T));
  }

  /// Dense matrix: int64 rows, int64 cols, then rows*cols row-major floats.
  void WriteMatrix(const Matrix& m);

  /// Format header: magic, endianness marker, version.
  void WriteHeader(uint64_t magic, uint32_t version);

 private:
  std::FILE* file_;
  bool ok_ = true;
};

/// Bounded forward-only reader. Constructed with the file's total size;
/// every read is checked against the bytes remaining, so a hostile length
/// field can never trigger an allocation larger than the file itself.
/// Errors latch like Writer's.
class Reader {
 public:
  Reader(std::FILE* file, uint64_t file_size)
      : file_(file), remaining_(file_size) {}

  bool ok() const { return ok_; }
  uint64_t remaining() const { return remaining_; }

  void ReadBytes(void* data, size_t size);

  template <typename T>
  T ReadPod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    ReadBytes(&value, sizeof(T));
    return value;
  }

  std::string ReadString();

  template <typename T>
  std::vector<T> ReadVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint64_t size = ReadPod<uint64_t>();
    if (!ok_ || size > remaining_ / sizeof(T)) {
      ok_ = false;
      return {};
    }
    std::vector<T> v(size);
    if (size > 0) ReadBytes(v.data(), size * sizeof(T));
    return v;
  }

  Matrix ReadMatrix();

  /// Validates the header written by Writer::WriteHeader. Returns OK when
  /// magic, endianness, and version all match; otherwise a distinct
  /// InvalidArgument for "not a <what> file", foreign endianness, and
  /// unsupported version. `what` and `path` flavor the error messages.
  Status CheckHeader(uint64_t magic, uint32_t version, const char* what,
                     const std::string& path);

 private:
  std::FILE* file_;
  uint64_t remaining_;
  bool ok_ = true;
};

/// Closes the FILE* on scope exit (shared by the dataset and checkpoint
/// serializers and their tests).
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// Runs `write_fn` against a Writer over a temp file next to `path`, then
/// fflush-checks, fclose-checks, and atomically renames onto `path`. On any
/// failure the temp file is removed and `path` is untouched. `write_fn`
/// returns OK to commit; any error aborts the save and is returned.
Status SaveAtomic(const std::string& path,
                  const std::function<Status(Writer*)>& write_fn);

/// Opens `path` for reading and measures its size. Returns IoError when the
/// file cannot be opened or its size cannot be determined.
Status OpenForRead(const std::string& path, FilePtr* file,
                   uint64_t* file_size);

}  // namespace rdd::io

#endif  // RDD_DATA_BINARY_IO_H_
