#include "ensemble/co_training.h"

#include "ensemble/self_training.h"
#include "memory/workspace.h"
#include "models/label_propagation.h"
#include "util/random.h"

namespace rdd {

CoTrainingResult TrainCoTraining(const Dataset& dataset,
                                 const GraphContext& context,
                                 const CoTrainingConfig& config,
                                 uint64_t seed) {
  memory::Workspace workspace;  // One pool scope for both views.
  Rng seeder(seed);
  // Seed derivation is hoisted ahead of any data-dependent work so the
  // model's initialization is a pure function of the run seed, independent
  // of how (or on which thread) the label-propagation view executes.
  const uint64_t model_seed = seeder.NextU64();
  CoTrainingResult result;

  // Random-walk view: label propagation over the graph topology.
  const Matrix walk_probs = PropagateLabels(dataset);

  std::vector<bool> excluded = dataset.TrainMask();
  for (int64_t i : dataset.split.val) excluded[static_cast<size_t>(i)] = true;
  for (int64_t i : dataset.split.test) excluded[static_cast<size_t>(i)] = true;
  const auto additions = SelectConfidentPerClass(
      walk_probs, dataset.num_classes, config.additions_per_class, excluded);

  Dataset working = dataset;
  for (const auto& [node, pseudo] : additions) {
    working.labels[static_cast<size_t>(node)] = pseudo;
    working.split.train.push_back(node);
    ++result.pseudo_labels_added;
    if (dataset.labels[static_cast<size_t>(node)] == pseudo) {
      ++result.pseudo_labels_correct;
    }
  }

  auto model = BuildModel(context, config.base_model, model_seed);
  result.final_report = TrainSupervised(model.get(), working, config.train);
  result.test_accuracy =
      EvaluateAccuracy(model.get(), dataset, dataset.split.test);
  return result;
}

}  // namespace rdd
