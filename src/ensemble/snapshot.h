#ifndef RDD_ENSEMBLE_SNAPSHOT_H_
#define RDD_ENSEMBLE_SNAPSHOT_H_

#include <cstdint>

#include "data/dataset.h"
#include "ensemble/bagging.h"
#include "models/model_factory.h"
#include "train/trainer.h"

namespace rdd {

/// Settings for the Snapshot Ensemble baseline (Huang et al., discussed in
/// Sec. 2.3 of the paper): ONE model is trained through several cosine-
/// annealed learning-rate cycles; at the end of each cycle — a local
/// minimum — its predictions are snapshotted as an ensemble member. Cheaper
/// than Bagging (one training run yields M members) but with limited
/// diversity, which is exactly the weakness the paper contrasts RDD
/// against.
struct SnapshotConfig {
  int num_cycles = 5;          ///< Ensemble size (one snapshot per cycle).
  int epochs_per_cycle = 60;
  float max_lr = 0.02f;        ///< Cycle-start learning rate.
  float min_lr = 1e-4f;        ///< Cycle-end learning rate.
  ModelConfig base_model;
  TrainConfig train;           ///< Only lr-independent fields are used.
};

/// Trains the snapshot schedule and returns the uniform ensemble of the
/// per-cycle snapshots.
EnsembleTrainResult TrainSnapshotEnsemble(const Dataset& dataset,
                                          const GraphContext& context,
                                          const SnapshotConfig& config,
                                          uint64_t seed);

/// The cyclic learning rate of Loshchilov & Hutter's SGDR as used by
/// Snapshot Ensembles: cosine decay from max_lr to min_lr within each
/// cycle. `epoch_in_cycle` must lie in [0, epochs_per_cycle).
float SnapshotCyclicLr(float max_lr, float min_lr, int epoch_in_cycle,
                       int epochs_per_cycle);

}  // namespace rdd

#endif  // RDD_ENSEMBLE_SNAPSHOT_H_
