#include "ensemble/mean_teacher.h"

#include <algorithm>

#include "autograd/ops.h"
#include "memory/workspace.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace rdd {

MeanTeacherResult TrainMeanTeacher(const Dataset& dataset,
                                   const GraphContext& context,
                                   const MeanTeacherConfig& config,
                                   uint64_t seed) {
  RDD_CHECK_GT(config.ema_decay, 0.0f);
  RDD_CHECK_LT(config.ema_decay, 1.0f);
  WallTimer timer;
  memory::Workspace workspace;  // One pool scope for the EMA epoch loop.
  Rng seeder(seed);

  // Student and teacher share the architecture; the teacher starts as an
  // exact copy and is never trained by gradient.
  auto student = BuildModel(context, config.base_model, seeder.NextU64());
  auto teacher = BuildModel(context, config.base_model, seeder.NextU64());
  std::vector<Variable> student_params = student->Parameters();
  std::vector<Variable> teacher_params = teacher->Parameters();
  RDD_CHECK_EQ(student_params.size(), teacher_params.size());
  RestoreParameters(SnapshotParameters(student_params), &teacher_params);

  std::vector<int64_t> all_nodes(static_cast<size_t>(context.num_nodes));
  for (int64_t i = 0; i < context.num_nodes; ++i) {
    all_nodes[static_cast<size_t>(i)] = i;
  }

  Adam optimizer(student_params, config.train.lr,
                 config.train.weight_decay);
  MeanTeacherResult result;
  double best_val = 0.0;
  std::vector<Matrix> best_teacher_params;
  int epochs_since_best = 0;
  for (int epoch = 0; epoch < config.train.max_epochs; ++epoch) {
    // Consistency target: the EMA teacher's (evaluation-mode) softmax.
    const Matrix teacher_probs = teacher->PredictProbs();

    ModelOutput output = student->Forward(/*training=*/true);
    Variable supervised = ag::SoftmaxCrossEntropy(
        output.logits, dataset.labels, dataset.split.train,
        ag::Reduction::kMean);
    const float rampup =
        config.rampup_epochs > 0
            ? std::min(1.0f, static_cast<float>(epoch) /
                                 static_cast<float>(config.rampup_epochs))
            : 1.0f;
    Variable consistency = ag::SoftCrossEntropy(
        output.logits, teacher_probs, all_nodes, ag::Reduction::kMean);
    Variable loss = ag::WeightedSum(
        {supervised, consistency},
        {1.0f, config.consistency_weight * rampup});
    loss.Backward();
    optimizer.Step();

    // EMA update: teacher <- decay * teacher + (1 - decay) * student.
    for (size_t k = 0; k < teacher_params.size(); ++k) {
      Matrix* tw = teacher_params[k].mutable_value();
      const Matrix& sw = student_params[k].value();
      tw->Scale(config.ema_decay);
      tw->Axpy(1.0f - config.ema_decay, sw);
    }

    const double val_acc =
        EvaluateAccuracy(teacher.get(), dataset, dataset.split.val);
    result.report.val_history.push_back(val_acc);
    result.report.epochs_run = epoch + 1;
    if (val_acc > best_val) {
      best_val = val_acc;
      epochs_since_best = 0;
      if (config.train.restore_best) {
        best_teacher_params = SnapshotParameters(teacher_params);
      }
    } else if (++epochs_since_best >= config.train.patience) {
      break;
    }
  }
  if (config.train.restore_best && !best_teacher_params.empty()) {
    RestoreParameters(best_teacher_params, &teacher_params);
  }
  result.report.best_val_accuracy = best_val;
  result.teacher_test_accuracy =
      EvaluateAccuracy(teacher.get(), dataset, dataset.split.test);
  result.student_test_accuracy =
      EvaluateAccuracy(student.get(), dataset, dataset.split.test);
  result.report.test_accuracy = result.teacher_test_accuracy;
  result.report.train_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace rdd
