#include "ensemble/bans.h"

#include <cmath>

#include "autograd/ops.h"
#include "memory/workspace.h"
#include "observe/trace.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace rdd {

namespace {

/// Applies the KD temperature to a row-stochastic matrix: each row becomes
/// p_i^(1/T) renormalized. T = 1 is the identity.
Matrix ApplyTemperature(const Matrix& probs, float temperature) {
  if (temperature == 1.0f) return probs;
  RDD_CHECK_GT(temperature, 0.0f);
  Matrix out(probs.rows(), probs.cols());
  const double exponent = 1.0 / static_cast<double>(temperature);
  for (int64_t r = 0; r < probs.rows(); ++r) {
    const float* in = probs.RowData(r);
    float* o = out.RowData(r);
    double sum = 0.0;
    for (int64_t c = 0; c < probs.cols(); ++c) {
      o[c] = static_cast<float>(
          std::pow(static_cast<double>(in[c]) + 1e-12, exponent));
      sum += o[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int64_t c = 0; c < probs.cols(); ++c) o[c] *= inv;
  }
  return out;
}

}  // namespace

EnsembleTrainResult TrainBans(const Dataset& dataset,
                              const GraphContext& context,
                              const BansConfig& config, uint64_t seed) {
  RDD_CHECK_GT(config.num_models, 0);
  WallTimer timer;
  memory::Workspace workspace;  // One pool scope across the student chain.
  Rng seeder(seed);
  // Student seeds are hoisted into an up-front vector (same draw order as
  // the old in-loop NextU64 calls, so values are unchanged). The chain
  // itself is inherently sequential — student t distills from student t-1 —
  // but each student's initialization is now independent of when its
  // predecessors ran.
  std::vector<uint64_t> member_seeds(static_cast<size_t>(config.num_models));
  for (uint64_t& s : member_seeds) s = seeder.NextU64();
  EnsembleTrainResult result;

  // Every node (labeled or not) is a distillation target in BANs.
  std::vector<int64_t> all_nodes(static_cast<size_t>(context.num_nodes));
  for (int64_t i = 0; i < context.num_nodes; ++i) {
    all_nodes[static_cast<size_t>(i)] = i;
  }

  Matrix teacher_probs;  // Softmax outputs of the previous student.
  for (int t = 0; t < config.num_models; ++t) {
    observe::TraceSpan span("bans/generation", t);
    auto model = BuildModel(context, config.base_model,
                            member_seeds[static_cast<size_t>(t)]);
    if (t == 0) {
      result.reports.push_back(
          TrainSupervised(model.get(), dataset, config.train));
    } else {
      const Matrix targets =
          ApplyTemperature(teacher_probs, config.temperature);
      result.reports.push_back(TrainWithLoss(
          model.get(), dataset, config.train,
          [&dataset, &targets, &all_nodes, &config](const ModelOutput& output,
                                                    int /*epoch*/) {
            Variable supervised = ag::SoftmaxCrossEntropy(
                output.logits, dataset.labels, dataset.split.train,
                ag::Reduction::kMean);
            Variable mimic =
                ag::SoftCrossEntropy(output.logits, targets, all_nodes,
                                     ag::Reduction::kMean);
            return ag::WeightedSum({supervised, mimic},
                                   {1.0f, config.kd_weight});
          }));
    }
    teacher_probs = model->PredictProbs();
    result.ensemble.AddMember(teacher_probs, /*weight=*/1.0);
    result.ensemble_accuracy_after_member.push_back(
        result.ensemble.Accuracy(dataset.labels, dataset.split.test));
  }
  result.ensemble_test_accuracy =
      result.ensemble.Accuracy(dataset.labels, dataset.split.test);
  result.average_member_test_accuracy =
      result.ensemble.AverageMemberAccuracy(dataset.labels,
                                            dataset.split.test);
  result.total_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace rdd
