#ifndef RDD_ENSEMBLE_BANS_H_
#define RDD_ENSEMBLE_BANS_H_

#include <cstdint>

#include "data/dataset.h"
#include "ensemble/bagging.h"
#include "models/model_factory.h"
#include "train/trainer.h"

namespace rdd {

/// Settings for the Born-Again Networks (BANs) baseline: a chain of
/// students where student t is trained with the supervised loss plus a
/// knowledge-distillation term that mimics ALL softmax outputs of student
/// t-1 — no reliability filtering. The trained students are combined with
/// uniform weights. This is the method RDD's reliability mechanism is
/// contrasted against in Tables 3 and 6.
struct BansConfig {
  int num_models = 5;
  /// Weight of the distillation (teacher-mimic) term relative to the
  /// supervised loss.
  float kd_weight = 1.0f;
  /// Distillation temperature (Hinton et al.): the teacher's distribution
  /// is sharpened (T < 1) or softened (T > 1) as p_i^(1/T), renormalized,
  /// before the student mimics it. 1 leaves the targets unchanged.
  float temperature = 1.0f;
  ModelConfig base_model;
  TrainConfig train;
};

/// Trains the BANs chain and returns the uniform ensemble.
EnsembleTrainResult TrainBans(const Dataset& dataset,
                              const GraphContext& context,
                              const BansConfig& config, uint64_t seed);

}  // namespace rdd

#endif  // RDD_ENSEMBLE_BANS_H_
