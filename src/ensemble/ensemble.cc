#include "ensemble/ensemble.h"

#include "nn/metrics.h"
#include "util/logging.h"

namespace rdd {

void SoftmaxEnsemble::AddMember(Matrix probs, double weight) {
  RDD_CHECK_GT(weight, 0.0);
  if (!member_probs_.empty()) {
    RDD_CHECK_EQ(probs.rows(), member_probs_.front().rows());
    RDD_CHECK_EQ(probs.cols(), member_probs_.front().cols());
  }
  member_probs_.push_back(std::move(probs));
  weights_.push_back(weight);
}

const Matrix& SoftmaxEnsemble::member_probs(int64_t t) const {
  RDD_CHECK_GE(t, 0);
  RDD_CHECK_LT(t, size());
  return member_probs_[static_cast<size_t>(t)];
}

Matrix SoftmaxEnsemble::CombinedProbs() const {
  RDD_CHECK_GT(size(), 0);
  double total = 0.0;
  for (double w : weights_) total += w;
  Matrix combined(member_probs_.front().rows(), member_probs_.front().cols());
  for (size_t t = 0; t < member_probs_.size(); ++t) {
    combined.Axpy(static_cast<float>(weights_[t] / total), member_probs_[t]);
  }
  return combined;
}

double SoftmaxEnsemble::Accuracy(const std::vector<int64_t>& labels,
                                 const std::vector<int64_t>& indices) const {
  return rdd::Accuracy(CombinedProbs(), labels, indices);
}

double SoftmaxEnsemble::AverageMemberAccuracy(
    const std::vector<int64_t>& labels,
    const std::vector<int64_t>& indices) const {
  RDD_CHECK_GT(size(), 0);
  double sum = 0.0;
  for (const Matrix& probs : member_probs_) {
    sum += rdd::Accuracy(probs, labels, indices);
  }
  return sum / static_cast<double>(size());
}

}  // namespace rdd
