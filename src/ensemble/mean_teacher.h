#ifndef RDD_ENSEMBLE_MEAN_TEACHER_H_
#define RDD_ENSEMBLE_MEAN_TEACHER_H_

#include <cstdint>

#include "data/dataset.h"
#include "models/model_factory.h"
#include "train/trainer.h"

namespace rdd {

/// Settings for the Mean Teacher baseline (Tarvainen & Valpola, discussed
/// in Secs. 1.1 and 2.4 of the paper): the teacher's weights are an
/// exponential moving average of the student's weights, and the student is
/// trained with the supervised loss plus a consistency term that matches
/// its (dropout-perturbed) predictions to the teacher's on every node.
struct MeanTeacherConfig {
  float ema_decay = 0.99f;          ///< Teacher <- decay*teacher +
                                    ///< (1-decay)*student, per epoch.
  float consistency_weight = 1.0f;  ///< Weight of the consistency loss.
  /// Linear ramp-up length for the consistency weight (epochs); the usual
  /// Mean-Teacher trick to keep early noisy targets from dominating.
  int rampup_epochs = 40;
  ModelConfig base_model;
  TrainConfig train;
};

/// Outcome of a Mean Teacher run.
struct MeanTeacherResult {
  /// Test accuracy of the EMA teacher (the model Mean Teacher deploys).
  double teacher_test_accuracy = 0.0;
  /// Test accuracy of the underlying student.
  double student_test_accuracy = 0.0;
  TrainReport report;
};

/// Trains a student under EMA-teacher consistency and returns both models'
/// accuracies.
MeanTeacherResult TrainMeanTeacher(const Dataset& dataset,
                                   const GraphContext& context,
                                   const MeanTeacherConfig& config,
                                   uint64_t seed);

}  // namespace rdd

#endif  // RDD_ENSEMBLE_MEAN_TEACHER_H_
