#include "ensemble/self_training.h"

#include <algorithm>

#include "memory/workspace.h"
#include "util/logging.h"
#include "util/random.h"

namespace rdd {

std::vector<std::pair<int64_t, int64_t>> SelectConfidentPerClass(
    const Matrix& probs, int64_t num_classes, int64_t per_class,
    const std::vector<bool>& exclude) {
  RDD_CHECK_EQ(probs.cols(), num_classes);
  RDD_CHECK_EQ(static_cast<int64_t>(exclude.size()), probs.rows());
  // Candidates per class: (confidence, node), where confidence is the
  // node's probability of its argmax class.
  std::vector<std::vector<std::pair<float, int64_t>>> candidates(
      static_cast<size_t>(num_classes));
  for (int64_t i = 0; i < probs.rows(); ++i) {
    if (exclude[static_cast<size_t>(i)]) continue;
    const float* row = probs.RowData(i);
    int64_t best = 0;
    for (int64_t c = 1; c < num_classes; ++c) {
      if (row[c] > row[best]) best = c;
    }
    candidates[static_cast<size_t>(best)].push_back({row[best], i});
  }
  std::vector<std::pair<int64_t, int64_t>> selected;
  for (int64_t c = 0; c < num_classes; ++c) {
    auto& pool = candidates[static_cast<size_t>(c)];
    const int64_t take =
        std::min(per_class, static_cast<int64_t>(pool.size()));
    std::partial_sort(pool.begin(), pool.begin() + take, pool.end(),
                      [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    for (int64_t k = 0; k < take; ++k) {
      selected.push_back({pool[static_cast<size_t>(k)].second, c});
    }
  }
  return selected;
}

SelfTrainingResult TrainSelfTraining(const Dataset& dataset,
                                     const GraphContext& context,
                                     const SelfTrainingConfig& config,
                                     uint64_t seed) {
  RDD_CHECK_GE(config.rounds, 0);
  memory::Workspace workspace;  // One pool scope across pseudo-label rounds.
  Rng seeder(seed);
  // Seeds for the initial model and every potential retraining round, drawn
  // up front in the same order the in-loop NextU64 calls produced them. A
  // round that breaks early simply leaves its seed unused; the seeds that
  // ARE consumed match the old sequence exactly.
  std::vector<uint64_t> round_seeds(static_cast<size_t>(config.rounds) + 1);
  for (uint64_t& s : round_seeds) s = seeder.NextU64();
  SelfTrainingResult result;

  // Working copy whose labels / training set absorb pseudo labels. The
  // validation and test sets never change.
  Dataset working = dataset;
  std::vector<bool> in_train = dataset.TrainMask();
  // Validation/test nodes must never be pseudo-labeled into training.
  std::vector<bool> excluded = in_train;
  for (int64_t i : dataset.split.val) excluded[static_cast<size_t>(i)] = true;
  for (int64_t i : dataset.split.test) excluded[static_cast<size_t>(i)] = true;

  auto model = BuildModel(context, config.base_model, round_seeds[0]);
  result.final_report = TrainSupervised(model.get(), working, config.train);

  for (int round = 0; round < config.rounds; ++round) {
    const Matrix probs = model->PredictProbs();
    const auto additions = SelectConfidentPerClass(
        probs, dataset.num_classes, config.additions_per_class, excluded);
    if (additions.empty()) break;
    for (const auto& [node, pseudo] : additions) {
      working.labels[static_cast<size_t>(node)] = pseudo;
      working.split.train.push_back(node);
      excluded[static_cast<size_t>(node)] = true;
      ++result.pseudo_labels_added;
      if (dataset.labels[static_cast<size_t>(node)] == pseudo) {
        ++result.pseudo_labels_correct;
      }
    }
    model = BuildModel(context, config.base_model,
                       round_seeds[static_cast<size_t>(round) + 1]);
    result.final_report = TrainSupervised(model.get(), working, config.train);
  }

  // Test accuracy is always measured against the TRUE labels.
  result.test_accuracy =
      EvaluateAccuracy(model.get(), dataset, dataset.split.test);
  return result;
}

}  // namespace rdd
