#ifndef RDD_ENSEMBLE_ENSEMBLE_H_
#define RDD_ENSEMBLE_ENSEMBLE_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace rdd {

/// A weighted softmax-averaging ensemble over frozen base models. Member
/// outputs are cached at insertion time (base models are never re-run after
/// training), so combination is a cheap weighted average:
///   H_T = sum_t alpha_t h_t   (Eq. 13 of the paper),
/// with the weights normalized to sum to 1.
class SoftmaxEnsemble {
 public:
  SoftmaxEnsemble() = default;

  /// Adds a member by its cached row-stochastic predictions and raw weight
  /// alpha_t > 0. All members must agree on the matrix shape.
  void AddMember(Matrix probs, double weight);

  /// Number of members.
  int64_t size() const { return static_cast<int64_t>(member_probs_.size()); }

  /// Raw (unnormalized) member weights, in insertion order.
  const std::vector<double>& weights() const { return weights_; }

  /// Cached predictions of member t.
  const Matrix& member_probs(int64_t t) const;

  /// Weight-normalized average of the member predictions. Requires at
  /// least one member.
  Matrix CombinedProbs() const;

  /// Accuracy of the combined prediction over `indices`.
  double Accuracy(const std::vector<int64_t>& labels,
                  const std::vector<int64_t>& indices) const;

  /// Mean accuracy of the individual members over `indices` (the "Average"
  /// row of Table 6).
  double AverageMemberAccuracy(const std::vector<int64_t>& labels,
                               const std::vector<int64_t>& indices) const;

 private:
  std::vector<Matrix> member_probs_;
  std::vector<double> weights_;
};

}  // namespace rdd

#endif  // RDD_ENSEMBLE_ENSEMBLE_H_
