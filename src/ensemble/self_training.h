#ifndef RDD_ENSEMBLE_SELF_TRAINING_H_
#define RDD_ENSEMBLE_SELF_TRAINING_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "models/model_factory.h"
#include "train/trainer.h"

namespace rdd {

/// Settings for the Self-Training baseline discussed in Sec. 1.1 of the
/// paper: train, generate pseudo labels for the most confident unlabeled
/// predictions of each class, extend the training set, and retrain.
struct SelfTrainingConfig {
  int rounds = 2;                   ///< Pseudo-labeling rounds after the
                                    ///< initial fit.
  int additions_per_class = 50;     ///< Confident nodes adopted per class
                                    ///< per round.
  ModelConfig base_model;
  TrainConfig train;
};

/// Outcome of a self-training run.
struct SelfTrainingResult {
  double test_accuracy = 0.0;
  TrainReport final_report;
  int64_t pseudo_labels_added = 0;
  /// How many adopted pseudo labels matched the (hidden) ground truth —
  /// observable here because the data is synthetic; used by tests and by
  /// the reliability-analysis example to illustrate pseudo-label noise.
  int64_t pseudo_labels_correct = 0;
};

/// Runs self-training and returns the final model's test accuracy.
SelfTrainingResult TrainSelfTraining(const Dataset& dataset,
                                     const GraphContext& context,
                                     const SelfTrainingConfig& config,
                                     uint64_t seed);

/// Shared helper (also used by Co-Training): picks the `per_class` most
/// confident unlabeled nodes of each class from `probs`, skipping nodes in
/// `exclude`. Returns (node, pseudo_label) pairs.
std::vector<std::pair<int64_t, int64_t>> SelectConfidentPerClass(
    const Matrix& probs, int64_t num_classes, int64_t per_class,
    const std::vector<bool>& exclude);

}  // namespace rdd

#endif  // RDD_ENSEMBLE_SELF_TRAINING_H_
