#ifndef RDD_ENSEMBLE_CO_TRAINING_H_
#define RDD_ENSEMBLE_CO_TRAINING_H_

#include <cstdint>

#include "data/dataset.h"
#include "models/model_factory.h"
#include "train/trainer.h"

namespace rdd {

/// Settings for the Co-Training baseline of Sec. 1.1: a random-walk view
/// (label propagation, which explores global topology) nominates its most
/// confident predictions as pseudo labels for the GCN view, and the GCN is
/// trained on the extended label set.
struct CoTrainingConfig {
  int additions_per_class = 50;  ///< Random-walk pseudo labels per class.
  ModelConfig base_model;
  TrainConfig train;
};

/// Outcome of a co-training run.
struct CoTrainingResult {
  double test_accuracy = 0.0;
  TrainReport final_report;
  int64_t pseudo_labels_added = 0;
  int64_t pseudo_labels_correct = 0;  ///< Matches against hidden truth.
};

/// Runs one co-training round (random walk -> GCN) and returns the GCN's
/// test accuracy.
CoTrainingResult TrainCoTraining(const Dataset& dataset,
                                 const GraphContext& context,
                                 const CoTrainingConfig& config,
                                 uint64_t seed);

}  // namespace rdd

#endif  // RDD_ENSEMBLE_CO_TRAINING_H_
