#include "ensemble/snapshot.h"

#include <cmath>

#include "autograd/ops.h"
#include "memory/workspace.h"
#include "nn/optimizer.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace rdd {

float SnapshotCyclicLr(float max_lr, float min_lr, int epoch_in_cycle,
                       int epochs_per_cycle) {
  RDD_CHECK_GE(epoch_in_cycle, 0);
  RDD_CHECK_LT(epoch_in_cycle, epochs_per_cycle);
  RDD_CHECK_GT(max_lr, 0.0f);
  RDD_CHECK_GE(max_lr, min_lr);
  const double phase = static_cast<double>(epoch_in_cycle) * M_PI /
                       static_cast<double>(epochs_per_cycle);
  return min_lr + 0.5f * (max_lr - min_lr) *
                      static_cast<float>(1.0 + std::cos(phase));
}

EnsembleTrainResult TrainSnapshotEnsemble(const Dataset& dataset,
                                          const GraphContext& context,
                                          const SnapshotConfig& config,
                                          uint64_t seed) {
  RDD_CHECK_GT(config.num_cycles, 0);
  RDD_CHECK_GT(config.epochs_per_cycle, 0);
  WallTimer timer;
  memory::Workspace workspace;  // One pool scope across all cycles.
  Rng seeder(seed);
  // One seed, drawn up front: snapshot cycles share a single model chain, so
  // the cycles themselves are inherently sequential, but the seed derivation
  // follows the same hoisted pattern as the other ensembles.
  const uint64_t model_seed = seeder.NextU64();
  EnsembleTrainResult result;

  auto model = BuildModel(context, config.base_model, model_seed);
  Adam optimizer(model->Parameters(), config.max_lr,
                 config.train.weight_decay);

  for (int cycle = 0; cycle < config.num_cycles; ++cycle) {
    WallTimer cycle_timer;
    TrainReport report;
    for (int epoch = 0; epoch < config.epochs_per_cycle; ++epoch) {
      optimizer.set_lr(SnapshotCyclicLr(config.max_lr, config.min_lr, epoch,
                                        config.epochs_per_cycle));
      ModelOutput output = model->Forward(/*training=*/true);
      Variable loss = ag::SoftmaxCrossEntropy(output.logits, dataset.labels,
                                              dataset.split.train,
                                              ag::Reduction::kMean);
      loss.Backward();
      optimizer.Step();
      const double val_acc =
          EvaluateAccuracy(model.get(), dataset, dataset.split.val);
      report.val_history.push_back(val_acc);
      report.best_val_accuracy = std::max(report.best_val_accuracy, val_acc);
      report.epochs_run = epoch + 1;
    }
    // Snapshot: the model at the end of the annealed cycle.
    report.test_accuracy =
        EvaluateAccuracy(model.get(), dataset, dataset.split.test);
    report.train_seconds = cycle_timer.ElapsedSeconds();
    result.reports.push_back(std::move(report));
    result.ensemble.AddMember(model->PredictProbs(), /*weight=*/1.0);
    result.ensemble_accuracy_after_member.push_back(
        result.ensemble.Accuracy(dataset.labels, dataset.split.test));
  }

  result.ensemble_test_accuracy =
      result.ensemble.Accuracy(dataset.labels, dataset.split.test);
  result.average_member_test_accuracy =
      result.ensemble.AverageMemberAccuracy(dataset.labels,
                                            dataset.split.test);
  result.total_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace rdd
