#include "ensemble/bagging.h"

#include "memory/workspace.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace rdd {

EnsembleTrainResult TrainBagging(const Dataset& dataset,
                                 const GraphContext& context,
                                 const BaggingConfig& config, uint64_t seed) {
  RDD_CHECK_GT(config.num_models, 0);
  WallTimer timer;
  memory::Workspace workspace;  // One pool scope across all members.
  Rng seeder(seed);
  EnsembleTrainResult result;
  for (int t = 0; t < config.num_models; ++t) {
    auto model = BuildModel(context, config.base_model, seeder.NextU64());
    result.reports.push_back(
        TrainSupervised(model.get(), dataset, config.train));
    result.ensemble.AddMember(model->PredictProbs(), /*weight=*/1.0);
    result.ensemble_accuracy_after_member.push_back(
        result.ensemble.Accuracy(dataset.labels, dataset.split.test));
  }
  result.ensemble_test_accuracy =
      result.ensemble.Accuracy(dataset.labels, dataset.split.test);
  result.average_member_test_accuracy =
      result.ensemble.AverageMemberAccuracy(dataset.labels,
                                            dataset.split.test);
  result.total_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace rdd
