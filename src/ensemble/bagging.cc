#include "ensemble/bagging.h"

#include <utility>

#include "memory/workspace.h"
#include "observe/trace.h"
#include "parallel/task_group.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace rdd {

namespace {

/// Per-member training output, filled by concurrent tasks and consumed in
/// member order by the sequential assembly pass below.
struct MemberOutcome {
  TrainReport report;
  Matrix probs;
};

}  // namespace

EnsembleTrainResult TrainBagging(const Dataset& dataset,
                                 const GraphContext& context,
                                 const BaggingConfig& config, uint64_t seed) {
  RDD_CHECK_GT(config.num_models, 0);
  WallTimer timer;
  memory::Workspace workspace;  // One pool scope across all members.
  Rng seeder(seed);
  EnsembleTrainResult result;

  // Seeds are drawn up front, in member order, so member t's initialization
  // never depends on whether members 0..t-1 trained before or alongside it.
  // This is what makes the parallel schedule below bit-identical to the
  // sequential one at any thread count.
  std::vector<uint64_t> member_seeds(static_cast<size_t>(config.num_models));
  for (uint64_t& s : member_seeds) s = seeder.NextU64();

  // Members are independent given their seeds: train them concurrently,
  // each into its own result slot. Inner kernels split the remaining thread
  // budget (see parallel/task_group.h).
  std::vector<MemberOutcome> outcomes(static_cast<size_t>(config.num_models));
  parallel::ParallelTasks(config.num_models, [&](int64_t t) {
    observe::TraceSpan span("bagging/member", t);
    const size_t st = static_cast<size_t>(t);
    auto model = BuildModel(context, config.base_model, member_seeds[st]);
    outcomes[st].report = TrainSupervised(model.get(), dataset, config.train);
    outcomes[st].probs = model->PredictProbs();
  });

  // Sequential assembly in member order: ensemble growth (and the
  // accuracy-after-member curve) is order-sensitive, so it stays serial.
  for (MemberOutcome& outcome : outcomes) {
    result.reports.push_back(std::move(outcome.report));
    result.ensemble.AddMember(std::move(outcome.probs), /*weight=*/1.0);
    result.ensemble_accuracy_after_member.push_back(
        result.ensemble.Accuracy(dataset.labels, dataset.split.test));
  }
  result.ensemble_test_accuracy =
      result.ensemble.Accuracy(dataset.labels, dataset.split.test);
  result.average_member_test_accuracy =
      result.ensemble.AverageMemberAccuracy(dataset.labels,
                                            dataset.split.test);
  result.total_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace rdd
