#ifndef RDD_ENSEMBLE_BAGGING_H_
#define RDD_ENSEMBLE_BAGGING_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "ensemble/ensemble.h"
#include "models/model_factory.h"
#include "train/trainer.h"

namespace rdd {

/// Common result type for the multi-model trainers (Bagging, BANs): the
/// combined ensemble, per-member training reports, and headline accuracies.
struct EnsembleTrainResult {
  SoftmaxEnsemble ensemble;
  std::vector<TrainReport> reports;
  double ensemble_test_accuracy = 0.0;
  double average_member_test_accuracy = 0.0;
  double total_seconds = 0.0;
  /// Test accuracy of the ensemble after each member was added (see the
  /// Table 9 efficiency bench).
  std::vector<double> ensemble_accuracy_after_member;
};

/// Settings for the Bagging baseline. Following the paper's protocol
/// (Sec. 5.1), base models are NOT trained on subsampled data — with only a
/// handful of labels, subsampling would cripple each member — so diversity
/// comes from independent random initializations and dropout draws alone.
/// Members are combined with uniform weights.
struct BaggingConfig {
  int num_models = 5;
  ModelConfig base_model;
  TrainConfig train;
};

/// Trains `config.num_models` independent base models and combines them.
EnsembleTrainResult TrainBagging(const Dataset& dataset,
                                 const GraphContext& context,
                                 const BaggingConfig& config, uint64_t seed);

}  // namespace rdd

#endif  // RDD_ENSEMBLE_BAGGING_H_
