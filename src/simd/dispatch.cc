// One-time runtime backend selection. The table pointer is resolved on
// first use (or eagerly by ThreadPool::Global) from CPU feature detection,
// overridable with RDD_SIMD=avx2|neon|scalar; after that, K() is a single
// relaxed atomic load. SetBackend lets tests and benchmarks switch backends
// mid-process — callers own the synchronization there, exactly as with
// parallel::SetNumThreads.

#include "simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "simd/backends.h"
#include "util/logging.h"

namespace rdd::simd {
namespace {

std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<Backend> g_backend{Backend::kScalar};
std::once_flag g_resolve_once;

Backend BestSupported() {
#if defined(RDD_SIMD_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Backend::kAvx2;
  }
#endif
#if defined(RDD_SIMD_HAVE_NEON)
  return Backend::kNeon;
#endif
  return Backend::kScalar;
}

void Activate(Backend b) {
  const KernelTable* table = internal::TableFor(b);
  RDD_CHECK(table != nullptr) << "backend " << BackendName(b)
                              << " is not compiled into this binary";
  g_backend.store(b, std::memory_order_relaxed);
  g_table.store(table, std::memory_order_release);
}

void ResolveOnce() {
  Backend chosen = BestSupported();
  if (const char* env = std::getenv("RDD_SIMD"); env != nullptr && *env) {
    Backend forced;
    if (!internal::ParseBackendName(env, &forced)) {
      RDD_LOG(Warning) << "RDD_SIMD=" << env
                       << " is not a known backend (scalar|avx2|neon); using "
                       << BackendName(chosen);
    } else if (!BackendSupported(forced)) {
      RDD_LOG(Warning) << "RDD_SIMD=" << env
                       << " is not supported on this machine/binary; using "
                       << BackendName(chosen);
    } else {
      chosen = forced;
    }
  }
  // RDD_REQUIRE_SIMD turns "the backend I asked for wasn't available" from
  // a warning into an abort. CI's determinism-matrix legs set it so a leg
  // whose backend silently fell back (e.g. avx2 on a machine without it)
  // FAILS instead of green-lighting a run that tested the wrong backend.
  if (const char* required = std::getenv("RDD_REQUIRE_SIMD");
      required != nullptr && *required) {
    Backend want;
    RDD_CHECK(internal::ParseBackendName(required, &want))
        << "RDD_REQUIRE_SIMD=" << required
        << " is not a known backend (scalar|avx2|neon)";
    RDD_CHECK(want == chosen)
        << "RDD_REQUIRE_SIMD=" << required << " but the active backend is "
        << BackendName(chosen)
        << " — refusing to run as a silently-degraded determinism leg";
  }
  Activate(chosen);
}

}  // namespace

const KernelTable& K() {
  const KernelTable* table = g_table.load(std::memory_order_acquire);
  if (table == nullptr) {
    std::call_once(g_resolve_once, ResolveOnce);
    table = g_table.load(std::memory_order_acquire);
  }
  return *table;
}

Backend ActiveBackend() {
  K();  // ensure resolved
  return g_backend.load(std::memory_order_relaxed);
}

bool BackendSupported(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if defined(RDD_SIMD_HAVE_AVX2)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(RDD_SIMD_HAVE_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

void SetBackend(Backend b) {
  RDD_CHECK(BackendSupported(b))
      << "cannot activate unsupported backend " << BackendName(b);
  // Make sure the env-based resolution has run (and lost) before we
  // overwrite the table, so a concurrent first K() cannot clobber us later.
  std::call_once(g_resolve_once, ResolveOnce);
  Activate(b);
}

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

namespace internal {

bool ParseBackendName(const char* value, Backend* out) {
  if (value == nullptr) return false;
  if (std::strcmp(value, "scalar") == 0) {
    *out = Backend::kScalar;
    return true;
  }
  if (std::strcmp(value, "avx2") == 0) {
    *out = Backend::kAvx2;
    return true;
  }
  if (std::strcmp(value, "neon") == 0) {
    *out = Backend::kNeon;
    return true;
  }
  return false;
}

const KernelTable* TableFor(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return &ScalarTable();
    case Backend::kAvx2:
#if defined(RDD_SIMD_HAVE_AVX2)
      return &Avx2Table();
#else
      return nullptr;
#endif
    case Backend::kNeon:
#if defined(RDD_SIMD_HAVE_NEON)
      return &NeonTable();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

}  // namespace internal

}  // namespace rdd::simd
