// Scalar emulation backend: a float[8] "register" processed lane by lane.
// Every lane op is the IEEE-754 correctly-rounded operation (std::fma is the
// exact hardware-FMA result), so this backend reproduces the vector backends
// bit for bit — it is the portable reference the determinism contract in
// simd.h is checked against. Compiled with -ffp-contract=off like every
// kernel TU; the inner loops are simple enough that compilers auto-vectorize
// them on wider -march settings without changing any lane's arithmetic.

#include "simd/backends.h"
#include "simd/kernel_impl.h"

#include <cmath>

namespace rdd::simd::internal {
namespace {

struct ScalarPolicy {
  struct F32 {
    float v[8];
  };
  struct F64 {
    double v[8];
  };

  static F32 Load(const float* p) {
    F32 r;
    for (int l = 0; l < 8; ++l) r.v[l] = p[l];
    return r;
  }
  static void Store(float* p, F32 x) {
    for (int l = 0; l < 8; ++l) p[l] = x.v[l];
  }
  static F32 Broadcast(float x) {
    F32 r;
    for (int l = 0; l < 8; ++l) r.v[l] = x;
    return r;
  }
  static F32 Zero() { return Broadcast(0.0f); }
  static F32 Add(F32 a, F32 b) {
    F32 r;
    for (int l = 0; l < 8; ++l) r.v[l] = a.v[l] + b.v[l];
    return r;
  }
  static F32 Sub(F32 a, F32 b) {
    F32 r;
    for (int l = 0; l < 8; ++l) r.v[l] = a.v[l] - b.v[l];
    return r;
  }
  static F32 Mul(F32 a, F32 b) {
    F32 r;
    for (int l = 0; l < 8; ++l) r.v[l] = a.v[l] * b.v[l];
    return r;
  }
  static F32 Div(F32 a, F32 b) {
    F32 r;
    for (int l = 0; l < 8; ++l) r.v[l] = a.v[l] / b.v[l];
    return r;
  }
  static F32 Sqrt(F32 a) {
    F32 r;
    for (int l = 0; l < 8; ++l) r.v[l] = std::sqrt(a.v[l]);
    return r;
  }
  static F32 Fmadd(F32 a, F32 b, F32 c) {
    F32 r;
    for (int l = 0; l < 8; ++l) r.v[l] = std::fma(a.v[l], b.v[l], c.v[l]);
    return r;
  }
  // x86 maxps semantics: second operand wins on equality and NaN.
  static F32 Max(F32 a, F32 b) {
    F32 r;
    for (int l = 0; l < 8; ++l) r.v[l] = a.v[l] > b.v[l] ? a.v[l] : b.v[l];
    return r;
  }
  static F32 MaskGtZero(F32 x, F32 y) {
    F32 r;
    for (int l = 0; l < 8; ++l) r.v[l] = x.v[l] > 0.0f ? y.v[l] : 0.0f;
    return r;
  }
  static F32 LoadBf16(const uint16_t* p) {
    F32 r;
    for (int l = 0; l < 8; ++l) r.v[l] = F32FromBf16(p[l]);
    return r;
  }

  static F64 DZero() {
    F64 r;
    for (int l = 0; l < 8; ++l) r.v[l] = 0.0;
    return r;
  }
  static F64 DCvt(F32 x) {
    F64 r;
    for (int l = 0; l < 8; ++l) r.v[l] = static_cast<double>(x.v[l]);
    return r;
  }
  static F64 DAdd(F64 a, F64 b) {
    F64 r;
    for (int l = 0; l < 8; ++l) r.v[l] = a.v[l] + b.v[l];
    return r;
  }
  static F64 DFmadd(F64 a, F64 b, F64 c) {
    F64 r;
    for (int l = 0; l < 8; ++l) r.v[l] = std::fma(a.v[l], b.v[l], c.v[l]);
    return r;
  }
  static void DStore(double* p, F64 x) {
    for (int l = 0; l < 8; ++l) p[l] = x.v[l];
  }
};

}  // namespace

const KernelTable& ScalarTable() {
  static const KernelTable table = MakeTable<ScalarPolicy>();
  return table;
}

}  // namespace rdd::simd::internal
