// AVX2 + FMA backend. This translation unit alone is compiled with
// -mavx2 -mfma (see src/simd/CMakeLists.txt); the dispatcher only hands out
// this table after __builtin_cpu_supports confirms both features, so the
// binary as a whole still runs on baseline x86-64.
//
// The 8-double group is a pair of __m256d registers: lo carries float lanes
// 0-3, hi carries lanes 4-7, matching the lane numbering the determinism
// contract (simd.h) pins for the canonical reductions.

#include "simd/backends.h"
#include "simd/kernel_impl.h"

#include <immintrin.h>

namespace rdd::simd::internal {
namespace {

struct Avx2Policy {
  using F32 = __m256;
  struct F64 {
    __m256d lo;
    __m256d hi;
  };

  static F32 Load(const float* p) { return _mm256_loadu_ps(p); }
  static void Store(float* p, F32 x) { _mm256_storeu_ps(p, x); }
  static F32 Broadcast(float x) { return _mm256_set1_ps(x); }
  static F32 Zero() { return _mm256_setzero_ps(); }
  static F32 Add(F32 a, F32 b) { return _mm256_add_ps(a, b); }
  static F32 Sub(F32 a, F32 b) { return _mm256_sub_ps(a, b); }
  static F32 Mul(F32 a, F32 b) { return _mm256_mul_ps(a, b); }
  static F32 Div(F32 a, F32 b) { return _mm256_div_ps(a, b); }
  static F32 Sqrt(F32 a) { return _mm256_sqrt_ps(a); }
  static F32 Fmadd(F32 a, F32 b, F32 c) { return _mm256_fmadd_ps(a, b, c); }
  static F32 Max(F32 a, F32 b) { return _mm256_max_ps(a, b); }
  static F32 MaskGtZero(F32 x, F32 y) {
    return _mm256_and_ps(
        _mm256_cmp_ps(x, _mm256_setzero_ps(), _CMP_GT_OQ), y);
  }
  // bf16 -> f32 is a zero-extend to the high half of each 32-bit lane:
  // widen the eight u16 values to u32 and shift left 16 (exact).
  static F32 LoadBf16(const uint16_t* p) {
    const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    return _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_cvtepu16_epi32(raw), 16));
  }

  static F64 DZero() {
    return {_mm256_setzero_pd(), _mm256_setzero_pd()};
  }
  static F64 DCvt(F32 x) {
    return {_mm256_cvtps_pd(_mm256_castps256_ps128(x)),
            _mm256_cvtps_pd(_mm256_extractf128_ps(x, 1))};
  }
  static F64 DAdd(F64 a, F64 b) {
    return {_mm256_add_pd(a.lo, b.lo), _mm256_add_pd(a.hi, b.hi)};
  }
  static F64 DFmadd(F64 a, F64 b, F64 c) {
    return {_mm256_fmadd_pd(a.lo, b.lo, c.lo),
            _mm256_fmadd_pd(a.hi, b.hi, c.hi)};
  }
  static void DStore(double* p, F64 x) {
    _mm256_storeu_pd(p, x.lo);
    _mm256_storeu_pd(p + 4, x.hi);
  }
};

}  // namespace

const KernelTable& Avx2Table() {
  static const KernelTable table = MakeTable<Avx2Policy>();
  return table;
}

}  // namespace rdd::simd::internal
