#ifndef RDD_SIMD_KERNEL_STATS_H_
#define RDD_SIMD_KERNEL_STATS_H_

#include <cstdint>

namespace rdd::simd {

/// Per-kernel invocation and FLOP accounting for the dispatched kernel set
/// (simd.h). The high-level drivers (tensor GEMM/SpMM, the optimizer steps)
/// call these once per *operation* — never per row — so with RDD_METRICS
/// off the cost is one relaxed flag load per matmul, and with it on a
/// handful of relaxed counter adds. Counters land on the process metrics
/// registry (observe/metrics.h) under "simd.<kernel>.calls" and
/// "simd.<kernel>.flops".
///
/// FLOP estimates use the standard conventions: a fused multiply-add is 2
/// FLOPs, GEMM(m,k,n) is 2mkn, SpMM over nnz entries into n columns is
/// 2*nnz*n, one Adam element is ~10 FLOPs.

/// One dense GEMM of shape (m x k) * (k x n) — any transpose variant.
void RecordGemm(int64_t m, int64_t k, int64_t n);

/// One CSR SpMM with `nnz` nonzeros into `n` dense output columns (the
/// transpose/scatter variant counts the same work).
void RecordSpmm(int64_t nnz, int64_t n);

/// One optimizer step (Adam or SGD) over `elements` parameters across
/// `tensors` parameter tensors.
void RecordOptimizerStep(int64_t tensors, int64_t elements);

}  // namespace rdd::simd

#endif  // RDD_SIMD_KERNEL_STATS_H_
