#ifndef RDD_SIMD_KERNEL_STATS_H_
#define RDD_SIMD_KERNEL_STATS_H_

#include <cstdint>

namespace rdd::simd {

/// Per-kernel invocation and FLOP accounting for the dispatched kernel set
/// (simd.h). The high-level drivers (tensor GEMM/SpMM, the optimizer steps)
/// call these once per *operation* — never per row — so with RDD_METRICS
/// off the cost is one relaxed flag load per matmul, and with it on a
/// handful of relaxed counter adds. Counters land on the process metrics
/// registry (observe/metrics.h) under "simd.<kernel>.calls" and
/// "simd.<kernel>.flops".
///
/// FLOP estimates use the standard conventions: a fused multiply-add is 2
/// FLOPs, GEMM(m,k,n) is 2mkn, SpMM over nnz entries into n columns is
/// 2*nnz*n, one Adam element is ~10 FLOPs.

/// One dense GEMM of shape (m x k) * (k x n) — any transpose variant.
void RecordGemm(int64_t m, int64_t k, int64_t n);

/// One CSR SpMM with `nnz` nonzeros into `n` dense output columns (the
/// transpose/scatter variant counts the same work).
void RecordSpmm(int64_t nnz, int64_t n);

/// One optimizer step (Adam or SGD) over `elements` parameters across
/// `tensors` parameter tensors.
void RecordOptimizerStep(int64_t tensors, int64_t elements);

// --- fused-chain accounting ---
// A fused driver calls exactly one of these *instead of* RecordGemm /
// RecordSpmm, so a fused chain is never double-counted as its constituent
// ops; the epilogue work is folded into the same record (bias add + ReLU
// compare ≈ 2 FLOPs per output element, softmax ≈ 5 per element).

/// One fused GEMM -> bias -> ReLU of shape (m x k) * (k x n):
/// 2mkn + 2mn FLOPs under "simd.fused_gemm_bias_relu.*".
void RecordFusedGemmBiasRelu(int64_t m, int64_t k, int64_t n);

/// One fused SpMM -> bias -> ReLU (`nnz` nonzeros, `rows` output rows, `n`
/// columns): 2*nnz*n + 2*rows*n FLOPs under "simd.fused_spmm_bias_relu.*".
void RecordFusedSpmmBiasRelu(int64_t nnz, int64_t rows, int64_t n);

/// One fused softmax -> masked-cross-entropy over `rows` *selected* rows of
/// `n` logits: ~5*rows*n FLOPs under "simd.fused_softmax_xent.*". `rows` is
/// the mask size, not the logits height — the fusion's point is that the
/// unselected rows are never touched.
void RecordFusedSoftmaxXent(int64_t rows, int64_t n);

/// One GEMM with a bf16-stored B operand (serving tier): 2mkn FLOPs under
/// "simd.bf16_gemm.*".
void RecordBf16Gemm(int64_t m, int64_t k, int64_t n);

/// Fusion-pass outcome at Variable-graph construction: a hit emitted one
/// fused node, a miss fell back to the unfused composition (fusion disabled
/// or the pattern did not apply, e.g. a bias-less layer). The derived gauge
/// "simd.fusion.hit_rate_pct" = 100 * hits / (hits + misses) is registered
/// with the metrics registry on first use. Like every counter here, only
/// metered runs (RDD_METRICS=1) are counted.
void RecordFusionHit();
void RecordFusionMiss();

}  // namespace rdd::simd

#endif  // RDD_SIMD_KERNEL_STATS_H_
