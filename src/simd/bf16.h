#ifndef RDD_SIMD_BF16_H_
#define RDD_SIMD_BF16_H_

#include <cstdint>
#include <cstring>

namespace rdd::simd {

/// bfloat16 scalar conversions, shared by every backend and by the tests'
/// golden references. Storage format: the upper 16 bits of an IEEE-754
/// binary32 (1 sign, 8 exponent, 7 mantissa bits).
///
/// Numerics policy (DESIGN.md §12): bf16 is a *storage* format only — every
/// arithmetic op unpacks to fp32 first, and unpacking is exact (zero-fill of
/// the 16 dropped mantissa bits), so kernels consuming bf16 operands keep
/// the backend/thread bit-identity contract of simd.h. Only the pack step
/// loses information; it rounds to nearest-even so the representable-value
/// round trip f32 -> bf16 -> f32 is exact and the worst relative error is
/// 2^-8 for normal values.

/// Round-to-nearest-even narrowing. NaN payloads are quieted (bit 6 of the
/// stored mantissa forced on) so rounding can never turn a NaN into
/// infinity; infinities and the sign of zero are preserved; values above
/// bf16's finite range round to infinity like any IEEE narrowing.
inline uint16_t Bf16FromF32(float x) {
  uint32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  if ((bits & 0x7FFFFFFFu) > 0x7F800000u) {
    return static_cast<uint16_t>((bits >> 16) | 0x0040u);
  }
  const uint32_t rounded = bits + 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<uint16_t>(rounded >> 16);
}

/// Exact widening: the stored bits become the upper half of the float.
inline float F32FromBf16(uint16_t x) {
  const uint32_t bits = static_cast<uint32_t>(x) << 16;
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

}  // namespace rdd::simd

#endif  // RDD_SIMD_BF16_H_
