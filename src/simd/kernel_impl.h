#ifndef RDD_SIMD_KERNEL_IMPL_H_
#define RDD_SIMD_KERNEL_IMPL_H_

// Backend-generic kernel bodies. Each backend translation unit instantiates
// Kernels<Policy> exactly once with its own Policy type (8-float group plus
// the lane ops below) and exposes the result as a KernelTable.
//
// A Policy provides:
//   using F32 / F64          8 float lanes / 8 double lanes
//   Load/Store/Broadcast/Zero, Add/Sub/Mul/Div/Sqrt/Max/Fmadd (F32)
//   MaskGtZero(x, y)         per lane: x > 0 ? y : 0
//   LoadBf16(p)              8 bf16 lanes widened exactly to F32
//   DZero/DCvt/DAdd/DFmadd/DStore (F64; DCvt widens 8 floats exactly)
// Every lane op must be the IEEE-754 correctly-rounded operation (true for
// AVX2, NEON, and the scalar emulation's std::fma/std::sqrt), which is what
// makes lane-for-lane emulation bit-exact. Remainder elements (n % 8) are
// handled by the plain scalar loops below, which are shared — not
// re-implemented — across backends.
//
// This header is only included from kernel TUs, which are compiled with
// -ffp-contract=off: no multiply-add here may be fused or unfused at the
// compiler's discretion; every fused op is an explicit Fmadd/std::fma.

#include <cmath>
#include <cstdint>

#include "simd/bf16.h"
#include "simd/simd.h"

namespace rdd::simd::internal {

// Scalar max with x86 maxps semantics: second operand wins on equality/NaN.
inline float MaxS(float a, float b) { return a > b ? a : b; }

// Fixed combining tree over the 8 lane totals — rule 2 of the determinism
// contract in simd.h.
inline float LaneTree(const float l[8]) {
  return ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
}
inline double LaneTree(const double l[8]) {
  return ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
}

template <typename P>
struct Kernels {
  using F32 = typename P::F32;
  using F64 = typename P::F64;

  static void GemmRow(const float* a, int64_t sa, const float* b, int64_t ldb,
                      int64_t k, int64_t n, float* out) {
    int64_t j = 0;
    // 32-wide tile: four independent accumulator groups hide FMA latency
    // while each output element still sees one strictly ordered FMA chain.
    for (; j + 32 <= n; j += 32) {
      float* o = out + j;
      F32 acc0 = P::Load(o), acc1 = P::Load(o + 8);
      F32 acc2 = P::Load(o + 16), acc3 = P::Load(o + 24);
      const float* br = b + j;
      for (int64_t p = 0; p < k; ++p, br += ldb) {
        const F32 av = P::Broadcast(a[p * sa]);
        acc0 = P::Fmadd(av, P::Load(br), acc0);
        acc1 = P::Fmadd(av, P::Load(br + 8), acc1);
        acc2 = P::Fmadd(av, P::Load(br + 16), acc2);
        acc3 = P::Fmadd(av, P::Load(br + 24), acc3);
      }
      P::Store(o, acc0);
      P::Store(o + 8, acc1);
      P::Store(o + 16, acc2);
      P::Store(o + 24, acc3);
    }
    for (; j + 8 <= n; j += 8) {
      float* o = out + j;
      F32 acc = P::Load(o);
      const float* br = b + j;
      for (int64_t p = 0; p < k; ++p, br += ldb) {
        acc = P::Fmadd(P::Broadcast(a[p * sa]), P::Load(br), acc);
      }
      P::Store(o, acc);
    }
    for (; j < n; ++j) {
      float acc = out[j];
      const float* bp = b + j;
      for (int64_t p = 0; p < k; ++p, bp += ldb) {
        acc = std::fma(a[p * sa], *bp, acc);
      }
      out[j] = acc;
    }
  }

  static float DotOne(const float* a, const float* b, int64_t n) {
    const int64_t n8 = n & ~int64_t{7};
    float r = 0.0f;
    if (n8 > 0) {
      F32 acc = P::Zero();
      for (int64_t i = 0; i < n8; i += 8) {
        acc = P::Fmadd(P::Load(a + i), P::Load(b + i), acc);
      }
      float lanes[8];
      P::Store(lanes, acc);
      r = LaneTree(lanes);
    }
    for (int64_t i = n8; i < n; ++i) r = std::fma(a[i], b[i], r);
    return r;
  }

  static void GemmRowNt(const float* a, const float* b, int64_t ldb, int64_t k,
                        int64_t rows, float* out) {
    for (int64_t j = 0; j < rows; ++j) out[j] = DotOne(a, b + j * ldb, k);
  }

  static void SpmmRow(const float* vals, const int64_t* cols, int64_t nnz,
                      float alpha, const float* dense, int64_t ldd, float* out,
                      int64_t n) {
    int64_t j = 0;
    for (; j + 32 <= n; j += 32) {
      float* o = out + j;
      F32 acc0 = P::Load(o), acc1 = P::Load(o + 8);
      F32 acc2 = P::Load(o + 16), acc3 = P::Load(o + 24);
      for (int64_t t = 0; t < nnz; ++t) {
        const F32 av = P::Broadcast(alpha * vals[t]);
        const float* dr = dense + cols[t] * ldd + j;
        acc0 = P::Fmadd(av, P::Load(dr), acc0);
        acc1 = P::Fmadd(av, P::Load(dr + 8), acc1);
        acc2 = P::Fmadd(av, P::Load(dr + 16), acc2);
        acc3 = P::Fmadd(av, P::Load(dr + 24), acc3);
      }
      P::Store(o, acc0);
      P::Store(o + 8, acc1);
      P::Store(o + 16, acc2);
      P::Store(o + 24, acc3);
    }
    for (; j + 8 <= n; j += 8) {
      float* o = out + j;
      F32 acc = P::Load(o);
      for (int64_t t = 0; t < nnz; ++t) {
        acc = P::Fmadd(P::Broadcast(alpha * vals[t]),
                       P::Load(dense + cols[t] * ldd + j), acc);
      }
      P::Store(o, acc);
    }
    for (; j < n; ++j) {
      float acc = out[j];
      for (int64_t t = 0; t < nnz; ++t) {
        acc = std::fma(alpha * vals[t], dense[cols[t] * ldd + j], acc);
      }
      out[j] = acc;
    }
  }

  static void Axpy(float a, const float* x, float* y, int64_t n) {
    const F32 av = P::Broadcast(a);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      P::Store(y + i, P::Fmadd(av, P::Load(x + i), P::Load(y + i)));
    }
    for (; i < n; ++i) y[i] = std::fma(a, x[i], y[i]);
  }

  static void Add(const float* x, float* y, int64_t n) {
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      P::Store(y + i, P::Add(P::Load(y + i), P::Load(x + i)));
    }
    for (; i < n; ++i) y[i] += x[i];
  }

  static void Sub(const float* x, float* y, int64_t n) {
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      P::Store(y + i, P::Sub(P::Load(y + i), P::Load(x + i)));
    }
    for (; i < n; ++i) y[i] -= x[i];
  }

  static void Mul(const float* x, float* y, int64_t n) {
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      P::Store(y + i, P::Mul(P::Load(y + i), P::Load(x + i)));
    }
    for (; i < n; ++i) y[i] *= x[i];
  }

  static void Scale(float a, float* y, int64_t n) {
    const F32 av = P::Broadcast(a);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      P::Store(y + i, P::Mul(P::Load(y + i), av));
    }
    for (; i < n; ++i) y[i] *= a;
  }

  static void Relu(const float* x, float* y, int64_t n) {
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const F32 xv = P::Load(x + i);
      P::Store(y + i, P::MaskGtZero(xv, xv));
    }
    for (; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
  }

  static void ReluBwd(const float* x, float* g, int64_t n) {
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      P::Store(g + i, P::MaskGtZero(P::Load(x + i), P::Load(g + i)));
    }
    for (; i < n; ++i) {
      if (!(x[i] > 0.0f)) g[i] = 0.0f;
    }
  }

  static void ScaledDiffAccum(float g, const float* a, const float* b,
                              float* y, int64_t n) {
    const F32 gv = P::Broadcast(g);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const F32 d = P::Sub(P::Load(a + i), P::Load(b + i));
      P::Store(y + i, P::Fmadd(gv, d, P::Load(y + i)));
    }
    for (; i < n; ++i) y[i] = std::fma(g, a[i] - b[i], y[i]);
  }

  static void SoftmaxBwdRow(const float* p, const float* g, float dot,
                            float* out, int64_t n) {
    const F32 dv = P::Broadcast(dot);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      P::Store(out + i, P::Mul(P::Load(p + i), P::Sub(P::Load(g + i), dv)));
    }
    for (; i < n; ++i) out[i] = p[i] * (g[i] - dot);
  }

  static void AdamStep(float* w, float* m, float* v, const float* g,
                       int64_t n, float lr, float wd, float beta1, float beta2,
                       float bias1, float bias2, float eps) {
    const float omb1 = 1.0f - beta1;
    const float omb2 = 1.0f - beta2;
    const F32 vlr = P::Broadcast(lr), vwd = P::Broadcast(wd);
    const F32 vb1 = P::Broadcast(beta1), vb2 = P::Broadcast(beta2);
    const F32 vomb1 = P::Broadcast(omb1), vomb2 = P::Broadcast(omb2);
    const F32 vbias1 = P::Broadcast(bias1), vbias2 = P::Broadcast(bias2);
    const F32 veps = P::Broadcast(eps);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const F32 wv = P::Load(w + i);
      const F32 gp = P::Fmadd(vwd, wv, P::Load(g + i));
      const F32 mv = P::Fmadd(vb1, P::Load(m + i), P::Mul(vomb1, gp));
      const F32 vv =
          P::Fmadd(vb2, P::Load(v + i), P::Mul(P::Mul(vomb2, gp), gp));
      P::Store(m + i, mv);
      P::Store(v + i, vv);
      const F32 upd = P::Div(P::Mul(vlr, P::Div(mv, vbias1)),
                             P::Add(P::Sqrt(P::Div(vv, vbias2)), veps));
      P::Store(w + i, P::Sub(wv, upd));
    }
    for (; i < n; ++i) {
      const float gp = std::fma(wd, w[i], g[i]);
      const float mv = std::fma(beta1, m[i], omb1 * gp);
      const float vv = std::fma(beta2, v[i], (omb2 * gp) * gp);
      m[i] = mv;
      v[i] = vv;
      w[i] -= (lr * (mv / bias1)) / (std::sqrt(vv / bias2) + eps);
    }
  }

  static void SgdStep(float* w, const float* g, int64_t n, float lr,
                      float wd) {
    const F32 vnlr = P::Broadcast(-lr), vwd = P::Broadcast(wd);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const F32 wv = P::Load(w + i);
      const F32 gp = P::Fmadd(vwd, wv, P::Load(g + i));
      P::Store(w + i, P::Fmadd(vnlr, gp, wv));
    }
    for (; i < n; ++i) {
      w[i] = std::fma(-lr, std::fma(wd, w[i], g[i]), w[i]);
    }
  }

  static float RowMax(const float* x, int64_t n) {
    float r;
    int64_t i;
    if (n >= 8) {
      F32 m = P::Load(x);
      for (i = 8; i + 8 <= n; i += 8) m = P::Max(m, P::Load(x + i));
      float lanes[8];
      P::Store(lanes, m);
      r = MaxS(MaxS(MaxS(lanes[0], lanes[1]), MaxS(lanes[2], lanes[3])),
               MaxS(MaxS(lanes[4], lanes[5]), MaxS(lanes[6], lanes[7])));
    } else {
      r = x[0];
      i = 1;
    }
    for (; i < n; ++i) r = MaxS(r, x[i]);
    return r;
  }

  static double SumF64(const float* x, int64_t n) {
    const int64_t n8 = n & ~int64_t{7};
    double r = 0.0;
    if (n8 > 0) {
      F64 acc = P::DZero();
      for (int64_t i = 0; i < n8; i += 8) {
        acc = P::DAdd(acc, P::DCvt(P::Load(x + i)));
      }
      double lanes[8];
      P::DStore(lanes, acc);
      r = LaneTree(lanes);
    }
    for (int64_t i = n8; i < n; ++i) r += static_cast<double>(x[i]);
    return r;
  }

  static void BiasRelu(const float* bias, float* y, int64_t n) {
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      // Same lane ops, same operand order as add(bias, y) then relu(y, y).
      const F32 s = P::Add(P::Load(y + i), P::Load(bias + i));
      P::Store(y + i, P::MaskGtZero(s, s));
    }
    for (; i < n; ++i) {
      const float s = y[i] + bias[i];
      y[i] = s > 0.0f ? s : 0.0f;
    }
  }

  static void SoftmaxRow(const float* x, float* p, int64_t n) {
    const float max_v = RowMax(x, n);
    for (int64_t c = 0; c < n; ++c) p[c] = std::exp(x[c] - max_v);
    const double sum = SumF64(p, n);
    const float inv = static_cast<float>(1.0 / sum);
    Scale(inv, p, n);
  }

  static float SoftmaxXentFwdRow(const float* x, int64_t n, int64_t label) {
    const float max_v = RowMax(x, n);
    double sum = 0.0;
    for (int64_t c = 0; c < n; ++c) {
      sum += std::exp(static_cast<double>(x[c]) - max_v);
    }
    const float log_sum = static_cast<float>(std::log(sum)) + max_v;
    return x[label] - log_sum;
  }

  static void Bf16Pack(const float* x, uint16_t* y, int64_t n) {
    for (int64_t i = 0; i < n; ++i) y[i] = Bf16FromF32(x[i]);
  }

  static void Bf16Unpack(const uint16_t* x, float* y, int64_t n) {
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) P::Store(y + i, P::LoadBf16(x + i));
    for (; i < n; ++i) y[i] = F32FromBf16(x[i]);
  }

  static void GemmRowBf16(const float* a, int64_t sa, const uint16_t* b,
                          int64_t ldb, int64_t k, int64_t n, float* out) {
    int64_t j = 0;
    for (; j + 32 <= n; j += 32) {
      float* o = out + j;
      F32 acc0 = P::Load(o), acc1 = P::Load(o + 8);
      F32 acc2 = P::Load(o + 16), acc3 = P::Load(o + 24);
      const uint16_t* br = b + j;
      for (int64_t p = 0; p < k; ++p, br += ldb) {
        const F32 av = P::Broadcast(a[p * sa]);
        acc0 = P::Fmadd(av, P::LoadBf16(br), acc0);
        acc1 = P::Fmadd(av, P::LoadBf16(br + 8), acc1);
        acc2 = P::Fmadd(av, P::LoadBf16(br + 16), acc2);
        acc3 = P::Fmadd(av, P::LoadBf16(br + 24), acc3);
      }
      P::Store(o, acc0);
      P::Store(o + 8, acc1);
      P::Store(o + 16, acc2);
      P::Store(o + 24, acc3);
    }
    for (; j + 8 <= n; j += 8) {
      float* o = out + j;
      F32 acc = P::Load(o);
      const uint16_t* br = b + j;
      for (int64_t p = 0; p < k; ++p, br += ldb) {
        acc = P::Fmadd(P::Broadcast(a[p * sa]), P::LoadBf16(br), acc);
      }
      P::Store(o, acc);
    }
    for (; j < n; ++j) {
      float acc = out[j];
      const uint16_t* bp = b + j;
      for (int64_t p = 0; p < k; ++p, bp += ldb) {
        acc = std::fma(a[p * sa], F32FromBf16(*bp), acc);
      }
      out[j] = acc;
    }
  }

  static void AxpyBf16(float a, const uint16_t* x, float* y, int64_t n) {
    const F32 av = P::Broadcast(a);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      P::Store(y + i, P::Fmadd(av, P::LoadBf16(x + i), P::Load(y + i)));
    }
    for (; i < n; ++i) y[i] = std::fma(a, F32FromBf16(x[i]), y[i]);
  }

  static double SqDistF64(const float* a, const float* b, int64_t n) {
    const int64_t n8 = n & ~int64_t{7};
    double r = 0.0;
    if (n8 > 0) {
      F64 acc = P::DZero();
      for (int64_t i = 0; i < n8; i += 8) {
        // The difference is taken in float (exact widening afterwards), so
        // the scalar tail below reproduces each lane's arithmetic verbatim.
        const F64 d = P::DCvt(P::Sub(P::Load(a + i), P::Load(b + i)));
        acc = P::DFmadd(d, d, acc);
      }
      double lanes[8];
      P::DStore(lanes, acc);
      r = LaneTree(lanes);
    }
    for (int64_t i = n8; i < n; ++i) {
      const double d = static_cast<double>(a[i] - b[i]);
      r = std::fma(d, d, r);
    }
    return r;
  }

  static double SumSqF64(const float* x, int64_t n) {
    const int64_t n8 = n & ~int64_t{7};
    double r = 0.0;
    if (n8 > 0) {
      F64 acc = P::DZero();
      for (int64_t i = 0; i < n8; i += 8) {
        const F64 d = P::DCvt(P::Load(x + i));
        acc = P::DFmadd(d, d, acc);
      }
      double lanes[8];
      P::DStore(lanes, acc);
      r = LaneTree(lanes);
    }
    for (int64_t i = n8; i < n; ++i) {
      const double d = static_cast<double>(x[i]);
      r = std::fma(d, d, r);
    }
    return r;
  }
};

template <typename P>
KernelTable MakeTable() {
  KernelTable t;
  t.gemm_row = &Kernels<P>::GemmRow;
  t.gemm_row_nt = &Kernels<P>::GemmRowNt;
  t.spmm_row = &Kernels<P>::SpmmRow;
  t.axpy = &Kernels<P>::Axpy;
  t.add = &Kernels<P>::Add;
  t.sub = &Kernels<P>::Sub;
  t.mul = &Kernels<P>::Mul;
  t.scale = &Kernels<P>::Scale;
  t.relu = &Kernels<P>::Relu;
  t.relu_bwd = &Kernels<P>::ReluBwd;
  t.scaled_diff_accum = &Kernels<P>::ScaledDiffAccum;
  t.softmax_bwd_row = &Kernels<P>::SoftmaxBwdRow;
  t.adam_step = &Kernels<P>::AdamStep;
  t.sgd_step = &Kernels<P>::SgdStep;
  t.bias_relu = &Kernels<P>::BiasRelu;
  t.softmax_row = &Kernels<P>::SoftmaxRow;
  t.softmax_xent_fwd_row = &Kernels<P>::SoftmaxXentFwdRow;
  t.bf16_pack = &Kernels<P>::Bf16Pack;
  t.bf16_unpack = &Kernels<P>::Bf16Unpack;
  t.gemm_row_bf16 = &Kernels<P>::GemmRowBf16;
  t.axpy_bf16 = &Kernels<P>::AxpyBf16;
  t.dot = &Kernels<P>::DotOne;
  t.sqdist_f64 = &Kernels<P>::SqDistF64;
  t.row_max = &Kernels<P>::RowMax;
  t.sum_f64 = &Kernels<P>::SumF64;
  t.sumsq_f64 = &Kernels<P>::SumSqF64;
  return t;
}

}  // namespace rdd::simd::internal

#endif  // RDD_SIMD_KERNEL_IMPL_H_
