#ifndef RDD_SIMD_BACKENDS_H_
#define RDD_SIMD_BACKENDS_H_

#include "simd/simd.h"

// Per-backend kernel tables. Each lives in its own translation unit so the
// AVX2/NEON TUs can carry their ISA compile flags without leaking them into
// the rest of the build (the dispatcher only ever calls a table after the
// runtime CPU check passes).

namespace rdd::simd::internal {

const KernelTable& ScalarTable();

#if defined(RDD_SIMD_HAVE_AVX2)
const KernelTable& Avx2Table();
#endif

#if defined(RDD_SIMD_HAVE_NEON)
const KernelTable& NeonTable();
#endif

}  // namespace rdd::simd::internal

#endif  // RDD_SIMD_BACKENDS_H_
