#include "simd/kernel_stats.h"

#include "observe/metrics.h"

namespace rdd::simd {

namespace {

/// Resolved once per call site; the references stay valid forever (the
/// registry never relocates instruments).
struct KernelCounters {
  observe::Counter& gemm_calls;
  observe::Counter& gemm_flops;
  observe::Counter& spmm_calls;
  observe::Counter& spmm_flops;
  observe::Counter& opt_calls;
  observe::Counter& opt_flops;
  observe::Counter& fused_gemm_calls;
  observe::Counter& fused_gemm_flops;
  observe::Counter& fused_spmm_calls;
  observe::Counter& fused_spmm_flops;
  observe::Counter& fused_xent_calls;
  observe::Counter& fused_xent_flops;
  observe::Counter& bf16_gemm_calls;
  observe::Counter& bf16_gemm_flops;
  observe::Counter& fusion_hits;
  observe::Counter& fusion_misses;
};

KernelCounters& Counters() {
  static KernelCounters* counters = [] {
    observe::MetricsRegistry& r = observe::MetricsRegistry::Global();
    auto* c = new KernelCounters{
        r.counter("simd.gemm.calls"),   r.counter("simd.gemm.flops"),
        r.counter("simd.spmm.calls"),   r.counter("simd.spmm.flops"),
        r.counter("simd.optimizer.calls"),
        r.counter("simd.optimizer.flops"),
        r.counter("simd.fused_gemm_bias_relu.calls"),
        r.counter("simd.fused_gemm_bias_relu.flops"),
        r.counter("simd.fused_spmm_bias_relu.calls"),
        r.counter("simd.fused_spmm_bias_relu.flops"),
        r.counter("simd.fused_softmax_xent.calls"),
        r.counter("simd.fused_softmax_xent.flops"),
        r.counter("simd.bf16_gemm.calls"),
        r.counter("simd.bf16_gemm.flops"),
        r.counter("simd.fusion.hits"),
        r.counter("simd.fusion.misses")};
    // Pull-style hit-rate: derived from the two counters at snapshot time
    // so the hot path never maintains a ratio.
    r.RegisterCallbackGauge("simd.fusion.hit_rate_pct", [c] {
      const uint64_t hits = c->fusion_hits.value();
      const uint64_t total = hits + c->fusion_misses.value();
      return total == 0 ? int64_t{0}
                        : static_cast<int64_t>(100 * hits / total);
    });
    return c;
  }();
  return *counters;
}

}  // namespace

void RecordGemm(int64_t m, int64_t k, int64_t n) {
  if (!observe::MetricsEnabled()) return;
  KernelCounters& c = Counters();
  c.gemm_calls.Add(1);
  c.gemm_flops.Add(static_cast<uint64_t>(2 * m * k * n));
}

void RecordSpmm(int64_t nnz, int64_t n) {
  if (!observe::MetricsEnabled()) return;
  KernelCounters& c = Counters();
  c.spmm_calls.Add(1);
  c.spmm_flops.Add(static_cast<uint64_t>(2 * nnz * n));
}

void RecordOptimizerStep(int64_t tensors, int64_t elements) {
  if (!observe::MetricsEnabled()) return;
  KernelCounters& c = Counters();
  c.opt_calls.Add(static_cast<uint64_t>(tensors));
  c.opt_flops.Add(static_cast<uint64_t>(10 * elements));
}

void RecordFusedGemmBiasRelu(int64_t m, int64_t k, int64_t n) {
  if (!observe::MetricsEnabled()) return;
  KernelCounters& c = Counters();
  c.fused_gemm_calls.Add(1);
  c.fused_gemm_flops.Add(static_cast<uint64_t>(2 * m * k * n + 2 * m * n));
}

void RecordFusedSpmmBiasRelu(int64_t nnz, int64_t rows, int64_t n) {
  if (!observe::MetricsEnabled()) return;
  KernelCounters& c = Counters();
  c.fused_spmm_calls.Add(1);
  c.fused_spmm_flops.Add(
      static_cast<uint64_t>(2 * nnz * n + 2 * rows * n));
}

void RecordFusedSoftmaxXent(int64_t rows, int64_t n) {
  if (!observe::MetricsEnabled()) return;
  KernelCounters& c = Counters();
  c.fused_xent_calls.Add(1);
  c.fused_xent_flops.Add(static_cast<uint64_t>(5 * rows * n));
}

void RecordBf16Gemm(int64_t m, int64_t k, int64_t n) {
  if (!observe::MetricsEnabled()) return;
  KernelCounters& c = Counters();
  c.bf16_gemm_calls.Add(1);
  c.bf16_gemm_flops.Add(static_cast<uint64_t>(2 * m * k * n));
}

void RecordFusionHit() {
  if (!observe::MetricsEnabled()) return;
  Counters().fusion_hits.Add(1);
}

void RecordFusionMiss() {
  if (!observe::MetricsEnabled()) return;
  Counters().fusion_misses.Add(1);
}

}  // namespace rdd::simd
