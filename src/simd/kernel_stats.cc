#include "simd/kernel_stats.h"

#include "observe/metrics.h"

namespace rdd::simd {

namespace {

/// Resolved once per call site; the references stay valid forever (the
/// registry never relocates instruments).
struct KernelCounters {
  observe::Counter& gemm_calls;
  observe::Counter& gemm_flops;
  observe::Counter& spmm_calls;
  observe::Counter& spmm_flops;
  observe::Counter& opt_calls;
  observe::Counter& opt_flops;
};

KernelCounters& Counters() {
  static KernelCounters* counters = [] {
    observe::MetricsRegistry& r = observe::MetricsRegistry::Global();
    return new KernelCounters{
        r.counter("simd.gemm.calls"),   r.counter("simd.gemm.flops"),
        r.counter("simd.spmm.calls"),   r.counter("simd.spmm.flops"),
        r.counter("simd.optimizer.calls"),
        r.counter("simd.optimizer.flops")};
  }();
  return *counters;
}

}  // namespace

void RecordGemm(int64_t m, int64_t k, int64_t n) {
  if (!observe::MetricsEnabled()) return;
  KernelCounters& c = Counters();
  c.gemm_calls.Add(1);
  c.gemm_flops.Add(static_cast<uint64_t>(2 * m * k * n));
}

void RecordSpmm(int64_t nnz, int64_t n) {
  if (!observe::MetricsEnabled()) return;
  KernelCounters& c = Counters();
  c.spmm_calls.Add(1);
  c.spmm_flops.Add(static_cast<uint64_t>(2 * nnz * n));
}

void RecordOptimizerStep(int64_t tensors, int64_t elements) {
  if (!observe::MetricsEnabled()) return;
  KernelCounters& c = Counters();
  c.opt_calls.Add(static_cast<uint64_t>(tensors));
  c.opt_flops.Add(static_cast<uint64_t>(10 * elements));
}

}  // namespace rdd::simd
