#ifndef RDD_SIMD_SIMD_H_
#define RDD_SIMD_SIMD_H_

#include <cstdint>

namespace rdd::simd {

/// Vectorized kernel backends. Exactly one is active at a time; the choice
/// never changes any numeric result (see the determinism contract below).
enum class Backend {
  kScalar = 0,  ///< Portable lane-by-lane emulation; runs on any CPU.
  kAvx2 = 1,    ///< AVX2 + FMA (x86-64, runtime-detected).
  kNeon = 2,    ///< NEON (aarch64, baseline).
};

/// The dispatched kernel set. One function pointer per hot inner loop; the
/// pointers are filled from whichever backend the dispatcher selected.
///
/// # Determinism contract (backend-invariant bit-identity)
///
/// Every backend produces bit-identical results for every kernel, so the
/// active backend — like the thread count — is a pure deployment knob. Two
/// rules make this hold:
///
/// 1. **Column-vectorized kernels** (gemm_row, spmm_row, and the whole
///    elementwise family): each SIMD lane owns one output element, so
///    vectorizing across columns never changes any element's accumulation
///    order. The contract is simply "strict ascending reduction index, one
///    fused multiply-add per step": out[j] = fma(a[p], b[p][j], out[j]) for
///    p = 0, 1, 2, .... Any lane width satisfies this, and the scalar
///    backend reproduces it with std::fma (correctly rounded, exactly the
///    hardware FMA result).
///
/// 2. **Reduction kernels** (dot, sum_f64, sumsq_f64): lanes cross element
///    boundaries, so the grouping is pinned to a canonical 8-lane order
///    that every backend reproduces: lane l accumulates indices
///    i ≡ l (mod 8) (via FMA where the kernel multiplies), the eight lane
///    totals are combined by the fixed tree
///    ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)), and the tail
///    (i >= 8*floor(n/8)) is folded in sequentially afterwards. AVX2 uses
///    one 8-lane register, NEON two 4-lane registers (lo = lanes 0-3,
///    hi = lanes 4-7), the scalar backend a float[8] — all the same order.
///
/// row_max needs no grouping contract: IEEE max is exactly associative, so
/// any order gives the same bits for finite inputs. Comparisons follow the
/// x86 maxps convention (a > b ? a : b, i.e. the second operand wins on
/// equality or NaN); NaN propagation through row_max may differ on NEON,
/// where vmaxq returns NaN if either operand is NaN.
///
/// Kernel translation units are compiled with -ffp-contract=off so the
/// compiler can never fuse (or refuse to fuse) a multiply-add differently
/// across backends; every FMA in the contract is spelled explicitly.
struct KernelTable {
  // --- GEMM / SpMM row kernels (rule 1: strict-order FMA) ---

  /// out[j] += sum over p in [0, k) of a[p*sa] * b[p*ldb + j], for
  /// j in [0, n), accumulating in ascending p with one FMA per step.
  /// Covers A*B rows (sa = 1) and transpose(A)*B rows (sa = lda), over
  /// either the original B (ldb = row stride) or a tight packed panel
  /// (ldb = n).
  void (*gemm_row)(const float* a, int64_t sa, const float* b, int64_t ldb,
                   int64_t k, int64_t n, float* out);

  /// out[j] = dot(a, b + j*ldb, k) for j in [0, rows): one canonical
  /// 8-lane-grouped dot product (rule 2) per row of B. The A*transpose(B)
  /// kernel.
  void (*gemm_row_nt)(const float* a, const float* b, int64_t ldb, int64_t k,
                      int64_t rows, float* out);

  /// One CSR row of SpMM: out[j] += sum over t in [0, nnz) of
  /// (alpha * vals[t]) * dense[cols[t]*ldd + j], ascending t, one FMA per
  /// step (the alpha scaling is a single multiply per entry).
  void (*spmm_row)(const float* vals, const int64_t* cols, int64_t nnz,
                   float alpha, const float* dense, int64_t ldd, float* out,
                   int64_t n);

  // --- fused epilogues / fused row kernels ---
  // Each fused kernel is the exact per-element composition of the unfused
  // kernels it replaces (same lane ops, same order), so fused and unfused
  // paths are bit-identical on every backend — the fusion win is purely the
  // removed memory round trip, never a different rounding.

  /// Fused bias + ReLU epilogue applied in place to a finished GEMM/SpMM
  /// output row: y[i] = relu(y[i] + bias[i]). Element-for-element identical
  /// to add(bias, y) followed by relu(y, y).
  void (*bias_relu)(const float* bias, float* y, int64_t n);

  /// One softmax row: p[i] = exp(x[i] - max(x)) / sum(exp(x - max(x))),
  /// with max via row_max, float exp per element, the normalizer summed by
  /// sum_f64, and the reciprocal applied via scale — the exact arithmetic
  /// of the row-parallel SoftmaxRows loop in tensor/ops.cc.
  void (*softmax_row)(const float* x, float* p, int64_t n);

  /// Fused softmax -> cross-entropy forward for one selected row: returns
  /// log softmax(x)[label] without materializing the row. Replicates the
  /// LogSoftmaxRows arithmetic bit for bit: row_max shift, serial
  /// double-precision exp sum, log_sum = float(log(sum)) + max.
  float (*softmax_xent_fwd_row)(const float* x, int64_t n, int64_t label);

  // --- bf16 storage tier (see simd/bf16.h for the numerics policy) ---

  /// y[i] = bf16(x[i]) with round-to-nearest-even (Bf16FromF32).
  void (*bf16_pack)(const float* x, uint16_t* y, int64_t n);
  /// y[i] = float(x[i]) — exact widening (F32FromBf16).
  void (*bf16_unpack)(const uint16_t* x, float* y, int64_t n);
  /// gemm_row with a bf16-stored B panel: operands widen exactly to fp32
  /// before the same strict-order FMA chain, so the kernel keeps rule 1.
  void (*gemm_row_bf16)(const float* a, int64_t sa, const uint16_t* b,
                        int64_t ldb, int64_t k, int64_t n, float* out);
  /// y = fma(a, unpack(x), y) — axpy with a bf16-stored x row.
  void (*axpy_bf16)(float a, const uint16_t* x, float* y, int64_t n);

  // --- elementwise / row-wise family (rule 1) ---

  void (*axpy)(float a, const float* x, float* y, int64_t n);  ///< y=fma(a,x,y)
  void (*add)(const float* x, float* y, int64_t n);            ///< y += x
  void (*sub)(const float* x, float* y, int64_t n);            ///< y -= x
  void (*mul)(const float* x, float* y, int64_t n);            ///< y *= x
  void (*scale)(float a, float* y, int64_t n);                 ///< y *= a
  /// y[i] = x[i] > 0 ? x[i] : 0 (in-place safe; NaN maps to 0, matching the
  /// pre-SIMD std::max(0.f, x) kernel).
  void (*relu)(const float* x, float* y, int64_t n);
  /// g[i] = x[i] > 0 ? g[i] : 0 (the ReLU backward mask).
  void (*relu_bwd)(const float* x, float* g, int64_t n);
  /// y[i] = fma(g, a[i] - b[i], y[i]) — the masked-loss backward row update
  /// shared by RowSquaredError, SoftCrossEntropy, and EdgeLaplacian.
  void (*scaled_diff_accum)(float g, const float* a, const float* b, float* y,
                            int64_t n);
  /// out[i] = p[i] * (g[i] - dot) — the softmax backward row combine.
  void (*softmax_bwd_row)(const float* p, const float* g, float dot,
                          float* out, int64_t n);
  /// One Adam update over n contiguous elements. Exact per-element op
  /// sequence (shared by every backend):
  ///   g'  = fma(wd, w, g)
  ///   m   = fma(beta1, m, (1-beta1) * g')
  ///   v   = fma(beta2, v, ((1-beta2) * g') * g')
  ///   w  -= (lr * (m / bias1)) / (sqrt(v / bias2) + eps)
  void (*adam_step)(float* w, float* m, float* v, const float* g, int64_t n,
                    float lr, float wd, float beta1, float beta2, float bias1,
                    float bias2, float eps);
  /// w -= lr * fma(wd, w, g) over n contiguous elements.
  void (*sgd_step)(float* w, const float* g, int64_t n, float lr, float wd);

  // --- reductions (rule 2: canonical 8-lane grouping) ---

  float (*dot)(const float* a, const float* b, int64_t n);
  /// Squared Euclidean distance sum over i of (a[i] - b[i])^2, with the
  /// float difference widened exactly to double and accumulated via
  /// fma(d, d, acc) in the canonical 8-lane grouping. The k-means
  /// assignment / k-means++ seeding distance of the graph condensers.
  double (*sqdist_f64)(const float* a, const float* b, int64_t n);
  /// Maximum of x[0..n); requires n >= 1. Exact for finite inputs in any
  /// grouping (IEEE max is associative).
  float (*row_max)(const float* x, int64_t n);
  /// Sum of x[0..n) accumulated in double (each float widened exactly).
  double (*sum_f64)(const float* x, int64_t n);
  /// Sum of squares of x[0..n) accumulated in double via fma(x, x, acc).
  double (*sumsq_f64)(const float* x, int64_t n);
};

/// The active kernel table. Resolved once on first use: RDD_SIMD=avx2|neon|
/// scalar forces a backend (falling back to the best supported one, with a
/// warning, if the forced backend cannot run here); otherwise the best
/// backend the CPU supports is chosen via runtime feature detection.
const KernelTable& K();

/// The backend K() currently dispatches to.
Backend ActiveBackend();

/// True when `b` can run on this machine with this binary.
bool BackendSupported(Backend b);

/// Forces the active backend at runtime (tests and benchmarks comparing
/// backends in one process). RDD_CHECKs that `b` is supported.
void SetBackend(Backend b);

/// Human-readable backend name ("scalar", "avx2", "neon").
const char* BackendName(Backend b);

namespace internal {
/// Parses an RDD_SIMD-style value into *out. Returns false (leaving *out
/// untouched) for null/unknown names. Exposed for tests.
bool ParseBackendName(const char* value, Backend* out);

/// Per-backend tables; null when the backend is not compiled in. Exposed so
/// tests can compare two backends' raw kernels directly.
const KernelTable* TableFor(Backend b);
}  // namespace internal

}  // namespace rdd::simd

#endif  // RDD_SIMD_SIMD_H_
