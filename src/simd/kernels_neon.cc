// NEON backend (aarch64 baseline, no runtime check needed). The 8-float
// group is a pair of float32x4_t: lo carries lanes 0-3, hi lanes 4-7; the
// 8-double group is four float64x2_t in lane order. vfmaq is the fused
// correctly-rounded FMA, so all rule-1 and rule-2 kernels (simd.h) are
// bit-identical to the scalar and AVX2 backends. Known contract edge: vmaxq
// returns NaN when either operand is NaN, where x86 maxps returns the second
// operand — row_max on NaN inputs is outside the contract (documented in
// simd.h).

#include "simd/backends.h"

#if defined(RDD_SIMD_HAVE_NEON)

#include "simd/kernel_impl.h"

#include <arm_neon.h>

namespace rdd::simd::internal {
namespace {

struct NeonPolicy {
  struct F32 {
    float32x4_t lo;
    float32x4_t hi;
  };
  struct F64 {
    float64x2_t d[4];
  };

  static F32 Load(const float* p) { return {vld1q_f32(p), vld1q_f32(p + 4)}; }
  static void Store(float* p, F32 x) {
    vst1q_f32(p, x.lo);
    vst1q_f32(p + 4, x.hi);
  }
  static F32 Broadcast(float x) { return {vdupq_n_f32(x), vdupq_n_f32(x)}; }
  static F32 Zero() { return Broadcast(0.0f); }
  static F32 Add(F32 a, F32 b) {
    return {vaddq_f32(a.lo, b.lo), vaddq_f32(a.hi, b.hi)};
  }
  static F32 Sub(F32 a, F32 b) {
    return {vsubq_f32(a.lo, b.lo), vsubq_f32(a.hi, b.hi)};
  }
  static F32 Mul(F32 a, F32 b) {
    return {vmulq_f32(a.lo, b.lo), vmulq_f32(a.hi, b.hi)};
  }
  static F32 Div(F32 a, F32 b) {
    return {vdivq_f32(a.lo, b.lo), vdivq_f32(a.hi, b.hi)};
  }
  static F32 Sqrt(F32 a) { return {vsqrtq_f32(a.lo), vsqrtq_f32(a.hi)}; }
  static F32 Fmadd(F32 a, F32 b, F32 c) {
    return {vfmaq_f32(c.lo, a.lo, b.lo), vfmaq_f32(c.hi, a.hi, b.hi)};
  }
  static F32 Max(F32 a, F32 b) {
    return {vmaxq_f32(a.lo, b.lo), vmaxq_f32(a.hi, b.hi)};
  }
  static F32 MaskGtZero(F32 x, F32 y) {
    const float32x4_t z = vdupq_n_f32(0.0f);
    return {vreinterpretq_f32_u32(
                vandq_u32(vcgtq_f32(x.lo, z), vreinterpretq_u32_f32(y.lo))),
            vreinterpretq_f32_u32(
                vandq_u32(vcgtq_f32(x.hi, z), vreinterpretq_u32_f32(y.hi)))};
  }
  // bf16 -> f32 is a zero-extend into the high half of each 32-bit lane
  // (vshll widens u16 to u32 while shifting left 16 — exact).
  static F32 LoadBf16(const uint16_t* p) {
    const uint16x8_t raw = vld1q_u16(p);
    return {vreinterpretq_f32_u32(vshll_n_u16(vget_low_u16(raw), 16)),
            vreinterpretq_f32_u32(vshll_n_u16(vget_high_u16(raw), 16))};
  }

  static F64 DZero() {
    const float64x2_t z = vdupq_n_f64(0.0);
    return {{z, z, z, z}};
  }
  static F64 DCvt(F32 x) {
    return {{vcvt_f64_f32(vget_low_f32(x.lo)),
             vcvt_high_f64_f32(x.lo),
             vcvt_f64_f32(vget_low_f32(x.hi)),
             vcvt_high_f64_f32(x.hi)}};
  }
  static F64 DAdd(F64 a, F64 b) {
    return {{vaddq_f64(a.d[0], b.d[0]), vaddq_f64(a.d[1], b.d[1]),
             vaddq_f64(a.d[2], b.d[2]), vaddq_f64(a.d[3], b.d[3])}};
  }
  static F64 DFmadd(F64 a, F64 b, F64 c) {
    return {{vfmaq_f64(c.d[0], a.d[0], b.d[0]),
             vfmaq_f64(c.d[1], a.d[1], b.d[1]),
             vfmaq_f64(c.d[2], a.d[2], b.d[2]),
             vfmaq_f64(c.d[3], a.d[3], b.d[3])}};
  }
  static void DStore(double* p, F64 x) {
    vst1q_f64(p, x.d[0]);
    vst1q_f64(p + 2, x.d[1]);
    vst1q_f64(p + 4, x.d[2]);
    vst1q_f64(p + 6, x.d[3]);
  }
};

}  // namespace

const KernelTable& NeonTable() {
  static const KernelTable table = MakeTable<NeonPolicy>();
  return table;
}

}  // namespace rdd::simd::internal

#endif  // RDD_SIMD_HAVE_NEON
