#ifndef RDD_PARALLEL_THREAD_POOL_H_
#define RDD_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rdd::parallel {

/// Shared worker pool behind ParallelFor. Lazily initialized on first use and
/// grown on demand, never shrunk; workers block on a condition variable while
/// idle so an unused pool costs nothing but memory. Not intended for direct
/// use by kernels — go through ParallelFor, which owns chunking, the serial
/// fallback, and the nested-region guard.
class ThreadPool {
 public:
  /// The process-wide pool. Created on first call; joined at process exit.
  static ThreadPool& Global();

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Spawns workers until at least `count` exist. Cheap when already large
  /// enough.
  void EnsureWorkers(int count);

  /// Enqueues a task for any idle worker.
  void Submit(std::function<void()> task);

  /// Number of worker threads currently alive (excludes the caller thread).
  int worker_count() const;

  /// True when called from one of this pool's worker threads.
  static bool OnWorkerThread();

 private:
  ThreadPool() = default;

  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutting_down_ = false;
};

}  // namespace rdd::parallel

#endif  // RDD_PARALLEL_THREAD_POOL_H_
