#ifndef RDD_PARALLEL_PARALLEL_FOR_H_
#define RDD_PARALLEL_PARALLEL_FOR_H_

#include <algorithm>
#include <cstdint>
#include <functional>

namespace rdd::parallel {

/// Configured thread count. Initialized on first call from the
/// RDD_NUM_THREADS environment variable (default: hardware concurrency,
/// clamped to >= 1). `RDD_NUM_THREADS=1` forces the serial path everywhere.
int NumThreads();

/// Overrides the thread count at runtime (tests, benchmarks, embedders).
/// Takes effect for subsequent ParallelFor calls; n must be >= 1.
void SetNumThreads(int n);

/// Thread budget visible to the calling thread: NumThreads() on an ordinary
/// thread, or the arena share assigned by a TaskGroup while inside one of
/// its tasks (see task_group.h). ParallelFor sizes its partition by this, so
/// a kernel inside a busy arena recruits only its share of the pool instead
/// of oversubscribing.
int EffectiveThreads();

/// True while the calling thread is executing a ParallelFor chunk body.
/// A nested ParallelFor issued from inside a chunk always runs inline.
bool InParallelRegion();

namespace internal {
/// True when this call must run serially: an effective budget of one
/// thread, a range no larger than one grain, or a nested call from inside
/// an executing chunk (kernels never fan out from within kernels).
bool ShouldRunSerial(int64_t range, int64_t grain);

/// Parallel dispatch path; only reached when ShouldRunSerial is false. The
/// std::function type erasure is confined here so the serial fast path stays
/// a direct, inlinable call.
void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& fn);

/// RAII override of the calling thread's budget (0 restores "no override",
/// i.e. EffectiveThreads() == NumThreads()). Used by TaskGroup to hand each
/// concurrently-running task its share of the pool; exposed for tests.
class ThreadBudgetScope {
 public:
  explicit ThreadBudgetScope(int budget);
  ~ThreadBudgetScope();

  ThreadBudgetScope(const ThreadBudgetScope&) = delete;
  ThreadBudgetScope& operator=(const ThreadBudgetScope&) = delete;

 private:
  int saved_;
};
}  // namespace internal

/// Runs fn(chunk_begin, chunk_end) over a static partition of [begin, end).
///
/// Guarantees:
///  - Chunks are contiguous, ordered, and cover each index exactly once.
///  - Split points are a pure function of (range size, grain, effective
///    thread budget): the same call partitions the same way every run, so
///    any kernel whose chunks write disjoint outputs is bit-reproducible
///    run-to-run. Kernels whose result could depend on the partition (e.g.
///    scattered reductions) must derive their own shape-only split — see
///    SparseMatrix::TransposeMultiply — so results stay bit-identical at
///    any thread count or arena budget.
///  - Serial fallback: with EffectiveThreads() == 1, a range smaller than
///    `grain`, or when already inside an executing chunk (nested kernel),
///    fn(begin, end) runs inline on the calling thread with zero dispatch
///    overhead (fn is invoked directly, not through a std::function, so the
///    serial path compiles to the plain loop).
///
/// Dispatch is claim-based and deadlock-free at any nesting depth: chunks
/// are claimed from a shared atomic cursor, the calling thread claims
/// chunks itself (starting with the first), and pool workers only help.
/// If every worker is busy — e.g. training other ensemble members in a
/// TaskGroup arena — the caller simply executes all chunks itself; it never
/// blocks on work that only an occupied worker could run. Returns after
/// every chunk finished. fn must not throw.
template <typename Fn>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, const Fn& fn) {
  const int64_t range = end - begin;
  if (range <= 0) return;
  if (internal::ShouldRunSerial(range, grain)) {
    fn(begin, end);
    return;
  }
  internal::ParallelForImpl(begin, end, grain, fn);
}

/// Suggested grain for a loop whose per-item cost is ~`cost_per_item` scalar
/// operations: large enough that one chunk amortizes the dispatch overhead,
/// never below 1.
inline int64_t GrainForCost(int64_t cost_per_item) {
  constexpr int64_t kMinWorkPerChunk = 1 << 15;  // ~32k scalar ops.
  return std::max<int64_t>(
      1, kMinWorkPerChunk / std::max<int64_t>(1, cost_per_item));
}

namespace internal {
/// Upper bound on a configured thread count; values above it clamp (with a
/// warning) instead of silently truncating through a narrowing cast.
inline constexpr int kMaxThreadCount = 1024;

/// Parses an RDD_NUM_THREADS-style value: returns `fallback` when `value` is
/// null, empty, non-numeric, or < 1 (warning on everything but null/empty),
/// and clamps values above kMaxThreadCount. Exposed for tests.
int ParseThreadCount(const char* value, int fallback);
}  // namespace internal

}  // namespace rdd::parallel

#endif  // RDD_PARALLEL_PARALLEL_FOR_H_
