#include "parallel/thread_pool.h"

#include <utility>

#include "observe/metrics.h"
#include "simd/simd.h"
#include "util/logging.h"

namespace rdd::parallel {

namespace {
/// Set for the lifetime of a worker thread; lets ParallelFor detect nested
/// parallel regions (which must run inline to avoid deadlocking the pool).
thread_local bool t_on_worker_thread = false;
}  // namespace

ThreadPool& ThreadPool::Global() {
  // Resolve the SIMD kernel dispatch before any worker can touch a kernel,
  // so the one-time cpuid/env resolution never races with hot loops.
  simd::K();
  static ThreadPool* pool = [] {
    auto* p = new ThreadPool();
    // Pull-style gauges: instantaneous queue depth and worker count are
    // read under the pool mutex only when a snapshot asks, keeping Submit's
    // hot path free of extra synchronization.
    observe::MetricsRegistry& r = observe::MetricsRegistry::Global();
    r.RegisterCallbackGauge("threadpool.queue_depth", [p] {
      std::lock_guard<std::mutex> lock(p->mu_);
      return static_cast<int64_t>(p->queue_.size());
    });
    r.RegisterCallbackGauge("threadpool.workers", [p] {
      return static_cast<int64_t>(p->worker_count());
    });
    return p;
  }();
  // Leaked deliberately: workers may still be blocked in the condvar during
  // static destruction, and every task is awaited by its submitter before
  // ParallelFor returns, so there is never pending work to lose at exit.
  return *pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::EnsureWorkers(int count) {
  std::lock_guard<std::mutex> lock(mu_);
  RDD_CHECK_GE(count, 0);
  while (static_cast<int>(workers_.size()) < count) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    RDD_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  if (observe::MetricsEnabled()) {
    static observe::Counter& submitted =
        observe::MetricsRegistry::Global().counter("threadpool.submitted");
    // The gauge's running max is the peak queue depth of the run
    // ("threadpool.submit_queue_depth.max" in snapshots).
    static observe::Gauge& submit_depth =
        observe::MetricsRegistry::Global().gauge(
            "threadpool.submit_queue_depth");
    submitted.Add(1);
    submit_depth.Set(static_cast<int64_t>(depth));
  }
  work_available_.notify_one();
}

int ThreadPool::worker_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

bool ThreadPool::OnWorkerThread() { return t_on_worker_thread; }

void ThreadPool::WorkerLoop() {
  t_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Only reachable when shutting down.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace rdd::parallel
