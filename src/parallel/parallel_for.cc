#include "parallel/parallel_for.h"

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "parallel/thread_pool.h"
#include "util/logging.h"

namespace rdd::parallel {

namespace internal {

int ParseThreadCount(const char* value, int fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') {
    RDD_LOG(Warning) << "RDD_NUM_THREADS=" << value
                     << " is not an integer; using " << fallback
                     << " thread(s)";
    return fallback;
  }
  // Saturate overflowed values instead of trusting the ERANGE result; a
  // value like 2^32+1 must clamp to the maximum, not truncate to 1.
  if (errno == ERANGE) parsed = parsed > 0 ? kMaxThreadCount + 1 : 0;
  if (parsed < 1) {
    RDD_LOG(Warning) << "RDD_NUM_THREADS=" << value
                     << " is below 1; using " << fallback << " thread(s)";
    return fallback;
  }
  if (parsed > kMaxThreadCount) {
    RDD_LOG(Warning) << "RDD_NUM_THREADS=" << value << " exceeds the cap of "
                     << kMaxThreadCount << "; clamping";
    return kMaxThreadCount;
  }
  return static_cast<int>(parsed);
}

}  // namespace internal

namespace {

int DefaultNumThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw == 0 ? 1 : static_cast<int>(hw);
  return internal::ParseThreadCount(std::getenv("RDD_NUM_THREADS"), fallback);
}

std::atomic<int>& ConfiguredThreads() {
  static std::atomic<int> threads{DefaultNumThreads()};
  return threads;
}

/// Per-thread arena budget assigned by ThreadBudgetScope. 0 = no override
/// (EffectiveThreads() falls through to NumThreads()).
thread_local int t_thread_budget = 0;

/// True while this thread executes a ParallelFor chunk body; nested
/// ParallelFor calls then run inline instead of re-entering the pool.
thread_local bool t_in_parallel_region = false;

/// Shared state of one in-flight ParallelFor call. Pool runners hold it via
/// shared_ptr: a runner that is dequeued after the caller already finished
/// every chunk must still be able to read `next` safely and exit. The
/// user-visible guarantee that `fn` outlives all executions holds because a
/// chunk can only be claimed while `completed < chunks`, and the caller does
/// not return before `completed == chunks`.
struct ForCall {
  const std::function<void(int64_t, int64_t)>* fn = nullptr;
  int64_t begin = 0;
  int64_t base = 0;       ///< Chunk size floor: range / chunks.
  int64_t remainder = 0;  ///< First `remainder` chunks get one extra index.
  int64_t chunks = 0;

  std::atomic<int64_t> next{0};       ///< Next unclaimed chunk index.
  std::atomic<int64_t> completed{0};  ///< Chunks fully executed.
  std::mutex mu;
  std::condition_variable done;
  bool all_done = false;

  /// First index of chunk c under the static partition. Pure function of
  /// (range, chunks), so split points never depend on claiming order.
  int64_t ChunkBegin(int64_t c) const {
    return begin + c * base + std::min(c, remainder);
  }

  /// Claims and runs chunks until the cursor is exhausted. Used by the
  /// calling thread and by pool runners alike; the last finisher signals.
  void RunChunks() {
    for (;;) {
      const int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const bool saved_region = t_in_parallel_region;
      t_in_parallel_region = true;
      (*fn)(ChunkBegin(c), ChunkBegin(c + 1));
      t_in_parallel_region = saved_region;
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        {
          std::lock_guard<std::mutex> lock(mu);
          all_done = true;
        }
        done.notify_all();
      }
    }
  }
};

}  // namespace

int NumThreads() { return ConfiguredThreads().load(std::memory_order_relaxed); }

void SetNumThreads(int n) {
  RDD_CHECK_GE(n, 1);
  ConfiguredThreads().store(n, std::memory_order_relaxed);
}

int EffectiveThreads() {
  return t_thread_budget > 0 ? t_thread_budget : NumThreads();
}

bool InParallelRegion() { return t_in_parallel_region; }

namespace internal {

ThreadBudgetScope::ThreadBudgetScope(int budget) : saved_(t_thread_budget) {
  RDD_CHECK_GE(budget, 0);
  t_thread_budget = budget;
}

ThreadBudgetScope::~ThreadBudgetScope() { t_thread_budget = saved_; }

bool ShouldRunSerial(int64_t range, int64_t grain) {
  RDD_CHECK_GE(grain, 1);
  return EffectiveThreads() <= 1 || range <= grain || t_in_parallel_region;
}

void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t range = end - begin;
  const int threads = EffectiveThreads();

  // Static partition: split points depend only on (range, grain, budget).
  const int64_t max_chunks = (range + grain - 1) / grain;
  const int64_t chunks = std::min<int64_t>(threads, max_chunks);

  auto call = std::make_shared<ForCall>();
  call->fn = &fn;
  call->begin = begin;
  call->base = range / chunks;
  call->remainder = range % chunks;
  call->chunks = chunks;
  RDD_CHECK_EQ(call->ChunkBegin(chunks), end);

  // Recruit helpers — but never rely on them. The pool holds at most
  // NumThreads() - 1 workers process-wide regardless of how many overlapping
  // regions and arenas request help, so the thread count is the
  // oversubscription cap, and a busy pool just means the caller runs more
  // chunks itself.
  ThreadPool& pool = ThreadPool::Global();
  pool.EnsureWorkers(NumThreads() - 1);
  const int64_t helpers = chunks - 1;
  for (int64_t h = 0; h < helpers; ++h) {
    pool.Submit([call] { call->RunChunks(); });
  }

  call->RunChunks();  // The caller claims chunks too, starting with chunk 0.

  std::unique_lock<std::mutex> lock(call->mu);
  call->done.wait(lock, [&call] { return call->all_done; });
}

}  // namespace internal

}  // namespace rdd::parallel
