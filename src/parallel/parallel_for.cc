#include "parallel/parallel_for.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "parallel/thread_pool.h"
#include "util/logging.h"

namespace rdd::parallel {

namespace internal {

int ParseThreadCount(const char* value, int fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 1) return fallback;
  return static_cast<int>(parsed);
}

}  // namespace internal

namespace {

int DefaultNumThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw == 0 ? 1 : static_cast<int>(hw);
  return internal::ParseThreadCount(std::getenv("RDD_NUM_THREADS"), fallback);
}

std::atomic<int>& ConfiguredThreads() {
  static std::atomic<int> threads{DefaultNumThreads()};
  return threads;
}

/// Completion latch shared by the chunks of one ParallelFor call.
struct Barrier {
  std::mutex mu;
  std::condition_variable done;
  int remaining = 0;
};

}  // namespace

int NumThreads() { return ConfiguredThreads().load(std::memory_order_relaxed); }

void SetNumThreads(int n) {
  RDD_CHECK_GE(n, 1);
  ConfiguredThreads().store(n, std::memory_order_relaxed);
}

namespace internal {

bool ShouldRunSerial(int64_t range, int64_t grain) {
  RDD_CHECK_GE(grain, 1);
  return NumThreads() <= 1 || range <= grain || ThreadPool::OnWorkerThread();
}

void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t range = end - begin;
  const int threads = NumThreads();

  // Static partition: split points depend only on (range, grain, threads).
  const int64_t max_chunks = (range + grain - 1) / grain;
  const int64_t chunks = std::min<int64_t>(threads, max_chunks);
  const int64_t base = range / chunks;
  const int64_t remainder = range % chunks;

  ThreadPool& pool = ThreadPool::Global();
  pool.EnsureWorkers(threads - 1);

  Barrier barrier;
  barrier.remaining = static_cast<int>(chunks) - 1;

  int64_t chunk_begin = begin;
  const int64_t first_end = chunk_begin + base + (remainder > 0 ? 1 : 0);
  int64_t next_begin = first_end;
  for (int64_t c = 1; c < chunks; ++c) {
    const int64_t c_begin = next_begin;
    const int64_t c_end = c_begin + base + (c < remainder ? 1 : 0);
    next_begin = c_end;
    pool.Submit([&fn, &barrier, c_begin, c_end] {
      fn(c_begin, c_end);
      std::lock_guard<std::mutex> lock(barrier.mu);
      if (--barrier.remaining == 0) barrier.done.notify_one();
    });
  }
  RDD_CHECK_EQ(next_begin, end);

  fn(chunk_begin, first_end);  // The caller works the first chunk itself.

  std::unique_lock<std::mutex> lock(barrier.mu);
  barrier.done.wait(lock, [&barrier] { return barrier.remaining == 0; });
}

}  // namespace internal

}  // namespace rdd::parallel
