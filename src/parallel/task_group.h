#ifndef RDD_PARALLEL_TASK_GROUP_H_
#define RDD_PARALLEL_TASK_GROUP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace rdd::parallel {

/// True unless task-level parallelism is disabled: by RDD_TASK_PARALLEL=0 in
/// the environment at first use, or by SetTaskParallelEnabled(false) at
/// runtime. When disabled, TaskGroup::Wait runs every task inline on the
/// calling thread in submission order with the full thread budget — the
/// sequential baseline the benches and determinism tests compare against.
/// Kernel-level parallelism (ParallelFor) is unaffected by this switch.
bool TaskParallelEnabled();
void SetTaskParallelEnabled(bool enabled);

/// A group of independent coarse tasks — "train one ensemble member",
/// "build one teacher view" — run concurrently on the shared ThreadPool.
///
/// Two-level model: TaskGroup is the OUTER level (arenas), ParallelFor the
/// INNER (kernels). When k tasks run concurrently under a configured budget
/// of N threads, each task executes inside a ThreadBudgetScope of
/// max(1, N / min(k, N)) threads, so the inner kernels of all tasks
/// together never recruit more than N threads: arenas split the budget,
/// they do not multiply it. With one task, or with task parallelism
/// disabled, tasks keep the full budget.
///
/// Scheduling is claim-based and deadlock-free at any nesting depth: Run()
/// only records the task; Wait() submits helper jobs to the pool and then
/// claims tasks itself from an atomic cursor, so a fully busy pool
/// degrades to the caller executing every task in submission order rather
/// than blocking. A TaskGroup created inside another group's task simply
/// sees its arena budget as the configured thread count and subdivides it.
///
/// Determinism contract: tasks may complete in any order, so callers must
/// (1) write results into per-task slots, not shared accumulators, and
/// (2) draw any seeds BEFORE Run() — never from a shared Rng inside a task.
/// Under those rules a parallel run is bit-identical to the sequential one
/// (every kernel's value is partition-independent; see parallel_for.h).
///
/// Tasks must not throw. Wait() must be called before destruction whenever
/// Run() was called at least once.
class TaskGroup {
 public:
  TaskGroup() = default;
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Records a task. Execution is deferred to Wait() so the arena can size
  /// every task's thread share from the final task count.
  void Run(std::function<void()> task);

  /// Runs every recorded task and returns when all have finished. The
  /// calling thread participates. Afterwards the group is empty and can be
  /// reused for another round.
  void Wait();

 private:
  std::vector<std::function<void()>> tasks_;
};

/// Convenience wrapper: runs fn(i) for i in [0, n) as one TaskGroup round.
void ParallelTasks(int64_t n, const std::function<void(int64_t)>& fn);

}  // namespace rdd::parallel

#endif  // RDD_PARALLEL_TASK_GROUP_H_
