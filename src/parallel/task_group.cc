#include "parallel/task_group.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "observe/metrics.h"
#include "observe/trace.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "util/env.h"
#include "util/logging.h"

namespace rdd::parallel {

namespace {

/// Scheduler instruments, resolved once. The claimed_by_caller /
/// claimed_by_helper split is the task-level analogue of a work-stealing
/// "steal" counter: helper claims are tasks the pool lifted off the
/// submitting thread.
struct GroupMetrics {
  observe::Counter& rounds;
  observe::Counter& tasks_inline;
  observe::Counter& claimed_by_caller;
  observe::Counter& claimed_by_helper;
  observe::Histogram& task_ns;
};

GroupMetrics& Metrics() {
  static GroupMetrics* metrics = [] {
    observe::MetricsRegistry& r = observe::MetricsRegistry::Global();
    return new GroupMetrics{r.counter("taskgroup.rounds"),
                            r.counter("taskgroup.tasks_inline"),
                            r.counter("taskgroup.tasks_claimed_by_caller"),
                            r.counter("taskgroup.tasks_claimed_by_helper"),
                            r.histogram("taskgroup.task_ns")};
  }();
  return *metrics;
}

std::atomic<bool>& TaskParallelFlag() {
  static std::atomic<bool> enabled{env::BoolEnv("RDD_TASK_PARALLEL", true)};
  return enabled;
}

/// Shared state of one Wait() round; pool helpers hold it via shared_ptr so
/// a helper dequeued after the round already finished can still exit safely
/// (it finds the cursor exhausted without touching the tasks vector — tasks
/// can only be claimed while the caller is still inside Wait()).
struct GroupRound {
  std::vector<std::function<void()>> tasks;
  int budget = 1;  ///< ThreadBudgetScope for each task.

  std::atomic<int64_t> next{0};
  std::atomic<int64_t> completed{0};
  std::mutex mu;
  std::condition_variable done;
  bool all_done = false;

  void RunTasks(bool is_caller) {
    const int64_t n = static_cast<int64_t>(tasks.size());
    for (;;) {
      const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      {
        internal::ThreadBudgetScope scope(budget);
        const bool metrics = observe::MetricsEnabled();
        const uint64_t start_ns =
            metrics ? observe::internal::TraceNowNanos() : 0;
        {
          observe::TraceSpan span("taskgroup/task", i);
          tasks[static_cast<size_t>(i)]();
        }
        if (metrics) {
          GroupMetrics& m = Metrics();
          (is_caller ? m.claimed_by_caller : m.claimed_by_helper).Add(1);
          m.task_ns.Record(observe::internal::TraceNowNanos() - start_ns);
        }
      }
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        {
          std::lock_guard<std::mutex> lock(mu);
          all_done = true;
        }
        done.notify_all();
      }
    }
  }
};

}  // namespace

bool TaskParallelEnabled() {
  return TaskParallelFlag().load(std::memory_order_relaxed);
}

void SetTaskParallelEnabled(bool enabled) {
  TaskParallelFlag().store(enabled, std::memory_order_relaxed);
}

TaskGroup::~TaskGroup() {
  RDD_CHECK(tasks_.empty()) << "TaskGroup destroyed with unrun tasks; call "
                               "Wait() before destruction";
}

void TaskGroup::Run(std::function<void()> task) {
  RDD_CHECK(task != nullptr);
  tasks_.push_back(std::move(task));
}

void TaskGroup::Wait() {
  if (tasks_.empty()) return;
  std::vector<std::function<void()>> tasks;
  tasks.swap(tasks_);  // The group is reusable after Wait().

  const int64_t n = static_cast<int64_t>(tasks.size());
  const int threads = EffectiveThreads();
  // Sequential fallback: a single task, a one-thread budget, task
  // parallelism switched off, or a call from inside an executing kernel
  // chunk (never fan out from within a kernel). Tasks keep the full budget
  // and run in submission order on the calling thread.
  if (n == 1 || threads <= 1 || !TaskParallelEnabled() ||
      InParallelRegion()) {
    if (observe::MetricsEnabled()) {
      Metrics().tasks_inline.Add(static_cast<uint64_t>(n));
    }
    for (auto& task : tasks) task();
    return;
  }
  if (observe::MetricsEnabled()) Metrics().rounds.Add(1);

  // Arena split: k concurrent tasks share the budget evenly. The division
  // floors — with 8 threads and 3 tasks each task plans 2-wide kernels —
  // because a too-small plan only idles workers, while a too-large one
  // would contend for cores with the other arenas' kernels.
  const int concurrency = static_cast<int>(std::min<int64_t>(threads, n));
  auto round = std::make_shared<GroupRound>();
  round->tasks = std::move(tasks);
  round->budget = std::max(1, threads / concurrency);

  ThreadPool& pool = ThreadPool::Global();
  pool.EnsureWorkers(NumThreads() - 1);
  for (int h = 0; h < concurrency - 1; ++h) {
    pool.Submit([round] { round->RunTasks(/*is_caller=*/false); });
  }

  // The caller claims tasks too, starting with task 0.
  round->RunTasks(/*is_caller=*/true);

  std::unique_lock<std::mutex> lock(round->mu);
  round->done.wait(lock, [&round] { return round->all_done; });
}

void ParallelTasks(int64_t n, const std::function<void(int64_t)>& fn) {
  RDD_CHECK_GE(n, 0);
  TaskGroup group;
  for (int64_t i = 0; i < n; ++i) {
    group.Run([&fn, i] { fn(i); });
  }
  group.Wait();
}

}  // namespace rdd::parallel
