#ifndef RDD_GRAPH_METRICS_H_
#define RDD_GRAPH_METRICS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace rdd {

/// Fraction of edges whose endpoints share a label (edge homophily). The
/// citation networks the paper evaluates on have homophily around 0.7-0.9;
/// the synthetic generator is calibrated against this metric. Returns 0 for
/// edgeless graphs.
double EdgeHomophily(const Graph& graph, const std::vector<int64_t>& labels);

/// Basic degree statistics of a graph.
struct DegreeStats {
  int64_t min_degree = 0;
  int64_t max_degree = 0;
  double mean_degree = 0.0;
  /// Fraction of nodes with degree 0.
  double isolated_fraction = 0.0;
};

/// Computes degree statistics in one pass.
DegreeStats ComputeDegreeStats(const Graph& graph);

}  // namespace rdd

#endif  // RDD_GRAPH_METRICS_H_
