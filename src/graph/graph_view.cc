#include "graph/graph_view.h"

#include <cmath>
#include <unordered_map>

#include "util/logging.h"

namespace rdd {

std::vector<int64_t> GraphView::GatherInt64(
    const std::vector<int64_t>& global) const {
  if (full()) return global;
  std::vector<int64_t> local(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    RDD_CHECK_LT(static_cast<size_t>(nodes[i]), global.size());
    local[i] = global[static_cast<size_t>(nodes[i])];
  }
  return local;
}

std::vector<bool> GraphView::GatherMask(
    const std::vector<bool>& global) const {
  if (full()) return global;
  std::vector<bool> local(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    RDD_CHECK_LT(static_cast<size_t>(nodes[i]), global.size());
    local[i] = global[static_cast<size_t>(nodes[i])];
  }
  return local;
}

std::vector<int64_t> GraphView::TargetIndices() const {
  std::vector<int64_t> idx(static_cast<size_t>(num_targets));
  for (int64_t i = 0; i < num_targets; ++i) idx[static_cast<size_t>(i)] = i;
  return idx;
}

GraphView MakeInducedView(const Graph& graph, const SparseMatrix& features,
                          int64_t num_classes, std::vector<int64_t> nodes,
                          int64_t num_targets) {
  RDD_CHECK(!nodes.empty());
  RDD_CHECK_GT(num_targets, 0);
  RDD_CHECK_LE(num_targets, static_cast<int64_t>(nodes.size()));
  RDD_CHECK_EQ(features.rows(), graph.num_nodes());

  const int64_t n = static_cast<int64_t>(nodes.size());
  std::unordered_map<int64_t, int64_t> local_of;
  local_of.reserve(static_cast<size_t>(n) * 2);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t g = nodes[static_cast<size_t>(i)];
    RDD_CHECK_GE(g, 0);
    RDD_CHECK_LT(g, graph.num_nodes());
    const bool inserted = local_of.emplace(g, i).second;
    RDD_CHECK(inserted);  // duplicate node in view
  }

  // Induced adjacency: for each view node, keep only neighbors that are also
  // in the view. Degrees (and therefore both normalizations) are recomputed
  // on the induced subgraph so every view is a well-formed small graph.
  std::vector<std::vector<int64_t>> local_nbrs(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t g = nodes[static_cast<size_t>(i)];
    for (int64_t nbr : graph.Neighbors(g)) {
      auto it = local_of.find(nbr);
      if (it != local_of.end()) local_nbrs[static_cast<size_t>(i)].push_back(it->second);
    }
  }

  // Degree with self-loop, matching the full-graph normalization convention
  // (D^-1/2 (A+I) D^-1/2 and D^-1 (A+I) with D counting the self edge).
  // Kept in double until the final cast, like graph/normalize.cc, so a view
  // over the whole node set is bit-identical to the full-graph matrices.
  std::vector<double> inv_sqrt_deg(static_cast<size_t>(n));
  std::vector<float> inv_deg(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const double deg =
        static_cast<double>(local_nbrs[static_cast<size_t>(i)].size()) + 1.0;
    inv_sqrt_deg[static_cast<size_t>(i)] = 1.0 / std::sqrt(deg);
    inv_deg[static_cast<size_t>(i)] = static_cast<float>(1.0 / deg);
  }

  int64_t nnz = n;  // self-loops
  for (const auto& nbrs : local_nbrs) nnz += static_cast<int64_t>(nbrs.size());

  std::vector<SparseEntry> sym_entries;
  std::vector<SparseEntry> row_entries;
  sym_entries.reserve(static_cast<size_t>(nnz));
  row_entries.reserve(static_cast<size_t>(nnz));
  for (int64_t i = 0; i < n; ++i) {
    const double di = inv_sqrt_deg[static_cast<size_t>(i)];
    sym_entries.push_back({i, i, static_cast<float>(di * di)});
    row_entries.push_back({i, i, inv_deg[static_cast<size_t>(i)]});
    for (int64_t j : local_nbrs[static_cast<size_t>(i)]) {
      sym_entries.push_back(
          {i, j,
           static_cast<float>(di * inv_sqrt_deg[static_cast<size_t>(j)])});
      row_entries.push_back({i, j, inv_deg[static_cast<size_t>(i)]});
    }
  }

  // Row-slice the feature matrix into view-local order.
  const auto& frp = features.row_ptr();
  const auto& fci = features.col_idx();
  const auto& fva = features.values();
  std::vector<SparseEntry> feat_entries;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t g = nodes[static_cast<size_t>(i)];
    for (int64_t p = frp[static_cast<size_t>(g)];
         p < frp[static_cast<size_t>(g) + 1]; ++p) {
      feat_entries.push_back(
          {i, fci[static_cast<size_t>(p)], fva[static_cast<size_t>(p)]});
    }
  }

  GraphView view;
  view.features = std::make_shared<const SparseMatrix>(
      SparseMatrix::FromCoo(n, features.cols(), std::move(feat_entries)));
  view.adj_norm = std::make_shared<const SparseMatrix>(
      SparseMatrix::FromCoo(n, n, std::move(sym_entries)));
  view.adj_row = std::make_shared<const SparseMatrix>(
      SparseMatrix::FromCoo(n, n, std::move(row_entries)));
  view.nodes = std::move(nodes);
  view.num_nodes = n;
  view.num_targets = num_targets;
  view.feature_dim = features.cols();
  view.num_classes = num_classes;
  return view;
}

std::vector<std::pair<int64_t, int64_t>> ViewEdges(const GraphView& view) {
  std::vector<std::pair<int64_t, int64_t>> edges;
  RDD_CHECK(view.adj_norm != nullptr);
  const SparseMatrix& adj = *view.adj_norm;
  const auto& rp = adj.row_ptr();
  const auto& ci = adj.col_idx();
  for (int64_t u = 0; u < adj.rows(); ++u) {
    for (int64_t p = rp[static_cast<size_t>(u)];
         p < rp[static_cast<size_t>(u) + 1]; ++p) {
      const int64_t v = ci[static_cast<size_t>(p)];
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

}  // namespace rdd
