#ifndef RDD_GRAPH_SAMPLER_H_
#define RDD_GRAPH_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_view.h"
#include "tensor/sparse.h"
#include "util/random.h"

namespace rdd {

/// Fan-out schedule for neighbor sampling. fanouts[h] bounds how many
/// neighbors each hop-h frontier node contributes; a non-positive fan-out
/// keeps the full neighborhood at that hop.
struct SamplerConfig {
  std::vector<int64_t> fanouts = {10, 10};
  uint64_t seed = 0x5eedULL;  ///< Base of the sampling stream tree.
};

/// GraphSAGE-style fan-out neighbor sampler producing induced GraphViews.
///
/// Every draw comes from a Split-derived stream keyed by (epoch, hop,
/// node): `base.Split(epoch).Split(hop).Split(node)`. A node's sample is
/// therefore a pure function of (seed, epoch, hop, node id) — independent
/// of batch composition order, thread count, and SIMD backend — so sampled
/// training is bit-identical under any parallel configuration. Per-node
/// draws run under ParallelFor into per-node slots and are merged in fixed
/// frontier order.
///
/// The returned views are Cluster-GCN-style induced subgraphs: the node set
/// is targets + sampled frontier, and ALL edges among those nodes are kept
/// and renormalized, so a view is a well-formed small graph rather than a
/// directed sampling tree.
class NeighborSampler {
 public:
  /// The graph and feature matrix must outlive the sampler and every view
  /// it produces (views slice features by row).
  NeighborSampler(const Graph* graph, const SparseMatrix* features,
                  int64_t num_classes, SamplerConfig config);

  /// Deterministically shuffles `targets` with the epoch-split stream and
  /// cuts the result into ceil(n / batch_size) contiguous batches. The plan
  /// depends only on (seed, targets, batch_size, epoch).
  std::vector<std::vector<int64_t>> PlanBatches(
      const std::vector<int64_t>& targets, int64_t batch_size,
      int64_t epoch) const;

  /// Samples the multi-hop frontier of `targets` for `epoch` and builds the
  /// induced view (targets are rows [0, targets.size())).
  GraphView SampleView(const std::vector<int64_t>& targets,
                       int64_t epoch) const;

  /// Deterministic full-neighborhood view: targets plus every node within
  /// `hops` hops, no sampling. Used for sampled-graph inference where the
  /// receptive field must not depend on the epoch.
  GraphView InferenceView(const std::vector<int64_t>& targets,
                          int64_t hops) const;

  const SamplerConfig& config() const { return config_; }

 private:
  /// Expands `frontier` by one hop with fan-out `fanout`, appending newly
  /// discovered nodes to *nodes / *seen and returning them.
  std::vector<int64_t> ExpandHop(const std::vector<int64_t>& frontier,
                                 int64_t fanout, int64_t epoch, int64_t hop,
                                 std::vector<int64_t>* nodes,
                                 std::vector<uint8_t>* seen) const;

  const Graph* graph_;
  const SparseMatrix* features_;
  int64_t num_classes_;
  SamplerConfig config_;
  Rng base_;  ///< Never advanced; only Split from.
};

}  // namespace rdd

#endif  // RDD_GRAPH_SAMPLER_H_
