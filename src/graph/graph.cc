#include "graph/graph.h"

#include <algorithm>

#include "util/logging.h"

namespace rdd {

Graph::Graph(int64_t num_nodes, const std::vector<Edge>& edges)
    : num_nodes_(num_nodes) {
  RDD_CHECK_GE(num_nodes, 0);
  std::vector<Edge> canonical;
  canonical.reserve(edges.size());
  for (const Edge& e : edges) {
    RDD_CHECK_GE(e.u, 0);
    RDD_CHECK_LT(e.u, num_nodes);
    RDD_CHECK_GE(e.v, 0);
    RDD_CHECK_LT(e.v, num_nodes);
    if (e.u == e.v) continue;  // Self-loops are dropped.
    canonical.push_back(e.u < e.v ? e : Edge{e.v, e.u});
  }
  std::sort(canonical.begin(), canonical.end(),
            [](const Edge& a, const Edge& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  canonical.erase(std::unique(canonical.begin(), canonical.end()),
                  canonical.end());
  edges_ = std::move(canonical);

  adjacency_.assign(static_cast<size_t>(num_nodes_), {});
  for (const Edge& e : edges_) {
    adjacency_[static_cast<size_t>(e.u)].push_back(e.v);
    adjacency_[static_cast<size_t>(e.v)].push_back(e.u);
  }
  for (auto& nbrs : adjacency_) std::sort(nbrs.begin(), nbrs.end());
}

Graph Graph::FromCanonicalEdges(int64_t num_nodes, std::vector<Edge> edges) {
  RDD_CHECK_GE(num_nodes, 0);
  for (size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    RDD_CHECK_GE(e.u, 0);
    RDD_CHECK_LT(e.u, num_nodes);
    RDD_CHECK_LT(e.u, e.v);
    RDD_CHECK_LT(e.v, num_nodes);
    if (i > 0) {
      const Edge& prev = edges[i - 1];
      RDD_CHECK(prev.u < e.u || (prev.u == e.u && prev.v < e.v));
    }
  }
  Graph graph;
  graph.num_nodes_ = num_nodes;
  graph.edges_ = std::move(edges);
  graph.adjacency_.assign(static_cast<size_t>(num_nodes), {});
  for (const Edge& e : graph.edges_) {
    graph.adjacency_[static_cast<size_t>(e.u)].push_back(e.v);
    graph.adjacency_[static_cast<size_t>(e.v)].push_back(e.u);
  }
  for (auto& nbrs : graph.adjacency_) std::sort(nbrs.begin(), nbrs.end());
  return graph;
}

const std::vector<int64_t>& Graph::Neighbors(int64_t node) const {
  RDD_CHECK_GE(node, 0);
  RDD_CHECK_LT(node, num_nodes_);
  return adjacency_[static_cast<size_t>(node)];
}

int64_t Graph::Degree(int64_t node) const {
  return static_cast<int64_t>(Neighbors(node).size());
}

bool Graph::HasEdge(int64_t u, int64_t v) const {
  if (u == v) return false;
  const std::vector<int64_t>& nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

int64_t Graph::MaxDegree() const {
  int64_t best = 0;
  for (const auto& nbrs : adjacency_) {
    best = std::max(best, static_cast<int64_t>(nbrs.size()));
  }
  return best;
}

double Graph::AverageDegree() const {
  if (num_nodes_ == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) /
         static_cast<double>(num_nodes_);
}

}  // namespace rdd
