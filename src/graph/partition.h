#ifndef RDD_GRAPH_PARTITION_H_
#define RDD_GRAPH_PARTITION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_view.h"
#include "tensor/matrix.h"
#include "tensor/sparse.h"

namespace rdd {

/// Sign-hash random projection of `features` to `dim` columns (dim <= 64;
/// the projection matrix is implicit, one 64-bit hash per feature), smoothed
/// `propagation_steps` times over D^-1 (A+I). This is the shared front end
/// of the propagated-feature partitioner and the clustering condenser: the
/// smoothing pulls adjacent nodes together in the projected space, so
/// distance there respects both feature similarity and graph locality.
/// Deterministic: a pure function of (graph, features, dim, steps, seed) at
/// any thread count and kernel backend.
Matrix PropagatedProjectedFeatures(const Graph& graph,
                                   const SparseMatrix& features, int64_t dim,
                                   int64_t propagation_steps, uint64_t seed);

/// Settings for the propagated-feature partitioner.
struct PartitionConfig {
  int64_t num_parts = 4;
  /// Width of the hashed random projection of the feature matrix. The
  /// projection matrix is implicit (sign hashes), so projecting costs
  /// O(nnz(X) * dim) time and O(n * dim) memory — no feature densification.
  int64_t projection_dim = 16;
  /// Rounds of D^-1 (A+I) smoothing applied to the projected features
  /// before clustering; this is what makes clusters respect graph locality.
  int64_t propagation_steps = 2;
  int64_t kmeans_iters = 10;
  /// Per-part capacity = ceil(n / num_parts) * balance_slack.
  double balance_slack = 1.1;
  uint64_t seed = 0x9a97ULL;
};

/// An edge-cut node partition.
struct GraphPartition {
  /// node -> part id in [0, num_parts).
  std::vector<int64_t> part_of;
  /// part -> its nodes, ascending.
  std::vector<std::vector<int64_t>> parts;
  /// Number of undirected edges whose endpoints land in different parts.
  int64_t cut_edges = 0;
  int64_t total_edges = 0;

  double EdgeCutFraction() const {
    return total_edges > 0
               ? static_cast<double>(cut_edges) / static_cast<double>(total_edges)
               : 0.0;
  }
};

/// Partitions `graph` into config.num_parts balanced shards by clustering
/// smoothed node features: hash-projected bag-of-words are propagated
/// config.propagation_steps times over D^-1 (A+I), k-means clusters the
/// result, and nodes are assigned to their nearest centroid under a
/// capacity bound. Propagation pulls adjacent nodes toward the same
/// centroid, so the assignment doubles as a lightweight edge-cut heuristic
/// (the clustering view of graph distillation: intra-shard homophily stays
/// high, which is what keeps per-shard training close to full-batch
/// accuracy). Deterministic: the result is a pure function of
/// (graph, features, config) at any thread count.
GraphPartition PartitionByPropagatedFeatures(const Graph& graph,
                                             const SparseMatrix& features,
                                             const PartitionConfig& config);

/// Builds one induced GraphView per part (every shard node is a target).
/// Peak memory while training shard-by-shard is bounded by the largest
/// shard, not the full graph.
std::vector<GraphView> MakeShardViews(const Graph& graph,
                                      const SparseMatrix& features,
                                      int64_t num_classes,
                                      const GraphPartition& partition);

}  // namespace rdd

#endif  // RDD_GRAPH_PARTITION_H_
