#include "graph/partition.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/normalize.h"
#include "parallel/parallel_for.h"
#include "tensor/matrix.h"
#include "util/logging.h"

namespace rdd {

namespace {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Sign-hash random projection: Z = X R with R[f][d] = +-1 read off bit d of
// a per-feature hash. R is never materialized, so projecting costs
// O(nnz(X) * dim) with O(n * dim) output — the only dense object the
// partitioner ever holds.
Matrix ProjectFeatures(const SparseMatrix& features, int64_t dim,
                       uint64_t seed) {
  RDD_CHECK_LE(dim, 64);  // signs come from one 64-bit hash per feature
  const int64_t n = features.rows();
  Matrix z(n, dim);
  const std::vector<int64_t>& row_ptr = features.row_ptr();
  const std::vector<int64_t>& col_idx = features.col_idx();
  const std::vector<float>& values = features.values();
  const int64_t avg_nnz = n > 0 ? features.nnz() / std::max<int64_t>(n, 1) : 0;
  parallel::ParallelFor(
      0, n, parallel::GrainForCost((avg_nnz + 1) * dim),
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          float* out = z.RowData(i);
          for (int64_t p = row_ptr[static_cast<size_t>(i)];
               p < row_ptr[static_cast<size_t>(i) + 1]; ++p) {
            const float v = values[static_cast<size_t>(p)];
            const uint64_t h =
                Mix64(seed ^ Mix64(static_cast<uint64_t>(
                          col_idx[static_cast<size_t>(p)])));
            for (int64_t d = 0; d < dim; ++d) {
              out[d] += ((h >> d) & 1u) ? v : -v;
            }
          }
        }
      });
  return z;
}

float SquaredDistance(const float* a, const float* b, int64_t dim) {
  float acc = 0.0f;
  for (int64_t d = 0; d < dim; ++d) {
    const float diff = a[d] - b[d];
    acc += diff * diff;
  }
  return acc;
}

// Nearest-center assignment; ties break toward the lowest center id.
int64_t NearestCenter(const float* row, const Matrix& centers) {
  int64_t best = 0;
  float best_dist = std::numeric_limits<float>::max();
  for (int64_t c = 0; c < centers.rows(); ++c) {
    const float dist = SquaredDistance(row, centers.RowData(c), centers.cols());
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

}  // namespace

Matrix PropagatedProjectedFeatures(const Graph& graph,
                                   const SparseMatrix& features, int64_t dim,
                                   int64_t propagation_steps, uint64_t seed) {
  RDD_CHECK_GT(dim, 0);
  RDD_CHECK_EQ(features.rows(), graph.num_nodes());
  Matrix z = ProjectFeatures(features, dim, seed);
  if (propagation_steps > 0) {
    const SparseMatrix propagation = RowNormalizedAdjacency(graph);
    for (int64_t step = 0; step < propagation_steps; ++step) {
      z = propagation.Multiply(z);
    }
  }
  return z;
}

GraphPartition PartitionByPropagatedFeatures(const Graph& graph,
                                             const SparseMatrix& features,
                                             const PartitionConfig& config) {
  const int64_t n = graph.num_nodes();
  const int64_t k = config.num_parts;
  RDD_CHECK_GT(k, 0);
  RDD_CHECK_GT(n, 0);
  RDD_CHECK_LE(k, n);
  RDD_CHECK_EQ(features.rows(), n);
  RDD_CHECK_GT(config.projection_dim, 0);
  RDD_CHECK_GE(config.balance_slack, 1.0);
  const int64_t dim = config.projection_dim;

  Matrix z = PropagatedProjectedFeatures(graph, features, dim,
                                         config.propagation_steps,
                                         config.seed);

  // Deterministic spread initialization: centers sit at evenly spaced
  // quantiles of the first projected coordinate (ties by node id).
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const float za = z.At(a, 0), zb = z.At(b, 0);
    if (za != zb) return za < zb;
    return a < b;
  });
  Matrix centers(k, dim);
  for (int64_t c = 0; c < k; ++c) {
    const int64_t pos = ((2 * c + 1) * n) / (2 * k);
    const float* src = z.RowData(order[static_cast<size_t>(pos)]);
    float* dst = centers.RowData(c);
    for (int64_t d = 0; d < dim; ++d) dst[d] = src[d];
  }

  // Lloyd iterations. The center update reduces over a FIXED block split of
  // the node range (shape-only, independent of thread count), with block
  // partials combined in block order — bit-identical at any parallelism.
  std::vector<int64_t> assign(static_cast<size_t>(n), 0);
  constexpr int64_t kReduceBlocks = 64;
  const int64_t block = (n + kReduceBlocks - 1) / kReduceBlocks;
  for (int64_t iter = 0; iter < config.kmeans_iters; ++iter) {
    parallel::ParallelFor(0, n, parallel::GrainForCost(k * dim),
                          [&](int64_t begin, int64_t end) {
                            for (int64_t i = begin; i < end; ++i) {
                              assign[static_cast<size_t>(i)] =
                                  NearestCenter(z.RowData(i), centers);
                            }
                          });
    std::vector<Matrix> partial_sum(static_cast<size_t>(kReduceBlocks));
    std::vector<std::vector<int64_t>> partial_count(
        static_cast<size_t>(kReduceBlocks));
    parallel::ParallelFor(
        0, kReduceBlocks, 1, [&](int64_t bbegin, int64_t bend) {
          for (int64_t b = bbegin; b < bend; ++b) {
            Matrix sum(k, dim);
            std::vector<int64_t> count(static_cast<size_t>(k), 0);
            const int64_t lo = b * block;
            const int64_t hi = std::min(n, lo + block);
            for (int64_t i = lo; i < hi; ++i) {
              const int64_t c = assign[static_cast<size_t>(i)];
              ++count[static_cast<size_t>(c)];
              const float* src = z.RowData(i);
              float* dst = sum.RowData(c);
              for (int64_t d = 0; d < dim; ++d) dst[d] += src[d];
            }
            partial_sum[static_cast<size_t>(b)] = std::move(sum);
            partial_count[static_cast<size_t>(b)] = std::move(count);
          }
        });
    Matrix total(k, dim);
    std::vector<int64_t> counts(static_cast<size_t>(k), 0);
    for (int64_t b = 0; b < kReduceBlocks; ++b) {
      total.Add(partial_sum[static_cast<size_t>(b)]);
      for (int64_t c = 0; c < k; ++c) {
        counts[static_cast<size_t>(c)] +=
            partial_count[static_cast<size_t>(b)][static_cast<size_t>(c)];
      }
    }
    for (int64_t c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;  // keep old center
      const float inv = 1.0f / static_cast<float>(counts[static_cast<size_t>(c)]);
      const float* src = total.RowData(c);
      float* dst = centers.RowData(c);
      for (int64_t d = 0; d < dim; ++d) dst[d] = src[d] * inv;
    }
  }

  // Capacity-balanced final assignment: nodes in id order go to the nearest
  // centroid with room. Total capacity >= n by construction, so every node
  // lands somewhere; slack trades cut quality against balance.
  const int64_t base_cap = (n + k - 1) / k;
  const int64_t cap = std::max<int64_t>(
      base_cap,
      static_cast<int64_t>(std::ceil(static_cast<double>(base_cap) *
                                     config.balance_slack)));
  GraphPartition partition;
  partition.part_of.assign(static_cast<size_t>(n), -1);
  partition.parts.assign(static_cast<size_t>(k), {});
  std::vector<int64_t> load(static_cast<size_t>(k), 0);
  std::vector<std::pair<float, int64_t>> ranked(static_cast<size_t>(k));
  for (int64_t i = 0; i < n; ++i) {
    const float* row = z.RowData(i);
    for (int64_t c = 0; c < k; ++c) {
      ranked[static_cast<size_t>(c)] = {
          SquaredDistance(row, centers.RowData(c), dim), c};
    }
    std::sort(ranked.begin(), ranked.end());
    for (const auto& [dist, c] : ranked) {
      (void)dist;
      if (load[static_cast<size_t>(c)] >= cap) continue;
      partition.part_of[static_cast<size_t>(i)] = c;
      partition.parts[static_cast<size_t>(c)].push_back(i);
      ++load[static_cast<size_t>(c)];
      break;
    }
    RDD_CHECK_GE(partition.part_of[static_cast<size_t>(i)], 0);
  }

  partition.total_edges = graph.num_edges();
  for (const Edge& e : graph.edges()) {
    if (partition.part_of[static_cast<size_t>(e.u)] !=
        partition.part_of[static_cast<size_t>(e.v)]) {
      ++partition.cut_edges;
    }
  }
  return partition;
}

std::vector<GraphView> MakeShardViews(const Graph& graph,
                                      const SparseMatrix& features,
                                      int64_t num_classes,
                                      const GraphPartition& partition) {
  std::vector<GraphView> views;
  views.reserve(partition.parts.size());
  for (const std::vector<int64_t>& part : partition.parts) {
    if (part.empty()) continue;
    views.push_back(MakeInducedView(graph, features, num_classes, part,
                                    static_cast<int64_t>(part.size())));
  }
  return views;
}

}  // namespace rdd
