#include "graph/normalize.h"

#include <cmath>
#include <vector>

namespace rdd {

namespace {

/// Emits COO entries for A + I.
std::vector<SparseEntry> SelfLoopedEntries(const Graph& graph) {
  std::vector<SparseEntry> entries;
  entries.reserve(static_cast<size_t>(graph.num_edges()) * 2 +
                  static_cast<size_t>(graph.num_nodes()));
  for (const Edge& e : graph.edges()) {
    entries.push_back({e.u, e.v, 1.0f});
    entries.push_back({e.v, e.u, 1.0f});
  }
  for (int64_t i = 0; i < graph.num_nodes(); ++i) {
    entries.push_back({i, i, 1.0f});
  }
  return entries;
}

}  // namespace

SparseMatrix GcnNormalizedAdjacency(const Graph& graph) {
  const int64_t n = graph.num_nodes();
  std::vector<double> inv_sqrt_deg(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    // Degree of A + I is deg(i) + 1, always positive.
    inv_sqrt_deg[static_cast<size_t>(i)] =
        1.0 / std::sqrt(static_cast<double>(graph.Degree(i)) + 1.0);
  }
  std::vector<SparseEntry> entries = SelfLoopedEntries(graph);
  for (SparseEntry& e : entries) {
    e.value = static_cast<float>(inv_sqrt_deg[static_cast<size_t>(e.row)] *
                                 inv_sqrt_deg[static_cast<size_t>(e.col)]);
  }
  return SparseMatrix::FromCoo(n, n, std::move(entries));
}

SparseMatrix RowNormalizedAdjacency(const Graph& graph) {
  const int64_t n = graph.num_nodes();
  std::vector<SparseEntry> entries = SelfLoopedEntries(graph);
  for (SparseEntry& e : entries) {
    e.value = static_cast<float>(
        1.0 / (static_cast<double>(graph.Degree(e.row)) + 1.0));
  }
  return SparseMatrix::FromCoo(n, n, std::move(entries));
}

SparseMatrix PlainAdjacency(const Graph& graph) {
  std::vector<SparseEntry> entries;
  entries.reserve(static_cast<size_t>(graph.num_edges()) * 2);
  for (const Edge& e : graph.edges()) {
    entries.push_back({e.u, e.v, 1.0f});
    entries.push_back({e.v, e.u, 1.0f});
  }
  return SparseMatrix::FromCoo(graph.num_nodes(), graph.num_nodes(),
                               std::move(entries));
}

}  // namespace rdd
