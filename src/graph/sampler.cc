#include "graph/sampler.h"

#include <algorithm>

#include "parallel/parallel_for.h"
#include "util/logging.h"

namespace rdd {

namespace {

// Tag offsets keep the epoch/hop/node levels of the split tree from
// colliding when their numeric values coincide.
constexpr uint64_t kEpochTag = 0x45504f43ULL;  // "EPOC"
constexpr uint64_t kHopTag = 0x484f5000ULL;    // "HOP"
constexpr uint64_t kPlanTag = 0x504c414eULL;   // "PLAN"

}  // namespace

NeighborSampler::NeighborSampler(const Graph* graph,
                                 const SparseMatrix* features,
                                 int64_t num_classes, SamplerConfig config)
    : graph_(graph),
      features_(features),
      num_classes_(num_classes),
      config_(std::move(config)),
      base_(config_.seed) {
  RDD_CHECK(graph != nullptr);
  RDD_CHECK(features != nullptr);
  RDD_CHECK_EQ(features->rows(), graph->num_nodes());
  RDD_CHECK_GT(num_classes, 0);
  RDD_CHECK(!config_.fanouts.empty());
}

std::vector<std::vector<int64_t>> NeighborSampler::PlanBatches(
    const std::vector<int64_t>& targets, int64_t batch_size,
    int64_t epoch) const {
  RDD_CHECK_GT(batch_size, 0);
  std::vector<int64_t> order = targets;
  Rng rng = base_.Split(kPlanTag).Split(static_cast<uint64_t>(epoch));
  rng.Shuffle(&order);
  std::vector<std::vector<int64_t>> batches;
  const int64_t n = static_cast<int64_t>(order.size());
  for (int64_t begin = 0; begin < n; begin += batch_size) {
    const int64_t end = std::min(n, begin + batch_size);
    batches.emplace_back(order.begin() + begin, order.begin() + end);
  }
  return batches;
}

std::vector<int64_t> NeighborSampler::ExpandHop(
    const std::vector<int64_t>& frontier, int64_t fanout, int64_t epoch,
    int64_t hop, std::vector<int64_t>* nodes,
    std::vector<uint8_t>* seen) const {
  const int64_t f = static_cast<int64_t>(frontier.size());
  // Per-node samples land in private slots; the merge below walks slots in
  // frontier order, so the discovered-node ordering is a pure function of
  // the frontier, never of the parallel schedule.
  std::vector<std::vector<int64_t>> sampled(static_cast<size_t>(f));
  const Rng hop_rng =
      base_.Split(kEpochTag).Split(static_cast<uint64_t>(epoch))
          .Split(kHopTag).Split(static_cast<uint64_t>(hop));
  const int64_t cost = fanout > 0 ? fanout : graph_->MaxDegree() + 1;
  parallel::ParallelFor(
      0, f, parallel::GrainForCost(cost * 8),
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          const int64_t node = frontier[static_cast<size_t>(i)];
          const std::vector<int64_t>& nbrs = graph_->Neighbors(node);
          const int64_t deg = static_cast<int64_t>(nbrs.size());
          std::vector<int64_t>& out = sampled[static_cast<size_t>(i)];
          if (fanout <= 0 || deg <= fanout) {
            out = nbrs;
            continue;
          }
          Rng rng = hop_rng.Split(static_cast<uint64_t>(node));
          const std::vector<int64_t> picks =
              rng.SampleWithoutReplacement(deg, fanout);
          out.reserve(static_cast<size_t>(fanout));
          for (int64_t p : picks) out.push_back(nbrs[static_cast<size_t>(p)]);
        }
      });

  std::vector<int64_t> discovered;
  for (const std::vector<int64_t>& out : sampled) {
    for (int64_t nbr : out) {
      uint8_t& flag = (*seen)[static_cast<size_t>(nbr)];
      if (flag) continue;
      flag = 1;
      nodes->push_back(nbr);
      discovered.push_back(nbr);
    }
  }
  return discovered;
}

GraphView NeighborSampler::SampleView(const std::vector<int64_t>& targets,
                                      int64_t epoch) const {
  RDD_CHECK(!targets.empty());
  std::vector<int64_t> nodes;
  nodes.reserve(targets.size() * 8);
  std::vector<uint8_t> seen(static_cast<size_t>(graph_->num_nodes()), 0);
  for (int64_t t : targets) {
    RDD_CHECK(!seen[static_cast<size_t>(t)]);  // duplicate target
    seen[static_cast<size_t>(t)] = 1;
    nodes.push_back(t);
  }
  std::vector<int64_t> frontier = targets;
  for (size_t hop = 0; hop < config_.fanouts.size(); ++hop) {
    frontier = ExpandHop(frontier, config_.fanouts[hop], epoch,
                         static_cast<int64_t>(hop), &nodes, &seen);
    if (frontier.empty()) break;
  }
  return MakeInducedView(*graph_, *features_, num_classes_, std::move(nodes),
                         static_cast<int64_t>(targets.size()));
}

GraphView NeighborSampler::InferenceView(const std::vector<int64_t>& targets,
                                         int64_t hops) const {
  RDD_CHECK(!targets.empty());
  RDD_CHECK_GE(hops, 0);
  std::vector<int64_t> nodes;
  std::vector<uint8_t> seen(static_cast<size_t>(graph_->num_nodes()), 0);
  for (int64_t t : targets) {
    RDD_CHECK(!seen[static_cast<size_t>(t)]);
    seen[static_cast<size_t>(t)] = 1;
    nodes.push_back(t);
  }
  std::vector<int64_t> frontier = targets;
  for (int64_t hop = 0; hop < hops; ++hop) {
    frontier = ExpandHop(frontier, /*fanout=*/0, /*epoch=*/0, hop, &nodes,
                         &seen);
    if (frontier.empty()) break;
  }
  return MakeInducedView(*graph_, *features_, num_classes_, std::move(nodes),
                         static_cast<int64_t>(targets.size()));
}

}  // namespace rdd
