#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace rdd {

Graph MakePathGraph(int64_t n) {
  std::vector<Edge> edges;
  for (int64_t i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  return Graph(n, edges);
}

Graph MakeCycleGraph(int64_t n) {
  RDD_CHECK_GE(n, 3);
  std::vector<Edge> edges;
  for (int64_t i = 0; i < n; ++i) edges.push_back({i, (i + 1) % n});
  return Graph(n, edges);
}

Graph MakeStarGraph(int64_t n) {
  RDD_CHECK_GE(n, 1);
  std::vector<Edge> edges;
  for (int64_t i = 1; i < n; ++i) edges.push_back({0, i});
  return Graph(n, edges);
}

Graph MakeCompleteGraph(int64_t n) {
  std::vector<Edge> edges;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) edges.push_back({i, j});
  }
  return Graph(n, edges);
}

Graph MakeGridGraph(int64_t rows, int64_t cols) {
  RDD_CHECK_GE(rows, 1);
  RDD_CHECK_GE(cols, 1);
  std::vector<Edge> edges;
  auto id = [cols](int64_t r, int64_t c) { return r * cols + c; };
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c)});
    }
  }
  return Graph(rows * cols, edges);
}

Graph MakeErdosRenyiGraph(int64_t n, double p, Rng* rng) {
  RDD_CHECK(rng != nullptr);
  RDD_CHECK_GE(p, 0.0);
  RDD_CHECK_LE(p, 1.0);
  std::vector<Edge> edges;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      if (rng->Bernoulli(p)) edges.push_back({i, j});
    }
  }
  return Graph(n, edges);
}

namespace {

/// Weighted sampler over node ids using a prefix-sum + binary search.
class PrefixSampler {
 public:
  PrefixSampler(std::vector<int64_t> ids, const std::vector<double>& weights)
      : ids_(std::move(ids)) {
    prefix_.reserve(ids_.size());
    double acc = 0.0;
    for (int64_t id : ids_) {
      acc += weights[static_cast<size_t>(id)];
      prefix_.push_back(acc);
    }
    RDD_CHECK_GT(acc, 0.0);
  }

  int64_t Sample(Rng* rng) const {
    const double target = rng->Uniform() * prefix_.back();
    const auto it = std::upper_bound(prefix_.begin(), prefix_.end(), target);
    size_t idx = static_cast<size_t>(it - prefix_.begin());
    if (idx >= ids_.size()) idx = ids_.size() - 1;
    return ids_[idx];
  }

  size_t size() const { return ids_.size(); }

 private:
  std::vector<int64_t> ids_;
  std::vector<double> prefix_;
};

}  // namespace

Graph MakeLabeledSbmGraph(const std::vector<int64_t>& labels,
                          const LabeledSbmParams& params, Rng* rng) {
  RDD_CHECK(rng != nullptr);
  RDD_CHECK_GE(params.homophily, 0.0);
  RDD_CHECK_LE(params.homophily, 1.0);
  RDD_CHECK_GE(params.degree_skew, 0.0);
  const int64_t n = static_cast<int64_t>(labels.size());
  RDD_CHECK_GE(n, 2);
  // edge_key below packs (u, v) into one uint64 as u << 32 | v.
  RDD_CHECK_LE(n, int64_t{1} << 32);

  int64_t num_classes = 0;
  for (int64_t y : labels) {
    RDD_CHECK_GE(y, 0);
    num_classes = std::max(num_classes, y + 1);
  }

  // Heavy-tailed attractiveness: shuffle nodes, weight by rank^-skew.
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  rng->Shuffle(&order);
  std::vector<double> weight(static_cast<size_t>(n));
  for (int64_t rank = 0; rank < n; ++rank) {
    weight[static_cast<size_t>(order[static_cast<size_t>(rank)])] =
        std::pow(static_cast<double>(rank + 1), -params.degree_skew);
  }

  std::vector<std::vector<int64_t>> class_members(
      static_cast<size_t>(num_classes));
  for (int64_t i = 0; i < n; ++i) {
    class_members[static_cast<size_t>(labels[static_cast<size_t>(i)])]
        .push_back(i);
  }

  std::vector<int64_t> all_ids(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) all_ids[static_cast<size_t>(i)] = i;
  PrefixSampler global_sampler(all_ids, weight);
  std::vector<PrefixSampler> class_samplers;
  class_samplers.reserve(static_cast<size_t>(num_classes));
  for (int64_t c = 0; c < num_classes; ++c) {
    RDD_CHECK(!class_members[static_cast<size_t>(c)].empty())
        << "class " << c << " has no members";
    class_samplers.emplace_back(class_members[static_cast<size_t>(c)], weight);
  }

  auto edge_key = [](int64_t u, int64_t v) {
    if (u > v) std::swap(u, v);
    return static_cast<uint64_t>(u) << 32 | static_cast<uint64_t>(v);
  };

  std::unordered_set<uint64_t> seen;
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(params.target_edges));
  // Collision-bounded rejection loop: abandon after generous retries so a
  // pathological configuration (e.g. target_edges near the complete graph)
  // terminates with fewer edges instead of spinning.
  const int64_t max_attempts = params.target_edges * 50 + 1000;
  int64_t attempts = 0;
  while (static_cast<int64_t>(edges.size()) < params.target_edges &&
         attempts < max_attempts) {
    ++attempts;
    const int64_t u = global_sampler.Sample(rng);
    const int64_t cu = labels[static_cast<size_t>(u)];
    int64_t v = -1;
    if (rng->Bernoulli(params.homophily)) {
      const PrefixSampler& sampler = class_samplers[static_cast<size_t>(cu)];
      if (sampler.size() < 2) continue;
      v = sampler.Sample(rng);
    } else if (num_classes > 1) {
      // Resample v until its class differs, WITHOUT redrawing the
      // homophily coin — restarting the attempt would bias the realized
      // homophily above the requested value.
      for (int retry = 0; retry < 32; ++retry) {
        const int64_t candidate = global_sampler.Sample(rng);
        if (labels[static_cast<size_t>(candidate)] != cu) {
          v = candidate;
          break;
        }
      }
      if (v < 0) continue;
    } else {
      continue;  // Single class: no inter-class edge is possible.
    }
    if (u == v) continue;
    if (!seen.insert(edge_key(u, v)).second) continue;
    edges.push_back({u, v});
  }
  return Graph(n, edges);
}

}  // namespace rdd
