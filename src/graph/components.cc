#include "graph/components.h"

#include <cstddef>
#include <queue>

namespace rdd {

ComponentsResult ConnectedComponents(const Graph& graph) {
  const int64_t n = graph.num_nodes();
  ComponentsResult result;
  result.component_of.assign(static_cast<size_t>(n), -1);

  for (int64_t start = 0; start < n; ++start) {
    if (result.component_of[static_cast<size_t>(start)] != -1) continue;
    const int64_t cid = result.num_components++;
    int64_t size = 0;
    std::queue<int64_t> frontier;
    frontier.push(start);
    result.component_of[static_cast<size_t>(start)] = cid;
    while (!frontier.empty()) {
      const int64_t node = frontier.front();
      frontier.pop();
      ++size;
      for (int64_t nbr : graph.Neighbors(node)) {
        if (result.component_of[static_cast<size_t>(nbr)] == -1) {
          result.component_of[static_cast<size_t>(nbr)] = cid;
          frontier.push(nbr);
        }
      }
    }
    result.component_sizes.push_back(size);
  }
  return result;
}

}  // namespace rdd
