#ifndef RDD_GRAPH_NORMALIZE_H_
#define RDD_GRAPH_NORMALIZE_H_

#include "graph/graph.h"
#include "tensor/sparse.h"

namespace rdd {

/// Builds the symmetric GCN propagation matrix of Kipf & Welling (Eq. 1 of
/// the paper): Ahat = D^-1/2 (A + I) D^-1/2, where D is the degree matrix of
/// A + I. The result is what every graph-convolution layer multiplies by.
SparseMatrix GcnNormalizedAdjacency(const Graph& graph);

/// Builds the row-stochastic random-walk matrix D^-1 (A + I). Used by label
/// propagation and the APPNP power iteration.
SparseMatrix RowNormalizedAdjacency(const Graph& graph);

/// Builds the plain (unnormalized) adjacency matrix with no self-loops.
SparseMatrix PlainAdjacency(const Graph& graph);

}  // namespace rdd

#endif  // RDD_GRAPH_NORMALIZE_H_
