#ifndef RDD_GRAPH_CONDENSE_CONDENSE_H_
#define RDD_GRAPH_CONDENSE_CONDENSE_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "tensor/matrix.h"

namespace rdd::condense {

/// Which condensation recipe builds the small training graph.
enum class Method {
  kOff = 0,      ///< No condensation: train on the full graph.
  kCluster = 1,  ///< k-means over propagated features, one node per cluster.
  kEigen = 2,    ///< Eigenbasis matching of the normalized adjacency.
};

/// Human-readable method name ("off", "cluster", "eigen").
const char* MethodName(Method method);

/// Configuration of the graph condensers. Defaults give a ~5% Cora-like
/// condensation that keeps RDD's full-graph accuracy within the paper's
/// trial-to-trial noise (see bench/condense_train).
struct CondenseConfig {
  Method method = Method::kCluster;

  /// Target synthetic-node count as a fraction of the full graph's nodes.
  /// The actual count is clamped to [num_classes, num_nodes].
  double ratio = 0.05;

  /// Cluster method: width of the hashed feature projection (<= 64) and
  /// rounds of D^-1 (A+I) smoothing applied before clustering — the same
  /// front end the propagated-feature partitioner uses.
  int64_t projection_dim = 32;
  int64_t propagation_steps = 2;
  int64_t kmeans_iters = 15;

  /// Cluster method: keep only the `feature_topk` largest entries of each
  /// synthetic feature row (mean of ~1/ratio member rows, so otherwise far
  /// denser than any real row), rescaled to preserve the row's mass. Caps
  /// the condensed SpMM cost — the dominant per-epoch term — and denoises
  /// the means. 0 keeps every entry.
  int64_t feature_topk = 64;

  /// Eigen method: number of leading eigenpairs matched (clamped to the
  /// synthetic node count) and power-iteration steps per eigenpair. The
  /// iteration count is FIXED (no tolerance early-exit) so the factorization
  /// is a pure function of the input at any thread count and backend.
  int64_t eigen_k = 32;
  int64_t power_iters = 40;

  /// Condensed RDD training validates on the FULL graph every `eval_every`
  /// epochs (full-graph forwards dominate condensed-epoch cost; this
  /// amortizes them). 1 = validate every epoch, matching TrainWithLoss.
  int eval_every = 10;

  /// Epochs of the full-graph warm-up GCN whose (train-clamped) predictions
  /// pseudo-label every node before condensation. The warm-up is the only
  /// full-graph training the condensed pipeline pays for — a brief fraction
  /// of one student's budget — and lifts pseudo-label quality far above
  /// plain label propagation on feature-heavy graphs. 0 disables the
  /// warm-up and falls back to LP pseudo-labels.
  int warmup_epochs = 20;

  uint64_t seed = 0xc0deULL;

  /// Reads the RDD_CONDENSE_* environment knobs (README "Environment
  /// variables"): RDD_CONDENSE (off|cluster|eigen, plus the boolean
  /// spellings where 1/true/on/yes mean cluster), RDD_CONDENSE_RATIO,
  /// RDD_CONDENSE_PROP_STEPS, RDD_CONDENSE_EIGEN_K,
  /// RDD_CONDENSE_EVAL_EVERY, and RDD_CONDENSE_WARMUP. Unset variables keep
  /// the defaults above, except `method`, which defaults to kOff so
  /// condensation is strictly opt-in.
  static CondenseConfig FromEnv();
};

/// A condensed stand-in for a full dataset: a synthetic graph of
/// ~ratio * num_nodes nodes whose features, labels, and train split are
/// derived ONLY from the full graph's topology, features, and train-split
/// labels (never val/test labels — no leakage). The dataset carries empty
/// val/test splits: condensed training validates against the FULL graph.
struct CondensedGraph {
  Dataset dataset;

  /// Cluster method: synthetic node -> the full-graph node ids it merged
  /// (ascending). Empty for the eigen method, whose synthetic nodes are not
  /// node subsets.
  std::vector<std::vector<int64_t>> members;

  int64_t original_nodes = 0;
  /// Synthetic over original node count.
  double achieved_ratio = 0.0;
};

/// Synthetic node count for a (num_nodes, num_classes, ratio) triple:
/// round(ratio * num_nodes) clamped to [num_classes, num_nodes].
int64_t CondensedNodeCount(int64_t num_nodes, int64_t num_classes,
                           double ratio);

/// Dispatches to the configured condenser. config.method must not be kOff.
///
/// Contract (both methods): the result is a pure function of (full, config)
/// — bit-identical at any RDD_NUM_THREADS and RDD_SIMD backend. Hot loops
/// (k-means assignment and center updates, power iteration) go through the
/// dispatched simd kernels and fixed-shape block reductions. Observability:
/// emits "condense/project", "condense/kmeans", "condense/coarsen" (cluster)
/// and "condense/power_iteration", "condense/coarsen" (eigen) spans, and
/// bumps the "condense.runs" / "condense.synthetic_nodes" counters.
CondensedGraph CondenseGraph(const Dataset& full, const CondenseConfig& config);

/// Clustering condenser: pseudo-label-guided k-means++ (deterministically
/// seeded) over propagated projected features. Nodes are pseudo-labeled by
/// the warm-up model (train rows clamped to their true labels), the
/// synthetic-node budget is split across pseudo-classes by largest-remainder
/// apportionment, and k-means runs within each pseudo-class — every cluster
/// is class-pure by construction. Each cluster becomes one synthetic node
/// whose feature row is the mean of its members' raw feature rows, edges
/// connect clusters joined by at least one full-graph edge, labels are the
/// cluster's pseudo-class, and every non-empty cluster enters the condensed
/// train split.
CondensedGraph ClusterCondense(const Dataset& full,
                               const CondenseConfig& config);

/// Spectral condenser: top-k eigenpairs of D^-1/2 (A+I) D^-1/2 by power
/// iteration with deflation; the synthetic graph's adjacency is W diag(λ) Wᵀ
/// thresholded to the full graph's edge density, where W is a fixed
/// orthonormal (DCT-II) basis over the synthetic nodes, and features/labels
/// are the eigenbasis projections W (Uᵀ X) / argmax of W (Uᵀ Y_train).
CondensedGraph EigenCondense(const Dataset& full, const CondenseConfig& config);

namespace internal {

/// Per-node class scores both condensers pseudo-label from: row-stochastic
/// n x num_classes, train rows clamped to their one-hot true labels. With
/// config.warmup_epochs > 0, the scores are the softmax predictions of a
/// GCN trained on the train split for that many epochs ("condense/warmup"
/// span); with 0, harmonic label propagation (alpha = 0.3). Only train
/// labels are ever read — no val/test leakage.
Matrix PseudoLabelScores(const Dataset& full, const CondenseConfig& config);

/// Fills every label slot flagged in `needs_label` with the class that
/// currently has the fewest assigned labels (ties toward the smaller class
/// id), processing slots in ascending index order. `labels` must already
/// hold the anchored assignments; used by both condensers to keep filler
/// labels class-balanced. Exposed for tests.
void ClassBalancedFill(const std::vector<bool>& needs_label,
                       int64_t num_classes, std::vector<int64_t>* labels);

}  // namespace internal

}  // namespace rdd::condense

#endif  // RDD_GRAPH_CONDENSE_CONDENSE_H_
