// Spectral condenser: matches the leading eigenbasis of the full graph's
// normalized adjacency (the GDEM recipe restated for a from-scratch runtime).
// Power iteration with deflation extracts the top-k eigenpairs of
// D^-1/2 (A+I) D^-1/2; the synthetic graph re-expresses them in a fixed
// orthonormal basis W (DCT-II over the synthetic nodes): its adjacency is
// the top edges of W diag(λ) Wᵀ, its features the projection W (Uᵀ X), so a
// GCN layer on the synthetic graph sees the same spectral response the full
// graph produces on the span of U.
//
// Determinism: eigenvector initialization is hashed (no RNG state), the
// iteration count is fixed (no tolerance early-exit), every SpMV runs
// through SparseMatrix::Multiply (deterministic at any thread count), and
// every reduction (dot, norm) uses the dispatched rule-2 kernels — the
// factorization is bit-identical across RDD_NUM_THREADS and RDD_SIMD.

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "graph/condense/condense.h"
#include "graph/normalize.h"
#include "observe/trace.h"
#include "simd/simd.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace rdd::condense {

namespace {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Hash-based initial vector for eigenpair `j`: entries in [-0.5, 0.5),
/// a pure function of (seed, j, i).
Matrix InitVector(int64_t n, int64_t j, uint64_t seed) {
  Matrix v(n, 1);
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t h =
        Mix64(seed ^ Mix64(static_cast<uint64_t>(j) * 0x9e3779b97f4a7c15ULL +
                           static_cast<uint64_t>(i)));
    v.At(i, 0) = static_cast<float>(
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0) - 0.5);
  }
  return v;
}

/// Scales `v` to unit norm (norm through the dispatched sumsq_f64 and scale
/// kernels). Returns the pre-scaling norm.
double Normalize(Matrix* v) {
  const double norm =
      std::sqrt(simd::K().sumsq_f64(v->Data(), v->size()));
  if (norm > 0.0) {
    simd::K().scale(static_cast<float>(1.0 / norm), v->Data(), v->size());
  }
  return norm;
}

/// Fixes the eigenvector sign convention: the entry of largest magnitude
/// (ties toward the smallest index) is non-negative.
void FixSign(Matrix* v) {
  int64_t arg = 0;
  float best = 0.0f;
  for (int64_t i = 0; i < v->rows(); ++i) {
    const float a = std::fabs(v->At(i, 0));
    if (a > best) {
      best = a;
      arg = i;
    }
  }
  if (v->At(arg, 0) < 0.0f) {
    simd::K().scale(-1.0f, v->Data(), v->size());
  }
}

/// Orthonormal DCT-II basis over m synthetic nodes: column j of the result
/// is the j-th cosine mode. Any fixed orthonormal basis works; cosines give
/// smooth synthetic eigenvectors, so thresholding W diag(λ) Wᵀ keeps a
/// banded, locality-like topology.
Matrix DctBasis(int64_t m, int64_t k) {
  constexpr double kPi = 3.14159265358979323846;
  Matrix w(m, k);
  const double c0 = std::sqrt(1.0 / static_cast<double>(m));
  const double cj = std::sqrt(2.0 / static_cast<double>(m));
  for (int64_t i = 0; i < m; ++i) {
    float* row = w.RowData(i);
    for (int64_t j = 0; j < k; ++j) {
      const double angle = kPi * (static_cast<double>(i) + 0.5) *
                           static_cast<double>(j) / static_cast<double>(m);
      row[j] = static_cast<float>((j == 0 ? c0 : cj) * std::cos(angle));
    }
  }
  return w;
}

struct CoarseEdge {
  float weight = 0.0f;
  int64_t u = 0;
  int64_t v = 0;
};

}  // namespace

CondensedGraph EigenCondense(const Dataset& full,
                             const CondenseConfig& config) {
  const int64_t n = full.NumNodes();
  const int64_t num_classes = full.num_classes;
  RDD_CHECK_GT(n, 0);
  RDD_CHECK_GT(num_classes, 0);
  const int64_t m = CondensedNodeCount(n, num_classes, config.ratio);
  const int64_t k = std::min<int64_t>(config.eigen_k, std::min(m, n));
  RDD_CHECK_GT(k, 0);

  const SparseMatrix adj = GcnNormalizedAdjacency(full.graph);

  // Top-k eigenpairs by power iteration with Gram-Schmidt deflation.
  Matrix u(n, k);  // column j = eigenvector u_j
  std::vector<float> lambda(static_cast<size_t>(k), 0.0f);
  {
    observe::TraceSpan span("condense/power_iteration");
    std::vector<Matrix> basis;
    basis.reserve(static_cast<size_t>(k));
    for (int64_t j = 0; j < k; ++j) {
      Matrix v = InitVector(n, j, config.seed);
      Normalize(&v);
      for (int64_t iter = 0; iter < config.power_iters; ++iter) {
        Matrix w = adj.Multiply(v);
        for (const Matrix& prev : basis) {
          const float c = simd::K().dot(prev.Data(), w.Data(), n);
          simd::K().axpy(-c, prev.Data(), w.Data(), n);
        }
        if (Normalize(&w) < 1e-30) break;  // deflated subspace exhausted
        v = std::move(w);
      }
      FixSign(&v);
      const Matrix av = adj.Multiply(v);
      lambda[static_cast<size_t>(j)] = simd::K().dot(v.Data(), av.Data(), n);
      for (int64_t i = 0; i < n; ++i) u.At(i, j) = v.At(i, 0);
      basis.push_back(std::move(v));
    }
  }

  observe::TraceSpan span("condense/coarsen");
  const Matrix w = DctBasis(m, k);

  // Coarse adjacency A_s = W diag(λ) Wᵀ, thresholded to the full graph's
  // edge density: keep the E_s strongest off-diagonal entries, where E_s
  // matches avg_degree * m / 2.
  Matrix wl = w;  // column j scaled by λ_j
  for (int64_t i = 0; i < m; ++i) {
    float* row = wl.RowData(i);
    for (int64_t j = 0; j < k; ++j) row[j] *= lambda[static_cast<size_t>(j)];
  }
  const Matrix coarse = MatmulTransposeB(wl, w);  // m x m
  std::vector<CoarseEdge> candidates;
  candidates.reserve(static_cast<size_t>(m * (m - 1) / 2));
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = i + 1; j < m; ++j) {
      candidates.push_back({std::fabs(coarse.At(i, j)), i, j});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const CoarseEdge& a, const CoarseEdge& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });
  const int64_t target_edges = std::min<int64_t>(
      static_cast<int64_t>(candidates.size()),
      std::max<int64_t>(
          m - 1, static_cast<int64_t>(std::llround(
                     full.graph.AverageDegree() * static_cast<double>(m) /
                     2.0))));
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(target_edges));
  for (int64_t e = 0; e < target_edges; ++e) {
    edges.push_back({candidates[static_cast<size_t>(e)].u,
                     candidates[static_cast<size_t>(e)].v});
  }

  // Synthetic features X_s = W (Uᵀ X): the coarse nodes carry the same
  // feature-space spectral content the eigenbasis sees on the full graph.
  // Rows are rescaled so the mean synthetic row norm matches the mean full
  // row norm — the condensed model's first-layer activations then live in
  // the same range they will see when it forwards over the full graph.
  const Matrix ut_x = Transpose(full.features.TransposeMultiply(u));  // k x F
  Matrix xs = Matmul(w, ut_x);                                        // m x F
  {
    const std::vector<int64_t>& row_ptr = full.features.row_ptr();
    const std::vector<float>& values = full.features.values();
    double full_norms = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const int64_t lo = row_ptr[static_cast<size_t>(i)];
      const int64_t hi = row_ptr[static_cast<size_t>(i) + 1];
      full_norms += std::sqrt(simd::K().sumsq_f64(values.data() + lo,
                                                  hi - lo));
    }
    double coarse_norms = 0.0;
    for (int64_t i = 0; i < m; ++i) {
      coarse_norms += std::sqrt(simd::K().sumsq_f64(xs.RowData(i),
                                                    xs.cols()));
    }
    if (coarse_norms > 0.0) {
      const double scale = (full_norms / static_cast<double>(n)) /
                           (coarse_norms / static_cast<double>(m));
      simd::K().scale(static_cast<float>(scale), xs.Data(), xs.size());
    }
  }

  // Labels from the projected pseudo-label scores (warm-up predictions
  // clamped to the TRAIN split — no val/test leakage): S = W (Uᵀ P);
  // synthetic node i scores class c by S[i][c]. The most confident half
  // anchors the condensed train split, under a per-class quota that keeps
  // the split class-balanced.
  const Matrix pseudo = internal::PseudoLabelScores(full, config);
  const Matrix scores = Matmul(w, MatmulTransposeA(u, pseudo));  // m x K

  std::vector<int64_t> order(static_cast<size_t>(m));
  std::vector<float> confidence(static_cast<size_t>(m), 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    order[static_cast<size_t>(i)] = i;
    const float* row = scores.RowData(i);
    float best = row[0];
    for (int64_t c = 1; c < num_classes; ++c) best = std::max(best, row[c]);
    confidence[static_cast<size_t>(i)] = best;
  }
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const float ca = confidence[static_cast<size_t>(a)];
    const float cb = confidence[static_cast<size_t>(b)];
    if (ca != cb) return ca > cb;
    return a < b;
  });
  const int64_t quota = (m + num_classes - 1) / num_classes;
  std::vector<int64_t> class_count(static_cast<size_t>(num_classes), 0);
  std::vector<int64_t> labels(static_cast<size_t>(m), 0);
  for (int64_t i : order) {
    const float* row = scores.RowData(i);
    int64_t best = -1;
    for (int64_t c = 0; c < num_classes; ++c) {
      if (class_count[static_cast<size_t>(c)] >= quota) continue;
      if (best < 0 || row[c] > row[best]) best = c;
    }
    if (best < 0) best = 0;  // all quotas full (cannot happen: quota*K >= m)
    labels[static_cast<size_t>(i)] = best;
    ++class_count[static_cast<size_t>(best)];
  }
  std::vector<int64_t> train(order.begin(),
                             order.begin() + (m + 1) / 2);
  std::sort(train.begin(), train.end());

  CondensedGraph out;
  out.original_nodes = n;
  out.dataset.name = full.name + "-condensed-eigen";
  out.dataset.graph = Graph(m, edges);
  out.dataset.features = SparseMatrix::FromDense(xs);
  out.dataset.labels = std::move(labels);
  out.dataset.num_classes = num_classes;
  out.dataset.split.train = std::move(train);
  out.achieved_ratio = static_cast<double>(m) / static_cast<double>(n);
  return out;
}

}  // namespace rdd::condense
