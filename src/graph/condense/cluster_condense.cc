// Clustering condenser: pseudo-label-guided k-means++ over propagated
// projected features, one synthetic node per cluster. Pseudo-labels come
// from the warm-up model seeded by the TRAIN split only (val/test labels
// are never read), the synthetic-node budget is apportioned across
// pseudo-classes by largest remainder, and k-means runs WITHIN each
// pseudo-class — so every cluster is class-pure by construction and the
// condensed train split carries one clean label per synthetic node. The
// propagated projection is the partitioner's front end (graph/partition.h),
// so cluster geometry respects both feature similarity and graph locality;
// the coarse graph keeps an edge wherever any full-graph edge crosses two
// clusters.
//
// Determinism: the warm-up is an ordinary deterministic training run;
// per-class seeds come from one seeded Rng stream; seeding and D² sampling
// run on the seeded Rng
// (sequential by construction); the nearest-center assignment is
// elementwise-parallel (one independent output per node, distances through
// the dispatched sqdist_f64 kernel, which is bit-identical across
// backends); center updates and member feature means reduce over FIXED
// 64-block shape-only splits combined in block order — bit-identical at any
// thread count.

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "graph/condense/condense.h"
#include "graph/partition.h"
#include "observe/trace.h"
#include "parallel/parallel_for.h"
#include "simd/simd.h"
#include "tensor/matrix.h"
#include "util/logging.h"
#include "util/random.h"

namespace rdd::condense {

namespace {

constexpr int64_t kReduceBlocks = 64;

/// Nearest center by the dispatched squared-distance kernel; ties break
/// toward the lowest center id (double compare, deterministic).
int64_t NearestCenter(const float* row, const Matrix& centers) {
  int64_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (int64_t c = 0; c < centers.rows(); ++c) {
    const double dist =
        simd::K().sqdist_f64(row, centers.RowData(c), centers.cols());
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

/// k-means++ seeding over the rows of `z`: the first center is a uniform
/// draw, each next center a D²-weighted draw. The per-node distance refresh
/// is elementwise-parallel; the cumulative D² walk is sequential in node id
/// order, so the chosen centers are a pure function of (z, seed).
Matrix SeedCenters(const Matrix& z, int64_t m, uint64_t seed) {
  const int64_t n = z.rows();
  const int64_t dim = z.cols();
  Rng rng(seed);
  Matrix centers(m, dim);
  std::vector<double> dist(static_cast<size_t>(n),
                           std::numeric_limits<double>::infinity());
  int64_t chosen = rng.UniformInt(n);
  for (int64_t c = 0; c < m; ++c) {
    const float* src = z.RowData(chosen);
    float* dst = centers.RowData(c);
    for (int64_t d = 0; d < dim; ++d) dst[d] = src[d];
    if (c + 1 == m) break;
    parallel::ParallelFor(0, n, parallel::GrainForCost(dim),
                          [&](int64_t begin, int64_t end) {
                            for (int64_t i = begin; i < end; ++i) {
                              const double d = simd::K().sqdist_f64(
                                  z.RowData(i), dst, dim);
                              double& slot = dist[static_cast<size_t>(i)];
                              if (d < slot) slot = d;
                            }
                          });
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) total += dist[static_cast<size_t>(i)];
    if (total <= 0.0) {
      // All remaining nodes coincide with a chosen center; any of them is as
      // good as any other.
      chosen = rng.UniformInt(n);
      continue;
    }
    const double u = rng.Uniform() * total;
    double cumulative = 0.0;
    chosen = n - 1;
    for (int64_t i = 0; i < n; ++i) {
      cumulative += dist[static_cast<size_t>(i)];
      if (cumulative > u) {
        chosen = i;
        break;
      }
    }
  }
  return centers;
}

/// Lloyd's k-means over the rows of `z`: returns the per-row cluster
/// assignment in [0, k). Center updates reduce over fixed 64-block
/// shape-only splits combined in block order.
std::vector<int64_t> Kmeans(const Matrix& z, int64_t k, int64_t iters,
                            uint64_t seed) {
  const int64_t n = z.rows();
  const int64_t dim = z.cols();
  std::vector<int64_t> assign(static_cast<size_t>(n), 0);
  if (k <= 1 || n == 0) return assign;
  Matrix centers = SeedCenters(z, k, seed);
  const int64_t block = (n + kReduceBlocks - 1) / kReduceBlocks;
  for (int64_t iter = 0; iter < iters; ++iter) {
    parallel::ParallelFor(0, n, parallel::GrainForCost(k * dim),
                          [&](int64_t begin, int64_t end) {
                            for (int64_t i = begin; i < end; ++i) {
                              assign[static_cast<size_t>(i)] =
                                  NearestCenter(z.RowData(i), centers);
                            }
                          });
    // Center update: per-block double sums combined in block order — a
    // fixed reduction shape independent of the thread count.
    std::vector<std::vector<double>> partial_sum(
        static_cast<size_t>(kReduceBlocks));
    std::vector<std::vector<int64_t>> partial_count(
        static_cast<size_t>(kReduceBlocks));
    parallel::ParallelFor(
        0, kReduceBlocks, 1, [&](int64_t bbegin, int64_t bend) {
          for (int64_t b = bbegin; b < bend; ++b) {
            std::vector<double> sum(static_cast<size_t>(k * dim), 0.0);
            std::vector<int64_t> count(static_cast<size_t>(k), 0);
            const int64_t lo = b * block;
            const int64_t hi = std::min(n, lo + block);
            for (int64_t i = lo; i < hi; ++i) {
              const int64_t c = assign[static_cast<size_t>(i)];
              ++count[static_cast<size_t>(c)];
              const float* src = z.RowData(i);
              double* dst = sum.data() + c * dim;
              for (int64_t d = 0; d < dim; ++d) {
                dst[d] += static_cast<double>(src[d]);
              }
            }
            partial_sum[static_cast<size_t>(b)] = std::move(sum);
            partial_count[static_cast<size_t>(b)] = std::move(count);
          }
        });
    std::vector<double> total(static_cast<size_t>(k * dim), 0.0);
    std::vector<int64_t> counts(static_cast<size_t>(k), 0);
    for (int64_t b = 0; b < kReduceBlocks; ++b) {
      const std::vector<double>& sum = partial_sum[static_cast<size_t>(b)];
      for (int64_t e = 0; e < k * dim; ++e) {
        total[static_cast<size_t>(e)] += sum[static_cast<size_t>(e)];
      }
      for (int64_t c = 0; c < k; ++c) {
        counts[static_cast<size_t>(c)] +=
            partial_count[static_cast<size_t>(b)][static_cast<size_t>(c)];
      }
    }
    for (int64_t c = 0; c < k; ++c) {
      const int64_t count = counts[static_cast<size_t>(c)];
      if (count == 0) continue;  // keep old center
      const double inv = 1.0 / static_cast<double>(count);
      float* dst = centers.RowData(c);
      const double* src = total.data() + c * dim;
      for (int64_t d = 0; d < dim; ++d) {
        dst[d] = static_cast<float>(src[d] * inv);
      }
    }
  }
  return assign;
}

/// Argmax pseudo-label per LP row; ties break toward the smaller class id.
std::vector<int64_t> PseudoLabels(const Matrix& lp) {
  std::vector<int64_t> labels(static_cast<size_t>(lp.rows()), 0);
  for (int64_t i = 0; i < lp.rows(); ++i) {
    const float* row = lp.RowData(i);
    int64_t best = 0;
    for (int64_t c = 1; c < lp.cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    labels[static_cast<size_t>(i)] = best;
  }
  return labels;
}

/// Largest-remainder apportionment of `m` cluster slots across the
/// pseudo-classes: every non-empty class gets at least one slot, no class
/// gets more slots than members, remaining slots go to the class whose
/// proportional quota m * |class| / n is furthest ahead of its current
/// allocation (ties toward the smaller class id).
std::vector<int64_t> ApportionClusters(const std::vector<int64_t>& class_size,
                                       int64_t m, int64_t n) {
  const int64_t num_classes = static_cast<int64_t>(class_size.size());
  std::vector<int64_t> slots(static_cast<size_t>(num_classes), 0);
  int64_t assigned = 0;
  for (int64_t c = 0; c < num_classes; ++c) {
    if (class_size[static_cast<size_t>(c)] > 0) {
      slots[static_cast<size_t>(c)] = 1;
      ++assigned;
    }
  }
  while (assigned < m) {
    int64_t best = -1;
    double best_gap = -std::numeric_limits<double>::infinity();
    for (int64_t c = 0; c < num_classes; ++c) {
      if (slots[static_cast<size_t>(c)] >=
          class_size[static_cast<size_t>(c)]) {
        continue;
      }
      const double quota = static_cast<double>(m) *
                           static_cast<double>(
                               class_size[static_cast<size_t>(c)]) /
                           static_cast<double>(n);
      const double gap =
          quota - static_cast<double>(slots[static_cast<size_t>(c)]);
      if (gap > best_gap) {
        best_gap = gap;
        best = c;
      }
    }
    if (best < 0) break;  // every class is saturated: m > n cannot happen.
    ++slots[static_cast<size_t>(best)];
    ++assigned;
  }
  return slots;
}

}  // namespace

CondensedGraph ClusterCondense(const Dataset& full,
                               const CondenseConfig& config) {
  const int64_t n = full.NumNodes();
  const int64_t num_classes = full.num_classes;
  RDD_CHECK_GT(n, 0);
  RDD_CHECK_GT(num_classes, 0);
  const int64_t m = CondensedNodeCount(n, num_classes, config.ratio);
  const int64_t dim = config.projection_dim;

  Matrix z;
  std::vector<int64_t> pseudo;
  {
    observe::TraceSpan span("condense/project");
    z = PropagatedProjectedFeatures(full.graph, full.features, dim,
                                    config.propagation_steps, config.seed);
    // Pseudo-labels: warm-up model predictions clamped to the train split
    // (see internal::PseudoLabelScores). Train rows keep their true labels;
    // everything else gets the score argmax.
    pseudo = PseudoLabels(internal::PseudoLabelScores(full, config));
  }

  std::vector<int64_t> assign(static_cast<size_t>(n), 0);
  {
    observe::TraceSpan span("condense/kmeans");
    std::vector<std::vector<int64_t>> class_nodes(
        static_cast<size_t>(num_classes));
    for (int64_t i = 0; i < n; ++i) {
      class_nodes[static_cast<size_t>(pseudo[static_cast<size_t>(i)])]
          .push_back(i);
    }
    std::vector<int64_t> class_size(static_cast<size_t>(num_classes), 0);
    for (int64_t c = 0; c < num_classes; ++c) {
      class_size[static_cast<size_t>(c)] =
          static_cast<int64_t>(class_nodes[static_cast<size_t>(c)].size());
    }
    const std::vector<int64_t> slots = ApportionClusters(class_size, m, n);

    // One k-means per pseudo-class, each on its own seed drawn from one
    // sequential stream; cluster ids are laid out class-contiguously.
    Rng seeder(config.seed);
    std::vector<uint64_t> class_seeds(static_cast<size_t>(num_classes));
    for (uint64_t& s : class_seeds) s = seeder.NextU64();
    int64_t offset = 0;
    for (int64_t c = 0; c < num_classes; ++c) {
      const std::vector<int64_t>& nodes = class_nodes[static_cast<size_t>(c)];
      const int64_t k = slots[static_cast<size_t>(c)];
      if (k == 0) continue;
      Matrix zc(static_cast<int64_t>(nodes.size()), dim);
      for (size_t j = 0; j < nodes.size(); ++j) {
        const float* src = z.RowData(nodes[j]);
        float* dst = zc.RowData(static_cast<int64_t>(j));
        for (int64_t d = 0; d < dim; ++d) dst[d] = src[d];
      }
      const std::vector<int64_t> local =
          Kmeans(zc, k, config.kmeans_iters,
                 class_seeds[static_cast<size_t>(c)]);
      for (size_t j = 0; j < nodes.size(); ++j) {
        assign[static_cast<size_t>(nodes[j])] = offset + local[j];
      }
      offset += k;
    }
    RDD_CHECK_EQ(offset, m);
  }

  CondensedGraph out;
  out.original_nodes = n;
  out.members.assign(static_cast<size_t>(m), {});
  for (int64_t i = 0; i < n; ++i) {
    out.members[static_cast<size_t>(assign[static_cast<size_t>(i)])].push_back(
        i);
  }

  observe::TraceSpan span("condense/coarsen");
  // Synthetic features: the mean of each cluster's RAW sparse feature rows
  // (original feature space, so condensed models share the full graph's
  // input dimension). Clusters are independent — elementwise-parallel —
  // and each cluster accumulates its members in ascending node order.
  const int64_t feature_dim = full.FeatureDim();
  const std::vector<int64_t>& row_ptr = full.features.row_ptr();
  const std::vector<int64_t>& col_idx = full.features.col_idx();
  const std::vector<float>& values = full.features.values();
  std::vector<std::vector<SparseEntry>> cluster_entries(
      static_cast<size_t>(m));
  parallel::ParallelFor(
      0, m, 1, [&](int64_t begin, int64_t end) {
        std::vector<double> accum(static_cast<size_t>(feature_dim), 0.0);
        for (int64_t c = begin; c < end; ++c) {
          const std::vector<int64_t>& members =
              out.members[static_cast<size_t>(c)];
          if (members.empty()) continue;
          std::fill(accum.begin(), accum.end(), 0.0);
          for (int64_t i : members) {
            for (int64_t p = row_ptr[static_cast<size_t>(i)];
                 p < row_ptr[static_cast<size_t>(i) + 1]; ++p) {
              accum[static_cast<size_t>(col_idx[static_cast<size_t>(p)])] +=
                  static_cast<double>(values[static_cast<size_t>(p)]);
            }
          }
          const double inv = 1.0 / static_cast<double>(members.size());
          std::vector<SparseEntry>& entries =
              cluster_entries[static_cast<size_t>(c)];
          for (int64_t f = 0; f < feature_dim; ++f) {
            const double v = accum[static_cast<size_t>(f)];
            if (v != 0.0) {
              entries.push_back({c, f, static_cast<float>(v * inv)});
            }
          }
          // Mean rows are ~1/ratio times denser than any real feature row
          // and their nnz is what every condensed SpMM pays for. Keep only
          // the top entries (ties toward the smaller column id), rescaled
          // so the row keeps its mass.
          const int64_t topk = config.feature_topk;
          if (topk > 0 && static_cast<int64_t>(entries.size()) > topk) {
            double total_mass = 0.0;
            for (const SparseEntry& e : entries) total_mass += e.value;
            std::sort(entries.begin(), entries.end(),
                      [](const SparseEntry& a, const SparseEntry& b) {
                        if (a.value != b.value) return a.value > b.value;
                        return a.col < b.col;
                      });
            entries.resize(static_cast<size_t>(topk));
            std::sort(entries.begin(), entries.end(),
                      [](const SparseEntry& a, const SparseEntry& b) {
                        return a.col < b.col;
                      });
            double kept_mass = 0.0;
            for (const SparseEntry& e : entries) kept_mass += e.value;
            if (kept_mass > 0.0) {
              const float rescale =
                  static_cast<float>(total_mass / kept_mass);
              for (SparseEntry& e : entries) e.value *= rescale;
            }
          }
        }
      });
  std::vector<SparseEntry> entries;
  for (const std::vector<SparseEntry>& cluster : cluster_entries) {
    entries.insert(entries.end(), cluster.begin(), cluster.end());
  }

  // Coarse topology: clusters are adjacent iff some full-graph edge crosses
  // them (Graph() dedups the multi-edges).
  std::vector<Edge> edges;
  for (const Edge& e : full.graph.edges()) {
    const int64_t cu = assign[static_cast<size_t>(e.u)];
    const int64_t cv = assign[static_cast<size_t>(e.v)];
    if (cu != cv) edges.push_back({std::min(cu, cv), std::max(cu, cv)});
  }

  // Labels: each cluster inherits its pseudo-class (for clusters holding
  // train members this is the members' true label — LP clamps the train
  // rows). Every non-empty cluster enters the condensed train split; empty
  // clusters (a k-means center that lost all its points) keep the class
  // label but train on nothing.
  std::vector<int64_t> labels(static_cast<size_t>(m), 0);
  std::vector<int64_t> train;
  for (int64_t c = 0; c < m; ++c) {
    const std::vector<int64_t>& members = out.members[static_cast<size_t>(c)];
    if (members.empty()) continue;
    labels[static_cast<size_t>(c)] = pseudo[static_cast<size_t>(members[0])];
    train.push_back(c);
  }

  out.dataset.name = full.name + "-condensed-cluster";
  out.dataset.graph = Graph(m, edges);
  out.dataset.features = SparseMatrix::FromCoo(m, feature_dim,
                                               std::move(entries));
  out.dataset.labels = std::move(labels);
  out.dataset.num_classes = num_classes;
  out.dataset.split.train = std::move(train);
  out.achieved_ratio = static_cast<double>(m) / static_cast<double>(n);
  return out;
}

}  // namespace rdd::condense
