#include "graph/condense/condense.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "autograd/ops.h"
#include "models/graph_model.h"
#include "models/label_propagation.h"
#include "models/model_factory.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "tensor/ops.h"
#include "train/trainer.h"
#include "util/env.h"
#include "util/logging.h"

namespace rdd::condense {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kOff:
      return "off";
    case Method::kCluster:
      return "cluster";
    case Method::kEigen:
      return "eigen";
  }
  return "unknown";
}

CondenseConfig CondenseConfig::FromEnv() {
  CondenseConfig config;
  config.method = Method::kOff;
  if (const char* value = std::getenv("RDD_CONDENSE")) {
    const std::string v(value);
    if (v == "cluster") {
      config.method = Method::kCluster;
    } else if (v == "eigen") {
      config.method = Method::kEigen;
    } else if (!v.empty()) {
      // Boolean spellings: on means the default (cluster) condenser.
      bool recognized = true;
      const bool on = env::ParseBool(value, false, &recognized);
      if (!recognized) {
        RDD_LOG(Warning) << "RDD_CONDENSE=" << v
                         << " is not off|cluster|eigen (or a boolean); "
                         << "condensation stays off";
      } else if (on) {
        config.method = Method::kCluster;
      }
    }
  }
  config.ratio = env::DoubleEnv("RDD_CONDENSE_RATIO", config.ratio,
                                /*min_value=*/1e-4, /*max_value=*/1.0);
  config.propagation_steps =
      env::IntEnv("RDD_CONDENSE_PROP_STEPS",
                  static_cast<int>(config.propagation_steps), 0, 16);
  config.eigen_k = env::IntEnv("RDD_CONDENSE_EIGEN_K",
                               static_cast<int>(config.eigen_k), 1, 256);
  config.eval_every =
      env::IntEnv("RDD_CONDENSE_EVAL_EVERY", config.eval_every, 1, 1000);
  config.warmup_epochs =
      env::IntEnv("RDD_CONDENSE_WARMUP", config.warmup_epochs, 0, 10000);
  return config;
}

int64_t CondensedNodeCount(int64_t num_nodes, int64_t num_classes,
                           double ratio) {
  RDD_CHECK_GT(num_nodes, 0);
  const int64_t target = static_cast<int64_t>(
      std::llround(ratio * static_cast<double>(num_nodes)));
  return std::min(num_nodes, std::max<int64_t>(std::max<int64_t>(1, num_classes), target));
}

CondensedGraph CondenseGraph(const Dataset& full,
                             const CondenseConfig& config) {
  RDD_CHECK(config.method != Method::kOff);
  static observe::Counter& runs =
      observe::MetricsRegistry::Global().counter("condense.runs");
  static observe::Counter& nodes =
      observe::MetricsRegistry::Global().counter("condense.synthetic_nodes");
  CondensedGraph condensed = config.method == Method::kCluster
                                 ? ClusterCondense(full, config)
                                 : EigenCondense(full, config);
  runs.Add(1);
  nodes.Add(condensed.dataset.NumNodes());
  return condensed;
}

namespace internal {

Matrix PseudoLabelScores(const Dataset& full, const CondenseConfig& config) {
  Matrix probs;
  if (config.warmup_epochs > 0) {
    // Brief full-graph warm-up: a default GCN trained on the train split for
    // a fixed epoch budget, validation amortized to the final epoch.
    observe::TraceSpan span("condense/warmup");
    const GraphContext context = GraphContext::FromDataset(full);
    auto model = BuildModel(context, ModelConfig{}, config.seed);
    TrainConfig train;
    train.max_epochs = config.warmup_epochs;
    train.patience = config.warmup_epochs;
    train.restore_best = false;
    auto supervised = [&](const ModelOutput& output, int /*epoch*/) {
      return ag::SoftmaxCrossEntropy(output.logits, full.labels,
                                     full.split.train, ag::Reduction::kMean);
    };
    EvalHooks hooks;
    hooks.eval_every = config.warmup_epochs;
    TrainWithLoss(model.get(), full, train, supervised, hooks);
    probs = SoftmaxRows(model->Forward(/*training=*/false).logits.value());
  } else {
    LabelPropagationOptions options;
    options.alpha = 0.3;
    probs = PropagateLabels(full, options);
  }
  // Clamp train rows to their one-hot true labels so the pseudo-labeling is
  // exact wherever a label actually exists.
  const std::vector<bool> train_mask = full.TrainMask();
  for (int64_t i = 0; i < full.NumNodes(); ++i) {
    if (!train_mask[static_cast<size_t>(i)]) continue;
    float* row = probs.RowData(i);
    for (int64_t c = 0; c < full.num_classes; ++c) row[c] = 0.0f;
    row[full.labels[static_cast<size_t>(i)]] = 1.0f;
  }
  return probs;
}

void ClassBalancedFill(const std::vector<bool>& needs_label,
                       int64_t num_classes, std::vector<int64_t>* labels) {
  RDD_CHECK(labels != nullptr);
  RDD_CHECK_EQ(needs_label.size(), labels->size());
  RDD_CHECK_GT(num_classes, 0);
  std::vector<int64_t> counts(static_cast<size_t>(num_classes), 0);
  for (size_t i = 0; i < labels->size(); ++i) {
    if (!needs_label[i]) {
      const int64_t label = (*labels)[i];
      RDD_CHECK_GE(label, 0);
      RDD_CHECK_LT(label, num_classes);
      ++counts[static_cast<size_t>(label)];
    }
  }
  for (size_t i = 0; i < labels->size(); ++i) {
    if (!needs_label[i]) continue;
    int64_t best = 0;
    for (int64_t c = 1; c < num_classes; ++c) {
      if (counts[static_cast<size_t>(c)] < counts[static_cast<size_t>(best)]) {
        best = c;
      }
    }
    (*labels)[i] = best;
    ++counts[static_cast<size_t>(best)];
  }
}

}  // namespace internal

}  // namespace rdd::condense
