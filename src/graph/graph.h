#ifndef RDD_GRAPH_GRAPH_H_
#define RDD_GRAPH_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace rdd {

/// An undirected edge between two node ids.
struct Edge {
  int64_t u = 0;
  int64_t v = 0;
};

inline bool operator==(const Edge& a, const Edge& b) {
  return a.u == b.u && a.v == b.v;
}

/// An undirected simple graph stored both as a deduplicated edge list and as
/// a CSR adjacency structure. Node ids are dense integers [0, num_nodes).
/// Self-loops in the input are dropped (the GCN normalization adds its own
/// self-connections); duplicate and reversed duplicates are merged.
class Graph {
 public:
  /// Empty graph with no nodes.
  Graph() = default;

  /// Builds a graph over `num_nodes` nodes from an arbitrary edge list.
  Graph(int64_t num_nodes, const std::vector<Edge>& edges);

  /// Builds a graph from an ALREADY canonical edge list: every edge has
  /// u < v, edges are sorted (u-major, v-minor), and there are no
  /// duplicates. Skips the canonicalization sort, so a caller that merges
  /// two canonical lists (the streaming delta path) pays O(E) instead of
  /// O(E log E); the result is bit-identical to the sorting constructor.
  /// Canonical-form violations abort.
  static Graph FromCanonicalEdges(int64_t num_nodes, std::vector<Edge> edges);

  int64_t num_nodes() const { return num_nodes_; }
  /// Number of undirected edges after deduplication.
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }

  /// Canonical edge list: each undirected edge appears once with u < v.
  const std::vector<Edge>& edges() const { return edges_; }

  /// Neighbor ids of `node`, sorted ascending.
  const std::vector<int64_t>& Neighbors(int64_t node) const;

  /// Degree of `node` (number of distinct neighbors, self excluded).
  int64_t Degree(int64_t node) const;

  /// True iff {u, v} is an edge. O(log degree).
  bool HasEdge(int64_t u, int64_t v) const;

  /// Maximum degree over all nodes (0 for an empty graph).
  int64_t MaxDegree() const;

  /// 2 * num_edges / num_nodes; 0 for an empty graph.
  double AverageDegree() const;

 private:
  int64_t num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<int64_t>> adjacency_;
};

}  // namespace rdd

#endif  // RDD_GRAPH_GRAPH_H_
