#ifndef RDD_GRAPH_GENERATORS_H_
#define RDD_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/random.h"

namespace rdd {

/// Path graph 0-1-2-...-(n-1).
Graph MakePathGraph(int64_t n);

/// Cycle graph on n >= 3 nodes.
Graph MakeCycleGraph(int64_t n);

/// Star graph: node 0 connected to nodes 1..n-1.
Graph MakeStarGraph(int64_t n);

/// Complete graph on n nodes.
Graph MakeCompleteGraph(int64_t n);

/// 2D grid graph with `rows * cols` nodes, 4-neighborhood.
Graph MakeGridGraph(int64_t rows, int64_t cols);

/// Erdos-Renyi G(n, p) random graph.
Graph MakeErdosRenyiGraph(int64_t n, double p, Rng* rng);

/// Parameters for the labeled, degree-heterogeneous stochastic block model
/// used as the topology backbone of the synthetic citation networks.
struct LabeledSbmParams {
  /// Target number of undirected edges (the generator hits this exactly, up
  /// to collisions with existing edges).
  int64_t target_edges = 0;
  /// Probability that a sampled edge is intra-class. Drives edge homophily.
  double homophily = 0.8;
  /// Degree skew: each node gets an attractiveness weight ~ (rank)^-skew,
  /// giving a heavy-tailed degree distribution like real citation graphs.
  /// 0 yields a uniform SBM.
  double degree_skew = 0.8;
};

/// Samples a graph over `labels.size()` nodes where edge endpoints are drawn
/// proportionally to per-node attractiveness, and intra- vs inter-class
/// endpoints are chosen by the homophily parameter. Guarantees a simple
/// graph (no self-loops or duplicates).
Graph MakeLabeledSbmGraph(const std::vector<int64_t>& labels,
                          const LabeledSbmParams& params, Rng* rng);

}  // namespace rdd

#endif  // RDD_GRAPH_GENERATORS_H_
