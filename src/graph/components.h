#ifndef RDD_GRAPH_COMPONENTS_H_
#define RDD_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace rdd {

/// Result of a connected-components decomposition.
struct ComponentsResult {
  /// Component id of each node, in [0, num_components); ids are assigned in
  /// order of first appearance by node id.
  std::vector<int64_t> component_of;
  /// Number of nodes in each component.
  std::vector<int64_t> component_sizes;
  int64_t num_components = 0;
};

/// Computes connected components by BFS. Used by dataset validation (the
/// generators keep graphs connected enough that labels can propagate) and by
/// graph statistics reporting.
ComponentsResult ConnectedComponents(const Graph& graph);

}  // namespace rdd

#endif  // RDD_GRAPH_COMPONENTS_H_
