#ifndef RDD_GRAPH_GRAPH_VIEW_H_
#define RDD_GRAPH_GRAPH_VIEW_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "tensor/sparse.h"

namespace rdd {

/// A (sub)graph a model runs one forward pass over: feature rows, normalized
/// adjacency slices, and the node index map back to the owning graph. The
/// full graph is just the identity view — its matrices are shared (not
/// copied) from the owning context, so the transductive full-batch path is
/// bit-identical to running without views. Sub-views (mini-batches, shards)
/// own freshly normalized slices over their induced subgraph.
///
/// Row ordering contract: rows [0, num_targets) are the TARGET nodes — the
/// nodes whose outputs the caller asked for (a mini-batch's seeds, or every
/// node of a shard) — in the order the caller supplied them. Rows
/// [num_targets, num_nodes) are frontier nodes pulled in to support
/// propagation, in deterministic discovery order. Losses and predictions
/// read target rows; frontier rows exist so targets see (sampled) neighbors.
///
/// Ownership and thread-safety: a view is an immutable value type — its
/// matrices are shared_ptr<const>, so copies are cheap, a view outlives
/// (and is never invalidated by) changes to the owning context (e.g. a
/// StreamingGraph::Apply), and a built view is safe to read from any
/// number of threads concurrently.
struct GraphView {
  /// View-local feature matrix: num_nodes x feature_dim, CSR.
  std::shared_ptr<const SparseMatrix> features;
  /// Symmetric GCN normalization D^-1/2 (A+I) D^-1/2 of the view's induced
  /// subgraph (recomputed on induced degrees for sub-views; the global
  /// matrix, shared, for the full view).
  std::shared_ptr<const SparseMatrix> adj_norm;
  /// Row-stochastic D^-1 (A+I) of the induced subgraph.
  std::shared_ptr<const SparseMatrix> adj_row;

  /// View-local index -> global node id. Empty for the identity (full) view,
  /// where local and global ids coincide.
  std::vector<int64_t> nodes;
  int64_t num_nodes = 0;
  int64_t num_targets = 0;
  int64_t feature_dim = 0;
  int64_t num_classes = 0;

  /// True for the identity view over the full graph.
  bool full() const { return nodes.empty(); }

  /// Global id of view-local row `local`.
  int64_t GlobalId(int64_t local) const {
    return full() ? local : nodes[static_cast<size_t>(local)];
  }

  /// Gathers a node-indexed global vector into view-local order (length
  /// num_nodes). Used to remap labels and split masks onto view rows.
  std::vector<int64_t> GatherInt64(const std::vector<int64_t>& global) const;
  std::vector<bool> GatherMask(const std::vector<bool>& global) const;

  /// View-local target indices [0, num_targets) — the index list loss
  /// functions consume.
  std::vector<int64_t> TargetIndices() const;
};

/// Builds the induced-subgraph view over `nodes` (given as global ids;
/// duplicates abort). The first `num_targets` entries are the view's target
/// rows. Features are row-sliced from `features`; both propagation matrices
/// are renormalized on the induced subgraph's degrees, so every view row is
/// a proper (sub)graph convolution — a shard trains exactly like a small
/// full graph. Deterministic: output depends only on (graph, features,
/// nodes).
GraphView MakeInducedView(const Graph& graph, const SparseMatrix& features,
                          int64_t num_classes, std::vector<int64_t> nodes,
                          int64_t num_targets);

/// The view's induced undirected edge list as view-local (u, v) pairs with
/// u < v, self-loops excluded. This is the edge set per-batch edge
/// reliability (Algorithm 2 on the induced frontier) filters.
std::vector<std::pair<int64_t, int64_t>> ViewEdges(const GraphView& view);

}  // namespace rdd

#endif  // RDD_GRAPH_GRAPH_VIEW_H_
