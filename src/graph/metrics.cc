#include "graph/metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace rdd {

double EdgeHomophily(const Graph& graph, const std::vector<int64_t>& labels) {
  RDD_CHECK_EQ(static_cast<int64_t>(labels.size()), graph.num_nodes());
  if (graph.num_edges() == 0) return 0.0;
  int64_t same = 0;
  for (const Edge& e : graph.edges()) {
    if (labels[static_cast<size_t>(e.u)] == labels[static_cast<size_t>(e.v)]) {
      ++same;
    }
  }
  return static_cast<double>(same) / static_cast<double>(graph.num_edges());
}

DegreeStats ComputeDegreeStats(const Graph& graph) {
  DegreeStats stats;
  const int64_t n = graph.num_nodes();
  if (n == 0) return stats;
  int64_t min_deg = graph.Degree(0);
  int64_t max_deg = 0;
  int64_t isolated = 0;
  int64_t total = 0;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t d = graph.Degree(i);
    min_deg = std::min(min_deg, d);
    max_deg = std::max(max_deg, d);
    total += d;
    if (d == 0) ++isolated;
  }
  stats.min_degree = min_deg;
  stats.max_degree = max_deg;
  stats.mean_degree = static_cast<double>(total) / static_cast<double>(n);
  stats.isolated_fraction =
      static_cast<double>(isolated) / static_cast<double>(n);
  return stats;
}

}  // namespace rdd
