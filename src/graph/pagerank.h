#ifndef RDD_GRAPH_PAGERANK_H_
#define RDD_GRAPH_PAGERANK_H_

#include <vector>

#include "graph/graph.h"

namespace rdd {

/// Options for the PageRank power iteration.
struct PageRankOptions {
  double damping = 0.85;     ///< Teleport with probability 1 - damping.
  int max_iterations = 100;  ///< Hard cap on power-iteration steps.
  double tolerance = 1e-9;   ///< L1 change threshold for convergence.
};

/// Computes PageRank on the undirected graph by power iteration (the paper
/// uses PageRank as the node-importance term Pr(x_i) in the ensemble weight,
/// Eq. 12). Isolated nodes receive teleport-only mass. The returned vector
/// sums to 1.
std::vector<double> PageRank(const Graph& graph,
                             const PageRankOptions& options = {});

}  // namespace rdd

#endif  // RDD_GRAPH_PAGERANK_H_
