#include "graph/pagerank.h"

#include <cmath>

#include "util/logging.h"

namespace rdd {

std::vector<double> PageRank(const Graph& graph,
                             const PageRankOptions& options) {
  RDD_CHECK_GT(options.damping, 0.0);
  RDD_CHECK_LT(options.damping, 1.0);
  const int64_t n = graph.num_nodes();
  if (n == 0) return {};

  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> rank(static_cast<size_t>(n), uniform);
  std::vector<double> next(static_cast<size_t>(n), 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Mass from dangling (isolated) nodes is spread uniformly.
    double dangling = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      if (graph.Degree(i) == 0) dangling += rank[static_cast<size_t>(i)];
    }
    const double base =
        (1.0 - options.damping) * uniform + options.damping * dangling * uniform;
    for (int64_t i = 0; i < n; ++i) next[static_cast<size_t>(i)] = base;
    for (int64_t i = 0; i < n; ++i) {
      const int64_t deg = graph.Degree(i);
      if (deg == 0) continue;
      const double share =
          options.damping * rank[static_cast<size_t>(i)] / static_cast<double>(deg);
      for (int64_t j : graph.Neighbors(i)) {
        next[static_cast<size_t>(j)] += share;
      }
    }
    double delta = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      delta += std::fabs(next[static_cast<size_t>(i)] -
                         rank[static_cast<size_t>(i)]);
    }
    rank.swap(next);
    if (delta < options.tolerance) break;
  }
  return rank;
}

}  // namespace rdd
