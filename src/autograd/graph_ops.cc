#include "autograd/graph_ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "util/logging.h"

namespace rdd::ag {

using autograd_internal::MakeOpNode;
using autograd_internal::VariableImpl;

Variable NeighborAttention(const SparseMatrix* pattern, const Variable& h,
                           const Variable& s1, const Variable& s2,
                           float leaky_slope) {
  RDD_CHECK(pattern != nullptr);
  const int64_t n = pattern->rows();
  RDD_CHECK_EQ(pattern->cols(), n);
  RDD_CHECK_EQ(h.rows(), n);
  RDD_CHECK_EQ(s1.rows(), n);
  RDD_CHECK_EQ(s1.cols(), 1);
  RDD_CHECK_EQ(s2.rows(), n);
  RDD_CHECK_EQ(s2.cols(), 1);
  RDD_CHECK_GE(leaky_slope, 0.0f);
  const int64_t d = h.cols();
  const std::vector<int64_t>& row_ptr = pattern->row_ptr();
  const std::vector<int64_t>& col_idx = pattern->col_idx();

  // Cached for backward: attention weights alpha (per nonzero) and the
  // pre-activation sign (for the LeakyReLU derivative).
  auto alpha = std::make_shared<std::vector<float>>(col_idx.size());
  auto pre_positive = std::make_shared<std::vector<bool>>(col_idx.size());

  Matrix value(n, d);
  const Matrix& hv = h.value();
  const float* s1v = s1.value().Data();
  const float* s2v = s2.value().Data();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t begin = row_ptr[static_cast<size_t>(i)];
    const int64_t end = row_ptr[static_cast<size_t>(i) + 1];
    if (begin == end) continue;  // Isolated node: output row stays zero.
    // Scores with the LeakyReLU, then a stable softmax.
    float max_e = -std::numeric_limits<float>::infinity();
    for (int64_t k = begin; k < end; ++k) {
      const float pre = s1v[i] + s2v[col_idx[static_cast<size_t>(k)]];
      (*pre_positive)[static_cast<size_t>(k)] = pre > 0.0f;
      const float e = pre > 0.0f ? pre : leaky_slope * pre;
      (*alpha)[static_cast<size_t>(k)] = e;
      max_e = std::max(max_e, e);
    }
    double sum = 0.0;
    for (int64_t k = begin; k < end; ++k) {
      float& a = (*alpha)[static_cast<size_t>(k)];
      a = std::exp(a - max_e);
      sum += a;
    }
    const float inv = static_cast<float>(1.0 / sum);
    float* out_row = value.RowData(i);
    for (int64_t k = begin; k < end; ++k) {
      float& a = (*alpha)[static_cast<size_t>(k)];
      a *= inv;
      const float* h_row = hv.RowData(col_idx[static_cast<size_t>(k)]);
      for (int64_t c = 0; c < d; ++c) out_row[c] += a * h_row[c];
    }
  }

  return MakeOpNode(
      std::move(value), "neighbor_attention", {h, s1, s2},
      [pattern, h, s1, s2, alpha, pre_positive,
       leaky_slope](VariableImpl* node) {
        const int64_t n = pattern->rows();
        const int64_t d = h.cols();
        const std::vector<int64_t>& row_ptr = pattern->row_ptr();
        const std::vector<int64_t>& col_idx = pattern->col_idx();
        const Matrix& hv = h.value();
        const Matrix& grad_out = node->grad;

        Matrix grad_h(n, d);
        Matrix grad_s1(n, 1);
        Matrix grad_s2(n, 1);
        for (int64_t i = 0; i < n; ++i) {
          const int64_t begin = row_ptr[static_cast<size_t>(i)];
          const int64_t end = row_ptr[static_cast<size_t>(i) + 1];
          if (begin == end) continue;
          const float* go = grad_out.RowData(i);
          // dL/dalpha_ik = grad_out_i . h_k, and the aggregation term
          // dL/dh_k += alpha_ik * grad_out_i.
          double weighted_sum = 0.0;  // sum_k alpha_ik * dL/dalpha_ik
          std::vector<double> dalpha(static_cast<size_t>(end - begin));
          for (int64_t k = begin; k < end; ++k) {
            const int64_t j = col_idx[static_cast<size_t>(k)];
            const float a = (*alpha)[static_cast<size_t>(k)];
            const float* h_row = hv.RowData(j);
            float* gh_row = grad_h.RowData(j);
            double dot = 0.0;
            for (int64_t c = 0; c < d; ++c) {
              dot += static_cast<double>(go[c]) * h_row[c];
              gh_row[c] += a * go[c];
            }
            dalpha[static_cast<size_t>(k - begin)] = dot;
            weighted_sum += a * dot;
          }
          // Softmax backward, then LeakyReLU backward into s1_i and s2_j.
          for (int64_t k = begin; k < end; ++k) {
            const float a = (*alpha)[static_cast<size_t>(k)];
            double de = a * (dalpha[static_cast<size_t>(k - begin)] -
                             weighted_sum);
            if (!(*pre_positive)[static_cast<size_t>(k)]) {
              de *= leaky_slope;
            }
            grad_s1.At(i, 0) += static_cast<float>(de);
            grad_s2.At(col_idx[static_cast<size_t>(k)], 0) +=
                static_cast<float>(de);
          }
        }
        if (h.requires_grad()) h.impl()->AccumulateGrad(grad_h);
        if (s1.requires_grad()) s1.impl()->AccumulateGrad(grad_s1);
        if (s2.requires_grad()) s2.impl()->AccumulateGrad(grad_s2);
      });
}

}  // namespace rdd::ag
