#ifndef RDD_AUTOGRAD_FUSION_H_
#define RDD_AUTOGRAD_FUSION_H_

#include "autograd/variable.h"
#include "tensor/sparse.h"

namespace rdd::ag {

/// Construction-time operator fusion (DESIGN.md §12). Each entry point
/// recognizes one dominant chain of the training/serving graphs and, when
/// the RDD_FUSE flag is on (util/runtime_flags.h), emits a single tape node
/// whose forward runs the fused driver (bias + ReLU epilogue inside the
/// GEMM/SpMM row loop) and whose backward applies the chain's composite
/// gradient in one pass. When fusion is off — or the pattern does not apply
/// (e.g. a bias-less layer) — the entry point emits the *literal* unfused
/// op sequence, so RDD_FUSE=0 reproduces the seed tape node for node.
///
/// Contract: fused and unfused paths are bit-identical on every backend and
/// thread count. Forward holds because the fused kernels replicate the
/// unfused per-element arithmetic exactly (simd.h). Backward holds because
/// (a) the ReLU mask taken from the fused node's own output is equivalent to
/// the mask from the pre-activation (out > 0 iff z > 0, and a NaN z zeroes
/// the lane under either mask), (b) the composite gradients are the same
/// kernel calls the unfused node sequence issues, in the same per-tensor
/// accumulation order (bias, then the chain inputs), and (c) collapsing a
/// chain into one node whose parent list visits the same external tensors
/// in the same order leaves the tape's DFS topological order — and with it
/// every shared-tensor gradient accumulation order — unchanged.
///
/// Every call records a fusion hit (fused node emitted) or miss (fallback)
/// with simd/kernel_stats; the derived "simd.fusion.hit_rate_pct" gauge
/// reports the ratio.

/// relu(x * w + bias), the Linear + ReLU chain. `bias` may be undefined
/// (bias-less Linear), which falls back to relu(x * w) unfused.
Variable FusedLinearRelu(const Variable& x, const Variable& w,
                         const Variable& bias);

/// relu(s * m + bias) for a constant sparse `s` (adjacency or feature
/// matrix), the SpMM + bias + ReLU chain. `m` is any tape node — the dense
/// weight for a sparse input layer, or an inner Matmul/SpMM product for a
/// graph convolution. `s` must outlive Backward(), like SpmmConst. `bias`
/// may be undefined (falls back to relu(s * m) unfused).
Variable FusedSpmmBiasRelu(const SparseMatrix* s, const Variable& m,
                           const Variable& bias);

}  // namespace rdd::ag

#endif  // RDD_AUTOGRAD_FUSION_H_
