#ifndef RDD_AUTOGRAD_VARIABLE_H_
#define RDD_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace rdd {

class Variable;

namespace autograd_internal {

/// Reference-counted tape node: holds the forward value, the accumulated
/// gradient, edges to parent nodes, and the local backward rule.
struct VariableImpl {
  Matrix value;
  Matrix grad;            ///< Allocated lazily; same shape as value.
  bool requires_grad = false;
  bool grad_allocated = false;
  std::string op_name;    ///< For diagnostics ("matmul", "relu", ...).
  std::vector<std::shared_ptr<VariableImpl>> parents;
  /// Propagates this->grad into the parents' grads. Null for leaves.
  std::function<void(VariableImpl*)> backward_fn;

  /// Ensures grad is an allocated zero matrix of the value's shape.
  void EnsureGrad();
  /// Adds `g` into the gradient buffer (allocating it first if needed).
  void AccumulateGrad(const Matrix& g);
};

}  // namespace autograd_internal

/// A value in the autograd tape. Variables are cheap shared handles: copying
/// a Variable aliases the same node. Leaves created with requires_grad=true
/// are trainable parameters; every op result records how to push gradients
/// back to its parents. Call Backward() on a scalar (1x1) result to populate
/// grad() on every reachable parameter.
///
/// Memory: node storage is pool-backed (see memory::BufferPool via Matrix).
/// Backward() releases each intermediate node's gradient — and, when no
/// handle outside the tape references the node, its value — as soon as its
/// own backward rule has fired, so peak memory tracks the live set of the
/// reverse sweep instead of the whole tape. Leaf values and gradients
/// (parameters) always survive; so do values still referenced externally,
/// e.g. a ModelOutput's logits.
class Variable {
 public:
  /// Null handle; most code should use the factory below or autograd ops.
  Variable() = default;

  /// Wraps a value as a leaf node.
  explicit Variable(Matrix value, bool requires_grad = false);

  /// Internal: wraps an existing node.
  explicit Variable(std::shared_ptr<autograd_internal::VariableImpl> impl)
      : impl_(std::move(impl)) {}

  /// True iff this handle refers to a node.
  bool defined() const { return impl_ != nullptr; }

  /// Forward value (shape rows x cols).
  const Matrix& value() const;
  /// Mutable forward value; only meaningful for leaf parameters (e.g. when
  /// an optimizer applies an update step).
  Matrix* mutable_value();

  /// Accumulated gradient. Zero-shaped until Backward touches this node.
  const Matrix& grad() const;

  /// True if gradients should flow to (or through) this node.
  bool requires_grad() const;

  /// Clears the accumulated gradient (sets it to zero).
  void ZeroGrad();

  int64_t rows() const { return value().rows(); }
  int64_t cols() const { return value().cols(); }

  /// Runs reverse-mode accumulation from this node, which must hold a 1x1
  /// scalar. Seeds d(self)/d(self) = 1 and applies each node's backward rule
  /// in reverse topological order.
  void Backward() const;

  /// Internal access for op implementations.
  const std::shared_ptr<autograd_internal::VariableImpl>& impl() const {
    return impl_;
  }

 private:
  std::shared_ptr<autograd_internal::VariableImpl> impl_;
};

namespace autograd_internal {

/// Creates an op-result node. `parents` are the inputs; `backward_fn` pushes
/// node->grad into the parents. The node requires grad iff any parent does.
Variable MakeOpNode(Matrix value, std::string op_name,
                    std::vector<Variable> parents,
                    std::function<void(VariableImpl*)> backward_fn);

}  // namespace autograd_internal

}  // namespace rdd

#endif  // RDD_AUTOGRAD_VARIABLE_H_
