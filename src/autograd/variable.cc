#include "autograd/variable.h"

#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/logging.h"

namespace rdd {

namespace autograd_internal {

void VariableImpl::EnsureGrad() {
  if (!grad_allocated) {
    grad = Matrix(value.rows(), value.cols());
    grad_allocated = true;
  }
}

void VariableImpl::AccumulateGrad(const Matrix& g) {
  EnsureGrad();
  grad.Add(g);
}

Variable MakeOpNode(Matrix value, std::string op_name,
                    std::vector<Variable> parents,
                    std::function<void(VariableImpl*)> backward_fn) {
  auto impl = std::make_shared<VariableImpl>();
  impl->value = std::move(value);
  impl->op_name = std::move(op_name);
  bool needs_grad = false;
  for (const Variable& p : parents) {
    RDD_CHECK(p.defined()) << "op " << impl->op_name << ": undefined parent";
    needs_grad = needs_grad || p.impl()->requires_grad;
    impl->parents.push_back(p.impl());
  }
  impl->requires_grad = needs_grad;
  if (needs_grad) impl->backward_fn = std::move(backward_fn);
  return Variable(std::move(impl));
}

}  // namespace autograd_internal

using autograd_internal::VariableImpl;

Variable::Variable(Matrix value, bool requires_grad) {
  impl_ = std::make_shared<VariableImpl>();
  impl_->value = std::move(value);
  impl_->requires_grad = requires_grad;
  impl_->op_name = "leaf";
}

const Matrix& Variable::value() const {
  RDD_CHECK(defined());
  return impl_->value;
}

Matrix* Variable::mutable_value() {
  RDD_CHECK(defined());
  return &impl_->value;
}

const Matrix& Variable::grad() const {
  RDD_CHECK(defined());
  impl_->EnsureGrad();
  return impl_->grad;
}

bool Variable::requires_grad() const {
  RDD_CHECK(defined());
  return impl_->requires_grad;
}

void Variable::ZeroGrad() {
  RDD_CHECK(defined());
  impl_->EnsureGrad();
  impl_->grad.SetZero();
}

void Variable::Backward() const {
  RDD_CHECK(defined());
  RDD_CHECK_EQ(impl_->value.rows(), 1);
  RDD_CHECK_EQ(impl_->value.cols(), 1);

  // Iterative post-order DFS to get a topological order of the tape. Holding
  // shared_ptrs (not raw pointers) lets the release pass below compare
  // use_count against the tape-internal reference count.
  std::vector<std::shared_ptr<VariableImpl>> topo;
  std::unordered_set<VariableImpl*> visited;
  std::vector<std::pair<std::shared_ptr<VariableImpl>, size_t>> stack;
  stack.emplace_back(impl_, 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      const std::shared_ptr<VariableImpl>& child =
          node->parents[next_child];
      ++next_child;
      if (child->requires_grad && visited.insert(child.get()).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      topo.push_back(std::move(node));
      stack.pop_back();
    }
  }

  // Tape-internal references to each node: one per occurrence in a tape
  // node's parents list, plus the copy held by `topo` itself. A node whose
  // use_count exceeds this is also referenced from outside the tape (a
  // parameter, a ModelOutput, a second loss, ...) and its storage must
  // survive the walk.
  std::unordered_map<VariableImpl*, long> internal_refs;
  internal_refs.reserve(topo.size());
  for (const auto& node : topo) {
    for (const auto& parent : node->parents) {
      if (parent->requires_grad) ++internal_refs[parent.get()];
    }
  }

  // Zero any still-allocated gradient in this tape (leaf parameters keep
  // their grad buffers across epochs), then seed the root. Intermediate
  // grads are NOT pre-allocated here: the first AccumulateGrad allocates
  // them and the walk below releases them again, so gradient memory peaks
  // at the live set rather than the tape size.
  for (const auto& node : topo) {
    if (node->grad_allocated) node->grad.SetZero();
  }
  impl_->EnsureGrad();
  impl_->grad.At(0, 0) = 1.0f;

  // topo is post-order (root last); walk it backwards. Reverse post-order
  // guarantees every consumer of a node runs before the node itself, so
  // once a node's own backward rule has fired, its gradient — and, when the
  // tape holds the only references, its value — is dead. Releasing those
  // buffers immediately caps peak memory at the live set instead of the
  // whole tape, and returns the storage to the pool for the next epoch.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    VariableImpl* node = it->get();
    if (!node->backward_fn) continue;  // Leaves keep value and grad.
    node->EnsureGrad();  // No-op normally; guards odd re-entrant tapes.
    node->backward_fn(node);
    // Dropping the backward closure frees its captured parent handles and
    // op scratch (dropout masks, cached softmax rows, index copies).
    node->backward_fn = nullptr;
    node->grad = Matrix();
    node->grad_allocated = false;
    const auto refs = internal_refs.find(node);
    const long internal = 1 + (refs == internal_refs.end() ? 0 : refs->second);
    if (it->use_count() == internal) node->value = Matrix();
  }
}

}  // namespace rdd
