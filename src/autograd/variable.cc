#include "autograd/variable.h"

#include <unordered_set>

#include "util/logging.h"

namespace rdd {

namespace autograd_internal {

void VariableImpl::EnsureGrad() {
  if (!grad_allocated) {
    grad = Matrix(value.rows(), value.cols());
    grad_allocated = true;
  }
}

void VariableImpl::AccumulateGrad(const Matrix& g) {
  EnsureGrad();
  grad.Add(g);
}

Variable MakeOpNode(Matrix value, std::string op_name,
                    std::vector<Variable> parents,
                    std::function<void(VariableImpl*)> backward_fn) {
  auto impl = std::make_shared<VariableImpl>();
  impl->value = std::move(value);
  impl->op_name = std::move(op_name);
  bool needs_grad = false;
  for (const Variable& p : parents) {
    RDD_CHECK(p.defined()) << "op " << impl->op_name << ": undefined parent";
    needs_grad = needs_grad || p.impl()->requires_grad;
    impl->parents.push_back(p.impl());
  }
  impl->requires_grad = needs_grad;
  if (needs_grad) impl->backward_fn = std::move(backward_fn);
  return Variable(std::move(impl));
}

}  // namespace autograd_internal

using autograd_internal::VariableImpl;

Variable::Variable(Matrix value, bool requires_grad) {
  impl_ = std::make_shared<VariableImpl>();
  impl_->value = std::move(value);
  impl_->requires_grad = requires_grad;
  impl_->op_name = "leaf";
}

const Matrix& Variable::value() const {
  RDD_CHECK(defined());
  return impl_->value;
}

Matrix* Variable::mutable_value() {
  RDD_CHECK(defined());
  return &impl_->value;
}

const Matrix& Variable::grad() const {
  RDD_CHECK(defined());
  impl_->EnsureGrad();
  return impl_->grad;
}

bool Variable::requires_grad() const {
  RDD_CHECK(defined());
  return impl_->requires_grad;
}

void Variable::ZeroGrad() {
  RDD_CHECK(defined());
  impl_->EnsureGrad();
  impl_->grad.SetZero();
}

void Variable::Backward() const {
  RDD_CHECK(defined());
  RDD_CHECK_EQ(impl_->value.rows(), 1);
  RDD_CHECK_EQ(impl_->value.cols(), 1);

  // Iterative post-order DFS to get a topological order of the tape.
  std::vector<VariableImpl*> topo;
  std::unordered_set<VariableImpl*> visited;
  std::vector<std::pair<VariableImpl*, size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      VariableImpl* child = node->parents[next_child].get();
      ++next_child;
      if (child->requires_grad && visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      topo.push_back(node);
      stack.pop_back();
    }
  }

  // Reset gradients of every node in this tape, then seed the root.
  for (VariableImpl* node : topo) {
    node->EnsureGrad();
    node->grad.SetZero();
  }
  impl_->grad.At(0, 0) = 1.0f;

  // topo is post-order (root last); walk it backwards.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    VariableImpl* node = *it;
    if (node->backward_fn) node->backward_fn(node);
  }
}

}  // namespace rdd
