#ifndef RDD_AUTOGRAD_GRAPH_OPS_H_
#define RDD_AUTOGRAD_GRAPH_OPS_H_

#include "autograd/variable.h"
#include "tensor/sparse.h"

namespace rdd::ag {

/// Fused graph-attention aggregation (the core of a GAT layer, Velickovic
/// et al.):
///
///   e_ij     = LeakyReLU(s1_i + s2_j)            for j in N(i)
///   alpha_i. = softmax_j(e_i.)
///   out_i    = sum_j alpha_ij h_j
///
/// `pattern` supplies the neighborhood structure: node i attends over the
/// column indices of row i (values are ignored). Passing the GCN-normalized
/// adjacency gives attention over N(i) u {i}, GAT's usual self-loop
/// convention. `h` is (n x d); `s1` and `s2` are (n x 1) per-node scores
/// (typically h * a1 and h * a2 for trainable vectors a1, a2). The full
/// exact backward through the attention softmax flows to h, s1, and s2.
/// `pattern` must outlive the backward pass.
Variable NeighborAttention(const SparseMatrix* pattern, const Variable& h,
                           const Variable& s1, const Variable& s2,
                           float leaky_slope = 0.2f);

}  // namespace rdd::ag

#endif  // RDD_AUTOGRAD_GRAPH_OPS_H_
