#include "autograd/ops.h"

#include <cmath>

#include "memory/buffer_pool.h"
#include "simd/kernel_stats.h"
#include "simd/simd.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/runtime_flags.h"

namespace rdd::ag {

using autograd_internal::MakeOpNode;
using autograd_internal::VariableImpl;

namespace {

/// Divisor implied by a reduction over a set of `count` items.
float ReductionScale(Reduction reduction, size_t count) {
  if (reduction == Reduction::kSum || count == 0) return 1.0f;
  return 1.0f / static_cast<float>(count);
}

}  // namespace

Variable Matmul(const Variable& a, const Variable& b) {
  RDD_CHECK_EQ(a.cols(), b.rows());
  Matrix value = rdd::Matmul(a.value(), b.value());
  return MakeOpNode(
      std::move(value), "matmul", {a, b},
      [a, b](VariableImpl* node) {
        if (a.requires_grad()) {
          a.impl()->AccumulateGrad(MatmulTransposeB(node->grad, b.value()));
        }
        if (b.requires_grad()) {
          b.impl()->AccumulateGrad(MatmulTransposeA(a.value(), node->grad));
        }
      });
}

Variable SpmmConst(const SparseMatrix* s, const Variable& b) {
  RDD_CHECK(s != nullptr);
  RDD_CHECK_EQ(s->cols(), b.rows());
  Matrix value = s->Multiply(b.value());
  return MakeOpNode(std::move(value), "spmm", {b},
                    [s, b](VariableImpl* node) {
                      if (b.requires_grad()) {
                        b.impl()->AccumulateGrad(
                            s->TransposeMultiply(node->grad));
                      }
                    });
}

Variable Add(const Variable& a, const Variable& b) {
  RDD_CHECK_EQ(a.rows(), b.rows());
  RDD_CHECK_EQ(a.cols(), b.cols());
  return MakeOpNode(rdd::Add(a.value(), b.value()), "add", {a, b},
                    [a, b](VariableImpl* node) {
                      if (a.requires_grad()) a.impl()->AccumulateGrad(node->grad);
                      if (b.requires_grad()) b.impl()->AccumulateGrad(node->grad);
                    });
}

Variable Sub(const Variable& a, const Variable& b) {
  RDD_CHECK_EQ(a.rows(), b.rows());
  RDD_CHECK_EQ(a.cols(), b.cols());
  return MakeOpNode(rdd::Sub(a.value(), b.value()), "sub", {a, b},
                    [a, b](VariableImpl* node) {
                      if (a.requires_grad()) a.impl()->AccumulateGrad(node->grad);
                      if (b.requires_grad()) {
                        Matrix neg = node->grad;
                        neg.Scale(-1.0f);
                        b.impl()->AccumulateGrad(neg);
                      }
                    });
}

Variable AddBias(const Variable& a, const Variable& bias_row) {
  RDD_CHECK_EQ(bias_row.rows(), 1);
  RDD_CHECK_EQ(bias_row.cols(), a.cols());
  return MakeOpNode(AddRowBroadcast(a.value(), bias_row.value()), "add_bias",
                    {a, bias_row}, [a, bias_row](VariableImpl* node) {
                      if (a.requires_grad()) a.impl()->AccumulateGrad(node->grad);
                      if (bias_row.requires_grad()) {
                        bias_row.impl()->AccumulateGrad(ColumnSums(node->grad));
                      }
                    });
}

Variable Scale(const Variable& a, float factor) {
  Matrix value = a.value();
  value.Scale(factor);
  return MakeOpNode(std::move(value), "scale", {a},
                    [a, factor](VariableImpl* node) {
                      if (!a.requires_grad()) return;
                      Matrix g = node->grad;
                      g.Scale(factor);
                      a.impl()->AccumulateGrad(g);
                    });
}

Variable Relu(const Variable& a) {
  return MakeOpNode(rdd::Relu(a.value()), "relu", {a},
                    [a](VariableImpl* node) {
                      if (!a.requires_grad()) return;
                      a.impl()->AccumulateGrad(
                          ReluBackward(node->grad, a.value()));
                    });
}

Variable Softmax(const Variable& logits) {
  auto probs = std::make_shared<Matrix>(SoftmaxRows(logits.value()));
  Matrix value = *probs;
  return MakeOpNode(
      std::move(value), "softmax", {logits},
      [logits, probs](VariableImpl* node) {
        if (!logits.requires_grad()) return;
        const Matrix& p = *probs;
        Matrix grad(p.rows(), p.cols());
        const auto& kt = simd::K();
        for (int64_t r = 0; r < p.rows(); ++r) {
          const float* pr = p.RowData(r);
          const float* gr = node->grad.RowData(r);
          const float dot = kt.dot(gr, pr, p.cols());
          kt.softmax_bwd_row(pr, gr, dot, grad.RowData(r), p.cols());
        }
        logits.impl()->AccumulateGrad(grad);
      });
}

Variable Dropout(const Variable& a, float rate, bool training, Rng* rng) {
  RDD_CHECK_GE(rate, 0.0f);
  RDD_CHECK_LT(rate, 1.0f);
  if (!training || rate == 0.0f) return a;
  RDD_CHECK(rng != nullptr);
  const float keep_scale = 1.0f / (1.0f - rate);
  // The mask is shared (by shared_ptr) between forward and backward. Mask
  // GENERATION must stay serial — it consumes the rng stream in index order
  // and splitting it would change which elements drop at a given seed — but
  // mask APPLICATION in the backward (g.Mul(*mask)) runs on the parallel
  // elementwise path.
  auto mask = std::make_shared<Matrix>(a.rows(), a.cols());
  Matrix value = a.value();
  float* v = value.Data();
  float* m = mask->Data();
  for (int64_t i = 0; i < value.size(); ++i) {
    if (rng->Uniform() < rate) {
      m[i] = 0.0f;
      v[i] = 0.0f;
    } else {
      m[i] = keep_scale;
      v[i] *= keep_scale;
    }
  }
  return MakeOpNode(std::move(value), "dropout", {a},
                    [a, mask](VariableImpl* node) {
                      if (!a.requires_grad()) return;
                      Matrix g = node->grad;
                      g.Mul(*mask);
                      a.impl()->AccumulateGrad(g);
                    });
}

Variable ConcatCols(const Variable& a, const Variable& b) {
  RDD_CHECK_EQ(a.rows(), b.rows());
  return MakeOpNode(
      rdd::ConcatCols(a.value(), b.value()), "concat_cols", {a, b},
      [a, b](VariableImpl* node) {
        const int64_t a_cols = a.cols();
        const int64_t b_cols = b.cols();
        if (a.requires_grad()) {
          Matrix ga(a.rows(), a_cols);
          for (int64_t r = 0; r < a.rows(); ++r) {
            const float* src = node->grad.RowData(r);
            float* dst = ga.RowData(r);
            for (int64_t c = 0; c < a_cols; ++c) dst[c] = src[c];
          }
          a.impl()->AccumulateGrad(ga);
        }
        if (b.requires_grad()) {
          Matrix gb(b.rows(), b_cols);
          for (int64_t r = 0; r < b.rows(); ++r) {
            const float* src = node->grad.RowData(r);
            float* dst = gb.RowData(r);
            for (int64_t c = 0; c < b_cols; ++c) dst[c] = src[a_cols + c];
          }
          b.impl()->AccumulateGrad(gb);
        }
      });
}

Variable GatherRows(const Variable& a, const std::vector<int64_t>& indices) {
  const int64_t cols = a.cols();
  Matrix value(static_cast<int64_t>(indices.size()), cols);
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    RDD_CHECK_GE(r, 0);
    RDD_CHECK_LT(r, a.rows());
    const float* src = a.value().RowData(r);
    float* dst = value.RowData(static_cast<int64_t>(i));
    for (int64_t c = 0; c < cols; ++c) dst[c] = src[c];
  }
  return MakeOpNode(
      std::move(value), "gather_rows", {a},
      [a, indices](VariableImpl* node) {
        if (!a.requires_grad()) return;
        const int64_t cols = a.cols();
        Matrix ga(a.rows(), cols);
        // Sequential scatter-add: repeated indices accumulate in list
        // order, keeping the gradient bit-identical at any thread count.
        for (size_t i = 0; i < indices.size(); ++i) {
          const float* src = node->grad.RowData(static_cast<int64_t>(i));
          float* dst = ga.RowData(indices[i]);
          for (int64_t c = 0; c < cols; ++c) dst[c] += src[c];
        }
        a.impl()->AccumulateGrad(ga);
      });
}

Variable SumAll(const Variable& a) {
  Matrix value(1, 1);
  value.At(0, 0) = static_cast<float>(a.value().Sum());
  return MakeOpNode(std::move(value), "sum_all", {a},
                    [a](VariableImpl* node) {
                      if (!a.requires_grad()) return;
                      const float g = node->grad.At(0, 0);
                      a.impl()->AccumulateGrad(
                          Matrix::Constant(a.rows(), a.cols(), g));
                    });
}

Variable WeightedSum(const std::vector<Variable>& terms,
                     const std::vector<float>& coeffs) {
  RDD_CHECK(!terms.empty());
  RDD_CHECK_EQ(terms.size(), coeffs.size());
  Matrix value(1, 1);
  for (size_t i = 0; i < terms.size(); ++i) {
    RDD_CHECK_EQ(terms[i].rows(), 1);
    RDD_CHECK_EQ(terms[i].cols(), 1);
    value.At(0, 0) += coeffs[i] * terms[i].value().At(0, 0);
  }
  return MakeOpNode(std::move(value), "weighted_sum", terms,
                    [terms, coeffs](VariableImpl* node) {
                      const float g = node->grad.At(0, 0);
                      for (size_t i = 0; i < terms.size(); ++i) {
                        if (!terms[i].requires_grad()) continue;
                        Matrix gi(1, 1);
                        gi.At(0, 0) = g * coeffs[i];
                        terms[i].impl()->AccumulateGrad(gi);
                      }
                    });
}

Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int64_t>& labels,
                             const std::vector<int64_t>& indices,
                             Reduction reduction) {
  const Matrix& z = logits.value();
  RDD_CHECK_EQ(static_cast<int64_t>(labels.size()), z.rows());
  const float scale = ReductionScale(reduction, indices.size());

  // Fused path: softmax -> masked cross-entropy without materializing the
  // full log-softmax / softmax matrices — only the |indices| selected rows
  // are ever touched (the training mask is typically a small fraction of
  // the graph). Bit-identical to the unfused path: softmax_xent_fwd_row and
  // softmax_row replicate the LogSoftmaxRows / SoftmaxRows row arithmetic
  // exactly (simd.h). The choice is latched at construction so the tape
  // stays consistent if the flag flips mid-graph.
  const bool fused = flags::FuseEnabled();
  double loss = 0.0;
  if (fused) {
    simd::RecordFusionHit();
    simd::RecordFusedSoftmaxXent(static_cast<int64_t>(indices.size()),
                                 z.cols());
    const auto& kt = simd::K();
    for (int64_t i : indices) {
      RDD_CHECK_GE(i, 0);
      RDD_CHECK_LT(i, z.rows());
      const int64_t y = labels[static_cast<size_t>(i)];
      RDD_CHECK_GE(y, 0);
      RDD_CHECK_LT(y, z.cols());
      loss -= static_cast<double>(
          kt.softmax_xent_fwd_row(z.RowData(i), z.cols(), y));
    }
  } else {
    simd::RecordFusionMiss();
    const Matrix log_probs = LogSoftmaxRows(z);
    for (int64_t i : indices) {
      RDD_CHECK_GE(i, 0);
      RDD_CHECK_LT(i, z.rows());
      const int64_t y = labels[static_cast<size_t>(i)];
      RDD_CHECK_GE(y, 0);
      RDD_CHECK_LT(y, z.cols());
      loss -= log_probs.At(i, y);
    }
  }
  Matrix value(1, 1);
  value.At(0, 0) = static_cast<float>(loss) * scale;

  auto indices_copy = std::make_shared<std::vector<int64_t>>(indices);
  auto labels_copy = std::make_shared<std::vector<int64_t>>(labels);
  return MakeOpNode(
      std::move(value), "softmax_xent", {logits},
      [logits, indices_copy, labels_copy, scale, fused](VariableImpl* node) {
        if (!logits.requires_grad()) return;
        const float g = node->grad.At(0, 0) * scale;
        const Matrix& z = logits.value();
        Matrix grad(z.rows(), z.cols());
        const auto& kt = simd::K();
        if (fused) {
          // Per-selected-row softmax into pooled scratch; unselected rows
          // stay zero, exactly as in the unfused axpy loop below.
          memory::PooledBuffer scratch(static_cast<size_t>(z.cols()));
          for (int64_t i : *indices_copy) {
            kt.softmax_row(z.RowData(i), scratch.data(), z.cols());
            float* out = grad.RowData(i);
            kt.axpy(g, scratch.data(), out, z.cols());
            out[(*labels_copy)[static_cast<size_t>(i)]] -= g;
          }
        } else {
          const Matrix probs = SoftmaxRows(z);
          for (int64_t i : *indices_copy) {
            float* out = grad.RowData(i);
            kt.axpy(g, probs.RowData(i), out, z.cols());
            out[(*labels_copy)[static_cast<size_t>(i)]] -= g;
          }
        }
        logits.impl()->AccumulateGrad(grad);
      });
}

Variable RowSquaredError(const Variable& pred, const Matrix& target,
                         const std::vector<int64_t>& indices,
                         Reduction reduction) {
  const Matrix& p = pred.value();
  RDD_CHECK_EQ(p.rows(), target.rows());
  RDD_CHECK_EQ(p.cols(), target.cols());
  // kMean averages over ELEMENTS (rows x cols), not rows, so the loss scale
  // is independent of both the reliable-set size and the embedding width —
  // this keeps the paper's gamma comparable across datasets.
  const float scale =
      ReductionScale(reduction, indices.size() *
                                    static_cast<size_t>(p.cols()));

  double loss = 0.0;
  for (int64_t i : indices) {
    RDD_CHECK_GE(i, 0);
    RDD_CHECK_LT(i, p.rows());
    const float* a = p.RowData(i);
    const float* b = target.RowData(i);
    for (int64_t c = 0; c < p.cols(); ++c) {
      const double d = static_cast<double>(a[c]) - b[c];
      loss += d * d;
    }
  }
  Matrix value(1, 1);
  value.At(0, 0) = static_cast<float>(loss) * scale;

  auto indices_copy = std::make_shared<std::vector<int64_t>>(indices);
  auto target_copy = std::make_shared<Matrix>(target);
  return MakeOpNode(
      std::move(value), "row_mse", {pred},
      [pred, indices_copy, target_copy, scale](VariableImpl* node) {
        if (!pred.requires_grad()) return;
        const float g = 2.0f * node->grad.At(0, 0) * scale;
        const Matrix& p = pred.value();
        Matrix grad(p.rows(), p.cols());
        const auto& kt = simd::K();
        for (int64_t i : *indices_copy) {
          kt.scaled_diff_accum(g, p.RowData(i), target_copy->RowData(i),
                               grad.RowData(i), p.cols());
        }
        pred.impl()->AccumulateGrad(grad);
      });
}

Variable EdgeLaplacian(const Variable& emb,
                       const std::vector<std::pair<int64_t, int64_t>>& edges,
                       Reduction reduction) {
  const Matrix& f = emb.value();
  // Element-wise mean, for the same scale-freeness reason as
  // RowSquaredError.
  const float scale =
      ReductionScale(reduction, edges.size() *
                                    static_cast<size_t>(f.cols()));

  double loss = 0.0;
  for (const auto& [i, j] : edges) {
    RDD_CHECK_GE(i, 0);
    RDD_CHECK_LT(i, f.rows());
    RDD_CHECK_GE(j, 0);
    RDD_CHECK_LT(j, f.rows());
    const float* a = f.RowData(i);
    const float* b = f.RowData(j);
    for (int64_t c = 0; c < f.cols(); ++c) {
      const double d = static_cast<double>(a[c]) - b[c];
      loss += d * d;
    }
  }
  Matrix value(1, 1);
  value.At(0, 0) = static_cast<float>(loss) * scale;

  auto edges_copy =
      std::make_shared<std::vector<std::pair<int64_t, int64_t>>>(edges);
  return MakeOpNode(
      std::move(value), "edge_laplacian", {emb},
      [emb, edges_copy, scale](VariableImpl* node) {
        if (!emb.requires_grad()) return;
        const float g = 2.0f * node->grad.At(0, 0) * scale;
        const Matrix& f = emb.value();
        Matrix grad(f.rows(), f.cols());
        const auto& kt = simd::K();
        for (const auto& [i, j] : *edges_copy) {
          const float* a = f.RowData(i);
          const float* b = f.RowData(j);
          // gi += g*(a-b); gj += (-g)*(a-b). Negating g is exact, so the two
          // updates stay exact mirrors of each other.
          kt.scaled_diff_accum(g, a, b, grad.RowData(i), f.cols());
          kt.scaled_diff_accum(-g, a, b, grad.RowData(j), f.cols());
        }
        emb.impl()->AccumulateGrad(grad);
      });
}

Variable SoftCrossEntropy(const Variable& logits, const Matrix& target_probs,
                          const std::vector<int64_t>& indices,
                          Reduction reduction) {
  const Matrix& z = logits.value();
  RDD_CHECK_EQ(z.rows(), target_probs.rows());
  RDD_CHECK_EQ(z.cols(), target_probs.cols());
  const float scale = ReductionScale(reduction, indices.size());

  const Matrix log_probs = LogSoftmaxRows(z);
  double loss = 0.0;
  for (int64_t i : indices) {
    RDD_CHECK_GE(i, 0);
    RDD_CHECK_LT(i, z.rows());
    const float* t = target_probs.RowData(i);
    const float* lp = log_probs.RowData(i);
    for (int64_t c = 0; c < z.cols(); ++c) {
      loss -= static_cast<double>(t[c]) * lp[c];
    }
  }
  Matrix value(1, 1);
  value.At(0, 0) = static_cast<float>(loss) * scale;

  auto indices_copy = std::make_shared<std::vector<int64_t>>(indices);
  auto target_copy = std::make_shared<Matrix>(target_probs);
  return MakeOpNode(
      std::move(value), "soft_xent", {logits},
      [logits, indices_copy, target_copy, scale](VariableImpl* node) {
        if (!logits.requires_grad()) return;
        const float g = node->grad.At(0, 0) * scale;
        const Matrix& z = logits.value();
        Matrix grad(z.rows(), z.cols());
        const Matrix probs = SoftmaxRows(z);
        const auto& kt = simd::K();
        for (int64_t i : *indices_copy) {
          // d/dz of -sum_c t_c log softmax(z)_c = softmax(z) - t
          // (valid when t sums to 1).
          kt.scaled_diff_accum(g, probs.RowData(i), target_copy->RowData(i),
                               grad.RowData(i), z.cols());
        }
        logits.impl()->AccumulateGrad(grad);
      });
}

Variable WeightedSoftCrossEntropy(const Variable& logits,
                                  const Matrix& target_probs,
                                  const std::vector<int64_t>& indices,
                                  const std::vector<float>& weights,
                                  Reduction reduction) {
  const Matrix& z = logits.value();
  RDD_CHECK_EQ(z.rows(), target_probs.rows());
  RDD_CHECK_EQ(z.cols(), target_probs.cols());
  RDD_CHECK_EQ(static_cast<int64_t>(weights.size()), z.rows());

  double weight_sum = 0.0;
  for (int64_t i : indices) {
    RDD_CHECK_GE(i, 0);
    RDD_CHECK_LT(i, z.rows());
    RDD_CHECK_GE(weights[static_cast<size_t>(i)], 0.0f);
    weight_sum += weights[static_cast<size_t>(i)];
  }
  const float scale =
      reduction == Reduction::kMean
          ? (weight_sum > 0.0 ? static_cast<float>(1.0 / weight_sum) : 0.0f)
          : 1.0f;

  const Matrix log_probs = LogSoftmaxRows(z);
  double loss = 0.0;
  for (int64_t i : indices) {
    const float w = weights[static_cast<size_t>(i)];
    if (w == 0.0f) continue;
    const float* t = target_probs.RowData(i);
    const float* lp = log_probs.RowData(i);
    double row = 0.0;
    for (int64_t c = 0; c < z.cols(); ++c) {
      row -= static_cast<double>(t[c]) * lp[c];
    }
    loss += w * row;
  }
  Matrix value(1, 1);
  value.At(0, 0) = static_cast<float>(loss) * scale;

  auto indices_copy = std::make_shared<std::vector<int64_t>>(indices);
  auto weights_copy = std::make_shared<std::vector<float>>(weights);
  auto target_copy = std::make_shared<Matrix>(target_probs);
  return MakeOpNode(
      std::move(value), "weighted_soft_xent", {logits},
      [logits, indices_copy, weights_copy, target_copy,
       scale](VariableImpl* node) {
        if (!logits.requires_grad()) return;
        const float g = node->grad.At(0, 0) * scale;
        const Matrix& z = logits.value();
        Matrix grad(z.rows(), z.cols());
        const Matrix probs = SoftmaxRows(z);
        const auto& kt = simd::K();
        for (int64_t i : *indices_copy) {
          const float w = (*weights_copy)[static_cast<size_t>(i)];
          if (w == 0.0f) continue;
          // Same softmax-minus-target gradient as SoftCrossEntropy, scaled
          // by the per-node reliability weight.
          kt.scaled_diff_accum(g * w, probs.RowData(i),
                               target_copy->RowData(i), grad.RowData(i),
                               z.cols());
        }
        logits.impl()->AccumulateGrad(grad);
      });
}

}  // namespace rdd::ag
