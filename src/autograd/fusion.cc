#include "autograd/fusion.h"

#include <utility>

#include "autograd/ops.h"
#include "simd/kernel_stats.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/runtime_flags.h"

namespace rdd::ag {

using autograd_internal::MakeOpNode;
using autograd_internal::VariableImpl;

Variable FusedLinearRelu(const Variable& x, const Variable& w,
                         const Variable& bias) {
  RDD_CHECK_EQ(x.cols(), w.rows());
  if (!flags::FuseEnabled() || !bias.defined()) {
    simd::RecordFusionMiss();
    Variable z = Matmul(x, w);
    if (bias.defined()) z = AddBias(z, bias);
    return Relu(z);
  }
  simd::RecordFusionHit();
  Matrix value = MatmulBiasRelu(x.value(), w.value(), bias.value());
  return MakeOpNode(
      std::move(value), "linear_relu_fused", {x, w, bias},
      [x, w, bias](VariableImpl* node) {
        // The ReLU mask comes from the node's own output (still alive while
        // its backward rule runs): out > 0 iff the pre-activation was > 0.
        Matrix gz = ReluBackward(node->grad, node->value);
        if (bias.requires_grad()) {
          bias.impl()->AccumulateGrad(ColumnSums(gz));
        }
        if (x.requires_grad()) {
          x.impl()->AccumulateGrad(MatmulTransposeB(gz, w.value()));
        }
        if (w.requires_grad()) {
          w.impl()->AccumulateGrad(MatmulTransposeA(x.value(), gz));
        }
      });
}

Variable FusedSpmmBiasRelu(const SparseMatrix* s, const Variable& m,
                           const Variable& bias) {
  RDD_CHECK(s != nullptr);
  RDD_CHECK_EQ(s->cols(), m.rows());
  if (!flags::FuseEnabled() || !bias.defined()) {
    simd::RecordFusionMiss();
    Variable z = SpmmConst(s, m);
    if (bias.defined()) z = AddBias(z, bias);
    return Relu(z);
  }
  simd::RecordFusionHit();
  Matrix value = s->MultiplyBiasRelu(m.value(), bias.value());
  return MakeOpNode(
      std::move(value), "spmm_bias_relu_fused", {m, bias},
      [s, m, bias](VariableImpl* node) {
        Matrix gz = ReluBackward(node->grad, node->value);
        if (bias.requires_grad()) {
          bias.impl()->AccumulateGrad(ColumnSums(gz));
        }
        if (m.requires_grad()) {
          m.impl()->AccumulateGrad(s->TransposeMultiply(gz));
        }
      });
}

}  // namespace rdd::ag
