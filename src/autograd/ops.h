#ifndef RDD_AUTOGRAD_OPS_H_
#define RDD_AUTOGRAD_OPS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "tensor/matrix.h"
#include "tensor/sparse.h"
#include "util/random.h"

namespace rdd::ag {

/// How a set-indexed loss is reduced to a scalar.
enum class Reduction {
  /// Average over the index set (empty set -> 0 loss). For the row/edge
  /// squared-error losses this averages over ELEMENTS (set size x width) so
  /// the loss scale is independent of both set size and embedding width.
  kMean,
  kSum,  ///< Plain sum, matching the paper's equations literally.
};

/// Returns a * b (dense matmul). Gradients flow to both inputs.
Variable Matmul(const Variable& a, const Variable& b);

/// Returns s * b where `s` is a constant sparse matrix (e.g. the normalized
/// adjacency or the bag-of-words feature matrix). The caller must keep `s`
/// alive until Backward() completes; models own their propagation matrices
/// for exactly this reason. Gradient: d/db = transpose(s) * grad.
Variable SpmmConst(const SparseMatrix* s, const Variable& b);

/// Returns a + b (same shape).
Variable Add(const Variable& a, const Variable& b);

/// Returns a - b (same shape).
Variable Sub(const Variable& a, const Variable& b);

/// Returns a with the 1 x cols bias row broadcast-added to every row.
Variable AddBias(const Variable& a, const Variable& bias_row);

/// Returns factor * a.
Variable Scale(const Variable& a, float factor);

/// Elementwise max(0, x).
Variable Relu(const Variable& a);

/// Row-wise softmax. Backward uses the exact Jacobian
/// dL/dz_i = p_i * (g_i - sum_j g_j p_j) per row.
Variable Softmax(const Variable& logits);

/// Inverted dropout: during training, zeroes entries with probability
/// `rate` and scales survivors by 1/(1-rate); identity when !training.
/// Requires 0 <= rate < 1.
Variable Dropout(const Variable& a, float rate, bool training, Rng* rng);

/// Horizontal concatenation [a | b]; gradients are split back.
Variable ConcatCols(const Variable& a, const Variable& b);

/// Row gather: out row i = a row indices[i]. Indices may repeat; backward
/// scatter-adds each output-row gradient into its source row (sequential,
/// so repeated indices accumulate deterministically). This is how view-local
/// tensors (e.g. a mini-batch's target rows) are cut out of a larger
/// activation inside the tape.
Variable GatherRows(const Variable& a, const std::vector<int64_t>& indices);

/// Sum of all entries as a 1x1 scalar.
Variable SumAll(const Variable& a);

/// Weighted sum of 1x1 scalars: sum_i coeffs[i] * terms[i]. Terms and
/// coefficients must have equal, nonzero length.
Variable WeightedSum(const std::vector<Variable>& terms,
                     const std::vector<float>& coeffs);

/// Supervised loss L1 (Eq. 6): softmax cross-entropy of `logits` rows listed
/// in `indices` against integer `labels` (indexed by node id). Fused
/// softmax+CE for numerical stability; gradient is (softmax - onehot) on the
/// selected rows only.
Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int64_t>& labels,
                             const std::vector<int64_t>& indices,
                             Reduction reduction);

/// Distillation loss L2 (Eq. 7): sum over `indices` of the squared L2
/// distance between rows of `pred` and the constant `target` rows
/// (the teacher's embeddings F_{t-1}).
Variable RowSquaredError(const Variable& pred, const Matrix& target,
                         const std::vector<int64_t>& indices,
                         Reduction reduction);

/// Reliable-edge regularizer Lreg (Eq. 9): sum over the listed (i, j) edges
/// of ||emb_i - emb_j||^2.
Variable EdgeLaplacian(const Variable& emb,
                       const std::vector<std::pair<int64_t, int64_t>>& edges,
                       Reduction reduction);

/// KD mimic loss: mean over `indices` of the cross-entropy between constant
/// teacher distributions `target_probs` (row-stochastic) and the student's
/// softmax(logits). Used by the BANs baseline, which distills softmax
/// outputs rather than embeddings.
Variable SoftCrossEntropy(const Variable& logits, const Matrix& target_probs,
                          const std::vector<int64_t>& indices,
                          Reduction reduction);

/// Reliability-weighted mimic loss for GNN-to-MLP distillation: sum over
/// `indices` of weights[i] * CE(target_probs_i, softmax(logits)_i), where
/// `weights` is indexed by node id (size = logits rows, entries >= 0).
/// kMean divides by the sum of the selected weights (0 loss when that sum
/// is 0), so the loss scale is invariant to how confident the teacher is
/// overall. With all selected weights equal to 1 this reduces exactly to
/// SoftCrossEntropy.
Variable WeightedSoftCrossEntropy(const Variable& logits,
                                  const Matrix& target_probs,
                                  const std::vector<int64_t>& indices,
                                  const std::vector<float>& weights,
                                  Reduction reduction);

}  // namespace rdd::ag

#endif  // RDD_AUTOGRAD_OPS_H_
