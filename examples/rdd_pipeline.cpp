// Full RDD pipeline walkthrough: generates one of the four paper datasets
// (selected on the command line), trains the complete method with the
// paper's settings, and prints per-student progress, ensemble weights, and
// reliability diagnostics — the programmatic equivalent of Sec. 4 of the
// paper.
//
//   ./build/examples/rdd_pipeline [cora|citeseer|pubmed|nell]

#include <cstdio>
#include <string>

#include "core/rdd_config.h"
#include "core/rdd_trainer.h"
#include "data/citation_gen.h"
#include "ensemble/bagging.h"
#include "nn/metrics.h"
#include "train/trainer.h"

namespace {

rdd::CitationGenConfig PickDataset(const std::string& name) {
  if (name == "citeseer") return rdd::CiteseerLikeConfig();
  if (name == "pubmed") return rdd::PubmedLikeConfig();
  if (name == "nell") return rdd::NellLikeConfig();
  return rdd::CoraLikeConfig();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "cora";
  const rdd::CitationGenConfig gen = PickDataset(name);

  std::printf("Generating %s ...\n", gen.name.c_str());
  const rdd::Dataset dataset = rdd::GenerateCitationNetwork(gen, 42);
  const rdd::GraphContext context = rdd::GraphContext::FromDataset(dataset);
  std::printf("  %lld nodes, %lld edges, %lld classes, %zu labeled nodes\n\n",
              static_cast<long long>(dataset.NumNodes()),
              static_cast<long long>(dataset.graph.num_edges()),
              static_cast<long long>(dataset.num_classes),
              dataset.split.train.size());

  // Paper settings: T = 5 base models, p = 40, beta = 10; gamma per dataset.
  rdd::RddConfig config;
  config.num_base_models = 5;
  config.gamma_initial = name == "citeseer" || name == "pubmed" ? 3.0f : 1.0f;
  if (name == "nell") {
    config.base_model.hidden_dim = 64;
    config.base_model.dropout = 0.2f;
    config.train.weight_decay = 1e-5f;
  }

  std::printf("Training RDD (T=%d, p=%.0f, gamma=%.1f, beta=%.0f) ...\n",
              config.num_base_models, config.reliability.p_percent,
              config.gamma_initial, config.beta);
  const rdd::RddResult result = rdd::TrainRdd(dataset, context, config, 7);

  double weight_sum = 0.0;
  for (double a : result.alphas) weight_sum += a;
  for (int t = 0; t < result.teacher.size(); ++t) {
    const double member_acc =
        rdd::Accuracy(result.teacher.member_probs(t), dataset.labels,
                      dataset.split.test);
    std::printf(
        "  student %d: %3d epochs, test %.1f%%, ensemble-so-far %.1f%%, "
        "alpha %.3f",
        t, result.reports[static_cast<size_t>(t)].epochs_run,
        100.0 * member_acc,
        100.0 * result.ensemble_accuracy_after_member[static_cast<size_t>(t)],
        result.alphas[static_cast<size_t>(t)] / weight_sum);
    if (t > 0) {
      const rdd::StudentDiagnostics& diag =
          result.diagnostics[static_cast<size_t>(t)];
      std::printf("  |Vr|=%lld |Vb|=%lld |Er|=%lld",
                  static_cast<long long>(diag.reliable_nodes),
                  static_cast<long long>(diag.distill_nodes),
                  static_cast<long long>(diag.reliable_edges));
    }
    std::printf("\n");
  }

  std::printf("\nRDD(Single):   %.1f%%\n",
              100.0 * result.single_test_accuracy);
  std::printf("RDD(Ensemble): %.1f%%   (trained in %.1fs)\n",
              100.0 * result.ensemble_test_accuracy, result.total_seconds);
  return 0;
}
