// Semi-supervised method zoo: runs every SSL strategy the paper discusses
// (Sec. 1.1 and Sec. 5) on one Cora-like network and prints a leaderboard —
// label propagation, self-training, co-training, plain GCN, the deep-GCN
// family, Bagging, BANs, and RDD.
//
//   ./build/examples/ensemble_zoo

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/rdd_trainer.h"
#include "data/citation_gen.h"
#include "ensemble/bagging.h"
#include "ensemble/bans.h"
#include "ensemble/co_training.h"
#include "ensemble/mean_teacher.h"
#include "ensemble/self_training.h"
#include "ensemble/snapshot.h"
#include "models/label_propagation.h"
#include "models/model_factory.h"
#include "nn/metrics.h"
#include "train/trainer.h"
#include "util/string_util.h"
#include "util/table_writer.h"
#include "util/timer.h"

using namespace rdd;

int main() {
  const Dataset dataset = GenerateCitationNetwork(CoraLikeConfig(), 42);
  const GraphContext context = GraphContext::FromDataset(dataset);
  const TrainConfig train;
  std::printf("Dataset: %s (%lld nodes, label rate %.1f%%)\n\n",
              dataset.name.c_str(),
              static_cast<long long>(dataset.NumNodes()),
              100.0 * dataset.LabelRate());

  struct Row {
    std::string name;
    double accuracy;
    double seconds;
  };
  std::vector<Row> rows;
  auto timed = [&rows](std::string name, auto fn) {
    WallTimer timer;
    const double acc = fn();
    rows.push_back({std::move(name), acc, timer.ElapsedSeconds()});
    std::printf("  %-18s done (%.1f%%)\n", rows.back().name.c_str(),
                100.0 * acc);
    std::fflush(stdout);
  };

  timed("LP", [&] {
    return Accuracy(PropagateLabels(dataset), dataset.labels,
                    dataset.split.test);
  });
  timed("Self-Training", [&] {
    SelfTrainingConfig config;
    return TrainSelfTraining(dataset, context, config, 1).test_accuracy;
  });
  timed("Co-Training", [&] {
    CoTrainingConfig config;
    return TrainCoTraining(dataset, context, config, 1).test_accuracy;
  });
  timed("GCN", [&] {
    auto model = BuildModel(context, ModelConfig{}, 1);
    return TrainSupervised(model.get(), dataset, train).test_accuracy;
  });
  for (auto [kind, name] :
       {std::pair{ModelKind::kResGcn, "ResGCN"},
        std::pair{ModelKind::kDenseGcn, "DenseGCN"},
        std::pair{ModelKind::kJkNet, "JK-Net"},
        std::pair{ModelKind::kAppnp, "APPNP"},
        std::pair{ModelKind::kGat, "GAT"},
        std::pair{ModelKind::kGraphSage, "GraphSAGE"}}) {
    timed(name, [&, kind = kind] {
      ModelConfig config;
      config.kind = kind;
      config.num_layers = 3;
      config.hidden_dim = kind == ModelKind::kAppnp ? 32
                          : kind == ModelKind::kGat ? 8
                                                    : 16;
      auto model = BuildModel(context, config, 1);
      return TrainSupervised(model.get(), dataset, train).test_accuracy;
    });
  }
  timed("Snapshot (5)", [&] {
    SnapshotConfig config;
    return TrainSnapshotEnsemble(dataset, context, config, 1)
        .ensemble_test_accuracy;
  });
  timed("Mean Teacher", [&] {
    MeanTeacherConfig config;
    return TrainMeanTeacher(dataset, context, config, 1)
        .teacher_test_accuracy;
  });
  timed("Bagging (5)", [&] {
    BaggingConfig config;
    return TrainBagging(dataset, context, config, 1).ensemble_test_accuracy;
  });
  timed("BANs (5)", [&] {
    BansConfig config;
    return TrainBans(dataset, context, config, 1).ensemble_test_accuracy;
  });
  double rdd_single = 0.0;
  timed("RDD(Ensemble, 5)", [&] {
    RddConfig config;
    const RddResult result = TrainRdd(dataset, context, config, 1);
    rdd_single = result.single_test_accuracy;
    return result.ensemble_test_accuracy;
  });
  rows.push_back({"RDD(Single)", rdd_single, 0.0});

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.accuracy > b.accuracy; });
  TableWriter table({"Method", "Test accuracy (%)", "Train time (s)"});
  for (const Row& row : rows) {
    table.AddRow({row.name, FormatDouble(100.0 * row.accuracy, 1),
                  FormatDouble(row.seconds, 2)});
  }
  std::printf("\nLeaderboard:\n%s", table.Render().c_str());
  return 0;
}
