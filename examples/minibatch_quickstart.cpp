// Mini-batch quickstart: train the same GCN on a Cora-like graph twice —
// classic full-batch and neighbor-sampled mini-batch — then run mini-batch
// RDD, showing that the sampled path tracks full-batch accuracy while never
// materializing a full-graph activation during training.
//
//   ./build/examples/minibatch_quickstart
//
// Knobs (see README "Mini-batch training"): RDD_MB_BATCH, RDD_MB_FANOUT,
// RDD_MB_SHARDS, RDD_MB_SAMPLED_EVAL.

#include <cstdio>

#include "core/rdd_config.h"
#include "core/rdd_trainer.h"
#include "data/citation_gen.h"
#include "models/model_factory.h"
#include "train/minibatch.h"
#include "train/trainer.h"

int main() {
  const rdd::Dataset dataset =
      rdd::GenerateCitationNetwork(rdd::CoraLikeConfig(), /*seed=*/42);
  const rdd::GraphContext context = rdd::GraphContext::FromDataset(dataset);
  std::printf("dataset: %s, %lld nodes, %lld edges\n", dataset.name.c_str(),
              static_cast<long long>(dataset.NumNodes()),
              static_cast<long long>(dataset.graph.num_edges()));

  rdd::TrainConfig train_config;

  // 1. Full-batch baseline: one forward over the whole graph per epoch.
  auto full_gcn = rdd::BuildModel(context, rdd::ModelConfig{}, /*seed=*/1);
  const rdd::TrainReport full_report =
      rdd::TrainSupervised(full_gcn.get(), dataset, train_config);
  std::printf("GCN full-batch:  test accuracy %.1f%% (%d epochs)\n",
              100.0 * full_report.test_accuracy, full_report.epochs_run);

  // 2. The same model trained mini-batch: each epoch re-batches the labeled
  //    nodes, samples a bounded neighbor frontier per batch (GraphSAGE-style
  //    fan-outs), and steps on each induced view. RDD_MB_* env vars override
  //    these defaults.
  rdd::MiniBatchConfig mb = rdd::MiniBatchConfig::FromEnv();
  auto mb_gcn = rdd::BuildModel(context, rdd::ModelConfig{}, /*seed=*/1);
  const rdd::TrainReport mb_report =
      rdd::TrainMiniBatchSupervised(mb_gcn.get(), dataset, train_config, mb);
  std::printf("GCN mini-batch:  test accuracy %.1f%% (%d epochs, batch %lld",
              100.0 * mb_report.test_accuracy, mb_report.epochs_run,
              static_cast<long long>(mb.batch_size));
  if (mb.num_shards > 0) {
    std::printf(", %lld shards)\n", static_cast<long long>(mb.num_shards));
  } else {
    std::printf(", fan-outs");
    for (int64_t f : mb.fanouts) std::printf(" %lld", static_cast<long long>(f));
    std::printf(")\n");
  }

  // 3. Mini-batch RDD: Algorithm 3 with per-batch reliability filtering.
  rdd::RddConfig rdd_config;
  rdd_config.num_base_models = 3;
  rdd_config.train = train_config;
  const rdd::RddResult rdd_result =
      rdd::TrainRddMiniBatch(dataset, context, rdd_config, mb, /*seed=*/1);
  std::printf("RDD mini-batch:  single %.1f%%, ensemble %.1f%% (%.2fs)\n",
              100.0 * rdd_result.single_test_accuracy,
              100.0 * rdd_result.ensemble_test_accuracy,
              rdd_result.total_seconds);
  return 0;
}
