// Quickstart: generate a Cora-like citation network, train a plain 2-layer
// GCN, then train RDD with 3 base models and compare test accuracies.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/rdd_config.h"
#include "core/rdd_trainer.h"
#include "data/citation_gen.h"
#include "models/model_factory.h"
#include "train/trainer.h"

int main() {
  // 1. Data: a synthetic stand-in for Cora (2708 nodes, 7 classes,
  //    20 labeled nodes per class).
  const rdd::Dataset dataset =
      rdd::GenerateCitationNetwork(rdd::CoraLikeConfig(), /*seed=*/42);
  const rdd::GraphContext context = rdd::GraphContext::FromDataset(dataset);
  std::printf("dataset: %s, %lld nodes, %lld edges, label rate %.1f%%\n",
              dataset.name.c_str(),
              static_cast<long long>(dataset.NumNodes()),
              static_cast<long long>(dataset.graph.num_edges()),
              100.0 * dataset.LabelRate());

  // 2. Baseline: one plain GCN.
  rdd::ModelConfig gcn_config;  // 2 layers, 16 hidden units, dropout 0.5.
  auto gcn = rdd::BuildModel(context, gcn_config, /*seed=*/1);
  rdd::TrainConfig train_config;
  const rdd::TrainReport gcn_report =
      rdd::TrainSupervised(gcn.get(), dataset, train_config);
  std::printf("GCN:           test accuracy %.1f%% (%d epochs, %.2fs)\n",
              100.0 * gcn_report.test_accuracy, gcn_report.epochs_run,
              gcn_report.train_seconds);

  // 3. RDD: self-boosting reliable data distillation (Algorithm 3).
  rdd::RddConfig rdd_config;
  rdd_config.num_base_models = 3;
  rdd_config.train = train_config;
  const rdd::RddResult rdd_result =
      rdd::TrainRdd(dataset, context, rdd_config, /*seed=*/1);
  std::printf("RDD(Single):   test accuracy %.1f%%\n",
              100.0 * rdd_result.single_test_accuracy);
  std::printf("RDD(Ensemble): test accuracy %.1f%% (%.2fs total)\n",
              100.0 * rdd_result.ensemble_test_accuracy,
              rdd_result.total_seconds);
  return 0;
}
