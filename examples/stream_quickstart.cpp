// Streaming quickstart — the full grow → retrain-incrementally loop on a
// small synthetic citation network:
//
//   1. split a finished dataset into a base snapshot + a 2-delta replay
//      stream (SplitIntoStream),
//   2. train an RDD ensemble on the base,
//   3. apply each delta to the StreamingGraph and warm-start retrain only
//      the delta's k-hop neighborhood (IncrementalRddOnDelta),
//   4. verify the streamed CSR state is BIT-IDENTICAL to rebuilding the
//      context from scratch — the contract stream_test.cc pins,
//   5. compare the incremental result against a from-scratch TrainRdd on
//      the final graph.
//
//   ./build/examples/stream_quickstart
//
// Exits non-zero on any failure; CI runs this binary as the streaming
// smoke test.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/rdd_config.h"
#include "core/rdd_trainer.h"
#include "data/citation_gen.h"
#include "stream/graph_delta.h"
#include "stream/incremental_rdd.h"
#include "stream/streaming_graph.h"
#include "util/timer.h"

namespace {

void ExitOnError(const rdd::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FAIL (%s): %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

/// Exact CSR equality — the streaming contract is bit-identity, so any
/// difference at all is a failure.
bool SparseEq(const rdd::SparseMatrix& a, const rdd::SparseMatrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         a.row_ptr() == b.row_ptr() && a.col_idx() == b.col_idx() &&
         a.values() == b.values();
}

}  // namespace

int main() {
  // 1. A small Cora-like dataset, then hold out 8% of the edges and 5% of
  //    the unlabeled nodes into a 2-delta replay stream.
  rdd::CitationGenConfig gen;
  gen.num_nodes = 600;
  gen.num_features = 120;
  gen.num_edges = 1500;
  gen.num_classes = 4;
  gen.labeled_per_class = 10;
  gen.val_size = 80;
  gen.test_size = 120;
  const rdd::Dataset full = rdd::GenerateCitationNetwork(gen, /*seed=*/42);

  rdd::stream::StreamSplitOptions split;
  split.edge_holdout = 0.08;
  split.node_holdout = 0.05;
  split.num_deltas = 2;
  const rdd::stream::ReplayStream replay =
      rdd::stream::SplitIntoStream(full, split, /*seed=*/42);
  rdd::stream::StreamingGraph graph(replay.base);
  std::printf("base: %lld nodes, %lld edges; %zu deltas queued\n",
              static_cast<long long>(graph.dataset().NumNodes()),
              static_cast<long long>(graph.dataset().graph.num_edges()),
              replay.deltas.size());

  // 2. Train the ensemble on the base snapshot.
  rdd::RddConfig config;
  config.num_base_models = 2;
  config.train.max_epochs = 120;
  rdd::RddResult result =
      rdd::TrainRdd(graph.dataset(), graph.context(), config, /*seed=*/1);
  std::printf("base ensemble: test accuracy %.1f%%\n",
              100.0 * result.ensemble_test_accuracy);

  // 3. Replay: apply each delta, then warm-start retrain the ensemble on
  //    the delta's 2-hop neighborhood only. Each retrain's teacher is the
  //    previous ensemble, so accuracy carries forward instead of resetting.
  const rdd::stream::IncrementalConfig inc_config =
      rdd::stream::IncrementalConfigFromEnv();
  for (size_t i = 0; i < replay.deltas.size(); ++i) {
    const rdd::stream::GraphDelta& delta = replay.deltas[i];
    const int64_t nodes_before = graph.dataset().NumNodes();
    ExitOnError(graph.Apply(delta), "apply delta");

    rdd::WallTimer timer;
    const rdd::stream::IncrementalResult inc =
        rdd::stream::IncrementalRddOnDelta(graph, delta, nodes_before, result,
                                           config, inc_config, /*seed=*/1);
    result = inc.result;
    std::printf("delta %zu: +%zu nodes, +%zu edges -> retrained %lld of "
                "%lld nodes in %.2fs, test accuracy %.1f%%\n",
                i, delta.added_nodes.size(), delta.added_edges.size(),
                static_cast<long long>(inc.affected_nodes),
                static_cast<long long>(graph.dataset().NumNodes()),
                timer.ElapsedSeconds(),
                100.0 * result.ensemble_test_accuracy);
  }

  // 4. The streamed state must be bit-identical to a from-scratch rebuild:
  //    same CSR arrays, same normalized adjacency values.
  const rdd::GraphContext rebuilt =
      rdd::GraphContext::FromDataset(graph.dataset());
  if (!SparseEq(*graph.context().features, *rebuilt.features) ||
      !SparseEq(*graph.context().adj_norm, *rebuilt.adj_norm) ||
      !SparseEq(*graph.context().adj_row, *rebuilt.adj_row)) {
    std::fprintf(stderr,
                 "FAIL: streamed context differs from a from-scratch "
                 "rebuild\n");
    return 1;
  }
  std::printf("streamed CSR state is bit-identical to a from-scratch "
              "rebuild\n");

  // 5. Reference point: a full retrain on the final graph.
  rdd::WallTimer full_timer;
  const rdd::RddResult from_scratch =
      rdd::TrainRdd(graph.dataset(), graph.context(), config, /*seed=*/1);
  std::printf("full retrain: test accuracy %.1f%% in %.2fs (incremental "
              "ended at %.1f%%)\n",
              100.0 * from_scratch.ensemble_test_accuracy,
              full_timer.ElapsedSeconds(),
              100.0 * result.ensemble_test_accuracy);

  std::printf("OK\n");
  return 0;
}
