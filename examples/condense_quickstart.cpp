// Condensed-training quickstart: condense a Cora-like graph to a few
// hundred synthetic nodes, run the full RDD student chain ON the condensed
// graph while validating on the full graph, and compare accuracy and
// wall-clock against the classic full-graph run.
//
//   ./build/examples/condense_quickstart
//
// Knobs (see README "Environment variables"): RDD_CONDENSE (off|cluster|
// eigen), RDD_CONDENSE_RATIO, RDD_CONDENSE_PROP_STEPS, RDD_CONDENSE_EIGEN_K,
// RDD_CONDENSE_EVAL_EVERY, RDD_CONDENSE_WARMUP. Unset RDD_CONDENSE defaults
// to "cluster" here (so the quickstart demonstrates condensation out of the
// box); an explicit RDD_CONDENSE=0/off makes the second run delegate to
// TrainRdd byte-for-byte — CI's condense-smoke job asserts the two printed
// ensemble accuracies coincide in that mode.

#include <cstdio>
#include <cstdlib>

#include "core/condensed_trainer.h"
#include "core/rdd_config.h"
#include "core/rdd_trainer.h"
#include "data/citation_gen.h"
#include "graph/condense/condense.h"
#include "models/graph_model.h"
#include "util/timer.h"

int main() {
  const rdd::Dataset dataset =
      rdd::GenerateCitationNetwork(rdd::CoraLikeConfig(), /*seed=*/42);
  const rdd::GraphContext context = rdd::GraphContext::FromDataset(dataset);
  std::printf("dataset: %s, %lld nodes, %lld edges, %lld classes\n",
              dataset.name.c_str(),
              static_cast<long long>(dataset.NumNodes()),
              static_cast<long long>(dataset.graph.num_edges()),
              static_cast<long long>(dataset.num_classes));

  rdd::RddConfig config;
  config.num_base_models = 3;

  // 1. Classic RDD: every epoch of every student forwards the full graph.
  rdd::WallTimer timer;
  const rdd::RddResult full =
      rdd::TrainRdd(dataset, context, config, /*seed=*/1);
  const double full_seconds = timer.ElapsedSeconds();
  std::printf("RDD full graph:  ensemble %.1f%%, single %.1f%% (%.2fs)\n",
              100.0 * full.ensemble_test_accuracy,
              100.0 * full.single_test_accuracy, full_seconds);

  // 2. Condensed RDD: training epochs touch only the synthetic nodes; early
  //    stopping, ensemble weights, and the reported accuracies all come from
  //    full-graph forwards. RDD_CONDENSE_* env vars override the defaults;
  //    only an EXPLICIT RDD_CONDENSE=0/off keeps the method off (delegating
  //    to TrainRdd) — unset defaults to cluster for the demo.
  rdd::condense::CondenseConfig condense =
      rdd::condense::CondenseConfig::FromEnv();
  if (std::getenv("RDD_CONDENSE") == nullptr) {
    condense.method = rdd::condense::Method::kCluster;
  }
  timer.Restart();
  const rdd::CondensedRddResult small =
      rdd::TrainRddCondensed(dataset, context, config, condense, /*seed=*/1);
  const double small_seconds = timer.ElapsedSeconds();
  std::printf(
      "condensed (%s): %lld nodes, %lld edges (ratio %.3f, %.3fs to build)\n",
      rdd::condense::MethodName(condense.method),
      static_cast<long long>(small.condensed_nodes),
      static_cast<long long>(small.condensed_edges), small.achieved_ratio,
      small.condense_seconds);
  std::printf("RDD condensed:   ensemble %.1f%%, single %.1f%% (%.2fs)\n",
              100.0 * small.rdd.ensemble_test_accuracy,
              100.0 * small.rdd.single_test_accuracy, small_seconds);
  std::printf("speedup %.1fx, ensemble drop %.1f pts\n",
              full_seconds / small_seconds,
              100.0 * (full.ensemble_test_accuracy -
                       small.rdd.ensemble_test_accuracy));
  return 0;
}
