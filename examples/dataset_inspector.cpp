// Dataset tooling walkthrough: generates any of the four paper datasets (or
// a custom one), prints its structural statistics, saves it to the binary
// .rdd format, reloads it, and verifies the round trip — the workflow for
// caching generated benchmark data between runs.
//
//   ./build/examples/dataset_inspector [cora|citeseer|pubmed|nell] [out.rdd]

#include <algorithm>
#include <cstdio>
#include <string>

#include "data/citation_gen.h"
#include "data/serialize.h"
#include "graph/components.h"
#include "graph/metrics.h"
#include "graph/pagerank.h"
#include "util/string_util.h"
#include "util/table_writer.h"

using namespace rdd;

namespace {

CitationGenConfig PickDataset(const std::string& name) {
  if (name == "citeseer") return CiteseerLikeConfig();
  if (name == "pubmed") return PubmedLikeConfig();
  if (name == "nell") return NellLikeConfig();
  return CoraLikeConfig();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "cora";
  const std::string path = argc > 2 ? argv[2] : "/tmp/" + name + ".rdd";

  const Dataset dataset = GenerateCitationNetwork(PickDataset(name), 42);

  const DegreeStats degrees = ComputeDegreeStats(dataset.graph);
  const ComponentsResult components = ConnectedComponents(dataset.graph);
  int64_t largest_component = 0;
  for (int64_t s : components.component_sizes) {
    largest_component = std::max(largest_component, s);
  }
  const auto pagerank = PageRank(dataset.graph);
  double max_pr = 0.0;
  for (double r : pagerank) max_pr = std::max(max_pr, r);
  const double feature_density =
      static_cast<double>(dataset.features.nnz()) /
      (static_cast<double>(dataset.NumNodes()) *
       static_cast<double>(dataset.FeatureDim()));

  TableWriter table({"Property", "Value"});
  table.AddRow({"name", dataset.name});
  table.AddRow({"nodes", std::to_string(dataset.NumNodes())});
  table.AddRow({"edges", std::to_string(dataset.graph.num_edges())});
  table.AddRow({"features", std::to_string(dataset.FeatureDim())});
  table.AddRow({"classes", std::to_string(dataset.num_classes)});
  table.AddRow({"train / val / test",
                StrFormat("%zu / %zu / %zu", dataset.split.train.size(),
                          dataset.split.val.size(),
                          dataset.split.test.size())});
  table.AddRow({"label rate", FormatDouble(100.0 * dataset.LabelRate(), 2) +
                                  "%"});
  table.AddRow({"edge homophily",
                FormatDouble(EdgeHomophily(dataset.graph, dataset.labels), 3)});
  table.AddRow({"degree (min/mean/max)",
                StrFormat("%lld / %.2f / %lld",
                          static_cast<long long>(degrees.min_degree),
                          degrees.mean_degree,
                          static_cast<long long>(degrees.max_degree))});
  table.AddRow({"isolated nodes",
                FormatDouble(100.0 * degrees.isolated_fraction, 2) + "%"});
  table.AddRow({"connected components",
                std::to_string(components.num_components)});
  table.AddRow({"largest component",
                StrFormat("%lld (%.1f%%)",
                          static_cast<long long>(largest_component),
                          100.0 * static_cast<double>(largest_component) /
                              static_cast<double>(dataset.NumNodes()))});
  table.AddRow({"max PageRank", StrFormat("%.5f", max_pr)});
  table.AddRow({"feature density",
                FormatDouble(100.0 * feature_density, 3) + "%"});
  std::fputs(table.Render().c_str(), stdout);

  // Save, reload, verify.
  const Status save_status = SaveDataset(dataset, path);
  if (!save_status.ok()) {
    std::fprintf(stderr, "save failed: %s\n",
                 save_status.ToString().c_str());
    return 1;
  }
  StatusOr<Dataset> reloaded = LoadDataset(path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  const bool identical =
      reloaded->labels == dataset.labels &&
      reloaded->graph.num_edges() == dataset.graph.num_edges() &&
      reloaded->features.values() == dataset.features.values() &&
      reloaded->split.train == dataset.split.train;
  std::printf("\nSaved to %s and reloaded: %s\n", path.c_str(),
              identical ? "round trip verified" : "MISMATCH");
  return identical ? 0 : 1;
}
