// Daemon smoke test — the serve-while-updating loop end to end:
//
//   1. train a small RDD ensemble and checkpoint it,
//   2. start the serving daemon on a Unix socket,
//   3. query it over the wire and check the answers equal an in-process
//      Predictor over the same checkpoint,
//   4. distill the ensemble into an MLP student, checkpoint that, and
//      hot-swap it in while the daemon keeps serving,
//   5. confirm the new generation answers from the MLP checkpoint, then
//      shut the daemon down over the wire.
//
//   ./build/examples/daemon_smoke
//
// Exits non-zero on any failure; CI runs this binary as the daemon smoke
// test.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/distill.h"
#include "core/rdd_config.h"
#include "core/rdd_trainer.h"
#include "data/citation_gen.h"
#include "data/serialize.h"
#include "serve/daemon.h"
#include "serve/predictor.h"

namespace {

void ExitOnError(const rdd::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FAIL (%s): %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  // 1. Small dataset, short RDD run, checkpoint to disk.
  rdd::CitationGenConfig gen;
  gen.num_nodes = 400;
  gen.num_features = 100;
  gen.num_edges = 1100;
  gen.num_classes = 4;
  gen.labeled_per_class = 10;
  gen.val_size = 60;
  gen.test_size = 100;
  const rdd::Dataset dataset = rdd::GenerateCitationNetwork(gen, /*seed=*/7);
  const rdd::GraphContext context = rdd::GraphContext::FromDataset(dataset);

  rdd::RddConfig config;
  config.num_base_models = 2;
  config.train.max_epochs = 80;
  const rdd::RddResult result =
      rdd::TrainRdd(dataset, context, config, /*seed=*/1);
  std::printf("ensemble: test accuracy %.1f%%\n",
              100.0 * result.ensemble_test_accuracy);

  const std::string ckpt_path = "daemon_smoke_ensemble.rddc";
  const std::string mlp_path = "daemon_smoke_mlp.rddc";
  const std::string data_path = "daemon_smoke_dataset.rdd";
  const std::string socket_path = "daemon_smoke.sock";
  ExitOnError(rdd::SaveCheckpoint(
                  rdd::CheckpointFromRdd(result, config.base_model, "smoke"),
                  ckpt_path),
              "save ensemble checkpoint");
  ExitOnError(rdd::SaveDataset(dataset, data_path), "save dataset");

  // 2. Start the daemon: generation 1 serves the ensemble checkpoint.
  rdd::DaemonOptions options;
  options.socket_path = socket_path;
  options.checkpoint_path = ckpt_path;
  options.dataset_path = data_path;
  auto daemon = rdd::Daemon::Start(options);
  ExitOnError(daemon.status(), "start daemon");

  auto client = rdd::DaemonClient::Connect(socket_path);
  ExitOnError(client.status(), "connect");

  // 3. Wire answers must equal an in-process Predictor over the same file.
  auto reference = rdd::Predictor::FromCheckpoint(ckpt_path, context);
  ExitOnError(reference.status(), "load reference predictor");
  const std::vector<int64_t> query = {0, 5, 17, 399, 123};
  auto wire = client->PredictLabels(query);
  ExitOnError(wire.status(), "predict over the wire");
  auto expected = reference->PredictLabels(query);
  ExitOnError(expected.status(), "predict in process");
  if (*wire != *expected) {
    std::fprintf(stderr, "FAIL: wire answers differ from the in-process "
                         "Predictor\n");
    return 1;
  }
  std::printf("generation 1 serves the ensemble, wire == in-process\n");

  // 4. Refresh the model (here: distill to an MLP student) and hot-swap.
  rdd::DistillConfig distill_config;
  distill_config.train.max_epochs = 150;
  const rdd::DistillResult distilled = rdd::DistillToMlp(
      dataset, context, result.teacher, distill_config, /*seed=*/1);
  ExitOnError(rdd::SaveCheckpoint(rdd::CheckpointFromDistilled(
                                      *distilled.student, "smoke-mlp"),
                                  mlp_path),
              "save MLP checkpoint");
  ExitOnError(client->RequestSwap(mlp_path, ""), "enqueue swap");

  // The swap is asynchronous; poll stats until generation 2 is serving.
  bool swapped = false;
  for (int i = 0; i < 500 && !swapped; ++i) {
    auto stats = client->Stats();
    ExitOnError(stats.status(), "stats");
    swapped = stats->generation >= 2;
    if (!swapped) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!swapped) {
    std::fprintf(stderr, "FAIL: hot swap did not apply\n");
    return 1;
  }

  // 5. Generation 2 must answer from the MLP checkpoint.
  auto mlp_reference = rdd::Predictor::FromCheckpoint(mlp_path, context);
  ExitOnError(mlp_reference.status(), "load MLP reference");
  auto after = client->PredictLabels(query);
  ExitOnError(after.status(), "predict after swap");
  auto mlp_expected = mlp_reference->PredictLabels(query);
  ExitOnError(mlp_expected.status(), "MLP predict in process");
  if (*after != *mlp_expected) {
    std::fprintf(stderr, "FAIL: post-swap answers differ from the MLP "
                         "checkpoint\n");
    return 1;
  }
  std::printf("generation 2 serves the distilled MLP after a hot swap\n");

  ExitOnError(client->Shutdown(), "shutdown");
  (*daemon)->Wait();

  std::remove(ckpt_path.c_str());
  std::remove(mlp_path.c_str());
  std::remove(data_path.c_str());
  std::printf("OK\n");
  return 0;
}
