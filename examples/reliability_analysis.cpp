// Reliability under the microscope: trains a teacher GCN on a Cora-like
// network and inspects the node- and edge-reliability machinery of Sec. 3 —
// how accurate the reliable set actually is compared to the full node set,
// how the p threshold trades coverage against purity, and how much cleaner
// reliable edges are than raw edges. Because the data is synthetic, the
// hidden ground truth is available for exactly this kind of audit.
//
//   ./build/examples/reliability_analysis

#include <cstdio>

#include "core/reliability.h"
#include "data/citation_gen.h"
#include "models/model_factory.h"
#include "tensor/ops.h"
#include "train/trainer.h"
#include "util/string_util.h"
#include "util/table_writer.h"

using namespace rdd;

namespace {

/// Fraction of `nodes` whose model prediction matches the hidden truth.
double SubsetAccuracy(const std::vector<int64_t>& preds,
                      const std::vector<int64_t>& labels,
                      const std::vector<int64_t>& nodes) {
  if (nodes.empty()) return 0.0;
  int64_t hits = 0;
  for (int64_t i : nodes) {
    if (preds[static_cast<size_t>(i)] == labels[static_cast<size_t>(i)]) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(nodes.size());
}

}  // namespace

int main() {
  const Dataset dataset = GenerateCitationNetwork(CoraLikeConfig(), 42);
  const GraphContext context = GraphContext::FromDataset(dataset);

  // Teacher: a plain GCN. Student: an independently seeded GCN, trained
  // briefly so teacher and student genuinely disagree in places.
  auto teacher = BuildModel(context, ModelConfig{}, 1);
  TrainConfig train;
  (void)TrainSupervised(teacher.get(), dataset, train);
  auto student = BuildModel(context, ModelConfig{}, 2);
  TrainConfig short_train;
  short_train.max_epochs = 30;
  short_train.patience = 30;
  (void)TrainSupervised(student.get(), dataset, short_train);

  const Matrix teacher_probs = teacher->PredictProbs();
  const Matrix student_probs = student->PredictProbs();
  const auto teacher_preds = ArgmaxRows(teacher_probs);
  const auto student_preds = ArgmaxRows(student_probs);
  const auto train_mask = dataset.TrainMask();

  std::vector<int64_t> all_nodes(static_cast<size_t>(dataset.NumNodes()));
  for (int64_t i = 0; i < dataset.NumNodes(); ++i) {
    all_nodes[static_cast<size_t>(i)] = i;
  }
  std::printf("Teacher accuracy on ALL nodes: %.1f%%\n",
              100.0 * SubsetAccuracy(teacher_preds, dataset.labels,
                                     all_nodes));

  // 1. Node reliability: purity/coverage of Vr as p sweeps.
  std::printf("\n--- Node reliability (Algorithm 1) ---\n");
  TableWriter node_table({"p (%)", "|Vr|", "coverage (%)",
                          "teacher acc on Vr (%)", "|Vb|",
                          "teacher acc on Vb (%)"});
  for (double p : {10.0, 20.0, 40.0, 60.0, 80.0}) {
    NodeReliabilityConfig config;
    config.p_percent = p;
    const NodeReliability rel = ComputeNodeReliability(
        teacher_probs, student_probs, dataset.labels, train_mask, config);
    node_table.AddRow(
        {FormatDouble(p, 0), std::to_string(rel.reliable_nodes.size()),
         FormatDouble(100.0 * static_cast<double>(rel.reliable_nodes.size()) /
                          static_cast<double>(dataset.NumNodes()),
                      1),
         FormatDouble(100.0 * SubsetAccuracy(teacher_preds, dataset.labels,
                                             rel.reliable_nodes),
                      1),
         std::to_string(rel.distill_nodes.size()),
         FormatDouble(100.0 * SubsetAccuracy(teacher_preds, dataset.labels,
                                             rel.distill_nodes),
                      1)});
  }
  std::fputs(node_table.Render().c_str(), stdout);
  std::printf("Reading: the teacher is far more accurate on its reliable set"
              " than overall,\nand purity falls as p (coverage) grows —"
              " exactly the trade-off Table 7 tunes.\n");

  // 2. Edge reliability: how much cleaner are reliable edges?
  std::printf("\n--- Edge reliability (Algorithm 2) ---\n");
  NodeReliabilityConfig config;
  const NodeReliability rel = ComputeNodeReliability(
      teacher_probs, student_probs, dataset.labels, train_mask, config);
  const auto reliable_edges =
      ComputeReliableEdges(dataset.graph, rel.reliable, student_preds);
  int64_t same_class_all = 0;
  for (const Edge& e : dataset.graph.edges()) {
    if (dataset.labels[static_cast<size_t>(e.u)] ==
        dataset.labels[static_cast<size_t>(e.v)]) {
      ++same_class_all;
    }
  }
  int64_t same_class_reliable = 0;
  for (const auto& [u, v] : reliable_edges) {
    if (dataset.labels[static_cast<size_t>(u)] ==
        dataset.labels[static_cast<size_t>(v)]) {
      ++same_class_reliable;
    }
  }
  std::printf("All edges:      %lld, true same-class fraction %.1f%%\n",
              static_cast<long long>(dataset.graph.num_edges()),
              100.0 * static_cast<double>(same_class_all) /
                  static_cast<double>(dataset.graph.num_edges()));
  std::printf("Reliable edges: %zu, true same-class fraction %.1f%%\n",
              reliable_edges.size(),
              100.0 * static_cast<double>(same_class_reliable) /
                  static_cast<double>(reliable_edges.size()));
  std::printf("Reading: Laplacian smoothing over reliable edges almost never"
              "\npulls different-class nodes together, unlike plain GLR.\n");
  return 0;
}
