// Serving quickstart — the full train → distill → checkpoint → load → query
// loop on a small synthetic citation network:
//
//   1. train a 2-member RDD ensemble,
//   2. distill it into a graph-blind MLP student,
//   3. save both as checkpoints,
//   4. load them back through serve::Predictor and answer node queries,
//   5. verify the served probabilities exactly match the in-memory student.
//
//   ./build/examples/serve_quickstart
//
// Exits non-zero on any failure; CI runs this binary as the serving smoke
// test.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/distill.h"
#include "core/rdd_config.h"
#include "core/rdd_trainer.h"
#include "data/citation_gen.h"
#include "serve/predictor.h"
#include "util/runtime_flags.h"
#include "util/timer.h"

namespace {

/// Prints the failed status and exits; keeps main() linear.
void ExitOnError(const rdd::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FAIL (%s): %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  // 1. A small Cora-like dataset: big enough to learn on, small enough that
  //    the whole example runs in seconds.
  rdd::CitationGenConfig gen;
  gen.num_nodes = 600;
  gen.num_features = 120;
  gen.num_edges = 1500;
  gen.num_classes = 4;
  gen.labeled_per_class = 10;
  gen.val_size = 80;
  gen.test_size = 120;
  const rdd::Dataset dataset = rdd::GenerateCitationNetwork(gen, /*seed=*/42);
  const rdd::GraphContext context = rdd::GraphContext::FromDataset(dataset);
  std::printf("dataset: %lld nodes, %lld edges, %lld classes\n",
              static_cast<long long>(dataset.NumNodes()),
              static_cast<long long>(dataset.graph.num_edges()),
              static_cast<long long>(dataset.num_classes));

  // 2. Train the RDD ensemble teacher (short protocol: 2 members).
  rdd::RddConfig rdd_config;
  rdd_config.num_base_models = 2;
  rdd_config.train.max_epochs = 120;
  const rdd::RddResult rdd_result =
      rdd::TrainRdd(dataset, context, rdd_config, /*seed=*/1);
  std::printf("ensemble:  test accuracy %.1f%%\n",
              100.0 * rdd_result.ensemble_test_accuracy);

  // 3. Distill into an MLP student (reliability-weighted soft labels).
  rdd::DistillConfig distill_config;
  distill_config.train.max_epochs = 200;
  const rdd::DistillResult distilled = rdd::DistillToMlp(
      dataset, context, rdd_result.teacher, distill_config, /*seed=*/1);
  std::printf("distilled: test accuracy %.1f%%, teacher agreement %.1f%%\n",
              100.0 * distilled.student_test_accuracy,
              100.0 * distilled.test_agreement);

  // 4. Checkpoint both, then serve strictly from the files.
  const std::string ensemble_path = "serve_quickstart_ensemble.rddc";
  const std::string mlp_path = "serve_quickstart_mlp.rddc";
  ExitOnError(rdd::SaveCheckpoint(rdd::CheckpointFromRdd(
                                      rdd_result, rdd_config.base_model,
                                      "quickstart-ensemble"),
                                  ensemble_path),
              "save ensemble checkpoint");
  ExitOnError(rdd::SaveCheckpoint(rdd::CheckpointFromDistilled(
                                      *distilled.student, "quickstart-mlp"),
                                  mlp_path),
              "save MLP checkpoint");

  rdd::StatusOr<rdd::Predictor> mlp_server =
      rdd::Predictor::FromCheckpoint(mlp_path, context);
  ExitOnError(mlp_server.status(), "load MLP checkpoint");
  rdd::StatusOr<rdd::Predictor> gnn_server =
      rdd::Predictor::FromCheckpoint(ensemble_path, context);
  ExitOnError(gnn_server.status(), "load ensemble checkpoint");

  // 5. Query a batch of nodes and check the served MLP probabilities are
  //    exactly the in-memory student's — the checkpoint round trip must be
  //    lossless. On the bf16 serving tier (RDD_BF16=1) the loaded weights
  //    are pack-rounded, so the contract is tolerance-equality instead.
  const bool bf16 = rdd::flags::Bf16Enabled();
  const float tolerance = bf16 ? 2e-2f : 0.0f;
  const std::vector<int64_t> query = {0, 17, 123, 599, 301, 17};
  rdd::WallTimer timer;
  rdd::StatusOr<rdd::Matrix> served = mlp_server->PredictProbs(query);
  const double serve_us = timer.ElapsedSeconds() * 1e6;
  ExitOnError(served.status(), "serve MLP batch");
  if (bf16 && !mlp_server->bf16_serving()) {
    std::fprintf(stderr, "FAIL: RDD_BF16=1 but predictor is not on the "
                         "bf16 tier\n");
    return 1;
  }
  const rdd::Matrix expected = distilled.student->PredictProbsRows(query);
  for (int64_t i = 0; i < served->rows(); ++i) {
    for (int64_t j = 0; j < served->cols(); ++j) {
      const float got = served->RowData(i)[j];
      const float want = expected.RowData(i)[j];
      if (!(std::fabs(got - want) <= tolerance)) {
        std::fprintf(stderr,
                     "FAIL: served prob [%lld,%lld] %.9g != in-memory %.9g\n",
                     static_cast<long long>(i), static_cast<long long>(j),
                     got, want);
        return 1;
      }
    }
  }
  std::printf("served %zu queries from the MLP checkpoint in %.1f us, "
              "%s the in-memory student\n",
              query.size(), serve_us,
              bf16 ? "within bf16 tolerance of" : "bit-identical to");

  // The GNN path answers the same queries (slower: full-graph forward).
  rdd::StatusOr<std::vector<int64_t>> labels = gnn_server->PredictLabels(query);
  ExitOnError(labels.status(), "serve ensemble batch");
  std::printf("ensemble checkpoint serves too (first query -> class %lld)\n",
              static_cast<long long>((*labels)[0]));

  // Out-of-range queries must be rejected, not crash.
  if (mlp_server->PredictProbs({dataset.NumNodes()}).ok()) {
    std::fprintf(stderr, "FAIL: out-of-range node id was accepted\n");
    return 1;
  }
  std::printf("out-of-range query rejected with InvalidArgument\n");

  std::remove(ensemble_path.c_str());
  std::remove(mlp_path.c_str());
  std::printf("OK\n");
  return 0;
}
