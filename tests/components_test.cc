#include "graph/components.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace rdd {
namespace {

TEST(ComponentsTest, EmptyGraph) {
  const ComponentsResult result = ConnectedComponents(Graph());
  EXPECT_EQ(result.num_components, 0);
  EXPECT_TRUE(result.component_of.empty());
}

TEST(ComponentsTest, SingleComponent) {
  const ComponentsResult result = ConnectedComponents(MakePathGraph(5));
  EXPECT_EQ(result.num_components, 1);
  EXPECT_EQ(result.component_sizes[0], 5);
  for (int64_t c : result.component_of) EXPECT_EQ(c, 0);
}

TEST(ComponentsTest, DisconnectedPieces) {
  // {0,1} and {2,3,4} and isolated {5}.
  const Graph g(6, {{0, 1}, {2, 3}, {3, 4}});
  const ComponentsResult result = ConnectedComponents(g);
  EXPECT_EQ(result.num_components, 3);
  EXPECT_EQ(result.component_of[0], result.component_of[1]);
  EXPECT_EQ(result.component_of[2], result.component_of[4]);
  EXPECT_NE(result.component_of[0], result.component_of[2]);
  EXPECT_NE(result.component_of[5], result.component_of[0]);
  EXPECT_EQ(result.component_sizes[result.component_of[5]], 1);
}

TEST(ComponentsTest, SizesSumToNodeCount) {
  const Graph g(7, {{0, 1}, {2, 3}, {4, 5}});
  const ComponentsResult result = ConnectedComponents(g);
  int64_t total = 0;
  for (int64_t s : result.component_sizes) total += s;
  EXPECT_EQ(total, 7);
}

TEST(ComponentsTest, IdsAssignedInFirstAppearanceOrder) {
  const Graph g(4, {{0, 3}, {1, 2}});
  const ComponentsResult result = ConnectedComponents(g);
  EXPECT_EQ(result.component_of[0], 0);
  EXPECT_EQ(result.component_of[1], 1);
}

}  // namespace
}  // namespace rdd
