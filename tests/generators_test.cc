#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/metrics.h"
#include "util/random.h"

namespace rdd {
namespace {

TEST(DeterministicGeneratorsTest, PathGraph) {
  const Graph g = MakePathGraph(4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(1), 2);
}

TEST(DeterministicGeneratorsTest, CycleGraph) {
  const Graph g = MakeCycleGraph(5);
  EXPECT_EQ(g.num_edges(), 5);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(g.Degree(i), 2);
}

TEST(DeterministicGeneratorsTest, StarGraph) {
  const Graph g = MakeStarGraph(6);
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_EQ(g.Degree(0), 5);
  EXPECT_EQ(g.Degree(3), 1);
}

TEST(DeterministicGeneratorsTest, CompleteGraph) {
  const Graph g = MakeCompleteGraph(5);
  EXPECT_EQ(g.num_edges(), 10);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(g.Degree(i), 4);
}

TEST(DeterministicGeneratorsTest, GridGraph) {
  const Graph g = MakeGridGraph(3, 4);
  EXPECT_EQ(g.num_nodes(), 12);
  // Edges: 3 * 3 horizontal + 2 * 4 vertical = 17.
  EXPECT_EQ(g.num_edges(), 17);
  EXPECT_EQ(g.Degree(0), 2);   // Corner.
  EXPECT_EQ(g.Degree(5), 4);   // Interior.
}

TEST(ErdosRenyiTest, EdgeCountNearExpectation) {
  Rng rng(11);
  const int64_t n = 100;
  const double p = 0.1;
  const Graph g = MakeErdosRenyiGraph(n, p, &rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.25);
}

TEST(ErdosRenyiTest, ExtremeProbabilities) {
  Rng rng(12);
  EXPECT_EQ(MakeErdosRenyiGraph(10, 0.0, &rng).num_edges(), 0);
  EXPECT_EQ(MakeErdosRenyiGraph(10, 1.0, &rng).num_edges(), 45);
}

TEST(ErdosRenyiTest, DeterministicGivenSeed) {
  Rng a(13);
  Rng b(13);
  const Graph ga = MakeErdosRenyiGraph(30, 0.2, &a);
  const Graph gb = MakeErdosRenyiGraph(30, 0.2, &b);
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  for (int64_t i = 0; i < ga.num_edges(); ++i) {
    EXPECT_EQ(ga.edges()[i].u, gb.edges()[i].u);
    EXPECT_EQ(ga.edges()[i].v, gb.edges()[i].v);
  }
}

class LabeledSbmTest : public ::testing::TestWithParam<double> {};

TEST_P(LabeledSbmTest, HomophilyTracksParameter) {
  const double homophily = GetParam();
  Rng rng(17);
  std::vector<int64_t> labels(600);
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int64_t>(i % 3);
  }
  LabeledSbmParams params;
  params.target_edges = 2000;
  params.homophily = homophily;
  params.degree_skew = 0.5;
  const Graph g = MakeLabeledSbmGraph(labels, params, &rng);
  EXPECT_NEAR(EdgeHomophily(g, labels), homophily, 0.06);
}

INSTANTIATE_TEST_SUITE_P(HomophilySweep, LabeledSbmTest,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9));

TEST(LabeledSbmTest, HitsTargetEdgeCount) {
  Rng rng(19);
  std::vector<int64_t> labels(500, 0);
  for (size_t i = 250; i < 500; ++i) labels[i] = 1;
  LabeledSbmParams params;
  params.target_edges = 1500;
  const Graph g = MakeLabeledSbmGraph(labels, params, &rng);
  EXPECT_EQ(g.num_edges(), 1500);
}

TEST(LabeledSbmTest, DegreeSkewProducesHeavyTail) {
  Rng rng(23);
  std::vector<int64_t> labels(800, 0);
  LabeledSbmParams flat;
  flat.target_edges = 3000;
  flat.homophily = 1.0;
  flat.degree_skew = 0.0;
  LabeledSbmParams skewed = flat;
  skewed.degree_skew = 1.0;
  Rng rng2(23);
  const int64_t flat_max = MakeLabeledSbmGraph(labels, flat, &rng).MaxDegree();
  const int64_t skew_max =
      MakeLabeledSbmGraph(labels, skewed, &rng2).MaxDegree();
  EXPECT_GT(skew_max, flat_max);
}

TEST(LabeledSbmTest, SimpleGraphInvariants) {
  Rng rng(29);
  std::vector<int64_t> labels(200);
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int64_t>(i % 4);
  }
  LabeledSbmParams params;
  params.target_edges = 800;
  const Graph g = MakeLabeledSbmGraph(labels, params, &rng);
  for (const Edge& e : g.edges()) {
    EXPECT_NE(e.u, e.v);
    EXPECT_LT(e.u, e.v);
  }
}

TEST(MetricsTest, EdgeHomophilyExtremes) {
  const std::vector<int64_t> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(EdgeHomophily(Graph(4, {{0, 1}, {2, 3}}), labels), 1.0);
  EXPECT_DOUBLE_EQ(EdgeHomophily(Graph(4, {{0, 2}, {1, 3}}), labels), 0.0);
  EXPECT_DOUBLE_EQ(EdgeHomophily(Graph(4, {}), labels), 0.0);
}

TEST(MetricsTest, DegreeStats) {
  const Graph g = MakeStarGraph(5);  // Hub degree 4, leaves 1.
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.min_degree, 1);
  EXPECT_EQ(stats.max_degree, 4);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 8.0 / 5.0);
  EXPECT_DOUBLE_EQ(stats.isolated_fraction, 0.0);
}

TEST(MetricsTest, IsolatedFraction) {
  const Graph g(4, {{0, 1}});
  EXPECT_DOUBLE_EQ(ComputeDegreeStats(g).isolated_fraction, 0.5);
}

}  // namespace
}  // namespace rdd
