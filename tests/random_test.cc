#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace rdd {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextU64() != b.NextU64()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(23);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(29);
  const int n = 50000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(43);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (int64_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(47);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(sample[static_cast<size_t>(i)], i);
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng rng(53);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
}

TEST(RngTest, SplitIsDeterministicPerTag) {
  const Rng parent(61);
  Rng a = parent.Split(7);
  Rng b = parent.Split(7);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, SplitTagsYieldDistinctStreams) {
  const Rng parent(61);
  Rng a = parent.Split(1);
  Rng b = parent.Split(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextU64() != b.NextU64()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, SplitDoesNotAdvanceParent) {
  Rng split_parent(67);
  split_parent.Split(3);
  split_parent.Split(4);
  Rng fresh(67);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(split_parent.NextU64(), fresh.NextU64());
  }
}

TEST(RngTest, SplitTreeIsPathDependent) {
  // Split(a).Split(b) and Split(b).Split(a) must be distinct streams, so
  // the sampler's (epoch, hop, node) tree has no cross-level collisions.
  const Rng root(71);
  Rng ab = root.Split(1).Split(2);
  Rng ba = root.Split(2).Split(1);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (ab.NextU64() != ba.NextU64()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(59);
  Rng child = parent.Fork();
  // The child stream should not simply mirror the parent.
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (parent.NextU64() != child.NextU64()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

}  // namespace
}  // namespace rdd
