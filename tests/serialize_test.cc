#include "data/serialize.h"

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/citation_gen.h"

namespace rdd {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Dataset SmallDataset(uint64_t seed) {
  CitationGenConfig config;
  config.num_nodes = 300;
  config.num_features = 80;
  config.num_edges = 700;
  config.num_classes = 3;
  config.labeled_per_class = 5;
  config.val_size = 40;
  config.test_size = 60;
  return GenerateCitationNetwork(config, seed);
}

TEST(SerializeTest, RoundTripPreservesEverything) {
  const Dataset original = SmallDataset(1);
  const std::string path = TempPath("roundtrip.rdd");
  ASSERT_TRUE(SaveDataset(original, path).ok());

  StatusOr<Dataset> loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name, original.name);
  EXPECT_EQ(loaded->NumNodes(), original.NumNodes());
  EXPECT_EQ(loaded->labels, original.labels);
  EXPECT_EQ(loaded->num_classes, original.num_classes);
  EXPECT_EQ(loaded->split.train, original.split.train);
  EXPECT_EQ(loaded->split.val, original.split.val);
  EXPECT_EQ(loaded->split.test, original.split.test);
  EXPECT_EQ(loaded->graph.num_edges(), original.graph.num_edges());
  EXPECT_EQ(loaded->features.nnz(), original.features.nnz());
  EXPECT_EQ(loaded->features.values(), original.features.values());
  EXPECT_EQ(loaded->features.col_idx(), original.features.col_idx());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIoError) {
  StatusOr<Dataset> result = LoadDataset(TempPath("does_not_exist.rdd"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(SerializeTest, GarbageFileIsInvalidArgument) {
  const std::string path = TempPath("garbage.rdd");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a dataset", f);
  std::fclose(f);
  StatusOr<Dataset> result = LoadDataset(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedFileIsInvalidArgument) {
  const Dataset original = SmallDataset(2);
  const std::string path = TempPath("truncated.rdd");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  // Truncate to the first 100 bytes.
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buffer[100];
  ASSERT_EQ(std::fread(buffer, 1, sizeof(buffer), f), sizeof(buffer));
  std::fclose(f);
  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(buffer, 1, sizeof(buffer), f);
  std::fclose(f);

  StatusOr<Dataset> result = LoadDataset(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, UnwritablePathIsIoError) {
  const Status status =
      SaveDataset(SmallDataset(3), "/nonexistent_dir/x.rdd");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(SerializeTest, FailedSaveLeavesNoFileBehind) {
  // The atomic save stages into "<path>.tmp.<pid>"; on failure neither the
  // target nor the staging file may exist.
  const std::string dir = std::string(::testing::TempDir()) + "/no_such_dir";
  const std::string path = dir + "/x.rdd";
  ASSERT_FALSE(SaveDataset(SmallDataset(5), path).ok());
  EXPECT_EQ(std::fopen(path.c_str(), "rb"), nullptr);
}

TEST(SerializeTest, SuccessfulSaveLeavesNoTempFile) {
  const Dataset dataset = SmallDataset(6);
  const std::string path = TempPath("atomic.rdd");
  ASSERT_TRUE(SaveDataset(dataset, path).ok());
  const std::string tmp_prefix = path + ".tmp.";
  // The staging file is "<path>.tmp.<pid>" for this process.
  char tmp_name[512];
  std::snprintf(tmp_name, sizeof(tmp_name), "%s%d", tmp_prefix.c_str(),
                static_cast<int>(getpid()));
  EXPECT_EQ(std::fopen(tmp_name, "rb"), nullptr);
  std::remove(path.c_str());
}

TEST(SerializeTest, EveryPrefixTruncationFailsCleanly) {
  CitationGenConfig config;
  config.num_nodes = 40;
  config.num_features = 12;
  config.num_edges = 90;
  config.num_classes = 3;
  config.labeled_per_class = 3;
  config.val_size = 8;
  config.test_size = 10;
  const Dataset tiny = GenerateCitationNetwork(config, 7);
  const std::string full_path = TempPath("prefix_full.rdd");
  ASSERT_TRUE(SaveDataset(tiny, full_path).ok());

  FILE* f = std::fopen(full_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<unsigned char> bytes;
  unsigned char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  std::fclose(f);
  ASSERT_GT(bytes.size(), 0u);

  const std::string prefix_path = TempPath("prefix_cut.rdd");
  for (size_t len = 0; len < bytes.size(); ++len) {
    FILE* out = std::fopen(prefix_path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    if (len > 0) {
      ASSERT_EQ(std::fwrite(bytes.data(), 1, len, out), len);
    }
    ASSERT_EQ(std::fclose(out), 0);
    StatusOr<Dataset> result = LoadDataset(prefix_path);
    ASSERT_FALSE(result.ok()) << "prefix of " << len << " bytes parsed";
    ASSERT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << "prefix of " << len << " bytes: " << result.status().ToString();
  }
  std::remove(full_path.c_str());
  std::remove(prefix_path.c_str());
}

TEST(SerializeTest, HostileLengthFieldIsInvalidArgument) {
  const Dataset original = SmallDataset(8);
  const std::string path = TempPath("hostile.rdd");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  // The first field after the 13-byte header (magic + endian + version) is
  // the dataset name's uint64 length; claim ~16 exabytes.
  FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 13, SEEK_SET), 0);
  const unsigned char huge[8] = {0xFF, 0xFF, 0xFF, 0xFF,
                                 0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_EQ(std::fwrite(huge, 1, sizeof(huge), f), sizeof(huge));
  ASSERT_EQ(std::fclose(f), 0);

  StatusOr<Dataset> result = LoadDataset(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, ForeignEndiannessIsInvalidArgument) {
  const Dataset original = SmallDataset(9);
  const std::string path = TempPath("endian.rdd");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 8, SEEK_SET), 0);
  int marker = std::fgetc(f);
  ASSERT_NE(marker, EOF);
  ASSERT_EQ(std::fseek(f, 8, SEEK_SET), 0);
  ASSERT_NE(std::fputc(marker == 1 ? 2 : 1, f), EOF);
  ASSERT_EQ(std::fclose(f), 0);

  StatusOr<Dataset> result = LoadDataset(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("endian"), std::string::npos)
      << result.status().message();
  std::remove(path.c_str());
}

TEST(SerializeTest, RoundTripOneHotDataset) {
  CitationGenConfig config;
  config.num_nodes = 150;
  config.num_edges = 400;
  config.num_classes = 3;
  config.one_hot_features = true;
  config.num_features = config.num_nodes;
  config.labeled_per_class = 4;
  config.val_size = 20;
  config.test_size = 30;
  const Dataset original = GenerateCitationNetwork(config, 4);
  const std::string path = TempPath("onehot.rdd");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  StatusOr<Dataset> loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->features.nnz(), original.NumNodes());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rdd
