#include "data/serialize.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "data/citation_gen.h"

namespace rdd {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Dataset SmallDataset(uint64_t seed) {
  CitationGenConfig config;
  config.num_nodes = 300;
  config.num_features = 80;
  config.num_edges = 700;
  config.num_classes = 3;
  config.labeled_per_class = 5;
  config.val_size = 40;
  config.test_size = 60;
  return GenerateCitationNetwork(config, seed);
}

TEST(SerializeTest, RoundTripPreservesEverything) {
  const Dataset original = SmallDataset(1);
  const std::string path = TempPath("roundtrip.rdd");
  ASSERT_TRUE(SaveDataset(original, path).ok());

  StatusOr<Dataset> loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name, original.name);
  EXPECT_EQ(loaded->NumNodes(), original.NumNodes());
  EXPECT_EQ(loaded->labels, original.labels);
  EXPECT_EQ(loaded->num_classes, original.num_classes);
  EXPECT_EQ(loaded->split.train, original.split.train);
  EXPECT_EQ(loaded->split.val, original.split.val);
  EXPECT_EQ(loaded->split.test, original.split.test);
  EXPECT_EQ(loaded->graph.num_edges(), original.graph.num_edges());
  EXPECT_EQ(loaded->features.nnz(), original.features.nnz());
  EXPECT_EQ(loaded->features.values(), original.features.values());
  EXPECT_EQ(loaded->features.col_idx(), original.features.col_idx());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIoError) {
  StatusOr<Dataset> result = LoadDataset(TempPath("does_not_exist.rdd"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(SerializeTest, GarbageFileIsInvalidArgument) {
  const std::string path = TempPath("garbage.rdd");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a dataset", f);
  std::fclose(f);
  StatusOr<Dataset> result = LoadDataset(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedFileIsInvalidArgument) {
  const Dataset original = SmallDataset(2);
  const std::string path = TempPath("truncated.rdd");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  // Truncate to the first 100 bytes.
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buffer[100];
  ASSERT_EQ(std::fread(buffer, 1, sizeof(buffer), f), sizeof(buffer));
  std::fclose(f);
  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(buffer, 1, sizeof(buffer), f);
  std::fclose(f);

  StatusOr<Dataset> result = LoadDataset(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, UnwritablePathIsIoError) {
  const Status status =
      SaveDataset(SmallDataset(3), "/nonexistent_dir/x.rdd");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(SerializeTest, RoundTripOneHotDataset) {
  CitationGenConfig config;
  config.num_nodes = 150;
  config.num_edges = 400;
  config.num_classes = 3;
  config.one_hot_features = true;
  config.num_features = config.num_nodes;
  config.labeled_per_class = 4;
  config.val_size = 20;
  config.test_size = 30;
  const Dataset original = GenerateCitationNetwork(config, 4);
  const std::string path = TempPath("onehot.rdd");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  StatusOr<Dataset> loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->features.nnz(), original.NumNodes());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rdd
