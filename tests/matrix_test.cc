#include "tensor/matrix.h"

#include <gtest/gtest.h>

namespace rdd {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ConstructedZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t c = 0; c < 3; ++c) EXPECT_EQ(m.At(r, c), 0.0f);
  }
}

TEST(MatrixTest, FromValuesRowMajor) {
  Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(m.At(0, 0), 1.0f);
  EXPECT_EQ(m.At(0, 1), 2.0f);
  EXPECT_EQ(m.At(1, 0), 3.0f);
  EXPECT_EQ(m.At(1, 1), 4.0f);
}

TEST(MatrixTest, IdentityDiagonal) {
  const Matrix id = Matrix::Identity(3);
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_EQ(id.At(r, c), r == c ? 1.0f : 0.0f);
    }
  }
}

TEST(MatrixTest, ConstantFillsAll) {
  const Matrix m = Matrix::Constant(2, 2, 7.5f);
  EXPECT_EQ(m.At(0, 0), 7.5f);
  EXPECT_EQ(m.At(1, 1), 7.5f);
}

TEST(MatrixTest, AtIsWritable) {
  Matrix m(2, 2);
  m.At(1, 0) = 5.0f;
  EXPECT_EQ(m.At(1, 0), 5.0f);
}

TEST(MatrixTest, RowDataPointsIntoBuffer) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const float* row1 = m.RowData(1);
  EXPECT_EQ(row1[0], 4.0f);
  EXPECT_EQ(row1[2], 6.0f);
}

TEST(MatrixTest, AddSubMul) {
  Matrix a(1, 3, {1, 2, 3});
  const Matrix b(1, 3, {4, 5, 6});
  a.Add(b);
  EXPECT_TRUE(a.Equals(Matrix(1, 3, {5, 7, 9})));
  a.Sub(b);
  EXPECT_TRUE(a.Equals(Matrix(1, 3, {1, 2, 3})));
  a.Mul(b);
  EXPECT_TRUE(a.Equals(Matrix(1, 3, {4, 10, 18})));
}

TEST(MatrixTest, ScaleAndAxpy) {
  Matrix a(1, 2, {1, 2});
  a.Scale(3.0f);
  EXPECT_TRUE(a.Equals(Matrix(1, 2, {3, 6})));
  a.Axpy(2.0f, Matrix(1, 2, {1, 1}));
  EXPECT_TRUE(a.Equals(Matrix(1, 2, {5, 8})));
}

TEST(MatrixTest, RowExtractAndSet) {
  Matrix m(2, 2, {1, 2, 3, 4});
  const Matrix row = m.Row(1);
  EXPECT_TRUE(row.Equals(Matrix(1, 2, {3, 4})));
  m.SetRow(0, Matrix(1, 2, {9, 8}));
  EXPECT_TRUE(m.Equals(Matrix(2, 2, {9, 8, 3, 4})));
}

TEST(MatrixTest, SquaredNormAndSum) {
  const Matrix m(1, 3, {1, -2, 2});
  EXPECT_DOUBLE_EQ(m.SquaredNorm(), 9.0);
  EXPECT_DOUBLE_EQ(m.Sum(), 1.0);
}

TEST(MatrixTest, EqualsRequiresShapeMatch) {
  EXPECT_FALSE(Matrix(1, 2).Equals(Matrix(2, 1)));
  EXPECT_TRUE(Matrix(2, 2).Equals(Matrix(2, 2)));
}

TEST(MatrixTest, ApproxEqualsTolerance) {
  const Matrix a(1, 1, {1.0f});
  const Matrix b(1, 1, {1.05f});
  EXPECT_TRUE(a.ApproxEquals(b, 0.1f));
  EXPECT_FALSE(a.ApproxEquals(b, 0.01f));
}

TEST(MatrixTest, FillOverwrites) {
  Matrix m(2, 2, {1, 2, 3, 4});
  m.Fill(0.5f);
  EXPECT_TRUE(m.Equals(Matrix::Constant(2, 2, 0.5f)));
  m.SetZero();
  EXPECT_TRUE(m.Equals(Matrix(2, 2)));
}

TEST(MatrixTest, ToStringRendersSmallMatrix) {
  const Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(m.ToString(), "[[1, 2], [3, 4]]");
}

TEST(MatrixDeathTest, OutOfBoundsAccessAborts) {
  Matrix m(2, 2);
  EXPECT_DEATH({ (void)m.At(2, 0); }, "Check failed");
  EXPECT_DEATH({ (void)m.At(0, -1); }, "Check failed");
}

TEST(MatrixDeathTest, MismatchedAddAborts) {
  Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_DEATH(a.Add(b), "Check failed");
}

TEST(MatrixDeathTest, BadValueCountAborts) {
  EXPECT_DEATH(Matrix(2, 2, {1.0f, 2.0f}), "Check failed");
}

}  // namespace
}  // namespace rdd
