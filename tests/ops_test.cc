#include "tensor/ops.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "util/random.h"

namespace rdd {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.Data()[i] = static_cast<float>(rng->Gaussian());
  }
  return m;
}

TEST(MatmulTest, KnownProduct) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  EXPECT_TRUE(Matmul(a, b).Equals(Matrix(2, 2, {58, 64, 139, 154})));
}

TEST(MatmulTest, IdentityIsNeutral) {
  Rng rng(1);
  const Matrix a = RandomMatrix(4, 4, &rng);
  EXPECT_TRUE(Matmul(a, Matrix::Identity(4)).ApproxEquals(a, 1e-6f));
  EXPECT_TRUE(Matmul(Matrix::Identity(4), a).ApproxEquals(a, 1e-6f));
}

TEST(MatmulTest, NanPropagatesThroughZeroWeights) {
  // Regression: the GEMM paths used to skip a-entries equal to 0, which
  // silently turned 0 * NaN into 0 and masked upstream divergence. IEEE
  // semantics require the NaN to propagate.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const Matrix a(1, 2, {0.0f, 1.0f});
  const Matrix b(2, 2, {nan, nan, 1.0f, 2.0f});
  const Matrix out = Matmul(a, b);
  EXPECT_TRUE(std::isnan(out.At(0, 0)));
  EXPECT_TRUE(std::isnan(out.At(0, 1)));

  // Same contract for the fused-transpose path: a(i, p) == 0 must not hide
  // a NaN row of b.
  const Matrix at(2, 2, {0.0f, 1.0f, 1.0f, 1.0f});
  const Matrix bt(2, 2, {nan, nan, 1.0f, 2.0f});
  const Matrix out_t = MatmulTransposeA(at, bt);
  EXPECT_TRUE(std::isnan(out_t.At(0, 0)));
  EXPECT_TRUE(std::isnan(out_t.At(0, 1)));
}

TEST(MatmulTest, InfinityPropagatesThroughZeroWeights) {
  const float inf = std::numeric_limits<float>::infinity();
  const Matrix a(1, 2, {0.0f, 1.0f});
  const Matrix b(2, 1, {inf, 3.0f});
  // 0 * inf = NaN per IEEE 754; it must not be silently dropped.
  EXPECT_TRUE(std::isnan(Matmul(a, b).At(0, 0)));
}

TEST(MatmulTest, TransposeVariantsMatchExplicit) {
  Rng rng(2);
  const Matrix a = RandomMatrix(5, 3, &rng);
  const Matrix b = RandomMatrix(5, 4, &rng);
  EXPECT_TRUE(MatmulTransposeA(a, b).ApproxEquals(
      Matmul(Transpose(a), b), 1e-5f));
  const Matrix c = RandomMatrix(6, 3, &rng);
  EXPECT_TRUE(MatmulTransposeB(a, c).ApproxEquals(
      Matmul(a, Transpose(c)), 1e-5f));
}

TEST(TransposeTest, DoubleTransposeIsIdentity) {
  Rng rng(3);
  const Matrix a = RandomMatrix(3, 7, &rng);
  EXPECT_TRUE(Transpose(Transpose(a)).Equals(a));
}

TEST(ReluTest, ClampsNegatives) {
  const Matrix x(1, 4, {-1.0f, 0.0f, 2.0f, -3.5f});
  EXPECT_TRUE(Relu(x).Equals(Matrix(1, 4, {0, 0, 2, 0})));
}

TEST(ReluBackwardTest, MasksGradient) {
  const Matrix input(1, 4, {-1.0f, 0.0f, 2.0f, 5.0f});
  const Matrix grad(1, 4, {10, 20, 30, 40});
  EXPECT_TRUE(ReluBackward(grad, input).Equals(Matrix(1, 4, {0, 0, 30, 40})));
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(4);
  const Matrix logits = RandomMatrix(6, 5, &rng);
  const Matrix probs = SoftmaxRows(logits);
  for (int64_t r = 0; r < probs.rows(); ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < probs.cols(); ++c) {
      EXPECT_GT(probs.At(r, c), 0.0f);
      sum += probs.At(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxTest, InvariantToRowShift) {
  const Matrix a(1, 3, {1, 2, 3});
  const Matrix b(1, 3, {101, 102, 103});
  EXPECT_TRUE(SoftmaxRows(a).ApproxEquals(SoftmaxRows(b), 1e-6f));
}

TEST(SoftmaxTest, StableForLargeLogits) {
  const Matrix logits(1, 2, {1000.0f, 0.0f});
  const Matrix probs = SoftmaxRows(logits);
  EXPECT_NEAR(probs.At(0, 0), 1.0f, 1e-6f);
  EXPECT_FALSE(std::isnan(probs.At(0, 1)));
}

TEST(LogSoftmaxTest, MatchesLogOfSoftmax) {
  Rng rng(5);
  const Matrix logits = RandomMatrix(4, 6, &rng);
  const Matrix log_probs = LogSoftmaxRows(logits);
  const Matrix probs = SoftmaxRows(logits);
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 6; ++c) {
      EXPECT_NEAR(log_probs.At(r, c), std::log(probs.At(r, c)), 1e-5);
    }
  }
}

TEST(RowEntropyTest, UniformIsMaximal) {
  const int64_t k = 4;
  const Matrix uniform = Matrix::Constant(1, k, 1.0f / k);
  const auto entropy = RowEntropy(uniform);
  EXPECT_NEAR(entropy[0], std::log(static_cast<double>(k)), 1e-6);
}

TEST(RowEntropyTest, DeterministicIsZero) {
  Matrix onehot(1, 4);
  onehot.At(0, 2) = 1.0f;
  EXPECT_NEAR(RowEntropy(onehot)[0], 0.0, 1e-9);
}

TEST(RowEntropyTest, PeakedLessThanFlat) {
  const Matrix peaked(1, 3, {0.8f, 0.1f, 0.1f});
  const Matrix flat(1, 3, {0.4f, 0.3f, 0.3f});
  EXPECT_LT(RowEntropy(peaked)[0], RowEntropy(flat)[0]);
}

TEST(ArgmaxRowsTest, PicksMaxAndBreaksTiesLow) {
  const Matrix m(3, 3, {1, 5, 2,
                        9, 0, 9,
                        -3, -2, -4});
  const auto idx = ArgmaxRows(m);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);  // Tie goes to the first index.
  EXPECT_EQ(idx[2], 1);
}

TEST(ColumnSumsTest, SumsEachColumn) {
  const Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(ColumnSums(m).Equals(Matrix(1, 3, {5, 7, 9})));
}

TEST(AddRowBroadcastTest, AddsBiasToEveryRow) {
  const Matrix m(2, 2, {1, 2, 3, 4});
  const Matrix bias(1, 2, {10, 20});
  EXPECT_TRUE(AddRowBroadcast(m, bias).Equals(Matrix(2, 2, {11, 22, 13, 24})));
}

TEST(GatherRowsTest, SelectsInOrder) {
  const Matrix m(3, 2, {1, 2, 3, 4, 5, 6});
  const Matrix picked = GatherRows(m, {2, 0});
  EXPECT_TRUE(picked.Equals(Matrix(2, 2, {5, 6, 1, 2})));
}

TEST(ConcatColsTest, StacksHorizontally) {
  const Matrix a(2, 1, {1, 2});
  const Matrix b(2, 2, {3, 4, 5, 6});
  EXPECT_TRUE(ConcatCols(a, b).Equals(Matrix(2, 3, {1, 3, 4, 2, 5, 6})));
}

TEST(AddSubTest, ElementwiseFreeFunctions) {
  const Matrix a(1, 2, {1, 2});
  const Matrix b(1, 2, {10, 20});
  EXPECT_TRUE(Add(a, b).Equals(Matrix(1, 2, {11, 22})));
  EXPECT_TRUE(Sub(b, a).Equals(Matrix(1, 2, {9, 18})));
}

TEST(OpsDeathTest, ShapeMismatchesAbort) {
  EXPECT_DEATH((void)Matmul(Matrix(2, 3), Matrix(2, 3)), "Check failed");
  EXPECT_DEATH((void)ConcatCols(Matrix(2, 1), Matrix(3, 1)), "Check failed");
  EXPECT_DEATH((void)AddRowBroadcast(Matrix(2, 2), Matrix(1, 3)),
               "Check failed");
}

}  // namespace
}  // namespace rdd
