#include <gtest/gtest.h>

#include <cstdlib>

#include "util/env.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_writer.h"
#include "util/timer.h"

namespace rdd {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(StrFormat("%.2f%%", 81.75), "81.75%");
  EXPECT_EQ(StrFormat("%s", "plain"), "plain");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  const std::string long_str(500, 'x');
  EXPECT_EQ(StrFormat("%s!", long_str.c_str()), long_str + "!");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({"solo"}, ", "), "solo");
  EXPECT_EQ(StrJoin({}, ", "), "");
}

TEST(StrSplitTest, SplitsKeepingEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit(",x,", ','), (std::vector<std::string>{"", "x", ""}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(FormatDoubleTest, RoundsToDigits) {
  EXPECT_EQ(FormatDouble(81.849, 1), "81.8");
  EXPECT_EQ(FormatDouble(81.85, 0), "82");
  EXPECT_EQ(FormatDouble(-0.5, 2), "-0.50");
}

TEST(TableWriterTest, RendersAlignedTable) {
  TableWriter table({"Models", "Cora"});
  table.AddRow({"GCN", "81.8"});
  table.AddRow({"RDD(Ensemble)", "86.1"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| Models"), std::string::npos);
  EXPECT_NE(out.find("| GCN "), std::string::npos);
  EXPECT_NE(out.find("86.1"), std::string::npos);
  // Every line has equal width.
  size_t width = out.find('\n');
  size_t pos = 0;
  while (pos < out.size()) {
    const size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(TableWriterTest, SeparatorRows) {
  TableWriter table({"A"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  EXPECT_EQ(table.num_rows(), 2u);
  const std::string out = table.Render();
  // 6 lines of content + 3 rules + separator = rule count 4.
  int rules = 0;
  for (size_t pos = 0; (pos = out.find("+--", pos)) != std::string::npos;
       ++pos) {
    ++rules;
  }
  EXPECT_EQ(rules, 4);
}

TEST(TableWriterTest, CsvRendering) {
  TableWriter table({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddSeparator();  // Skipped in CSV.
  table.AddRow({"3", "4"});
  EXPECT_EQ(table.RenderCsv(), "a,b\n1,2\n3,4\n");
}

TEST(TableWriterDeathTest, WrongCellCountAborts) {
  TableWriter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only one"}), "Check failed");
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<double>(i);
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1e3,
              timer.ElapsedMillis() * 0.5 + 1.0);
}

TEST(TimerTest, RestartResets) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<double>(i);
  const double before = timer.ElapsedSeconds();
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), before + 1e-3);
}

TEST(LoggingTest, LevelFiltering) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  RDD_LOG(Info) << "should be suppressed";  // Must not crash.
  SetLogLevel(original);
}

TEST(LoggingDeathTest, CheckMacroAborts) {
  EXPECT_DEATH(RDD_CHECK(1 == 2) << "custom message",
               "Check failed: 1 == 2 custom message");
}

TEST(LoggingDeathTest, CheckOpPrintsOperands) {
  const int a = 3;
  const int b = 5;
  EXPECT_DEATH(RDD_CHECK_EQ(a, b), "\\(3 vs 5\\)");
  EXPECT_DEATH(RDD_CHECK_GT(a, b), "Check failed");
}

TEST(LoggingTest, CheckPassesSilently) {
  RDD_CHECK(true);
  RDD_CHECK_EQ(1, 1);
  RDD_CHECK_LE(1, 2);
  RDD_CHECK_GE(2, 2);
  RDD_CHECK_NE(1, 2);
  RDD_CHECK_LT(1, 2);
}

TEST(EnvTest, ParseBoolAcceptsDocumentedSpellings) {
  for (const char* truthy : {"1", "true", "TRUE", "True", "on", "yes", "YES"}) {
    EXPECT_TRUE(env::ParseBool(truthy, false)) << truthy;
  }
  for (const char* falsy : {"0", "false", "FALSE", "off", "no", "Off"}) {
    EXPECT_FALSE(env::ParseBool(falsy, true)) << falsy;
  }
}

TEST(EnvTest, ParseBoolFallsBackOnUnsetEmptyOrGarbage) {
  EXPECT_TRUE(env::ParseBool(nullptr, true));
  EXPECT_FALSE(env::ParseBool(nullptr, false));
  EXPECT_TRUE(env::ParseBool("", true));
  EXPECT_TRUE(env::ParseBool("ture", true));
  EXPECT_FALSE(env::ParseBool("2", false));
  EXPECT_FALSE(env::ParseBool("enabled", false));
}

TEST(EnvTest, ParseBoolReportsRecognition) {
  bool recognized = false;
  env::ParseBool("yes", false, &recognized);
  EXPECT_TRUE(recognized);
  env::ParseBool(nullptr, false, &recognized);
  EXPECT_TRUE(recognized);  // Unset is the documented default state.
  env::ParseBool("ture", false, &recognized);
  EXPECT_FALSE(recognized);
}

TEST(EnvTest, BoolEnvReadsTheEnvironment) {
  ASSERT_EQ(setenv("RDD_ENV_TEST_FLAG", "yes", 1), 0);
  EXPECT_TRUE(env::BoolEnv("RDD_ENV_TEST_FLAG", false));
  ASSERT_EQ(setenv("RDD_ENV_TEST_FLAG", "0", 1), 0);
  EXPECT_FALSE(env::BoolEnv("RDD_ENV_TEST_FLAG", true));
  ASSERT_EQ(unsetenv("RDD_ENV_TEST_FLAG"), 0);
  EXPECT_TRUE(env::BoolEnv("RDD_ENV_TEST_FLAG", true));
}

TEST(EnvTest, ParseIntParsesAndClamps) {
  EXPECT_EQ(env::ParseInt("7", 3, 1, 100), 7);
  EXPECT_EQ(env::ParseInt(nullptr, 3, 1, 100), 3);
  EXPECT_EQ(env::ParseInt("", 3, 1, 100), 3);
  EXPECT_EQ(env::ParseInt("abc", 3, 1, 100), 3);
  EXPECT_EQ(env::ParseInt("7x", 3, 1, 100), 3);
  EXPECT_EQ(env::ParseInt("0", 3, 1, 100), 1);
  EXPECT_EQ(env::ParseInt("-5", 3, 1, 100), 1);
  EXPECT_EQ(env::ParseInt("101", 3, 1, 100), 100);
}

TEST(EnvTest, ParseIntClampsWideValuesInsteadOfTruncating) {
  // 2^32 + 1 truncates to 1 through a 32-bit narrowing; the 64-bit parse
  // must clamp it to max instead.
  EXPECT_EQ(env::ParseInt("4294967297", 3, 1, 1024), 1024);
  EXPECT_EQ(env::ParseInt("99999999999999999999999999", 3, 1, 1024), 1024);
  EXPECT_EQ(env::ParseInt("-99999999999999999999999999", 3, 1, 1024), 1);
}

TEST(EnvTest, ParseDoubleParsesClampsAndFallsBack) {
  EXPECT_DOUBLE_EQ(env::ParseDouble("0.25", 0.05, 1e-4, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(env::ParseDouble("5e-2", 0.1, 1e-4, 1.0), 0.05);
  // Unset, empty, garbage, trailing junk, and NaN all keep the fallback.
  EXPECT_DOUBLE_EQ(env::ParseDouble(nullptr, 0.05, 1e-4, 1.0), 0.05);
  EXPECT_DOUBLE_EQ(env::ParseDouble("", 0.05, 1e-4, 1.0), 0.05);
  EXPECT_DOUBLE_EQ(env::ParseDouble("abc", 0.05, 1e-4, 1.0), 0.05);
  EXPECT_DOUBLE_EQ(env::ParseDouble("0.5x", 0.05, 1e-4, 1.0), 0.05);
  EXPECT_DOUBLE_EQ(env::ParseDouble("nan", 0.05, 1e-4, 1.0), 0.05);
  // Finite out-of-range values clamp into [min, max].
  EXPECT_DOUBLE_EQ(env::ParseDouble("0", 0.05, 1e-4, 1.0), 1e-4);
  EXPECT_DOUBLE_EQ(env::ParseDouble("-3.5", 0.05, 1e-4, 1.0), 1e-4);
  EXPECT_DOUBLE_EQ(env::ParseDouble("2.5", 0.05, 1e-4, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(env::ParseDouble("inf", 0.05, 1e-4, 1.0), 1.0);
}

TEST(EnvTest, DoubleEnvReadsTheEnvironment) {
  ASSERT_EQ(setenv("RDD_ENV_TEST_RATIO", "0.125", 1), 0);
  EXPECT_DOUBLE_EQ(env::DoubleEnv("RDD_ENV_TEST_RATIO", 0.05, 1e-4, 1.0),
                   0.125);
  ASSERT_EQ(unsetenv("RDD_ENV_TEST_RATIO"), 0);
  EXPECT_DOUBLE_EQ(env::DoubleEnv("RDD_ENV_TEST_RATIO", 0.05, 1e-4, 1.0),
                   0.05);
}

}  // namespace
}  // namespace rdd
