// End-to-end integration tests: the full pipeline (generate data -> build
// context -> train baselines and RDD -> compare) on a mid-size synthetic
// citation network. These tests assert the paper's qualitative claims hold
// in this implementation.

#include <gtest/gtest.h>

#include "core/rdd_trainer.h"
#include "data/citation_gen.h"
#include "data/serialize.h"
#include "ensemble/bagging.h"
#include "ensemble/bans.h"
#include "models/model_factory.h"
#include "nn/metrics.h"
#include "train/trainer.h"

namespace rdd {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // A scaled-down Cora-like network: same homophily/purity regime,
    // fewer nodes so the whole suite stays fast.
    CitationGenConfig config;
    config.name = "cora-mini";
    config.num_nodes = 800;
    config.num_features = 300;
    config.num_edges = 1700;
    config.num_classes = 5;
    config.homophily = 0.72;
    config.topic_purity = 0.32;
    config.labeled_per_class = 12;
    config.val_size = 120;
    config.test_size = 250;
    dataset_ = new Dataset(GenerateCitationNetwork(config, 1234));
    context_ = new GraphContext(GraphContext::FromDataset(*dataset_));

    // Train the shared baselines once.
    TrainConfig train;
    train.max_epochs = 120;
    ModelConfig gcn_config;
    auto gcn = BuildModel(*context_, gcn_config, 7);
    gcn_report_ = new TrainReport(TrainSupervised(gcn.get(), *dataset_, train));

    RddConfig rdd_config;
    rdd_config.num_base_models = 4;
    rdd_config.train = train;
    rdd_result_ = new RddResult(TrainRdd(*dataset_, *context_, rdd_config, 7));
  }
  static void TearDownTestSuite() {
    delete rdd_result_;
    delete gcn_report_;
    delete context_;
    delete dataset_;
  }

  static Dataset* dataset_;
  static GraphContext* context_;
  static TrainReport* gcn_report_;
  static RddResult* rdd_result_;
};

Dataset* IntegrationTest::dataset_ = nullptr;
GraphContext* IntegrationTest::context_ = nullptr;
TrainReport* IntegrationTest::gcn_report_ = nullptr;
RddResult* IntegrationTest::rdd_result_ = nullptr;

TEST_F(IntegrationTest, GcnBaselineIsHealthy) {
  // Chance level is 20%; a healthy GCN should be far above it.
  EXPECT_GT(gcn_report_->test_accuracy, 0.6);
}

TEST_F(IntegrationTest, RddEnsembleBeatsPlainGcn) {
  // The paper's headline claim (Table 3): RDD(Ensemble) > GCN.
  EXPECT_GT(rdd_result_->ensemble_test_accuracy,
            gcn_report_->test_accuracy);
}

TEST_F(IntegrationTest, RddSingleBeatsPlainGcn) {
  // Second headline claim: even the last single student beats plain GCN.
  EXPECT_GT(rdd_result_->single_test_accuracy, gcn_report_->test_accuracy);
}

TEST_F(IntegrationTest, SelfBoostingImprovesStudents) {
  // The last student should be at least as good as the first (boosting
  // cycle of Fig. 2); allow a small tolerance for seed noise.
  const double first =
      Accuracy(rdd_result_->teacher.member_probs(0), dataset_->labels,
               dataset_->split.test);
  const double last =
      Accuracy(rdd_result_->teacher.member_probs(rdd_result_->teacher.size() - 1),
               dataset_->labels, dataset_->split.test);
  EXPECT_GT(last, first - 0.01);
}

TEST_F(IntegrationTest, EnsembleAtLeastMemberAverage) {
  EXPECT_GE(rdd_result_->ensemble_test_accuracy,
            rdd_result_->average_member_test_accuracy - 0.01);
}

TEST_F(IntegrationTest, ReliabilityDiagnosticsWellFormed) {
  for (size_t t = 1; t < rdd_result_->diagnostics.size(); ++t) {
    const StudentDiagnostics& diag = rdd_result_->diagnostics[t];
    EXPECT_GT(diag.reliable_nodes, 0);
    EXPECT_LE(diag.reliable_nodes, dataset_->NumNodes());
    EXPECT_LE(diag.distill_nodes, dataset_->NumNodes());
    EXPECT_LE(diag.reliable_edges, dataset_->graph.num_edges());
  }
}

TEST_F(IntegrationTest, SerializeTrainRoundTrip) {
  // Saving and reloading the dataset must not change training results.
  const std::string path = std::string(::testing::TempDir()) + "/integ.rdd";
  ASSERT_TRUE(SaveDataset(*dataset_, path).ok());
  StatusOr<Dataset> loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok());
  const GraphContext loaded_context = GraphContext::FromDataset(*loaded);
  TrainConfig train;
  train.max_epochs = 40;
  auto model_a = BuildModel(*context_, ModelConfig{}, 99);
  auto model_b = BuildModel(loaded_context, ModelConfig{}, 99);
  const TrainReport report_a = TrainSupervised(model_a.get(), *dataset_, train);
  const TrainReport report_b = TrainSupervised(model_b.get(), *loaded, train);
  EXPECT_DOUBLE_EQ(report_a.test_accuracy, report_b.test_accuracy);
  std::remove(path.c_str());
}

TEST_F(IntegrationTest, BaggingAndBansBeatSingleGcn) {
  TrainConfig train;
  train.max_epochs = 120;
  BaggingConfig bagging;
  bagging.num_models = 3;
  bagging.train = train;
  const EnsembleTrainResult bag =
      TrainBagging(*dataset_, *context_, bagging, 31);
  EXPECT_GT(bag.ensemble_test_accuracy, gcn_report_->test_accuracy - 0.01);

  BansConfig bans;
  bans.num_models = 3;
  bans.train = train;
  const EnsembleTrainResult ban = TrainBans(*dataset_, *context_, bans, 31);
  EXPECT_GT(ban.ensemble_test_accuracy, gcn_report_->test_accuracy - 0.01);
}

}  // namespace
}  // namespace rdd
