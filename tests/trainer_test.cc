#include "train/trainer.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "data/citation_gen.h"
#include "models/model_factory.h"
#include "train/experiment.h"

namespace rdd {
namespace {

class TrainerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CitationGenConfig config;
    config.num_nodes = 300;
    config.num_features = 100;
    config.num_edges = 900;
    config.num_classes = 3;
    config.homophily = 0.85;
    config.topic_purity = 0.5;
    config.labeled_per_class = 8;
    config.val_size = 50;
    config.test_size = 80;
    dataset_ = new Dataset(GenerateCitationNetwork(config, 5));
    context_ = new GraphContext(GraphContext::FromDataset(*dataset_));
  }
  static void TearDownTestSuite() {
    delete context_;
    delete dataset_;
  }
  static Dataset* dataset_;
  static GraphContext* context_;
};

Dataset* TrainerTest::dataset_ = nullptr;
GraphContext* TrainerTest::context_ = nullptr;

TEST_F(TrainerTest, SupervisedTrainingLearns) {
  auto model = BuildModel(*context_, ModelConfig{}, 1);
  TrainConfig config;
  config.max_epochs = 80;
  const TrainReport report = TrainSupervised(model.get(), *dataset_, config);
  EXPECT_GT(report.test_accuracy, 0.6);
  EXPECT_GT(report.best_val_accuracy, 0.6);
  EXPECT_GT(report.epochs_run, 0);
  EXPECT_LE(report.epochs_run, 80);
  EXPECT_GT(report.train_seconds, 0.0);
  EXPECT_EQ(static_cast<int>(report.val_history.size()), report.epochs_run);
}

TEST_F(TrainerTest, EarlyStoppingTriggersBeforeMaxEpochs) {
  auto model = BuildModel(*context_, ModelConfig{}, 2);
  TrainConfig config;
  config.max_epochs = 500;
  config.patience = 10;
  const TrainReport report = TrainSupervised(model.get(), *dataset_, config);
  EXPECT_LT(report.epochs_run, 500);
}

TEST_F(TrainerTest, RestoreBestRecoversValidationPeak) {
  auto model = BuildModel(*context_, ModelConfig{}, 3);
  TrainConfig config;
  config.max_epochs = 60;
  config.restore_best = true;
  const TrainReport report = TrainSupervised(model.get(), *dataset_, config);
  // After restore, current validation accuracy equals the recorded best.
  const double val_now =
      EvaluateAccuracy(model.get(), *dataset_, dataset_->split.val);
  EXPECT_NEAR(val_now, report.best_val_accuracy, 1e-9);
}

TEST_F(TrainerTest, CustomLossHookReceivesEpochs) {
  auto model = BuildModel(*context_, ModelConfig{}, 4);
  TrainConfig config;
  config.max_epochs = 5;
  config.patience = 100;
  std::vector<int> seen;
  TrainWithLoss(model.get(), *dataset_, config,
                [&](const ModelOutput& output, int epoch) {
                  seen.push_back(epoch);
                  return ag::SoftmaxCrossEntropy(
                      output.logits, dataset_->labels, dataset_->split.train,
                      ag::Reduction::kMean);
                });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(TrainerTest, SnapshotRestoreRoundTrip) {
  auto model = BuildModel(*context_, ModelConfig{}, 5);
  std::vector<Variable> params = model->Parameters();
  const std::vector<Matrix> snapshot = SnapshotParameters(params);
  const Matrix before = model->Forward(false).logits.value();
  // Perturb.
  params[0].mutable_value()->Fill(0.5f);
  EXPECT_FALSE(model->Forward(false).logits.value().Equals(before));
  RestoreParameters(snapshot, &params);
  EXPECT_TRUE(model->Forward(false).logits.value().Equals(before));
}

TEST_F(TrainerTest, EvaluateAccuracyInRange) {
  auto model = BuildModel(*context_, ModelConfig{}, 6);
  const double acc =
      EvaluateAccuracy(model.get(), *dataset_, dataset_->split.test);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST_F(TrainerTest, DefaultEvalHooksMatchFourArgOverload) {
  // Passing a default-constructed EvalHooks must be bit-identical to the
  // four-argument overload (the documented contract).
  const LossFn supervised = [](const ModelOutput& output, int) {
    return ag::SoftmaxCrossEntropy(output.logits, dataset_->labels,
                                   dataset_->split.train,
                                   ag::Reduction::kMean);
  };
  TrainConfig config;
  config.max_epochs = 25;

  auto plain = BuildModel(*context_, ModelConfig{}, 7);
  const TrainReport a = TrainWithLoss(plain.get(), *dataset_, config,
                                      supervised);
  auto hooked = BuildModel(*context_, ModelConfig{}, 7);
  const TrainReport b = TrainWithLoss(hooked.get(), *dataset_, config,
                                      supervised, EvalHooks{});

  EXPECT_EQ(a.epochs_run, b.epochs_run);
  EXPECT_EQ(a.best_val_accuracy, b.best_val_accuracy);
  EXPECT_EQ(a.test_accuracy, b.test_accuracy);
  EXPECT_EQ(a.val_history, b.val_history);
  EXPECT_TRUE(plain->Forward(false).logits.value().Equals(
      hooked->Forward(false).logits.value()));
}

TEST_F(TrainerTest, EvalHooksOverridesValidateAndTest) {
  auto model = BuildModel(*context_, ModelConfig{}, 8);
  TrainConfig config;
  config.max_epochs = 4;
  config.patience = 100;
  config.restore_best = false;
  EvalHooks hooks;
  int validate_calls = 0;
  hooks.validate = [&](GraphModel*) { return 0.1 * ++validate_calls; };
  hooks.test = [](GraphModel*) { return 0.625; };
  const TrainReport report = TrainWithLoss(
      model.get(), *dataset_, config,
      [&](const ModelOutput& output, int) {
        return ag::SoftmaxCrossEntropy(output.logits, dataset_->labels,
                                       dataset_->split.train,
                                       ag::Reduction::kMean);
      },
      hooks);
  EXPECT_EQ(validate_calls, 4);  // eval_every = 1: every epoch
  EXPECT_EQ(report.test_accuracy, 0.625);
  EXPECT_NEAR(report.best_val_accuracy, 0.4, 1e-12);
}

TEST_F(TrainerTest, EvalEveryAmortizesValidationAndCarriesValuesForward) {
  auto model = BuildModel(*context_, ModelConfig{}, 9);
  TrainConfig config;
  config.max_epochs = 8;
  config.patience = 100;
  config.restore_best = false;
  EvalHooks hooks;
  hooks.eval_every = 3;
  std::vector<int> evaluated_at;
  int epoch_now = 0;
  hooks.validate = [&](GraphModel*) {
    evaluated_at.push_back(epoch_now);
    return 0.01 * epoch_now;
  };
  const TrainReport report = TrainWithLoss(
      model.get(), *dataset_, config,
      [&](const ModelOutput& output, int epoch) {
        epoch_now = epoch;
        return ag::SoftmaxCrossEntropy(output.logits, dataset_->labels,
                                       dataset_->split.train,
                                       ag::Reduction::kMean);
      },
      hooks);
  // Evaluated on multiples of eval_every plus the final epoch; skipped
  // epochs carry the last measurement forward in val_history.
  EXPECT_EQ(evaluated_at, (std::vector<int>{0, 3, 6, 7}));
  ASSERT_EQ(report.epochs_run, 8);
  ASSERT_EQ(report.val_history.size(), 8u);
  EXPECT_EQ(report.val_history[1], report.val_history[0]);
  EXPECT_EQ(report.val_history[2], report.val_history[0]);
  EXPECT_EQ(report.val_history[4], report.val_history[3]);
  EXPECT_EQ(report.val_history[5], report.val_history[3]);
}

TEST_F(TrainerTest, EvalEveryPatienceCountsEvaluations) {
  auto model = BuildModel(*context_, ModelConfig{}, 10);
  TrainConfig config;
  config.max_epochs = 100;
  config.patience = 2;
  config.restore_best = false;
  EvalHooks hooks;
  hooks.eval_every = 3;
  // Scripted validation: improves once, then stagnates. With eval_every = 3
  // the patience counter only advances on evaluated epochs, so the run
  // stops after the evaluation at epoch 6 (two stagnant EVALUATIONS), not
  // after two stagnant epochs.
  const double scripted[] = {1.0, 0.5, 0.4, 0.3, 0.2};
  int call = 0;
  hooks.validate = [&](GraphModel*) { return scripted[call++]; };
  const TrainReport report = TrainWithLoss(
      model.get(), *dataset_, config,
      [&](const ModelOutput& output, int) {
        return ag::SoftmaxCrossEntropy(output.logits, dataset_->labels,
                                       dataset_->split.train,
                                       ag::Reduction::kMean);
      },
      hooks);
  EXPECT_EQ(call, 3);            // epochs 0, 3, 6
  EXPECT_EQ(report.epochs_run, 7);
}

TEST(SummarizeTest, EmptyInput) {
  const TrialStats stats = Summarize({});
  EXPECT_EQ(stats.count, 0);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
}

TEST(SummarizeTest, SingleValue) {
  const TrialStats stats = Summarize({4.0});
  EXPECT_DOUBLE_EQ(stats.mean, 4.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
  EXPECT_DOUBLE_EQ(stats.min, 4.0);
  EXPECT_DOUBLE_EQ(stats.max, 4.0);
}

TEST(SummarizeTest, KnownStatistics) {
  const TrialStats stats = Summarize({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(stats.mean, 4.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 2.0);
  EXPECT_DOUBLE_EQ(stats.min, 2.0);
  EXPECT_DOUBLE_EQ(stats.max, 6.0);
  EXPECT_EQ(stats.count, 3);
}

TEST(RunTrialsTest, PassesTrialIndices) {
  std::vector<int> indices;
  const TrialStats stats = RunTrials(4, [&](int i) {
    indices.push_back(i);
    return static_cast<double>(i);
  });
  EXPECT_EQ(indices, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(stats.mean, 1.5);
}

}  // namespace
}  // namespace rdd
