#include "train/trainer.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "data/citation_gen.h"
#include "models/model_factory.h"
#include "train/experiment.h"

namespace rdd {
namespace {

class TrainerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CitationGenConfig config;
    config.num_nodes = 300;
    config.num_features = 100;
    config.num_edges = 900;
    config.num_classes = 3;
    config.homophily = 0.85;
    config.topic_purity = 0.5;
    config.labeled_per_class = 8;
    config.val_size = 50;
    config.test_size = 80;
    dataset_ = new Dataset(GenerateCitationNetwork(config, 5));
    context_ = new GraphContext(GraphContext::FromDataset(*dataset_));
  }
  static void TearDownTestSuite() {
    delete context_;
    delete dataset_;
  }
  static Dataset* dataset_;
  static GraphContext* context_;
};

Dataset* TrainerTest::dataset_ = nullptr;
GraphContext* TrainerTest::context_ = nullptr;

TEST_F(TrainerTest, SupervisedTrainingLearns) {
  auto model = BuildModel(*context_, ModelConfig{}, 1);
  TrainConfig config;
  config.max_epochs = 80;
  const TrainReport report = TrainSupervised(model.get(), *dataset_, config);
  EXPECT_GT(report.test_accuracy, 0.6);
  EXPECT_GT(report.best_val_accuracy, 0.6);
  EXPECT_GT(report.epochs_run, 0);
  EXPECT_LE(report.epochs_run, 80);
  EXPECT_GT(report.train_seconds, 0.0);
  EXPECT_EQ(static_cast<int>(report.val_history.size()), report.epochs_run);
}

TEST_F(TrainerTest, EarlyStoppingTriggersBeforeMaxEpochs) {
  auto model = BuildModel(*context_, ModelConfig{}, 2);
  TrainConfig config;
  config.max_epochs = 500;
  config.patience = 10;
  const TrainReport report = TrainSupervised(model.get(), *dataset_, config);
  EXPECT_LT(report.epochs_run, 500);
}

TEST_F(TrainerTest, RestoreBestRecoversValidationPeak) {
  auto model = BuildModel(*context_, ModelConfig{}, 3);
  TrainConfig config;
  config.max_epochs = 60;
  config.restore_best = true;
  const TrainReport report = TrainSupervised(model.get(), *dataset_, config);
  // After restore, current validation accuracy equals the recorded best.
  const double val_now =
      EvaluateAccuracy(model.get(), *dataset_, dataset_->split.val);
  EXPECT_NEAR(val_now, report.best_val_accuracy, 1e-9);
}

TEST_F(TrainerTest, CustomLossHookReceivesEpochs) {
  auto model = BuildModel(*context_, ModelConfig{}, 4);
  TrainConfig config;
  config.max_epochs = 5;
  config.patience = 100;
  std::vector<int> seen;
  TrainWithLoss(model.get(), *dataset_, config,
                [&](const ModelOutput& output, int epoch) {
                  seen.push_back(epoch);
                  return ag::SoftmaxCrossEntropy(
                      output.logits, dataset_->labels, dataset_->split.train,
                      ag::Reduction::kMean);
                });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(TrainerTest, SnapshotRestoreRoundTrip) {
  auto model = BuildModel(*context_, ModelConfig{}, 5);
  std::vector<Variable> params = model->Parameters();
  const std::vector<Matrix> snapshot = SnapshotParameters(params);
  const Matrix before = model->Forward(false).logits.value();
  // Perturb.
  params[0].mutable_value()->Fill(0.5f);
  EXPECT_FALSE(model->Forward(false).logits.value().Equals(before));
  RestoreParameters(snapshot, &params);
  EXPECT_TRUE(model->Forward(false).logits.value().Equals(before));
}

TEST_F(TrainerTest, EvaluateAccuracyInRange) {
  auto model = BuildModel(*context_, ModelConfig{}, 6);
  const double acc =
      EvaluateAccuracy(model.get(), *dataset_, dataset_->split.test);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(SummarizeTest, EmptyInput) {
  const TrialStats stats = Summarize({});
  EXPECT_EQ(stats.count, 0);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
}

TEST(SummarizeTest, SingleValue) {
  const TrialStats stats = Summarize({4.0});
  EXPECT_DOUBLE_EQ(stats.mean, 4.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
  EXPECT_DOUBLE_EQ(stats.min, 4.0);
  EXPECT_DOUBLE_EQ(stats.max, 4.0);
}

TEST(SummarizeTest, KnownStatistics) {
  const TrialStats stats = Summarize({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(stats.mean, 4.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 2.0);
  EXPECT_DOUBLE_EQ(stats.min, 2.0);
  EXPECT_DOUBLE_EQ(stats.max, 6.0);
  EXPECT_EQ(stats.count, 3);
}

TEST(RunTrialsTest, PassesTrialIndices) {
  std::vector<int> indices;
  const TrialStats stats = RunTrials(4, [&](int i) {
    indices.push_back(i);
    return static_cast<double>(i);
  });
  EXPECT_EQ(indices, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(stats.mean, 1.5);
}

}  // namespace
}  // namespace rdd
