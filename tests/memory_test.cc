// Tests for the pooled memory subsystem: BufferPool accounting, PooledBuffer
// RAII, Workspace scoping, Matrix buffer reuse, early release of tape
// buffers during Backward(), the zero-allocation steady-state guarantee of
// the training loop, and bit-exactness of pooled vs unpooled full RDD runs.

#include "memory/buffer_pool.h"

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "core/rdd_trainer.h"
#include "data/citation_gen.h"
#include "memory/workspace.h"
#include "models/model_factory.h"
#include "tensor/matrix.h"
#include "train/trainer.h"

namespace rdd {
namespace {

using memory::BufferPool;
using memory::PoolStats;
using memory::PooledBuffer;
using memory::Workspace;

/// Restores the pool's enabled flag on scope exit so tests compose (the pool
/// is process-global and other suites assume it is enabled).
class PoolEnabledGuard {
 public:
  PoolEnabledGuard() : saved_(BufferPool::Global().enabled()) {}
  ~PoolEnabledGuard() {
    BufferPool::Global().set_enabled(saved_);
    BufferPool::Global().Trim();
  }

 private:
  bool saved_;
};

/// Trims and resets the global pool with the enabled flag forced on, so each
/// test starts from empty freelists and zeroed counters.
void ResetPool() {
  BufferPool::Global().set_enabled(true);
  BufferPool::Global().Trim();
  BufferPool::Global().ResetStats();
}

TEST(BufferPoolTest, MissThenHitOnSameSize) {
  PoolEnabledGuard guard;
  ResetPool();
  BufferPool& pool = BufferPool::Global();

  float* a = pool.Acquire(64);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().live_floats, 64u);

  pool.Release(a, 64);
  EXPECT_EQ(pool.stats().releases, 1u);
  EXPECT_EQ(pool.stats().free_buffers, 1u);
  EXPECT_EQ(pool.stats().free_floats, 64u);
  EXPECT_EQ(pool.stats().live_floats, 0u);

  // The cached buffer is handed back for the same size.
  float* b = pool.Acquire(64);
  EXPECT_EQ(b, a);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().free_buffers, 0u);
  pool.Release(b, 64);
}

TEST(BufferPoolTest, EveryBufferIsCacheLineAligned) {
  PoolEnabledGuard guard;
  ResetPool();
  BufferPool& pool = BufferPool::Global();

  // Fresh heap allocations of assorted (deliberately odd) sizes.
  std::vector<std::pair<float*, size_t>> held;
  for (size_t n : {1u, 7u, 63u, 64u, 65u, 1000u, 4097u}) {
    float* ptr = pool.Acquire(n);
    ASSERT_NE(ptr, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(ptr) % memory::kBufferAlignment, 0u)
        << "fresh buffer of " << n << " floats";
    held.emplace_back(ptr, n);
  }
  for (auto [ptr, n] : held) pool.Release(ptr, n);

  // Recycled buffers keep the alignment (they are the same pointers, but
  // this is the property the SIMD packed-GEMM panels rely on).
  for (size_t n : {1u, 7u, 63u, 64u, 65u, 1000u, 4097u}) {
    float* ptr = pool.Acquire(n);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(ptr) % memory::kBufferAlignment, 0u)
        << "recycled buffer of " << n << " floats";
    pool.Release(ptr, n);
  }

  // The RAII handle and the disabled-pool (straight heap) path too.
  PooledBuffer handle(129);
  EXPECT_EQ(
      reinterpret_cast<uintptr_t>(handle.data()) % memory::kBufferAlignment,
      0u);
  pool.set_enabled(false);
  float* unpooled = pool.Acquire(77);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(unpooled) % memory::kBufferAlignment,
            0u);
  pool.Release(unpooled, 77);
}

TEST(BufferPoolTest, BucketsAreExactSizes) {
  PoolEnabledGuard guard;
  ResetPool();
  BufferPool& pool = BufferPool::Global();

  float* a = pool.Acquire(64);
  pool.Release(a, 64);
  // A near-miss size must not steal from the 64-float bucket.
  float* b = pool.Acquire(63);
  EXPECT_EQ(pool.stats().misses, 2u);
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().free_buffers, 1u);
  pool.Release(b, 63);
}

TEST(BufferPoolTest, ZeroSizeAcquireIsNull) {
  PoolEnabledGuard guard;
  ResetPool();
  BufferPool& pool = BufferPool::Global();
  EXPECT_EQ(pool.Acquire(0), nullptr);
  pool.Release(nullptr, 0);  // Must be a safe no-op.
  EXPECT_EQ(pool.stats().releases, 0u);
}

TEST(BufferPoolTest, TrimFreesCachedBuffersOnly) {
  PoolEnabledGuard guard;
  ResetPool();
  BufferPool& pool = BufferPool::Global();

  float* live = pool.Acquire(32);
  float* cached = pool.Acquire(32);
  pool.Release(cached, 32);
  pool.Trim();
  EXPECT_EQ(pool.stats().free_buffers, 0u);
  EXPECT_EQ(pool.stats().free_floats, 0u);
  EXPECT_EQ(pool.stats().trims, 1u);
  // The live buffer is untouched and still writable.
  live[0] = 1.0f;
  live[31] = 2.0f;
  EXPECT_EQ(pool.stats().live_floats, 32u);
  pool.Release(live, 32);
}

TEST(BufferPoolTest, DisabledModeAlwaysHitsTheHeap) {
  PoolEnabledGuard guard;
  ResetPool();
  BufferPool& pool = BufferPool::Global();
  pool.set_enabled(false);
  EXPECT_FALSE(pool.enabled());

  float* a = pool.Acquire(48);
  pool.Release(a, 48);
  float* b = pool.Acquire(48);
  pool.Release(b, 48);
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.free_buffers, 0u);  // Nothing is cached when disabled.
  EXPECT_EQ(stats.live_floats, 0u);
}

TEST(BufferPoolTest, PeakLiveFloatsTracksHighWaterMark) {
  PoolEnabledGuard guard;
  ResetPool();
  BufferPool& pool = BufferPool::Global();
  float* a = pool.Acquire(100);
  float* b = pool.Acquire(200);
  pool.Release(a, 100);
  pool.Release(b, 200);
  EXPECT_EQ(pool.stats().peak_live_floats, 300u);
  EXPECT_EQ(pool.stats().live_floats, 0u);
}

TEST(BufferPoolTest, ConcurrentAcquireReleaseIsSafe) {
  PoolEnabledGuard guard;
  ResetPool();
  BufferPool& pool = BufferPool::Global();
  constexpr int kThreads = 8;
  constexpr int kIterations = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kIterations; ++i) {
        const size_t n = static_cast<size_t>(8 + (t + i) % 5 * 16);
        float* ptr = pool.Acquire(n);
        ptr[0] = static_cast<float>(i);
        ptr[n - 1] = static_cast<float>(t);
        pool.Release(ptr, n);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(stats.releases, static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(stats.live_floats, 0u);
}

TEST(PooledBufferTest, RaiiReturnsBufferToPool) {
  PoolEnabledGuard guard;
  ResetPool();
  { PooledBuffer buffer(128); }
  EXPECT_EQ(BufferPool::Global().stats().free_buffers, 1u);
  PooledBuffer reused(128);
  EXPECT_EQ(BufferPool::Global().stats().hits, 1u);
}

TEST(PooledBufferTest, MoveTransfersOwnership) {
  PoolEnabledGuard guard;
  ResetPool();
  PooledBuffer a(16);
  float* raw = a.data();
  PooledBuffer b(std::move(a));
  EXPECT_EQ(b.data(), raw);
  EXPECT_EQ(b.size(), 16u);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
  // Only one buffer is ever released despite two handles existing.
  b.reset();
  EXPECT_EQ(BufferPool::Global().stats().releases, 1u);
}

TEST(WorkspaceTest, TrimsOnlyAtOutermostExit) {
  PoolEnabledGuard guard;
  ResetPool();
  EXPECT_EQ(Workspace::depth(), 0);
  {
    Workspace outer;
    EXPECT_EQ(Workspace::depth(), 1);
    { Matrix scratch(5, 7); }  // Released into the pool.
    {
      Workspace inner;
      EXPECT_EQ(Workspace::depth(), 2);
    }
    // Leaving a NESTED scope keeps the cache: a multi-student run must
    // recycle buffers across its per-student Workspaces.
    EXPECT_GT(Workspace::Stats().free_buffers, 0u);
  }
  EXPECT_EQ(Workspace::depth(), 0);
  // Leaving the outermost scope trims, so one-shot callers do not pin a
  // training run's high-water mark forever.
  EXPECT_EQ(Workspace::Stats().free_buffers, 0u);
}

TEST(MatrixPoolTest, ReusesFreedBufferAndZeroFills) {
  PoolEnabledGuard guard;
  ResetPool();
  float* raw = nullptr;
  {
    Matrix garbage(9, 11);
    garbage.Fill(123.25f);
    raw = garbage.Data();
  }
  // The recycled buffer arrives dirty and Matrix must zero it: the zero fill
  // is what keeps pooled and unpooled runs bit-identical.
  Matrix reused(9, 11);
  EXPECT_EQ(reused.Data(), raw);
  EXPECT_EQ(BufferPool::Global().stats().hits, 1u);
  for (int64_t i = 0; i < reused.size(); ++i) {
    ASSERT_EQ(reused.Data()[i], 0.0f) << "index " << i;
  }
}

TEST(MatrixPoolTest, CopyAssignReusesDestinationBuffer) {
  PoolEnabledGuard guard;
  ResetPool();
  Matrix dst(4, 6);
  float* original = dst.Data();
  Matrix src(4, 6);
  src.Fill(2.5f);
  dst = src;
  EXPECT_EQ(dst.Data(), original);  // Same-size assign reuses in place.
  EXPECT_TRUE(dst.Equals(src));
}

TEST(BackwardReleaseTest, IntermediateBuffersReturnToPoolDuringBackward) {
  PoolEnabledGuard guard;
  ResetPool();
  // 17x23 is a shape no other live tensor in this test uses, so a pool hit
  // for it below can only come from a buffer Backward() released.
  Variable x(Matrix::Constant(17, 23, 1.0f), /*requires_grad=*/true);
  Variable h = ag::Relu(x);
  Variable loss = ag::SumAll(h);
  h = Variable();  // Drop the external handle; only the tape holds h now.

  BufferPool::Global().ResetStats();
  loss.Backward();
  const PoolStats after = BufferPool::Global().stats();
  // h's value and gradient (and the op scratch) went back to the pool while
  // `loss` — and therefore the tape — is still alive.
  EXPECT_GT(after.releases, 0u);
  EXPECT_GT(after.free_buffers, 0u);

  Matrix probe(17, 23);
  EXPECT_GT(BufferPool::Global().stats().hits, after.hits);

  // The leaf keeps both its value and its gradient.
  EXPECT_TRUE(x.value().Equals(Matrix::Constant(17, 23, 1.0f)));
  EXPECT_TRUE(x.grad().Equals(Matrix::Constant(17, 23, 1.0f)));
}

TEST(BackwardReleaseTest, ExternallyHeldValuesSurviveBackward) {
  PoolEnabledGuard guard;
  ResetPool();
  Variable x(Matrix::Constant(3, 4, 2.0f), /*requires_grad=*/true);
  Variable h = ag::Relu(x);  // External handle kept across Backward().
  Variable loss = ag::SumAll(h);
  loss.Backward();
  EXPECT_TRUE(h.value().Equals(Matrix::Constant(3, 4, 2.0f)));
  EXPECT_EQ(loss.value().At(0, 0), 24.0f);
  EXPECT_TRUE(x.grad().Equals(Matrix::Constant(3, 4, 1.0f)));
}

class MemoryTrainingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CitationGenConfig config;
    config.num_nodes = 300;
    config.num_features = 100;
    config.num_edges = 900;
    config.num_classes = 3;
    config.homophily = 0.85;
    config.topic_purity = 0.5;
    config.labeled_per_class = 8;
    config.val_size = 50;
    config.test_size = 80;
    dataset_ = new Dataset(GenerateCitationNetwork(config, 17));
    context_ = new GraphContext(GraphContext::FromDataset(*dataset_));
  }
  static void TearDownTestSuite() {
    delete context_;
    delete dataset_;
  }
  static Dataset* dataset_;
  static GraphContext* context_;
};

Dataset* MemoryTrainingTest::dataset_ = nullptr;
GraphContext* MemoryTrainingTest::context_ = nullptr;

// The tentpole regression test: after a two-epoch warm-up (first tape, Adam
// state, first best-weights snapshot) a training epoch touches the heap zero
// times — every tensor it makes comes from the pool.
TEST_F(MemoryTrainingTest, SteadyStateEpochsHaveZeroPoolMisses) {
  PoolEnabledGuard guard;
  ResetPool();
  auto model = BuildModel(*context_, ModelConfig{}, 7);
  TrainConfig config;
  config.max_epochs = 8;
  config.patience = 100;  // Disable early stopping: run all epochs.
  std::vector<uint64_t> misses_at_epoch;
  const TrainReport report = TrainWithLoss(
      model.get(), *dataset_, config,
      [&](const ModelOutput& output, int /*epoch*/) {
        misses_at_epoch.push_back(Workspace::Stats().misses);
        return ag::SoftmaxCrossEntropy(output.logits, dataset_->labels,
                                       dataset_->split.train,
                                       ag::Reduction::kMean);
      });
  ASSERT_EQ(report.epochs_run, config.max_epochs);
  ASSERT_EQ(misses_at_epoch.size(),
            static_cast<size_t>(config.max_epochs));
  for (size_t e = 3; e < misses_at_epoch.size(); ++e) {
    EXPECT_EQ(misses_at_epoch[e], misses_at_epoch[2])
        << "epoch " << e - 1 << " allocated from the heap";
  }
  // ...and so does the tail of the run: the last epoch's backward, the
  // best-weights restore (a move), and the final test evaluation.
  EXPECT_EQ(Workspace::Stats().misses, misses_at_epoch[2]);
  // Sanity: the run did meaningful work through the pool.
  EXPECT_GT(Workspace::Stats().hits, 0u);
}

// Pooling changes only where bytes live, never any numeric result: a full
// RDD run (teacher ensembling, reliability masks, distillation losses) is
// bit-identical with the pool on and off.
TEST_F(MemoryTrainingTest, PooledAndUnpooledRddRunsAreBitIdentical) {
  PoolEnabledGuard guard;
  RddConfig config;
  config.num_base_models = 2;
  config.train.max_epochs = 25;

  BufferPool::Global().set_enabled(true);
  const RddResult pooled = TrainRdd(*dataset_, *context_, config, 11);

  BufferPool::Global().set_enabled(false);
  BufferPool::Global().Trim();
  const RddResult unpooled = TrainRdd(*dataset_, *context_, config, 11);

  EXPECT_TRUE(pooled.teacher.PredictProbs().Equals(
      unpooled.teacher.PredictProbs()));
  EXPECT_EQ(pooled.ensemble_test_accuracy, unpooled.ensemble_test_accuracy);
  EXPECT_EQ(pooled.single_test_accuracy, unpooled.single_test_accuracy);
  EXPECT_EQ(pooled.average_member_test_accuracy,
            unpooled.average_member_test_accuracy);
  ASSERT_EQ(pooled.alphas.size(), unpooled.alphas.size());
  for (size_t t = 0; t < pooled.alphas.size(); ++t) {
    EXPECT_EQ(pooled.alphas[t], unpooled.alphas[t]) << "member " << t;
  }
  ASSERT_EQ(pooled.reports.size(), unpooled.reports.size());
  for (size_t t = 0; t < pooled.reports.size(); ++t) {
    EXPECT_EQ(pooled.reports[t].epochs_run, unpooled.reports[t].epochs_run);
    EXPECT_EQ(pooled.reports[t].val_history,
              unpooled.reports[t].val_history);
  }
}

}  // namespace
}  // namespace rdd
