#include "data/citation_gen.h"

#include <gtest/gtest.h>

#include "graph/components.h"
#include "graph/metrics.h"

namespace rdd {
namespace {

/// A small config that keeps generator tests fast.
CitationGenConfig SmallConfig() {
  CitationGenConfig config;
  config.name = "small";
  config.num_nodes = 600;
  config.num_features = 200;
  config.num_edges = 1500;
  config.num_classes = 4;
  config.labeled_per_class = 10;
  config.val_size = 80;
  config.test_size = 120;
  return config;
}

TEST(CitationGenTest, ShapesMatchConfig) {
  const CitationGenConfig config = SmallConfig();
  const Dataset d = GenerateCitationNetwork(config, 1);
  EXPECT_EQ(d.NumNodes(), config.num_nodes);
  EXPECT_EQ(d.FeatureDim(), config.num_features);
  EXPECT_EQ(d.graph.num_edges(), config.num_edges);
  EXPECT_EQ(d.num_classes, config.num_classes);
  EXPECT_EQ(static_cast<int64_t>(d.split.train.size()),
            config.num_classes * config.labeled_per_class);
  EXPECT_EQ(static_cast<int64_t>(d.split.val.size()), config.val_size);
  EXPECT_EQ(static_cast<int64_t>(d.split.test.size()), config.test_size);
}

TEST(CitationGenTest, ValidatesCleanly) {
  const Dataset d = GenerateCitationNetwork(SmallConfig(), 2);
  std::string error;
  EXPECT_TRUE(ValidateDataset(d, &error)) << error;
}

TEST(CitationGenTest, DeterministicForSeed) {
  const Dataset a = GenerateCitationNetwork(SmallConfig(), 7);
  const Dataset b = GenerateCitationNetwork(SmallConfig(), 7);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.split.train, b.split.train);
  EXPECT_EQ(a.features.nnz(), b.features.nnz());
}

TEST(CitationGenTest, DifferentSeedsDiffer) {
  const Dataset a = GenerateCitationNetwork(SmallConfig(), 7);
  const Dataset b = GenerateCitationNetwork(SmallConfig(), 8);
  EXPECT_NE(a.labels, b.labels);
}

TEST(CitationGenTest, HomophilyNearConfigured) {
  CitationGenConfig config = SmallConfig();
  config.homophily = 0.75;
  const Dataset d = GenerateCitationNetwork(config, 3);
  EXPECT_NEAR(EdgeHomophily(d.graph, d.labels), 0.75, 0.08);
}

TEST(CitationGenTest, FeaturesAreSparseBinary) {
  const Dataset d = GenerateCitationNetwork(SmallConfig(), 4);
  for (float v : d.features.values()) EXPECT_EQ(v, 1.0f);
  // Density well below 20%.
  EXPECT_LT(d.features.nnz(),
            d.NumNodes() * d.FeatureDim() / 5);
  // Every node has at least one word.
  for (int64_t i = 0; i < d.NumNodes(); ++i) {
    EXPECT_GE(d.features.RowNnz(i), 1) << "node " << i;
  }
}

TEST(CitationGenTest, OneHotFeatureMode) {
  CitationGenConfig config = SmallConfig();
  config.one_hot_features = true;
  config.num_features = config.num_nodes;
  const Dataset d = GenerateCitationNetwork(config, 5);
  EXPECT_EQ(d.features.nnz(), d.NumNodes());
  for (int64_t i = 0; i < d.NumNodes(); ++i) {
    EXPECT_EQ(d.features.At(i, i), 1.0f);
  }
}

TEST(CitationGenTest, LabeledFractionOverridesPerClass) {
  CitationGenConfig config = SmallConfig();
  config.labeled_fraction = 0.1;
  const Dataset d = GenerateCitationNetwork(config, 6);
  // ~10% of 600 nodes, rounded up per class.
  EXPECT_GE(static_cast<int64_t>(d.split.train.size()), 60);
  EXPECT_LE(static_cast<int64_t>(d.split.train.size()), 70);
}

TEST(CitationGenTest, ClassImbalanceSkewssSizes) {
  CitationGenConfig config = SmallConfig();
  config.class_imbalance = 1.0;
  const Dataset d = GenerateCitationNetwork(config, 9);
  std::vector<int64_t> counts(static_cast<size_t>(d.num_classes), 0);
  for (int64_t y : d.labels) ++counts[static_cast<size_t>(y)];
  EXPECT_GT(counts[0], counts[static_cast<size_t>(d.num_classes - 1)]);
}

TEST(CitationGenTest, MostNodesInGiantComponent) {
  const Dataset d = GenerateCitationNetwork(SmallConfig(), 10);
  const ComponentsResult cc = ConnectedComponents(d.graph);
  int64_t largest = 0;
  for (int64_t s : cc.component_sizes) largest = std::max(largest, s);
  EXPECT_GT(largest, d.NumNodes() / 2);
}

TEST(PresetTest, CoraLikeMatchesTable2) {
  const CitationGenConfig config = CoraLikeConfig();
  EXPECT_EQ(config.num_nodes, 2708);
  EXPECT_EQ(config.num_features, 1433);
  EXPECT_EQ(config.num_edges, 5429);
  EXPECT_EQ(config.num_classes, 7);
  EXPECT_EQ(config.labeled_per_class, 20);
  EXPECT_EQ(config.val_size, 500);
  EXPECT_EQ(config.test_size, 1000);
}

TEST(PresetTest, CiteseerLikeMatchesTable2) {
  const CitationGenConfig config = CiteseerLikeConfig();
  EXPECT_EQ(config.num_nodes, 3327);
  EXPECT_EQ(config.num_features, 3703);
  EXPECT_EQ(config.num_edges, 4732);
  EXPECT_EQ(config.num_classes, 6);
}

TEST(PresetTest, PubmedLikeMatchesTable2) {
  const CitationGenConfig config = PubmedLikeConfig();
  EXPECT_EQ(config.num_nodes, 19717);
  EXPECT_EQ(config.num_features, 500);
  EXPECT_EQ(config.num_edges, 44338);
  EXPECT_EQ(config.num_classes, 3);
}

TEST(PresetTest, NellLikeFullScaleMatchesTable2) {
  const CitationGenConfig config = NellLikeConfig(1.0);
  EXPECT_EQ(config.num_nodes, 65755);
  EXPECT_EQ(config.num_edges, 266144);
  EXPECT_EQ(config.num_classes, 210);
  EXPECT_TRUE(config.one_hot_features);
  EXPECT_DOUBLE_EQ(config.labeled_fraction, 0.10);
}

TEST(PresetTest, NellLikeScalesProportionally) {
  const CitationGenConfig full = NellLikeConfig(1.0);
  const CitationGenConfig half = NellLikeConfig(0.5);
  EXPECT_NEAR(static_cast<double>(half.num_nodes),
              static_cast<double>(full.num_nodes) / 2.0, 2.0);
  EXPECT_NEAR(static_cast<double>(half.num_classes),
              static_cast<double>(full.num_classes) / 2.0, 1.0);
}

TEST(PresetTest, NellLikeSmallScaleGenerates) {
  const Dataset d = GenerateCitationNetwork(NellLikeConfig(0.03), 11);
  std::string error;
  EXPECT_TRUE(ValidateDataset(d, &error)) << error;
  EXPECT_EQ(d.FeatureDim(), d.NumNodes());  // One-hot.
}

}  // namespace
}  // namespace rdd
