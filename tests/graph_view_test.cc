// Tests for the GraphView abstraction: the identity full view must alias
// the context's matrices (so the full-batch path is bit-identical to the
// pre-view code), and induced views must renormalize adjacency on induced
// degrees following the Cluster-GCN convention.

#include "graph/graph_view.h"

#include <gtest/gtest.h>

#include "data/citation_gen.h"
#include "graph/generators.h"
#include "models/graph_model.h"
#include "tensor/sparse.h"

namespace rdd {
namespace {

/// Bit-exact CSR equality: same shape, same structure, same values.
void ExpectSparseEq(const SparseMatrix& a, const SparseMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.row_ptr(), b.row_ptr());
  ASSERT_EQ(a.col_idx(), b.col_idx());
  ASSERT_EQ(a.values(), b.values());
}

SparseMatrix IdentityFeatures(int64_t n) {
  std::vector<SparseEntry> entries;
  for (int64_t i = 0; i < n; ++i) entries.push_back({i, i, 1.0f});
  return SparseMatrix::FromCoo(n, n, std::move(entries));
}

TEST(GraphViewTest, FullViewAliasesContextMatrices) {
  const Dataset dataset = GenerateCitationNetwork(CoraLikeConfig(), 3);
  const GraphContext context = GraphContext::FromDataset(dataset);
  const GraphView view = context.FullView();
  EXPECT_TRUE(view.full());
  // Aliasing (not copies) is what makes the full-batch path bit-identical:
  // models read the exact same buffers the pre-view code read.
  EXPECT_EQ(view.features.get(), context.features.get());
  EXPECT_EQ(view.adj_norm.get(), context.adj_norm.get());
  EXPECT_EQ(view.adj_row.get(), context.adj_row.get());
  EXPECT_EQ(view.num_nodes, dataset.NumNodes());
  EXPECT_EQ(view.num_targets, dataset.NumNodes());
  EXPECT_EQ(view.num_classes, dataset.num_classes);
  EXPECT_EQ(view.GlobalId(0), 0);
  EXPECT_EQ(view.GlobalId(view.num_nodes - 1), view.num_nodes - 1);
}

TEST(GraphViewTest, InducedViewOverAllNodesMatchesFullNormalization) {
  const Dataset dataset = GenerateCitationNetwork(CiteseerLikeConfig(), 5);
  const GraphContext context = GraphContext::FromDataset(dataset);
  std::vector<int64_t> all(static_cast<size_t>(dataset.NumNodes()));
  for (int64_t i = 0; i < dataset.NumNodes(); ++i) {
    all[static_cast<size_t>(i)] = i;
  }
  const GraphView view =
      MakeInducedView(dataset.graph, dataset.features, dataset.num_classes,
                      all, dataset.NumNodes());
  // Every edge is induced, so degrees — and both normalizations — must be
  // bit-identical to the full-graph matrices.
  ExpectSparseEq(*view.adj_norm, *context.adj_norm);
  ExpectSparseEq(*view.adj_row, *context.adj_row);
  ExpectSparseEq(*view.features, *context.features);
}

TEST(GraphViewTest, InducedSubsetRenormalizesOnInducedDegrees) {
  // Path 0-1-2, view over {0, 1}: the 1-2 edge is dropped, so both kept
  // nodes have induced degree 2 (one kept neighbor + self loop).
  const Graph graph = MakePathGraph(3);
  const SparseMatrix features = IdentityFeatures(3);
  const GraphView view = MakeInducedView(graph, features, 2, {0, 1}, 2);
  EXPECT_EQ(view.num_nodes, 2);
  EXPECT_EQ(view.num_targets, 2);
  // D^-1/2 (A+I) D^-1/2 with d0 = d1 = 2: every entry is 1/2.
  EXPECT_FLOAT_EQ(view.adj_norm->At(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(view.adj_norm->At(0, 1), 0.5f);
  EXPECT_FLOAT_EQ(view.adj_norm->At(1, 0), 0.5f);
  EXPECT_FLOAT_EQ(view.adj_norm->At(1, 1), 0.5f);
  // Row normalization D^-1 (A+I): also 1/2 everywhere here.
  EXPECT_FLOAT_EQ(view.adj_row->At(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(view.adj_row->At(1, 0), 0.5f);
  // Features are row-sliced in view order.
  EXPECT_FLOAT_EQ(view.features->At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(view.features->At(1, 1), 1.0f);
  EXPECT_EQ(view.features->cols(), 3);
}

TEST(GraphViewTest, FrontierRowsFollowTargetRows) {
  // Star graph centered at 0; targets {3, 1} then frontier node 0.
  const Graph graph = MakeStarGraph(4);
  const GraphView view =
      MakeInducedView(graph, IdentityFeatures(4), 2, {3, 1, 0}, 2);
  EXPECT_FALSE(view.full());
  EXPECT_EQ(view.num_targets, 2);
  EXPECT_EQ(view.GlobalId(0), 3);  // Targets keep caller order.
  EXPECT_EQ(view.GlobalId(1), 1);
  EXPECT_EQ(view.GlobalId(2), 0);
  const std::vector<int64_t> targets = view.TargetIndices();
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0], 0);
  EXPECT_EQ(targets[1], 1);
}

TEST(GraphViewTest, GatherHelpersMapGlobalToViewOrder) {
  const Graph graph = MakePathGraph(4);
  const GraphView view =
      MakeInducedView(graph, IdentityFeatures(4), 2, {2, 0}, 2);
  const std::vector<int64_t> labels = {10, 11, 12, 13};
  const std::vector<int64_t> gathered = view.GatherInt64(labels);
  ASSERT_EQ(gathered.size(), 2u);
  EXPECT_EQ(gathered[0], 12);
  EXPECT_EQ(gathered[1], 10);
  const std::vector<bool> mask = {true, false, false, true};
  const std::vector<bool> gathered_mask = view.GatherMask(mask);
  ASSERT_EQ(gathered_mask.size(), 2u);
  EXPECT_FALSE(gathered_mask[0]);
  EXPECT_TRUE(gathered_mask[1]);
}

TEST(GraphViewTest, ViewEdgesListsEachInducedEdgeOnce) {
  // Cycle 0-1-2-3-0, view over {0, 1, 2}: induced edges 0-1 and 1-2
  // (3 is absent, so 2-3 and 3-0 drop out); self loops never appear.
  const Graph graph = MakeCycleGraph(4);
  const GraphView view =
      MakeInducedView(graph, IdentityFeatures(4), 2, {0, 1, 2}, 3);
  const std::vector<std::pair<int64_t, int64_t>> edges = ViewEdges(view);
  ASSERT_EQ(edges.size(), 2u);
  for (const auto& [u, v] : edges) {
    EXPECT_LT(u, v);
    EXPECT_LT(v, view.num_nodes);
  }
  EXPECT_EQ(edges[0], (std::pair<int64_t, int64_t>{0, 1}));
  EXPECT_EQ(edges[1], (std::pair<int64_t, int64_t>{1, 2}));
}

}  // namespace
}  // namespace rdd
