#include "tensor/sparse.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace rdd {
namespace {

SparseMatrix MakeExample() {
  // [[1, 0, 2],
  //  [0, 0, 0],
  //  [3, 4, 0]]
  return SparseMatrix::FromCoo(3, 3,
                               {{0, 0, 1.0f}, {0, 2, 2.0f}, {2, 0, 3.0f},
                                {2, 1, 4.0f}});
}

TEST(SparseMatrixTest, EmptyByDefault) {
  SparseMatrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_EQ(m.nnz(), 0);
}

TEST(SparseMatrixTest, FromCooBasicLayout) {
  const SparseMatrix m = MakeExample();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_EQ(m.RowNnz(0), 2);
  EXPECT_EQ(m.RowNnz(1), 0);
  EXPECT_EQ(m.RowNnz(2), 2);
}

TEST(SparseMatrixTest, AtReturnsStoredAndZero) {
  const SparseMatrix m = MakeExample();
  EXPECT_EQ(m.At(0, 0), 1.0f);
  EXPECT_EQ(m.At(0, 2), 2.0f);
  EXPECT_EQ(m.At(0, 1), 0.0f);
  EXPECT_EQ(m.At(1, 1), 0.0f);
  EXPECT_EQ(m.At(2, 1), 4.0f);
}

TEST(SparseMatrixTest, DuplicateEntriesAreSummed) {
  const SparseMatrix m = SparseMatrix::FromCoo(
      2, 2, {{0, 0, 1.0f}, {0, 0, 2.5f}, {1, 1, 1.0f}});
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_EQ(m.At(0, 0), 3.5f);
}

TEST(SparseMatrixTest, UnorderedInputIsSorted) {
  const SparseMatrix m = SparseMatrix::FromCoo(
      2, 3, {{1, 2, 6.0f}, {0, 1, 2.0f}, {1, 0, 4.0f}, {0, 0, 1.0f}});
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t k = m.row_ptr()[r] + 1; k < m.row_ptr()[r + 1]; ++k) {
      EXPECT_LT(m.col_idx()[k - 1], m.col_idx()[k]);
    }
  }
}

TEST(SparseMatrixTest, ToDenseRoundTrip) {
  const Matrix dense(2, 3, {0, 5, 0, 7, 0, 9});
  const SparseMatrix sparse = SparseMatrix::FromDense(dense);
  EXPECT_EQ(sparse.nnz(), 3);
  EXPECT_TRUE(sparse.ToDense().Equals(dense));
}

TEST(SparseMatrixTest, TransposeMatchesDenseTranspose) {
  const SparseMatrix m = MakeExample();
  const SparseMatrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.At(0, 2), 3.0f);
  EXPECT_EQ(t.At(2, 0), 2.0f);
  EXPECT_EQ(t.At(1, 2), 4.0f);
}

TEST(SparseMatrixTest, MultiplyMatchesDense) {
  const SparseMatrix m = MakeExample();
  const Matrix x(3, 2, {1, 2, 3, 4, 5, 6});
  const Matrix product = m.Multiply(x);
  // Row 0: [1,0,2] . cols -> [1*1+2*5, 1*2+2*6] = [11, 14]
  EXPECT_TRUE(product.Equals(Matrix(3, 2, {11, 14, 0, 0, 15, 22})));
}

TEST(SparseMatrixTest, MultiplyAddAccumulates) {
  const SparseMatrix m = MakeExample();
  const Matrix x(3, 1, {1, 1, 1});
  Matrix out = Matrix::Constant(3, 1, 10.0f);
  m.MultiplyAdd(x, 2.0f, &out);
  EXPECT_TRUE(out.Equals(Matrix(3, 1, {16, 10, 24})));
}

TEST(SparseMatrixTest, TransposeMultiplyMatchesExplicitTranspose) {
  Rng rng(99);
  std::vector<SparseEntry> entries;
  for (int i = 0; i < 40; ++i) {
    entries.push_back({rng.UniformInt(6), rng.UniformInt(5),
                       static_cast<float>(rng.Gaussian())});
  }
  const SparseMatrix m = SparseMatrix::FromCoo(6, 5, entries);
  Matrix x(6, 3);
  for (int64_t i = 0; i < x.size(); ++i) {
    x.Data()[i] = static_cast<float>(rng.Gaussian());
  }
  const Matrix expected = m.Transpose().Multiply(x);
  const Matrix actual = m.TransposeMultiply(x);
  EXPECT_TRUE(actual.ApproxEquals(expected, 1e-5f));
}

TEST(SparseMatrixTest, TransposeMultiplyChunkedPathMatchesReference) {
  // Large enough that the kernel splits the input rows into several blocks
  // with pool-backed partial outputs (nnz * cols / 2^15 > 1); the small
  // matrices elsewhere in this suite all take the single-chunk path.
  Rng rng(123);
  std::vector<SparseEntry> entries;
  for (int i = 0; i < 9000; ++i) {
    entries.push_back({rng.UniformInt(400), rng.UniformInt(300),
                       static_cast<float>(rng.Gaussian())});
  }
  const SparseMatrix m = SparseMatrix::FromCoo(400, 300, entries);
  Matrix x(400, 16);
  for (int64_t i = 0; i < x.size(); ++i) {
    x.Data()[i] = static_cast<float>(rng.Gaussian());
  }
  const Matrix expected = m.Transpose().Multiply(x);
  const Matrix actual = m.TransposeMultiply(x);
  EXPECT_TRUE(actual.ApproxEquals(expected, 1e-4f));
  // The block split depends only on the shape, so repeat calls (and, per
  // parallel_test, any thread count) are bit-identical.
  EXPECT_TRUE(actual.Equals(m.TransposeMultiply(x)));
}

TEST(SparseMatrixTest, EmptyRowsHandled) {
  const SparseMatrix m = SparseMatrix::FromCoo(4, 4, {{3, 3, 1.0f}});
  EXPECT_EQ(m.RowNnz(0), 0);
  EXPECT_EQ(m.RowNnz(3), 1);
  const Matrix product = m.Multiply(Matrix::Identity(4));
  EXPECT_EQ(product.At(3, 3), 1.0f);
  EXPECT_EQ(product.At(0, 0), 0.0f);
}

TEST(SparseMatrixDeathTest, OutOfRangeEntryAborts) {
  EXPECT_DEATH(SparseMatrix::FromCoo(2, 2, {{2, 0, 1.0f}}), "Check failed");
  EXPECT_DEATH(SparseMatrix::FromCoo(2, 2, {{0, -1, 1.0f}}), "Check failed");
}

TEST(SparseMatrixDeathTest, ShapeMismatchedMultiplyAborts) {
  const SparseMatrix m = MakeExample();
  const Matrix x(2, 2);
  EXPECT_DEATH((void)m.Multiply(x), "Check failed");
}

}  // namespace
}  // namespace rdd
