// Tests for the operator-fusion layer (RDD_FUSE) and the bf16 serving tier
// (RDD_BF16): every fused autograd chain must be bit-identical to the
// unfused composition it replaces — forward values AND gradients, across
// remainder-lane shapes and every supported SIMD backend — a full RddTrainer
// run must be byte-identical with the flag on and off, and the bf16 serving
// path must stay within its documented tolerance of fp32 while remaining
// cross-backend deterministic itself.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/fusion.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "core/rdd_trainer.h"
#include "data/citation_gen.h"
#include "models/mlp_student.h"
#include "observe/metrics.h"
#include "parallel/parallel_for.h"
#include "simd/simd.h"
#include "tensor/bf16.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"
#include "util/random.h"
#include "util/runtime_flags.h"

namespace rdd {
namespace {

using simd::ActiveBackend;
using simd::Backend;
using simd::BackendName;
using simd::SetBackend;

/// Restores the active backend on scope exit so tests compose.
class BackendGuard {
 public:
  BackendGuard() : saved_(ActiveBackend()) {}
  ~BackendGuard() { SetBackend(saved_); }
  Backend Saved() const { return saved_; }

 private:
  Backend saved_;
};

/// Restores the configured thread count on scope exit.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(parallel::NumThreads()) {}
  ~ThreadCountGuard() { parallel::SetNumThreads(saved_); }

 private:
  int saved_;
};

uint32_t Bits(float x) {
  uint32_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

void ExpectByteIdentical(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(std::memcmp(a.Data(), b.Data(),
                        static_cast<size_t>(a.size()) * sizeof(float)),
            0)
      << what << " is not byte-identical";
}

Matrix RandomMatrix(int64_t rows, int64_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.Data()[i] = static_cast<float>(rng->Gaussian());
  }
  return m;
}

/// A sparse matrix with roughly `density` of its entries populated.
SparseMatrix RandomSparse(int64_t rows, int64_t cols, double density,
                          Rng* rng) {
  Matrix dense(rows, cols);
  for (int64_t i = 0; i < dense.size(); ++i) {
    if (rng->Uniform() < density) {
      dense.Data()[i] = static_cast<float>(rng->Gaussian());
    }
  }
  return SparseMatrix::FromDense(dense);
}

// Shapes that exercise the vector body, the remainder tail, and both sides
// of the 32-wide GEMM accumulator tier.
struct ChainShape {
  int64_t m, k, n;
};
const ChainShape kChainShapes[] = {
    {1, 1, 1},   {3, 5, 7},    {8, 8, 8},    {9, 17, 33},
    {16, 7, 40}, {5, 64, 257}, {33, 300, 31},
};

// Every (backend, thread-count) combination the bit-identity claims cover.
std::vector<std::pair<Backend, int>> Combos() {
  std::vector<std::pair<Backend, int>> combos = {{Backend::kScalar, 1},
                                                 {Backend::kScalar, 4}};
  const Backend dispatched = ActiveBackend();
  if (dispatched != Backend::kScalar) {
    combos.push_back({dispatched, 1});
    combos.push_back({dispatched, 4});
  }
  return combos;
}

// ---------------------------------------------------------------------------
// Per-chain fused-vs-unfused bit-equality. Each case builds the identical
// leaf tensors twice, runs the chain once with fusion forced on and once
// forced off, drives a non-uniform gradient through RowSquaredError, and
// demands bitwise equality of the output and of every leaf gradient.
// ---------------------------------------------------------------------------

TEST(FusionBitIdentityTest, LinearReluMatchesUnfusedEverywhere) {
  BackendGuard backend_guard;
  ThreadCountGuard thread_guard;
  for (const auto& combo : Combos()) {
    SetBackend(combo.first);
    parallel::SetNumThreads(combo.second);
    for (const ChainShape& shape : kChainShapes) {
      SCOPED_TRACE(testing::Message()
                   << "backend=" << BackendName(combo.first)
                   << " threads=" << combo.second << " m=" << shape.m
                   << " k=" << shape.k << " n=" << shape.n);
      Rng rng(40);
      const Matrix x0 = RandomMatrix(shape.m, shape.k, &rng);
      const Matrix w0 = RandomMatrix(shape.k, shape.n, &rng);
      const Matrix b0 = RandomMatrix(1, shape.n, &rng);
      const Matrix target = RandomMatrix(shape.m, shape.n, &rng);
      std::vector<int64_t> all_rows;
      for (int64_t i = 0; i < shape.m; ++i) all_rows.push_back(i);

      Matrix out[2], gx[2], gw[2], gb[2];
      for (int pass = 0; pass < 2; ++pass) {
        flags::FuseGuard fuse(pass == 1);
        Variable x(x0, /*requires_grad=*/true);
        Variable w(w0, /*requires_grad=*/true);
        Variable b(b0, /*requires_grad=*/true);
        Variable h = ag::FusedLinearRelu(x, w, b);
        ag::RowSquaredError(h, target, all_rows, ag::Reduction::kSum)
            .Backward();
        out[pass] = h.value();
        gx[pass] = x.grad();
        gw[pass] = w.grad();
        gb[pass] = b.grad();
      }
      ExpectByteIdentical(out[0], out[1], "linear_relu forward");
      ExpectByteIdentical(gx[0], gx[1], "linear_relu dx");
      ExpectByteIdentical(gw[0], gw[1], "linear_relu dw");
      ExpectByteIdentical(gb[0], gb[1], "linear_relu dbias");
    }
  }
}

TEST(FusionBitIdentityTest, SpmmBiasReluMatchesUnfusedEverywhere) {
  BackendGuard backend_guard;
  ThreadCountGuard thread_guard;
  for (const auto& combo : Combos()) {
    SetBackend(combo.first);
    parallel::SetNumThreads(combo.second);
    for (const ChainShape& shape : kChainShapes) {
      SCOPED_TRACE(testing::Message()
                   << "backend=" << BackendName(combo.first)
                   << " threads=" << combo.second << " m=" << shape.m
                   << " k=" << shape.k << " n=" << shape.n);
      Rng rng(41);
      const SparseMatrix s = RandomSparse(shape.m, shape.k, 0.3, &rng);
      const Matrix m0 = RandomMatrix(shape.k, shape.n, &rng);
      const Matrix b0 = RandomMatrix(1, shape.n, &rng);
      const Matrix target = RandomMatrix(shape.m, shape.n, &rng);
      std::vector<int64_t> all_rows;
      for (int64_t i = 0; i < shape.m; ++i) all_rows.push_back(i);

      Matrix out[2], gm[2], gb[2];
      for (int pass = 0; pass < 2; ++pass) {
        flags::FuseGuard fuse(pass == 1);
        Variable m(m0, /*requires_grad=*/true);
        Variable b(b0, /*requires_grad=*/true);
        Variable h = ag::FusedSpmmBiasRelu(&s, m, b);
        ag::RowSquaredError(h, target, all_rows, ag::Reduction::kSum)
            .Backward();
        out[pass] = h.value();
        gm[pass] = m.grad();
        gb[pass] = b.grad();
      }
      ExpectByteIdentical(out[0], out[1], "spmm_bias_relu forward");
      ExpectByteIdentical(gm[0], gm[1], "spmm_bias_relu dm");
      ExpectByteIdentical(gb[0], gb[1], "spmm_bias_relu dbias");
    }
  }
}

TEST(FusionBitIdentityTest, SoftmaxCrossEntropyMatchesUnfusedEverywhere) {
  BackendGuard backend_guard;
  ThreadCountGuard thread_guard;
  for (const auto& combo : Combos()) {
    SetBackend(combo.first);
    parallel::SetNumThreads(combo.second);
    for (const ChainShape& shape : kChainShapes) {
      for (ag::Reduction reduction :
           {ag::Reduction::kMean, ag::Reduction::kSum}) {
        SCOPED_TRACE(testing::Message()
                     << "backend=" << BackendName(combo.first)
                     << " threads=" << combo.second << " rows=" << shape.m
                     << " classes=" << shape.n);
        Rng rng(42);
        const Matrix z0 = RandomMatrix(shape.m, shape.n, &rng);
        std::vector<int64_t> labels(static_cast<size_t>(shape.m));
        for (int64_t& y : labels) y = rng.UniformInt(shape.n);
        std::vector<int64_t> indices;  // every other row is supervised
        for (int64_t i = 0; i < shape.m; i += 2) indices.push_back(i);

        float loss[2];
        Matrix gz[2];
        for (int pass = 0; pass < 2; ++pass) {
          flags::FuseGuard fuse(pass == 1);
          Variable z(z0, /*requires_grad=*/true);
          Variable l = ag::SoftmaxCrossEntropy(z, labels, indices, reduction);
          l.Backward();
          loss[pass] = l.value().At(0, 0);
          gz[pass] = z.grad();
        }
        EXPECT_EQ(Bits(loss[0]), Bits(loss[1])) << "loss diverges";
        ExpectByteIdentical(gz[0], gz[1], "softmax_xent dlogits");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: a full RddTrainer run must be byte-identical with fusion on
// and off (the fused graph is the SAME function, down to the bit).
// ---------------------------------------------------------------------------

TEST(FusionEndToEndTest, TrainRddIsFuseFlagInvariant) {
  CitationGenConfig config;
  config.num_nodes = 200;
  config.num_features = 60;
  config.num_edges = 600;
  config.num_classes = 4;
  config.labeled_per_class = 5;
  config.val_size = 30;
  config.test_size = 50;
  const Dataset dataset = GenerateCitationNetwork(config, 17);
  const GraphContext context = GraphContext::FromDataset(dataset);

  RddConfig rdd_config;
  rdd_config.num_base_models = 2;
  rdd_config.train.max_epochs = 15;

  RddResult results[2];
  for (int pass = 0; pass < 2; ++pass) {
    flags::FuseGuard fuse(pass == 1);
    results[pass] = TrainRdd(dataset, context, rdd_config, 9);
  }
  const RddResult& off = results[0];
  const RddResult& on = results[1];
  EXPECT_DOUBLE_EQ(on.single_test_accuracy, off.single_test_accuracy);
  EXPECT_DOUBLE_EQ(on.ensemble_test_accuracy, off.ensemble_test_accuracy);
  ASSERT_EQ(on.alphas.size(), off.alphas.size());
  for (size_t i = 0; i < on.alphas.size(); ++i) {
    EXPECT_EQ(Bits(on.alphas[i]), Bits(off.alphas[i])) << "alpha " << i;
  }
  ASSERT_EQ(on.reports.size(), off.reports.size());
  for (size_t t = 0; t < on.reports.size(); ++t) {
    ASSERT_EQ(on.reports[t].val_history.size(),
              off.reports[t].val_history.size());
    for (size_t e = 0; e < on.reports[t].val_history.size(); ++e) {
      EXPECT_EQ(Bits(on.reports[t].val_history[e]),
                Bits(off.reports[t].val_history[e]))
          << "student " << t << " epoch " << e;
    }
  }
  ExpectByteIdentical(on.teacher.PredictProbs(), off.teacher.PredictProbs(),
                      "teacher probs");
  ExpectByteIdentical(on.teacher.PredictEmbeddings(),
                      off.teacher.PredictEmbeddings(), "teacher embeddings");
}

TEST(FusionEndToEndTest, MlpStudentServingIsFuseFlagInvariant) {
  CitationGenConfig config;
  config.num_nodes = 120;
  config.num_features = 40;
  config.num_edges = 300;
  config.num_classes = 3;
  config.labeled_per_class = 5;
  config.val_size = 15;
  config.test_size = 25;
  const Dataset dataset = GenerateCitationNetwork(config, 18);
  const GraphContext context = GraphContext::FromDataset(dataset);
  std::vector<int64_t> nodes;
  for (int64_t i = 0; i < dataset.NumNodes(); i += 3) nodes.push_back(i);

  for (int64_t depth : {int64_t{1}, int64_t{2}, int64_t{4}}) {
    MlpStudent student(context, depth, 16, 0.5f, /*seed=*/7);
    Matrix logits[2];
    for (int pass = 0; pass < 2; ++pass) {
      flags::FuseGuard fuse(pass == 1);
      logits[pass] = student.PredictLogitsRows(nodes);
    }
    SCOPED_TRACE(testing::Message() << "depth=" << depth);
    ExpectByteIdentical(logits[0], logits[1], "serving logits");
  }
}

// ---------------------------------------------------------------------------
// kernel_stats attribution: a fused invocation books its FLOPs under the
// fused counter INSTEAD of the unfused one (no double-count), and the
// hit/miss counters feed the pull-style hit-rate gauge.
// ---------------------------------------------------------------------------

class MetricsGuard {
 public:
  explicit MetricsGuard(bool enabled) : saved_(observe::MetricsEnabled()) {
    observe::SetMetricsEnabled(enabled);
  }
  ~MetricsGuard() { observe::SetMetricsEnabled(saved_); }

 private:
  bool saved_;
};

TEST(FusionStatsTest, FusedCallsAttributeFlopsOnceAndDriveHitRate) {
  MetricsGuard metrics(true);
  auto& registry = observe::MetricsRegistry::Global();
  observe::Counter& fused_calls =
      registry.counter("simd.fused_gemm_bias_relu.calls");
  observe::Counter& fused_flops =
      registry.counter("simd.fused_gemm_bias_relu.flops");
  observe::Counter& gemm_calls = registry.counter("simd.gemm.calls");
  observe::Counter& hits = registry.counter("simd.fusion.hits");
  observe::Counter& misses = registry.counter("simd.fusion.misses");

  Rng rng(46);
  const int64_t m = 9, k = 17, n = 33;
  Variable x(RandomMatrix(m, k, &rng), /*requires_grad=*/false);
  Variable w(RandomMatrix(k, n, &rng), /*requires_grad=*/false);
  Variable b(RandomMatrix(1, n, &rng), /*requires_grad=*/false);

  {
    flags::FuseGuard fuse(true);
    const uint64_t fused_calls0 = fused_calls.value();
    const uint64_t fused_flops0 = fused_flops.value();
    const uint64_t gemm_calls0 = gemm_calls.value();
    const uint64_t hits0 = hits.value();
    ag::FusedLinearRelu(x, w, b);
    EXPECT_EQ(fused_calls.value() - fused_calls0, 1u);
    EXPECT_EQ(fused_flops.value() - fused_flops0,
              static_cast<uint64_t>(2 * m * k * n + 2 * m * n));
    EXPECT_EQ(gemm_calls.value(), gemm_calls0);  // not double-counted
    EXPECT_EQ(hits.value() - hits0, 1u);
  }
  {
    flags::FuseGuard fuse(false);
    const uint64_t fused_calls0 = fused_calls.value();
    const uint64_t gemm_calls0 = gemm_calls.value();
    const uint64_t misses0 = misses.value();
    ag::FusedLinearRelu(x, w, b);
    EXPECT_EQ(fused_calls.value(), fused_calls0);  // unfused path books gemm
    EXPECT_EQ(gemm_calls.value() - gemm_calls0, 1u);
    EXPECT_EQ(misses.value() - misses0, 1u);
  }

  const observe::MetricsSnapshot snapshot = registry.Snapshot();
  bool found = false;
  for (const observe::MetricValue& gauge : snapshot.gauges) {
    if (gauge.name == "simd.fusion.hit_rate_pct") {
      found = true;
      EXPECT_GE(gauge.value, 0);
      EXPECT_LE(gauge.value, 100);
    }
  }
  EXPECT_TRUE(found) << "hit-rate gauge not registered";
}

// ---------------------------------------------------------------------------
// bf16 serving tier: deterministic in itself, tolerance-equal to fp32.
// ---------------------------------------------------------------------------

TEST(Bf16TierTest, MatmulBf16IsBackendAndThreadInvariant) {
  BackendGuard backend_guard;
  ThreadCountGuard thread_guard;
  Rng rng(43);
  const Matrix a = RandomMatrix(33, 64, &rng);
  const Matrix b = RandomMatrix(64, 17, &rng);
  const Matrix bias = RandomMatrix(1, 17, &rng);

  SetBackend(Backend::kScalar);
  parallel::SetNumThreads(1);
  const Bf16Matrix packed_ref = Bf16Matrix::Pack(b);
  const Matrix ref = MatmulBf16(a, packed_ref);
  const Matrix ref_fused = MatmulBf16BiasRelu(a, packed_ref, bias);

  for (const auto& combo : Combos()) {
    SCOPED_TRACE(testing::Message() << "backend=" << BackendName(combo.first)
                                    << " threads=" << combo.second);
    SetBackend(combo.first);
    parallel::SetNumThreads(combo.second);
    const Bf16Matrix packed = Bf16Matrix::Pack(b);
    ExpectByteIdentical(MatmulBf16(a, packed), ref, "bf16 gemm");
    ExpectByteIdentical(MatmulBf16BiasRelu(a, packed, bias), ref_fused,
                        "bf16 gemm + bias_relu");
  }
}

TEST(Bf16TierTest, MatmulBf16TracksFp32WithinMantissaTolerance) {
  Rng rng(44);
  const int64_t k = 64;
  const Matrix a = RandomMatrix(20, k, &rng);
  const Matrix b = RandomMatrix(k, 9, &rng);
  const Matrix fp32 = Matmul(a, b);
  const Matrix bf16 = MatmulBf16(a, Bf16Matrix::Pack(b));
  // Each of the k products carries one bf16 rounding of relative size
  // 2^-9; the row-sum error is bounded by sum_p |a_p b_p| * 2^-9.
  for (int64_t i = 0; i < fp32.rows(); ++i) {
    for (int64_t j = 0; j < fp32.cols(); ++j) {
      double magnitude = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        magnitude += std::fabs(a.At(i, p)) * std::fabs(b.At(p, j));
      }
      EXPECT_NEAR(bf16.At(i, j), fp32.At(i, j),
                  magnitude * std::ldexp(1.0, -9) + 1e-6)
          << "(" << i << ", " << j << ")";
    }
  }
}

TEST(Bf16TierTest, PackUnpackRoundTripLosesOnlyPackRounding) {
  Rng rng(45);
  const Matrix m = RandomMatrix(13, 21, &rng);
  const Matrix round_trip = Bf16Matrix::Pack(m).Unpack();
  const Matrix twice = Bf16Matrix::Pack(round_trip).Unpack();
  // Unpack is exact, so a second pack/unpack is the identity.
  ExpectByteIdentical(round_trip, twice, "second round trip");
  EXPECT_TRUE(m.ApproxEquals(round_trip, 0.02f));
}

TEST(Bf16TierTest, MlpStudentBf16ServingStaysWithinTolerance) {
  CitationGenConfig config;
  config.num_nodes = 120;
  config.num_features = 40;
  config.num_edges = 300;
  config.num_classes = 3;
  config.labeled_per_class = 5;
  config.val_size = 15;
  config.test_size = 25;
  const Dataset dataset = GenerateCitationNetwork(config, 19);
  const GraphContext context = GraphContext::FromDataset(dataset);
  std::vector<int64_t> nodes;
  for (int64_t i = 0; i < dataset.NumNodes(); ++i) nodes.push_back(i);

  MlpStudent student(context, 3, 16, 0.5f, /*seed=*/11);
  EXPECT_FALSE(student.bf16_serving());
  const Matrix fp32_probs = student.PredictProbsRows(nodes);
  student.EnableBf16Serving();
  EXPECT_TRUE(student.bf16_serving());
  const Matrix bf16_probs = student.PredictProbsRows(nodes);
  ASSERT_EQ(bf16_probs.rows(), fp32_probs.rows());
  ASSERT_EQ(bf16_probs.cols(), fp32_probs.cols());
  // Probabilities move by at most a few parts in a thousand under the
  // 2^-9 relative weight perturbation; argmax almost never flips, and when
  // it does the two classes were statistically tied anyway.
  EXPECT_TRUE(bf16_probs.ApproxEquals(fp32_probs, 0.02f));
  const std::vector<int64_t> fp32_labels = ArgmaxRows(fp32_probs);
  const std::vector<int64_t> bf16_labels = ArgmaxRows(bf16_probs);
  int64_t agree = 0;
  for (size_t i = 0; i < fp32_labels.size(); ++i) {
    agree += fp32_labels[i] == bf16_labels[i] ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(agree),
            0.97 * static_cast<double>(fp32_labels.size()));
}

}  // namespace
}  // namespace rdd
