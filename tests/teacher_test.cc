#include "core/teacher.h"

#include <gtest/gtest.h>

namespace rdd {
namespace {

Matrix Probs(std::vector<float> values, int64_t rows, int64_t cols) {
  return Matrix(rows, cols, std::move(values));
}

TEST(TeacherTest, EmptyTeacher) {
  Teacher teacher;
  EXPECT_EQ(teacher.size(), 0);
}

TEST(TeacherTest, SingleMemberPassthrough) {
  Teacher teacher;
  const Matrix probs = Probs({0.7f, 0.3f, 0.2f, 0.8f}, 2, 2);
  const Matrix emb = Probs({1.0f, -1.0f, 2.0f, 0.0f}, 2, 2);
  teacher.AddMember(probs, emb, 5.0);
  EXPECT_EQ(teacher.size(), 1);
  EXPECT_TRUE(teacher.PredictProbs().ApproxEquals(probs, 1e-6f));
  EXPECT_TRUE(teacher.PredictEmbeddings().ApproxEquals(emb, 1e-6f));
}

TEST(TeacherTest, WeightedAverageOfTwoMembers) {
  Teacher teacher;
  teacher.AddMember(Probs({1.0f, 0.0f}, 1, 2), Probs({4.0f, 0.0f}, 1, 2), 3.0);
  teacher.AddMember(Probs({0.0f, 1.0f}, 1, 2), Probs({0.0f, 8.0f}, 1, 2), 1.0);
  const Matrix combined = teacher.PredictProbs();
  EXPECT_NEAR(combined.At(0, 0), 0.75f, 1e-6f);
  EXPECT_NEAR(combined.At(0, 1), 0.25f, 1e-6f);
  const Matrix emb = teacher.PredictEmbeddings();
  EXPECT_NEAR(emb.At(0, 0), 3.0f, 1e-6f);
  EXPECT_NEAR(emb.At(0, 1), 2.0f, 1e-6f);
}

TEST(TeacherTest, AccuracyOfCombinedPrediction) {
  Teacher teacher;
  // Member A predicts class 0 for both nodes, member B class 1 for both.
  teacher.AddMember(Probs({0.9f, 0.1f, 0.9f, 0.1f}, 2, 2),
                    Matrix(2, 2), 1.0);
  teacher.AddMember(Probs({0.2f, 0.8f, 0.2f, 0.8f}, 2, 2),
                    Matrix(2, 2), 3.0);
  // Weighted combination favors member B.
  EXPECT_DOUBLE_EQ(teacher.Accuracy({1, 1}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(teacher.Accuracy({0, 0}, {0, 1}), 0.0);
}

TEST(TeacherTest, AverageMemberAccuracy) {
  Teacher teacher;
  teacher.AddMember(Probs({0.9f, 0.1f}, 1, 2), Matrix(1, 2), 1.0);  // Pred 0.
  teacher.AddMember(Probs({0.1f, 0.9f}, 1, 2), Matrix(1, 2), 1.0);  // Pred 1.
  // True label 0: member accuracies 1.0 and 0.0.
  EXPECT_DOUBLE_EQ(teacher.AverageMemberAccuracy({0}, {0}), 0.5);
}

TEST(TeacherTest, MemberProbsAccessor) {
  Teacher teacher;
  const Matrix probs = Probs({0.6f, 0.4f}, 1, 2);
  teacher.AddMember(probs, Matrix(1, 2), 2.0);
  EXPECT_TRUE(teacher.member_probs(0).Equals(probs));
}

TEST(TeacherDeathTest, RejectsNonPositiveWeight) {
  Teacher teacher;
  EXPECT_DEATH(teacher.AddMember(Matrix(1, 2), Matrix(1, 2), 0.0),
               "Check failed");
}

TEST(TeacherDeathTest, RejectsShapeMismatch) {
  Teacher teacher;
  teacher.AddMember(Matrix(2, 2), Matrix(2, 2), 1.0);
  EXPECT_DEATH(teacher.AddMember(Matrix(3, 2), Matrix(3, 2), 1.0),
               "Check failed");
}

}  // namespace
}  // namespace rdd
