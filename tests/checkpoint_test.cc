#include "data/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/citation_gen.h"
#include "models/mlp_student.h"
#include "models/model_factory.h"
#include "models/model_io.h"

namespace rdd {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Dataset TinyDataset(uint64_t seed) {
  CitationGenConfig config;
  config.num_nodes = 60;
  config.num_features = 20;
  config.num_edges = 150;
  config.num_classes = 3;
  config.labeled_per_class = 4;
  config.val_size = 10;
  config.test_size = 15;
  return GenerateCitationNetwork(config, seed);
}

std::vector<unsigned char> ReadFileBytes(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<unsigned char> bytes;
  unsigned char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  std::fclose(f);
  return bytes;
}

void WriteFileBytes(const std::string& path,
                    const std::vector<unsigned char>& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  ASSERT_EQ(std::fclose(f), 0);
}

/// A two-member checkpoint (GCN + MLP-Student) over the tiny dataset.
Checkpoint SampleCheckpoint(const GraphContext& context) {
  ModelConfig gcn_config;
  gcn_config.kind = ModelKind::kGcn;
  gcn_config.hidden_dim = 8;
  auto gcn = BuildModel(context, gcn_config, /*seed=*/7);

  ModelConfig mlp_config;
  mlp_config.kind = ModelKind::kMlpStudent;
  mlp_config.num_layers = 2;
  mlp_config.hidden_dim = 12;
  auto mlp = BuildModel(context, mlp_config, /*seed=*/8);

  Checkpoint checkpoint;
  checkpoint.tag = "checkpoint-test";
  checkpoint.models.push_back(RecordFromModel(*gcn, gcn_config, 0.7));
  checkpoint.models.push_back(RecordFromModel(*mlp, mlp_config, 0.3));
  return checkpoint;
}

TEST(CheckpointTest, SaveLoadSaveIsByteIdentical) {
  const Dataset dataset = TinyDataset(1);
  const GraphContext context = GraphContext::FromDataset(dataset);
  const Checkpoint original = SampleCheckpoint(context);

  const std::string path_a = TempPath("ckpt_a.rddc");
  const std::string path_b = TempPath("ckpt_b.rddc");
  ASSERT_TRUE(SaveCheckpoint(original, path_a).ok());
  StatusOr<Checkpoint> loaded = LoadCheckpoint(path_a);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(SaveCheckpoint(*loaded, path_b).ok());

  EXPECT_EQ(ReadFileBytes(path_a), ReadFileBytes(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(CheckpointTest, RoundTripPreservesRecords) {
  const Dataset dataset = TinyDataset(2);
  const GraphContext context = GraphContext::FromDataset(dataset);
  const Checkpoint original = SampleCheckpoint(context);
  const std::string path = TempPath("ckpt_fields.rddc");
  ASSERT_TRUE(SaveCheckpoint(original, path).ok());

  StatusOr<Checkpoint> loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->models.size(), original.models.size());
  EXPECT_EQ(loaded->tag, original.tag);
  for (size_t m = 0; m < original.models.size(); ++m) {
    const ModelRecord& want = original.models[m];
    const ModelRecord& got = loaded->models[m];
    EXPECT_EQ(got.arch, want.arch);
    EXPECT_EQ(got.weight, want.weight);
    EXPECT_EQ(got.ints, want.ints);
    EXPECT_EQ(got.doubles, want.doubles);
    ASSERT_EQ(got.tensors.size(), want.tensors.size());
    for (size_t t = 0; t < want.tensors.size(); ++t) {
      EXPECT_EQ(got.tensors[t].name, want.tensors[t].name);
      const Matrix& a = want.tensors[t].value;
      const Matrix& b = got.tensors[t].value;
      ASSERT_EQ(a.rows(), b.rows());
      ASSERT_EQ(a.cols(), b.cols());
      for (int64_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a.Data()[i], b.Data()[i]);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadedModelInfersBitIdentically) {
  const Dataset dataset = TinyDataset(3);
  const GraphContext context = GraphContext::FromDataset(dataset);
  MlpStudent student(context, /*num_layers=*/2, /*hidden_dim=*/12,
                     /*dropout=*/0.5f, /*seed=*/11);
  ModelConfig config;
  config.kind = ModelKind::kMlpStudent;
  config.num_layers = 2;
  config.hidden_dim = 12;

  const ModelRecord record = RecordFromModel(student, config, 1.0);
  const std::string path = TempPath("ckpt_infer.rddc");
  Checkpoint checkpoint;
  checkpoint.tag = "infer";
  checkpoint.models.push_back(record);
  ASSERT_TRUE(SaveCheckpoint(checkpoint, path).ok());
  StatusOr<Checkpoint> loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok());
  StatusOr<std::unique_ptr<GraphModel>> rebuilt =
      ModelFromRecord(loaded->models[0], context);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();

  // Same serving path on original and rebuilt model -> exact equality.
  auto* rebuilt_mlp = dynamic_cast<MlpStudent*>(rebuilt->get());
  ASSERT_NE(rebuilt_mlp, nullptr);
  std::vector<int64_t> nodes;
  for (int64_t i = 0; i < dataset.NumNodes(); i += 3) nodes.push_back(i);
  const Matrix want = student.PredictLogitsRows(nodes);
  const Matrix got = rebuilt_mlp->PredictLogitsRows(nodes);
  ASSERT_EQ(want.rows(), got.rows());
  ASSERT_EQ(want.cols(), got.cols());
  for (int64_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want.Data()[i], got.Data()[i]) << "at flat index " << i;
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, NotACheckpointIsInvalidArgument) {
  const std::string path = TempPath("ckpt_garbage.rddc");
  WriteFileBytes(path, {'h', 'e', 'l', 'l', 'o', ' ', 'w', 'o', 'r', 'l',
                        'd', '!', '!', '!', '!', '!'});
  StatusOr<Checkpoint> result = LoadCheckpoint(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsIoError) {
  StatusOr<Checkpoint> result =
      LoadCheckpoint(TempPath("ckpt_missing.rddc"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(CheckpointTest, WrongVersionIsInvalidArgument) {
  const Dataset dataset = TinyDataset(4);
  const GraphContext context = GraphContext::FromDataset(dataset);
  const std::string path = TempPath("ckpt_version.rddc");
  ASSERT_TRUE(SaveCheckpoint(SampleCheckpoint(context), path).ok());
  std::vector<unsigned char> bytes = ReadFileBytes(path);
  // Header layout: 8-byte magic, 1 endianness byte, 4-byte version.
  bytes[9] = 0xEE;
  WriteFileBytes(path, bytes);
  StatusOr<Checkpoint> result = LoadCheckpoint(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("version"), std::string::npos)
      << result.status().message();
  std::remove(path.c_str());
}

TEST(CheckpointTest, ForeignEndiannessIsInvalidArgument) {
  const Dataset dataset = TinyDataset(5);
  const GraphContext context = GraphContext::FromDataset(dataset);
  const std::string path = TempPath("ckpt_endian.rddc");
  ASSERT_TRUE(SaveCheckpoint(SampleCheckpoint(context), path).ok());
  std::vector<unsigned char> bytes = ReadFileBytes(path);
  // Flip the endianness marker to the other byte order's value.
  bytes[8] = bytes[8] == 1 ? 2 : 1;
  WriteFileBytes(path, bytes);
  StatusOr<Checkpoint> result = LoadCheckpoint(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("endian"), std::string::npos)
      << result.status().message();

  // A fully byte-swapped file (magic written on a foreign-endian machine)
  // is also diagnosed as an endianness problem, not "not a checkpoint".
  std::vector<unsigned char> swapped = ReadFileBytes(path);
  bytes = ReadFileBytes(path);
  for (int i = 0; i < 8; ++i) swapped[i] = bytes[7 - i];
  swapped[8] = bytes[8];
  WriteFileBytes(path, swapped);
  result = LoadCheckpoint(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("endian"), std::string::npos)
      << result.status().message();
  std::remove(path.c_str());
}

TEST(CheckpointTest, EveryPrefixTruncationFailsCleanly) {
  const Dataset dataset = TinyDataset(6);
  const GraphContext context = GraphContext::FromDataset(dataset);
  const std::string full_path = TempPath("ckpt_full.rddc");
  ASSERT_TRUE(SaveCheckpoint(SampleCheckpoint(context), full_path).ok());
  const std::vector<unsigned char> bytes = ReadFileBytes(full_path);
  ASSERT_GT(bytes.size(), 0u);

  const std::string prefix_path = TempPath("ckpt_prefix.rddc");
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteFileBytes(prefix_path, std::vector<unsigned char>(
                                    bytes.begin(), bytes.begin() + len));
    StatusOr<Checkpoint> result = LoadCheckpoint(prefix_path);
    ASSERT_FALSE(result.ok()) << "prefix of " << len << " bytes parsed";
    ASSERT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << "prefix of " << len << " bytes: " << result.status().ToString();
  }
  std::remove(full_path.c_str());
  std::remove(prefix_path.c_str());
}

TEST(CheckpointTest, HostileLengthFieldIsInvalidArgument) {
  const Dataset dataset = TinyDataset(7);
  const GraphContext context = GraphContext::FromDataset(dataset);
  const std::string path = TempPath("ckpt_hostile.rddc");
  ASSERT_TRUE(SaveCheckpoint(SampleCheckpoint(context), path).ok());
  std::vector<unsigned char> bytes = ReadFileBytes(path);
  // The first field after the 13-byte header is the tag's uint64 length.
  // Claim ~16 exabytes; the bounded reader must reject it without ever
  // attempting the allocation.
  for (int i = 0; i < 8; ++i) bytes[13 + i] = 0xFF;
  WriteFileBytes(path, bytes);
  StatusOr<Checkpoint> result = LoadCheckpoint(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TrailingBytesAreInvalidArgument) {
  const Dataset dataset = TinyDataset(8);
  const GraphContext context = GraphContext::FromDataset(dataset);
  const std::string path = TempPath("ckpt_trailing.rddc");
  ASSERT_TRUE(SaveCheckpoint(SampleCheckpoint(context), path).ok());
  std::vector<unsigned char> bytes = ReadFileBytes(path);
  bytes.push_back(0xAB);
  WriteFileBytes(path, bytes);
  StatusOr<Checkpoint> result = LoadCheckpoint(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, DimensionMismatchIsInvalidArgument) {
  const Dataset dataset = TinyDataset(9);
  const GraphContext context = GraphContext::FromDataset(dataset);
  const Checkpoint checkpoint = SampleCheckpoint(context);

  CitationGenConfig other_config;
  other_config.num_nodes = 50;
  other_config.num_features = 33;  // Different feature_dim.
  other_config.num_edges = 120;
  other_config.num_classes = 3;
  other_config.labeled_per_class = 4;
  other_config.val_size = 10;
  other_config.test_size = 10;
  const Dataset other = GenerateCitationNetwork(other_config, 10);
  const GraphContext other_context = GraphContext::FromDataset(other);

  StatusOr<std::unique_ptr<GraphModel>> result =
      ModelFromRecord(checkpoint.models[0], other_context);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("features"), std::string::npos)
      << result.status().message();
}

TEST(CheckpointTest, UnknownArchitectureIsInvalidArgument) {
  const Dataset dataset = TinyDataset(11);
  const GraphContext context = GraphContext::FromDataset(dataset);
  Checkpoint checkpoint = SampleCheckpoint(context);
  checkpoint.models[0].arch = "NotARealModel";
  StatusOr<std::unique_ptr<GraphModel>> result =
      ModelFromRecord(checkpoint.models[0], context);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ModelKindTest, ParseRoundTripsEveryKind) {
  for (ModelKind kind :
       {ModelKind::kGcn, ModelKind::kResGcn, ModelKind::kDenseGcn,
        ModelKind::kJkNet, ModelKind::kAppnp, ModelKind::kMlp, ModelKind::kGat,
        ModelKind::kGraphSage, ModelKind::kMlpStudent}) {
    ModelKind parsed;
    ASSERT_TRUE(ParseModelKind(ModelKindToString(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  ModelKind parsed;
  EXPECT_FALSE(ParseModelKind("NotARealModel", &parsed));
  EXPECT_FALSE(ParseModelKind("", &parsed));
}

}  // namespace
}  // namespace rdd
