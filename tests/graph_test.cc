#include "graph/graph.h"

#include <gtest/gtest.h>

namespace rdd {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.MaxDegree(), 0);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 0.0);
}

TEST(GraphTest, BasicConstruction) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(1), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));  // Undirected.
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphTest, SelfLoopsDropped) {
  Graph g(3, {{0, 0}, {0, 1}, {1, 1}});
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphTest, DuplicatesAndReversalsMerged) {
  Graph g(3, {{0, 1}, {1, 0}, {0, 1}, {2, 1}});
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.Degree(1), 2);
}

TEST(GraphTest, EdgesAreCanonical) {
  Graph g(5, {{4, 2}, {3, 0}});
  for (const Edge& e : g.edges()) EXPECT_LT(e.u, e.v);
}

TEST(GraphTest, NeighborsSorted) {
  Graph g(5, {{2, 4}, {2, 0}, {2, 3}, {2, 1}});
  const std::vector<int64_t> expected = {0, 1, 3, 4};
  EXPECT_EQ(g.Neighbors(2), expected);
}

TEST(GraphTest, DegreeStatsHelpers) {
  Graph g(4, {{0, 1}, {0, 2}, {0, 3}});  // Star.
  EXPECT_EQ(g.MaxDegree(), 3);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.5);
}

TEST(GraphTest, IsolatedNodesAllowed) {
  Graph g(5, {{0, 1}});
  EXPECT_EQ(g.Degree(4), 0);
  EXPECT_TRUE(g.Neighbors(4).empty());
}

TEST(GraphDeathTest, OutOfRangeEdgeAborts) {
  EXPECT_DEATH(Graph(2, {{0, 2}}), "Check failed");
  EXPECT_DEATH(Graph(2, {{-1, 0}}), "Check failed");
}

TEST(GraphDeathTest, OutOfRangeNeighborsAborts) {
  Graph g(2, {{0, 1}});
  EXPECT_DEATH((void)g.Neighbors(2), "Check failed");
}

}  // namespace
}  // namespace rdd
