// Property-based test sweeps (parameterized gtest): algebraic invariants of
// the tensor kernels, analytic invariants of softmax/entropy, structural
// invariants of the graph normalizations, and distributional invariants of
// the data generator, each checked across a grid of random configurations.

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/reliability.h"
#include "core/schedule.h"
#include "data/citation_gen.h"
#include "graph/generators.h"
#include "graph/normalize.h"
#include "graph/pagerank.h"
#include "tensor/ops.h"
#include "util/random.h"

namespace rdd {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.Data()[i] = static_cast<float>(rng->Gaussian());
  }
  return m;
}

SparseMatrix RandomSparse(int64_t rows, int64_t cols, double density,
                          Rng* rng) {
  std::vector<SparseEntry> entries;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (rng->Bernoulli(density)) {
        entries.push_back({r, c, static_cast<float>(rng->Gaussian())});
      }
    }
  }
  return SparseMatrix::FromCoo(rows, cols, std::move(entries));
}

// ---------------------------------------------------------------------------
// Matmul algebra over a shape grid.

struct ShapeCase {
  int64_t m, k, n;
};

class MatmulPropertyTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(MatmulPropertyTest, DistributesOverAddition) {
  const ShapeCase shape = GetParam();
  Rng rng(shape.m * 100 + shape.k * 10 + shape.n);
  const Matrix a = RandomMatrix(shape.m, shape.k, &rng);
  const Matrix b = RandomMatrix(shape.k, shape.n, &rng);
  const Matrix c = RandomMatrix(shape.k, shape.n, &rng);
  EXPECT_TRUE(Matmul(a, Add(b, c)).ApproxEquals(
      Add(Matmul(a, b), Matmul(a, c)), 1e-3f));
}

TEST_P(MatmulPropertyTest, TransposeReversesProduct) {
  const ShapeCase shape = GetParam();
  Rng rng(shape.m * 7 + shape.k * 3 + shape.n);
  const Matrix a = RandomMatrix(shape.m, shape.k, &rng);
  const Matrix b = RandomMatrix(shape.k, shape.n, &rng);
  EXPECT_TRUE(Transpose(Matmul(a, b)).ApproxEquals(
      Matmul(Transpose(b), Transpose(a)), 1e-3f));
}

TEST_P(MatmulPropertyTest, SparseAgreesWithDense) {
  const ShapeCase shape = GetParam();
  Rng rng(shape.m + shape.k + shape.n);
  const SparseMatrix sparse = RandomSparse(shape.m, shape.k, 0.3, &rng);
  const Matrix dense_lhs = sparse.ToDense();
  const Matrix rhs = RandomMatrix(shape.k, shape.n, &rng);
  EXPECT_TRUE(sparse.Multiply(rhs).ApproxEquals(Matmul(dense_lhs, rhs),
                                                1e-3f));
  const Matrix tall = RandomMatrix(shape.m, shape.n, &rng);
  EXPECT_TRUE(sparse.TransposeMultiply(tall).ApproxEquals(
      MatmulTransposeA(dense_lhs, tall), 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulPropertyTest,
    ::testing::Values(ShapeCase{1, 1, 1}, ShapeCase{3, 5, 2},
                      ShapeCase{8, 8, 8}, ShapeCase{13, 1, 7},
                      ShapeCase{1, 17, 4}, ShapeCase{20, 6, 20}));

// ---------------------------------------------------------------------------
// Softmax / entropy invariants over random matrices.

class SoftmaxPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxPropertyTest, EntropyBounds) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int64_t k = 2 + rng.UniformInt(9);
  const Matrix probs = SoftmaxRows(RandomMatrix(12, k, &rng));
  for (double h : RowEntropy(probs)) {
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, std::log(static_cast<double>(k)) + 1e-9);
  }
}

TEST_P(SoftmaxPropertyTest, ArgmaxInvariantUnderSoftmax) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  const Matrix logits = RandomMatrix(10, 6, &rng);
  EXPECT_EQ(ArgmaxRows(logits), ArgmaxRows(SoftmaxRows(logits)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftmaxPropertyTest,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Graph normalization invariants over random graphs.

class NormalizationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NormalizationPropertyTest, GcnNormalizationSymmetricAndBounded) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  const Graph g = MakeErdosRenyiGraph(40, 0.12, &rng);
  const SparseMatrix ahat = GcnNormalizedAdjacency(g);
  const Matrix dense = ahat.ToDense();
  EXPECT_TRUE(dense.ApproxEquals(Transpose(dense), 1e-6f));
  for (int64_t i = 0; i < dense.size(); ++i) {
    EXPECT_GE(dense.Data()[i], 0.0f);
    EXPECT_LE(dense.Data()[i], 1.0f);
  }
}

TEST_P(NormalizationPropertyTest, PageRankIsDistribution) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 17 + 3);
  const Graph g = MakeErdosRenyiGraph(50, 0.08, &rng);
  const auto rank = PageRank(g);
  double sum = 0.0;
  for (double r : rank) {
    EXPECT_GT(r, 0.0);
    sum += r;
  }
  EXPECT_NEAR(sum, 1.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizationPropertyTest,
                         ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Percentile threshold properties.

class PercentilePropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(PercentilePropertyTest, CoversAtLeastRequestedFraction) {
  const double percent = GetParam();
  Rng rng(static_cast<uint64_t>(percent * 10));
  std::vector<double> values(137);
  for (double& v : values) v = rng.Gaussian();
  const double threshold = LowerPercentileThreshold(values, percent);
  int64_t below = 0;
  for (double v : values) {
    if (v <= threshold) ++below;
  }
  EXPECT_GE(static_cast<double>(below) / static_cast<double>(values.size()),
            percent / 100.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Percents, PercentilePropertyTest,
                         ::testing::Values(1.0, 10.0, 40.0, 50.0, 80.0,
                                           99.0, 100.0));

// ---------------------------------------------------------------------------
// Autograd linearity: for f(x) = sum(c * x), the gradient is exactly c.

class LinearityPropertyTest : public ::testing::TestWithParam<float> {};

TEST_P(LinearityPropertyTest, ScaleGradientIsConstant) {
  const float c = GetParam();
  Rng rng(11);
  Variable x(RandomMatrix(4, 4, &rng), true);
  ag::SumAll(ag::Scale(x, c)).Backward();
  EXPECT_TRUE(x.grad().ApproxEquals(Matrix::Constant(4, 4, c), 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(Coefficients, LinearityPropertyTest,
                         ::testing::Values(-3.0f, -1.0f, 0.0f, 0.5f, 2.0f));

// ---------------------------------------------------------------------------
// Generator invariants over a config grid.

struct GenCase {
  int64_t nodes, classes;
  double homophily;
};

class GeneratorPropertyTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorPropertyTest, StructuralInvariants) {
  const GenCase param = GetParam();
  CitationGenConfig config;
  config.num_nodes = param.nodes;
  config.num_features = 120;
  config.num_edges = param.nodes * 3;
  config.num_classes = param.classes;
  config.homophily = param.homophily;
  config.labeled_per_class = 4;
  config.val_size = param.nodes / 10;
  config.test_size = param.nodes / 5;
  const Dataset d = GenerateCitationNetwork(config, 77);

  std::string error;
  EXPECT_TRUE(ValidateDataset(d, &error)) << error;
  // Every class is populated.
  std::vector<int64_t> counts(static_cast<size_t>(param.classes), 0);
  for (int64_t y : d.labels) ++counts[static_cast<size_t>(y)];
  for (int64_t c : counts) EXPECT_GT(c, 0);
  // The split has the exact stratified sizes.
  EXPECT_EQ(static_cast<int64_t>(d.split.train.size()),
            4 * param.classes);
  // Every node has at least one feature.
  for (int64_t i = 0; i < d.NumNodes(); ++i) {
    EXPECT_GE(d.features.RowNnz(i), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeneratorPropertyTest,
    ::testing::Values(GenCase{300, 3, 0.5}, GenCase{300, 3, 0.9},
                      GenCase{500, 7, 0.7}, GenCase{800, 5, 0.8},
                      GenCase{400, 2, 0.6}));

// ---------------------------------------------------------------------------
// Cosine annealing bounds across configurations.

class SchedulePropertyTest
    : public ::testing::TestWithParam<std::pair<float, int>> {};

TEST_P(SchedulePropertyTest, BoundedByTwiceInitial) {
  const auto [gamma, epochs] = GetParam();
  for (int e = 0; e < epochs; ++e) {
    const float g = CosineAnnealedGamma(gamma, e, epochs);
    EXPECT_GE(g, 0.0f);
    EXPECT_LE(g, 2.0f * gamma + 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SchedulePropertyTest,
    ::testing::Values(std::pair{0.5f, 10}, std::pair{1.0f, 100},
                      std::pair{3.0f, 500}, std::pair{0.01f, 37}));

}  // namespace
}  // namespace rdd
