#include "core/reliability.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "tensor/ops.h"

namespace rdd {
namespace {

/// Builds a row-stochastic matrix where row i has probability `confidence`
/// on class `preds[i]` and the rest uniform.
Matrix MakeProbs(const std::vector<int64_t>& preds, int64_t k,
                 const std::vector<double>& confidence) {
  Matrix probs(static_cast<int64_t>(preds.size()), k);
  for (size_t i = 0; i < preds.size(); ++i) {
    const float rest =
        static_cast<float>((1.0 - confidence[i]) / static_cast<double>(k - 1));
    for (int64_t c = 0; c < k; ++c) {
      probs.At(static_cast<int64_t>(i), c) = rest;
    }
    probs.At(static_cast<int64_t>(i), preds[i]) =
        static_cast<float>(confidence[i]);
  }
  return probs;
}

TEST(PercentileTest, BasicThresholds) {
  std::vector<double> values = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(LowerPercentileThreshold(values, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(LowerPercentileThreshold(values, 40.0), 4.0);
  EXPECT_DOUBLE_EQ(LowerPercentileThreshold(values, 100.0), 10.0);
}

TEST(PercentileTest, UnsortedInput) {
  std::vector<double> values = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(LowerPercentileThreshold(values, 40.0), 2.0);
}

TEST(PercentileTest, ZeroPercentKeepsMinimum) {
  std::vector<double> values = {3, 1, 2};
  EXPECT_DOUBLE_EQ(LowerPercentileThreshold(values, 0.0), 1.0);
}

TEST(PercentileTest, SingleValue) {
  EXPECT_DOUBLE_EQ(LowerPercentileThreshold({7.0}, 50.0), 7.0);
}

class NodeReliabilityTest : public ::testing::Test {
 protected:
  // 8 nodes, 2 classes. Nodes 0, 1 are labeled.
  const std::vector<int64_t> labels_ = {0, 1, 0, 0, 1, 1, 0, 1};
  const std::vector<bool> train_mask_ = {true, true, false, false,
                                         false, false, false, false};
};

TEST_F(NodeReliabilityTest, CorrectLabeledNodesAreReliable) {
  // Teacher predicts everything correctly with high confidence.
  const Matrix teacher =
      MakeProbs(labels_, 2, std::vector<double>(8, 0.95));
  const Matrix student = teacher;
  NodeReliabilityConfig config;
  config.p_percent = 100.0;  // Entropy gate wide open.
  const NodeReliability rel =
      ComputeNodeReliability(teacher, student, labels_, train_mask_, config);
  EXPECT_TRUE(rel.reliable[0]);
  EXPECT_TRUE(rel.reliable[1]);
}

TEST_F(NodeReliabilityTest, MisclassifiedLabeledNodeIsUnreliable) {
  std::vector<int64_t> teacher_preds = labels_;
  teacher_preds[0] = 1;  // Teacher wrong on labeled node 0.
  const Matrix teacher =
      MakeProbs(teacher_preds, 2, std::vector<double>(8, 0.95));
  NodeReliabilityConfig config;
  config.p_percent = 100.0;
  const NodeReliability rel = ComputeNodeReliability(
      teacher, teacher, labels_, train_mask_, config);
  EXPECT_FALSE(rel.reliable[0]);
  EXPECT_TRUE(rel.reliable[1]);
}

TEST_F(NodeReliabilityTest, StudentRuleUsesStudentPrediction) {
  std::vector<int64_t> teacher_preds = labels_;
  teacher_preds[0] = 1;  // Teacher wrong on node 0.
  const Matrix teacher =
      MakeProbs(teacher_preds, 2, std::vector<double>(8, 0.95));
  const Matrix student =
      MakeProbs(labels_, 2, std::vector<double>(8, 0.95));  // Student right.
  NodeReliabilityConfig config;
  config.p_percent = 100.0;
  config.labeled_rule = LabeledReliabilityRule::kStudentCorrect;
  config.require_agreement = false;
  const NodeReliability rel =
      ComputeNodeReliability(teacher, student, labels_, train_mask_, config);
  EXPECT_TRUE(rel.reliable[0]);
}

TEST_F(NodeReliabilityTest, LowEntropyUnlabeledNodesAreReliable) {
  // Unlabeled nodes 2, 3 confident; 4..7 uncertain.
  std::vector<double> confidence = {0.99, 0.99, 0.99, 0.99,
                                    0.55, 0.55, 0.55, 0.55};
  const Matrix teacher = MakeProbs(labels_, 2, confidence);
  NodeReliabilityConfig config;
  config.p_percent = 50.0;
  const NodeReliability rel = ComputeNodeReliability(
      teacher, teacher, labels_, train_mask_, config);
  EXPECT_TRUE(rel.reliable[2]);
  EXPECT_TRUE(rel.reliable[3]);
  EXPECT_FALSE(rel.reliable[4]);
  EXPECT_FALSE(rel.reliable[7]);
}

TEST_F(NodeReliabilityTest, AgreementFilterRemovesDisagreements) {
  const Matrix teacher =
      MakeProbs(labels_, 2, std::vector<double>(8, 0.95));
  std::vector<int64_t> student_preds = labels_;
  student_preds[2] = 1 - student_preds[2];  // Student disagrees on node 2.
  const Matrix student =
      MakeProbs(student_preds, 2, std::vector<double>(8, 0.95));
  NodeReliabilityConfig config;
  config.p_percent = 100.0;
  config.require_agreement = true;
  const NodeReliability rel =
      ComputeNodeReliability(teacher, student, labels_, train_mask_, config);
  EXPECT_FALSE(rel.reliable[2]);
  EXPECT_TRUE(rel.reliable[3]);
  // Without the filter the node is reliable again.
  config.require_agreement = false;
  const NodeReliability rel2 =
      ComputeNodeReliability(teacher, student, labels_, train_mask_, config);
  EXPECT_TRUE(rel2.reliable[2]);
}

TEST_F(NodeReliabilityTest, DistillRuleUncertainOnly) {
  // All teacher-reliable; student confidences strictly increasing in
  // entropy from node 0 to node 7, so percentile ties cannot occur.
  std::vector<double> student_conf = {0.99, 0.98, 0.97, 0.96,
                                      0.58, 0.57, 0.56, 0.55};
  const Matrix teacher =
      MakeProbs(labels_, 2, std::vector<double>(8, 0.95));
  const Matrix student = MakeProbs(labels_, 2, student_conf);
  NodeReliabilityConfig config;
  config.p_percent = 50.0;
  config.distill_rule = DistillTargetRule::kUncertainOnly;
  const NodeReliability rel =
      ComputeNodeReliability(teacher, student, labels_, train_mask_, config);
  // Distill targets must be reliable AND in the student's top-50% entropy
  // band; the inclusive threshold sits at the 4th lowest entropy (node 3).
  EXPECT_FALSE(rel.distill_nodes.empty());
  for (int64_t v : rel.distill_nodes) {
    EXPECT_TRUE(rel.reliable[static_cast<size_t>(v)]);
    EXPECT_GE(v, 3);
  }
  // The clearly-confident nodes are never distill targets.
  for (int64_t v : rel.distill_nodes) EXPECT_NE(v, 0);
}

TEST_F(NodeReliabilityTest, DistillRuleDisagreeOrUncertain) {
  const Matrix teacher =
      MakeProbs(labels_, 2, std::vector<double>(8, 0.95));
  std::vector<int64_t> student_preds = labels_;
  student_preds[3] = 1 - student_preds[3];  // Confident disagreement.
  const Matrix student =
      MakeProbs(student_preds, 2, std::vector<double>(8, 0.95));
  NodeReliabilityConfig config;
  config.p_percent = 100.0;
  config.distill_rule = DistillTargetRule::kDisagreeOrUncertain;
  const NodeReliability rel =
      ComputeNodeReliability(teacher, student, labels_, train_mask_, config);
  // Node 3 disagrees -> distill target even though the student is sure.
  EXPECT_NE(std::find(rel.distill_nodes.begin(), rel.distill_nodes.end(), 3),
            rel.distill_nodes.end());
}

TEST_F(NodeReliabilityTest, DistillRuleAllReliable) {
  const Matrix teacher =
      MakeProbs(labels_, 2, std::vector<double>(8, 0.95));
  NodeReliabilityConfig config;
  config.p_percent = 100.0;
  config.distill_rule = DistillTargetRule::kAllReliable;
  const NodeReliability rel = ComputeNodeReliability(
      teacher, teacher, labels_, train_mask_, config);
  EXPECT_EQ(rel.distill_nodes.size(), 8u);
}

TEST_F(NodeReliabilityTest, EntropiesExposedForDiagnostics) {
  const Matrix teacher =
      MakeProbs(labels_, 2, {0.99, 0.99, 0.9, 0.9, 0.6, 0.6, 0.51, 0.51});
  const NodeReliability rel = ComputeNodeReliability(
      teacher, teacher, labels_, train_mask_, NodeReliabilityConfig{});
  EXPECT_EQ(rel.teacher_entropy.size(), 8u);
  EXPECT_LT(rel.teacher_entropy[0], rel.teacher_entropy[4]);
  EXPECT_LT(rel.teacher_entropy[4], rel.teacher_entropy[6]);
}

TEST(EdgeReliabilityTest, RequiresBothEndpointsReliableAndAgreeing) {
  // Path 0-1-2-3.
  const Graph g = MakePathGraph(4);
  const std::vector<bool> reliable = {true, true, true, false};
  const std::vector<int64_t> preds = {0, 0, 1, 1};
  const auto edges = ComputeReliableEdges(g, reliable, preds);
  // Edge (0,1): both reliable, same class -> kept.
  // Edge (1,2): classes differ -> dropped.
  // Edge (2,3): node 3 unreliable -> dropped.
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].first, 0);
  EXPECT_EQ(edges[0].second, 1);
}

TEST(EdgeReliabilityTest, AllReliableSameClassKeepsAll) {
  const Graph g = MakeCompleteGraph(4);
  const auto edges = ComputeReliableEdges(
      g, std::vector<bool>(4, true), std::vector<int64_t>(4, 2));
  EXPECT_EQ(static_cast<int64_t>(edges.size()), g.num_edges());
}

TEST(EdgeReliabilityTest, NoneReliableKeepsNone) {
  const Graph g = MakeCompleteGraph(4);
  const auto edges = ComputeReliableEdges(
      g, std::vector<bool>(4, false), std::vector<int64_t>(4, 0));
  EXPECT_TRUE(edges.empty());
}

}  // namespace
}  // namespace rdd
