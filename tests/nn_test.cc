#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "nn/graph_conv.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/metrics.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/random.h"

namespace rdd {
namespace {

TEST(InitTest, GlorotBoundsRespectFanInOut) {
  Rng rng(1);
  const int64_t fan_in = 50;
  const int64_t fan_out = 30;
  const Matrix w = GlorotUniform(fan_in, fan_out, &rng);
  const float bound = std::sqrt(6.0f / (fan_in + fan_out));
  for (int64_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w.Data()[i], -bound);
    EXPECT_LT(w.Data()[i], bound);
  }
}

TEST(InitTest, GlorotMeanNearZero) {
  Rng rng(2);
  const Matrix w = GlorotUniform(100, 100, &rng);
  EXPECT_NEAR(w.Sum() / w.size(), 0.0, 0.01);
}

TEST(InitTest, ZeroInitIsZero) {
  EXPECT_TRUE(ZeroInit(3, 4).Equals(Matrix(3, 4)));
}

TEST(InitTest, UniformInitRange) {
  Rng rng(3);
  const Matrix w = UniformInit(20, 20, 2.0f, 3.0f, &rng);
  for (int64_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w.Data()[i], 2.0f);
    EXPECT_LT(w.Data()[i], 3.0f);
  }
}

TEST(LinearTest, ShapesAndParameterCount) {
  Rng rng(4);
  Linear layer(5, 3, &rng);
  EXPECT_EQ(layer.in_dim(), 5);
  EXPECT_EQ(layer.out_dim(), 3);
  EXPECT_EQ(layer.Parameters().size(), 2u);  // Weight + bias.
  EXPECT_EQ(layer.NumParameters(), 5 * 3 + 3);
  Linear no_bias(5, 3, &rng, /*use_bias=*/false);
  EXPECT_EQ(no_bias.Parameters().size(), 1u);
}

TEST(LinearTest, ForwardMatchesManualCompute) {
  Rng rng(5);
  Linear layer(2, 2, &rng);
  const Variable x(Matrix(1, 2, {1.0f, 2.0f}), false);
  const Matrix expected = AddRowBroadcast(
      Matmul(x.value(), layer.weight().value()),
      Matrix(1, 2));  // Bias is zero-initialized.
  EXPECT_TRUE(layer.Forward(x).value().ApproxEquals(expected, 1e-6f));
}

TEST(LinearTest, SparseForwardMatchesDense) {
  Rng rng(6);
  Linear layer(4, 3, &rng);
  Matrix dense(5, 4);
  dense.At(0, 1) = 2.0f;
  dense.At(3, 2) = -1.0f;
  dense.At(4, 0) = 0.5f;
  const SparseMatrix sparse = SparseMatrix::FromDense(dense);
  const Variable dense_in(dense, false);
  EXPECT_TRUE(layer.ForwardSparse(&sparse).value().ApproxEquals(
      layer.Forward(dense_in).value(), 1e-5f));
}

TEST(LinearTest, GradientsFlowToParameters) {
  Rng rng(7);
  Linear layer(3, 2, &rng);
  const Variable x(Matrix::Constant(4, 3, 1.0f), false);
  ag::SumAll(layer.Forward(x)).Backward();
  // d(sum)/d(bias) = #rows for every bias entry.
  const Variable& bias = layer.Parameters()[1];
  EXPECT_TRUE(bias.grad().Equals(Matrix::Constant(1, 2, 4.0f)));
  // d(sum)/dW_ij = sum of column i of x = 4.
  EXPECT_TRUE(layer.Parameters()[0].grad().Equals(
      Matrix::Constant(3, 2, 4.0f)));
}

TEST(GraphConvTest, PropagatesOverAdjacency) {
  Rng rng(8);
  // Two disconnected nodes: Ahat = I, so the layer reduces to Linear.
  const SparseMatrix identity = SparseMatrix::FromCoo(
      2, 2, {{0, 0, 1.0f}, {1, 1, 1.0f}});
  GraphConvolution layer(&identity, 3, 2, &rng);
  const Matrix x0(2, 3, {1, 0, 0, 0, 1, 0});
  const Variable x(x0, false);
  const Variable out = layer.Forward(x);
  EXPECT_EQ(out.rows(), 2);
  EXPECT_EQ(out.cols(), 2);
}

TEST(GraphConvTest, MixingAveragesNeighborFeatures) {
  Rng rng(9);
  // Ahat = all-0.5 2x2 matrix mixes the two rows equally, so outputs match.
  const SparseMatrix mix = SparseMatrix::FromCoo(
      2, 2, {{0, 0, 0.5f}, {0, 1, 0.5f}, {1, 0, 0.5f}, {1, 1, 0.5f}});
  GraphConvolution layer(&mix, 2, 2, &rng);
  const Variable x(Matrix(2, 2, {4, 0, 0, 2}), false);
  const Matrix out = layer.Forward(x).value();
  EXPECT_NEAR(out.At(0, 0), out.At(1, 0), 1e-6);
  EXPECT_NEAR(out.At(0, 1), out.At(1, 1), 1e-6);
}

TEST(GraphConvTest, SparseForwardMatchesDense) {
  Rng rng(10);
  const SparseMatrix adj = SparseMatrix::FromCoo(
      3, 3, {{0, 0, 0.4f}, {0, 1, 0.6f}, {1, 1, 1.0f}, {2, 2, 1.0f}});
  GraphConvolution layer(&adj, 4, 2, &rng);
  Matrix dense(3, 4);
  dense.At(0, 0) = 1.0f;
  dense.At(2, 3) = 2.0f;
  const SparseMatrix sparse_features = SparseMatrix::FromDense(dense);
  EXPECT_TRUE(layer.ForwardSparse(&sparse_features)
                  .value()
                  .ApproxEquals(layer.Forward(Variable(dense, false)).value(),
                                1e-5f));
}

TEST(ModuleTest, NumParametersAggregates) {
  Rng rng(11);
  Linear a(4, 4, &rng);
  EXPECT_EQ(a.NumParameters(), 20);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  // Minimize ||w - target||^2 by SGD.
  Variable w(Matrix(1, 3), true);
  const Matrix target(1, 3, {1.0f, -2.0f, 0.5f});
  Sgd opt({w}, /*lr=*/0.1f);
  for (int step = 0; step < 200; ++step) {
    Variable loss = ag::RowSquaredError(w, target, {0},
                                        ag::Reduction::kMean);
    loss.Backward();
    opt.Step();
  }
  EXPECT_TRUE(w.value().ApproxEquals(target, 1e-3f));
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Variable w(Matrix::Constant(1, 2, 10.0f), true);
  Sgd opt({w}, /*lr=*/0.1f, /*weight_decay=*/0.5f);
  // Zero gradient: only the decay acts.
  w.ZeroGrad();
  opt.Step();
  EXPECT_NEAR(w.value().At(0, 0), 10.0f * (1.0f - 0.05f), 1e-5f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Variable w(Matrix(1, 4), true);
  const Matrix target(1, 4, {3.0f, -1.0f, 2.0f, 0.0f});
  Adam opt({w}, /*lr=*/0.05f);
  for (int step = 0; step < 500; ++step) {
    Variable loss = ag::RowSquaredError(w, target, {0},
                                        ag::Reduction::kMean);
    loss.Backward();
    opt.Step();
  }
  EXPECT_TRUE(w.value().ApproxEquals(target, 1e-2f));
  EXPECT_EQ(opt.step_count(), 500);
}

TEST(AdamTest, FirstStepMagnitudeIsLr) {
  // With bias correction, Adam's first step is ~lr * sign(grad).
  Variable w(Matrix(1, 1), true);
  Adam opt({w}, /*lr=*/0.01f);
  Variable loss = ag::Scale(ag::SumAll(w), 5.0f);  // grad = 5.
  loss.Backward();
  opt.Step();
  EXPECT_NEAR(w.value().At(0, 0), -0.01f, 1e-4f);
}

TEST(AdamTest, BiasCorrectionMatchesDoublePrecisionReference) {
  // Regression: the bias corrections 1 - beta^t were computed with float
  // pow, which loses ~1e-4 relative precision for beta2 = 0.999 at the small
  // step counts where the correction matters most. They must now match a
  // double-precision reference (moment buffers stay float, mirroring the
  // implementation, so the comparison isolates the correction terms).
  const float lr = 0.01f;
  const float beta1 = 0.9f;
  const float beta2 = 0.999f;
  const float eps = 1e-8f;
  Variable w(Matrix(1, 1), true);
  Adam opt({w}, lr);

  float m = 0.0f;
  float v = 0.0f;
  float ref_w = 0.0f;
  const float g = 1.0f;  // SumAll of a 1x1 always backpropagates grad 1.
  for (int step = 1; step <= 1000; ++step) {
    opt.ZeroGrad();
    ag::SumAll(w).Backward();
    opt.Step();

    m = beta1 * m + (1.0f - beta1) * g;
    v = beta2 * v + (1.0f - beta2) * g * g;
    const float bias1 = static_cast<float>(
        1.0 - std::pow(static_cast<double>(beta1), static_cast<double>(step)));
    const float bias2 = static_cast<float>(
        1.0 - std::pow(static_cast<double>(beta2), static_cast<double>(step)));
    const float m_hat = m / bias1;
    const float v_hat = v / bias2;
    ref_w -= lr * m_hat / (std::sqrt(v_hat) + eps);

    if (step == 1) {
      // Analytically, m_hat = g and v_hat = g*g at step 1, so the first
      // update is -lr / (1 + eps) to double precision.
      EXPECT_NEAR(w.value().At(0, 0), -lr / (1.0 + 1e-8), 1e-9);
      EXPECT_FLOAT_EQ(w.value().At(0, 0), ref_w);
    }
  }
  EXPECT_FLOAT_EQ(w.value().At(0, 0), ref_w);
}

TEST(OptimizerTest, ZeroGradClears) {
  Variable w(Matrix(1, 2), true);
  Sgd opt({w}, 0.1f);
  ag::SumAll(w).Backward();
  EXPECT_FALSE(w.grad().Equals(Matrix(1, 2)));
  opt.ZeroGrad();
  EXPECT_TRUE(w.grad().Equals(Matrix(1, 2)));
}

TEST(AccuracyTest, PerfectAndZero) {
  const Matrix scores(2, 2, {0.9f, 0.1f, 0.2f, 0.8f});
  EXPECT_DOUBLE_EQ(Accuracy(scores, {0, 1}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy(scores, {1, 0}, {0, 1}), 0.0);
}

TEST(AccuracyTest, SubsetOnly) {
  const Matrix scores(3, 2, {0.9f, 0.1f, 0.1f, 0.9f, 0.9f, 0.1f});
  // Node 2 is wrong but not in the index set.
  EXPECT_DOUBLE_EQ(Accuracy(scores, {0, 1, 1}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy(scores, {0, 1, 1}, {0, 1, 2}), 2.0 / 3.0);
}

TEST(AccuracyTest, EmptyIndicesIsZero) {
  EXPECT_DOUBLE_EQ(Accuracy(Matrix(1, 2), {0}, {}), 0.0);
}

TEST(ConfusionMatrixTest, CountsByTrueAndPredicted) {
  const Matrix scores(3, 2, {0.9f, 0.1f, 0.1f, 0.9f, 0.8f, 0.2f});
  const Matrix confusion =
      ConfusionMatrix(scores, {0, 0, 1}, {0, 1, 2}, 2);
  EXPECT_EQ(confusion.At(0, 0), 1.0f);  // Node 0: true 0, pred 0.
  EXPECT_EQ(confusion.At(0, 1), 1.0f);  // Node 1: true 0, pred 1.
  EXPECT_EQ(confusion.At(1, 0), 1.0f);  // Node 2: true 1, pred 0.
  EXPECT_EQ(confusion.At(1, 1), 0.0f);
}

TEST(MacroF1Test, PerfectPredictionIsOne) {
  const Matrix scores(4, 2, {1, 0, 1, 0, 0, 1, 0, 1});
  EXPECT_NEAR(MacroF1(scores, {0, 0, 1, 1}, {0, 1, 2, 3}, 2), 1.0, 1e-9);
}

TEST(MacroF1Test, PenalizesMinorityErrors) {
  // 3 of class 0 right, the single class-1 node wrong: accuracy 0.75 but
  // macro-F1 is much lower because class 1 has F1 = 0.
  const Matrix scores(4, 2, {1, 0, 1, 0, 1, 0, 1, 0});
  const double f1 = MacroF1(scores, {0, 0, 0, 1}, {0, 1, 2, 3}, 2);
  EXPECT_LT(f1, 0.5);
  EXPECT_GT(f1, 0.0);
}

}  // namespace
}  // namespace rdd
