#include "graph/pagerank.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/random.h"

namespace rdd {
namespace {

double Sum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

TEST(PageRankTest, EmptyGraph) {
  EXPECT_TRUE(PageRank(Graph()).empty());
}

TEST(PageRankTest, SumsToOne) {
  Rng rng(3);
  const Graph g = MakeErdosRenyiGraph(40, 0.1, &rng);
  EXPECT_NEAR(Sum(PageRank(g)), 1.0, 1e-9);
}

TEST(PageRankTest, SymmetricGraphIsUniform) {
  const Graph g = MakeCycleGraph(8);
  const auto rank = PageRank(g);
  for (double r : rank) EXPECT_NEAR(r, 1.0 / 8.0, 1e-9);
}

TEST(PageRankTest, CompleteGraphIsUniform) {
  const Graph g = MakeCompleteGraph(5);
  const auto rank = PageRank(g);
  for (double r : rank) EXPECT_NEAR(r, 0.2, 1e-9);
}

TEST(PageRankTest, HubDominatesStar) {
  const Graph g = MakeStarGraph(10);
  const auto rank = PageRank(g);
  for (size_t i = 1; i < rank.size(); ++i) {
    EXPECT_GT(rank[0], rank[i]);
    EXPECT_NEAR(rank[i], rank[1], 1e-12);  // Leaves are symmetric.
  }
}

TEST(PageRankTest, IsolatedNodesGetTeleportMass) {
  const Graph g(4, {{0, 1}});
  const auto rank = PageRank(g);
  EXPECT_NEAR(Sum(rank), 1.0, 1e-9);
  EXPECT_GT(rank[2], 0.0);
  EXPECT_NEAR(rank[2], rank[3], 1e-12);
  // Connected nodes should outrank isolated ones.
  EXPECT_GT(rank[0], rank[2]);
}

TEST(PageRankTest, DampingChangesConcentration) {
  const Graph g = MakeStarGraph(20);
  PageRankOptions strong;
  strong.damping = 0.95;
  PageRankOptions weak;
  weak.damping = 0.5;
  // Higher damping concentrates more mass on the hub.
  EXPECT_GT(PageRank(g, strong)[0], PageRank(g, weak)[0]);
}

TEST(PageRankTest, ConvergedResultIsStationary) {
  Rng rng(5);
  const Graph g = MakeErdosRenyiGraph(30, 0.2, &rng);
  PageRankOptions options;
  options.max_iterations = 500;
  options.tolerance = 1e-13;
  const auto rank = PageRank(g, options);
  // One more hand-rolled power step should not change the vector.
  const double n = static_cast<double>(g.num_nodes());
  std::vector<double> next(rank.size(), (1.0 - options.damping) / n);
  for (int64_t i = 0; i < g.num_nodes(); ++i) {
    const double share = options.damping * rank[static_cast<size_t>(i)] /
                         static_cast<double>(g.Degree(i));
    for (int64_t j : g.Neighbors(i)) next[static_cast<size_t>(j)] += share;
  }
  for (size_t i = 0; i < rank.size(); ++i) {
    EXPECT_NEAR(next[i], rank[i], 1e-9);
  }
}

TEST(PageRankDeathTest, BadDampingAborts) {
  PageRankOptions options;
  options.damping = 1.0;
  EXPECT_DEATH((void)PageRank(MakeCycleGraph(3), options), "Check failed");
}

}  // namespace
}  // namespace rdd
