// Tests for the parallel backend: ParallelFor partitioning invariants,
// thread-count configuration, pool stress (the ThreadSanitizer target), and
// bit-exactness of every parallelized kernel between RDD_NUM_THREADS=1 and 4
// — including a full RddTrainer run both ways.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/rdd_trainer.h"
#include "data/citation_gen.h"
#include "memory/buffer_pool.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"
#include "util/random.h"

namespace rdd {
namespace {

using parallel::GrainForCost;
using parallel::NumThreads;
using parallel::ParallelFor;
using parallel::SetNumThreads;
using parallel::internal::ParseThreadCount;

/// Restores the configured thread count on scope exit so tests compose.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(NumThreads()) {}
  ~ThreadCountGuard() { SetNumThreads(saved_); }

 private:
  int saved_;
};

Matrix RandomMatrix(int64_t rows, int64_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.Data()[i] = static_cast<float>(rng->Gaussian());
  }
  return m;
}

std::vector<std::pair<int64_t, int64_t>> CollectChunks(int64_t begin,
                                                       int64_t end,
                                                       int64_t grain) {
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  ParallelFor(begin, end, grain, [&](int64_t b, int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  return chunks;
}

TEST(ParseThreadCountTest, ParsesValidOverrides) {
  EXPECT_EQ(ParseThreadCount("4", 8), 4);
  EXPECT_EQ(ParseThreadCount("1", 8), 1);
  EXPECT_EQ(ParseThreadCount("16", 1), 16);
}

TEST(ParseThreadCountTest, FallsBackOnGarbage) {
  EXPECT_EQ(ParseThreadCount(nullptr, 3), 3);
  EXPECT_EQ(ParseThreadCount("", 3), 3);
  EXPECT_EQ(ParseThreadCount("abc", 3), 3);
  EXPECT_EQ(ParseThreadCount("4x", 3), 3);
  EXPECT_EQ(ParseThreadCount("0", 3), 3);
  EXPECT_EQ(ParseThreadCount("-2", 3), 3);
}

TEST(ParseThreadCountTest, ClampsOversizedValuesInsteadOfTruncating) {
  // 2^32 + 1 used to truncate to 1 thread through a long -> int narrowing;
  // it must clamp to the cap instead.
  EXPECT_EQ(ParseThreadCount("4294967297", 3),
            parallel::internal::kMaxThreadCount);
  EXPECT_EQ(ParseThreadCount("2000000000", 3),
            parallel::internal::kMaxThreadCount);
  // Values past the long long range (ERANGE) saturate the same way.
  EXPECT_EQ(ParseThreadCount("99999999999999999999999999", 3),
            parallel::internal::kMaxThreadCount);
  EXPECT_EQ(ParseThreadCount("-99999999999999999999999999", 3), 3);
  // The cap itself is accepted verbatim; one past it clamps.
  EXPECT_EQ(ParseThreadCount("1024", 3), 1024);
  EXPECT_EQ(ParseThreadCount("1025", 3), 1024);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h = 0;
  ParallelFor(0, 100, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ChunksAreContiguousAndDeterministic) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  const auto first = CollectChunks(0, 103, 1);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first.front().first, 0);
  EXPECT_EQ(first.back().second, 103);
  for (size_t i = 1; i < first.size(); ++i) {
    EXPECT_EQ(first[i].first, first[i - 1].second);  // No gaps, no overlap.
  }
  // Static partitioning: identical split points on every run.
  for (int run = 0; run < 5; ++run) {
    EXPECT_EQ(CollectChunks(0, 103, 1), first);
  }
}

TEST(ParallelForTest, SerialFallbackRunsInlineAsOneChunk) {
  ThreadCountGuard guard;
  SetNumThreads(1);
  const auto chunks = CollectChunks(0, 1000, 1);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], std::make_pair(int64_t{0}, int64_t{1000}));
}

TEST(ParallelForTest, SmallRangeStaysSerialRegardlessOfThreads) {
  ThreadCountGuard guard;
  SetNumThreads(8);
  // range <= grain: must not split.
  EXPECT_EQ(CollectChunks(0, 16, 16).size(), 1u);
}

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  bool called = false;
  ParallelFor(5, 5, 1, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  std::atomic<int64_t> total{0};
  ParallelFor(0, 8, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      // Inner region must not re-enter the pool from a worker thread.
      ParallelFor(0, 100, 1,
                  [&](int64_t ib, int64_t ie) { total += ie - ib; });
    }
  });
  EXPECT_EQ(total.load(), 800);
}

TEST(ParallelForTest, GrainForCostIsAtLeastOne) {
  EXPECT_GE(GrainForCost(0), 1);
  EXPECT_GE(GrainForCost(1 << 30), 1);
  EXPECT_GT(GrainForCost(1), 1);
}

TEST(ThreadPoolTest, StressManyParallelRegions) {
  // TSan target: hammer the pool with back-to-back regions accumulating
  // into disjoint slots; any pool race shows up here.
  ThreadCountGuard guard;
  SetNumThreads(4);
  std::vector<int64_t> slots(256, 0);
  for (int iter = 0; iter < 200; ++iter) {
    ParallelFor(0, static_cast<int64_t>(slots.size()), 1,
                [&](int64_t b, int64_t e) {
                  for (int64_t i = b; i < e; ++i) slots[static_cast<size_t>(i)]++;
                });
  }
  for (int64_t s : slots) EXPECT_EQ(s, 200);
}

TEST(BufferPoolStressTest, ConcurrentAcquireReleaseAcrossWorkers) {
  // TSan target for the memory subsystem: worker threads acquire, dirty, and
  // release pool buffers of colliding sizes while other workers do the same.
  // In production kernels only the calling thread allocates, but the pool
  // promises full thread safety and this is where a mutex slip would show.
  ThreadCountGuard guard;
  SetNumThreads(4);
  memory::BufferPool& pool = memory::BufferPool::Global();
  pool.ResetStats();
  ParallelFor(0, 2000, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      const size_t n = static_cast<size_t>(16 + (i % 7) * 33);
      float* ptr = pool.Acquire(n);
      ptr[0] = static_cast<float>(i);
      ptr[n - 1] = 1.0f;
      pool.Release(ptr, n);
    }
  });
  const memory::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, 2000u);
  EXPECT_EQ(stats.releases, 2000u);
  pool.Trim();
}

// ---------------------------------------------------------------------------
// Kernel equivalence: every row/block-partitioned kernel must be bit-exact
// between 1 and 4 threads — chunks write disjoint outputs and per-element
// accumulation order is unchanged, so no floating-point tolerance is needed.
// ---------------------------------------------------------------------------

/// Deterministic second operand for MatmulTransposeA (which requires
/// a.rows() == b.rows()).
Matrix RandomizedCopy(const Matrix& like) {
  Rng rng(99);
  Matrix m(like.rows(), 80);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.Data()[i] = static_cast<float>(rng.Gaussian());
  }
  return m;
}

class KernelEquivalenceTest : public ::testing::Test {
 protected:
  template <typename Fn>
  void ExpectBitExact(const Fn& compute) {
    ThreadCountGuard guard;
    SetNumThreads(1);
    const auto serial = compute();
    SetNumThreads(4);
    const auto parallel = compute();
    ExpectExactlyEqual(serial, parallel);
  }

  static void ExpectExactlyEqual(const Matrix& a, const Matrix& b) {
    EXPECT_TRUE(a.Equals(b));
  }
  template <typename T>
  static void ExpectExactlyEqual(const std::vector<T>& a,
                                 const std::vector<T>& b) {
    EXPECT_EQ(a, b);
  }
};

TEST_F(KernelEquivalenceTest, DenseKernels) {
  Rng rng(11);
  // Sizes chosen to exceed every kernel's grain so the 4-thread run really
  // splits.
  const Matrix a = RandomMatrix(257, 64, &rng);
  const Matrix b = RandomMatrix(64, 129, &rng);
  const Matrix at = RandomMatrix(64, 257, &rng);
  const Matrix bt = RandomMatrix(129, 64, &rng);
  ExpectBitExact([&] { return Matmul(a, b); });
  ExpectBitExact([&] { return MatmulTransposeA(at, RandomizedCopy(at)); });
  ExpectBitExact([&] { return MatmulTransposeB(a, bt); });
  ExpectBitExact([&] { return Transpose(a); });
}

TEST_F(KernelEquivalenceTest, RowwiseKernels) {
  Rng rng(12);
  const Matrix logits = RandomMatrix(4096, 16, &rng);
  ExpectBitExact([&] { return SoftmaxRows(logits); });
  ExpectBitExact([&] { return LogSoftmaxRows(logits); });
  ExpectBitExact([&] { return RowEntropy(SoftmaxRows(logits)); });
  ExpectBitExact([&] { return ArgmaxRows(logits); });
}

TEST_F(KernelEquivalenceTest, ElementwiseKernels) {
  Rng rng(13);
  const Matrix x = RandomMatrix(300, 200, &rng);
  const Matrix y = RandomMatrix(300, 200, &rng);
  ExpectBitExact([&] { return Relu(x); });
  ExpectBitExact([&] { return ReluBackward(y, x); });
  ExpectBitExact([&] { return Add(x, y); });
  ExpectBitExact([&] { return Sub(x, y); });
  ExpectBitExact([&] {
    Matrix z = x;
    z.Mul(y);
    z.Scale(0.5f);
    z.Axpy(2.0f, y);
    return z;
  });
}

TEST_F(KernelEquivalenceTest, SparseMultiply) {
  Rng rng(14);
  std::vector<SparseEntry> entries;
  for (int64_t i = 0; i < 20000; ++i) {
    entries.push_back({rng.UniformInt(2708), rng.UniformInt(2708),
                       static_cast<float>(rng.Gaussian())});
  }
  const SparseMatrix s = SparseMatrix::FromCoo(2708, 2708, std::move(entries));
  const Matrix h = RandomMatrix(2708, 16, &rng);
  ExpectBitExact([&] { return s.Multiply(h); });
  ExpectBitExact([&] { return s.TransposeMultiply(h); });
}

// ---------------------------------------------------------------------------
// End-to-end: a full RddTrainer run (every forward, backward, optimizer step,
// and reliability refresh) must produce identical metrics and per-epoch
// validation curves at 1 vs 4 threads.
// ---------------------------------------------------------------------------

TEST(ParallelTrainerEquivalenceTest, FullRddRunIsThreadCountInvariant) {
  CitationGenConfig config;
  config.num_nodes = 300;
  config.num_features = 100;
  config.num_edges = 900;
  config.num_classes = 4;
  config.labeled_per_class = 6;
  config.val_size = 50;
  config.test_size = 80;
  const Dataset dataset = GenerateCitationNetwork(config, 33);
  const GraphContext context = GraphContext::FromDataset(dataset);

  RddConfig rdd_config;
  rdd_config.num_base_models = 2;
  rdd_config.train.max_epochs = 25;

  ThreadCountGuard guard;
  SetNumThreads(1);
  const RddResult serial = TrainRdd(dataset, context, rdd_config, 5);
  SetNumThreads(4);
  const RddResult parallel = TrainRdd(dataset, context, rdd_config, 5);

  EXPECT_DOUBLE_EQ(serial.single_test_accuracy, parallel.single_test_accuracy);
  EXPECT_DOUBLE_EQ(serial.ensemble_test_accuracy,
                   parallel.ensemble_test_accuracy);
  ASSERT_EQ(serial.alphas.size(), parallel.alphas.size());
  for (size_t i = 0; i < serial.alphas.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.alphas[i], parallel.alphas[i]);
  }
  ASSERT_EQ(serial.reports.size(), parallel.reports.size());
  for (size_t t = 0; t < serial.reports.size(); ++t) {
    ASSERT_EQ(serial.reports[t].val_history.size(),
              parallel.reports[t].val_history.size());
    for (size_t e = 0; e < serial.reports[t].val_history.size(); ++e) {
      EXPECT_DOUBLE_EQ(serial.reports[t].val_history[e],
                       parallel.reports[t].val_history[e]);
    }
  }
}

}  // namespace
}  // namespace rdd
