// Tests for the observability layer (src/observe): metrics registry
// correctness, histogram bucketing, concurrent instrument mutation and span
// recording under the task scheduler (run under TSan in CI), trace JSON
// well-formedness, and the core contract that observability never changes a
// numeric result — a full TrainRdd run is bit-identical with metrics and
// tracing on vs off.

#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rdd_trainer.h"
#include "data/citation_gen.h"
#include "models/model_factory.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "parallel/parallel_for.h"
#include "parallel/task_group.h"

namespace rdd {
namespace {

using observe::Counter;
using observe::Gauge;
using observe::Histogram;
using observe::MetricsRegistry;
using observe::MetricsSnapshot;

/// Scoped metrics-enabled override; restores the prior (env-derived or
/// test-set) state so tests compose in any order.
class MetricsGuard {
 public:
  explicit MetricsGuard(bool enabled) : saved_(observe::MetricsEnabled()) {
    observe::SetMetricsEnabled(enabled);
  }
  ~MetricsGuard() { observe::SetMetricsEnabled(saved_); }

 private:
  bool saved_;
};

// ---------------------------------------------------------------------------
// Minimal JSON validator (syntax only). The repo deliberately has no JSON
// parsing dependency; this is enough to pin that every byte the observability
// layer emits is loadable by a real parser (chrome://tracing, python json).
// ---------------------------------------------------------------------------

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Peek(':')) return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(',')) { ++pos_; continue; }
      if (Peek('}')) { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(',')) { ++pos_; continue; }
      if (Peek(']')) { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (!Peek('"')) return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek('-')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool Peek(char c) const { return pos_ < s_.size() && s_[pos_] == c; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------------------
// Instruments.
// ---------------------------------------------------------------------------

TEST(CounterTest, AddsWhenEnabledAndIgnoresWhenDisabled) {
  Counter& c = MetricsRegistry::Global().counter("test.counter.gating");
  c.Reset();
  {
    MetricsGuard guard(false);
    c.Add(5);
    EXPECT_EQ(c.value(), 0u) << "disabled counter must be a no-op";
  }
  {
    MetricsGuard guard(true);
    c.Add();
    c.Add(41);
    EXPECT_EQ(c.value(), 42u);
  }
}

TEST(GaugeTest, TracksLastValueAndRunningMax) {
  MetricsGuard guard(true);
  Gauge& g = MetricsRegistry::Global().gauge("test.gauge.max");
  g.Reset();
  g.Set(7);
  g.Set(100);
  g.Set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max_value(), 100);
}

TEST(HistogramTest, BucketIndexIsFloorLog2) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 0);
  EXPECT_EQ(Histogram::BucketIndex(2), 1);
  EXPECT_EQ(Histogram::BucketIndex(3), 1);
  EXPECT_EQ(Histogram::BucketIndex(4), 2);
  EXPECT_EQ(Histogram::BucketIndex(1023), 9);
  EXPECT_EQ(Histogram::BucketIndex(1024), 10);
  EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << 63), 63);
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(i)), i);
  }
}

TEST(HistogramTest, RecordsCountSumAndBuckets) {
  MetricsGuard guard(true);
  Histogram& h = MetricsRegistry::Global().histogram("test.hist.basic");
  h.Reset();
  h.Record(0);    // bucket 0
  h.Record(1);    // bucket 0
  h.Record(5);    // bucket 2
  h.Record(6);    // bucket 2
  h.Record(900);  // bucket 9
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 912u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.bucket_count(1), 0u);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsGuard guard(true);
  Counter& a = MetricsRegistry::Global().counter("test.registry.same");
  Counter& b = MetricsRegistry::Global().counter("test.registry.same");
  EXPECT_EQ(&a, &b);
  a.Reset();
  a.Add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(MetricsRegistryTest, SnapshotReportsRegisteredInstruments) {
  MetricsGuard guard(true);
  Counter& c = MetricsRegistry::Global().counter("test.snapshot.counter");
  Histogram& h = MetricsRegistry::Global().histogram("test.snapshot.hist");
  c.Reset();
  h.Reset();
  c.Add(9);
  h.Record(16);
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  bool saw_counter = false;
  for (const auto& entry : snapshot.counters) {
    if (entry.name == "test.snapshot.counter") {
      saw_counter = true;
      EXPECT_EQ(entry.value, 9);
    }
  }
  EXPECT_TRUE(saw_counter);
  bool saw_hist = false;
  for (const auto& entry : snapshot.histograms) {
    if (entry.name == "test.snapshot.hist") {
      saw_hist = true;
      EXPECT_EQ(entry.count, 1u);
      EXPECT_EQ(entry.sum, 16u);
      // Only the one non-empty bucket materializes: [16, 1).
      ASSERT_EQ(entry.buckets.size(), 1u);
      EXPECT_EQ(entry.buckets[0].first, 16u);
      EXPECT_EQ(entry.buckets[0].second, 1u);
    }
  }
  EXPECT_TRUE(saw_hist);
}

TEST(MetricsRegistryTest, CallbackGaugeEvaluatesAtSnapshotTime) {
  MetricsGuard guard(true);
  std::atomic<int64_t> live{17};
  MetricsRegistry::Global().RegisterCallbackGauge(
      "test.callback.live", [&live] { return live.load(); });
  auto find = [](const MetricsSnapshot& s, const std::string& name) {
    for (const auto& g : s.gauges) {
      if (g.name == name) return g.value;
    }
    return int64_t{-1};
  };
  EXPECT_EQ(find(MetricsRegistry::Global().Snapshot(), "test.callback.live"),
            17);
  live.store(23);
  EXPECT_EQ(find(MetricsRegistry::Global().Snapshot(), "test.callback.live"),
            23);
  // Re-registering under a "dead" closure keeps later tests (and the suite's
  // final snapshots) from reading the stack-local atomic above.
  MetricsRegistry::Global().RegisterCallbackGauge("test.callback.live",
                                                  [] { return int64_t{0}; });
}

TEST(MetricsRegistryTest, SnapshotJsonIsWellFormed) {
  MetricsGuard guard(true);
  MetricsRegistry::Global().counter("test.json.counter").Add(1);
  MetricsRegistry::Global().histogram("test.json.hist").Record(100);
  const std::string json =
      observe::SnapshotToJson(MetricsRegistry::Global().Snapshot());
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid()) << json;
  EXPECT_NE(json.find("\"test.json.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency (this suite runs under TSan in CI).
// ---------------------------------------------------------------------------

TEST(ObserveConcurrencyTest, CountersAndHistogramsAreRaceFreeUnderScheduler) {
  MetricsGuard guard(true);
  Counter& c = MetricsRegistry::Global().counter("test.concurrent.counter");
  Histogram& h = MetricsRegistry::Global().histogram("test.concurrent.hist");
  c.Reset();
  h.Reset();
  constexpr int64_t kTasks = 16;
  constexpr int64_t kAddsPerTask = 1000;
  parallel::ParallelTasks(kTasks, [&](int64_t t) {
    for (int64_t i = 0; i < kAddsPerTask; ++i) {
      c.Add(1);
      h.Record(static_cast<uint64_t>(t + 1));
    }
  });
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kTasks * kAddsPerTask));
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kTasks * kAddsPerTask));
}

TEST(ObserveConcurrencyTest, SpansOnConcurrentWorkersAreRaceFree) {
  const std::string path = ::testing::TempDir() + "observe_concurrent.json";
  ASSERT_TRUE(observe::StartTracing(path));
  parallel::TaskGroup group;
  for (int t = 0; t < 8; ++t) {
    group.Run([t] {
      observe::TraceSpan outer("test/worker", t);
      for (int i = 0; i < 50; ++i) {
        observe::TraceSpan inner("test/worker_iter", i);
      }
    });
  }
  group.Wait();
  ASSERT_TRUE(observe::StopTracing());
  const std::string json = ReadFile(path);
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid());
  EXPECT_NE(json.find("\"test/worker\""), std::string::npos);
  EXPECT_NE(json.find("\"test/worker_iter\""), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Trace output shape.
// ---------------------------------------------------------------------------

/// One parsed trace event: just the fields the tests assert on.
struct ParsedEvent {
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
  int64_t tid = -1;
};

/// Pulls every {"name": ...} event object out of a trace written by
/// StopTracing (one event per line, a shape this test pins on purpose).
std::vector<ParsedEvent> ParseEvents(const std::string& json) {
  std::vector<ParsedEvent> events;
  std::istringstream lines(json);
  std::string line;
  auto number_after = [](const std::string& s, const std::string& key) {
    const size_t at = s.find(key);
    if (at == std::string::npos) return -1.0;
    return std::atof(s.c_str() + at + key.size());
  };
  while (std::getline(lines, line)) {
    const size_t name_at = line.find("{\"name\": \"");
    if (name_at == std::string::npos) continue;
    ParsedEvent e;
    const size_t name_begin = name_at + 10;
    e.name = line.substr(name_begin, line.find('"', name_begin) - name_begin);
    e.ts = number_after(line, "\"ts\": ");
    e.dur = number_after(line, "\"dur\": ");
    e.tid = static_cast<int64_t>(number_after(line, "\"tid\": "));
    events.push_back(std::move(e));
  }
  return events;
}

TEST(TraceTest, DisabledByDefaultAndStartStopToggles) {
  EXPECT_FALSE(observe::TraceEnabled());
  EXPECT_FALSE(observe::StopTracing()) << "stop without start must be a no-op";
  const std::string path = ::testing::TempDir() + "observe_toggle.json";
  ASSERT_TRUE(observe::StartTracing(path));
  EXPECT_TRUE(observe::TraceEnabled());
  EXPECT_FALSE(observe::StartTracing(path)) << "no nested traces";
  ASSERT_TRUE(observe::StopTracing());
  EXPECT_FALSE(observe::TraceEnabled());
  std::remove(path.c_str());
}

TEST(TraceTest, NestedSpansEmitWellFormedContainedEvents) {
  const std::string path = ::testing::TempDir() + "observe_nested.json";
  ASSERT_TRUE(observe::StartTracing(path));
  {
    observe::TraceSpan outer("test/outer");
    {
      observe::TraceSpan inner("test/inner", 42);
    }
  }
  ASSERT_TRUE(observe::StopTracing());
  const std::string json = ReadFile(path);
  ASSERT_FALSE(json.empty());
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

  const std::vector<ParsedEvent> events = ParseEvents(json);
  const ParsedEvent* outer = nullptr;
  const ParsedEvent* inner = nullptr;
  for (const ParsedEvent& e : events) {
    if (e.name == "test/outer") outer = &e;
    if (e.name == "test/inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Same thread, and the inner interval is contained in the outer one —
  // what makes the spans render nested in chrome://tracing.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_GE(inner->ts, outer->ts);
  EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur);
  // The arg payload survives serialization.
  EXPECT_NE(json.find("\"i\": 42"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// The determinism contract on a full training run.
// ---------------------------------------------------------------------------

TEST(ObserveDeterminismTest, TrainRddIsBitIdenticalWithObservabilityOn) {
  CitationGenConfig gen;
  gen.num_nodes = 300;
  gen.num_features = 100;
  gen.num_edges = 900;
  gen.num_classes = 3;
  gen.homophily = 0.85;
  gen.topic_purity = 0.5;
  gen.labeled_per_class = 8;
  gen.val_size = 50;
  gen.test_size = 80;
  const Dataset dataset = GenerateCitationNetwork(gen, 17);
  const GraphContext context = GraphContext::FromDataset(dataset);
  RddConfig config;
  config.num_base_models = 2;
  config.train.max_epochs = 25;

  RddResult plain;
  {
    MetricsGuard guard(false);
    plain = TrainRdd(dataset, context, config, 11);
  }

  const std::string path = ::testing::TempDir() + "observe_rdd_trace.json";
  RddResult observed;
  {
    MetricsGuard guard(true);
    ASSERT_TRUE(observe::StartTracing(path));
    observed = TrainRdd(dataset, context, config, 11);
    ASSERT_TRUE(observe::StopTracing());
  }

  EXPECT_TRUE(plain.teacher.PredictProbs().Equals(
      observed.teacher.PredictProbs()));
  EXPECT_EQ(plain.ensemble_test_accuracy, observed.ensemble_test_accuracy);
  EXPECT_EQ(plain.single_test_accuracy, observed.single_test_accuracy);
  EXPECT_EQ(plain.average_member_test_accuracy,
            observed.average_member_test_accuracy);
  ASSERT_EQ(plain.alphas.size(), observed.alphas.size());
  for (size_t t = 0; t < plain.alphas.size(); ++t) {
    EXPECT_EQ(plain.alphas[t], observed.alphas[t]) << "member " << t;
  }
  ASSERT_EQ(plain.reports.size(), observed.reports.size());
  for (size_t t = 0; t < plain.reports.size(); ++t) {
    EXPECT_EQ(plain.reports[t].epochs_run, observed.reports[t].epochs_run);
    EXPECT_EQ(plain.reports[t].val_history,
              observed.reports[t].val_history);
  }

  // While we have it: the training trace is valid JSON and names the
  // Algorithm 1-3 phases the docs promise.
  const std::string json = ReadFile(path);
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid());
  for (const char* phase :
       {"rdd/student", "rdd/teacher_views", "rdd/node_reliability",
        "train/epoch", "train/backward_step", "teacher/weighted_average",
        "rdd/ensemble_update"}) {
    EXPECT_NE(json.find(std::string("\"") + phase + "\""), std::string::npos)
        << "missing phase " << phase;
  }
  std::remove(path.c_str());

  // And the metrics side saw the work: epochs were counted.
  bool saw_epochs = false;
  for (const auto& c : MetricsRegistry::Global().Snapshot().counters) {
    if (c.name == "train.epochs") {
      saw_epochs = c.value > 0;
    }
  }
  EXPECT_TRUE(saw_epochs);
}

}  // namespace
}  // namespace rdd
