#include "models/graphsage.h"

#include <gtest/gtest.h>

#include "data/citation_gen.h"
#include "models/model_factory.h"
#include "train/trainer.h"

namespace rdd {
namespace {

Dataset SmallDataset() {
  CitationGenConfig config;
  config.num_nodes = 300;
  config.num_features = 90;
  config.num_edges = 900;
  config.num_classes = 3;
  config.homophily = 0.85;
  config.topic_purity = 0.5;
  config.labeled_per_class = 8;
  config.val_size = 40;
  config.test_size = 80;
  return GenerateCitationNetwork(config, 31);
}

TEST(GraphSageTest, OutputShapes) {
  const Dataset dataset = SmallDataset();
  const GraphContext context = GraphContext::FromDataset(dataset);
  ModelConfig config;
  config.kind = ModelKind::kGraphSage;
  config.hidden_dim = 12;
  auto model = BuildModel(context, config, 1);
  const ModelOutput out = model->Forward(false);
  EXPECT_EQ(out.logits.rows(), 300);
  EXPECT_EQ(out.logits.cols(), 3);
}

TEST(GraphSageTest, ParameterCountMatchesTwoWeightMatricesPerLayer) {
  const Dataset dataset = SmallDataset();
  const GraphContext context = GraphContext::FromDataset(dataset);
  ModelConfig config;
  config.kind = ModelKind::kGraphSage;
  config.num_layers = 2;
  config.hidden_dim = 12;
  auto model = BuildModel(context, config, 2);
  // Layer 1: 90x12 self (+12 bias) + 90x12 neighbor.
  // Layer 2: 12x3 self (+3 bias) + 12x3 neighbor.
  const int64_t expected = (90 * 12 + 12 + 90 * 12) + (12 * 3 + 3 + 12 * 3);
  EXPECT_EQ(model->NumParameters(), expected);
}

TEST(GraphSageTest, LearnsBeyondChance) {
  const Dataset dataset = SmallDataset();
  const GraphContext context = GraphContext::FromDataset(dataset);
  ModelConfig config;
  config.kind = ModelKind::kGraphSage;
  config.hidden_dim = 16;
  auto model = BuildModel(context, config, 3);
  TrainConfig train;
  train.max_epochs = 80;
  const TrainReport report = TrainSupervised(model.get(), dataset, train);
  EXPECT_GT(report.test_accuracy, 0.6);
}

TEST(GraphSageTest, SelfPathAloneWorksWithoutEdges) {
  // On an edgeless graph the neighbor path sees only self-loops (the
  // row-normalized matrix degenerates to identity); the model must reduce
  // to a clean MLP-like learner without numerical trouble.
  Dataset dataset = SmallDataset();
  dataset.graph = Graph(dataset.NumNodes(), {});
  const GraphContext context = GraphContext::FromDataset(dataset);
  ModelConfig config;
  config.kind = ModelKind::kGraphSage;
  config.hidden_dim = 12;
  auto model = BuildModel(context, config, 4);
  TrainConfig train;
  train.max_epochs = 30;
  const TrainReport report = TrainSupervised(model.get(), dataset, train);
  EXPECT_GE(report.test_accuracy, 0.0);
  EXPECT_LE(report.test_accuracy, 1.0);
}

TEST(GraphSageTest, PredictLabelsMatchesArgmaxOfProbs) {
  const Dataset dataset = SmallDataset();
  const GraphContext context = GraphContext::FromDataset(dataset);
  ModelConfig config;
  config.kind = ModelKind::kGraphSage;
  auto model = BuildModel(context, config, 5);
  const std::vector<int64_t> labels = model->PredictLabels();
  const Matrix probs = model->PredictProbs();
  for (int64_t i = 0; i < probs.rows(); ++i) {
    int64_t best = 0;
    for (int64_t c = 1; c < probs.cols(); ++c) {
      if (probs.At(i, c) > probs.At(i, best)) best = c;
    }
    EXPECT_EQ(labels[static_cast<size_t>(i)], best);
  }
}

}  // namespace
}  // namespace rdd
